// Workflow orchestration: the paper's §6 future direction — data plane
// components serving as workflow orchestrators — implemented on the live
// cluster. A diamond-shaped image-processing pipeline (decode → {resize,
// classify} → combine) runs with fan-out/fan-in over real sandboxes, with
// each step scheduled, queued, throttled, and load-balanced by Dirigent.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/workflow"
)

// clusterInvoker adapts cluster.Cluster to workflow.Invoker.
type clusterInvoker struct{ c *cluster.Cluster }

func (ci clusterInvoker) Invoke(ctx context.Context, function string, payload []byte) ([]byte, error) {
	resp, err := ci.c.Invoke(ctx, function, payload)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

func main() {
	c, err := cluster.New(cluster.Options{
		ControlPlanes:     1,
		DataPlanes:        2,
		Workers:           3,
		LatencyScale:      0.05,
		AutoscaleInterval: 25 * time.Millisecond,
		MetricInterval:    10 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("boot cluster: %v", err)
	}
	defer c.Shutdown()

	// Register the pipeline's functions with their behaviors.
	type fnDef struct {
		name string
		body func([]byte) ([]byte, error)
	}
	defs := []fnDef{
		{"decode", func(p []byte) ([]byte, error) {
			return []byte("pixels[" + string(p) + "]"), nil
		}},
		{"resize", func(p []byte) ([]byte, error) {
			return []byte("thumb{" + string(p) + "}"), nil
		}},
		{"classify", func(p []byte) ([]byte, error) {
			label := "cat"
			if strings.Contains(string(p), "dog") {
				label = "dog"
			}
			return []byte("label=" + label), nil
		}},
		{"combine", func(p []byte) ([]byte, error) {
			return []byte("result{" + string(p) + "}"), nil
		}},
	}
	for _, d := range defs {
		fn := core.Function{
			Name:    d.name,
			Image:   "registry.local/" + d.name,
			Port:    8080,
			Scaling: core.DefaultScalingConfig(),
		}
		fn.Scaling.StableWindow = 10 * time.Second
		if err := c.RegisterFunction(fn); err != nil {
			log.Fatalf("register %s: %v", d.name, err)
		}
		c.Images.Register(fn.Image, d.body)
	}

	wf := &workflow.Workflow{
		Name: "image-pipeline",
		Steps: []workflow.Step{
			{Name: "decode", Function: "decode"},
			{Name: "resize", Function: "resize", After: []string{"decode"}},
			{Name: "classify", Function: "classify", After: []string{"decode"}},
			{Name: "combine", Function: "combine", After: []string{"resize", "classify"}},
		},
	}
	if err := wf.Validate(); err != nil {
		log.Fatalf("validate: %v", err)
	}
	fmt.Println("Workflow: decode -> {resize, classify} -> combine")

	orch := workflow.NewOrchestrator(clusterInvoker{c})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	start := time.Now()
	res, err := orch.Execute(ctx, wf, []byte("dog.jpg"))
	if err != nil {
		log.Fatalf("execute: %v", err)
	}
	fmt.Printf("First run (all cold starts) in %v:\n", time.Since(start).Round(time.Millisecond))
	for _, step := range []string{"decode", "resize", "classify", "combine"} {
		fmt.Printf("  %-9s -> %s\n", step, res.Outputs[step])
	}

	start = time.Now()
	if _, err = orch.Execute(ctx, wf, []byte("cat.jpg")); err != nil {
		log.Fatalf("execute: %v", err)
	}
	fmt.Printf("Second run (warm sandboxes) in %v\n", time.Since(start).Round(time.Millisecond))

	// Fan out a batch of concurrent workflow executions: each step's
	// invocations queue, throttle, and autoscale like any other traffic.
	start = time.Now()
	const batch = 8
	errCh := make(chan error, batch)
	for i := 0; i < batch; i++ {
		go func(i int) {
			_, err := orch.Execute(ctx, wf, []byte(fmt.Sprintf("img-%d.jpg", i)))
			errCh <- err
		}(i)
	}
	for i := 0; i < batch; i++ {
		if err := <-errCh; err != nil {
			log.Fatalf("batch execute: %v", err)
		}
	}
	fmt.Printf("Batch of %d workflows in %v (autoscaled under concurrency)\n",
		batch, time.Since(start).Round(time.Millisecond))
}
