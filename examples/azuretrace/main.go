// Azure trace replay: generate an Azure-production-shaped workload
// (heavy-tailed rates, timer-driven unison bursts, lognormal execution
// times), replay it against the simulated Dirigent, Knative, and AWS
// Lambda cluster managers, and print the per-function slowdown comparison
// from §5.3 of the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dirigent/internal/simulation"
	"dirigent/internal/trace"
)

func main() {
	functions := flag.Int("functions", 300, "number of trace functions")
	minutes := flag.Int("minutes", 10, "trace duration in minutes")
	seed := flag.Int64("seed", 42, "workload seed")
	csvOut := flag.String("csv", "", "optionally dump the generated trace to this CSV file")
	flag.Parse()

	tr := trace.NewAzureLike(trace.Config{
		Functions: *functions,
		Duration:  time.Duration(*minutes) * time.Minute,
		Seed:      *seed,
	})
	fmt.Printf("Generated Azure-like trace: %d functions, %d invocations over %v\n",
		len(tr.Functions), tr.TotalInvocations(), tr.Duration)

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("Wrote trace to %s (Azure per-minute-count format)\n", *csvOut)
	}

	warmup := tr.Duration / 3
	fmt.Printf("Replaying on each system (discarding the first %v as warm-up)...\n\n", warmup)

	type system struct {
		name string
		make func(eng *simulation.Engine) simulation.Model
	}
	systems := []system{
		{"dirigent-firecracker", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		}},
		{"dirigent-containerd", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "containerd", Seed: 1})
		}},
		{"knative", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}},
		{"aws-lambda", func(e *simulation.Engine) simulation.Model {
			return simulation.NewLambda(e, simulation.LambdaConfig{Seed: 1})
		}},
	}

	fmt.Printf("%-22s %10s %12s %12s %14s %14s %10s\n",
		"system", "n", "slowdown p50", "slowdown p99", "sched p50 ms", "sched p99 ms", "sandboxes")
	for _, sys := range systems {
		eng := simulation.NewEngine()
		m := sys.make(eng)
		col := simulation.ReplayTrace(eng, m, tr, warmup)
		slow := col.PerFunctionSlowdown()
		sched := col.Scheduling()
		fmt.Printf("%-22s %10d %12.2f %12.1f %14.2f %14.1f %10d\n",
			sys.name, len(col.Results),
			slow.Percentile(50), slow.Percentile(99),
			sched.Percentile(50), sched.Percentile(99),
			m.SandboxCreations())
	}
	fmt.Println("\nExpected shape (paper §5.3): Dirigent's median and tail slowdowns below AWS")
	fmt.Println("Lambda's, both far below Knative's; Dirigent creates ~4x fewer sandboxes than")
	fmt.Println("Knative under identical autoscaling policies.")
}
