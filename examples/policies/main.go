// Scheduling policies: Dirigent implements Knative's default policies
// across the three scheduling dimensions — autoscaling (KPA), placement
// (least-allocated/balanced), and load balancing (least-loaded) — and, as
// §4 of the paper notes, supports alternatives like Hermod placement and
// CH-RLU load balancing behind the same interfaces. This example swaps
// placement and load-balancing policies on live clusters and compares how
// sandboxes spread across workers.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/placement"
)

func run(name string, placer placement.Policy) {
	c, err := cluster.New(cluster.Options{
		ControlPlanes:     1,
		DataPlanes:        1,
		Workers:           4,
		LatencyScale:      0,
		AutoscaleInterval: 20 * time.Millisecond,
		MetricInterval:    10 * time.Millisecond,
		Placer:            placer,
	})
	if err != nil {
		log.Fatalf("boot cluster: %v", err)
	}
	defer c.Shutdown()

	// Register a function pinned to 8 sandboxes so placement decisions
	// are immediately visible.
	fn := core.Function{
		Name:    "spread",
		Image:   "registry.local/spread",
		Port:    8080,
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.MinScale = 8
	if err := c.RegisterFunction(fn); err != nil {
		log.Fatalf("register: %v", err)
	}
	if err := c.AwaitScale("spread", 8, 20*time.Second); err != nil {
		log.Fatalf("scale: %v", err)
	}

	fmt.Printf("%-14s sandbox distribution across workers: ", name)
	for i, w := range c.Workers {
		if i > 0 {
			fmt.Print(" / ")
		}
		fmt.Printf("w%d=%d", i, w.SandboxCount())
	}
	fmt.Println()

	// Drive a few invocations so the load balancer exercises the spread.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 16; i++ {
		if _, err := c.Invoke(ctx, "spread", nil); err != nil {
			log.Fatalf("invoke: %v", err)
		}
	}
}

func main() {
	fmt.Println("Placement policy comparison (8 sandboxes over 4 workers):")
	run("kube-default", placement.NewKubeDefault(1))
	run("round-robin", placement.NewRoundRobin())
	run("random", placement.NewRandom(1))
	run("hermod", placement.NewHermod())
	fmt.Println()
	fmt.Println("kube-default and round-robin spread evenly; random is uneven;")
	fmt.Println("hermod packs onto moderately loaded nodes (its cold-start/interference tradeoff).")
	fmt.Println()
	fmt.Println("Swapping a policy is a constructor argument — the same Go interface the paper")
	fmt.Println("describes: implement placement.Policy or loadbalancer.Policy and recompile.")
}
