// Fault tolerance walkthrough: exercise every failure scenario from §5.4
// of the paper on a live in-process cluster — control plane leader crash
// (the 3-replica CP tier runs a replicated Raft log, so the follower that
// wins the election recovers from its own applied store; the dead replica
// is then revived and catches up from the leader's log), data plane crash
// and restart, worker daemon crash, and a sandbox process crash — while
// verifying the cluster keeps serving invocations. Follower reads are on:
// read-only RPCs like ListFunctions spread across the tier instead of
// loading the leader.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
)

func main() {
	c, err := cluster.New(cluster.Options{
		ControlPlanes:     3,
		DataPlanes:        2,
		Workers:           4,
		Runtime:           "firecracker",
		LatencyScale:      0.05,
		AutoscaleInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
		MetricInterval:    10 * time.Millisecond,
		NoDownscaleWindow: 5 * time.Second,
		CPFollowerReads:   true,
	})
	if err != nil {
		log.Fatalf("boot cluster: %v", err)
	}
	defer c.Shutdown()

	fn := core.Function{
		Name:    "resilient",
		Image:   "registry.local/resilient",
		Port:    8080,
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.MinScale = 2
	fn.Scaling.StableWindow = 10 * time.Second
	if err := c.RegisterFunction(fn); err != nil {
		log.Fatalf("register: %v", err)
	}
	if err := c.AwaitScale("resilient", 2, 20*time.Second); err != nil {
		log.Fatalf("warm pool: %v", err)
	}
	ctx := context.Background()

	invoke := func(tag string) {
		t0 := time.Now()
		resp, err := c.Invoke(ctx, "resilient", []byte(tag))
		if err != nil {
			fmt.Printf("  [%s] invoke FAILED: %v\n", tag, err)
			return
		}
		fmt.Printf("  [%s] ok in %v (cold=%v)\n", tag, time.Since(t0).Round(time.Millisecond), resp.ColdStart)
	}

	fmt.Println("1. Baseline: two warm sandboxes")
	invoke("baseline")

	fmt.Println("\n2. Control plane leader crash (replicated Raft log)")
	// Snapshot the leader: Leader() re-resolves every call and returns nil
	// during elections, so back-to-back calls may not agree — dereferencing
	// a second lookup is a crash waiting for an election blip.
	if leader := c.Leader(); leader != nil {
		fmt.Printf("   killing leader %s...\n", leader.Addr())
	}
	t0 := time.Now()
	killed := c.KillCPLeader()
	leader := c.Leader()
	for leader == nil {
		time.Sleep(200 * time.Microsecond)
		leader = c.Leader()
	}
	fmt.Printf("   new leader %s elected in %v — it recovers from its own applied log,\n",
		leader.Addr(), time.Since(t0).Round(time.Millisecond))
	fmt.Println("   no shared store to replay")
	invoke("during-failover") // warm traffic is unaffected
	ready := 0
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cp := c.Leader(); cp != nil {
			if ready, _ = cp.FunctionScale("resilient"); ready >= 2 {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("   sandbox state reconstructed from worker reports: %d ready\n", ready)

	// The registration accepted before the crash was committed at quorum,
	// so it survives on the new leader — and with follower reads on, any
	// lease-fresh replica can answer the list.
	addrs := make([]string, len(c.CPs))
	for i, cp := range c.CPs {
		addrs[i] = cp.Addr()
	}
	cpc := cpclient.New(c.Transport, addrs)
	readCtx, cancelRead := context.WithTimeout(ctx, 5*time.Second)
	if b, err := cpc.CallRead(readCtx, proto.MethodListFunctions, nil); err == nil {
		if list, err := proto.UnmarshalFunctionList(b); err == nil {
			fmt.Printf("   function list served by the tier (follower-readable): %d registered\n", len(list.Functions))
		}
	}
	cancelRead()

	fmt.Printf("\n2b. Reviving crashed replica %d\n", killed)
	t0 = time.Now()
	if err := c.RestartCP(killed); err != nil {
		log.Fatalf("restart cp: %v", err)
	}
	// The replica rejoins with an empty log; the leader backtracks and
	// re-ships everything, so its local store converges on the tier state.
	catchup := time.Now().Add(10 * time.Second)
	for time.Now().Before(catchup) {
		if len(c.CPStore(killed).HGetAll("functions")) >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("   replica %d caught up from the leader's log in %v\n",
		killed, time.Since(t0).Round(time.Millisecond))

	fmt.Println("\n3. Data plane crash + restart")
	c.KillDataPlane(0)
	invoke("dp-failed") // front-end LB steers to the surviving replica
	t0 = time.Now()
	if err := c.RestartDataPlane(0); err != nil {
		log.Fatalf("restart dp: %v", err)
	}
	fmt.Printf("   data plane restarted and cache-synced in %v\n", time.Since(t0).Round(time.Millisecond))
	invoke("dp-recovered")

	fmt.Println("\n4. Worker daemon crash")
	victim := -1
	for i, w := range c.Workers {
		if w.SandboxCount() > 0 {
			victim = i
			break
		}
	}
	if victim >= 0 {
		fmt.Printf("   killing worker %d (hosting %d sandboxes)...\n", victim, c.Workers[victim].SandboxCount())
		c.KillWorker(victim)
		t0 = time.Now()
		for {
			// Leader() can be nil for a moment if a re-election from the
			// earlier CP kill is still settling.
			if cp := c.Leader(); cp != nil && cp.WorkerCount() < len(c.Workers) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("   heartbeat loss detected in %v; endpoints drained\n", time.Since(t0).Round(time.Millisecond))
		if err := c.AwaitScale("resilient", 2, 20*time.Second); err != nil {
			log.Fatalf("rescale: %v", err)
		}
		fmt.Println("   replacement sandboxes created on surviving nodes")
		invoke("worker-failed")
	}

	fmt.Println("\n5. Sandbox process crash")
	for _, w := range c.Workers {
		if ids := w.ReadySandboxIDs(); len(ids) > 0 {
			if err := w.CrashSandbox(ids[0]); err != nil {
				fmt.Printf("   crash notification: %v\n", err)
			} else {
				fmt.Println("   sandbox crashed; control plane notified")
			}
			break
		}
	}
	if err := c.AwaitScale("resilient", 2, 20*time.Second); err != nil {
		log.Fatalf("sandbox recovery: %v", err)
	}
	invoke("sandbox-crashed")

	fmt.Println("\nAll failure scenarios survived. The cluster never required exact state")
	fmt.Println("reconstruction: sandbox state lives in memory and is rebuilt from workers.")
}
