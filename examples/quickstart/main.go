// Quickstart: boot a complete in-process Dirigent cluster (3 control
// plane replicas with Raft leader election and a replicated store, 2 data
// planes, 3 workers), register a function, and invoke it cold and warm —
// the end-user API from Table 2 of the paper.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
)

func main() {
	fmt.Println("Booting Dirigent cluster: 3x control plane, 2x data plane, 3x workers...")
	c, err := cluster.New(cluster.Options{
		ControlPlanes:     3,
		DataPlanes:        2,
		Workers:           3,
		Runtime:           "containerd",
		LatencyScale:      0.1, // compress simulated sandbox latencies 10x
		AutoscaleInterval: 50 * time.Millisecond,
		MetricInterval:    20 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("boot cluster: %v", err)
	}
	defer c.Shutdown()
	fmt.Printf("Cluster up; control plane leader: %s\n\n", c.Leader().Addr())

	// Register a function: name + container image + port, exactly like
	// AWS Lambda or Knative registration.
	fn := core.Function{
		Name:    "hello",
		Image:   "registry.local/hello:latest",
		Port:    8080,
		Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.StableWindow = 5 * time.Second
	start := time.Now()
	if err := c.RegisterFunction(fn); err != nil {
		log.Fatalf("register: %v", err)
	}
	fmt.Printf("Registered %q in %v (persist spec + push metadata to data planes)\n",
		fn.Name, time.Since(start).Round(time.Microsecond))

	// Install the function body: echo with a twist.
	c.Images.Register(fn.Image, func(payload []byte) ([]byte, error) {
		return append([]byte("hello, "), payload...), nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// First invocation: cold start. The data plane buffers the request,
	// the autoscaler spins up a sandbox, the worker reports it ready, and
	// the queue drains — no persistent state touched on this whole path.
	t0 := time.Now()
	resp, err := c.Invoke(ctx, "hello", []byte("world"))
	if err != nil {
		log.Fatalf("invoke: %v", err)
	}
	fmt.Printf("\nCold start: %q in %v (cold=%v, scheduling=%.2fms)\n",
		resp.Body, time.Since(t0).Round(time.Millisecond), resp.ColdStart,
		float64(resp.SchedulingLatencyUs)/1000)

	// Subsequent invocations ride the warm sandbox.
	for i := 0; i < 3; i++ {
		t0 = time.Now()
		resp, err = c.Invoke(ctx, "hello", []byte(fmt.Sprintf("again #%d", i+1)))
		if err != nil {
			log.Fatalf("invoke: %v", err)
		}
		fmt.Printf("Warm start: %q in %v (cold=%v)\n",
			resp.Body, time.Since(t0).Round(time.Microsecond), resp.ColdStart)
	}

	ready, creating := c.Leader().FunctionScale("hello")
	fmt.Printf("\nFunction scale: %d ready, %d creating\n", ready, creating)
	fmt.Println("Done.")
}
