// Package dirigent's root benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation (§5). Each benchmark runs a
// scaled-down version of the corresponding experiment and reports the
// headline statistics as custom metrics (latency percentiles in ms,
// throughput, slowdown ratios). Paper-sized runs are available via
// `go run ./cmd/experiments -scale 1.0 all`.
package dirigent_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/experiments"
	"dirigent/internal/simulation"
	"dirigent/internal/trace"
)

// --- Figure 1: Knative cold-start latency breakdown ---

func BenchmarkFig1KnativeColdStartBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		m := simulation.NewKnative(eng, simulation.KnativeConfig{Seed: 1})
		col := simulation.RunColdBurst(eng, m, 100)
		if i == b.N-1 {
			h := col.E2E()
			b.ReportMetric(h.Percentile(50), "p50_ms")
			b.ReportMetric(h.Percentile(99), "p99_ms")
		}
	}
}

// --- Figure 2: AWS Lambda cold-start burst CDFs ---

func BenchmarkFig2LambdaColdStartCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		m := simulation.NewLambda(eng, simulation.LambdaConfig{Seed: 2})
		col := simulation.RunColdBurst(eng, m, 1600)
		if i == b.N-1 {
			h := col.E2E()
			b.ReportMetric(h.Percentile(50), "p50_ms")
			b.ReportMetric(h.Percentile(99), "p99_ms")
		}
	}
}

// --- Figure 3: sandbox creation rate on the Azure trace ---

func BenchmarkFig3SandboxCreationRate(b *testing.B) {
	tr := trace.NewAzureLike(trace.Config{Functions: 1500, Duration: 6 * time.Minute, Seed: 11})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		m := simulation.NewDirigent(eng, simulation.DirigentConfig{Workers: 1000, Runtime: "firecracker", Seed: 1})
		simulation.ReplayTrace(eng, m, tr, 2*time.Minute)
		if i == b.N-1 {
			_, stats := simulation.CreationRateStats(m.CreationTimes(), tr.Duration, 2*time.Minute)
			b.ReportMetric(stats.Avg, "avg_creations_per_s")
			b.ReportMetric(stats.P99, "p99_creations_per_s")
		}
	}
}

// --- Figure 5: Knative scheduling latency CDF on Azure-500 ---

func BenchmarkFig5KnativeSchedulingCDF(b *testing.B) {
	tr := trace.NewAzureLike(trace.Config{Functions: 150, Duration: 5 * time.Minute, Seed: 12})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		m := simulation.NewKnative(eng, simulation.KnativeConfig{Seed: 1})
		col := simulation.ReplayTrace(eng, m, tr, time.Minute)
		if i == b.N-1 {
			h := col.Scheduling()
			b.ReportMetric(h.Percentile(50), "p50_ms")
			b.ReportMetric(h.Percentile(99), "p99_ms")
		}
	}
}

// --- Figure 7: cold-start rate sweep ---

func benchColdRate(b *testing.B, mk func(*simulation.Engine) simulation.Model, rate float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		m := mk(eng)
		col := simulation.RunColdRateSweep(eng, m, rate, 5*time.Second)
		if i == b.N-1 {
			h := col.E2E()
			b.ReportMetric(h.Percentile(50), "p50_ms")
			b.ReportMetric(h.Percentile(99), "p99_ms")
			b.ReportMetric(rate, "offered_per_s")
		}
	}
}

func BenchmarkFig7ColdStartSweep(b *testing.B) {
	cases := []struct {
		name string
		mk   func(*simulation.Engine) simulation.Model
		rate float64
	}{
		{"Knative1", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}, 1},
		{"Knative5", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}, 5},
		{"OpenWhisk1", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{OpenWhisk: true, Seed: 1})
		}, 1},
		{"KnativeK3s5", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Fused: true, Seed: 1})
		}, 5},
		{"DirigentContainerd1750", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "containerd", Seed: 1})
		}, 1750},
		{"DirigentFirecracker2500", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		}, 2500},
		{"DirigentPersistAll1000", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", PersistSandboxState: true, Seed: 1})
		}, 1000},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) { benchColdRate(b, tc.mk, tc.rate) })
	}
}

// --- Figure 8: warm-start rate sweep ---

func BenchmarkFig8WarmStartSweep(b *testing.B) {
	cases := []struct {
		name string
		mk   func(*simulation.Engine) simulation.Model
		rate float64
	}{
		{"Dirigent4000", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		}, 4000},
		{"Knative1200", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}, 1200},
		{"OpenWhisk800", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{OpenWhisk: true, Seed: 1})
		}, 800},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := simulation.NewEngine()
				m := tc.mk(eng)
				col := simulation.RunWarmRateSweep(eng, m, tc.rate, 3*time.Second)
				if i == b.N-1 {
					h := col.E2E()
					b.ReportMetric(h.Percentile(50), "p50_ms")
					b.ReportMetric(h.Percentile(99), "p99_ms")
				}
			}
		})
	}
}

// --- Figures 9 & 10 + §5.3 table: Azure-500 end-to-end comparison ---

func benchAzure(b *testing.B, mk func(*simulation.Engine) simulation.Model) {
	b.Helper()
	tr := trace.NewAzureLike(trace.Config{Functions: 150, Duration: 5 * time.Minute, Seed: 13})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		m := mk(eng)
		col := simulation.ReplayTrace(eng, m, tr, time.Minute)
		if i == b.N-1 {
			slow := col.PerFunctionSlowdown()
			sched := col.Scheduling()
			b.ReportMetric(slow.Percentile(50), "slowdown_p50")
			b.ReportMetric(slow.Percentile(99), "slowdown_p99")
			b.ReportMetric(sched.Percentile(50), "sched_p50_ms")
			b.ReportMetric(float64(m.SandboxCreations()), "sandboxes")
		}
	}
}

func BenchmarkFig9SlowdownCDF(b *testing.B) {
	cases := []struct {
		name string
		mk   func(*simulation.Engine) simulation.Model
	}{
		{"DirigentFirecracker", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		}},
		{"DirigentContainerd", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "containerd", Seed: 1})
		}},
		{"Knative", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}},
		{"Lambda", func(e *simulation.Engine) simulation.Model {
			return simulation.NewLambda(e, simulation.LambdaConfig{Seed: 1})
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) { benchAzure(b, tc.mk) })
	}
}

func BenchmarkFig10SchedulingLatencyCDF(b *testing.B) {
	tr := trace.NewAzureLike(trace.Config{Functions: 150, Duration: 5 * time.Minute, Seed: 13})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := simulation.NewEngine()
		m := simulation.NewDirigent(eng, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		col := simulation.ReplayTrace(eng, m, tr, time.Minute)
		if i == b.N-1 {
			perInv := col.Scheduling()
			perFn := col.PerFunctionScheduling()
			b.ReportMetric(perInv.Percentile(50), "perinv_p50_ms")
			b.ReportMetric(perInv.Percentile(99), "perinv_p99_ms")
			b.ReportMetric(perFn.Percentile(99), "perfn_p99_ms")
		}
	}
}

// --- Figure 11 + §5.4: fault tolerance on the live cluster ---

func BenchmarkFig11ControlPlaneFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Options{
			ControlPlanes:     3,
			DataPlanes:        2,
			Workers:           3,
			LatencyScale:      0,
			AutoscaleInterval: 20 * time.Millisecond,
			MetricInterval:    10 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		fn := core.Function{Name: "f", Image: "img", Port: 80, Scaling: core.DefaultScalingConfig()}
		fn.Scaling.MinScale = 1
		if err := c.RegisterFunction(fn); err != nil {
			b.Fatal(err)
		}
		if err := c.AwaitScale("f", 1, 10*time.Second); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		c.KillCPLeader()
		for c.Leader() == nil {
			time.Sleep(100 * time.Microsecond)
		}
		elected := time.Since(start)
		// The cluster must still serve invocations.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, err = c.Invoke(ctx, "f", nil)
		cancel()
		if err != nil {
			b.Fatalf("invoke after failover: %v", err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(elected.Microseconds())/1000, "failover_ms")
		}
		c.Shutdown()
	}
}

func BenchmarkFaultRecoveryDataPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Options{
			ControlPlanes:     1,
			DataPlanes:        2,
			Workers:           2,
			LatencyScale:      0,
			AutoscaleInterval: 20 * time.Millisecond,
			MetricInterval:    10 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		fn := core.Function{Name: "f", Image: "img", Port: 80, Scaling: core.DefaultScalingConfig()}
		fn.Scaling.MinScale = 1
		if err := c.RegisterFunction(fn); err != nil {
			b.Fatal(err)
		}
		if err := c.AwaitScale("f", 1, 10*time.Second); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		c.KillDataPlane(0)
		if err := c.RestartDataPlane(0); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, err = c.Invoke(ctx, "f", nil)
		cancel()
		if err != nil {
			b.Fatalf("invoke after DP restart: %v", err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(time.Since(start).Microseconds())/1000, "recovery_ms")
		}
		c.Shutdown()
	}
}

// --- §5.2.3 scalability ---

func BenchmarkScalabilityWorkerSweep(b *testing.B) {
	for _, workers := range []int{93, 1000, 2500, 5000} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := simulation.NewEngine()
				m := simulation.NewDirigent(eng, simulation.DirigentConfig{
					Workers: workers, Runtime: "firecracker", Seed: 1,
				})
				col := simulation.RunColdRateSweep(eng, m, 2000, 4*time.Second)
				if i == b.N-1 {
					h := col.E2E()
					b.ReportMetric(h.Percentile(50), "p50_ms")
					b.ReportMetric(h.Percentile(99), "p99_ms")
				}
			}
		})
	}
}

// --- §5.2.4 registration ---

func BenchmarkRegistrationDirigent(b *testing.B) {
	c, err := cluster.New(cluster.Options{
		ControlPlanes:     1,
		DataPlanes:        1,
		Workers:           1,
		LatencyScale:      0,
		AutoscaleInterval: time.Hour, // isolate registration
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Shutdown()
	// Bound the registered-function set: each registration pushes the
	// full function list to data planes (the real propagation path), so
	// an unbounded set would make per-op cost grow with b.N and measure
	// list marshaling instead of registration.
	const workingSet = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn := core.Function{
			Name:    fmt.Sprintf("bench-fn-%d", i%workingSet),
			Image:   "img",
			Port:    80,
			Scaling: core.DefaultScalingConfig(),
		}
		if err := c.RegisterFunction(fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistrationKnativeModeled(b *testing.B) {
	eng := simulation.NewEngine()
	kn := simulation.NewKnative(eng, simulation.KnativeConfig{Seed: 1})
	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += kn.RegistrationCost(i)
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "modeled_ms_per_registration")
}

// --- experiment harness sanity: every experiment runs at tiny scale ---

func BenchmarkExperimentHarnessSmoke(b *testing.B) {
	fast := []string{"fig1", "fig2", "registration"}
	for i := 0; i < b.N; i++ {
		for _, id := range fast {
			if err := experiments.Run(io.Discard, id, 0.05); err != nil {
				b.Fatalf("experiment %s: %v", id, err)
			}
		}
	}
}
