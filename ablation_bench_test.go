// Ablation benchmarks for the individual design decisions behind
// Dirigent's headline results (paper Table 1 and §5.2.1, "Dirigent
// optimization breakdown"): compact binary state vs. K8s-style bloated
// objects, persistence-free vs. fsync-per-update state management, RPC
// transport cost, and the scheduling-policy implementations themselves.
package dirigent_test

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dirigent/internal/autoscaler"
	"dirigent/internal/codec"
	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/dataplane"
	"dirigent/internal/experiments"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/placement"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/trace"
	"dirigent/internal/transport"
	"dirigent/internal/wal"
)

// --- State size & serialization: 16-byte records vs ~17 KB objects ---

func BenchmarkAblationSerializeCompactSandbox(b *testing.B) {
	sb := core.Sandbox{ID: 12345, Function: "resize-image", Node: 17, IP: [4]byte{10, 0, 3, 7}, Port: 30017}
	b.ReportAllocs()
	var sink [core.SandboxRecordSize]byte
	for i := 0; i < b.N; i++ {
		sink = core.MarshalSandboxRecord(&sb)
	}
	_ = sink
	b.ReportMetric(float64(core.SandboxRecordSize), "bytes_per_object")
}

func BenchmarkAblationSerializeBloatedK8sObject(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		out := codec.BloatedEncode("Pod", "resize-image-deployment-7f9c", []byte("st"), 17*1024)
		n = len(out)
	}
	b.ReportMetric(float64(n), "bytes_per_object")
}

// --- Persistence on vs off the critical path ---

func BenchmarkAblationStoreWriteNoFsync(b *testing.B) {
	s, err := store.Open(filepath.Join(b.TempDir(), "nofsync.aof"), wal.FsyncNever)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := make([]byte, core.SandboxRecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.HSet("sandboxes", "sb", rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStoreWriteFsyncAlways(b *testing.B) {
	s, err := store.Open(filepath.Join(b.TempDir(), "fsync.aof"), wal.FsyncAlways)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := make([]byte, core.SandboxRecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.HSet("sandboxes", "sb", rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStoreWriteFsyncGroup(b *testing.B) {
	s, err := store.Open(filepath.Join(b.TempDir(), "group.aof"), wal.FsyncGroup)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := make([]byte, core.SandboxRecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.HSet("sandboxes", "sb", rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStoreWriteParallel is the group-commit ablation
// proper: many concurrent writers, fsync per mutation vs one fsync per
// batch. recs_per_fsync reports the mean group-commit batch size.
func BenchmarkAblationStoreWriteParallel(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		policy wal.FsyncPolicy
	}{
		{"fsync-always", wal.FsyncAlways},
		{"fsync-group", wal.FsyncGroup},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, err := store.Open(filepath.Join(b.TempDir(), "par.aof"), cfg.policy)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			rec := make([]byte, core.SandboxRecordSize)
			var next atomic.Uint64
			// Oversubscribe goroutines so concurrency forms even on
			// few-core machines: writers blocked in fsync overlap with
			// writers buffering the next batch.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					field := fmt.Sprintf("sb-%d", next.Add(1)%256)
					if err := s.HSet("sandboxes", field, rec); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if rounds, records := s.SyncStats(); rounds > 0 {
				b.ReportMetric(float64(records)/float64(rounds), "recs_per_fsync")
			}
		})
	}
}

// --- Control plane state manager: sharded vs global lock ---

// benchCPSandboxTransitions measures multi-function sandbox-transition
// throughput through the full RPC path. StateShards=1 reproduces the
// seed's single global mutex; PersistSandboxState puts one durable write
// per transition on the path so the fsync policy matters too.
func benchCPSandboxTransitions(b *testing.B, shards int, policy wal.FsyncPolicy, numFns int) {
	b.Helper()
	tr := transport.NewInProc()
	db, err := store.Open(filepath.Join(b.TempDir(), "cp.aof"), policy)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cp := controlplane.New(controlplane.Config{
		Addr:        "cp-bench",
		Transport:   tr,
		DB:          db,
		StateShards: shards,
		// Loops parked: the benchmark drives transitions directly.
		AutoscaleInterval:   time.Hour,
		HeartbeatTimeout:    time.Hour,
		PersistSandboxState: true,
	})
	if err := cp.Start(); err != nil {
		b.Fatal(err)
	}
	defer cp.Stop()
	ctx := context.Background()
	payloads := make([][]byte, numFns)
	for i := 0; i < numFns; i++ {
		name := fmt.Sprintf("bench-fn-%d", i)
		fn := core.Function{Name: name, Image: "img", Port: 80, Runtime: "proc", Scaling: core.DefaultScalingConfig()}
		if _, err := tr.Call(ctx, "cp-bench", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			b.Fatal(err)
		}
		ev := proto.SandboxEvent{SandboxID: core.SandboxID(i + 1), Function: name, Node: 1, Addr: "10.0.0.1:9000"}
		payloads[i] = ev.Marshal()
	}
	var next atomic.Uint64
	// Oversubscribe goroutines so transitions overlap even on few-core
	// machines; each in-flight transition models one cold start.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := payloads[next.Add(1)%uint64(numFns)]
			if _, err := tr.Call(ctx, "cp-bench", proto.MethodSandboxReady, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if rounds, records := db.SyncStats(); rounds > 0 {
		b.ReportMetric(float64(records)/float64(rounds), "recs_per_fsync")
	}
	b.ReportMetric(float64(cp.Metrics().Counter("shard_lock_contended").Value())/float64(b.N), "contended_per_op")
}

// BenchmarkAblationCPSharding isolates the lock architecture: sandbox
// transitions across 1/8/64 concurrent functions against a single global
// lock (the seed design) vs the striped state manager. FsyncNever keeps
// persistence off the path so only lock contention is measured.
func BenchmarkAblationCPSharding(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"global", 1},
		{"sharded", 0}, // default 32 shards
	} {
		for _, fns := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/fns-%d", cfg.name, fns), func(b *testing.B) {
				benchCPSandboxTransitions(b, cfg.shards, wal.FsyncNever, fns)
			})
		}
	}
}

// BenchmarkAblationCPSandboxThroughput is the headline end-to-end
// ablation: the seed configuration (global lock + fsync per mutation)
// against the refactor (sharded state + group-committed fsyncs) on
// multi-function sandbox-transition throughput.
func BenchmarkAblationCPSandboxThroughput(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
		policy wal.FsyncPolicy
	}{
		{"global-fsyncalways", 1, wal.FsyncAlways},
		{"sharded-fsyncalways", 0, wal.FsyncAlways},
		{"sharded-fsyncgroup", 0, wal.FsyncGroup},
	} {
		for _, fns := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/fns-%d", cfg.name, fns), func(b *testing.B) {
				benchCPSandboxTransitions(b, cfg.shards, cfg.policy, fns)
			})
		}
	}
}

// --- Worker registry: striped registration/heartbeat path vs global lock ---

// BenchmarkAblationWorkerRegistry drives a 1k-worker emulated fleet
// (internal/fleet) against the control plane's worker registry, striped
// (default 32 shards) vs the seed's single registry lock
// (-worker-shards 1):
//
//   - heartbeats: steady-state heartbeat floods from the whole fleet,
//     racing continuous health sweeps and autoscale sweeps — the fleet
//     hot path. contended_per_op is the striping proof; health_sweep_ms
//     shows the sweep staying cheap while heartbeats hammer the shards.
//   - register: a registration storm — every op re-registers one of the
//     1024 workers through the full RPC + persistence path.
//   - failure-churn: correlated worker churn — every op deregisters a
//     worker (failing it and draining its sandboxes, which re-enters
//     Reconcile) and registers it back.
//
// Like the CP/DP sharding ablations, the wall-clock win needs multicore;
// on few-core machines the telemetry carries the comparison.
func BenchmarkAblationWorkerRegistry(b *testing.B) {
	const fleetSize = 1024
	newHarness := func(b *testing.B, shards int) *experiments.FleetHarness {
		b.Helper()
		h, err := experiments.NewFleetHarness(experiments.FleetConfig{
			Workers:      fleetSize,
			WorkerShards: shards,
			// Park the background loops: the benchmark drives heartbeats
			// and sweeps explicitly. The huge timeout also keeps explicit
			// health sweeps from failing parked workers.
			HeartbeatInterval: time.Hour,
			HeartbeatTimeout:  time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.RegisterFleet(); err != nil {
			h.Close()
			b.Fatal(err)
		}
		return h
	}
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"global", 1},
		{"sharded", 0}, // default 32 registry stripes
	} {
		b.Run(fmt.Sprintf("%s/heartbeats/workers-%d", cfg.name, fleetSize), func(b *testing.B) {
			h := newHarness(b, cfg.shards)
			defer h.Close()
			// A persistently scaled function keeps the concurrent
			// autoscale sweeps reconciling real sandboxes across the
			// fleet while it heartbeats.
			if err := h.RegisterScaledFunction("hb-load", fleetSize/4); err != nil {
				b.Fatal(err)
			}
			workers := h.Fleet().Workers()
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
						h.CP().HealthSweep()
						h.CP().Reconcile()
						// Pace the sweeps so they race the heartbeat flood
						// without hot-spinning a core away from it.
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
			m := h.CP().Metrics()
			// Baseline after setup: the registration storm and scale-up
			// contended too, and that must not pollute the per-op metric.
			contBase := m.Counter("reg_lock_contended").Value()
			m.Histogram("health_sweep_ms").Reset()
			var next atomic.Uint64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					workers[next.Add(1)%fleetSize].SendHeartbeat()
				}
			})
			b.StopTimer()
			close(stop)
			<-done
			b.ReportMetric(float64(m.Counter("reg_lock_contended").Value()-contBase)/float64(b.N), "contended_per_op")
			b.ReportMetric(m.Histogram("health_sweep_ms").Percentile(50), "health_sweep_p50_ms")
			b.ReportMetric(float64(m.Gauge("fleet_size").Value()), "fleet_size")
		})
		b.Run(fmt.Sprintf("%s/register/workers-%d", cfg.name, fleetSize), func(b *testing.B) {
			h := newHarness(b, cfg.shards)
			defer h.Close()
			workers := h.Fleet().Workers()
			m := h.CP().Metrics()
			contBase := m.Counter("reg_lock_contended").Value()
			var next atomic.Uint64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := workers[next.Add(1)%fleetSize].Register(); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(m.Counter("reg_lock_contended").Value()-contBase)/float64(b.N), "contended_per_op")
		})
		b.Run(fmt.Sprintf("%s/failure-churn/workers-%d", cfg.name, fleetSize), func(b *testing.B) {
			h := newHarness(b, cfg.shards)
			defer h.Close()
			// Sandboxes across the fleet so every deregistration drains
			// real endpoints and the drain's Reconcile re-places them.
			if err := h.RegisterScaledFunction("churn-load", fleetSize/4); err != nil {
				b.Fatal(err)
			}
			workers := h.Fleet().Workers()
			ctx := context.Background()
			m := h.CP().Metrics()
			contBase := m.Counter("reg_lock_contended").Value()
			failBase := m.Counter("worker_failures_detected").Value()
			var next atomic.Uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := workers[next.Add(1)%fleetSize]
				req := proto.RegisterWorkerRequest{Worker: w.Node()}
				if _, err := h.Transport().Call(ctx, "fleet-cp", proto.MethodDeregisterWorker, req.Marshal()); err != nil {
					b.Fatal(err)
				}
				if err := w.Register(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(m.Counter("reg_lock_contended").Value()-contBase)/float64(b.N), "contended_per_op")
			b.ReportMetric(float64(m.Counter("worker_failures_detected").Value()-failBase)/float64(b.N), "fails_per_op")
		})
	}
}

// --- Data plane invoke path: per-function runtimes vs global lock ---

// benchDPInvoke measures multi-function warm-start throughput through
// the full RPC path (client → data plane → pick → throttle → proxy →
// worker and back). InvokeShards=1 reproduces the seed's single data
// plane mutex with a candidate slice built per pick; the default
// configuration resolves functions through the sharded registry and
// picks lock-free from copy-on-write endpoint snapshots.
func benchDPInvoke(b *testing.B, shards, numFns int) {
	b.Helper()
	tr := transport.NewInProc()
	if _, err := tr.Listen("cp-dp-bench", func(string, []byte) ([]byte, error) { return nil, nil }); err != nil {
		b.Fatal(err)
	}
	if _, err := tr.Listen("w-dp-bench:9000", func(_ string, p []byte) ([]byte, error) { return p, nil }); err != nil {
		b.Fatal(err)
	}
	dp := dataplane.New(dataplane.Config{
		ID:            1,
		Addr:          "dp-bench:8000",
		Transport:     tr,
		ControlPlanes: []string{"cp-dp-bench"},
		InvokeShards:  shards,
		// Park the metric loop: the benchmark measures the invoke path.
		MetricInterval: time.Hour,
		QueueTimeout:   10 * time.Second,
	})
	if err := dp.Start(); err != nil {
		b.Fatal(err)
	}
	defer dp.Stop()
	ctx := context.Background()
	scaling := core.DefaultScalingConfig()
	scaling.TargetConcurrency = 256 // warm slots never saturate
	list := proto.FunctionList{}
	for i := 0; i < numFns; i++ {
		list.Functions = append(list.Functions, core.Function{
			Name: fmt.Sprintf("dp-bench-fn-%d", i), Image: "img", Port: 80, Scaling: scaling,
		})
	}
	if _, err := tr.Call(ctx, "dp-bench:8000", proto.MethodAddFunction, list.Marshal()); err != nil {
		b.Fatal(err)
	}
	payloads := make([][]byte, numFns)
	for i := 0; i < numFns; i++ {
		name := list.Functions[i].Name
		update := proto.EndpointUpdate{Function: name}
		for e := 0; e < 4; e++ {
			update.Endpoints = append(update.Endpoints, proto.SandboxInfo{
				ID: core.SandboxID(i*4 + e + 1), Function: name, Node: 1,
				Addr: "w-dp-bench:9000", State: core.SandboxReady,
			})
		}
		if _, err := tr.Call(ctx, "dp-bench:8000", proto.MethodUpdateEndpoints, update.Marshal()); err != nil {
			b.Fatal(err)
		}
		req := proto.InvokeRequest{Function: name, Payload: []byte("x")}
		payloads[i] = req.Marshal()
	}
	var next atomic.Uint64
	var callErr atomic.Pointer[error]
	// Oversubscribe goroutines so invocations overlap even on few-core
	// machines; each in-flight request models one warm start.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := payloads[next.Add(1)%uint64(numFns)]
			if _, err := tr.Call(ctx, "dp-bench:8000", proto.MethodInvoke, p); err != nil {
				// Fatal must not be called from RunParallel workers;
				// surface the error after the barrier.
				callErr.Store(&err)
				return
			}
		}
	})
	b.StopTimer()
	if errp := callErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	b.ReportMetric(float64(dp.Metrics().Counter("invoke_lock_contended").Value())/float64(b.N), "contended_per_op")
}

// BenchmarkAblationDPInvokeSharding isolates the data plane's lock
// architecture: parallel warm invokes across 1/8/64 functions against
// the seed's global invoke lock vs per-function runtimes with lock-free
// endpoint snapshots. Pair with BenchmarkAblationDPInvokeWarmPick (in
// internal/dataplane) for the -benchmem proof that the snapshot pick
// path is allocation-free.
func BenchmarkAblationDPInvokeSharding(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"global", 1},
		{"sharded", 0}, // default 32 registry stripes
	} {
		for _, fns := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/fns-%d", cfg.name, fns), func(b *testing.B) {
				benchDPInvoke(b, cfg.shards, fns)
			})
		}
	}
}

// --- Cold-start pipeline: batched creates + pre-warm pool vs seed ---

// BenchmarkAblationColdStartBatching measures a burst of N cold starts
// across W live workers from one autoscale sweep to every replica ready,
// under the three cold-start pipeline configurations:
//
//   - seed: CreateBatch=1 reproduces the seed path — one CreateSandbox
//     RPC per sandbox, one SandboxReady RPC and one per-function endpoint
//     broadcast per readiness event;
//   - batched: one CreateSandboxBatch RPC per worker per sweep, worker
//     readiness coalesced into SandboxReadyBatch reports, endpoint
//     updates coalesced into one diff RPC per data plane;
//   - batched+prewarm: batched, plus a per-worker pool of initialized
//     sandboxes that cold starts claim instead of creating from scratch.
//
// ms_to_all_ready is the headline: wall time from the sweep to the last
// replica ready. create_batch_p50 confirms the ablation (1 in seed mode).
func BenchmarkAblationColdStartBatching(b *testing.B) {
	const (
		workers = 4
		burst   = 64
	)
	for _, cfg := range []struct {
		name        string
		createBatch int
		prewarm     int
	}{
		{"seed", 1, 0},
		{"batched", 0, 0},
		{"batched-prewarm", 0, burst/workers + 2},
	} {
		b.Run(fmt.Sprintf("%s/burst-%d", cfg.name, burst), func(b *testing.B) {
			h, err := experiments.NewColdStartHarness(experiments.ColdStartConfig{
				Workers:      workers,
				Burst:        burst,
				CreateBatch:  cfg.createBatch,
				Prewarm:      cfg.prewarm,
				LatencyScale: 0.02,
				Seed:         1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				elapsed, err := h.RunBurst()
				if err != nil {
					b.Fatal(err)
				}
				total += elapsed
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/float64(b.N)/float64(time.Millisecond), "ms_to_all_ready")
			b.ReportMetric(h.CP().Metrics().Histogram("create_batch_size").Percentile(50), "create_batch_p50")
			if cfg.prewarm > 0 {
				b.ReportMetric(float64(h.PrewarmHits())/float64(b.N), "prewarm_hits_per_burst")
			}
		})
	}
}

// --- Multi-data-plane tier: sharded async queue vs seed single queue ---

// BenchmarkAblationMultiDP measures asynchronous dispatch throughput
// through the full multi-replica tier — front end (rendezvous steering +
// membership) → data plane async queue (persist, dispatch, settle) →
// emulated workers — with the queue sharded (default 32 stripes,
// per-shard dispatch loops and store hashes) vs the seed single queue
// (-async-shards 1, pinned to the seed design by
// TestAsyncShardsAblationSeedParity). Each op is one async invocation
// accepted, durably persisted, dispatched, and settled; the flood runs
// in waves so acceptance, dispatch and persistence overlap the way a
// sustained async workload's do.
func BenchmarkAblationMultiDP(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"sharded", 0},
		{"seed-1-shard", 1},
	} {
		for _, replicas := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/replicas-%d", cfg.name, replicas), func(b *testing.B) {
				h, err := experiments.NewMultiDPHarness(experiments.MultiDPConfig{
					Replicas:    replicas,
					AsyncShards: cfg.shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer h.Close()
				const wave = 1024
				accepted := 0
				b.ResetTimer()
				for done := 0; done < b.N; done += wave {
					n := wave
					if b.N-done < n {
						n = b.N - done
					}
					got, _, err := h.AsyncFlood(n)
					if err != nil {
						b.Fatal(err)
					}
					accepted += got
				}
				b.StopTimer()
				if accepted < b.N {
					b.Fatalf("accepted %d of %d async invocations", accepted, b.N)
				}
			})
		}
	}
}

// --- Durable async failover: leased takeover vs seed wait-for-restart ---

// BenchmarkAblationAsyncLease measures one full async failover cycle —
// flood the replicas' shared durable queue, kill a replica mid-drain,
// and wait for the acknowledged backlog to reach zero — with the control
// plane leasing the victim's records to survivors vs the seed ablation
// (-async-lease=false), where the backlog is stranded until the victim
// restarts. Each op is one kill-to-empty cycle; the lease path's cycle
// excludes the restart the seed needs.
func BenchmarkAblationAsyncLease(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		lease bool
	}{
		{"lease", true},
		{"seed-wait-for-restart", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			h, err := experiments.NewAsyncLeaseHarness(experiments.AsyncLeaseConfig{
				Replicas:      3,
				LeaseDisabled: !cfg.lease,
				HandlerDelay:  time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Flood(96); err != nil {
					b.Fatal(err)
				}
				victims := h.KillFraction(0.34)
				if !cfg.lease {
					// The seed's only path to the victim's records.
					time.Sleep(600 * time.Millisecond) // past the prune
					if err := h.RestartVictims(victims); err != nil {
						b.Fatal(err)
					}
				}
				if _, stranded := h.AwaitDrain(30 * time.Second); stranded != 0 {
					b.Fatalf("%d acknowledged tasks stranded", stranded)
				}
				b.StopTimer()
				if cfg.lease {
					// Revive for the next cycle (recalls the lease).
					if err := h.RestartVictims(victims); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
		})
	}
}

// --- Transport cost: in-process vs TCP round trip ---

func benchTransportRTT(b *testing.B, tr transport.Transport, addr string) {
	b.Helper()
	ln, err := tr.Listen(addr, func(_ string, p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	payload := make([]byte, 64)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Call(ctx, ln.Addr(), "bench.Echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransportInProc(b *testing.B) {
	benchTransportRTT(b, transport.NewInProc(), "bench")
}

func BenchmarkAblationTransportTCP(b *testing.B) {
	tr := transport.NewTCP()
	defer tr.Close()
	benchTransportRTT(b, tr, "127.0.0.1:0")
}

// --- Scheduling policy costs ---

func BenchmarkAblationPlacementPolicies(b *testing.B) {
	nodes := make([]placement.NodeStatus, 1000)
	for i := range nodes {
		nodes[i] = placement.NodeStatus{
			Node: core.WorkerNode{ID: core.NodeID(i + 1), CPUMilli: 10000, MemoryMB: 65536},
			Util: core.NodeUtilization{CPUMilliUsed: (i * 37) % 9000, MemoryMBUsed: (i * 997) % 60000},
		}
	}
	req := placement.Requirements{CPUMilli: 100, MemoryMB: 128}
	for _, p := range []placement.Policy{
		placement.NewKubeDefault(1), placement.NewRandom(1),
		placement.NewRoundRobin(), placement.NewHermod(),
	} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Place(nodes, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationLoadBalancerPolicies(b *testing.B) {
	eps := make([]loadbalancer.Endpoint, 100)
	for i := range eps {
		eps[i] = loadbalancer.Endpoint{
			SandboxID: core.SandboxID(i + 1),
			InFlight:  i % 2,
			Capacity:  2,
		}
	}
	for _, p := range []loadbalancer.Policy{
		loadbalancer.NewLeastLoaded(1), loadbalancer.NewRoundRobin(),
		loadbalancer.NewRandom(1), loadbalancer.NewCHRLU(),
	} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if p.Pick("fn", uint64(i), eps) == nil {
					b.Fatal("nil pick")
				}
			}
		})
	}
}

func BenchmarkAblationAutoscalerDecide(b *testing.B) {
	m := autoscaler.NewManager()
	const fns = 500
	now := time.Unix(10000, 0)
	current := make(map[string]int, fns)
	for i := 0; i < fns; i++ {
		name := fmt.Sprintf("fn-%d", i)
		m.Add(name, core.DefaultScalingConfig())
		for s := 0; s < 60; s++ {
			m.Record(core.ScalingMetric{Function: name, InFlight: i % 7, At: now.Add(time.Duration(s) * time.Second)})
		}
		current[name] = i % 5
	}
	decideAt := now.Add(61 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(decideAt, current)
	}
	b.ReportMetric(fns, "functions_per_decision")
}

// --- Workload generation cost ---

func BenchmarkAblationTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := trace.NewAzureLike(trace.Config{Functions: 500, Duration: 5 * time.Minute, Seed: int64(i)})
		if tr.TotalInvocations() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- Wire-format cost ---

func BenchmarkAblationFunctionMarshal(b *testing.B) {
	fn := core.Function{
		Name: "resize-image", Image: "registry.example.com/resize:v3",
		Port: 8080, Runtime: "firecracker", Scaling: core.DefaultScalingConfig(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := core.MarshalFunction(&fn)
		if _, err := core.UnmarshalFunction(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Liveness path: relayed heartbeat batches vs direct per-worker RPCs ---

// BenchmarkAblationRelayHeartbeat measures the control plane's liveness
// ingest cost per full-fleet heartbeat round, direct (-relay off: one CP
// RPC per worker) vs an 8-relay tier (workers report to relays; each
// relay ships one aggregated batch per flush). Background loops are
// parked — every op is one explicit full-fleet round plus, in relay
// mode, one tier-wide flush — so cp_rpcs/op isolates the RPC-count
// collapse the relay tier buys: ~fleetSize for direct vs ~#relays.
func BenchmarkAblationRelayHeartbeat(b *testing.B) {
	const fleetSize = 1024
	for _, cfg := range []struct {
		name   string
		relays int
	}{
		{"direct", 0},
		{"relay-8", 8},
	} {
		b.Run(fmt.Sprintf("%s/workers-%d", cfg.name, fleetSize), func(b *testing.B) {
			h, err := experiments.NewFleetHarness(experiments.FleetConfig{
				Workers: fleetSize,
				Relays:  cfg.relays,
				// Park every background loop: rounds and flushes are
				// driven explicitly, and the huge timeout keeps sweeps
				// from failing parked workers.
				HeartbeatInterval: time.Hour,
				HeartbeatTimeout:  time.Hour,
				RelayFlush:        time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			if _, err := h.RegisterFleet(); err != nil {
				b.Fatal(err)
			}
			m := h.CP().Metrics()
			base := m.Counter("worker_hb_rpcs").Value() + m.Counter("worker_hb_batch_rpcs").Value()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.HeartbeatRound(32)
				h.FlushRelays()
			}
			b.StopTimer()
			total := m.Counter("worker_hb_rpcs").Value() + m.Counter("worker_hb_batch_rpcs").Value() - base
			b.ReportMetric(float64(total)/float64(b.N), "cp_rpcs/op")
		})
	}
}

// --- Predictive warmth: per-image prewarm pools × cache-aware placement ---

// BenchmarkAblationPredictiveWarmth smoke-runs the warmth experiment's
// four-arm ablation ({static, predictive} prewarm × {kube-default,
// cache-aware} placement) at tiny scale: a compressed Azure-like trace
// replayed against the live in-process cluster. The full-scale run commits
// its rows to BENCH_warmth.json; this keeps the harness and the whole
// predictor → target push → pool partition → cache-digest placement path
// from rotting.
func BenchmarkAblationPredictiveWarmth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(io.Discard, "warmth", 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Control plane replication: singleton CP vs 3-replica Raft log ---

// BenchmarkAblationCPReplication measures the cost of the replicated
// control plane on the durable write path: registrations flow through a
// singleton CP writing straight to its store vs a 3-replica tier where
// each write is proposed to the Raft log, group-committed at quorum, and
// applied on every replica. Concurrent writers let the leader coalesce
// proposals, so mean_wire_batch (entries shipped per AppendEntries
// round) reports how much of the fan-out cost batching amortizes.
func BenchmarkAblationCPReplication(b *testing.B) {
	for _, replicas := range []int{1, 3} {
		b.Run(fmt.Sprintf("replicas-%d", replicas), func(b *testing.B) {
			tr := transport.NewInProc()
			addrs := make([]string, replicas)
			for i := range addrs {
				addrs[i] = fmt.Sprintf("bcp%d:7000", i)
			}
			cps := make([]*controlplane.ControlPlane, replicas)
			for i := range cps {
				cfg := controlplane.Config{
					Addr:              addrs[i],
					Peers:             addrs,
					Transport:         tr,
					AutoscaleInterval: time.Hour, // idle the control loops
					HeartbeatTimeout:  time.Hour,
				}
				if replicas > 1 {
					cfg.LocalStore = store.NewMemory()
				} else {
					cfg.DB = store.NewMemory()
				}
				cps[i] = controlplane.New(cfg)
				if err := cps[i].Start(); err != nil {
					b.Fatal(err)
				}
				defer cps[i].Stop()
			}
			awaitBenchLeader(b, cps)

			client := cpclient.New(tr, addrs)
			ctx := context.Background()
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					fn := core.Function{
						Name:    fmt.Sprintf("bench-%d", seq.Add(1)),
						Image:   "registry.local/bench",
						Port:    8080,
						Scaling: core.DefaultScalingConfig(),
					}
					if _, err := client.CallWithRetry(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
						b.Errorf("register: %v", err)
						return
					}
				}
			})
			b.StopTimer()

			var rounds, entries uint64
			for _, cp := range cps {
				r, e := cp.ReplStats()
				rounds += r
				entries += e
			}
			if replicas > 1 {
				if entries == 0 || rounds == 0 {
					b.Fatalf("replicated tier shipped no log traffic: rounds=%d entries=%d", rounds, entries)
				}
				b.ReportMetric(float64(entries)/float64(rounds), "mean_wire_batch")
			} else if entries != 0 {
				b.Fatalf("singleton CP shipped replication traffic: entries=%d", entries)
			}
		})
	}
}

func awaitBenchLeader(b *testing.B, cps []*controlplane.ControlPlane) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, cp := range cps {
			if cp.IsLeader() {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatal("no CP leader elected")
}
