// Ablation benchmarks for the individual design decisions behind
// Dirigent's headline results (paper Table 1 and §5.2.1, "Dirigent
// optimization breakdown"): compact binary state vs. K8s-style bloated
// objects, persistence-free vs. fsync-per-update state management, RPC
// transport cost, and the scheduling-policy implementations themselves.
package dirigent_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"dirigent/internal/autoscaler"
	"dirigent/internal/codec"
	"dirigent/internal/core"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/placement"
	"dirigent/internal/store"
	"dirigent/internal/trace"
	"dirigent/internal/transport"
	"dirigent/internal/wal"
)

// --- State size & serialization: 16-byte records vs ~17 KB objects ---

func BenchmarkAblationSerializeCompactSandbox(b *testing.B) {
	sb := core.Sandbox{ID: 12345, Function: "resize-image", Node: 17, IP: [4]byte{10, 0, 3, 7}, Port: 30017}
	b.ReportAllocs()
	var sink [core.SandboxRecordSize]byte
	for i := 0; i < b.N; i++ {
		sink = core.MarshalSandboxRecord(&sb)
	}
	_ = sink
	b.ReportMetric(float64(core.SandboxRecordSize), "bytes_per_object")
}

func BenchmarkAblationSerializeBloatedK8sObject(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		out := codec.BloatedEncode("Pod", "resize-image-deployment-7f9c", []byte("st"), 17*1024)
		n = len(out)
	}
	b.ReportMetric(float64(n), "bytes_per_object")
}

// --- Persistence on vs off the critical path ---

func BenchmarkAblationStoreWriteNoFsync(b *testing.B) {
	s, err := store.Open(filepath.Join(b.TempDir(), "nofsync.aof"), wal.FsyncNever)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := make([]byte, core.SandboxRecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.HSet("sandboxes", "sb", rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStoreWriteFsyncAlways(b *testing.B) {
	s, err := store.Open(filepath.Join(b.TempDir(), "fsync.aof"), wal.FsyncAlways)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := make([]byte, core.SandboxRecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.HSet("sandboxes", "sb", rec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Transport cost: in-process vs TCP round trip ---

func benchTransportRTT(b *testing.B, tr transport.Transport, addr string) {
	b.Helper()
	ln, err := tr.Listen(addr, func(_ string, p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	payload := make([]byte, 64)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Call(ctx, ln.Addr(), "bench.Echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransportInProc(b *testing.B) {
	benchTransportRTT(b, transport.NewInProc(), "bench")
}

func BenchmarkAblationTransportTCP(b *testing.B) {
	tr := transport.NewTCP()
	defer tr.Close()
	benchTransportRTT(b, tr, "127.0.0.1:0")
}

// --- Scheduling policy costs ---

func BenchmarkAblationPlacementPolicies(b *testing.B) {
	nodes := make([]placement.NodeStatus, 1000)
	for i := range nodes {
		nodes[i] = placement.NodeStatus{
			Node: core.WorkerNode{ID: core.NodeID(i + 1), CPUMilli: 10000, MemoryMB: 65536},
			Util: core.NodeUtilization{CPUMilliUsed: (i * 37) % 9000, MemoryMBUsed: (i * 997) % 60000},
		}
	}
	req := placement.Requirements{CPUMilli: 100, MemoryMB: 128}
	for _, p := range []placement.Policy{
		placement.NewKubeDefault(1), placement.NewRandom(1),
		placement.NewRoundRobin(), placement.NewHermod(),
	} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Place(nodes, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationLoadBalancerPolicies(b *testing.B) {
	eps := make([]loadbalancer.Endpoint, 100)
	for i := range eps {
		eps[i] = loadbalancer.Endpoint{
			SandboxID: core.SandboxID(i + 1),
			InFlight:  i % 2,
			Capacity:  2,
		}
	}
	for _, p := range []loadbalancer.Policy{
		loadbalancer.NewLeastLoaded(1), loadbalancer.NewRoundRobin(),
		loadbalancer.NewRandom(1), loadbalancer.NewCHRLU(),
	} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if p.Pick("fn", uint64(i), eps) == nil {
					b.Fatal("nil pick")
				}
			}
		})
	}
}

func BenchmarkAblationAutoscalerDecide(b *testing.B) {
	m := autoscaler.NewManager()
	const fns = 500
	now := time.Unix(10000, 0)
	current := make(map[string]int, fns)
	for i := 0; i < fns; i++ {
		name := fmt.Sprintf("fn-%d", i)
		m.Add(name, core.DefaultScalingConfig())
		for s := 0; s < 60; s++ {
			m.Record(core.ScalingMetric{Function: name, InFlight: i % 7, At: now.Add(time.Duration(s) * time.Second)})
		}
		current[name] = i % 5
	}
	decideAt := now.Add(61 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(decideAt, current)
	}
	b.ReportMetric(fns, "functions_per_decision")
}

// --- Workload generation cost ---

func BenchmarkAblationTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := trace.NewAzureLike(trace.Config{Functions: 500, Duration: 5 * time.Minute, Seed: int64(i)})
		if tr.TotalInvocations() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- Wire-format cost ---

func BenchmarkAblationFunctionMarshal(b *testing.B) {
	fn := core.Function{
		Name: "resize-image", Image: "registry.example.com/resize:v3",
		Port: 8080, Runtime: "firecracker", Scaling: core.DefaultScalingConfig(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := core.MarshalFunction(&fn)
		if _, err := core.UnmarshalFunction(buf); err != nil {
			b.Fatal(err)
		}
	}
}
