// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments list                 # show available experiment IDs
//	experiments all [-scale 0.3]     # run everything
//	experiments fig7 [-scale 1.0]    # run one experiment
//
// Scale in (0, 1] shrinks durations and workload sizes; 1.0 reproduces
// paper-sized runs (several minutes of wall time for the trace replays).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dirigent/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.3, "experiment scale in (0, 1]; 1.0 = paper-sized")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	switch cmd := flag.Arg(0); cmd {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
	case "all":
		for _, e := range experiments.All() {
			start := time.Now()
			if err := experiments.Run(os.Stdout, e.ID, *scale); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	default:
		if err := experiments.Run(os.Stdout, cmd, *scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `Usage: experiments [-scale S] <list | all | EXPERIMENT-ID>

Regenerates the tables and figures of "Dirigent: Lightweight Serverless
Orchestration" (SOSP 2024). Run 'experiments list' for available IDs.
`)
	flag.PrintDefaults()
}
