// Command dirigentctl is the client CLI for a Dirigent cluster: it speaks
// the end-user API from Table 2 of the paper (register, deregister,
// invoke) plus a status query, over TCP.
//
// Usage:
//
//	dirigentctl -cp 127.0.0.1:7000 register -name hello -image img:latest -port 8080
//	dirigentctl -dp 127.0.0.1:8000 invoke -name hello -payload '...'
//	dirigentctl -cp 127.0.0.1:7000 status
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

func main() {
	cpAddrs := flag.String("cp", "127.0.0.1:7000", "comma-separated control plane addresses")
	dpAddr := flag.String("dp", "127.0.0.1:8000", "data plane address (for invoke)")
	timeout := flag.Duration("timeout", 60*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() < 1 {
		fail("usage: dirigentctl [flags] <register|deregister|invoke|status|functions|dataplanes> [subflags]")
	}

	tr := transport.NewTCP()
	defer tr.Close()
	cp := cpclient.New(tr, strings.Split(*cpAddrs, ","))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd := flag.Arg(0); cmd {
	case "register":
		fs := flag.NewFlagSet("register", flag.ExitOnError)
		name := fs.String("name", "", "function name")
		image := fs.String("image", "", "container image URL")
		port := fs.Int("port", 8080, "port the function listens on")
		runtime := fs.String("runtime", "containerd", "sandbox runtime")
		minScale := fs.Int("min-scale", 0, "minimum sandbox count")
		maxScale := fs.Int("max-scale", 0, "maximum sandbox count (0 = unbounded)")
		fs.Parse(flag.Args()[1:])
		fn := core.Function{
			Name:    *name,
			Image:   *image,
			Port:    uint16(*port),
			Runtime: *runtime,
			Scaling: core.DefaultScalingConfig(),
		}
		fn.Scaling.MinScale = *minScale
		fn.Scaling.MaxScale = *maxScale
		if err := fn.Validate(); err != nil {
			fail(err.Error())
		}
		if _, err := cp.Call(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			fail("register: " + err.Error())
		}
		fmt.Printf("registered %q\n", *name)

	case "deregister":
		fs := flag.NewFlagSet("deregister", flag.ExitOnError)
		name := fs.String("name", "", "function name")
		fs.Parse(flag.Args()[1:])
		fn := core.Function{Name: *name, Image: "-", Port: 1}
		if _, err := cp.Call(ctx, proto.MethodDeregisterFunction, core.MarshalFunction(&fn)); err != nil {
			fail("deregister: " + err.Error())
		}
		fmt.Printf("deregistered %q\n", *name)

	case "invoke":
		fs := flag.NewFlagSet("invoke", flag.ExitOnError)
		name := fs.String("name", "", "function name")
		payload := fs.String("payload", "", "request payload")
		async := fs.Bool("async", false, "asynchronous invocation (at-least-once)")
		fs.Parse(flag.Args()[1:])
		req := proto.InvokeRequest{Function: *name, Async: *async, Payload: []byte(*payload)}
		start := time.Now()
		respB, err := tr.Call(ctx, *dpAddr, proto.MethodInvoke, req.Marshal())
		if err != nil {
			fail("invoke: " + err.Error())
		}
		resp, err := proto.UnmarshalInvokeResponse(respB)
		if err != nil {
			fail("invoke: " + err.Error())
		}
		fmt.Printf("response (%d bytes, cold=%v, scheduling=%.2fms, e2e=%v):\n%s\n",
			len(resp.Body), resp.ColdStart, float64(resp.SchedulingLatencyUs)/1000,
			time.Since(start).Round(time.Millisecond), resp.Body)

	case "status":
		respB, err := cp.Call(ctx, proto.MethodClusterStatus, nil)
		if err != nil {
			fail("status: " + err.Error())
		}
		os.Stdout.Write(respB)

	case "functions":
		// Read-only: any replica (leader or lease-fresh follower) may
		// answer, so this spreads across the CP tier.
		respB, err := cp.CallRead(ctx, proto.MethodListFunctions, nil)
		if err != nil {
			fail("functions: " + err.Error())
		}
		list, err := proto.UnmarshalFunctionList(respB)
		if err != nil {
			fail("functions: " + err.Error())
		}
		for i := range list.Functions {
			f := &list.Functions[i]
			fmt.Printf("function %s image=%s port=%d runtime=%s\n", f.Name, f.Image, f.Port, f.Runtime)
		}

	case "dataplanes":
		respB, err := cp.CallRead(ctx, proto.MethodListDataPlanes, nil)
		if err != nil {
			fail("dataplanes: " + err.Error())
		}
		list, err := proto.UnmarshalDataPlaneList(respB)
		if err != nil {
			fail("dataplanes: " + err.Error())
		}
		for i := range list.DataPlanes {
			p := &list.DataPlanes[i]
			fmt.Printf("dataplane %d %s:%d\n", p.ID, p.IP, p.Port)
		}

	default:
		fail(fmt.Sprintf("unknown command %q", cmd))
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
