// Command dirigent-dp runs a standalone Dirigent data plane replica over
// TCP: the monolithic reverse proxy, per-function request queues,
// concurrency throttler, and load balancer of the paper's Figure 6. Data
// planes are all-active; run several behind the front-end load balancer
// and scale them independently of the control plane.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/store"
	"dirigent/internal/transport"
	"dirigent/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8000", "address to listen on")
	id := flag.Int("id", 1, "data plane replica ID")
	cps := flag.String("control-planes", "127.0.0.1:7000", "comma-separated control plane addresses")
	metricInterval := flag.Duration("metric-interval", 250*time.Millisecond, "scaling metric report period")
	hbInterval := flag.Duration("heartbeat-interval", 250*time.Millisecond, "DP → CP liveness heartbeat period (the CP prunes silent replicas from its fan-out set)")
	queueTimeout := flag.Duration("queue-timeout", 60*time.Second, "cold-start queue timeout")
	policy := flag.String("lb-policy", "least-loaded", "load balancing policy: least-loaded | round-robin | random | ch-rlu")
	shards := flag.Int("invoke-shards", 0, "stripes in the function registry (0 = default 32, 1 = single global invoke lock ablation)")
	asyncShards := flag.Int("async-shards", 0, "stripes in the async queue: per-shard dispatch loops and store hashes (0 = default 32, 1 = seed single-queue ablation)")
	asyncStore := flag.String("async-store", "", "append-only store file for the durable async queue (empty = memory-only queue)")
	asyncFnQuota := flag.Int("async-fn-quota", 0, "max queued async tasks one function may hold per queue shard; excess accepts are rejected (0 = no quota, seed admission)")
	flag.Parse()

	var balancer loadbalancer.Policy
	switch *policy {
	case "least-loaded":
		balancer = loadbalancer.NewLeastLoaded(int64(*id))
	case "round-robin":
		balancer = loadbalancer.NewRoundRobin()
	case "random":
		balancer = loadbalancer.NewRandom(int64(*id))
	case "ch-rlu":
		balancer = loadbalancer.NewCHRLU()
	default:
		log.Fatalf("unknown lb policy %q", *policy)
	}

	var db *store.Store
	if *asyncStore != "" {
		var err error
		if db, err = store.Open(*asyncStore, wal.FsyncGroup); err != nil {
			log.Fatalf("open async store: %v", err)
		}
		defer db.Close()
	}

	dp := dataplane.New(dataplane.Config{
		ID:                core.DataPlaneID(*id),
		Addr:              *addr,
		Transport:         transport.NewTCP(),
		ControlPlanes:     strings.Split(*cps, ","),
		Balancer:          balancer,
		MetricInterval:    *metricInterval,
		HeartbeatInterval: *hbInterval,
		QueueTimeout:      *queueTimeout,
		InvokeShards:      *shards,
		AsyncShards:       *asyncShards,
		AsyncStore:        db,
		AsyncFnQuota:      *asyncFnQuota,
	})
	if err := dp.Start(); err != nil {
		log.Fatalf("start data plane: %v", err)
	}
	fmt.Printf("dirigent-dp %d listening on %s (policy: %s, invoke-shards: %d, async-shards: %d)\n",
		*id, *addr, *policy, *shards, *asyncShards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	dp.Stop()
	// Surface invoke-path telemetry (lock contention, warm/cold starts,
	// snapshot rebuilds, async queue health) for post-mortem inspection.
	fmt.Print(dp.Metrics().Dump())
}
