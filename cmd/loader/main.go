// Command loader is the InVitro-style load generator (paper §5.1) for a
// running Dirigent cluster: it generates (or reads) an Azure-shaped trace,
// registers one function per trace entry against the control plane, replays
// the trace's invocations through the data planes in real time (optionally
// time-compressed), and reports the scheduling-latency and slowdown
// statistics of §5.3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/frontend"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
	"dirigent/internal/trace"
	"dirigent/internal/transport"
)

func main() {
	cps := flag.String("control-planes", "127.0.0.1:7000", "comma-separated control plane addresses")
	dps := flag.String("data-planes", "127.0.0.1:8000", "comma-separated seed data plane addresses (membership then syncs dynamically from the control plane)")
	functions := flag.Int("functions", 50, "number of trace functions to generate")
	minutes := flag.Int("minutes", 2, "trace duration in minutes (before compression)")
	compress := flag.Float64("compress", 10, "time compression factor (10 = run 10x faster than the trace)")
	seed := flag.Int64("seed", 42, "trace seed")
	csvIn := flag.String("trace", "", "replay this trace CSV instead of generating one")
	image := flag.String("image", "registry.local/trace-fn", "container image registered for trace functions")
	flag.Parse()

	tr := transport.NewTCP()
	defer tr.Close()
	cpAddrs := strings.Split(*cps, ",")
	cp := cpclient.New(tr, cpAddrs)
	// The static -data-planes list only seeds membership; the front end
	// keeps it in sync with the control plane's live replica set, so data
	// planes added, killed, or revived mid-replay steer correctly.
	lb := frontend.New(frontend.Config{
		Transport:     tr,
		DataPlanes:    strings.Split(*dps, ","),
		ControlPlanes: cpAddrs,
	})
	if err := lb.Start(); err != nil {
		fatal("start front end: %v", err)
	}
	defer lb.Stop()

	var workload *trace.Trace
	if *csvIn != "" {
		f, err := os.Open(*csvIn)
		if err != nil {
			fatal("open trace: %v", err)
		}
		workload, err = trace.ParseCSV(f)
		f.Close()
		if err != nil {
			fatal("parse trace: %v", err)
		}
	} else {
		workload = trace.NewAzureLike(trace.Config{
			Functions: *functions,
			Duration:  time.Duration(*minutes) * time.Minute,
			Seed:      *seed,
		})
	}
	fmt.Printf("workload: %d functions, %d invocations over %v (compress %.0fx)\n",
		len(workload.Functions), workload.TotalInvocations(), workload.Duration, *compress)

	// Register every function.
	regStart := time.Now()
	for _, fn := range workload.Functions {
		spec := core.Function{
			Name:    fn.Name,
			Image:   *image,
			Port:    8080,
			Scaling: core.DefaultScalingConfig(),
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, err := cp.Call(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&spec))
		cancel()
		if err != nil {
			fatal("register %s: %v", fn.Name, err)
		}
	}
	fmt.Printf("registered %d functions in %v (%.2f ms/function)\n",
		len(workload.Functions), time.Since(regStart).Round(time.Millisecond),
		float64(time.Since(regStart).Milliseconds())/float64(len(workload.Functions)))

	// Replay invocations on the compressed timeline.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		scheduled = telemetry.NewHistogram()
		slowdowns = telemetry.NewHistogram()
		failures  int
		cold      int
	)
	start := time.Now()
	for _, inv := range workload.Invocations {
		inv := inv
		at := time.Duration(float64(inv.At) / *compress)
		delay := at - time.Since(start)
		if delay > 0 {
			time.Sleep(delay)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			exec := time.Duration(float64(inv.Exec) / *compress)
			payload := make([]byte, 8)
			v := uint64(exec)
			for i := 0; i < 8; i++ {
				payload[i] = byte(v >> (8 * i))
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			t0 := time.Now()
			resp, err := lb.Invoke(ctx, &proto.InvokeRequest{Function: inv.Function.Name, Payload: payload})
			e2e := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures++
				return
			}
			if resp.ColdStart {
				cold++
			}
			scheduled.ObserveMs(float64(resp.SchedulingLatencyUs) / 1000)
			if exec > 0 {
				slowdowns.ObserveMs(float64(e2e) / float64(exec))
			}
		}()
	}
	wg.Wait()

	fmt.Printf("\ncompleted %d invocations in %v (%d cold starts, %d failures)\n",
		workload.TotalInvocations()-failures, time.Since(start).Round(time.Second), cold, failures)
	fmt.Printf("scheduling latency: %s\n", scheduled.Summary())
	fmt.Printf("slowdown:           %s\n", slowdowns.Summary())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
