// Command dirigent-relay runs a standalone liveness relay over TCP. It
// sits between worker daemons and the control plane: workers point their
// -relay flag here and keep speaking the unmodified per-worker protocol
// (register, heartbeat), and the relay ships the control plane one
// aggregated batch RPC per flush period. Relays are stateless — kill one
// and its workers fail over to the next relay on their list (or to the
// direct control plane path) while the control plane re-verifies the
// silent relay's members from its own arrival stamps.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dirigent/internal/relay"
	"dirigent/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "address to listen on")
	cps := flag.String("control-planes", "127.0.0.1:7000", "comma-separated control plane addresses")
	flush := flag.Duration("flush-interval", 100*time.Millisecond, "batching period for aggregated heartbeat RPCs")
	chunk := flag.Int("chunk", 0, "max samples or registrations per CP RPC (0 = default 1024)")
	missTimeout := flag.Duration("miss-timeout", 0, "silence before a once-seen worker is reported missing (0 = 3x flush-interval)")
	flag.Parse()

	r := relay.New(relay.Config{
		Addr:          *addr,
		Transport:     transport.NewTCP(),
		ControlPlanes: strings.Split(*cps, ","),
		FlushInterval: *flush,
		Chunk:         *chunk,
		MissTimeout:   *missTimeout,
	})
	if err := r.Start(); err != nil {
		log.Fatalf("start relay: %v", err)
	}
	fmt.Printf("dirigent-relay listening on %s (control planes: %s)\n", *addr, *cps)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	r.Stop()
	// Surface batching telemetry (flush latency, batch sizes, absorbed
	// samples, flush errors) for post-mortem inspection.
	fmt.Print(r.Metrics().Dump())
}
