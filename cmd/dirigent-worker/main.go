// Command dirigent-worker runs a standalone Dirigent worker daemon over
// TCP: it registers with the control plane, heartbeats with resource
// utilization, and creates/tears down sandboxes through the three-call
// runtime interface. In this reproduction the runtimes are the calibrated
// simulated containerd and Firecracker-snapshot runtimes (see DESIGN.md
// for the substitution rationale); integrating a physical runtime means
// implementing sandbox.Runtime's three calls.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/sandbox"
	"dirigent/internal/transport"
	"dirigent/internal/worker"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "address to listen on")
	id := flag.Int("id", 1, "worker node ID")
	name := flag.String("name", "", "worker name (default worker-<id>)")
	cps := flag.String("control-planes", "127.0.0.1:7000", "comma-separated control plane addresses")
	relays := flag.String("relay", "off",
		"comma-separated relay addresses for liveness traffic in preference order, or off for the seed's direct WN-to-CP protocol")
	runtimeName := flag.String("runtime", "containerd", "sandbox runtime: containerd | firecracker")
	latencyScale := flag.Float64("latency-scale", 1.0, "scale factor on simulated sandbox latencies")
	cpuMilli := flag.Int("cpu-milli", 10000, "node CPU capacity in millicores")
	memMB := flag.Int("memory-mb", 65536, "node memory capacity in MB")
	hb := flag.Duration("heartbeat", 500*time.Millisecond, "heartbeat period")
	prewarm := flag.Int("prewarm", 0,
		"pre-warm pool *budget*: at most this many initialized-but-unassigned sandboxes are kept on the node (0 = disabled). Without control plane targets the whole budget warms the generic base image; with -predictive-prewarm on the control plane, the budget is partitioned across the predictor's hot images and cold starts claim an image-matched entry before falling back to base")
	createConc := flag.Int("create-concurrency", 0,
		"bound on concurrent runtime sandbox creations (0 = default 8)")
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("worker-%d", *id)
	}
	host, portStr, err := net.SplitHostPort(*addr)
	if err != nil {
		log.Fatalf("bad -addr: %v", err)
	}
	var port uint16
	fmt.Sscanf(portStr, "%d", &port)

	// The image cache is shared between the runtime (which pulls into it)
	// and the worker daemon, whose heartbeats carry its digest to the
	// control plane for cache-locality-aware placement.
	cache := sandbox.NewImageCache()
	cfg := sandbox.Config{LatencyScale: *latencyScale, Seed: int64(*id), Images: cache}
	var rt sandbox.Runtime
	switch *runtimeName {
	case "containerd":
		rt = sandbox.NewContainerd(cfg)
	case "firecracker":
		rt = sandbox.NewFirecracker(sandbox.FirecrackerConfig{Config: cfg, Snapshots: true})
	default:
		log.Fatalf("unknown runtime %q", *runtimeName)
	}

	var relayList []string
	if *relays != "" && *relays != "off" {
		relayList = strings.Split(*relays, ",")
	}

	w := worker.New(worker.Config{
		Node: core.WorkerNode{
			ID:       core.NodeID(*id),
			Name:     *name,
			IP:       host,
			Port:     port,
			CPUMilli: *cpuMilli,
			MemoryMB: *memMB,
		},
		Addr:              *addr,
		Runtime:           rt,
		Transport:         transport.NewTCP(),
		ControlPlanes:     strings.Split(*cps, ","),
		Relays:            relayList,
		HeartbeatInterval: *hb,
		Prewarm:           *prewarm,
		CreateConcurrency: *createConc,
		Cache:             cache,
	})
	if err := w.Start(); err != nil {
		log.Fatalf("start worker: %v", err)
	}
	fmt.Printf("dirigent-worker %s listening on %s (runtime: %s)\n", *name, *addr, rt.Name())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	w.Stop()
	// Surface dispatch-path telemetry (invocations, sandbox churn,
	// creation latencies) for post-mortem inspection.
	fmt.Print(w.Metrics().Dump())
}
