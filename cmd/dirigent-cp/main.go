// Command dirigent-cp runs a standalone Dirigent control plane replica
// over TCP. With -peers listing all replica addresses it participates in
// Raft leader election; alone it runs in single-node mode. Cluster state
// that must survive failures (function registrations, worker and data
// plane records — paper Table 3) is persisted to an append-only store
// file; sandbox state is kept in memory only and reconstructed from
// worker reports after a failover.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/placement"
	"dirigent/internal/predictor"
	"dirigent/internal/store"
	"dirigent/internal/transport"
	"dirigent/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "address to listen on")
	peers := flag.String("peers", "", "comma-separated control plane replica addresses (including this one)")
	dbPath := flag.String("db", "dirigent-cp.aof", "append-only store file")
	fsync := flag.String("fsync", "group",
		"fsync policy: group (coalesce concurrent writes into one fsync), always (Redis appendfsync=always, the paper's baseline), never")
	shards := flag.Int("state-shards", 0, "locks striping the function state map (0 = default 32, 1 = single global lock ablation)")
	workerShards := flag.Int("worker-shards", 0, "locks striping the worker registry (0 = default 32, 1 = single registry lock ablation)")
	createBatch := flag.Int("create-batch", 0,
		"max sandbox creations per per-worker batch RPC (0 = default 256, 1 = seed ablation: per-sandbox creates and per-function endpoint broadcasts)")
	autoscale := flag.Duration("autoscale-interval", 2*time.Second, "autoscaling loop period")
	hbTimeout := flag.Duration("heartbeat-timeout", 2*time.Second, "worker heartbeat timeout")
	dpTimeout := flag.Duration("dataplane-timeout", 0, "data plane heartbeat timeout before the replica is pruned from the fan-out set (0 = 3x heartbeat-timeout)")
	relayTimeout := flag.Duration("relay-timeout", 0, "relay batch-arrival timeout before a relay is treated as a correlated mass-timeout candidate (0 = heartbeat-timeout)")
	deadGC := flag.Duration("dead-worker-gc", 0, "how long a failed worker's record lingers (revivable by a late heartbeat) before it is garbage collected (0 = 10x heartbeat-timeout, negative = never)")
	fullScanEvery := flag.Int("full-scan-every", 0, "with relays current, run a full registry scan every Nth health sweep; fast sweeps in between check only relays and suspects (0 = default 4, 1 = always full scan)")
	persistAll := flag.Bool("persist-sandbox-state", false, "ablation: persist sandbox state on the critical path")
	placementName := flag.String("placement", "kube-default",
		"placement policy: kube-default | cache-aware (kube scoring plus a bonus for nodes whose image cache already holds the function's image) | random | round-robin | hermod")
	predictive := flag.Bool("predictive-prewarm", false,
		"partition each worker's pre-warm budget across per-image pools sized by the trace-driven demand predictor (off = workers keep their whole budget on the generic base image)")
	prewarmWindow := flag.Duration("prewarm-window", 0, "demand predictor averaging window (0 = default 1m)")
	prewarmLead := flag.Duration("prewarm-lead", 0, "how far ahead of a predicted burst per-image pools are raised (0 = default 30s)")
	asyncLease := flag.Bool("async-lease", true, "lease a pruned durable data plane's async queue records to surviving replicas (false = ablation: records wait for the replica to restart)")
	followerReads := flag.Bool("follower-reads", true,
		"with -peers, let follower replicas serve read-only RPCs (ListDataPlanes, ListFunctions) from their applied store behind a leader-lease check, offloading the leader to writes only")
	rejoin := flag.Bool("rejoin", false,
		"with -peers, mark this replica as rejoining an established group after a crash: it withholds Raft votes until its log catches up to the leader's commit index (leave false on first boot)")
	flag.Parse()

	var placer placement.Policy
	switch *placementName {
	case "kube-default":
		placer = nil // controlplane.New defaults to kube scoring
	case "cache-aware":
		placer = placement.NewCacheAware(1)
	case "random":
		placer = placement.NewRandom(1)
	case "round-robin":
		placer = placement.NewRoundRobin()
	case "hermod":
		placer = placement.NewHermod()
	default:
		log.Fatalf("unknown -placement policy %q (want kube-default, cache-aware, random, round-robin, or hermod)", *placementName)
	}

	var policy wal.FsyncPolicy
	switch *fsync {
	case "group":
		policy = wal.FsyncGroup
	case "always":
		policy = wal.FsyncAlways
	case "never":
		policy = wal.FsyncNever
	default:
		log.Fatalf("unknown -fsync policy %q (want group, always, or never)", *fsync)
	}
	db, err := store.Open(*dbPath, policy)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer db.Close()

	peerList := []string{*addr}
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}

	cfg := controlplane.Config{
		Addr:                *addr,
		Peers:               peerList,
		Transport:           transport.NewTCP(),
		StateShards:         *shards,
		WorkerShards:        *workerShards,
		CreateBatch:         *createBatch,
		AutoscaleInterval:   *autoscale,
		HeartbeatTimeout:    *hbTimeout,
		DataPlaneTimeout:    *dpTimeout,
		RelayTimeout:        *relayTimeout,
		DeadWorkerGC:        *deadGC,
		FullScanEvery:       *fullScanEvery,
		PersistSandboxState: *persistAll,
		Placer:              placer,
		PredictivePrewarm:   *predictive,
		Predictor:           predictor.Config{Window: *prewarmWindow, Lead: *prewarmLead},
		AsyncLeaseDisabled:  !*asyncLease,
		// TCP deployments need wider election windows than in-process.
		RaftHeartbeat:   50 * time.Millisecond,
		RaftElectionMin: 150 * time.Millisecond,
		RaftElectionMax: 300 * time.Millisecond,
	}
	if len(peerList) > 1 {
		// Replicated-log regime: this replica's store holds its applied
		// state; durable writes are proposed to the Raft log and each
		// replica recovers from its own store after a failover.
		cfg.LocalStore = db
		cfg.FollowerReads = *followerReads
		cfg.RaftRejoin = *rejoin
	} else {
		cfg.DB = db
	}
	cp := controlplane.New(cfg)
	if err := cp.Start(); err != nil {
		log.Fatalf("start control plane: %v", err)
	}
	fmt.Printf("dirigent-cp listening on %s (peers: %v, db: %s)\n", *addr, peerList, *dbPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	cp.Stop()
	// Surface scheduling-path telemetry (cold-start scheduling latency,
	// create/endpoint batch sizes, shard contention) for post-mortem
	// inspection.
	fmt.Print(cp.Metrics().Dump())
}
