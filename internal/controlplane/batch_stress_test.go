package controlplane

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// TestConcurrentBatchedScalePath hammers the batched cold-start pipeline
// under -race: concurrent autoscale sweeps (issuing per-worker create
// batches and coalesced endpoint fan-outs) race worker churn
// (register/deregister, which re-enters Reconcile via failWorker),
// function remove/re-register, batched readiness reports, and heartbeat
// floods. It locks in that the staged-create/dispatch split and the
// batch fan-out never rely on a global lock for exclusion.
func TestConcurrentBatchedScalePath(t *testing.T) {
	const (
		numFunctions = 32
		numWorkers   = 4
		iters        = 100
	)

	tr := transport.NewInProc()
	db := store.NewMemory()
	cp := New(Config{
		Addr:      "cpb0",
		Transport: tr,
		DB:        db,
		// Sweeps are driven explicitly below; park the tickers.
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	call := func(method string, payload []byte) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Errors are expected under churn; the test asserts on final
		// state and on the race detector, not per-call success.
		_, _ = tr.Call(ctx, "cpb0", method, payload)
	}

	workerReq := func(w int) proto.RegisterWorkerRequest {
		return proto.RegisterWorkerRequest{Worker: core.WorkerNode{
			ID: core.NodeID(w), Name: fmt.Sprintf("bw%d", w), IP: fmt.Sprintf("10.1.0.%d", w),
			Port: 9000, CPUMilli: 1 << 20, MemoryMB: 1 << 20,
		}}
	}
	for w := 1; w <= numWorkers; w++ {
		startFakeWorker(t, tr, "cpb0", core.NodeID(w), fmt.Sprintf("10.1.0.%d:9000", w), true)
		req := workerReq(w)
		call(proto.MethodRegisterWorker, req.Marshal())
	}
	startFakeDP(t, tr, "bdp0:8000")
	reg := proto.RegisterDataPlaneRequest{DataPlane: core.DataPlane{ID: 1, IP: "bdp0", Port: 8000}}
	call(proto.MethodRegisterDataPlane, reg.Marshal())

	fnName := func(i int) string { return fmt.Sprintf("batch-fn-%d", i) }
	// Scale-hungry functions: MinScale keeps every sweep issuing creates.
	scaled := func(name string, minScale int) core.Function {
		fn := fnSpec(name)
		fn.Scaling.MinScale = minScale
		return fn
	}
	for i := 0; i < numFunctions; i++ {
		fn := scaled(fnName(i), 1+i%4)
		call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	}

	var wg sync.WaitGroup
	run := func(fn func(g int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 0; g < iters; g++ {
				fn(g)
			}
		}()
	}

	// Concurrent autoscale sweeps: each issues batched creates for every
	// under-scaled function and a coalesced endpoint fan-out.
	for g := 0; g < 4; g++ {
		run(func(int) { cp.Reconcile() })
	}
	// Worker churn: deregister (drains endpoints, re-enters Reconcile)
	// then re-register the same node.
	run(func(i int) {
		w := i%numWorkers + 1
		req := workerReq(w)
		if i%2 == 0 {
			call(proto.MethodDeregisterWorker, req.Marshal())
		} else {
			call(proto.MethodRegisterWorker, req.Marshal())
		}
	})
	// Function remove/re-register racing the sweeps that create for them.
	run(func(i int) {
		fn := scaled(fnName(i%numFunctions), 1)
		if i%3 == 2 {
			call(proto.MethodDeregisterFunction, core.MarshalFunction(&fn))
		} else {
			call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
		}
	})
	// Batched readiness reports racing the singleton path.
	run(func(i int) {
		batch := proto.SandboxEventBatch{}
		for e := 0; e < 4; e++ {
			batch.Events = append(batch.Events, proto.SandboxEvent{
				SandboxID: core.SandboxID(2_000_000 + i*4 + e),
				Function:  fnName((i + e) % numFunctions),
				Node:      core.NodeID(i%numWorkers + 1),
				Addr:      fmt.Sprintf("10.1.0.%d:9000", i%numWorkers+1),
			})
		}
		call(proto.MethodSandboxReadyBatch, batch.Marshal())
	})
	// Heartbeats and reads.
	run(func(i int) {
		hb := proto.WorkerHeartbeat{Node: core.NodeID(i%numWorkers + 1)}
		call(proto.MethodWorkerHeartbeat, hb.Marshal())
		cp.FunctionScale(fnName(i % numFunctions))
		if i%16 == 0 {
			call(proto.MethodClusterStatus, nil)
		}
	})

	wg.Wait()
	// Re-register everything churned away, then verify the cluster is
	// still coherent and schedulable.
	for w := 1; w <= numWorkers; w++ {
		req := workerReq(w)
		call(proto.MethodRegisterWorker, req.Marshal())
	}
	for i := 0; i < numFunctions; i++ {
		fn := scaled(fnName(i), 1)
		call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	}
	cp.Reconcile()
	if got := cp.WorkerCount(); got != numWorkers {
		t.Errorf("WorkerCount = %d, want %d", got, numWorkers)
	}
	for i := 0; i < numFunctions; i++ {
		if _, ok := db.HGet(hashFunctions, fnName(i)); !ok {
			t.Errorf("function %s lost from persistent store", fnName(i))
		}
	}
}

// TestCreateBatchAblationSeedParity locks in the CreateBatch=1 ablation:
// the control plane must issue one CreateSandbox RPC per sandbox and
// zero batch RPCs, reproducing the seed pipeline exactly.
func TestCreateBatchAblationSeedParity(t *testing.T) {
	for _, tc := range []struct {
		name        string
		createBatch int
		wantBatches bool
	}{
		{"seed-batch-1", 1, false},
		{"batched-default", 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := transport.NewInProc()
			cp := New(Config{
				Addr:              "cpp0",
				Transport:         tr,
				DB:                store.NewMemory(),
				AutoscaleInterval: time.Hour,
				HeartbeatTimeout:  time.Hour,
				CreateBatch:       tc.createBatch,
			})
			if err := cp.Start(); err != nil {
				t.Fatal(err)
			}
			defer cp.Stop()
			w := startFakeWorker(t, tr, "cpp0", 1, "10.2.0.1:9000", true)
			ctx := context.Background()
			req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{
				ID: 1, Name: "pw1", IP: "10.2.0.1", Port: 9000, CPUMilli: 1 << 20, MemoryMB: 1 << 20,
			}}
			if _, err := tr.Call(ctx, "cpp0", proto.MethodRegisterWorker, req.Marshal()); err != nil {
				t.Fatal(err)
			}
			fn := fnSpec("parity")
			fn.Scaling.MinScale = 8
			if _, err := tr.Call(ctx, "cpp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
				t.Fatal(err)
			}
			cp.Reconcile()
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if ready, _ := cp.FunctionScale("parity"); ready >= 8 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if ready, _ := cp.FunctionScale("parity"); ready < 8 {
				t.Fatalf("ready = %d, want 8", ready)
			}
			w.mu.Lock()
			singles, batches := w.singleRPCs, w.batchRPCs
			w.mu.Unlock()
			if tc.wantBatches {
				if batches == 0 {
					t.Errorf("default config sent no batch RPCs (singles=%d)", singles)
				}
			} else {
				if batches != 0 || singles != 8 {
					t.Errorf("seed ablation sent %d singles + %d batches, want 8 + 0", singles, batches)
				}
				if p := cp.Metrics().Histogram("create_batch_size").Max(); p > 1 {
					t.Errorf("create_batch_size max = %.0f in seed mode, want 1", p)
				}
			}
		})
	}
}
