package controlplane

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// TestWorkerShardsAblationSeedParity locks in the WorkerShards=1
// ablation (mirror of TestCreateBatchAblationSeedParity): with a single
// stripe, every worker lands behind the one registry lock — the seed's
// global-RWMutex behavior — and the full worker lifecycle (registration
// storm, heartbeats, placement, heartbeat-timeout failure, re-
// registration) produces observations identical to the sharded default.
func TestWorkerShardsAblationSeedParity(t *testing.T) {
	const (
		numWorkers = 24
		burst      = 12
	)
	type observed struct {
		workersAfterStorm int
		fleetSize         int64
		readyAfterBurst   int
		workersAfterFail  int
		readyAfterDrain   int
		workersAfterReReg int
	}
	scenario := func(t *testing.T, workerShards int) (observed, *ControlPlane) {
		t.Helper()
		tr := transport.NewInProc()
		cp := New(Config{
			Addr:              "cpws0",
			Transport:         tr,
			DB:                store.NewMemory(),
			WorkerShards:      workerShards,
			AutoscaleInterval: time.Hour,
			HeartbeatTimeout:  time.Hour, // failures injected via deregistration
			NoDownscaleWindow: time.Millisecond,
		})
		if err := cp.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cp.Stop)
		ctx := context.Background()
		workerReq := func(w int) proto.RegisterWorkerRequest {
			return proto.RegisterWorkerRequest{Worker: core.WorkerNode{
				ID: core.NodeID(w), Name: fmt.Sprintf("pw%d", w), IP: fmt.Sprintf("10.3.0.%d", w),
				Port: 9000, CPUMilli: 1 << 20, MemoryMB: 1 << 20,
			}}
		}
		for w := 1; w <= numWorkers; w++ {
			startFakeWorker(t, tr, "cpws0", core.NodeID(w), fmt.Sprintf("10.3.0.%d:9000", w), true)
			req := workerReq(w)
			if _, err := tr.Call(ctx, "cpws0", proto.MethodRegisterWorker, req.Marshal()); err != nil {
				t.Fatal(err)
			}
			hb := proto.WorkerHeartbeat{Node: core.NodeID(w)}
			if _, err := tr.Call(ctx, "cpws0", proto.MethodWorkerHeartbeat, hb.Marshal()); err != nil {
				t.Fatal(err)
			}
		}
		var obs observed
		obs.workersAfterStorm = cp.WorkerCount()
		obs.fleetSize = cp.Metrics().Gauge("fleet_size").Value()

		fn := fnSpec("parity-ws")
		fn.Scaling.MinScale = burst
		if _, err := tr.Call(ctx, "cpws0", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			t.Fatal(err)
		}
		cp.Reconcile()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if ready, _ := cp.FunctionScale("parity-ws"); ready >= burst {
				break
			}
			time.Sleep(time.Millisecond)
		}
		obs.readyAfterBurst, _ = cp.FunctionScale("parity-ws")

		// Correlated failure: a quarter of the fleet deregisters, which
		// fails each worker and drains its sandboxes.
		for w := 1; w <= numWorkers/4; w++ {
			req := workerReq(w)
			if _, err := tr.Call(ctx, "cpws0", proto.MethodDeregisterWorker, req.Marshal()); err != nil {
				t.Fatal(err)
			}
		}
		obs.workersAfterFail = cp.WorkerCount()
		// The drain's Reconcile re-creates capacity on survivors. Keep
		// reconciling until the scale converges: a readiness report that
		// raced the drain can leave a transient surplus the next sweep
		// tears back down.
		deadline = time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if ready, _ := cp.FunctionScale("parity-ws"); ready == burst {
				break
			}
			cp.Reconcile()
			time.Sleep(time.Millisecond)
		}
		obs.readyAfterDrain, _ = cp.FunctionScale("parity-ws")

		for w := 1; w <= numWorkers/4; w++ {
			req := workerReq(w)
			if _, err := tr.Call(ctx, "cpws0", proto.MethodRegisterWorker, req.Marshal()); err != nil {
				t.Fatal(err)
			}
		}
		obs.workersAfterReReg = cp.WorkerCount()
		return obs, cp
	}

	want := observed{
		workersAfterStorm: numWorkers,
		fleetSize:         numWorkers,
		readyAfterBurst:   burst,
		workersAfterFail:  numWorkers - numWorkers/4,
		readyAfterDrain:   burst,
		workersAfterReReg: numWorkers,
	}
	var results [2]observed
	for i, tc := range []struct {
		name   string
		shards int
		want   int // stripes actually built
	}{
		{"seed-worker-shards-1", 1, 1},
		{"sharded-default", 0, defaultWorkerShards},
	} {
		t.Run(tc.name, func(t *testing.T) {
			obs, cp := scenario(t, tc.shards)
			if got := len(cp.wshards); got != tc.want {
				t.Fatalf("WorkerShards=%d built %d stripes, want %d", tc.shards, got, tc.want)
			}
			if obs != want {
				t.Errorf("observations = %+v, want %+v", obs, want)
			}
			results[i] = obs
		})
	}
	if results[0] != results[1] {
		t.Errorf("ablation diverged from sharded default:\n  shards=1: %+v\n  sharded:  %+v", results[0], results[1])
	}
}

// TestWorkerShardDistribution sanity-checks that sequential node IDs
// spread across the registry stripes instead of piling onto one.
func TestWorkerShardDistribution(t *testing.T) {
	cp := New(Config{Addr: "unused", DB: store.NewMemory()})
	seen := make(map[*workerShard]int)
	for i := 1; i <= 512; i++ {
		seen[cp.workerShardFor(core.NodeID(i))]++
	}
	if len(seen) != defaultWorkerShards {
		t.Fatalf("512 sequential IDs hit only %d of %d worker shards", len(seen), defaultWorkerShards)
	}
	for sh, n := range seen {
		if n > 512/defaultWorkerShards {
			t.Fatalf("worker shard %p got %d of 512 IDs", sh, n)
		}
	}
}
