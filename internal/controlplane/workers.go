package controlplane

import (
	"sync"
	"time"

	"dirigent/internal/core"
)

// defaultWorkerShards is the number of locks striping the worker
// registry. The paper's fleet experiment (§5.2.3) runs the control plane
// against 5000 worker nodes; 32 stripes keep registration storms and
// heartbeat floods from colliding while the array stays cheap to sweep
// in the health monitor.
const defaultWorkerShards = 32

// workerShard is one stripe of the worker registry: a slice of the
// worker map guarded by its own RWMutex. Registrations, heartbeats and
// health checks for workers in different shards proceed in parallel;
// per-worker mutable state (utilization, liveness) stays behind each
// workerState's own mutex, so even same-shard heartbeats only contend
// on the brief map lookup.
type workerShard struct {
	mu      sync.RWMutex
	workers map[core.NodeID]*workerState
}

func newWorkerShards(n int) []*workerShard {
	shards := make([]*workerShard, n)
	for i := range shards {
		shards[i] = &workerShard{workers: make(map[core.NodeID]*workerState)}
	}
	return shards
}

// workerShardFor maps a node ID to its shard. Node IDs are small dense
// integers, so a plain modulus spreads a fleet evenly.
func (cp *ControlPlane) workerShardFor(id core.NodeID) *workerShard {
	return cp.wshards[uint32(id)%uint32(len(cp.wshards))]
}

// lockWorkerShard acquires ws.mu for writing, recording contended
// acquisitions in reg_lock_wait_ms. The uncontended fast path is a
// single TryLock so the telemetry costs nothing when striping is doing
// its job (mirrors lockShard on the function-state side).
func (cp *ControlPlane) lockWorkerShard(ws *workerShard) {
	if ws.mu.TryLock() {
		return
	}
	start := time.Now()
	ws.mu.Lock()
	cp.mRegContended.Inc()
	cp.mRegWait.Observe(time.Since(start))
}

// rlockWorkerShard acquires ws.mu for reading with the same contention
// telemetry. Readers only wait when a registration or recovery holds
// the write lock.
func (cp *ControlPlane) rlockWorkerShard(ws *workerShard) {
	if ws.mu.TryRLock() {
		return
	}
	start := time.Now()
	ws.mu.RLock()
	cp.mRegContended.Inc()
	cp.mRegWait.Observe(time.Since(start))
}

// lockWorkerShardIngest / rlockWorkerShardIngest are the batch-ingest
// twins of lockWorkerShard: same TryLock fast path, but contended
// acquisitions land in ingest_lock_* so batch-vs-batch (and
// batch-vs-sweep) contention is distinguishable from the singleton
// registration path's reg_lock_* in one telemetry dump.
func (cp *ControlPlane) lockWorkerShardIngest(ws *workerShard) {
	if ws.mu.TryLock() {
		return
	}
	start := time.Now()
	ws.mu.Lock()
	cp.mIngestContended.Inc()
	cp.mIngestWait.Observe(time.Since(start))
}

func (cp *ControlPlane) rlockWorkerShardIngest(ws *workerShard) {
	if ws.mu.TryRLock() {
		return
	}
	start := time.Now()
	ws.mu.RLock()
	cp.mIngestContended.Inc()
	cp.mIngestWait.Observe(time.Since(start))
}

// getWorker returns the registry entry for a node, or nil. It takes only
// the owning shard's read lock, so a heartbeat never serializes against
// registrations or lookups on other shards.
func (cp *ControlPlane) getWorker(id core.NodeID) *workerState {
	ws := cp.workerShardFor(id)
	cp.rlockWorkerShard(ws)
	w := ws.workers[id]
	ws.mu.RUnlock()
	return w
}

// putWorker inserts or replaces a registry entry, reporting whether the
// node ID was already registered (re-registration of a failed or moved
// worker replaces the entry in place).
func (cp *ControlPlane) putWorker(w *workerState) (existed bool) {
	ws := cp.workerShardFor(w.node.ID)
	cp.lockWorkerShard(ws)
	_, existed = ws.workers[w.node.ID]
	ws.workers[w.node.ID] = w
	ws.mu.Unlock()
	if !existed {
		cp.workerCount.Add(1)
		// Re-read for the gauge so racing updates can't publish a stale
		// count over a newer one; HealthSweep refreshes it periodically
		// in case two Sets still interleave badly.
		cp.gFleetSize.Set(cp.workerCount.Load())
	}
	return existed
}

// removeWorkerIfUnhealthy deletes a failed worker's registry entry
// (explicit deregistration). A concurrent re-registration wins the
// race: a fresh healthy entry under the same ID is left in place.
func (cp *ControlPlane) removeWorkerIfUnhealthy(id core.NodeID) {
	ws := cp.workerShardFor(id)
	cp.lockWorkerShard(ws)
	w := ws.workers[id]
	removed := false
	if w != nil {
		w.mu.Lock()
		if !w.healthy {
			delete(ws.workers, id)
			removed = true
		}
		w.mu.Unlock()
	}
	ws.mu.Unlock()
	if removed {
		cp.workerCount.Add(-1)
		cp.gFleetSize.Set(cp.workerCount.Load())
	}
}

// forEachWorkerShard visits every worker shard in turn with its read
// lock held. Sweeps over the whole fleet (health checks, placement
// candidates, status) block at most 1/len(wshards) of the registry at a
// time instead of stalling every registration behind one global lock.
func (cp *ControlPlane) forEachWorkerShard(fn func(ws *workerShard)) {
	for _, ws := range cp.wshards {
		cp.rlockWorkerShard(ws)
		fn(ws)
		ws.mu.RUnlock()
	}
}

// workerSnapshot copies the current worker set, shard by shard. Callers
// operate on the snapshot without holding any registry lock — the
// recovery merge and failure drains work this way so a slow worker RPC
// never blocks the registry.
func (cp *ControlPlane) workerSnapshot() []*workerState {
	var out []*workerState
	cp.forEachWorkerShard(func(ws *workerShard) {
		for _, w := range ws.workers {
			out = append(out, w)
		}
	})
	return out
}

// rebuildWorkers replaces the whole registry with the entries load()
// returns, holding every shard's write lock across the rebuild — the
// one operation that still freezes the registry, and it happens only on
// leadership recovery. load runs inside the locks so the swap is atomic
// with respect to registrations: a registration persists its record
// before inserting, so it either inserted before the locks were taken
// (and load reads its record back) or blocks until the rebuild finishes
// (and re-inserts afterwards) — never silently dropped.
func (cp *ControlPlane) rebuildWorkers(load func() []*workerState) []*workerState {
	for _, ws := range cp.wshards {
		cp.lockWorkerShard(ws)
		ws.workers = make(map[core.NodeID]*workerState)
	}
	workers := load()
	for _, w := range workers {
		cp.wshards[uint32(w.node.ID)%uint32(len(cp.wshards))].workers[w.node.ID] = w
	}
	cp.workerCount.Store(int64(len(workers)))
	cp.gFleetSize.Set(int64(len(workers)))
	for _, ws := range cp.wshards {
		ws.mu.Unlock()
	}
	return workers
}

// HealthSweep runs one health-monitor pass: every worker whose last
// heartbeat is older than HeartbeatTimeout is failed and its sandboxes
// drained. The scan iterates per-shard snapshots — only one shard's read
// lock plus each worker's own mutex is held at a time — and the failure
// drains run after the scan with no registry lock held, so a mass
// failure never stalls registrations or heartbeats on healthy shards.
// Exported so tests and the fleet harness can drive the health monitor
// deterministically instead of waiting for ticker periods.
//
// With a relay tier active the sweep is hierarchical: relay freshness is
// checked first (a silent relay is a correlated mass-timeout candidate —
// its declaration triggers a full scan that re-verifies every worker's
// own CP-side stamp, so members that failed over to another relay
// survive), and most passes are then fast sweeps over relay-reported
// suspects only, with every FullScanEvery-th pass scanning the whole
// registry as ground truth. Direct mode (no relays) always scans fully —
// the seed behavior, bit for bit. Full scans also garbage-collect
// crash-failed entries whose failure is older than DeadWorkerGC: the
// registry entry and the persisted record are both removed (counted by
// dead_worker_gc), so a fleet that churns nodes doesn't accrete tombstones
// forever. A late heartbeat before collection still revives the worker.
func (cp *ControlPlane) HealthSweep() {
	start := cp.clk.Now()
	seq := cp.sweepSeq.Add(1)
	silentRelays := cp.sweepRelays(start)
	fullScan := cp.relayCount() == 0 || len(silentRelays) > 0 ||
		cp.cfg.FullScanEvery <= 1 || seq%uint64(cp.cfg.FullScanEvery) == 0

	var failed, collect []core.NodeID
	if fullScan {
		cp.takeSuspects() // the scan below supersedes the pending hints
		cp.forEachWorkerShard(func(ws *workerShard) {
			for id, w := range ws.workers {
				w.mu.Lock()
				switch {
				case w.healthy && start.Sub(w.lastHB) > cp.cfg.HeartbeatTimeout:
					failed = append(failed, id)
				case !w.healthy && cp.cfg.DeadWorkerGC > 0 && !w.failedAt.IsZero() &&
					start.Sub(w.failedAt) > cp.cfg.DeadWorkerGC:
					collect = append(collect, id)
				}
				w.mu.Unlock()
			}
		})
	} else {
		// Fast pass: relays are current, so their batches vouch for
		// every member except the ones they reported missing. Only those
		// suspects need a per-worker stamp check; the cost is
		// O(relays + suspects) instead of O(fleet).
		var requeue []core.NodeID
		for _, id := range cp.takeSuspects() {
			w := cp.getWorker(id)
			if w == nil {
				continue
			}
			w.mu.Lock()
			healthy := w.healthy
			age := start.Sub(w.lastHB)
			w.mu.Unlock()
			switch {
			case !healthy:
				// Already failed (or failed over and re-failed); done.
			case age > cp.cfg.HeartbeatTimeout:
				failed = append(failed, id)
			case age > cp.cfg.HeartbeatTimeout/4:
				// Still quiet but inside the timeout: keep watching so
				// detection latency matches the direct path's.
				requeue = append(requeue, id)
			}
		}
		cp.addSuspects(requeue)
	}
	for _, id := range failed {
		cp.failWorker(id)
	}
	for _, id := range collect {
		cp.gcDeadWorker(id)
	}
	// Data planes share the sweep: replicas whose heartbeats stopped are
	// pruned from the broadcast fan-out set (see dataplanes.go).
	cp.sweepDataPlanes(start)
	cp.gFleetSize.Set(cp.workerCount.Load())
	cp.mHealthSweep.Observe(cp.clk.Since(start))
}

// gcDeadWorker removes a crash-failed worker's registry entry and its
// persisted record once its failure has aged past DeadWorkerGC. The
// health state is re-checked under the locks so a revival (late
// heartbeat: healthy, fresh failedAt reset) or a re-registration racing
// the collection wins and the entry stays.
func (cp *ControlPlane) gcDeadWorker(id core.NodeID) {
	ws := cp.workerShardFor(id)
	cp.lockWorkerShard(ws)
	w := ws.workers[id]
	removed := false
	var name string
	if w != nil {
		w.mu.Lock()
		if !w.healthy && !w.failedAt.IsZero() &&
			cp.clk.Now().Sub(w.failedAt) > cp.cfg.DeadWorkerGC {
			delete(ws.workers, id)
			removed = true
			name = w.node.Name
		}
		w.mu.Unlock()
	}
	ws.mu.Unlock()
	if !removed {
		return
	}
	_ = cp.cfg.DB.HDel(hashWorkers, name)
	cp.workerCount.Add(-1)
	cp.gFleetSize.Set(cp.workerCount.Load())
	cp.cDeadWorkerGC.Inc()
}
