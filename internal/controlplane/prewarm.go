package controlplane

import (
	"context"
	"time"

	"dirigent/internal/proto"
)

// pushPrewarmTargets recomputes the predictor's per-image pre-warm
// targets and pushes them to every healthy worker whose acknowledged
// generation is stale. Piggybacked on the end of each reconcile sweep, so
// steady state costs one Targets() call and zero RPCs; a target change
// (or a worker that re-registered after a restart, resetting its
// generation) triggers exactly one PrewarmTargets RPC per affected
// worker. No-op unless PredictivePrewarm is on and this replica leads.
func (cp *ControlPlane) pushPrewarmTargets(now time.Time) {
	if cp.pred == nil || !cp.IsLeader() {
		return
	}
	targets := cp.pred.Targets(now)
	set := make([]proto.PrewarmTarget, len(targets))
	for i, t := range targets {
		set[i] = proto.PrewarmTarget{Image: t.Image, Want: uint32(t.Want)}
	}
	cp.prewarmMu.Lock()
	if !equalPrewarmSets(cp.prewarmSet, set) {
		cp.prewarmGen++
		cp.prewarmSet = set
	}
	gen := cp.prewarmGen
	set = cp.prewarmSet
	cp.prewarmMu.Unlock()
	if gen == 0 {
		// The predictor has never produced a target; workers stay in
		// static mode (whole budget on the base image, the seed behavior).
		return
	}

	var stale []*workerState
	cp.forEachWorkerShard(func(ws *workerShard) {
		for _, w := range ws.workers {
			w.mu.Lock()
			if w.healthy && w.prewarmGen != gen {
				stale = append(stale, w)
			}
			w.mu.Unlock()
		}
	})
	if len(stale) == 0 {
		return
	}
	payload := (&proto.PrewarmTargets{Gen: gen, Targets: set}).Marshal()
	for _, w := range stale {
		w := w
		cp.wg.Add(1)
		go func() {
			defer cp.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if _, err := cp.cfg.Transport.Call(ctx, w.addr, proto.MethodPrewarmTargets, payload); err != nil {
				cp.metrics.Counter("prewarm_push_errors").Inc()
				return
			}
			cp.metrics.Counter("prewarm_pushes").Inc()
			// Mark acknowledged only on success; an unreachable worker is
			// retried by the next sweep (its generation stays stale).
			w.mu.Lock()
			if w.prewarmGen < gen {
				w.prewarmGen = gen
			}
			w.mu.Unlock()
		}()
	}
}

func equalPrewarmSets(a, b []proto.PrewarmTarget) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrewarmTargetSnapshot returns the current target set and generation,
// for tests and experiments.
func (cp *ControlPlane) PrewarmTargetSnapshot() (uint64, []proto.PrewarmTarget) {
	cp.prewarmMu.Lock()
	defer cp.prewarmMu.Unlock()
	return cp.prewarmGen, append([]proto.PrewarmTarget(nil), cp.prewarmSet...)
}
