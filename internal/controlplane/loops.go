package controlplane

import (
	"context"
	"fmt"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/placement"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
	"dirigent/internal/worker"
)

// autoscaleLoop is the asynchronous loop that reconciles the number of
// sandboxes per function with the autoscaler's desired scale, issuing
// sandbox creations and teardowns to worker nodes (paper §3.3, §4).
func (cp *ControlPlane) autoscaleLoop() {
	defer cp.wg.Done()
	ticker := time.NewTicker(cp.cfg.AutoscaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-cp.stopCh:
			return
		case <-ticker.C:
			if cp.IsLeader() {
				cp.Reconcile()
			}
		}
	}
}

// Reconcile runs one autoscaling pass. It is exported so that tests and
// the experiment harness can drive scaling deterministically instead of
// waiting for ticker periods.
func (cp *ControlPlane) Reconcile() {
	now := cp.clk.Now()
	type action struct {
		create int
		kills  []*sandboxState
		fn     core.Function
	}
	var actions []action

	cp.mu.Lock()
	suppressDownscale := now.Sub(cp.recoveredAt) < cp.cfg.NoDownscaleWindow
	for _, fs := range cp.functions {
		ready, creating := fs.counts()
		current := ready + creating
		desired := fs.scaler.Desired(now, current)
		switch {
		case desired > current:
			actions = append(actions, action{create: desired - current, fn: fs.fn})
		case desired < current && !suppressDownscale:
			// Tear down surplus sandboxes, preferring ready ones last so
			// that in-flight creations are cancelled first conceptually;
			// since creations cannot be cancelled mid-flight, we kill
			// ready sandboxes beyond the desired count.
			surplus := current - desired
			var victims []*sandboxState
			for _, sb := range fs.sandboxes {
				if len(victims) == surplus {
					break
				}
				if sb.phase == phaseReady {
					victims = append(victims, sb)
				}
			}
			for _, sb := range victims {
				delete(fs.sandboxes, sb.id)
			}
			actions = append(actions, action{kills: victims, fn: fs.fn})
		}
	}
	cp.mu.Unlock()

	for _, a := range actions {
		for i := 0; i < a.create; i++ {
			cp.createSandbox(a.fn)
		}
		for _, sb := range a.kills {
			cp.killSandbox(sb)
		}
		if len(a.kills) > 0 {
			cp.broadcastEndpoints(a.fn.Name)
		}
	}
}

// createSandbox places and requests one new sandbox for fn. This is the
// latency-critical cold-start path: note the absence of any persistent
// state update (design principle 2).
func (cp *ControlPlane) createSandbox(fn core.Function) {
	cp.mu.Lock()
	candidates := make([]placement.NodeStatus, 0, len(cp.workers))
	for _, w := range cp.workers {
		if w.healthy {
			candidates = append(candidates, placement.NodeStatus{Node: w.node, Util: w.util})
		}
	}
	cp.mu.Unlock()
	req := placement.Requirements{CPUMilli: fn.Scaling.CPUMilli, MemoryMB: fn.Scaling.MemoryMB}
	nodeID, err := cp.cfg.Placer.Place(candidates, req)
	if err != nil {
		cp.metrics.Counter("placement_failures").Inc()
		return
	}

	cp.mu.Lock()
	w, ok := cp.workers[nodeID]
	if !ok || !w.healthy {
		cp.mu.Unlock()
		return
	}
	fs, ok := cp.functions[fn.Name]
	if !ok {
		cp.mu.Unlock()
		return
	}
	cp.nextSandboxID++
	id := cp.nextSandboxID
	sb := &sandboxState{
		id:         id,
		function:   fn.Name,
		node:       nodeID,
		workerAddr: w.addr,
		phase:      phaseCreating,
		createdAt:  cp.clk.Now(),
	}
	fs.sandboxes[id] = sb
	// Optimistically account the sandbox on the worker so that the placer
	// sees the pending allocation before the next heartbeat refresh.
	w.util.CPUMilliUsed += fn.Scaling.CPUMilli
	w.util.MemoryMBUsed += fn.Scaling.MemoryMB
	addr := w.addr
	cp.mu.Unlock()

	createReq := proto.CreateSandboxRequest{SandboxID: id, Function: fn}
	payload := createReq.Marshal()
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := cp.cfg.Transport.Call(ctx, addr, proto.MethodCreateSandbox, payload); err != nil {
			cp.mu.Lock()
			if fs, ok := cp.functions[fn.Name]; ok {
				delete(fs.sandboxes, id)
			}
			cp.mu.Unlock()
			cp.metrics.Counter("sandbox_create_rpc_errors").Inc()
		}
	}()
	cp.metrics.Counter("sandbox_creations_requested").Inc()
}

// killSandbox asks the worker to tear down a sandbox.
func (cp *ControlPlane) killSandbox(sb *sandboxState) {
	cp.metrics.Counter("sandbox_teardowns").Inc()
	if cp.cfg.PersistSandboxState {
		_ = cp.cfg.DB.HDel(hashSandboxes, fmt.Sprintf("%d", sb.id))
	}
	addr := sb.workerAddr
	payload := worker.EncodeSandboxID(sb.id)
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodKillSandbox, payload)
	}()
}

// healthLoop watches worker heartbeats and fails workers that go silent
// (paper §3.4.1: "Once the control plane detects no heartbeats, it
// notifies data plane components not to route requests to sandboxes on the
// affected worker node" and re-runs autoscaling).
func (cp *ControlPlane) healthLoop() {
	defer cp.wg.Done()
	interval := cp.cfg.HeartbeatTimeout / 4
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-cp.stopCh:
			return
		case <-ticker.C:
			if !cp.IsLeader() {
				continue
			}
			now := cp.clk.Now()
			var failed []core.NodeID
			cp.mu.Lock()
			for id, w := range cp.workers {
				if w.healthy && now.Sub(w.lastHB) > cp.cfg.HeartbeatTimeout {
					failed = append(failed, id)
				}
			}
			cp.mu.Unlock()
			for _, id := range failed {
				cp.failWorker(id)
			}
		}
	}
}

// failWorker removes a worker from scheduling and drains its sandboxes
// from the cluster state, then reconciles so the autoscaler re-creates
// capacity on healthy nodes.
func (cp *ControlPlane) failWorker(id core.NodeID) {
	cp.mu.Lock()
	w, ok := cp.workers[id]
	if !ok || !w.healthy {
		cp.mu.Unlock()
		return
	}
	w.healthy = false
	touched := make(map[string]bool)
	for name, fs := range cp.functions {
		for sid, sb := range fs.sandboxes {
			if sb.node == id {
				delete(fs.sandboxes, sid)
				touched[name] = true
			}
		}
	}
	cp.mu.Unlock()
	cp.metrics.Counter("worker_failures_detected").Inc()
	for fn := range touched {
		cp.broadcastEndpoints(fn)
	}
	// Re-run autoscaling immediately so replacement sandboxes spin up
	// elsewhere without waiting a full tick.
	cp.Reconcile()
}

// broadcastFunctions pushes the registered function list to every data
// plane.
func (cp *ControlPlane) broadcastFunctions() {
	cp.mu.Lock()
	addrs := cp.dataPlaneAddrsLocked()
	cp.mu.Unlock()
	for _, addr := range addrs {
		cp.sendFunctionsTo(addr)
	}
}

func (cp *ControlPlane) dataPlaneAddrsLocked() []string {
	addrs := make([]string, 0, len(cp.dataplanes))
	for _, p := range cp.dataplanes {
		p := p
		addrs = append(addrs, dataPlaneAddr(&p))
	}
	return addrs
}

func dataPlaneAddr(p *core.DataPlane) string {
	return fmt.Sprintf("%s:%d", p.IP, p.Port)
}

func (cp *ControlPlane) sendFunctionsTo(addr string) {
	cp.mu.Lock()
	list := proto.FunctionList{}
	for _, fs := range cp.functions {
		list.Functions = append(list.Functions, fs.fn)
	}
	cp.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodAddFunction, list.Marshal())
}

// sendEndpointsTo pushes one function's endpoint set to a single data
// plane, used when warming a newly registered replica's cache.
func (cp *ControlPlane) sendEndpointsTo(addr, function string) {
	payload := cp.endpointUpdate(function).Marshal()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpoints, payload)
}

func (cp *ControlPlane) endpointUpdate(function string) *proto.EndpointUpdate {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	update := &proto.EndpointUpdate{Function: function}
	if fs, ok := cp.functions[function]; ok {
		fs.epSeq++
		// Leadership epoch in the high bits keeps versions monotonic
		// across failovers, where per-function sequences restart.
		update.Version = cp.epoch<<32 | fs.epSeq
		for _, sb := range fs.sandboxes {
			if sb.phase == phaseReady {
				update.Endpoints = append(update.Endpoints, proto.SandboxInfo{
					ID:       sb.id,
					Function: function,
					Node:     sb.node,
					Addr:     sb.workerAddr,
					State:    core.SandboxReady,
				})
			}
		}
	}
	return update
}

// broadcastEndpoints pushes the current ready-endpoint set for a function
// to all data planes (paper Table 2, "Add/remove LB endpoint"). The update
// carries the full endpoint list for the function, making it idempotent.
func (cp *ControlPlane) broadcastEndpoints(function string) {
	update := cp.endpointUpdate(function)
	cp.mu.Lock()
	addrs := cp.dataPlaneAddrsLocked()
	cp.mu.Unlock()
	payload := update.Marshal()
	for _, addr := range addrs {
		addr := addr
		cp.wg.Add(1)
		go func() {
			defer cp.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpoints, payload)
		}()
	}
}

// FunctionScale reports (ready, creating) sandbox counts for a function,
// used by tests and the experiment harness.
func (cp *ControlPlane) FunctionScale(name string) (ready, creating int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if fs, ok := cp.functions[name]; ok {
		return fs.counts()
	}
	return 0, 0
}

// WorkerCount reports the number of healthy workers.
func (cp *ControlPlane) WorkerCount() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	n := 0
	for _, w := range cp.workers {
		if w.healthy {
			n++
		}
	}
	return n
}

// Metrics exposes the control plane's metrics registry.
func (cp *ControlPlane) Metrics() *telemetry.Registry { return cp.metrics }
