package controlplane

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/placement"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
	"dirigent/internal/worker"
)

// defaultCreateBatch caps how many creations one sweep packs into a
// single per-worker RPC. Large enough that realistic bursts (the paper
// drives ~2500 cold starts/s against ~100 workers) fit in one RPC per
// worker per sweep; small enough to bound message size.
const defaultCreateBatch = 256

// autoscaleLoop is the asynchronous loop that reconciles the number of
// sandboxes per function with the autoscaler's desired scale, issuing
// sandbox creations and teardowns to worker nodes (paper §3.3, §4).
func (cp *ControlPlane) autoscaleLoop() {
	defer cp.wg.Done()
	ticker := time.NewTicker(cp.cfg.AutoscaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-cp.stopCh:
			return
		case <-ticker.C:
			if cp.IsLeader() {
				cp.Reconcile()
			}
		}
	}
}

// Reconcile runs one autoscaling pass. It is exported so that tests and
// the experiment harness can drive scaling deterministically instead of
// waiting for ticker periods.
//
// The sweep iterates shard by shard, holding only one shard's lock while
// it snapshots that shard's scaling decisions; sandbox transitions and
// metric reports for functions in other shards proceed concurrently with
// the pass instead of stalling behind a global lock for the whole sweep.
//
// Scale-up is pipelined: every placement decision the sweep makes is
// staged first, then fanned out as one CreateSandboxBatch RPC per worker
// (concurrently across workers), and every function whose endpoint set
// changed shares one coalesced UpdateEndpointsBatch RPC per data plane.
// CreateBatch=1 restores the seed's per-sandbox/per-function RPCs.
func (cp *ControlPlane) Reconcile() {
	now := cp.clk.Now()
	type action struct {
		create int
		kills  []*sandboxState
		fn     core.Function
	}
	var actions []action

	suppressDownscale := false
	if at := cp.recoveredAt.Load(); at != nil {
		suppressDownscale = now.Sub(*at) < cp.cfg.NoDownscaleWindow
	}
	cp.forEachShard(func(sh *functionShard) {
		for _, fs := range sh.fns {
			ready, creating := fs.counts()
			current := ready + creating
			desired := fs.scaler.Desired(now, current)
			switch {
			case desired > current:
				actions = append(actions, action{create: desired - current, fn: fs.fn})
			case desired < current && !suppressDownscale:
				// Tear down surplus sandboxes, preferring ready ones last so
				// that in-flight creations are cancelled first conceptually;
				// since creations cannot be cancelled mid-flight, we kill
				// ready sandboxes beyond the desired count.
				surplus := current - desired
				var victims []*sandboxState
				for _, sb := range fs.sandboxes {
					if len(victims) == surplus {
						break
					}
					if sb.phase == phaseReady {
						victims = append(victims, sb)
					}
				}
				for _, sb := range victims {
					delete(fs.sandboxes, sb.id)
				}
				actions = append(actions, action{kills: victims, fn: fs.fn})
			}
		}
	})

	var staged []*stagedCreate
	var kills []*sandboxState
	drained := make(map[string]bool)
	for _, a := range actions {
		if a.create > 0 && cp.pred != nil {
			// Every creation the sweep stages is cold-start demand for the
			// function's image — a signal that stays live even when worker
			// pre-warm pools absorb the actual boot cost, because the
			// reconciler still places the replacement sandbox.
			cp.pred.Observe(now, a.fn.Image, a.create)
		}
		for i := 0; i < a.create; i++ {
			if sc := cp.placeSandbox(a.fn); sc != nil {
				staged = append(staged, sc)
			}
		}
		kills = append(kills, a.kills...)
		if len(a.kills) > 0 {
			drained[a.fn.Name] = true
		}
	}
	cp.dispatchCreates(staged, now)
	cp.dispatchKills(kills)
	cp.broadcastEndpointsBatch(sortedKeys(drained))
	cp.pushPrewarmTargets(now)
}

// stagedCreate is one placement decision awaiting RPC dispatch: the
// sandbox already exists in phaseCreating state and its resources are
// optimistically charged to the worker.
type stagedCreate struct {
	id   core.SandboxID
	fn   core.Function
	addr string
}

// placeSandbox places one new sandbox for fn and stages it for dispatch.
// This is the latency-critical cold-start path: note the absence of any
// persistent state update (design principle 2) and of any global lock —
// the path reads worker shards one at a time, takes one worker's mutex,
// and one function shard, so cold starts for unrelated functions proceed
// in parallel with registrations and heartbeats on other shards. It
// returns nil when placement fails or the function vanished.
func (cp *ControlPlane) placeSandbox(fn core.Function) *stagedCreate {
	candidates := make([]placement.NodeStatus, 0, cp.workerCount.Load())
	cp.forEachWorkerShard(func(ws *workerShard) {
		for _, w := range ws.workers {
			w.mu.Lock()
			if w.healthy {
				candidates = append(candidates, placement.NodeStatus{Node: w.node, Util: w.util})
			}
			w.mu.Unlock()
		}
	})
	req := placement.Requirements{
		CPUMilli: fn.Scaling.CPUMilli,
		MemoryMB: fn.Scaling.MemoryMB,
		// Cache-aware policies match this against the digests workers
		// report in heartbeats; locality-blind policies ignore it.
		ImageHash: core.HashImage(fn.Image),
	}
	nodeID, err := cp.cfg.Placer.Place(candidates, req)
	if err != nil {
		cp.metrics.Counter("placement_failures").Inc()
		return nil
	}

	w := cp.getWorker(nodeID)
	if w == nil {
		return nil
	}
	// Optimistically account the sandbox on the worker so that the placer
	// sees the pending allocation before the next heartbeat refresh.
	w.mu.Lock()
	if !w.healthy {
		w.mu.Unlock()
		return nil
	}
	w.util.CPUMilliUsed += fn.Scaling.CPUMilli
	w.util.MemoryMBUsed += fn.Scaling.MemoryMB
	addr := w.addr
	w.mu.Unlock()

	id := core.SandboxID(cp.nextSandboxID.Add(1))
	placed := cp.withFunction(fn.Name, func(fs *functionState) {
		fs.sandboxes[id] = &sandboxState{
			id:         id,
			function:   fn.Name,
			node:       nodeID,
			workerAddr: addr,
			phase:      phaseCreating,
			createdAt:  cp.clk.Now(),
		}
	})
	if !placed {
		// Function deregistered while we were placing: return the
		// optimistic utilization we charged above.
		w.mu.Lock()
		w.util.CPUMilliUsed -= fn.Scaling.CPUMilli
		w.util.MemoryMBUsed -= fn.Scaling.MemoryMB
		w.mu.Unlock()
		return nil
	}
	cp.metrics.Counter("sandbox_creations_requested").Inc()
	return &stagedCreate{id: id, fn: fn, addr: addr}
}

// dispatchCreates fans the sweep's staged creations out to their workers:
// one CreateSandboxBatch RPC per worker (chunked at cfg.CreateBatch),
// all workers in parallel. With CreateBatch=1 it degenerates to the
// seed's one-RPC-per-sandbox pipeline for the ablation. sweepStart is
// when the autoscale pass began; the gap to RPC dispatch is the control
// plane's scheduling latency contribution (cold_start_sched_ms).
func (cp *ControlPlane) dispatchCreates(staged []*stagedCreate, sweepStart time.Time) {
	if len(staged) == 0 {
		return
	}
	if cp.cfg.CreateBatch == 1 {
		for _, sc := range staged {
			cp.sendCreate(sc, sweepStart)
		}
		return
	}
	byWorker := make(map[string][]*stagedCreate)
	for _, sc := range staged {
		byWorker[sc.addr] = append(byWorker[sc.addr], sc)
	}
	for addr, batch := range byWorker {
		for len(batch) > 0 {
			chunk := batch
			if len(chunk) > cp.cfg.CreateBatch {
				chunk = chunk[:cp.cfg.CreateBatch]
			}
			batch = batch[len(chunk):]
			cp.sendCreateBatch(addr, chunk, sweepStart)
		}
	}
}

// sendCreateBatch issues one batched create RPC asynchronously, rolling
// every staged sandbox of the batch back if the worker is unreachable.
func (cp *ControlPlane) sendCreateBatch(addr string, chunk []*stagedCreate, sweepStart time.Time) {
	req := proto.CreateSandboxBatch{Creates: make([]proto.CreateSandboxRequest, 0, len(chunk))}
	for _, sc := range chunk {
		req.Creates = append(req.Creates, proto.CreateSandboxRequest{SandboxID: sc.id, Function: sc.fn})
	}
	payload := req.Marshal()
	cp.mCreateBatch.ObserveMs(float64(len(chunk)))
	sched := cp.clk.Since(sweepStart)
	for range chunk {
		cp.mSchedLatency.Observe(sched)
	}
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := cp.cfg.Transport.Call(ctx, addr, proto.MethodCreateSandboxBatch, payload); err != nil {
			for _, sc := range chunk {
				sc := sc
				cp.withFunction(sc.fn.Name, func(fs *functionState) {
					delete(fs.sandboxes, sc.id)
				})
				cp.metrics.Counter("sandbox_create_rpc_errors").Inc()
			}
		}
	}()
}

// sendCreate issues one seed-style per-sandbox create RPC asynchronously.
func (cp *ControlPlane) sendCreate(sc *stagedCreate, sweepStart time.Time) {
	createReq := proto.CreateSandboxRequest{SandboxID: sc.id, Function: sc.fn}
	payload := createReq.Marshal()
	cp.mCreateBatch.ObserveMs(1)
	cp.mSchedLatency.Observe(cp.clk.Since(sweepStart))
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := cp.cfg.Transport.Call(ctx, sc.addr, proto.MethodCreateSandbox, payload); err != nil {
			cp.withFunction(sc.fn.Name, func(fs *functionState) {
				delete(fs.sandboxes, sc.id)
			})
			cp.metrics.Counter("sandbox_create_rpc_errors").Inc()
		}
	}()
}

// killSandbox asks the worker to tear down one sandbox with a seed-style
// singleton RPC — the CreateBatch=1 ablation path, and the shape for
// teardowns that arrive alone. It records a size-1 kill_batch_size
// observation so the ablation's teardown telemetry mirrors the create
// path's (sendCreate observes create_batch_size 1 the same way).
func (cp *ControlPlane) killSandbox(sb *sandboxState) {
	cp.mKillBatch.ObserveMs(1)
	cp.metrics.Counter("sandbox_teardowns").Inc()
	if cp.cfg.PersistSandboxState {
		_ = cp.cfg.DB.HDel(hashSandboxes, fmt.Sprintf("%d", sb.id))
	}
	addr := sb.workerAddr
	payload := worker.EncodeSandboxID(sb.id)
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodKillSandbox, payload)
	}()
}

// dispatchKills fans a sweep's teardown decisions out to their workers:
// one KillSandboxBatch RPC per worker (chunked at cfg.CreateBatch, like
// the create path), all workers in parallel — the downscale mirror of
// dispatchCreates. With CreateBatch=1 it degenerates to the seed's
// one-RPC-per-sandbox teardown for the ablation. A singleton teardown
// keeps the seed RPC shape in every configuration.
func (cp *ControlPlane) dispatchKills(kills []*sandboxState) {
	if len(kills) == 0 {
		return
	}
	if cp.cfg.CreateBatch == 1 {
		for _, sb := range kills {
			cp.killSandbox(sb)
		}
		return
	}
	byWorker := make(map[string][]core.SandboxID)
	for _, sb := range kills {
		cp.metrics.Counter("sandbox_teardowns").Inc()
		if cp.cfg.PersistSandboxState {
			_ = cp.cfg.DB.HDel(hashSandboxes, fmt.Sprintf("%d", sb.id))
		}
		byWorker[sb.workerAddr] = append(byWorker[sb.workerAddr], sb.id)
	}
	for addr, ids := range byWorker {
		for len(ids) > 0 {
			chunk := ids
			if len(chunk) > cp.cfg.CreateBatch {
				chunk = chunk[:cp.cfg.CreateBatch]
			}
			ids = ids[len(chunk):]
			cp.sendKillBatch(addr, chunk)
		}
	}
}

// sendKillBatch issues one batched teardown RPC asynchronously. A
// single-sandbox chunk keeps the seed's singleton RPC shape so an
// isolated teardown is indistinguishable from the seed pipeline.
func (cp *ControlPlane) sendKillBatch(addr string, ids []core.SandboxID) {
	cp.mKillBatch.ObserveMs(float64(len(ids)))
	var method string
	var payload []byte
	if len(ids) == 1 {
		method, payload = proto.MethodKillSandbox, worker.EncodeSandboxID(ids[0])
	} else {
		batch := proto.KillSandboxBatch{IDs: ids}
		method, payload = proto.MethodKillSandboxBatch, batch.Marshal()
	}
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = cp.cfg.Transport.Call(ctx, addr, method, payload)
	}()
}

// healthLoop watches worker heartbeats and fails workers that go silent
// (paper §3.4.1: "Once the control plane detects no heartbeats, it
// notifies data plane components not to route requests to sandboxes on the
// affected worker node" and re-runs autoscaling). Each pass is one
// HealthSweep over per-shard registry snapshots.
func (cp *ControlPlane) healthLoop() {
	defer cp.wg.Done()
	interval := cp.cfg.HeartbeatTimeout / 4
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-cp.stopCh:
			return
		case <-ticker.C:
			if cp.IsLeader() {
				cp.HealthSweep()
			}
		}
	}
}

// failWorker removes a worker from scheduling and drains its sandboxes
// from the cluster state, then reconciles so the autoscaler re-creates
// capacity on healthy nodes. Draining sweeps the function shards one at
// a time and holds no registry lock, so a mass-failure drain never
// stalls registrations or heartbeats for surviving workers.
func (cp *ControlPlane) failWorker(id core.NodeID) {
	w := cp.getWorker(id)
	if w == nil {
		return
	}
	w.mu.Lock()
	if !w.healthy {
		w.mu.Unlock()
		return
	}
	w.healthy = false
	// Start the dead-entry GC clock: the entry lingers for DeadWorkerGC
	// so a late heartbeat can revive the node, then gets collected.
	w.failedAt = cp.clk.Now()
	w.mu.Unlock()
	touched := make(map[string]bool)
	cp.forEachShard(func(sh *functionShard) {
		for name, fs := range sh.fns {
			for sid, sb := range fs.sandboxes {
				if sb.node == id {
					delete(fs.sandboxes, sid)
					touched[name] = true
				}
			}
		}
	})
	cp.metrics.Counter("worker_failures_detected").Inc()
	cp.broadcastEndpointsBatch(sortedKeys(touched))
	// Re-run autoscaling immediately so replacement sandboxes spin up
	// elsewhere without waiting a full tick.
	cp.Reconcile()
}

// broadcastFunctions pushes the registered function list to every data
// plane.
func (cp *ControlPlane) broadcastFunctions() {
	for _, addr := range cp.dataPlaneAddrs() {
		cp.sendFunctionsTo(addr)
	}
}

// dataPlaneAddrs returns the addresses of the live data plane replicas —
// the broadcast fan-out set. Replicas the health monitor has failed are
// excluded, so a sweep never burns an RPC timeout per dead replica; they
// rejoin (with a cache re-warm) when their heartbeats resume.
func (cp *ControlPlane) dataPlaneAddrs() []string {
	states := cp.snapshotDataPlanes()
	addrs := make([]string, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		if st.healthy {
			addrs = append(addrs, st.addr)
		}
		st.mu.Unlock()
	}
	return addrs
}

func dataPlaneAddr(p *core.DataPlane) string {
	return fmt.Sprintf("%s:%d", p.IP, p.Port)
}

func (cp *ControlPlane) sendFunctionsTo(addr string) {
	list := proto.FunctionList{Functions: cp.snapshotFunctions()}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodAddFunction, list.Marshal())
}

// sendEndpointsTo pushes one function's endpoint set to a single data
// plane, used when warming a newly registered replica's cache.
func (cp *ControlPlane) sendEndpointsTo(addr, function string) {
	payload := cp.endpointUpdate(function).Marshal()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpoints, payload)
}

// sendEndpointsBatchTo warms one data plane's endpoint cache for every
// listed function in a single coalesced RPC (or per-function RPCs in the
// CreateBatch=1 ablation).
func (cp *ControlPlane) sendEndpointsBatchTo(addr string, functions []string) {
	if len(functions) == 0 {
		return
	}
	if cp.cfg.CreateBatch == 1 {
		for _, fn := range functions {
			cp.sendEndpointsTo(addr, fn)
		}
		return
	}
	for _, chunk := range cp.endpointBatchChunks(functions) {
		cp.mEndpointFanout.ObserveMs(float64(chunk.size))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpointsBatch, chunk.payload)
		cancel()
	}
}

// endpointChunk is one marshaled UpdateEndpointsBatch payload and the
// number of function updates it carries.
type endpointChunk struct {
	payload []byte
	size    int
}

// endpointBatchChunks builds the coalesced endpoint-update payloads for
// the listed functions, chunked at Config.CreateBatch like the create
// path so no fan-out ever builds one unbounded message (a data plane
// warming against a huge function census, say).
func (cp *ControlPlane) endpointBatchChunks(functions []string) []endpointChunk {
	var chunks []endpointChunk
	for len(functions) > 0 {
		chunk := functions
		if len(chunk) > cp.cfg.CreateBatch {
			chunk = chunk[:cp.cfg.CreateBatch]
		}
		functions = functions[len(chunk):]
		batch := proto.EndpointUpdateBatch{Updates: make([]proto.EndpointUpdate, 0, len(chunk))}
		for _, fn := range chunk {
			batch.Updates = append(batch.Updates, *cp.endpointUpdate(fn))
		}
		chunks = append(chunks, endpointChunk{payload: batch.Marshal(), size: len(batch.Updates)})
	}
	return chunks
}

// endpointUpdate builds the versioned ready-endpoint set for one
// function. Sequencing is per function under its shard lock, so
// broadcasts for unrelated functions never serialize against each other.
func (cp *ControlPlane) endpointUpdate(function string) *proto.EndpointUpdate {
	update := &proto.EndpointUpdate{Function: function}
	cp.withFunction(function, func(fs *functionState) {
		fs.epSeq++
		// Leadership epoch in the high bits keeps versions monotonic
		// across failovers, where per-function sequences restart.
		update.Version = cp.epoch.Load()<<32 | fs.epSeq
		for _, sb := range fs.sandboxes {
			if sb.phase == phaseReady {
				update.Endpoints = append(update.Endpoints, proto.SandboxInfo{
					ID:       sb.id,
					Function: function,
					Node:     sb.node,
					Addr:     sb.workerAddr,
					State:    core.SandboxReady,
				})
			}
		}
	})
	return update
}

// broadcastEndpoints pushes the current ready-endpoint set for a function
// to all data planes (paper Table 2, "Add/remove LB endpoint"). The update
// carries the full endpoint list for the function, making it idempotent.
func (cp *ControlPlane) broadcastEndpoints(function string) {
	cp.broadcastEndpointsBatch([]string{function})
}

// broadcastEndpointsBatch pushes the ready-endpoint sets of every listed
// function to all data planes in one coalesced diff RPC per data plane
// (the updates for all changed functions share the RPC, its marshaling,
// and its round trip). Versions are still minted per function under the
// function's shard lock, so per-function reordering protection is
// identical to the singleton path. In the CreateBatch=1 ablation each
// function broadcasts separately, reproducing the seed's fan-out.
func (cp *ControlPlane) broadcastEndpointsBatch(functions []string) {
	if len(functions) == 0 {
		return
	}
	addrs := cp.dataPlaneAddrs()
	if len(addrs) == 0 {
		return
	}
	if cp.cfg.CreateBatch == 1 {
		for _, fn := range functions {
			payload := cp.endpointUpdate(fn).Marshal()
			for _, addr := range addrs {
				addr := addr
				cp.wg.Add(1)
				go func() {
					defer cp.wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					defer cancel()
					_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpoints, payload)
				}()
			}
		}
		return
	}
	for _, chunk := range cp.endpointBatchChunks(functions) {
		for _, addr := range addrs {
			addr, payload := addr, chunk.payload
			cp.mEndpointFanout.ObserveMs(float64(chunk.size))
			cp.wg.Add(1)
			go func() {
				defer cp.wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpointsBatch, payload)
			}()
		}
	}
}

// sortedKeys returns a set's members in deterministic order, so batched
// fan-outs and tests see stable update ordering.
func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FunctionScale reports (ready, creating) sandbox counts for a function,
// used by tests and the experiment harness.
func (cp *ControlPlane) FunctionScale(name string) (ready, creating int) {
	cp.withFunction(name, func(fs *functionState) {
		ready, creating = fs.counts()
	})
	return ready, creating
}

// WorkerCount reports the number of healthy workers, scanning per-shard
// snapshots like the health monitor.
func (cp *ControlPlane) WorkerCount() int {
	n := 0
	cp.forEachWorkerShard(func(ws *workerShard) {
		for _, w := range ws.workers {
			w.mu.Lock()
			if w.healthy {
				n++
			}
			w.mu.Unlock()
		}
	})
	return n
}

// Metrics exposes the control plane's metrics registry.
func (cp *ControlPlane) Metrics() *telemetry.Registry { return cp.metrics }
