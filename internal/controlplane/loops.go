package controlplane

import (
	"context"
	"fmt"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/placement"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
	"dirigent/internal/worker"
)

// autoscaleLoop is the asynchronous loop that reconciles the number of
// sandboxes per function with the autoscaler's desired scale, issuing
// sandbox creations and teardowns to worker nodes (paper §3.3, §4).
func (cp *ControlPlane) autoscaleLoop() {
	defer cp.wg.Done()
	ticker := time.NewTicker(cp.cfg.AutoscaleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-cp.stopCh:
			return
		case <-ticker.C:
			if cp.IsLeader() {
				cp.Reconcile()
			}
		}
	}
}

// Reconcile runs one autoscaling pass. It is exported so that tests and
// the experiment harness can drive scaling deterministically instead of
// waiting for ticker periods.
//
// The sweep iterates shard by shard, holding only one shard's lock while
// it snapshots that shard's scaling decisions; sandbox transitions and
// metric reports for functions in other shards proceed concurrently with
// the pass instead of stalling behind a global lock for the whole sweep.
func (cp *ControlPlane) Reconcile() {
	now := cp.clk.Now()
	type action struct {
		create int
		kills  []*sandboxState
		fn     core.Function
	}
	var actions []action

	suppressDownscale := false
	if at := cp.recoveredAt.Load(); at != nil {
		suppressDownscale = now.Sub(*at) < cp.cfg.NoDownscaleWindow
	}
	cp.forEachShard(func(sh *functionShard) {
		for _, fs := range sh.fns {
			ready, creating := fs.counts()
			current := ready + creating
			desired := fs.scaler.Desired(now, current)
			switch {
			case desired > current:
				actions = append(actions, action{create: desired - current, fn: fs.fn})
			case desired < current && !suppressDownscale:
				// Tear down surplus sandboxes, preferring ready ones last so
				// that in-flight creations are cancelled first conceptually;
				// since creations cannot be cancelled mid-flight, we kill
				// ready sandboxes beyond the desired count.
				surplus := current - desired
				var victims []*sandboxState
				for _, sb := range fs.sandboxes {
					if len(victims) == surplus {
						break
					}
					if sb.phase == phaseReady {
						victims = append(victims, sb)
					}
				}
				for _, sb := range victims {
					delete(fs.sandboxes, sb.id)
				}
				actions = append(actions, action{kills: victims, fn: fs.fn})
			}
		}
	})

	for _, a := range actions {
		for i := 0; i < a.create; i++ {
			cp.createSandbox(a.fn)
		}
		for _, sb := range a.kills {
			cp.killSandbox(sb)
		}
		if len(a.kills) > 0 {
			cp.broadcastEndpoints(a.fn.Name)
		}
	}
}

// createSandbox places and requests one new sandbox for fn. This is the
// latency-critical cold-start path: note the absence of any persistent
// state update (design principle 2) and of any global lock — the path
// takes the registry read lock, one worker's mutex, and one function
// shard, so cold starts for unrelated functions proceed in parallel.
func (cp *ControlPlane) createSandbox(fn core.Function) {
	cp.regMu.RLock()
	candidates := make([]placement.NodeStatus, 0, len(cp.workers))
	for _, w := range cp.workers {
		w.mu.Lock()
		if w.healthy {
			candidates = append(candidates, placement.NodeStatus{Node: w.node, Util: w.util})
		}
		w.mu.Unlock()
	}
	cp.regMu.RUnlock()
	req := placement.Requirements{CPUMilli: fn.Scaling.CPUMilli, MemoryMB: fn.Scaling.MemoryMB}
	nodeID, err := cp.cfg.Placer.Place(candidates, req)
	if err != nil {
		cp.metrics.Counter("placement_failures").Inc()
		return
	}

	cp.regMu.RLock()
	w := cp.workers[nodeID]
	cp.regMu.RUnlock()
	if w == nil {
		return
	}
	// Optimistically account the sandbox on the worker so that the placer
	// sees the pending allocation before the next heartbeat refresh.
	w.mu.Lock()
	if !w.healthy {
		w.mu.Unlock()
		return
	}
	w.util.CPUMilliUsed += fn.Scaling.CPUMilli
	w.util.MemoryMBUsed += fn.Scaling.MemoryMB
	addr := w.addr
	w.mu.Unlock()

	id := core.SandboxID(cp.nextSandboxID.Add(1))
	placed := cp.withFunction(fn.Name, func(fs *functionState) {
		fs.sandboxes[id] = &sandboxState{
			id:         id,
			function:   fn.Name,
			node:       nodeID,
			workerAddr: addr,
			phase:      phaseCreating,
			createdAt:  cp.clk.Now(),
		}
	})
	if !placed {
		// Function deregistered while we were placing: return the
		// optimistic utilization we charged above.
		w.mu.Lock()
		w.util.CPUMilliUsed -= fn.Scaling.CPUMilli
		w.util.MemoryMBUsed -= fn.Scaling.MemoryMB
		w.mu.Unlock()
		return
	}

	createReq := proto.CreateSandboxRequest{SandboxID: id, Function: fn}
	payload := createReq.Marshal()
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := cp.cfg.Transport.Call(ctx, addr, proto.MethodCreateSandbox, payload); err != nil {
			cp.withFunction(fn.Name, func(fs *functionState) {
				delete(fs.sandboxes, id)
			})
			cp.metrics.Counter("sandbox_create_rpc_errors").Inc()
		}
	}()
	cp.metrics.Counter("sandbox_creations_requested").Inc()
}

// killSandbox asks the worker to tear down a sandbox.
func (cp *ControlPlane) killSandbox(sb *sandboxState) {
	cp.metrics.Counter("sandbox_teardowns").Inc()
	if cp.cfg.PersistSandboxState {
		_ = cp.cfg.DB.HDel(hashSandboxes, fmt.Sprintf("%d", sb.id))
	}
	addr := sb.workerAddr
	payload := worker.EncodeSandboxID(sb.id)
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodKillSandbox, payload)
	}()
}

// healthLoop watches worker heartbeats and fails workers that go silent
// (paper §3.4.1: "Once the control plane detects no heartbeats, it
// notifies data plane components not to route requests to sandboxes on the
// affected worker node" and re-runs autoscaling). The scan takes only the
// registry read lock and each worker's own mutex.
func (cp *ControlPlane) healthLoop() {
	defer cp.wg.Done()
	interval := cp.cfg.HeartbeatTimeout / 4
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-cp.stopCh:
			return
		case <-ticker.C:
			if !cp.IsLeader() {
				continue
			}
			now := cp.clk.Now()
			var failed []core.NodeID
			cp.regMu.RLock()
			for id, w := range cp.workers {
				w.mu.Lock()
				if w.healthy && now.Sub(w.lastHB) > cp.cfg.HeartbeatTimeout {
					failed = append(failed, id)
				}
				w.mu.Unlock()
			}
			cp.regMu.RUnlock()
			for _, id := range failed {
				cp.failWorker(id)
			}
		}
	}
}

// failWorker removes a worker from scheduling and drains its sandboxes
// from the cluster state, then reconciles so the autoscaler re-creates
// capacity on healthy nodes. Draining sweeps the shards one at a time.
func (cp *ControlPlane) failWorker(id core.NodeID) {
	cp.regMu.RLock()
	w := cp.workers[id]
	cp.regMu.RUnlock()
	if w == nil {
		return
	}
	w.mu.Lock()
	if !w.healthy {
		w.mu.Unlock()
		return
	}
	w.healthy = false
	w.mu.Unlock()
	touched := make(map[string]bool)
	cp.forEachShard(func(sh *functionShard) {
		for name, fs := range sh.fns {
			for sid, sb := range fs.sandboxes {
				if sb.node == id {
					delete(fs.sandboxes, sid)
					touched[name] = true
				}
			}
		}
	})
	cp.metrics.Counter("worker_failures_detected").Inc()
	for fn := range touched {
		cp.broadcastEndpoints(fn)
	}
	// Re-run autoscaling immediately so replacement sandboxes spin up
	// elsewhere without waiting a full tick.
	cp.Reconcile()
}

// broadcastFunctions pushes the registered function list to every data
// plane.
func (cp *ControlPlane) broadcastFunctions() {
	for _, addr := range cp.dataPlaneAddrs() {
		cp.sendFunctionsTo(addr)
	}
}

func (cp *ControlPlane) dataPlaneAddrs() []string {
	cp.regMu.RLock()
	defer cp.regMu.RUnlock()
	addrs := make([]string, 0, len(cp.dataplanes))
	for _, p := range cp.dataplanes {
		p := p
		addrs = append(addrs, dataPlaneAddr(&p))
	}
	return addrs
}

func dataPlaneAddr(p *core.DataPlane) string {
	return fmt.Sprintf("%s:%d", p.IP, p.Port)
}

func (cp *ControlPlane) sendFunctionsTo(addr string) {
	list := proto.FunctionList{Functions: cp.snapshotFunctions()}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodAddFunction, list.Marshal())
}

// sendEndpointsTo pushes one function's endpoint set to a single data
// plane, used when warming a newly registered replica's cache.
func (cp *ControlPlane) sendEndpointsTo(addr, function string) {
	payload := cp.endpointUpdate(function).Marshal()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpoints, payload)
}

// endpointUpdate builds the versioned ready-endpoint set for one
// function. Sequencing is per function under its shard lock, so
// broadcasts for unrelated functions never serialize against each other.
func (cp *ControlPlane) endpointUpdate(function string) *proto.EndpointUpdate {
	update := &proto.EndpointUpdate{Function: function}
	cp.withFunction(function, func(fs *functionState) {
		fs.epSeq++
		// Leadership epoch in the high bits keeps versions monotonic
		// across failovers, where per-function sequences restart.
		update.Version = cp.epoch.Load()<<32 | fs.epSeq
		for _, sb := range fs.sandboxes {
			if sb.phase == phaseReady {
				update.Endpoints = append(update.Endpoints, proto.SandboxInfo{
					ID:       sb.id,
					Function: function,
					Node:     sb.node,
					Addr:     sb.workerAddr,
					State:    core.SandboxReady,
				})
			}
		}
	})
	return update
}

// broadcastEndpoints pushes the current ready-endpoint set for a function
// to all data planes (paper Table 2, "Add/remove LB endpoint"). The update
// carries the full endpoint list for the function, making it idempotent.
func (cp *ControlPlane) broadcastEndpoints(function string) {
	update := cp.endpointUpdate(function)
	addrs := cp.dataPlaneAddrs()
	if len(addrs) == 0 {
		return
	}
	payload := update.Marshal()
	for _, addr := range addrs {
		addr := addr
		cp.wg.Add(1)
		go func() {
			defer cp.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, _ = cp.cfg.Transport.Call(ctx, addr, proto.MethodUpdateEndpoints, payload)
		}()
	}
}

// FunctionScale reports (ready, creating) sandbox counts for a function,
// used by tests and the experiment harness.
func (cp *ControlPlane) FunctionScale(name string) (ready, creating int) {
	cp.withFunction(name, func(fs *functionState) {
		ready, creating = fs.counts()
	})
	return ready, creating
}

// WorkerCount reports the number of healthy workers.
func (cp *ControlPlane) WorkerCount() int {
	cp.regMu.RLock()
	defer cp.regMu.RUnlock()
	n := 0
	for _, w := range cp.workers {
		w.mu.Lock()
		if w.healthy {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// Metrics exposes the control plane's metrics registry.
func (cp *ControlPlane) Metrics() *telemetry.Registry { return cp.metrics }
