package controlplane

import (
	"reflect"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/fleet"
	"dirigent/internal/predictor"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// newPredictiveHarness builds a CP with the demand predictor on and the
// background loops parked, so tests drive Reconcile (and therefore
// prewarm-target pushes) explicitly against a deterministic timeline.
func newPredictiveHarness(t *testing.T) *cpHarness {
	t.Helper()
	tr := transport.NewInProc()
	db := store.NewMemory()
	cp := New(Config{
		Addr:              "cp0",
		Transport:         tr,
		DB:                db,
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
		DataPlaneTimeout:  time.Hour,
		PredictivePrewarm: true,
		Predictor: predictor.Config{
			Window: 50 * time.Millisecond,
			Lead:   20 * time.Millisecond,
		},
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)
	return &cpHarness{tr: tr, cp: cp, db: db}
}

func startFleetWorker(t *testing.T, h *cpHarness, id core.NodeID, name string) *fleet.Worker {
	t.Helper()
	w := fleet.NewWorker(fleet.WorkerConfig{
		Node: core.WorkerNode{
			ID: id, Name: name, IP: name, Port: 9000,
			CPUMilli: 10000, MemoryMB: 65536,
		},
		Addr:              name + ":9000",
		Transport:         h.tr,
		ControlPlanes:     []string{"cp0"},
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

// TestPredictivePrewarmPushAndRestartRepush drives the push protocol end
// to end: demand observed by the reconciler turns into a per-image target
// set, the set is pushed (generation-tagged) to the worker, the worker's
// heartbeat carries its image-cache digest back to the registry, and a
// worker that restarts mid-push — losing its applied targets — is
// re-pushed automatically because its fresh registration resets the
// acknowledged generation.
func TestPredictivePrewarmPushAndRestartRepush(t *testing.T) {
	h := newPredictiveHarness(t)
	w1 := startFleetWorker(t, h, 1, "w1")
	startFakeDP(t, h.tr, "dp0:8000")
	reg := proto.RegisterDataPlaneRequest{DataPlane: core.DataPlane{ID: 1, IP: "dp0", Port: 8000}}
	h.call(t, proto.MethodRegisterDataPlane, reg.Marshal())

	fn := fnSpec("f")
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	report := proto.ScalingMetricReport{DataPlane: 1, Metrics: []core.ScalingMetric{
		{Function: "f", QueueDepth: 3, At: time.Now()},
	}}
	h.call(t, proto.MethodScalingMetric, report.Marshal())

	// First sweep stages creations (feeding the predictor) but pushes
	// nothing: no demand window has closed yet, so the target set is
	// still empty and workers stay in static mode.
	h.cp.Reconcile()
	if gen, _ := h.cp.PrewarmTargetSnapshot(); gen != 0 {
		t.Fatalf("prewarm generation before a window closed = %d, want 0", gen)
	}

	// After the demand window elapses, the next sweep computes the
	// per-image targets and pushes them to the (stale, gen-0) worker.
	time.Sleep(80 * time.Millisecond)
	h.cp.Reconcile()
	gen1, set1 := h.cp.PrewarmTargetSnapshot()
	if gen1 != 1 {
		t.Fatalf("prewarm generation after window close = %d, want 1", gen1)
	}
	if len(set1) != 1 || set1[0].Image != "img" || set1[0].Want != 3 {
		t.Fatalf("target set = %+v, want [{img 3}]", set1)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gen, targets := w1.PrewarmTargets(); gen == gen1 {
			if !reflect.DeepEqual(targets, set1) {
				t.Fatalf("worker received %+v, want %+v", targets, set1)
			}
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("worker never received the target push")
		}
		time.Sleep(time.Millisecond)
	}

	// The emulated worker's heartbeats report its image-cache digest,
	// which the registry folds into the worker's utilization for
	// cache-aware placement.
	wantHash := core.HashImage("img")
	deadline = time.Now().Add(5 * time.Second)
	for {
		ws := h.cp.getWorker(1)
		ws.mu.Lock()
		digest := append([]uint64(nil), ws.util.CacheDigest...)
		ws.mu.Unlock()
		if len(digest) == 1 && digest[0] == wantHash {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("registry never saw the worker's cache digest (got %v)", digest)
		}
		time.Sleep(time.Millisecond)
	}

	// Restart: the daemon dies mid-push and comes back empty. Its
	// re-registration replaces the registry entry (acknowledged
	// generation 0), so the next sweep re-pushes without any target
	// change being required.
	w1.Stop()
	w2 := startFleetWorker(t, h, 1, "w1")
	if gen, _ := w2.PrewarmTargets(); gen != 0 {
		t.Fatalf("restarted worker starts at generation %d, want 0", gen)
	}
	h.cp.Reconcile()
	genNow, _ := h.cp.PrewarmTargetSnapshot()
	if genNow < gen1 {
		t.Fatalf("prewarm generation regressed: %d < %d", genNow, gen1)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if gen, _ := w2.PrewarmTargets(); gen == genNow {
			break
		}
		if !time.Now().Before(deadline) {
			gen, _ := w2.PrewarmTargets()
			t.Fatalf("restarted worker never re-pushed: at generation %d, want %d", gen, genNow)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHeartbeatBatchCarriesCacheDigest pins the relay-tier aggregation
// path: a relay's WorkerHeartbeatBatch carries each worker's utilization
// including its cache digest, and the registry stamps it exactly like a
// direct heartbeat would.
func TestHeartbeatBatchCarriesCacheDigest(t *testing.T) {
	h := newCPHarness(t)
	registerWorker(t, h, 1, "w1", "10.0.0.1")

	digest := []uint64{5, 99, 1234}
	batch := proto.WorkerHeartbeatBatch{
		Relay: "relay0",
		Beats: []proto.WorkerHeartbeat{{
			Node: 1,
			Util: core.NodeUtilization{Node: 1, CPUMilliUsed: 700, CacheDigest: digest},
		}},
	}
	h.call(t, proto.MethodWorkerHeartbeatBatch, batch.Marshal())
	ws := h.cp.getWorker(1)
	ws.mu.Lock()
	got := append([]uint64(nil), ws.util.CacheDigest...)
	ws.mu.Unlock()
	if !reflect.DeepEqual(got, digest) {
		t.Fatalf("digest via relay batch = %v, want %v", got, digest)
	}

	// A later direct heartbeat replaces the digest wholesale.
	hb := proto.WorkerHeartbeat{Node: 1, Util: core.NodeUtilization{Node: 1, CacheDigest: []uint64{7}}}
	h.call(t, proto.MethodWorkerHeartbeat, hb.Marshal())
	ws.mu.Lock()
	got = append([]uint64(nil), ws.util.CacheDigest...)
	ws.mu.Unlock()
	if !reflect.DeepEqual(got, []uint64{7}) {
		t.Fatalf("digest via direct heartbeat = %v, want [7]", got)
	}
}
