package controlplane

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// TestConcurrentRelayBatchIngest hammers the relay ingest paths under
// -race at fleet scale: crafted heartbeat-batch floods from many fake
// relays (overlapping membership, Missing lists, unknown node IDs) race
// continuous health sweeps, singleton heartbeats, and registration-batch
// storms racing recovery rebuilds. It locks in that the per-shard batch
// ingest, the suspect set, the relay freshness map, and rebuildWorkers
// never rely on a global lock for exclusion.
func TestConcurrentRelayBatchIngest(t *testing.T) {
	fleetSize := 5000
	if testing.Short() {
		fleetSize = 1024
	}
	const (
		numRelays = 16
		iters     = 40
	)

	tr := transport.NewInProc()
	db := store.NewMemory()
	cp := New(Config{
		Addr:      "cpr0",
		Transport: tr,
		DB:        db,
		// Sweeps are driven explicitly below; park the tickers. The huge
		// timeout keeps the racing sweeps from failing live workers.
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	call := func(method string, payload []byte) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Errors are irrelevant here; the test asserts on final state
		// and on the race detector, not per-call success.
		_, _ = tr.Call(ctx, "cpr0", method, payload)
	}

	node := func(id int) core.WorkerNode {
		return core.WorkerNode{
			ID: core.NodeID(id), Name: fmt.Sprintf("sw%d", id),
			IP: fmt.Sprintf("10.3.%d.%d", id/256, id%256), Port: 9000,
			CPUMilli: 1 << 20, MemoryMB: 1 << 20,
		}
	}
	// Seed the registry through relayed registration batches, chunked
	// like a real relay's group commit.
	perRelay := fleetSize / numRelays
	for r := 0; r < numRelays; r++ {
		batch := proto.RegisterWorkerBatch{Relay: fmt.Sprintf("relay-%d", r)}
		hi := (r + 1) * perRelay
		if r == numRelays-1 {
			hi = fleetSize // last relay takes the division remainder
		}
		for i := r * perRelay; i < hi; i++ {
			batch.Workers = append(batch.Workers, node(i+1))
		}
		call(proto.MethodRegisterWorkerBatch, batch.Marshal())
	}

	var wg sync.WaitGroup
	spawn := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}

	// Heartbeat-batch floods: each fake relay repeatedly ships its slice,
	// deliberately overlapping its neighbor's first workers (failover
	// double-reporting) and mixing in Missing hints and unknown IDs.
	for r := 0; r < numRelays; r++ {
		r := r
		spawn(func() {
			name := fmt.Sprintf("relay-%d", r)
			lo := r*perRelay + 1
			for it := 0; it < iters; it++ {
				batch := proto.WorkerHeartbeatBatch{Relay: name}
				for i := lo; i < lo+perRelay; i++ {
					batch.Beats = append(batch.Beats, proto.WorkerHeartbeat{Node: core.NodeID(i)})
				}
				// Overlap: also vouch for the next relay's first worker.
				overlap := (lo + perRelay) % fleetSize
				batch.Beats = append(batch.Beats, proto.WorkerHeartbeat{Node: core.NodeID(overlap + 1)})
				// Hints: suspect a rotating member, plus an unknown ID the
				// ingest must ignore.
				batch.Missing = []core.NodeID{core.NodeID(lo + it%perRelay), core.NodeID(fleetSize + 500)}
				call(proto.MethodWorkerHeartbeatBatch, batch.Marshal())
			}
		})
	}

	// Singleton heartbeats race the batches on the same shards.
	spawn(func() {
		for it := 0; it < iters*8; it++ {
			hb := proto.WorkerHeartbeat{Node: core.NodeID(1 + it%fleetSize)}
			call(proto.MethodWorkerHeartbeat, hb.Marshal())
		}
	})

	// Health sweeps race the floods (mix of fast and full passes).
	spawn(func() {
		for it := 0; it < iters; it++ {
			cp.HealthSweep()
		}
	})

	// Registration-batch storms race recovery rebuilds: re-registration
	// of existing workers plus a rotating band of fresh ones.
	spawn(func() {
		for it := 0; it < iters/2; it++ {
			batch := proto.RegisterWorkerBatch{Relay: "relay-reg"}
			for i := 0; i < 64; i++ {
				batch.Workers = append(batch.Workers, node(1+(it*64+i)%(fleetSize+128)))
			}
			call(proto.MethodRegisterWorkerBatch, batch.Marshal())
		}
	})
	spawn(func() {
		for it := 0; it < 4; it++ {
			cp.recover()
		}
	})

	wg.Wait()
	// Settle: one final rebuild from the store, then verify the registry
	// and the persisted records agree and every worker is healthy.
	cp.recover()
	cp.HealthSweep()
	persisted := len(db.HGetAll(hashWorkers))
	if got := cp.WorkerCount(); got != persisted {
		t.Fatalf("registry/store diverged: WorkerCount = %d, persisted = %d", got, persisted)
	}
	if persisted < fleetSize {
		t.Fatalf("persisted %d workers, want >= %d", persisted, fleetSize)
	}
	if got := cp.Metrics().Gauge("fleet_size").Value(); int(got) != persisted {
		t.Errorf("fleet_size gauge = %d, want %d", got, persisted)
	}
}
