package controlplane

import (
	"fmt"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
)

// Relay-tier ingest: the control plane side of the hierarchical liveness
// design (paper §5.2.3 runs the control plane against 5000 worker nodes).
// Workers report to relays over the ordinary per-worker methods; each
// relay ships one WorkerHeartbeatBatch per flush period, so the control
// plane absorbs O(relays) liveness RPCs per period instead of O(workers).
// Liveness is still judged per worker — every sample in a batch is
// stamped with the batch's CP-side arrival time, and the health monitor
// compares those stamps against HeartbeatTimeout exactly as it does for
// direct heartbeats. The relay itself is a tracked liveness domain: a
// relay that stops batching is a correlated mass-timeout candidate whose
// members are re-verified individually (see HealthSweep in workers.go).

// relayState is one relay's freshness entry. Mutable fields are guarded
// by ControlPlane.relayMu; the set is tens of entries at most.
type relayState struct {
	lastHB time.Time
}

// relayCount returns the number of relays whose batches are current.
func (cp *ControlPlane) relayCount() int {
	cp.relayMu.Lock()
	defer cp.relayMu.Unlock()
	return len(cp.relays)
}

// noteRelayBatch refreshes (or admits) a relay's freshness entry on batch
// arrival. A relay the health monitor declared silent re-admits itself
// with its next batch — no registration handshake, mirroring how a
// worker's late heartbeat revives it.
func (cp *ControlPlane) noteRelayBatch(relay string, now time.Time) {
	cp.relayMu.Lock()
	r, ok := cp.relays[relay]
	if !ok {
		r = &relayState{}
		cp.relays[relay] = r
	}
	r.lastHB = now
	n := len(cp.relays)
	cp.relayMu.Unlock()
	cp.gRelayCount.Set(int64(n))
}

// sweepRelays drops relays whose last batch is older than RelayTimeout,
// returning the silent ones. The caller (HealthSweep) responds with a
// full registry scan: the silent relay's members either have fresh stamps
// (they failed over to another relay or to direct mode — no action) or
// stale ones (the correlated mass-timeout the relay's silence predicted).
func (cp *ControlPlane) sweepRelays(now time.Time) []string {
	cp.relayMu.Lock()
	var silent []string
	for id, r := range cp.relays {
		if now.Sub(r.lastHB) > cp.cfg.RelayTimeout {
			silent = append(silent, id)
			delete(cp.relays, id)
		}
	}
	n := len(cp.relays)
	cp.relayMu.Unlock()
	cp.gRelayCount.Set(int64(n))
	if len(silent) > 0 {
		cp.cRelayFailures.Add(int64(len(silent)))
	}
	return silent
}

// addSuspects queues relay-reported missing workers for the fast health
// sweeps. A suspect is a hint, never a verdict: the sweep fails a suspect
// only once the worker's own CP-side stamp exceeds HeartbeatTimeout, so a
// worker that failed over to another relay (fresh stamp) is cleared.
func (cp *ControlPlane) addSuspects(ids []core.NodeID) {
	cp.relayMu.Lock()
	for _, id := range ids {
		cp.suspects[id] = struct{}{}
	}
	cp.relayMu.Unlock()
}

// takeSuspects drains the suspect set for one sweep; the sweep re-queues
// the ones that are quiet but not yet past the timeout.
func (cp *ControlPlane) takeSuspects() []core.NodeID {
	cp.relayMu.Lock()
	defer cp.relayMu.Unlock()
	if len(cp.suspects) == 0 {
		return nil
	}
	out := make([]core.NodeID, 0, len(cp.suspects))
	for id := range cp.suspects {
		out = append(out, id)
	}
	cp.suspects = make(map[core.NodeID]struct{})
	return out
}

// handleWorkerHeartbeatBatch ingests one relay flush. Samples are grouped
// by registry shard so the batch takes each stripe's read lock once
// instead of once per worker, and a batch touching one shard's workers
// never serializes batches (or direct heartbeats) on other shards — the
// same striping contract as the singleton path, amortized. Each worker's
// state is then stamped under its own mutex with the batch's CP-side
// arrival time. Unknown node IDs are ignored exactly like the singleton
// handler ignores them: the worker must (re-)register first, so a stale
// relay can never re-inflate fleet_size.
func (cp *ControlPlane) handleWorkerHeartbeatBatch(payload []byte) ([]byte, error) {
	batch, err := proto.UnmarshalWorkerHeartbeatBatch(payload)
	if err != nil {
		return nil, err
	}
	cp.cHBBatchRPCs.Inc()
	cp.mHBBatchSize.ObserveMs(float64(len(batch.Beats)))
	now := cp.clk.Now()
	nshards := uint32(len(cp.wshards))
	groups := make([][]int, nshards)
	for i := range batch.Beats {
		si := uint32(batch.Beats[i].Node) % nshards
		groups[si] = append(groups[si], i)
	}
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		ws := cp.wshards[si]
		states := make([]*workerState, len(g))
		cp.rlockWorkerShardIngest(ws)
		for j, bi := range g {
			states[j] = ws.workers[batch.Beats[bi].Node]
		}
		ws.mu.RUnlock()
		// Stamp outside the shard lock: per-worker mutexes are enough,
		// and a slow stamp loop must not block registrations behind the
		// stripe's write lock.
		for j, bi := range g {
			w := states[j]
			if w == nil {
				continue
			}
			w.mu.Lock()
			w.lastHB = now
			w.util = batch.Beats[bi].Util
			w.healthy = true
			w.via = batch.Relay
			w.failedAt = time.Time{}
			w.mu.Unlock()
		}
	}
	cp.noteRelayBatch(batch.Relay, now)
	if len(batch.Missing) > 0 {
		cp.addSuspects(batch.Missing)
	}
	return nil, nil
}

// handleRegisterWorkerBatch ingests a relay's group-committed
// registration storm. Every record is persisted before any registry
// insert — the same persist-then-insert order as the singleton handler,
// which is what lets rebuildWorkers guarantee that a registration racing
// a recovery is never silently dropped. Inserts are then grouped per
// shard, one write-lock acquisition per touched stripe.
func (cp *ControlPlane) handleRegisterWorkerBatch(payload []byte) ([]byte, error) {
	batch, err := proto.UnmarshalRegisterWorkerBatch(payload)
	if err != nil {
		return nil, err
	}
	cp.mRegBatchSize.ObserveMs(float64(len(batch.Workers)))
	for i := range batch.Workers {
		w := &batch.Workers[i]
		if err := cp.cfg.DB.HSet(hashWorkers, w.Name, core.MarshalWorkerNode(w)); err != nil {
			return nil, fmt.Errorf("register worker batch (%s): persist %s: %w", batch.Relay, w.Name, err)
		}
	}
	now := cp.clk.Now()
	nshards := uint32(len(cp.wshards))
	groups := make([][]int, nshards)
	for i := range batch.Workers {
		si := uint32(batch.Workers[i].ID) % nshards
		groups[si] = append(groups[si], i)
	}
	var added int64
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		ws := cp.wshards[si]
		cp.lockWorkerShardIngest(ws)
		for _, wi := range g {
			w := batch.Workers[wi]
			if _, existed := ws.workers[w.ID]; !existed {
				added++
			}
			ws.workers[w.ID] = &workerState{
				node:    w,
				addr:    workerAddr(&w),
				lastHB:  now,
				healthy: true,
				via:     batch.Relay,
			}
		}
		ws.mu.Unlock()
	}
	if added != 0 {
		cp.workerCount.Add(added)
		cp.gFleetSize.Set(cp.workerCount.Load())
	}
	cp.metrics.Counter("workers_registered").Add(int64(len(batch.Workers)))
	return nil, nil
}
