package controlplane

import (
	"context"
	"testing"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// newDPLifecycleCP builds a control plane on a virtual clock with parked
// loops, so tests drive heartbeats and health sweeps deterministically.
func newDPLifecycleCP(t *testing.T, tr *transport.InProc, vclk *clock.Virtual) *ControlPlane {
	t.Helper()
	cp := New(Config{
		Addr:              "cp0",
		Transport:         tr,
		DB:                store.NewMemory(),
		Clock:             vclk,
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Second, // DataPlaneTimeout defaults to 3s
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)
	return cp
}

func registerDP(t *testing.T, tr *transport.InProc, id core.DataPlaneID, ip string, port uint16) {
	t.Helper()
	reg := proto.RegisterDataPlaneRequest{DataPlane: core.DataPlane{ID: id, IP: ip, Port: port}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterDataPlane, reg.Marshal()); err != nil {
		t.Fatal(err)
	}
}

func dpHeartbeat(t *testing.T, tr *transport.InProc, id core.DataPlaneID, ip string, port uint16) {
	t.Helper()
	hb := proto.DataPlaneHeartbeat{DataPlane: core.DataPlane{ID: id, IP: ip, Port: port}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, "cp0", proto.MethodDataPlaneHeartbeat, hb.Marshal()); err != nil {
		t.Fatal(err)
	}
}

func listDPs(t *testing.T, tr *transport.InProc) []core.DataPlane {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	respB, err := tr.Call(ctx, "cp0", proto.MethodListDataPlanes, nil)
	if err != nil {
		t.Fatal(err)
	}
	list, err := proto.UnmarshalDataPlaneList(respB)
	if err != nil {
		t.Fatal(err)
	}
	return list.DataPlanes
}

// TestDataPlaneHeartbeatPrunesAndRevives is the data plane lifecycle
// core: a replica whose heartbeats stop is pruned from the broadcast
// fan-out set within one health sweep, and a resumed heartbeat revives
// it with a full cache re-warm (function list + every endpoint set), so
// broadcasts missed while it was out of the set cannot leave its caches
// stale forever.
func TestDataPlaneHeartbeatPrunesAndRevives(t *testing.T) {
	tr := transport.NewInProc()
	vclk := clock.NewVirtual(time.Unix(5000, 0))
	cp := newDPLifecycleCP(t, tr, vclk)
	dp := startFakeDP(t, tr, "dp0:8000")
	registerDP(t, tr, 1, "dp0", 8000)

	fn := fnSpec("before")
	ctx := context.Background()
	if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	dp.mu.Lock()
	sawBefore := dp.functions["before"]
	dp.mu.Unlock()
	if !sawBefore {
		t.Fatalf("registered function never pushed to the live data plane")
	}

	// Heartbeats keep the replica live across sweeps.
	vclk.Advance(2 * time.Second)
	dpHeartbeat(t, tr, 1, "dp0", 8000)
	vclk.Advance(2 * time.Second)
	dpHeartbeat(t, tr, 1, "dp0", 8000)
	cp.HealthSweep()
	if got := cp.DataPlaneCount(); got != 1 {
		t.Fatalf("heartbeating data plane pruned: DataPlaneCount = %d, want 1", got)
	}

	// Heartbeats stop: one sweep past the timeout prunes the replica.
	vclk.Advance(3*time.Second + time.Millisecond)
	cp.HealthSweep()
	if got := cp.DataPlaneCount(); got != 0 {
		t.Fatalf("dead data plane not pruned: DataPlaneCount = %d, want 0", got)
	}
	if got := len(listDPs(t, tr)); got != 0 {
		t.Fatalf("ListDataPlanes returned %d replicas after prune, want 0", got)
	}
	if n := cp.Metrics().Counter("dataplane_failures_detected").Value(); n != 1 {
		t.Errorf("dataplane_failures_detected = %d, want 1", n)
	}

	// Broadcasts now skip the pruned replica entirely.
	fn2 := fnSpec("while-dead")
	if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn2)); err != nil {
		t.Fatal(err)
	}
	dp.mu.Lock()
	sawWhileDead := dp.functions["while-dead"]
	dp.mu.Unlock()
	if sawWhileDead {
		t.Fatalf("pruned data plane still received function broadcasts")
	}

	// A resumed heartbeat revives the replica with a full cache re-warm:
	// the function registered while it was out of the set arrives now.
	dpHeartbeat(t, tr, 1, "dp0", 8000)
	if got := cp.DataPlaneCount(); got != 1 {
		t.Fatalf("revived data plane not re-admitted: DataPlaneCount = %d, want 1", got)
	}
	dp.mu.Lock()
	warmed := dp.functions["while-dead"] && dp.functions["before"]
	dp.mu.Unlock()
	if !warmed {
		t.Errorf("revival did not re-warm the function cache: %+v", dp.functions)
	}
	if n := cp.Metrics().Counter("dataplane_revivals").Value(); n != 1 {
		t.Errorf("dataplane_revivals = %d, want 1", n)
	}
	// And it is back in the fan-out set for subsequent sweeps.
	cp.HealthSweep()
	if got := cp.DataPlaneCount(); got != 1 {
		t.Fatalf("revived data plane pruned again immediately: DataPlaneCount = %d", got)
	}
}

// TestDataPlaneHeartbeatUnknownReAdmits covers the heartbeat-racing-
// recovery hole: a heartbeat carrying a replica identity the control
// plane has no registry entry for re-admits the replica (with a cache
// warm) instead of being dropped on the floor.
func TestDataPlaneHeartbeatUnknownReAdmits(t *testing.T) {
	tr := transport.NewInProc()
	vclk := clock.NewVirtual(time.Unix(5000, 0))
	cp := newDPLifecycleCP(t, tr, vclk)
	dp := startFakeDP(t, tr, "dp9:8000")

	fn := fnSpec("warmme")
	ctx := context.Background()
	if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	dpHeartbeat(t, tr, 9, "dp9", 8000)
	if got := cp.DataPlaneCount(); got != 1 {
		t.Fatalf("unknown heartbeat not re-admitted: DataPlaneCount = %d, want 1", got)
	}
	dp.mu.Lock()
	warmed := dp.functions["warmme"]
	dp.mu.Unlock()
	if !warmed {
		t.Errorf("re-admitted replica's caches not warmed")
	}
}

// TestListDataPlanesSortedLiveSet pins the membership wire contract the
// front end polls: live replicas only, sorted by ID.
func TestListDataPlanesSortedLiveSet(t *testing.T) {
	tr := transport.NewInProc()
	vclk := clock.NewVirtual(time.Unix(5000, 0))
	cp := newDPLifecycleCP(t, tr, vclk)
	startFakeDP(t, tr, "dp2:8000")
	startFakeDP(t, tr, "dp1:8000")
	registerDP(t, tr, 2, "dp2", 8000)
	registerDP(t, tr, 1, "dp1", 8000)

	dps := listDPs(t, tr)
	if len(dps) != 2 || dps[0].ID != 1 || dps[1].ID != 2 {
		t.Fatalf("ListDataPlanes = %+v, want IDs [1 2]", dps)
	}

	// Only replica 1 keeps heartbeating; the sweep prunes replica 2 and
	// the list shrinks accordingly.
	vclk.Advance(3*time.Second + time.Millisecond)
	dpHeartbeat(t, tr, 1, "dp1", 8000)
	cp.HealthSweep()
	dps = listDPs(t, tr)
	if len(dps) != 1 || dps[0].ID != 1 {
		t.Fatalf("ListDataPlanes after prune = %+v, want ID [1]", dps)
	}
}

// TestKillBatchAblationSeedParity mirrors TestCreateBatchAblationSeedParity
// on the teardown path: the seed ablation (-create-batch 1) tears down
// one sandbox per KillSandbox RPC, while the default packs a worker's
// teardowns into one KillSandboxBatch RPC per sweep.
func TestKillBatchAblationSeedParity(t *testing.T) {
	for _, tc := range []struct {
		name        string
		createBatch int
		wantBatches bool
	}{
		{"seed-batch-1", 1, false},
		{"batched-default", 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := transport.NewInProc()
			cp := New(Config{
				Addr:              "cp0",
				Transport:         tr,
				DB:                store.NewMemory(),
				AutoscaleInterval: time.Hour,
				HeartbeatTimeout:  time.Hour,
				CreateBatch:       tc.createBatch,
			})
			if err := cp.Start(); err != nil {
				t.Fatal(err)
			}
			defer cp.Stop()
			w := startFakeWorker(t, tr, "cp0", 1, "10.3.0.1:9000", true)
			ctx := context.Background()
			req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{
				ID: 1, Name: "kw1", IP: "10.3.0.1", Port: 9000, CPUMilli: 1 << 20, MemoryMB: 1 << 20,
			}}
			if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterWorker, req.Marshal()); err != nil {
				t.Fatal(err)
			}
			const scale = 8
			fn := fnSpec("killparity")
			fn.Scaling.MinScale = scale
			if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
				t.Fatal(err)
			}
			cp.Reconcile()
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if ready, _ := cp.FunctionScale("killparity"); ready >= scale {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if ready, _ := cp.FunctionScale("killparity"); ready < scale {
				t.Fatalf("ready = %d, want %d", ready, scale)
			}

			// Deregistration tears every sandbox down through the same
			// dispatch path the autoscaler's scale-down uses.
			if _, err := tr.Call(ctx, "cp0", proto.MethodDeregisterFunction, core.MarshalFunction(&fn)); err != nil {
				t.Fatal(err)
			}
			deadline = time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				w.mu.Lock()
				kills := len(w.killed)
				w.mu.Unlock()
				if kills >= scale {
					break
				}
				time.Sleep(time.Millisecond)
			}
			w.mu.Lock()
			kills, singles, batches := len(w.killed), w.singleKillRPCs, w.batchKillRPCs
			w.mu.Unlock()
			if kills != scale {
				t.Fatalf("worker saw %d kills, want %d", kills, scale)
			}
			if tc.wantBatches {
				if batches == 0 || singles != 0 {
					t.Errorf("default config sent %d singles + %d batch kill RPCs, want 0 + >=1", singles, batches)
				}
				if p := cp.Metrics().Histogram("kill_batch_size").Max(); p < scale {
					t.Errorf("kill_batch_size max = %.0f, want %d", p, scale)
				}
			} else {
				if batches != 0 || singles != scale {
					t.Errorf("seed ablation sent %d singles + %d batches, want %d + 0", singles, batches, scale)
				}
			}
			if n := cp.Metrics().Counter("sandbox_teardowns").Value(); n != scale {
				t.Errorf("sandbox_teardowns = %d, want %d", n, scale)
			}
		})
	}
}
