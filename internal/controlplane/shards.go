package controlplane

import (
	"sync"
	"time"

	"dirigent/internal/core"
)

// defaultStateShards is the number of locks striping the function state
// map. 32 shards keep the probability of two of a handful of hot
// functions colliding low while the array stays small enough to sweep
// cheaply in the autoscale loop.
const defaultStateShards = 32

// functionShard is one stripe of the control plane's function state: a
// slice of the function map guarded by its own mutex. Sandbox
// transitions, scaling-metric records and endpoint-sequence bumps for
// functions in different shards proceed in parallel; only same-shard
// functions contend.
type functionShard struct {
	mu  sync.Mutex
	fns map[string]*functionState
}

func newShards(n int) []*functionShard {
	shards := make([]*functionShard, n)
	for i := range shards {
		shards[i] = &functionShard{fns: make(map[string]*functionState)}
	}
	return shards
}

// shardFor maps a function name to its shard (FNV-1a, folded to 16 bits
// by core.FunctionHash — plenty for any sane shard count).
func (cp *ControlPlane) shardFor(name string) *functionShard {
	return cp.shards[uint32(core.FunctionHash(name))%uint32(len(cp.shards))]
}

// lockShard acquires sh.mu, recording contended acquisitions in the
// shard_lock_wait_ms histogram. The uncontended fast path is a single
// TryLock so the telemetry costs nothing when sharding is doing its job.
func (cp *ControlPlane) lockShard(sh *functionShard) {
	if sh.mu.TryLock() {
		return
	}
	start := time.Now()
	sh.mu.Lock()
	cp.mShardContended.Inc()
	cp.mShardWait.Observe(time.Since(start))
}

// withFunction runs fn with the shard lock held and the function's state,
// or with nil state if the function is unknown. It reports whether the
// function existed.
func (cp *ControlPlane) withFunction(name string, fn func(fs *functionState)) bool {
	sh := cp.shardFor(name)
	cp.lockShard(sh)
	defer sh.mu.Unlock()
	fs, ok := sh.fns[name]
	if !ok {
		return false
	}
	fn(fs)
	return true
}

// forEachShard visits every shard in turn, calling fn with that shard's
// lock held. Loops that used to hold the seed's global mutex for a whole
// sweep (autoscaling, worker failure draining, status) iterate per-shard
// snapshots instead, so a sweep never blocks more than 1/len(shards) of
// the function space at a time.
func (cp *ControlPlane) forEachShard(fn func(sh *functionShard)) {
	for _, sh := range cp.shards {
		cp.lockShard(sh)
		fn(sh)
		sh.mu.Unlock()
	}
}

// snapshotFunctions returns a copy of every registered function spec.
// The snapshot is per-shard consistent, which is all the broadcast and
// status paths need.
func (cp *ControlPlane) snapshotFunctions() []core.Function {
	var out []core.Function
	cp.forEachShard(func(sh *functionShard) {
		for _, fs := range sh.fns {
			out = append(out, fs.fn)
		}
	})
	return out
}
