// Package controlplane implements Dirigent's monolithic control plane
// (paper §3). One process hosts the state manager, health monitor,
// autoscaler, and placer, exchanging information through in-memory
// structures instead of RPCs between microservices (design principle 3).
//
// The state manager is sharded: function state lives in a striped map
// (one lock per shard, see shards.go), the worker registry in its own
// striped map (one RWMutex per shard, see workers.go) with per-worker
// mutation locks, the small data-plane set behind a separate RWMutex,
// and cluster-wide scalars (leadership, epoch, sandbox IDs) in atomics.
// Sandbox transitions, heartbeats, registrations, scaling metrics and
// endpoint broadcasts for unrelated functions or workers therefore never
// contend on a global lock — the property that lets sandbox-creation
// throughput scale with cores (paper §5.2.1) and the worker fleet scale
// to thousands of nodes (paper §5.2.3 runs 5000) instead of serializing
// behind one mutex.
//
// The control plane persists only the state required to recover from a
// failure — Function registrations, DataPlane and WorkerNode records
// (paper Table 3) — and keeps Sandbox state purely in memory (design
// principle 2): after a failover the new leader reconstructs sandbox state
// asynchronously from worker-node reports and suppresses downscaling for
// one autoscaling window while metrics repopulate (§3.4.1).
package controlplane

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/autoscaler"
	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/placement"
	"dirigent/internal/predictor"
	"dirigent/internal/proto"
	"dirigent/internal/raft"
	"dirigent/internal/store"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// DB is the persistence interface the control plane requires; both
// store.Store and store.Replicated satisfy it.
type DB interface {
	HSet(hash, field string, value []byte) error
	HDel(hash, field string) error
	HGetAll(hash string) map[string][]byte
}

// Persistence hash names.
const (
	hashFunctions  = "functions"
	hashWorkers    = "workers"
	hashDataPlanes = "dataplanes"
	hashSandboxes  = "sandboxes" // used only by the persist-all ablation
	hashMeta       = "meta"      // cluster metadata: leadership epoch
	fieldEpoch     = "epoch"
	// hashDPAsync persists each durable data plane's advertised async
	// queue hashes, so a control plane that failed over can still lease
	// a dead replica's shards to survivors.
	hashDPAsync = "dataplane-async"
	// fieldAsyncEpoch is the cluster-wide async queue epoch counter
	// (hashMeta field): monotonic across CP failovers, so every lease
	// grant and every revival outranks all earlier ones.
	fieldAsyncEpoch = "async-epoch"
)

// Config parameterizes a control plane replica.
type Config struct {
	// Addr is this replica's RPC address; with HA it must appear in Peers.
	Addr string
	// Peers lists all control plane replica addresses (including Addr).
	// Empty or singleton means single-node mode without leader election.
	Peers []string
	// Transport carries all RPCs.
	Transport transport.Transport
	// DB is the replicated persistent store. Open it with
	// wal.FsyncGroup to group-commit the control plane's durable writes,
	// or wal.FsyncAlways for the paper's fsync-per-mutation baseline.
	DB DB
	// Clock abstracts time.
	Clock clock.Clock
	// StateShards is the number of locks striping the function state
	// map. 0 selects the default (32); 1 degenerates to the seed's
	// single global lock and exists for the sharding ablation.
	StateShards int
	// WorkerShards is the number of locks striping the worker registry.
	// 0 selects the default (32); 1 degenerates to the seed's single
	// registry lock and exists for the fleet-scale ablation
	// (`dirigent-cp -worker-shards 1`).
	WorkerShards int
	// CreateBatch caps how many sandbox creations one autoscale sweep
	// packs into a single CreateSandboxBatch RPC per worker. 0 selects
	// the default (256). 1 is the cold-start batching ablation: it
	// restores the seed's pipeline — one CreateSandbox RPC per sandbox
	// and one UpdateEndpoints RPC per changed function per data plane —
	// instead of batched creates and coalesced endpoint diffs.
	CreateBatch int
	// AutoscaleInterval is the period of the asynchronous autoscaling
	// loop (Knative ticks every 2 s; tests compress this).
	AutoscaleInterval time.Duration
	// HeartbeatTimeout is how long without a worker heartbeat before the
	// health monitor declares the worker failed.
	HeartbeatTimeout time.Duration
	// RelayTimeout is how long without a batch from a relay before the
	// health monitor declares the relay silent and re-verifies its
	// workers' CP-side stamps individually (a silent relay is a
	// correlated mass-timeout candidate, not automatically a mass
	// failure — workers that failed over to another relay or to direct
	// mode have fresh stamps and survive). 0 selects HeartbeatTimeout.
	RelayTimeout time.Duration
	// DeadWorkerGC is how long a crash-failed worker's registry entry
	// lingers before being garbage-collected (entry and persisted record
	// both removed, counted by dead_worker_gc). A late heartbeat within
	// the window still revives the worker. 0 selects the default
	// (10 × HeartbeatTimeout); negative disables collection.
	DeadWorkerGC time.Duration
	// FullScanEvery makes every N-th health sweep a full registry scan
	// when relays are active. In-between sweeps are fast passes that only
	// check relay freshness and relay-reported suspects — at 5000 workers
	// the full scan is the dominant sweep cost, and with relays vouching
	// for their members it only needs to run as the periodic ground
	// truth. 0 selects the default (4); 1 forces every sweep full (and
	// direct mode always scans fully regardless).
	FullScanEvery int
	// DataPlaneTimeout is how long without a data plane heartbeat before
	// the health monitor prunes the replica from the broadcast fan-out
	// set (and from the live set the front end polls). Data planes
	// heartbeat on a slower period than workers and a spurious prune
	// costs a cache re-warm, so the default is more lenient:
	// 3 × HeartbeatTimeout.
	DataPlaneTimeout time.Duration
	// NoDownscaleWindow suppresses downscaling after a failover while
	// autoscaling metrics repopulate (60 s in the paper, §3.4.1).
	NoDownscaleWindow time.Duration
	// AsyncLeaseDisabled turns off durable async queue lease failover
	// (the seed ablation): a pruned replica's persisted async tasks then
	// wait for that exact replica to restart with its store, and no
	// queue epochs are assigned.
	AsyncLeaseDisabled bool
	// PersistSandboxState enables the paper's ablation (§5.2.1,
	// "Dirigent optimization breakdown"): persist every sandbox state
	// change, putting a durable write on the cold-start critical path.
	PersistSandboxState bool
	// Placer selects worker nodes for new sandboxes; nil selects the
	// K8s-default policy. placement.NewCacheAware steers cold starts to
	// nodes whose heartbeat-reported cache digest already holds the
	// image; the default stays locality-blind (the seed-parity ablation).
	Placer placement.Policy
	// PredictivePrewarm turns the workers' static pre-warm pools into
	// demand-driven ones: the reconciler feeds every staged creation into
	// the per-image demand predictor and pushes per-image pool targets to
	// workers, piggybacked on the autoscale sweep (one PrewarmTargets RPC
	// per worker, only when its acknowledged generation is stale). Off
	// (the default) keeps the seed's static base-image pools exactly.
	PredictivePrewarm bool
	// Predictor tunes the demand estimator when PredictivePrewarm is on;
	// zero fields select predictor defaults (1-minute windows, 20 s
	// lead). Experiments that compress wall time scale Window and Lead by
	// the same factor as the trace timestamps.
	Predictor predictor.Config
	// Metrics receives control plane telemetry.
	Metrics *telemetry.Registry
	// RaftHeartbeat / RaftElectionMin / RaftElectionMax tune leader
	// election; zero values select defaults calibrated for ~10 ms
	// failover.
	RaftHeartbeat   time.Duration
	RaftElectionMin time.Duration
	RaftElectionMax time.Duration
	// LocalStore, set together with multiple Peers, selects the
	// replicated-log HA regime: every durable write is proposed to the
	// Raft log and each replica applies committed batches to this, its
	// own store (DB is then managed internally and must be left nil). A
	// promoted follower recovers from its own applied state — no shared
	// store, no cold replay. With a single peer, LocalStore simply backs
	// DB directly (seed-exact single-node behavior).
	LocalStore *store.Store
	// FollowerReads lets non-leader replicas serve read-only RPCs
	// (ListDataPlanes, ListFunctions) from their applied store while
	// their leader lease is fresh, offloading the read fan-in from the
	// leader. Requires the replicated-log regime.
	FollowerReads bool
	// ReadLease bounds follower-read staleness (how recently a follower
	// must have heard from the leader to vouch for its state); 0 selects
	// the Raft election-timeout minimum.
	ReadLease time.Duration
	// RaftRejoin marks a replica restarting into an established group
	// after a crash: having lost its log and vote state, it withholds
	// votes (and campaigns) until it catches up to the leader's commit
	// index, so its amnesia cannot help elect a leader that misses
	// committed writes. Leave false on first boot.
	RaftRejoin bool
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.StateShards <= 0 {
		c.StateShards = defaultStateShards
	}
	if c.WorkerShards <= 0 {
		c.WorkerShards = defaultWorkerShards
	}
	if c.CreateBatch <= 0 {
		c.CreateBatch = defaultCreateBatch
	}
	if c.AutoscaleInterval == 0 {
		c.AutoscaleInterval = 2 * time.Second
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = time.Second
	}
	if c.DataPlaneTimeout == 0 {
		c.DataPlaneTimeout = 3 * c.HeartbeatTimeout
	}
	if c.RelayTimeout == 0 {
		c.RelayTimeout = c.HeartbeatTimeout
	}
	if c.DeadWorkerGC == 0 {
		c.DeadWorkerGC = 10 * c.HeartbeatTimeout
	}
	if c.FullScanEvery <= 0 {
		c.FullScanEvery = 4
	}
	if c.NoDownscaleWindow == 0 {
		c.NoDownscaleWindow = 60 * time.Second
	}
	if c.Placer == nil {
		c.Placer = placement.NewKubeDefault(1)
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	return c
}

type sandboxPhase uint8

const (
	phaseCreating sandboxPhase = iota
	phaseReady
)

type sandboxState struct {
	id         core.SandboxID
	function   string
	node       core.NodeID
	workerAddr string
	phase      sandboxPhase
	createdAt  time.Time
}

// functionState is all per-function control plane state. It is guarded by
// the lock of the shard the function hashes to.
type functionState struct {
	fn        core.Function
	scaler    *autoscaler.FunctionAutoscaler
	sandboxes map[core.SandboxID]*sandboxState
	// epSeq numbers this function's endpoint broadcasts so that data
	// planes can discard reordered updates. Combined with the leadership
	// epoch into the update's Version. Sequencing is per function, so
	// broadcasts for unrelated functions never contend.
	epSeq uint64
}

func newFunctionState(fn core.Function) *functionState {
	return &functionState{
		fn:        fn,
		scaler:    autoscaler.New(fn.Scaling),
		sandboxes: make(map[core.SandboxID]*sandboxState),
	}
}

func (fs *functionState) counts() (ready, creating int) {
	for _, sb := range fs.sandboxes {
		if sb.phase == phaseReady {
			ready++
		} else {
			creating++
		}
	}
	return ready, creating
}

// workerState is one worker's registry entry. node and addr are immutable
// after registration; the mutable health/utilization fields are guarded
// by mu so concurrent heartbeats from different workers never contend.
type workerState struct {
	node core.WorkerNode
	addr string

	mu      sync.Mutex
	util    core.NodeUtilization
	lastHB  time.Time
	healthy bool
	// via is the relay whose batch last carried this worker's sample
	// ("" = direct heartbeat). lastHB is always the CP-side arrival time
	// of that heartbeat or batch — never a relay-side timestamp.
	via string
	// failedAt is when the health monitor failed the worker (zero while
	// healthy); crash-failed entries are garbage-collected once it is
	// older than Config.DeadWorkerGC.
	failedAt time.Time
	// prewarmGen is the generation of the last pre-warm target push this
	// worker acknowledged. Re-registration replaces the entry wholesale,
	// resetting it to zero — so a worker daemon that restarted mid-push
	// (losing its in-memory targets) is re-pushed on the next sweep.
	prewarmGen uint64
}

// ControlPlane is one control plane replica.
type ControlPlane struct {
	cfg     Config
	clk     clock.Clock
	metrics *telemetry.Registry

	raftNode *raft.Node // nil in single-node mode
	listener transport.Listener

	// Function state, striped across shards (see shards.go).
	shards []*functionShard

	// Worker registry, striped across shards (see workers.go);
	// per-worker mutable state is guarded by workerState.mu.
	// workerCount tracks registered entries for the fleet_size gauge.
	wshards     []*workerShard
	workerCount atomic.Int64

	// Relay tier tracking (see relays.go). The relay set is small (tens
	// of relays front thousands of workers), so one mutex suffices; it is
	// never held while touching worker shards. suspects accumulates
	// relay-reported missing workers for the fast health sweeps; sweepSeq
	// schedules the periodic full scans.
	relayMu  sync.Mutex
	relays   map[string]*relayState
	suspects map[core.NodeID]struct{}
	sweepSeq atomic.Uint64

	// Data plane registry (see dataplanes.go). The set is small (a
	// handful of replicas), so one RWMutex suffices; it is never taken on
	// worker paths. Per-replica liveness is guarded by each entry's own
	// mutex, mirroring workerState.
	dpMu       sync.RWMutex
	dataplanes map[core.DataPlaneID]*dataPlaneState

	// Async queue lease state (see asynclease.go): outstanding leases on
	// dead durable replicas' queue hashes, keyed by the dead owner.
	// asyncLeaseMu also serializes async epoch minting, so a revival
	// racing a sweep's lease issuance always ends with the revived owner
	// holding the higher epoch.
	asyncLeaseMu sync.Mutex
	asyncLeases  map[core.DataPlaneID]*asyncLeaseState

	// Predictive pre-warm state (pred is nil unless enabled). The current
	// target set and its generation are recomputed after each reconcile
	// sweep under prewarmMu; workers are pushed asynchronously when their
	// acknowledged generation is stale.
	pred       *predictor.Predictor
	prewarmMu  sync.Mutex
	prewarmGen uint64
	prewarmSet []proto.PrewarmTarget

	// Cluster-wide scalars, off any lock.
	nextSandboxID atomic.Uint64
	epoch         atomic.Uint64
	leader        atomic.Bool
	recoveredAt   atomic.Pointer[time.Time] // when this replica last became leader

	lifeMu  sync.Mutex // guards stopped and leadership transitions
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	// Hot-path metric handles, resolved once so sandbox transitions skip
	// the registry's name-lookup lock.
	mSandboxReady    *telemetry.Histogram
	mShardWait       *telemetry.Histogram
	mShardContended  *telemetry.Counter
	mSchedLatency    *telemetry.Histogram
	mCreateBatch     *telemetry.Histogram
	mKillBatch       *telemetry.Histogram
	mEndpointFanout  *telemetry.Histogram
	mRegWait         *telemetry.Histogram
	mRegContended    *telemetry.Counter
	mHealthSweep     *telemetry.Histogram
	gFleetSize       *telemetry.Gauge
	mIngestWait      *telemetry.Histogram
	mIngestContended *telemetry.Counter
	mHBBatchSize     *telemetry.Histogram
	mRegBatchSize    *telemetry.Histogram
	gRelayCount      *telemetry.Gauge
	cHBRPCs          *telemetry.Counter
	cHBBatchRPCs     *telemetry.Counter
	cDeadWorkerGC    *telemetry.Counter
	cRelayFailures   *telemetry.Counter
	cReadLeader      *telemetry.Counter
	cReadFollower    *telemetry.Counter
}

// New creates a control plane replica; call Start to serve.
func New(cfg Config) *ControlPlane {
	cfg = cfg.withDefaults()
	cp := &ControlPlane{
		cfg:         cfg,
		clk:         cfg.Clock,
		metrics:     cfg.Metrics,
		shards:      newShards(cfg.StateShards),
		wshards:     newWorkerShards(cfg.WorkerShards),
		dataplanes:  make(map[core.DataPlaneID]*dataPlaneState),
		asyncLeases: make(map[core.DataPlaneID]*asyncLeaseState),
		relays:      make(map[string]*relayState),
		suspects:    make(map[core.NodeID]struct{}),
		stopCh:      make(chan struct{}),
	}
	if cfg.PredictivePrewarm {
		cp.pred = predictor.New(cfg.Predictor)
	}
	cp.mSandboxReady = cp.metrics.Histogram("sandbox_ready_ms")
	cp.mShardWait = cp.metrics.Histogram("shard_lock_wait_ms")
	cp.mShardContended = cp.metrics.Counter("shard_lock_contended")
	cp.mSchedLatency = cp.metrics.Histogram("cold_start_sched_ms")
	cp.mCreateBatch = cp.metrics.CountHistogram("create_batch_size")
	cp.mKillBatch = cp.metrics.CountHistogram("kill_batch_size")
	cp.mEndpointFanout = cp.metrics.CountHistogram("endpoint_fanout_batch_size")
	cp.mRegWait = cp.metrics.Histogram("reg_lock_wait_ms")
	cp.mRegContended = cp.metrics.Counter("reg_lock_contended")
	cp.mHealthSweep = cp.metrics.Histogram("health_sweep_ms")
	cp.gFleetSize = cp.metrics.Gauge("fleet_size")
	cp.mIngestWait = cp.metrics.Histogram("ingest_lock_wait_ms")
	cp.mIngestContended = cp.metrics.Counter("ingest_lock_contended")
	cp.mHBBatchSize = cp.metrics.CountHistogram("heartbeat_batch_size")
	cp.mRegBatchSize = cp.metrics.CountHistogram("register_batch_size")
	cp.gRelayCount = cp.metrics.Gauge("relay_count")
	cp.cHBRPCs = cp.metrics.Counter("worker_hb_rpcs")
	cp.cHBBatchRPCs = cp.metrics.Counter("worker_hb_batch_rpcs")
	cp.cDeadWorkerGC = cp.metrics.Counter("dead_worker_gc")
	cp.cRelayFailures = cp.metrics.Counter("relay_failures_detected")
	cp.cReadLeader = cp.metrics.Counter("cp_read_leader_served")
	cp.cReadFollower = cp.metrics.Counter("cp_read_follower_served")
	return cp
}

// Start begins serving RPCs and, in HA mode, participating in leader
// election. In single-node mode the replica becomes leader immediately.
func (cp *ControlPlane) Start() error {
	if len(cp.cfg.Peers) > 1 {
		rc := raft.Config{
			ID:                 cp.cfg.Addr,
			Peers:              cp.cfg.Peers,
			Transport:          cp.cfg.Transport,
			HeartbeatInterval:  cp.cfg.RaftHeartbeat,
			ElectionTimeoutMin: cp.cfg.RaftElectionMin,
			ElectionTimeoutMax: cp.cfg.RaftElectionMax,
			OnLeaderChange:     cp.onLeaderChange,
			Clock:              cp.clk,
			Rejoin:             cp.cfg.RaftRejoin,
		}
		if cp.cfg.LocalStore != nil {
			// Replicated-log regime: durable writes go through the Raft
			// log; this replica's store holds the applied state.
			rc.Apply = cp.applyReplicated
			rc.ReadLease = cp.cfg.ReadLease
			cp.cfg.DB = &replicatedDB{cp: cp}
		}
		cp.raftNode = raft.NewNode(rc)
	} else if cp.cfg.DB == nil && cp.cfg.LocalStore != nil {
		cp.cfg.DB = cp.cfg.LocalStore
	}
	ln, err := cp.cfg.Transport.Listen(cp.cfg.Addr, cp.handleRPC)
	if err != nil {
		return fmt.Errorf("control plane %s: %w", cp.cfg.Addr, err)
	}
	cp.listener = ln
	if cp.raftNode != nil {
		cp.raftNode.Start()
	} else {
		cp.onLeaderChange(true, 1)
	}
	cp.wg.Add(2)
	go cp.autoscaleLoop()
	go cp.healthLoop()
	return nil
}

// Stop simulates a control plane crash: RPCs stop being served and the
// replica leaves the Raft group without notice.
func (cp *ControlPlane) Stop() {
	cp.lifeMu.Lock()
	if cp.stopped {
		cp.lifeMu.Unlock()
		return
	}
	cp.stopped = true
	cp.leader.Store(false)
	cp.lifeMu.Unlock()
	close(cp.stopCh)
	if cp.raftNode != nil {
		cp.raftNode.Stop()
	}
	if cp.listener != nil {
		cp.listener.Close()
	}
	cp.wg.Wait()
}

// IsLeader reports whether this replica currently leads.
func (cp *ControlPlane) IsLeader() bool {
	return cp.leader.Load()
}

// Addr returns the replica's RPC address.
func (cp *ControlPlane) Addr() string { return cp.cfg.Addr }

// onLeaderChange runs recovery when this replica gains leadership
// (paper §3.4.1: fetch DataPlane and WorkerNode objects, re-establish
// connections, reload Functions, update data plane caches, then merge
// sandbox reports from workers asynchronously).
func (cp *ControlPlane) onLeaderChange(isLeader bool, _ uint64) {
	cp.lifeMu.Lock()
	if cp.stopped {
		cp.lifeMu.Unlock()
		return
	}
	wasLeader := cp.leader.Load()
	cp.leader.Store(isLeader)
	if !isLeader || wasLeader {
		cp.lifeMu.Unlock()
		return
	}
	now := cp.clk.Now()
	cp.recoveredAt.Store(&now)
	cp.lifeMu.Unlock()
	cp.recover()
}

// nextEpoch durably increments the cluster-wide leadership epoch. The
// epoch forms the high bits of every endpoint-update version, so it must
// be monotonic across leaders — a freshly elected leader whose per-function
// sequences restart from zero must still outrank the old leader's
// broadcasts. The write happens once per leadership change, never on the
// invocation critical path.
func (cp *ControlPlane) nextEpoch() uint64 {
	var prev uint64
	if b, ok := cp.cfg.DB.HGetAll(hashMeta)[fieldEpoch]; ok && len(b) == 8 {
		for i := 0; i < 8; i++ {
			prev |= uint64(b[i]) << (8 * i)
		}
	}
	next := prev + 1
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(next >> (8 * i))
	}
	_ = cp.cfg.DB.HSet(hashMeta, fieldEpoch, buf)
	return next
}

func (cp *ControlPlane) recover() {
	start := cp.clk.Now()
	// In the replicated-log regime, wait until this replica's applied
	// store covers everything the previous leader committed before
	// reading from it (a barrier entry in the new term).
	cp.barrierApplied()
	cp.epoch.Store(cp.nextEpoch())

	// 1. Reload persisted state: functions, workers, data planes.
	cp.forEachShard(func(sh *functionShard) {
		sh.fns = make(map[string]*functionState)
	})
	for _, b := range cp.cfg.DB.HGetAll(hashFunctions) {
		if f, err := core.UnmarshalFunction(b); err == nil {
			sh := cp.shardFor(f.Name)
			cp.lockShard(sh)
			sh.fns[f.Name] = newFunctionState(*f)
			sh.mu.Unlock()
		}
	}
	now := cp.clk.Now()
	workers := cp.rebuildWorkers(func() []*workerState {
		var out []*workerState
		for _, b := range cp.cfg.DB.HGetAll(hashWorkers) {
			if w, err := core.UnmarshalWorkerNode(b); err == nil {
				out = append(out, &workerState{
					node:    *w,
					addr:    workerAddr(w),
					lastHB:  now,
					healthy: true,
				})
			}
		}
		return out
	})
	asyncInfo := cp.cfg.DB.HGetAll(hashDPAsync)
	cp.dpMu.Lock()
	cp.dataplanes = make(map[core.DataPlaneID]*dataPlaneState)
	for _, b := range cp.cfg.DB.HGetAll(hashDataPlanes) {
		if p, err := core.UnmarshalDataPlane(b); err == nil {
			st := &dataPlaneState{
				dp:      *p,
				addr:    dataPlaneAddr(p),
				lastHB:  now,
				healthy: true,
			}
			// Reload the replica's advertised async hashes so a prune
			// after this failover can still lease its durable shards.
			// The queue epoch restarts at 0 — every later mint outranks
			// it (fieldAsyncEpoch is persisted and monotonic).
			st.durable, st.asyncHashes = unmarshalAsyncInfo(asyncInfo[fmt.Sprintf("%d", p.ID)])
			cp.dataplanes[p.ID] = st
		}
	}
	cp.dpMu.Unlock()
	cp.refreshDataPlaneGauge()

	// 2. Refresh data plane caches with the function list.
	cp.broadcastFunctions()

	// 3. Asynchronously merge sandbox lists from workers. The scale of
	// every function starts at zero; worker reports repopulate it
	// (paper §3.4.1).
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		for _, w := range workers {
			select {
			case <-cp.stopCh:
				return
			default:
			}
			cp.mergeWorkerSandboxes(w)
		}
	}()
	cp.metrics.Histogram("recovery_ms").Observe(cp.clk.Since(start))
	cp.metrics.Counter("recoveries").Inc()
}

func workerAddr(w *core.WorkerNode) string {
	return fmt.Sprintf("%s:%d", w.IP, w.Port)
}

// observeSandboxID raises the sandbox ID high-water mark to at least
// id+1, so IDs minted after recovery never collide with merged ones.
func (cp *ControlPlane) observeSandboxID(id core.SandboxID) {
	for {
		cur := cp.nextSandboxID.Load()
		if uint64(id) < cur {
			return
		}
		if cp.nextSandboxID.CompareAndSwap(cur, uint64(id)+1) {
			return
		}
	}
}

func (cp *ControlPlane) mergeWorkerSandboxes(w *workerState) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	respB, err := cp.cfg.Transport.Call(ctx, w.addr, proto.MethodListSandboxes, nil)
	if err != nil {
		return // health monitor will handle a dead worker
	}
	list, err := proto.UnmarshalSandboxList(respB)
	if err != nil {
		return
	}
	touched := make(map[string]bool)
	for _, sb := range list.Sandboxes {
		sb := sb
		merged := cp.withFunction(sb.Function, func(fs *functionState) {
			fs.sandboxes[sb.ID] = &sandboxState{
				id:         sb.ID,
				function:   sb.Function,
				node:       sb.Node,
				workerAddr: sb.Addr,
				phase:      phaseReady,
				createdAt:  cp.clk.Now(),
			}
		})
		if !merged {
			continue // function deregistered while we were down
		}
		cp.observeSandboxID(sb.ID)
		touched[sb.Function] = true
	}
	cp.broadcastEndpointsBatch(sortedKeys(touched))
}

// handleRPC multiplexes Raft election RPCs and the Dirigent API.
func (cp *ControlPlane) handleRPC(method string, payload []byte) ([]byte, error) {
	if cp.raftNode != nil {
		if resp, err, handled := cp.raftNode.HandleRPC(method, payload); handled {
			return resp, err
		}
	}
	if !cp.IsLeader() {
		// Followers can still serve bounded-staleness reads from their
		// applied store; everything else redirects to the leader.
		if resp, err, handled := cp.tryFollowerRead(method); handled {
			return resp, err
		}
		return nil, cp.notLeaderErr()
	}
	switch method {
	case proto.MethodRegisterFunction:
		return cp.handleRegisterFunction(payload)
	case proto.MethodDeregisterFunction:
		return cp.handleDeregisterFunction(payload)
	case proto.MethodRegisterWorker:
		return cp.handleRegisterWorker(payload)
	case proto.MethodDeregisterWorker:
		return cp.handleDeregisterWorker(payload)
	case proto.MethodWorkerHeartbeat:
		return cp.handleWorkerHeartbeat(payload)
	case proto.MethodWorkerHeartbeatBatch:
		return cp.handleWorkerHeartbeatBatch(payload)
	case proto.MethodRegisterWorkerBatch:
		return cp.handleRegisterWorkerBatch(payload)
	case proto.MethodRegisterDataPlane:
		return cp.handleRegisterDataPlane(payload)
	case proto.MethodDeregisterDataPlane:
		return cp.handleDeregisterDataPlane(payload)
	case proto.MethodDataPlaneHeartbeat:
		return cp.handleDataPlaneHeartbeat(payload)
	case proto.MethodListDataPlanes:
		cp.cReadLeader.Inc()
		return cp.handleListDataPlanes()
	case proto.MethodListFunctions:
		cp.cReadLeader.Inc()
		return cp.handleListFunctions()
	case proto.MethodScalingMetric:
		return cp.handleScalingMetric(payload)
	case proto.MethodSandboxReady:
		return cp.handleSandboxReady(payload)
	case proto.MethodSandboxReadyBatch:
		return cp.handleSandboxReadyBatch(payload)
	case proto.MethodSandboxCrashed:
		return cp.handleSandboxCrashed(payload)
	case proto.MethodClusterStatus:
		return cp.handleClusterStatus()
	default:
		return nil, fmt.Errorf("control plane: unknown method %q", method)
	}
}

// handleRegisterFunction persists the function spec and propagates the
// metadata to data planes — the entire registration path (paper §5.2.4:
// "registering a function in Dirigent takes 2 ms on average, as it only
// involves persisting function specification into the database and
// propagating metadata to data plane components").
func (cp *ControlPlane) handleRegisterFunction(payload []byte) ([]byte, error) {
	f, err := core.UnmarshalFunction(payload)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := cp.cfg.DB.HSet(hashFunctions, f.Name, core.MarshalFunction(f)); err != nil {
		return nil, fmt.Errorf("register function %s: persist: %w", f.Name, err)
	}
	sh := cp.shardFor(f.Name)
	cp.lockShard(sh)
	if fs, exists := sh.fns[f.Name]; !exists {
		sh.fns[f.Name] = newFunctionState(*f)
	} else {
		fs.fn = *f
	}
	sh.mu.Unlock()
	cp.broadcastFunctions()
	cp.metrics.Counter("functions_registered").Inc()
	return nil, nil
}

func (cp *ControlPlane) handleDeregisterFunction(payload []byte) ([]byte, error) {
	f, err := core.UnmarshalFunction(payload)
	if err != nil {
		return nil, err
	}
	if err := cp.cfg.DB.HDel(hashFunctions, f.Name); err != nil {
		return nil, err
	}
	sh := cp.shardFor(f.Name)
	cp.lockShard(sh)
	fs := sh.fns[f.Name]
	delete(sh.fns, f.Name)
	var kills []*sandboxState
	if fs != nil {
		for _, sb := range fs.sandboxes {
			kills = append(kills, sb)
		}
	}
	sh.mu.Unlock()
	cp.dispatchKills(kills)
	cp.broadcastFunctions()
	cp.broadcastEndpoints(f.Name)
	return nil, nil
}

func (cp *ControlPlane) handleRegisterWorker(payload []byte) ([]byte, error) {
	req, err := proto.UnmarshalRegisterWorkerRequest(payload)
	if err != nil {
		return nil, err
	}
	w := req.Worker
	if err := cp.cfg.DB.HSet(hashWorkers, w.Name, core.MarshalWorkerNode(&w)); err != nil {
		return nil, fmt.Errorf("register worker %s: persist: %w", w.Name, err)
	}
	cp.putWorker(&workerState{
		node:    w,
		addr:    workerAddr(&w),
		lastHB:  cp.clk.Now(),
		healthy: true,
	})
	cp.metrics.Counter("workers_registered").Inc()
	return nil, nil
}

func (cp *ControlPlane) handleDeregisterWorker(payload []byte) ([]byte, error) {
	req, err := proto.UnmarshalRegisterWorkerRequest(payload)
	if err != nil {
		return nil, err
	}
	if err := cp.cfg.DB.HDel(hashWorkers, req.Worker.Name); err != nil {
		return nil, err
	}
	cp.failWorker(req.Worker.ID)
	// Unlike a crash (where the entry lingers unhealthy so a late
	// heartbeat can revive the node), explicit deregistration removes
	// the entry: the node is gone from persistent state, so fleet_size
	// and status must stop counting it. A re-registration racing the
	// removal wins.
	cp.removeWorkerIfUnhealthy(req.Worker.ID)
	return nil, nil
}

// handleWorkerHeartbeat refreshes one worker's liveness and utilization.
// It takes only the owning worker shard's read lock plus that worker's
// own mutex, so a large fleet's heartbeats don't serialize — and never
// touch function shard locks at all.
func (cp *ControlPlane) handleWorkerHeartbeat(payload []byte) ([]byte, error) {
	hb, err := proto.UnmarshalWorkerHeartbeat(payload)
	if err != nil {
		return nil, err
	}
	cp.cHBRPCs.Inc()
	if w := cp.getWorker(hb.Node); w != nil {
		w.mu.Lock()
		w.lastHB = cp.clk.Now()
		w.util = hb.Util
		w.healthy = true
		w.via = ""
		w.failedAt = time.Time{}
		w.mu.Unlock()
	}
	return nil, nil
}

func (cp *ControlPlane) handleRegisterDataPlane(payload []byte) ([]byte, error) {
	req, err := proto.UnmarshalRegisterDataPlaneRequest(payload)
	if err != nil {
		return nil, err
	}
	p := req.DataPlane
	if err := cp.cfg.DB.HSet(hashDataPlanes, fmt.Sprintf("%d", p.ID), core.MarshalDataPlane(&p)); err != nil {
		return nil, fmt.Errorf("register data plane %d: persist: %w", p.ID, err)
	}
	// A re-registration of a replica the health monitor had failed is a
	// revival just like a heartbeat from one (the systemd-restart path):
	// count it so harnesses can assert the sweep saw the replica return.
	if prev := cp.getDataPlane(p.ID); prev != nil {
		prev.mu.Lock()
		wasDead := !prev.healthy
		prev.mu.Unlock()
		if wasDead {
			cp.metrics.Counter("dataplane_revivals").Inc()
		}
	}
	if req.Durable {
		if err := cp.cfg.DB.HSet(hashDPAsync, fmt.Sprintf("%d", p.ID), marshalAsyncInfo(req.Durable, req.AsyncHashes)); err != nil {
			return nil, fmt.Errorf("register data plane %d: persist async info: %w", p.ID, err)
		}
	}
	cp.putDataPlane(p, req.Durable, req.AsyncHashes)
	// A (re-)registering replica is a new incarnation of its queue:
	// revoke any leases still draining its records and assign it a fresh
	// epoch that out-fences them, before re-warming its caches.
	epoch := cp.reviveAsyncOwner(p.ID)
	// Warm the new data plane's caches: functions, then endpoints —
	// every function's endpoint set in one coalesced RPC (per-function
	// RPCs in the CreateBatch=1 ablation).
	cp.warmDataPlane(dataPlaneAddr(&p))
	ack := proto.DataPlaneEpochAck{Epoch: epoch}
	return ack.Marshal(), nil
}

func (cp *ControlPlane) handleDeregisterDataPlane(payload []byte) ([]byte, error) {
	req, err := proto.UnmarshalRegisterDataPlaneRequest(payload)
	if err != nil {
		return nil, err
	}
	if err := cp.cfg.DB.HDel(hashDataPlanes, fmt.Sprintf("%d", req.DataPlane.ID)); err != nil {
		return nil, err
	}
	_ = cp.cfg.DB.HDel(hashDPAsync, fmt.Sprintf("%d", req.DataPlane.ID))
	cp.dpMu.Lock()
	delete(cp.dataplanes, req.DataPlane.ID)
	cp.dpMu.Unlock()
	cp.refreshDataPlaneGauge()
	return nil, nil
}

func (cp *ControlPlane) handleListFunctions() ([]byte, error) {
	list := proto.FunctionList{Functions: cp.snapshotFunctions()}
	return list.Marshal(), nil
}

// handleScalingMetric feeds data plane concurrency reports into the
// per-function autoscalers. Only the shard of each reported function is
// locked, and only long enough to look up the scaler.
func (cp *ControlPlane) handleScalingMetric(payload []byte) ([]byte, error) {
	report, err := proto.UnmarshalScalingMetricReport(payload)
	if err != nil {
		return nil, err
	}
	now := cp.clk.Now()
	for _, m := range report.Metrics {
		var scaler *autoscaler.FunctionAutoscaler
		cp.withFunction(m.Function, func(fs *functionState) {
			scaler = fs.scaler
		})
		if scaler != nil {
			// The scaler is internally synchronized; recording outside
			// the shard lock keeps metric floods off the sandbox paths.
			scaler.Record(now, float64(m.InFlight+m.QueueDepth))
		}
	}
	return nil, nil
}

func (cp *ControlPlane) handleSandboxReady(payload []byte) ([]byte, error) {
	ev, err := proto.UnmarshalSandboxEvent(payload)
	if err != nil {
		return nil, err
	}
	if !cp.applySandboxReady(ev) {
		return nil, fmt.Errorf("sandbox ready for unknown function %q", ev.Function)
	}
	cp.broadcastEndpoints(ev.Function)
	return nil, nil
}

// handleSandboxReadyBatch absorbs a worker's coalesced readiness report:
// every transition is applied, then all touched functions share one
// endpoint fan-out instead of broadcasting once per sandbox — the
// broadcast work for an N-sandbox burst drops from N full endpoint lists
// per function to one.
func (cp *ControlPlane) handleSandboxReadyBatch(payload []byte) ([]byte, error) {
	batch, err := proto.UnmarshalSandboxEventBatch(payload)
	if err != nil {
		return nil, err
	}
	touched := make(map[string]bool, len(batch.Events))
	for i := range batch.Events {
		ev := &batch.Events[i]
		if cp.applySandboxReady(ev) {
			touched[ev.Function] = true
		}
	}
	cp.broadcastEndpointsBatch(sortedKeys(touched))
	return nil, nil
}

// applySandboxReady marks one sandbox ready in the in-memory state,
// reporting whether the function is still registered. Endpoint fan-out is
// the caller's job so batch arrivals can coalesce it.
func (cp *ControlPlane) applySandboxReady(ev *proto.SandboxEvent) bool {
	ok := cp.withFunction(ev.Function, func(fs *functionState) {
		sb, exists := fs.sandboxes[ev.SandboxID]
		if !exists {
			sb = &sandboxState{
				id:        ev.SandboxID,
				function:  ev.Function,
				node:      ev.Node,
				createdAt: cp.clk.Now(),
			}
			fs.sandboxes[ev.SandboxID] = sb
		}
		sb.phase = phaseReady
		sb.workerAddr = ev.Addr
		cp.mSandboxReady.Observe(cp.clk.Since(sb.createdAt))
	})
	if !ok {
		return false
	}
	if cp.cfg.PersistSandboxState {
		cp.persistSandbox(ev)
	}
	return true
}

func (cp *ControlPlane) handleSandboxCrashed(payload []byte) ([]byte, error) {
	ev, err := proto.UnmarshalSandboxEvent(payload)
	if err != nil {
		return nil, err
	}
	cp.withFunction(ev.Function, func(fs *functionState) {
		delete(fs.sandboxes, ev.SandboxID)
	})
	if cp.cfg.PersistSandboxState {
		_ = cp.cfg.DB.HDel(hashSandboxes, fmt.Sprintf("%d", ev.SandboxID))
	}
	cp.metrics.Counter("sandbox_crashes").Inc()
	cp.broadcastEndpoints(ev.Function)
	return nil, nil
}

func (cp *ControlPlane) handleClusterStatus() ([]byte, error) {
	type fnStatus struct {
		name            string
		ready, creating int
	}
	var fns []fnStatus
	cp.forEachShard(func(sh *functionShard) {
		for name, fs := range sh.fns {
			ready, creating := fs.counts()
			fns = append(fns, fnStatus{name: name, ready: ready, creating: creating})
		}
	})
	sort.Slice(fns, func(i, j int) bool { return fns[i].name < fns[j].name })
	workers := int(cp.workerCount.Load())
	dataplanes, _ := cp.dataPlaneCounts()
	var b []byte
	b = fmt.Appendf(b, "leader=%s epoch=%d functions=%d workers=%d dataplanes=%d\n",
		cp.cfg.Addr, cp.epoch.Load(), len(fns), workers, dataplanes)
	for _, f := range fns {
		b = fmt.Appendf(b, "function %s ready=%d creating=%d\n", f.name, f.ready, f.creating)
	}
	return b, nil
}

func (cp *ControlPlane) functionNames() []string {
	var names []string
	cp.forEachShard(func(sh *functionShard) {
		for name := range sh.fns {
			names = append(names, name)
		}
	})
	sort.Strings(names)
	return names
}

// persistSandbox is only used by the persist-everything ablation. In
// Dirigent proper this write does not exist: removing it from the critical
// path is what lifts peak cold-start throughput from 1000/s to 2500/s
// (paper §5.2.1).
func (cp *ControlPlane) persistSandbox(ev *proto.SandboxEvent) {
	sb := core.Sandbox{ID: ev.SandboxID, Function: ev.Function, Node: ev.Node}
	rec := core.MarshalSandboxRecord(&sb)
	_ = cp.cfg.DB.HSet(hashSandboxes, fmt.Sprintf("%d", ev.SandboxID), rec[:])
}
