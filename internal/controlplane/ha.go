package controlplane

// Raft-log replication mode for the control-plane tier. The legacy HA
// regime (election-only Raft over a shared store.Replicated) still works:
// it is selected by Peers > 1 with Config.DB set and Config.LocalStore
// nil. The replicated-log regime is selected by Peers > 1 with
// Config.LocalStore set: every durable write the control plane makes is
// marshaled as a store.Op and proposed to the Raft log; committed batches
// are applied to each replica's local store, so a follower promoted to
// leader recovers from its own applied state — no cold store replay and no
// shared-store single point of failure. Read-only RPCs can then be served
// by followers from that same applied state behind a leader-lease check
// (bounded staleness), which is the perf headline: the leader's RPC load
// drops to writes while front-end membership polls and dirigentctl reads
// spread across the tier.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/raft"
	"dirigent/internal/store"
)

// fieldDPLive (hashMeta field) is the leader-published live data-plane
// membership list (a marshaled proto.DataPlaneList). Liveness is leader
// state — followers don't see heartbeats — so the leader replicates the
// live set whenever membership changes, letting followers answer
// MethodListDataPlanes from their applied store.
const fieldDPLive = "dp-live"

// proposeTimeout bounds how long a durable write waits for quorum
// replication before surfacing an error to the caller (who retries via
// cpclient failover).
const proposeTimeout = 5 * time.Second

// replLog reports whether this replica runs the replicated-log regime.
func (cp *ControlPlane) replLog() bool {
	return cp.raftNode != nil && cp.cfg.LocalStore != nil
}

// notLeaderErr builds the rejection a non-leader replica returns for
// leader-only RPCs, embedding a redirect hint when the leader is known so
// cpclient can jump straight there instead of probing replicas in order.
func (cp *ControlPlane) notLeaderErr() error {
	if cp.raftNode != nil {
		if l := cp.raftNode.Leader(); l != "" && l != cp.cfg.Addr {
			return fmt.Errorf("%s; leader=%s", cpclient.ErrNotLeaderText, l)
		}
	}
	return errors.New(cpclient.ErrNotLeaderText)
}

// applyReplicated is the Raft apply callback: it decodes a committed batch
// of store.Op entries and applies them to the local store in one lock
// acquisition (batched follower apply). Empty entries are Raft-internal
// barriers/no-ops.
func (cp *ControlPlane) applyReplicated(batch [][]byte) {
	ops := make([]store.Op, 0, len(batch))
	for _, b := range batch {
		if len(b) == 0 {
			continue
		}
		op, err := store.UnmarshalOp(b)
		if err != nil {
			continue // a corrupt entry would have failed quorum marshaling; skip defensively
		}
		ops = append(ops, op)
	}
	_ = cp.cfg.LocalStore.ApplyBatch(ops)
}

// replicatedDB adapts the Raft log to the DB interface: writes are
// proposed to the log and return once committed at quorum and applied
// locally (read-your-writes); reads come straight from the local applied
// store.
type replicatedDB struct {
	cp *ControlPlane
}

func (r *replicatedDB) HSet(hash, field string, value []byte) error {
	op := store.Op{Kind: store.OpHSet, Key: hash, Field: field, Value: value}
	return r.propose(&op)
}

func (r *replicatedDB) HDel(hash, field string) error {
	op := store.Op{Kind: store.OpHDel, Key: hash, Field: field}
	return r.propose(&op)
}

func (r *replicatedDB) HGetAll(hash string) map[string][]byte {
	return r.cp.cfg.LocalStore.HGetAll(hash)
}

func (r *replicatedDB) propose(op *store.Op) error {
	ctx, cancel := context.WithTimeout(context.Background(), proposeTimeout)
	defer cancel()
	err := r.cp.raftNode.Propose(ctx, op.Marshal())
	if errors.Is(err, raft.ErrNotLeader) {
		return r.cp.notLeaderErr()
	}
	return err
}

// barrierApplied blocks a freshly elected leader until its applied store
// reflects every write any previous leader acknowledged (an empty entry
// committed in the new term), so recovery never reads stale state —
// without it, nextEpoch could re-mint an epoch the old leader already
// used.
func (cp *ControlPlane) barrierApplied() {
	if !cp.replLog() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), proposeTimeout)
	defer cancel()
	_ = cp.raftNode.Barrier(ctx)
}

// publishDataPlanes replicates the live data-plane membership list so
// followers can serve MethodListDataPlanes. Called (via
// refreshDataPlaneGauge) on every membership or liveness change — rare
// events, so the quorum round trip is off every hot path.
func (cp *ControlPlane) publishDataPlanes() {
	if !cp.replLog() || !cp.cfg.FollowerReads || !cp.IsLeader() {
		return
	}
	b, _ := cp.handleListDataPlanes()
	_ = cp.cfg.DB.HSet(hashMeta, fieldDPLive, b)
}

// tryFollowerRead serves a read-only RPC from this replica's applied
// store, reporting handled=false when the method is not follower-servable
// or this replica may not vouch for its state (follower reads disabled,
// lease expired, or no published data yet) — the caller then rejects with
// the NotLeader redirect.
func (cp *ControlPlane) tryFollowerRead(method string) (resp []byte, err error, handled bool) {
	if !cp.replLog() || !cp.cfg.FollowerReads || !cp.raftNode.ReadAllowed() {
		return nil, nil, false
	}
	switch method {
	case proto.MethodListDataPlanes:
		b, ok := cp.cfg.LocalStore.HGet(hashMeta, fieldDPLive)
		if !ok {
			return nil, nil, false // leader hasn't published membership yet
		}
		cp.cReadFollower.Inc()
		return b, nil, true
	case proto.MethodListFunctions:
		var list proto.FunctionList
		for _, b := range cp.cfg.LocalStore.HGetAll(hashFunctions) {
			if f, err := core.UnmarshalFunction(b); err == nil {
				list.Functions = append(list.Functions, *f)
			}
		}
		sort.Slice(list.Functions, func(i, j int) bool {
			return list.Functions[i].Name < list.Functions[j].Name
		})
		cp.cReadFollower.Inc()
		return list.Marshal(), nil, true
	default:
		return nil, nil, false
	}
}

// ReadCounts reports how many read RPCs this replica served as leader vs
// as follower — the offload measurement experiments assert on.
func (cp *ControlPlane) ReadCounts() (leaderServed, followerServed int64) {
	return cp.cReadLeader.Value(), cp.cReadFollower.Value()
}

// ReplStats exposes the Raft replication batch telemetry (AppendEntries
// rounds and entries shipped); entries/rounds is the mean wire batch size.
func (cp *ControlPlane) ReplStats() (rounds, entries uint64) {
	if cp.raftNode == nil {
		return 0, 0
	}
	return cp.raftNode.ReplStats()
}

// RaftLeader returns the address of the last leader this replica heard
// from ("" if unknown or single-node).
func (cp *ControlPlane) RaftLeader() string {
	if cp.raftNode == nil {
		return cp.cfg.Addr
	}
	return cp.raftNode.Leader()
}
