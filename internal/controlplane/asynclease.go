package controlplane

import (
	"context"
	"sort"
	"time"

	"dirigent/internal/codec"
	"dirigent/internal/core"
	"dirigent/internal/proto"
)

// Lease failover for durable async queues (manager side).
//
// The paper makes async invocations at-least-once "through request
// persistence and a retry policy" (§3.4.2), but a pruned replica's
// persisted tasks used to wait for that exact replica to restart with
// its store. The lease manager piggybacks on the DP health sweep: when a
// durable replica is pruned, its advertised queue hashes are partitioned
// round-robin across the surviving durable replicas and granted to them
// at a freshly minted epoch (proto.AsyncLease). Epochs come from one
// persisted, monotonic counter (fieldAsyncEpoch), so every grant — and
// every revival — outranks all earlier ones even across CP failovers.
//
// Lifecycle invariants:
//   - All grants for one dead owner share one epoch. If any lessee dies
//     mid-drain, the next sweep re-mints and re-grants the owner's whole
//     hash set to the current survivors; the old grants are out-fenced
//     wholesale rather than tracked per hash.
//   - Revival (a registration, or a heartbeat from a pruned replica)
//     revokes outstanding leases and mints the owner a strictly higher
//     epoch before the re-warm, so the revived owner's own settles
//     out-fence every lessee.
//   - Grants are re-sent on every sweep while the lease is outstanding;
//     the lessee treats an already-held epoch as a no-op, so lost grant
//     RPCs self-heal without extra bookkeeping.

// asyncLeaseState is one dead owner's outstanding lease: the epoch all
// its grants were minted at and the hash partition per lessee. Guarded
// by cp.asyncLeaseMu.
type asyncLeaseState struct {
	owner  core.DataPlaneID
	epoch  uint64
	assign map[core.DataPlaneID][]string
}

func marshalAsyncInfo(durable bool, hashes []string) []byte {
	e := codec.NewEncoder(8 + 16*len(hashes))
	e.Bool(durable)
	e.U32(uint32(len(hashes)))
	for _, h := range hashes {
		e.String(h)
	}
	return e.Bytes()
}

func unmarshalAsyncInfo(b []byte) (durable bool, hashes []string) {
	if len(b) == 0 {
		return false, nil
	}
	d := codec.NewDecoder(b)
	durable = d.Bool()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		hashes = append(hashes, d.String())
	}
	if d.Err() != nil {
		return false, nil
	}
	return durable, hashes
}

// nextAsyncEpoch durably increments the cluster-wide async queue epoch.
// Callers must hold cp.asyncLeaseMu: minting under the lease mutex is
// what guarantees that whichever of a revival and a sweep's lease
// issuance runs second also holds the higher epoch.
func (cp *ControlPlane) nextAsyncEpoch() uint64 {
	var prev uint64
	if b, ok := cp.cfg.DB.HGetAll(hashMeta)[fieldAsyncEpoch]; ok && len(b) == 8 {
		for i := 0; i < 8; i++ {
			prev |= uint64(b[i]) << (8 * i)
		}
	}
	next := prev + 1
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(next >> (8 * i))
	}
	_ = cp.cfg.DB.HSet(hashMeta, fieldAsyncEpoch, buf)
	return next
}

// reviveAsyncOwner handles a replica (re-)joining: it drops and revokes
// any lease still outstanding on the replica's records and mints the
// replica a fresh epoch that out-fences them. The caller must have
// marked the replica healthy first (putDataPlane or the heartbeat
// handler), so a concurrent sweep either sees it healthy and skips it,
// or issued its lease before this mint and is outranked by it. Returns 0
// when leasing is disabled (no epochs are assigned at all — the seed
// ablation).
func (cp *ControlPlane) reviveAsyncOwner(id core.DataPlaneID) uint64 {
	if cp.cfg.AsyncLeaseDisabled {
		return 0
	}
	cp.asyncLeaseMu.Lock()
	epoch := cp.nextAsyncEpoch()
	ls := cp.asyncLeases[id]
	delete(cp.asyncLeases, id)
	cp.asyncLeaseMu.Unlock()
	if st := cp.getDataPlane(id); st != nil {
		st.mu.Lock()
		st.epoch = epoch
		st.mu.Unlock()
	}
	if ls != nil {
		// Best-effort, synchronous (like the cache re-warm that
		// follows): the fence the owner bumps on adopting its new epoch
		// is the actual safety mechanism; revokes just stop lessees from
		// burning work that can no longer settle.
		rv := proto.AsyncLeaseRevoke{Owner: id, Epoch: epoch}
		payload := rv.Marshal()
		for lessee := range ls.assign {
			if lst := cp.getDataPlane(lessee); lst != nil {
				cp.callDataPlaneAsync(lst.addr, proto.MethodAsyncLeaseRevoke, payload)
			}
		}
		cp.metrics.Counter("async_leases_recalled").Inc()
	}
	return epoch
}

// sweepAsyncLeases runs at the end of every DP health sweep: it leases
// each dead durable replica's hashes across the surviving durable
// replicas, re-leases (at a fresh epoch) any lease whose lessee has
// itself died, and re-sends grants for intact leases so lost RPCs heal.
func (cp *ControlPlane) sweepAsyncLeases() {
	if cp.cfg.AsyncLeaseDisabled {
		return
	}
	states := cp.snapshotDataPlanes()
	healthySet := make(map[core.DataPlaneID]bool)
	var lessees []*dataPlaneState // healthy + durable, sorted by ID
	var dead []*dataPlaneState
	for _, st := range states {
		st.mu.Lock()
		ok := st.healthy
		st.mu.Unlock()
		if ok {
			healthySet[st.dp.ID] = true
			if st.durable {
				lessees = append(lessees, st)
			}
		} else {
			dead = append(dead, st)
		}
	}
	if len(lessees) == 0 {
		return // nobody to lease to; records wait (and later sweeps retry)
	}
	sort.Slice(lessees, func(i, j int) bool { return lessees[i].dp.ID < lessees[j].dp.ID })

	cp.asyncLeaseMu.Lock()
	defer cp.asyncLeaseMu.Unlock()
	for _, st := range dead {
		if !st.durable || len(st.asyncHashes) == 0 {
			continue
		}
		// Re-check under the lease mutex: a concurrent revival marks the
		// replica healthy before it mints, so seeing unhealthy here
		// means any racing revival will mint after (and above) us.
		st.mu.Lock()
		alive := st.healthy
		st.mu.Unlock()
		if alive {
			continue
		}
		ls := cp.asyncLeases[st.dp.ID]
		if ls != nil {
			intact := true
			for lessee := range ls.assign {
				if !healthySet[lessee] {
					intact = false
					break
				}
			}
			if intact {
				cp.resendGrantsLocked(ls)
				continue
			}
			// A lessee died mid-drain: re-mint and re-partition the
			// whole hash set; the fresh epoch out-fences the old grants.
		}
		epoch := cp.nextAsyncEpoch()
		assign := make(map[core.DataPlaneID][]string, len(lessees))
		for i, h := range st.asyncHashes {
			lessee := lessees[i%len(lessees)].dp.ID
			assign[lessee] = append(assign[lessee], h)
		}
		ls = &asyncLeaseState{owner: st.dp.ID, epoch: epoch, assign: assign}
		cp.asyncLeases[st.dp.ID] = ls
		cp.metrics.Counter("async_leases_issued").Inc()
		cp.resendGrantsLocked(ls)
	}
	cp.metrics.Gauge("async_leases_active").Set(int64(len(cp.asyncLeases)))
}

// resendGrantsLocked pushes a lease's grants to its lessees (async,
// best-effort). A lessee already holding the epoch treats the grant as a
// no-op, so re-sends are free self-healing for lost RPCs.
func (cp *ControlPlane) resendGrantsLocked(ls *asyncLeaseState) {
	for lessee, hashes := range ls.assign {
		st := cp.getDataPlane(lessee)
		if st == nil {
			continue
		}
		g := proto.AsyncLease{Owner: ls.owner, Epoch: ls.epoch, Hashes: hashes}
		cp.callDataPlaneAsync(st.addr, proto.MethodAsyncLeaseGrant, g.Marshal())
	}
}

// callDataPlaneAsync fires one best-effort RPC at a data plane without
// blocking the caller (health sweeps and revival handlers must not stall
// on an unreachable replica's timeout).
func (cp *ControlPlane) callDataPlaneAsync(addr, method string, payload []byte) {
	cp.wg.Add(1)
	go func() {
		defer cp.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if _, err := cp.cfg.Transport.Call(ctx, addr, method, payload); err != nil {
			cp.metrics.Counter("async_lease_rpc_errors").Inc()
		}
	}()
}

// AsyncLeaseCount reports the number of owners whose records are
// currently leased out, for tests and harnesses.
func (cp *ControlPlane) AsyncLeaseCount() int {
	cp.asyncLeaseMu.Lock()
	defer cp.asyncLeaseMu.Unlock()
	return len(cp.asyncLeases)
}

// asyncLeaseEpoch returns the epoch of the outstanding lease on owner, 0
// if none.
func (cp *ControlPlane) asyncLeaseEpoch(owner core.DataPlaneID) uint64 {
	cp.asyncLeaseMu.Lock()
	defer cp.asyncLeaseMu.Unlock()
	if ls := cp.asyncLeases[owner]; ls != nil {
		return ls.epoch
	}
	return 0
}
