package controlplane

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// TestConcurrentControlPlaneAccess hammers one control plane replica with
// parallel registrations, heartbeats, scaling metrics, sandbox
// transitions, reconcile passes and status reads across many functions.
// Run with -race, it locks in the sharded state manager's correctness:
// distinct functions take distinct shard locks, workers take per-worker
// locks, and nothing relies on the seed's global mutex for exclusion.
func TestConcurrentControlPlaneAccess(t *testing.T) {
	const (
		numFunctions = 64
		numWorkers   = 4
		numSandboxes = 4 // sandbox IDs cycled per function
		iters        = 200
	)

	tr := transport.NewInProc()
	db := store.NewMemory()
	cp := New(Config{
		Addr:      "cp0",
		Transport: tr,
		DB:        db,
		// Loops are driven explicitly below; park the tickers.
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	call := func(method string, payload []byte) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Errors are expected under churn (e.g. a sandbox-ready event
		// racing its function's deregistration); the test asserts on
		// final state and on the race detector, not per-call success.
		_, _ = tr.Call(ctx, "cp0", method, payload)
	}

	for w := 1; w <= numWorkers; w++ {
		startFakeWorker(t, tr, "cp0", core.NodeID(w), fmt.Sprintf("10.0.0.%d:9000", w), false)
		req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{
			ID: core.NodeID(w), Name: fmt.Sprintf("w%d", w), IP: fmt.Sprintf("10.0.0.%d", w),
			Port: 9000, CPUMilli: 100000, MemoryMB: 1 << 20,
		}}
		call(proto.MethodRegisterWorker, req.Marshal())
	}
	startFakeDP(t, tr, "dp0:8000")
	reg := proto.RegisterDataPlaneRequest{DataPlane: core.DataPlane{ID: 1, IP: "dp0", Port: 8000}}
	call(proto.MethodRegisterDataPlane, reg.Marshal())

	fnName := func(i int) string { return fmt.Sprintf("stress-fn-%d", i) }

	var wg sync.WaitGroup
	run := func(fn func(g int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 0; g < iters; g++ {
				fn(g)
			}
		}()
	}

	// Registrations: 8 goroutines each own 8 functions and re-register
	// them repeatedly (idempotent updates).
	for g := 0; g < 8; g++ {
		g := g
		run(func(i int) {
			fn := fnSpec(fnName(g*8 + i%8))
			call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
		})
	}
	// Heartbeat floods from every worker.
	for w := 1; w <= numWorkers; w++ {
		w := w
		run(func(int) {
			hb := proto.WorkerHeartbeat{Node: core.NodeID(w)}
			call(proto.MethodWorkerHeartbeat, hb.Marshal())
		})
	}
	// Scaling metric reports across all functions.
	run(func(i int) {
		report := proto.ScalingMetricReport{DataPlane: 1, Metrics: []core.ScalingMetric{
			{Function: fnName(i % numFunctions), InFlight: i % 5, QueueDepth: i % 3, At: time.Now()},
		}}
		call(proto.MethodScalingMetric, report.Marshal())
	})
	// Sandbox transitions: ready and crashed events racing each other on
	// a bounded ID space so state stays small.
	for g := 0; g < 4; g++ {
		g := g
		run(func(i int) {
			fn := (g*iters + i) % numFunctions
			ev := proto.SandboxEvent{
				SandboxID: core.SandboxID(1_000_000 + fn*numSandboxes + i%numSandboxes),
				Function:  fnName(fn),
				Node:      core.NodeID(i%numWorkers + 1),
				Addr:      fmt.Sprintf("10.0.0.%d:9000", i%numWorkers+1),
			}
			if i%3 == 2 {
				call(proto.MethodSandboxCrashed, ev.Marshal())
			} else {
				call(proto.MethodSandboxReady, ev.Marshal())
			}
		})
	}
	// Autoscale sweeps concurrent with everything above.
	run(func(int) { cp.Reconcile() })
	// Reads: scale queries and cluster status.
	run(func(i int) {
		cp.FunctionScale(fnName(i % numFunctions))
		cp.WorkerCount()
		if i%16 == 0 {
			call(proto.MethodClusterStatus, nil)
		}
	})
	// Function churn on a dedicated name that also shares shards with the
	// stable ones.
	run(func(i int) {
		fn := fnSpec("stress-churn")
		if i%2 == 0 {
			call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
		} else {
			call(proto.MethodDeregisterFunction, core.MarshalFunction(&fn))
		}
	})

	wg.Wait()

	// All 64 stable functions must have survived the churn, persisted and
	// visible in status.
	for i := 0; i < numFunctions; i++ {
		if _, ok := db.HGet(hashFunctions, fnName(i)); !ok {
			t.Errorf("function %s lost from persistent store", fnName(i))
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := tr.Call(ctx, "cp0", proto.MethodClusterStatus, nil)
	if err != nil {
		t.Fatalf("cluster status: %v", err)
	}
	status := string(out)
	for i := 0; i < numFunctions; i++ {
		if !strings.Contains(status, fnName(i)) {
			t.Errorf("status missing %s", fnName(i))
		}
	}
	if cp.WorkerCount() != numWorkers {
		t.Errorf("WorkerCount = %d, want %d", cp.WorkerCount(), numWorkers)
	}
}

// TestShardAblationSingleShard locks in that StateShards=1 (the global
// lock ablation) still behaves correctly — every function lands in the
// one shard and all paths keep working.
func TestShardAblationSingleShard(t *testing.T) {
	tr := transport.NewInProc()
	cp := New(Config{
		Addr:              "cp1shard",
		Transport:         tr,
		DB:                store.NewMemory(),
		StateShards:       1,
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()
	if len(cp.shards) != 1 {
		t.Fatalf("StateShards=1 built %d shards", len(cp.shards))
	}
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		fn := fnSpec(fmt.Sprintf("f%d", i))
		if _, err := tr.Call(ctx, "cp1shard", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(cp.functionNames()); got != 16 {
		t.Fatalf("functionNames = %d, want 16", got)
	}
}

// TestShardDistribution sanity-checks that the FNV stripe spreads
// realistic function names across shards instead of piling onto one.
func TestShardDistribution(t *testing.T) {
	cp := New(Config{Addr: "unused", DB: store.NewMemory()})
	seen := make(map[*functionShard]int)
	for i := 0; i < 512; i++ {
		seen[cp.shardFor(fmt.Sprintf("function-%d", i))]++
	}
	if len(seen) < defaultStateShards/2 {
		t.Fatalf("512 names hit only %d of %d shards", len(seen), defaultStateShards)
	}
	for sh, n := range seen {
		if n > 512/4 {
			t.Fatalf("shard %p got %d of 512 names", sh, n)
		}
	}
}
