package controlplane

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// newRelayVClockHarness builds a control plane on a virtual clock with
// the background loops parked, configured through mutate so each edge
// test can pin FullScanEvery / DeadWorkerGC / RelayTimeout explicitly.
func newRelayVClockHarness(t *testing.T, mutate func(*Config)) (*ControlPlane, *transport.InProc, *clock.Virtual) {
	t.Helper()
	vclk := clock.NewVirtual(time.Unix(1_000_000, 0))
	tr := transport.NewInProc()
	cfg := Config{
		Addr:              "cp-relay",
		Transport:         tr,
		DB:                store.NewMemory(),
		Clock:             vclk,
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cp := New(cfg)
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)
	return cp, tr, vclk
}

// relayBatch ships one WorkerHeartbeatBatch from the named relay.
func relayBatch(t *testing.T, tr *transport.InProc, relay string, beats, missing []core.NodeID) {
	t.Helper()
	batch := proto.WorkerHeartbeatBatch{Relay: relay, Missing: missing}
	for _, id := range beats {
		batch.Beats = append(batch.Beats, proto.WorkerHeartbeat{Node: id})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, "cp-relay", proto.MethodWorkerHeartbeatBatch, batch.Marshal()); err != nil {
		t.Fatalf("heartbeat batch from %s: %v", relay, err)
	}
}

// relayRegister ships one RegisterWorkerBatch from the named relay.
func relayRegister(t *testing.T, tr *transport.InProc, relay string, ids ...core.NodeID) {
	t.Helper()
	batch := proto.RegisterWorkerBatch{Relay: relay}
	for _, id := range ids {
		batch.Workers = append(batch.Workers, core.WorkerNode{
			ID: id, Name: fmt.Sprintf("rw%d", id), IP: "10.1.0.1", Port: 9000,
			CPUMilli: 100000, MemoryMB: 1 << 20,
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, "cp-relay", proto.MethodRegisterWorkerBatch, batch.Marshal()); err != nil {
		t.Fatalf("register batch from %s: %v", relay, err)
	}
}

// TestSilentRelayIsNotAMassFailure pins the correlated-mass-timeout
// response: when a relay goes silent mid-period, its members' own
// CP-side stamps decide their fate. Workers that failed over to the
// surviving relay (fresh stamps) stay healthy — the silent relay costs
// one full scan, not a spurious mass failure — and the relay's next
// batch re-admits it with no handshake.
func TestSilentRelayIsNotAMassFailure(t *testing.T) {
	cp, tr, vclk := newRelayVClockHarness(t, nil)
	relayRegister(t, tr, "r1", 1, 2, 3, 4)
	relayRegister(t, tr, "r2", 5, 6, 7, 8)
	relayBatch(t, tr, "r1", []core.NodeID{1, 2, 3, 4}, nil)
	relayBatch(t, tr, "r2", []core.NodeID{5, 6, 7, 8}, nil)
	if got := cp.Metrics().Gauge("relay_count").Value(); got != 2 {
		t.Fatalf("relay_count = %d, want 2", got)
	}

	// r1 dies; its workers fail over to r2, whose next batch carries all
	// eight. r1's last batch ages past RelayTimeout, the workers' stamps
	// stay fresh.
	vclk.Advance(600 * time.Millisecond)
	relayBatch(t, tr, "r2", []core.NodeID{1, 2, 3, 4, 5, 6, 7, 8}, nil)
	vclk.Advance(600 * time.Millisecond)
	cp.HealthSweep()

	if got := cp.WorkerCount(); got != 8 {
		t.Fatalf("silent relay caused failures: WorkerCount = %d, want 8", got)
	}
	if got := cp.Metrics().Counter("relay_failures_detected").Value(); got != 1 {
		t.Errorf("relay_failures_detected = %d, want 1", got)
	}
	if got := cp.Metrics().Gauge("relay_count").Value(); got != 1 {
		t.Errorf("relay_count after silence = %d, want 1", got)
	}

	// r1 revives and re-batches: re-admitted, no second failure counted.
	relayBatch(t, tr, "r1", []core.NodeID{1, 2, 3, 4}, nil)
	if got := cp.Metrics().Gauge("relay_count").Value(); got != 2 {
		t.Errorf("relay_count after revival = %d, want 2", got)
	}
	if got := cp.Metrics().Counter("relay_failures_detected").Value(); got != 1 {
		t.Errorf("relay revival recounted as failure: %d, want 1", got)
	}
}

// TestSilentRelayMassTimeoutStillDetected is the other half of the
// silent-relay contract: members that did NOT fail over (their stamps
// went stale with the relay) are failed by the triggered full scan — a
// dead rack behind a dead relay is still detected at timeout.
func TestSilentRelayMassTimeoutStillDetected(t *testing.T) {
	cp, tr, vclk := newRelayVClockHarness(t, nil)
	relayRegister(t, tr, "r1", 1, 2)
	relayRegister(t, tr, "r2", 3, 4)
	relayBatch(t, tr, "r1", []core.NodeID{1, 2}, nil)
	relayBatch(t, tr, "r2", []core.NodeID{3, 4}, nil)

	// r1 and its whole rack die at once; r2 keeps batching its own.
	vclk.Advance(600 * time.Millisecond)
	relayBatch(t, tr, "r2", []core.NodeID{3, 4}, nil)
	vclk.Advance(600 * time.Millisecond)
	relayBatch(t, tr, "r2", []core.NodeID{3, 4}, nil)
	cp.HealthSweep()

	if got := cp.WorkerCount(); got != 2 {
		t.Fatalf("WorkerCount = %d, want 2 (r1's rack failed, r2's alive)", got)
	}
}

// TestTwoRelaysLatestStampWins pins the double-reporting edge: a worker
// that appears in two relays' batches (mid-failover overlap) keeps the
// latest CP-side stamp, is counted once in fleet_size, and survives a
// sweep that would have failed it under the older stamp.
func TestTwoRelaysLatestStampWins(t *testing.T) {
	cp, tr, vclk := newRelayVClockHarness(t, nil)
	relayRegister(t, tr, "r1", 1)
	relayRegister(t, tr, "r2", 1) // same worker announced via both relays
	if got := cp.Metrics().Gauge("fleet_size").Value(); got != 1 {
		t.Fatalf("fleet_size after double registration = %d, want 1", got)
	}

	relayBatch(t, tr, "r1", []core.NodeID{1}, nil)
	// 800 ms later the worker's beats flow through r2 (r1 still batches,
	// but empty — it no longer carries this worker).
	vclk.Advance(800 * time.Millisecond)
	relayBatch(t, tr, "r2", []core.NodeID{1}, nil)
	relayBatch(t, tr, "r1", nil, nil)
	// 400 ms later the r1 stamp would be 1.2 s old (past timeout); the
	// r2 stamp is 400 ms old. Latest wins: still healthy.
	vclk.Advance(400 * time.Millisecond)
	cp.HealthSweep()

	if got := cp.WorkerCount(); got != 1 {
		t.Fatalf("worker failed despite fresh stamp via second relay; WorkerCount = %d, want 1", got)
	}
	if got := cp.Metrics().Gauge("fleet_size").Value(); got != 1 {
		t.Errorf("fleet_size = %d, want 1 (no double count)", got)
	}
}

// TestMissingSuspectFailsOnFastPath pins the fast sweep's detection
// path: with relays current and full scans effectively disabled, a
// relay-reported missing worker is failed by a fast O(relays+suspects)
// pass once its own stamp ages past HeartbeatTimeout — and not a sweep
// earlier, however often the relay repeats the hint.
func TestMissingSuspectFailsOnFastPath(t *testing.T) {
	cp, tr, vclk := newRelayVClockHarness(t, func(cfg *Config) {
		cfg.FullScanEvery = 1 << 20 // fast passes only (seq 1 scans free)
	})
	relayRegister(t, tr, "r1", 1, 2)
	relayBatch(t, tr, "r1", []core.NodeID{1, 2}, nil)

	// Worker 1 goes quiet; the relay notices and reports it missing
	// while still vouching for worker 2.
	vclk.Advance(500 * time.Millisecond)
	relayBatch(t, tr, "r1", []core.NodeID{2}, []core.NodeID{1})
	cp.HealthSweep() // age 500 ms < timeout: suspected, requeued, alive
	if got := cp.WorkerCount(); got != 2 {
		t.Fatalf("suspect failed before its stamp timed out; WorkerCount = %d, want 2", got)
	}

	vclk.Advance(600 * time.Millisecond)
	relayBatch(t, tr, "r1", []core.NodeID{2}, []core.NodeID{1})
	cp.HealthSweep() // age 1.1 s > timeout: failed on the fast path
	if got := cp.WorkerCount(); got != 1 {
		t.Fatalf("fast path missed the timed-out suspect; WorkerCount = %d, want 1", got)
	}
}

// TestDeadWorkerGC pins the tombstone lifecycle: a crash-failed worker's
// record lingers for DeadWorkerGC (a late heartbeat inside the window
// revives it), then the entry and its persisted record are collected,
// after which even a heartbeat under the old ID is ignored — the node
// must re-register.
func TestDeadWorkerGC(t *testing.T) {
	const gc = 3 * time.Second
	cp, tr, vclk := newRelayVClockHarness(t, func(cfg *Config) {
		cfg.DeadWorkerGC = gc
	})
	registerWorkerAt(t, tr, "cp-relay", 1, "10.2.0.1")
	hb := func() {
		b := proto.WorkerHeartbeat{Node: 1}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := tr.Call(ctx, "cp-relay", proto.MethodWorkerHeartbeat, b.Marshal()); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
	}
	hb()

	// Fail by timeout; the record lingers.
	vclk.Advance(1100 * time.Millisecond)
	cp.HealthSweep()
	if got := cp.WorkerCount(); got != 0 {
		t.Fatalf("WorkerCount = %d, want 0 after timeout", got)
	}
	if got := len(cp.cfg.DB.HGetAll(hashWorkers)); got != 1 {
		t.Fatalf("persisted record collected too early (records = %d)", got)
	}

	// A late heartbeat inside the GC window revives the worker.
	vclk.Advance(time.Second)
	hb()
	cp.HealthSweep()
	if got := cp.WorkerCount(); got != 1 {
		t.Fatalf("late heartbeat did not revive worker; WorkerCount = %d", got)
	}

	// Fail again and let the failure age past DeadWorkerGC: entry and
	// record are both collected.
	vclk.Advance(1100 * time.Millisecond)
	cp.HealthSweep()
	vclk.Advance(gc + 100*time.Millisecond)
	cp.HealthSweep()
	if got := cp.Metrics().Counter("dead_worker_gc").Value(); got != 1 {
		t.Fatalf("dead_worker_gc = %d, want 1", got)
	}
	if got := len(cp.cfg.DB.HGetAll(hashWorkers)); got != 0 {
		t.Errorf("persisted record survived GC (records = %d)", got)
	}
	if got := cp.Metrics().Gauge("fleet_size").Value(); got != 0 {
		t.Errorf("fleet_size = %d, want 0 after GC", got)
	}

	// Post-GC heartbeats under the collected ID are ignored.
	hb()
	if got := cp.WorkerCount(); got != 0 {
		t.Errorf("heartbeat resurrected a collected worker; WorkerCount = %d, want 0", got)
	}
}
