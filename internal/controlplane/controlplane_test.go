package controlplane

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// fakeWorker acks creations, tracks kills, and reports a sandbox list.
type fakeWorker struct {
	mu      sync.Mutex
	created []proto.CreateSandboxRequest
	killed  []core.SandboxID
	list    []proto.SandboxInfo
	// singleRPCs / batchRPCs count create instructions by arrival shape,
	// for the batching-ablation parity assertions; the kill counters do
	// the same for the teardown path.
	singleRPCs, batchRPCs         int
	singleKillRPCs, batchKillRPCs int
	// autoReady makes the worker report SandboxReady for each creation.
	autoReady bool
	node      core.NodeID
	addr      string
	tr        *transport.InProc
	cpAddr    string
}

func startFakeWorker(t *testing.T, tr *transport.InProc, cpAddr string, node core.NodeID, addr string, autoReady bool) *fakeWorker {
	t.Helper()
	w := &fakeWorker{node: node, addr: addr, tr: tr, cpAddr: cpAddr, autoReady: autoReady}
	ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
		switch method {
		case proto.MethodCreateSandbox:
			req, err := proto.UnmarshalCreateSandboxRequest(payload)
			if err != nil {
				return nil, err
			}
			w.mu.Lock()
			w.singleRPCs++
			w.mu.Unlock()
			w.accept(*req)
			return nil, nil
		case proto.MethodCreateSandboxBatch:
			batch, err := proto.UnmarshalCreateSandboxBatch(payload)
			if err != nil {
				return nil, err
			}
			w.mu.Lock()
			w.batchRPCs++
			w.mu.Unlock()
			for _, req := range batch.Creates {
				w.accept(req)
			}
			return nil, nil
		case proto.MethodKillSandbox:
			var id uint64
			for i := 0; i < 8 && i < len(payload); i++ {
				id |= uint64(payload[i]) << (8 * i)
			}
			w.mu.Lock()
			w.killed = append(w.killed, core.SandboxID(id))
			w.singleKillRPCs++
			w.mu.Unlock()
			return nil, nil
		case proto.MethodKillSandboxBatch:
			batch, err := proto.UnmarshalKillSandboxBatch(payload)
			if err != nil {
				return nil, err
			}
			w.mu.Lock()
			w.killed = append(w.killed, batch.IDs...)
			w.batchKillRPCs++
			w.mu.Unlock()
			return nil, nil
		case proto.MethodListSandboxes:
			w.mu.Lock()
			list := proto.SandboxList{Sandboxes: append([]proto.SandboxInfo(nil), w.list...)}
			w.mu.Unlock()
			return list.Marshal(), nil
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return w
}

// accept records one create instruction (singleton or batch member) and
// reports readiness when the fake is in auto-ready mode.
func (w *fakeWorker) accept(req proto.CreateSandboxRequest) {
	w.mu.Lock()
	w.created = append(w.created, req)
	auto := w.autoReady
	w.mu.Unlock()
	if auto {
		go w.reportReady(req.SandboxID, req.Function.Name)
	}
}

// heartbeat starts a background heartbeat loop so the CP health monitor
// keeps the fake worker alive; tests exercising heartbeat-timeout
// detection simply don't call it.
func (w *fakeWorker) heartbeat(t *testing.T, every time.Duration) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		hb := proto.WorkerHeartbeat{Node: w.node}
		for {
			select {
			case <-stop:
				return
			case <-time.After(every):
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				w.tr.Call(ctx, w.cpAddr, proto.MethodWorkerHeartbeat, hb.Marshal())
				cancel()
			}
		}
	}()
}

func (w *fakeWorker) reportReady(id core.SandboxID, fn string) {
	ev := proto.SandboxEvent{SandboxID: id, Function: fn, Node: w.node, Addr: w.addr}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.tr.Call(ctx, w.cpAddr, proto.MethodSandboxReady, ev.Marshal())
	w.mu.Lock()
	w.list = append(w.list, proto.SandboxInfo{ID: id, Function: fn, Node: w.node, Addr: w.addr, State: core.SandboxReady})
	w.mu.Unlock()
}

// fakeDP records endpoint updates and function pushes, discarding stale
// (reordered) updates by version like the real data plane.
type fakeDP struct {
	mu        sync.Mutex
	functions map[string]bool
	endpoints map[string][]proto.SandboxInfo
	versions  map[string]uint64
}

func startFakeDP(t *testing.T, tr *transport.InProc, addr string) *fakeDP {
	t.Helper()
	dp := &fakeDP{
		functions: map[string]bool{},
		endpoints: map[string][]proto.SandboxInfo{},
		versions:  map[string]uint64{},
	}
	ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
		dp.mu.Lock()
		defer dp.mu.Unlock()
		switch method {
		case proto.MethodAddFunction:
			list, err := proto.UnmarshalFunctionList(payload)
			if err != nil {
				return nil, err
			}
			dp.functions = map[string]bool{}
			for _, f := range list.Functions {
				dp.functions[f.Name] = true
			}
		case proto.MethodUpdateEndpoints:
			up, err := proto.UnmarshalEndpointUpdate(payload)
			if err != nil {
				return nil, err
			}
			dp.applyLocked(up)
		case proto.MethodUpdateEndpointsBatch:
			batch, err := proto.UnmarshalEndpointUpdateBatch(payload)
			if err != nil {
				return nil, err
			}
			for i := range batch.Updates {
				dp.applyLocked(&batch.Updates[i])
			}
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return dp
}

// applyLocked applies one endpoint update, discarding stale reordered
// broadcasts by version like the real data plane. Callers hold dp.mu.
func (dp *fakeDP) applyLocked(up *proto.EndpointUpdate) {
	if up.Version != 0 && up.Version <= dp.versions[up.Function] {
		return
	}
	dp.versions[up.Function] = up.Version
	dp.endpoints[up.Function] = up.Endpoints
}

type cpHarness struct {
	tr *transport.InProc
	cp *ControlPlane
	db *store.Store
}

func newCPHarness(t *testing.T) *cpHarness {
	t.Helper()
	tr := transport.NewInProc()
	db := store.NewMemory()
	cp := New(Config{
		Addr:              "cp0",
		Transport:         tr,
		DB:                db,
		AutoscaleInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		// The harness's fake data planes don't heartbeat; DP lifecycle
		// tests (dataplanes_test.go) drive the sweep explicitly instead.
		DataPlaneTimeout:  time.Hour,
		NoDownscaleWindow: 50 * time.Millisecond,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)
	return &cpHarness{tr: tr, cp: cp, db: db}
}

func (h *cpHarness) call(t *testing.T, method string, payload []byte) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := h.tr.Call(ctx, "cp0", method, payload)
	if err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	return resp
}

func registerWorker(t *testing.T, h *cpHarness, id core.NodeID, name, ip string) {
	t.Helper()
	req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{
		ID: id, Name: name, IP: ip, Port: 9000, CPUMilli: 10000, MemoryMB: 65536,
	}}
	h.call(t, proto.MethodRegisterWorker, req.Marshal())
}

func fnSpec(name string) core.Function {
	fn := core.Function{Name: name, Image: "img", Port: 80, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.StableWindow = 500 * time.Millisecond
	fn.Scaling.PanicWindow = 50 * time.Millisecond
	fn.Scaling.ScaleToZeroGrace = 100 * time.Millisecond
	return fn
}

func TestSingleNodeIsLeaderImmediately(t *testing.T) {
	h := newCPHarness(t)
	if !h.cp.IsLeader() {
		t.Fatalf("single-node control plane should lead immediately")
	}
}

func TestRegisterFunctionPersists(t *testing.T) {
	h := newCPHarness(t)
	fn := fnSpec("f")
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	if h.db.HLen("functions") != 1 {
		t.Errorf("function not persisted")
	}
	// Registration is idempotent.
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	if h.db.HLen("functions") != 1 {
		t.Errorf("re-registration duplicated state")
	}
	// Invalid function rejected.
	bad := core.Function{Name: "", Image: "i", Port: 1}
	ctx := context.Background()
	if _, err := h.tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&bad)); err == nil {
		t.Errorf("invalid registration accepted")
	}
}

func TestScalingMetricsDriveCreation(t *testing.T) {
	h := newCPHarness(t)
	registerWorker(t, h, 1, "w1", "10.0.0.1")
	startFakeWorker(t, h.tr, "cp0", 1, "10.0.0.1:9000", true).heartbeat(t, 30*time.Millisecond)
	dp := startFakeDP(t, h.tr, "dp0:8000")
	reg := proto.RegisterDataPlaneRequest{DataPlane: core.DataPlane{ID: 1, IP: "dp0", Port: 8000}}
	h.call(t, proto.MethodRegisterDataPlane, reg.Marshal())

	fn := fnSpec("f")
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))

	// DP reports queue depth 3: the autoscaler should create sandboxes.
	report := proto.ScalingMetricReport{DataPlane: 1, Metrics: []core.ScalingMetric{
		{Function: "f", InFlight: 0, QueueDepth: 3, At: time.Now()},
	}}
	h.call(t, proto.MethodScalingMetric, report.Marshal())

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ready, _ := h.cp.FunctionScale("f"); ready >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	ready, _ := h.cp.FunctionScale("f")
	if ready < 3 {
		t.Fatalf("ready = %d, want >= 3", ready)
	}
	// The DP must have received endpoint updates for the new sandboxes.
	// Generous deadline: the race detector slows broadcasts considerably.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		dp.mu.Lock()
		n := len(dp.endpoints["f"])
		dp.mu.Unlock()
		if n >= 3 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("data plane endpoint cache not updated")
}

func TestScaleDownKillsSurplus(t *testing.T) {
	h := newCPHarness(t)
	registerWorker(t, h, 1, "w1", "10.0.0.1")
	w := startFakeWorker(t, h.tr, "cp0", 1, "10.0.0.1:9000", true)
	w.heartbeat(t, 30*time.Millisecond)
	fn := fnSpec("f")
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	report := proto.ScalingMetricReport{DataPlane: 1, Metrics: []core.ScalingMetric{
		{Function: "f", QueueDepth: 2, At: time.Now()},
	}}
	h.call(t, proto.MethodScalingMetric, report.Marshal())
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ready, _ := h.cp.FunctionScale("f"); ready >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Traffic stops; after the grace period the sandboxes are torn down.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w.mu.Lock()
		kills := len(w.killed)
		w.mu.Unlock()
		if kills >= 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("surplus sandboxes never torn down")
}

func TestWorkerHeartbeatTimeoutDrainsEndpoints(t *testing.T) {
	h := newCPHarness(t)
	registerWorker(t, h, 1, "w1", "10.0.0.1")
	startFakeWorker(t, h.tr, "cp0", 1, "10.0.0.1:9000", true)
	fn := fnSpec("f")
	fn.Scaling.MinScale = 1
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ready, _ := h.cp.FunctionScale("f"); ready >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// No heartbeats ever arrive: the health monitor must fail the worker
	// and drop its sandboxes.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.cp.WorkerCount() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.cp.WorkerCount() != 0 {
		t.Fatalf("worker never failed despite missing heartbeats")
	}
}

func TestHeartbeatKeepsWorkerAlive(t *testing.T) {
	h := newCPHarness(t)
	registerWorker(t, h, 1, "w1", "10.0.0.1")
	startFakeWorker(t, h.tr, "cp0", 1, "10.0.0.1:9000", true)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		hb := proto.WorkerHeartbeat{Node: 1}
		for {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				h.tr.Call(ctx, "cp0", proto.MethodWorkerHeartbeat, hb.Marshal())
				cancel()
			}
		}
	}()
	time.Sleep(500 * time.Millisecond)
	if h.cp.WorkerCount() != 1 {
		t.Fatalf("heartbeating worker marked failed")
	}
}

func TestRecoveryMergesWorkerSandboxes(t *testing.T) {
	tr := transport.NewInProc()
	db := store.NewMemory()

	// Pre-populate persistent state as a previous leader would have.
	fn := fnSpec("f")
	db.HSet("functions", "f", core.MarshalFunction(&fn))
	wn := core.WorkerNode{ID: 1, Name: "w1", IP: "10.0.0.1", Port: 9000, CPUMilli: 10000, MemoryMB: 65536}
	db.HSet("workers", "w1", core.MarshalWorkerNode(&wn))

	// The worker still runs a sandbox from before the failure.
	w := startFakeWorker(t, tr, "cp0", 1, "10.0.0.1:9000", false)
	w.list = []proto.SandboxInfo{{ID: 77, Function: "f", Node: 1, Addr: "10.0.0.1:9000", State: core.SandboxReady}}

	cp := New(Config{
		Addr:              "cp0",
		Transport:         tr,
		DB:                db,
		AutoscaleInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		NoDownscaleWindow: time.Minute,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ready, _ := cp.FunctionScale("f"); ready == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("recovered leader never merged the worker's sandbox list")
}

func TestFollowerRejectsAPICalls(t *testing.T) {
	tr := transport.NewInProc()
	db := store.NewMemory()
	// Two-node "HA" cluster where the peer is unreachable: this node can
	// never win an election, so it must reject API calls as non-leader.
	cp := New(Config{
		Addr:      "cp0",
		Peers:     []string{"cp0", "cp-unreachable"},
		Transport: tr,
		DB:        db,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()
	time.Sleep(100 * time.Millisecond)
	fn := fnSpec("f")
	ctx := context.Background()
	_, err := tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	if err == nil {
		t.Fatalf("non-leader accepted a registration")
	}
	var re *transport.RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, cpclient.ErrNotLeaderText) {
		t.Errorf("rejection should carry the not-leader marker: %v", err)
	}
}

func TestClusterStatus(t *testing.T) {
	h := newCPHarness(t)
	fn := fnSpec("statusfn")
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	out := string(h.call(t, proto.MethodClusterStatus, nil))
	if !strings.Contains(out, "statusfn") || !strings.Contains(out, "functions=1") {
		t.Errorf("status output missing fields:\n%s", out)
	}
}

func TestDeregisterFunctionTearsDown(t *testing.T) {
	h := newCPHarness(t)
	registerWorker(t, h, 1, "w1", "10.0.0.1")
	w := startFakeWorker(t, h.tr, "cp0", 1, "10.0.0.1:9000", true)
	w.heartbeat(t, 30*time.Millisecond)
	fn := fnSpec("f")
	fn.Scaling.MinScale = 1
	h.call(t, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ready, _ := h.cp.FunctionScale("f"); ready >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.call(t, proto.MethodDeregisterFunction, core.MarshalFunction(&fn))
	if h.db.HLen("functions") != 0 {
		t.Errorf("function still persisted after deregistration")
	}
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		w.mu.Lock()
		kills := len(w.killed)
		w.mu.Unlock()
		if kills >= 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sandboxes not torn down on deregistration")
}

// TestEpochMonotonicAcrossLeaders is the regression test for endpoint
// version ordering: every leadership change must mint a strictly larger
// epoch (persisted in the replicated store), so a new leader's endpoint
// broadcasts outrank the old leader's even though its per-function
// sequence numbers restart at zero.
func TestEpochMonotonicAcrossLeaders(t *testing.T) {
	tr := transport.NewInProc()
	db := store.NewMemory()
	dp := startFakeDP(t, tr, "dp0:8000")
	_ = dp

	var lastVersion uint64
	for generation := 0; generation < 3; generation++ {
		cp := New(Config{
			Addr:              "cp0",
			Transport:         tr,
			DB:                db,
			AutoscaleInterval: time.Hour,
			HeartbeatTimeout:  time.Hour,
		})
		if err := cp.Start(); err != nil {
			t.Fatal(err)
		}
		reg := proto.RegisterDataPlaneRequest{DataPlane: core.DataPlane{ID: 1, IP: "dp0", Port: 8000}}
		ctx := context.Background()
		if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterDataPlane, reg.Marshal()); err != nil {
			t.Fatal(err)
		}
		fn := fnSpec("f")
		if _, err := tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			t.Fatal(err)
		}
		update := cp.endpointUpdate("f")
		if update.Version <= lastVersion {
			t.Fatalf("generation %d: version %x not greater than previous leader's %x",
				generation, update.Version, lastVersion)
		}
		lastVersion = update.Version
		cp.Stop()
	}
}

func TestPersistSandboxAblationWrites(t *testing.T) {
	tr := transport.NewInProc()
	db := store.NewMemory()
	cp := New(Config{
		Addr:                "cp0",
		Transport:           tr,
		DB:                  db,
		AutoscaleInterval:   10 * time.Millisecond,
		HeartbeatTimeout:    time.Second,
		PersistSandboxState: true,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()
	req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{ID: 1, Name: "w1", IP: "10.0.0.1", Port: 9000, CPUMilli: 10000, MemoryMB: 65536}}
	ctx := context.Background()
	tr.Call(ctx, "cp0", proto.MethodRegisterWorker, req.Marshal())
	startFakeWorker(t, tr, "cp0", 1, "10.0.0.1:9000", true)
	fn := fnSpec("f")
	fn.Scaling.MinScale = 1
	tr.Call(ctx, "cp0", proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if db.HLen("sandboxes") >= 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("ablation mode never persisted sandbox state")
}
