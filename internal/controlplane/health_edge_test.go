package controlplane

import (
	"context"
	"testing"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// newVClockHarness builds a control plane on a virtual clock with both
// background loops effectively parked (the autoscale ticker is hours
// long and health sweeps are driven explicitly), so the heartbeat-
// timeout edge cases below are exercised deterministically.
func newVClockHarness(t *testing.T, timeout time.Duration) (*ControlPlane, *transport.InProc, *clock.Virtual) {
	t.Helper()
	vclk := clock.NewVirtual(time.Unix(1_000_000, 0))
	tr := transport.NewInProc()
	cp := New(Config{
		Addr:              "cp-health",
		Transport:         tr,
		DB:                store.NewMemory(),
		Clock:             vclk,
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  timeout,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)
	return cp, tr, vclk
}

func heartbeat(t *testing.T, tr *transport.InProc, node core.NodeID) {
	t.Helper()
	hb := proto.WorkerHeartbeat{Node: node}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, "cp-health", proto.MethodWorkerHeartbeat, hb.Marshal()); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
}

// TestHealthSweepExactTimeoutBoundary pins the failure predicate's
// boundary: a worker whose last heartbeat is exactly HeartbeatTimeout
// old is still healthy (the comparison is strictly greater), and one
// nanosecond past the timeout it is failed.
func TestHealthSweepExactTimeoutBoundary(t *testing.T) {
	const timeout = time.Second
	cp, tr, vclk := newVClockHarness(t, timeout)
	registerWorkerAt(t, tr, "cp-health", 1, "10.0.0.1")
	startFakeWorker(t, tr, "cp-health", 1, "10.0.0.1:9000", true)

	// Exactly at the timeout: not failed.
	vclk.Advance(timeout)
	cp.HealthSweep()
	if got := cp.WorkerCount(); got != 1 {
		t.Fatalf("worker failed exactly at HeartbeatTimeout; WorkerCount = %d, want 1", got)
	}
	// One nanosecond past: failed.
	vclk.Advance(time.Nanosecond)
	cp.HealthSweep()
	if got := cp.WorkerCount(); got != 0 {
		t.Fatalf("worker not failed past HeartbeatTimeout; WorkerCount = %d, want 0", got)
	}
	if n := cp.Metrics().Histogram("health_sweep_ms").Count(); n < 2 {
		t.Errorf("health_sweep_ms observed %d sweeps, want >= 2", n)
	}
}

// TestHeartbeatDuringFailureDrain pins the revival semantics: a
// heartbeat that lands while (or after) the failure drain runs makes
// the worker schedulable again, but the drained endpoints stay gone
// until the autoscaler re-creates them — the drain is never half
// undone.
func TestHeartbeatDuringFailureDrain(t *testing.T) {
	const timeout = time.Second
	cp, tr, vclk := newVClockHarness(t, timeout)
	registerWorkerAt(t, tr, "cp-health", 1, "10.0.0.1")
	startFakeWorker(t, tr, "cp-health", 1, "10.0.0.1:9000", true)

	fn := fnSpec("drainfn")
	fn.Scaling.MinScale = 2
	ctx := context.Background()
	if _, err := tr.Call(ctx, "cp-health", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	cp.Reconcile()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ready, _ := cp.FunctionScale("drainfn"); ready >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sandboxes never came up")
		}
		time.Sleep(time.Millisecond)
	}

	// The worker goes silent; a heartbeat races the failure drain.
	vclk.Advance(timeout + time.Millisecond)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		heartbeat(t, tr, 1)
	}()
	cp.HealthSweep()
	<-hbDone

	// Whatever the interleaving, the state must be coherent: either the
	// heartbeat beat the sweep (worker never failed, endpoints intact)
	// or the drain won (endpoints gone) and the heartbeat revived the
	// worker afterwards. A post-race heartbeat always leaves the worker
	// schedulable.
	heartbeat(t, tr, 1)
	if got := cp.WorkerCount(); got != 1 {
		t.Fatalf("heartbeat after drain did not revive the worker; WorkerCount = %d, want 1", got)
	}
	// The revived worker accepts new placements.
	cp.Reconcile()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if ready, _ := cp.FunctionScale("drainfn"); ready >= 2 {
			return
		}
		if time.Now().After(deadline) {
			ready, creating := cp.FunctionScale("drainfn")
			t.Fatalf("revived worker never repopulated: ready=%d creating=%d", ready, creating)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFailedWorkerReRegistration pins that re-registering a failed
// worker ID replaces the dead entry in place: the worker becomes
// schedulable at its (possibly new) address and the fleet_size gauge
// does not double-count the node.
func TestFailedWorkerReRegistration(t *testing.T) {
	const timeout = time.Second
	cp, tr, vclk := newVClockHarness(t, timeout)
	registerWorkerAt(t, tr, "cp-health", 1, "10.0.0.1")
	startFakeWorker(t, tr, "cp-health", 1, "10.0.0.1:9000", true)

	vclk.Advance(timeout + time.Millisecond)
	cp.HealthSweep()
	if got := cp.WorkerCount(); got != 0 {
		t.Fatalf("worker not failed; WorkerCount = %d", got)
	}

	// The node comes back under the same ID at a new address.
	startFakeWorker(t, tr, "cp-health", 1, "10.0.0.9:9000", true)
	registerWorkerAt(t, tr, "cp-health", 1, "10.0.0.9")
	if got := cp.WorkerCount(); got != 1 {
		t.Fatalf("re-registered worker not healthy; WorkerCount = %d", got)
	}
	if got := cp.Metrics().Gauge("fleet_size").Value(); got != 1 {
		t.Fatalf("fleet_size = %d after re-registration, want 1", got)
	}

	// New placements land at the new address.
	fn := fnSpec("rebornfn")
	fn.Scaling.MinScale = 1
	ctx := context.Background()
	if _, err := tr.Call(ctx, "cp-health", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	cp.Reconcile()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ready, _ := cp.FunctionScale("rebornfn"); ready >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-registered worker never received a placement")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClockSkewedHeartbeats pins that liveness is judged entirely by
// the control plane's own clock — heartbeats are stamped on arrival, so
// a worker with a skewed clock (or bursty, irregular heartbeat arrival)
// stays healthy as long as the gaps stay under the timeout, across many
// timeout windows.
func TestClockSkewedHeartbeats(t *testing.T) {
	const timeout = time.Second
	cp, tr, vclk := newVClockHarness(t, timeout)
	registerWorkerAt(t, tr, "cp-health", 1, "10.0.0.1")
	startFakeWorker(t, tr, "cp-health", 1, "10.0.0.1:9000", true)

	// Irregular arrivals hugging the timeout from below: 10 windows,
	// each gap just under the threshold.
	for i := 0; i < 10; i++ {
		vclk.Advance(timeout - time.Millisecond)
		cp.HealthSweep()
		if got := cp.WorkerCount(); got != 1 {
			t.Fatalf("window %d: worker failed despite in-window heartbeats; WorkerCount = %d", i, got)
		}
		heartbeat(t, tr, 1)
	}
	// Then one gap over the threshold: failed, regardless of how many
	// heartbeats came before.
	vclk.Advance(timeout + time.Millisecond)
	cp.HealthSweep()
	if got := cp.WorkerCount(); got != 0 {
		t.Fatalf("worker survived an over-timeout gap; WorkerCount = %d, want 0", got)
	}
}

// registerWorkerAt registers a worker node over the RPC path against an
// arbitrary CP address (the vclock harness doesn't use cpHarness).
func registerWorkerAt(t *testing.T, tr *transport.InProc, cpAddr string, id core.NodeID, ip string) {
	t.Helper()
	req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{
		ID: id, Name: "hw" + ip, IP: ip, Port: 9000, CPUMilli: 100000, MemoryMB: 1 << 20,
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, cpAddr, proto.MethodRegisterWorker, req.Marshal()); err != nil {
		t.Fatalf("register worker: %v", err)
	}
}
