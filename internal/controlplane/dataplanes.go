package controlplane

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
)

// Data plane replicas are first-class, dynamic members of the cluster,
// with the same lifecycle worker nodes have: they register, heartbeat,
// are failed by the health monitor when heartbeats stop, and are revived
// (with a full cache re-warm) when heartbeats resume. The live set feeds
// two consumers: the endpoint/function broadcast fan-out — pruning a dead
// replica keeps every autoscale sweep from burning an RPC timeout on it —
// and the front-end load balancer, which polls MethodListDataPlanes to
// keep its failover membership in sync (paper §5.1 runs the DP tier
// active-active behind HAProxy; §3.4.2 restarts failed replicas).

// dataPlaneState is one data plane's registry entry. dp and addr are
// immutable after registration; the mutable liveness fields are guarded
// by mu, mirroring workerState. The set is small (a handful of replicas),
// so the registry itself stays behind the single dpMu RWMutex.
type dataPlaneState struct {
	dp   core.DataPlane
	addr string
	// durable/asyncHashes describe the replica's durable async queue
	// (advertised at registration, immutable per incarnation): the
	// hashes the lease manager reassigns to survivors if this replica is
	// pruned.
	durable     bool
	asyncHashes []string

	mu      sync.Mutex
	lastHB  time.Time
	healthy bool
	// epoch is the async queue epoch last assigned to this replica
	// (minted at registration and at every revival); heartbeat acks
	// repeat it so the replica converges even if the assigning reply was
	// lost.
	epoch uint64
}

// putDataPlane inserts or replaces a registry entry for a (re-)registered
// replica.
func (cp *ControlPlane) putDataPlane(p core.DataPlane, durable bool, asyncHashes []string) {
	st := &dataPlaneState{
		dp:          p,
		addr:        dataPlaneAddr(&p),
		durable:     durable,
		asyncHashes: asyncHashes,
		lastHB:      cp.clk.Now(),
		healthy:     true,
	}
	cp.dpMu.Lock()
	cp.dataplanes[p.ID] = st
	cp.dpMu.Unlock()
	cp.refreshDataPlaneGauge()
}

// getDataPlane returns the registry entry for a replica, or nil.
func (cp *ControlPlane) getDataPlane(id core.DataPlaneID) *dataPlaneState {
	cp.dpMu.RLock()
	st := cp.dataplanes[id]
	cp.dpMu.RUnlock()
	return st
}

// snapshotDataPlanes copies the registry's entries under the read lock.
// Callers inspect per-replica liveness through each entry's own mutex
// without holding dpMu — the one place the registry's locking discipline
// is spelled out.
func (cp *ControlPlane) snapshotDataPlanes() []*dataPlaneState {
	cp.dpMu.RLock()
	states := make([]*dataPlaneState, 0, len(cp.dataplanes))
	for _, st := range cp.dataplanes {
		states = append(states, st)
	}
	cp.dpMu.RUnlock()
	return states
}

// handleDataPlaneHeartbeat refreshes one replica's liveness. A heartbeat
// from a replica the health monitor had failed revives it with a full
// cache re-warm (functions, then every function's endpoints), because the
// replica's caches may have missed any number of broadcasts while it was
// out of the fan-out set. A heartbeat from an unknown replica re-admits
// it the same way — the in-memory entry can be lost to a leadership
// change racing the heartbeat.
func (cp *ControlPlane) handleDataPlaneHeartbeat(payload []byte) ([]byte, error) {
	hb, err := proto.UnmarshalDataPlaneHeartbeat(payload)
	if err != nil {
		return nil, err
	}
	st := cp.getDataPlane(hb.DataPlane.ID)
	if st == nil {
		durable, hashes := unmarshalAsyncInfo(cp.cfg.DB.HGetAll(hashDPAsync)[fmt.Sprintf("%d", hb.DataPlane.ID)])
		cp.putDataPlane(hb.DataPlane, durable, hashes)
		cp.metrics.Counter("dataplane_revivals").Inc()
		// Revoke-before-rewarm: any lease on this replica's records must
		// be out-fenced before the replica resumes settling them.
		epoch := cp.reviveAsyncOwner(hb.DataPlane.ID)
		cp.warmDataPlane(dataPlaneAddr(&hb.DataPlane))
		ack := proto.DataPlaneEpochAck{Epoch: epoch}
		return ack.Marshal(), nil
	}
	st.mu.Lock()
	st.lastHB = cp.clk.Now()
	revived := !st.healthy
	st.healthy = true
	addr := st.addr
	epoch := st.epoch
	st.mu.Unlock()
	if revived {
		cp.metrics.Counter("dataplane_revivals").Inc()
		cp.refreshDataPlaneGauge()
		epoch = cp.reviveAsyncOwner(st.dp.ID)
		cp.warmDataPlane(addr)
	}
	ack := proto.DataPlaneEpochAck{Epoch: epoch}
	return ack.Marshal(), nil
}

// warmDataPlane pushes the full function list and every function's
// endpoint set to one replica — the cache-warm diff a replica needs when
// it (re-)joins the fan-out set.
func (cp *ControlPlane) warmDataPlane(addr string) {
	cp.sendFunctionsTo(addr)
	cp.sendEndpointsBatchTo(addr, cp.functionNames())
}

// handleListDataPlanes returns the live replica set, sorted by ID for
// deterministic membership diffs on the front end.
func (cp *ControlPlane) handleListDataPlanes() ([]byte, error) {
	list := proto.DataPlaneList{}
	for _, st := range cp.snapshotDataPlanes() {
		st.mu.Lock()
		if st.healthy {
			list.DataPlanes = append(list.DataPlanes, st.dp)
		}
		st.mu.Unlock()
	}
	sort.Slice(list.DataPlanes, func(i, j int) bool {
		return list.DataPlanes[i].ID < list.DataPlanes[j].ID
	})
	return list.Marshal(), nil
}

// sweepDataPlanes fails every replica whose last heartbeat is older than
// DataPlaneTimeout, removing it from the broadcast fan-out set so
// subsequent sweeps never block on an unreachable replica. Run from
// HealthSweep alongside the worker scan.
func (cp *ControlPlane) sweepDataPlanes(now time.Time) {
	failed := 0
	for _, st := range cp.snapshotDataPlanes() {
		st.mu.Lock()
		if st.healthy && now.Sub(st.lastHB) > cp.cfg.DataPlaneTimeout {
			st.healthy = false
			failed++
		}
		st.mu.Unlock()
	}
	if failed > 0 {
		cp.metrics.Counter("dataplane_failures_detected").Add(int64(failed))
		cp.refreshDataPlaneGauge()
	}
	// Lease dead durable replicas' queue hashes to survivors (and
	// re-lease any lease whose lessee has itself died) — see
	// asynclease.go.
	cp.sweepAsyncLeases()
}

// dataPlaneCounts reports (healthy, total) registered replicas.
func (cp *ControlPlane) dataPlaneCounts() (healthy, total int) {
	states := cp.snapshotDataPlanes()
	for _, st := range states {
		st.mu.Lock()
		if st.healthy {
			healthy++
		}
		st.mu.Unlock()
	}
	return healthy, len(states)
}

// DataPlaneCount reports the number of live data plane replicas, used by
// tests and harnesses to observe fan-out pruning.
func (cp *ControlPlane) DataPlaneCount() int {
	healthy, _ := cp.dataPlaneCounts()
	return healthy
}

// refreshDataPlaneGauge runs on every membership or liveness change; in
// the replicated-log regime it doubles as the trigger for republishing
// the live membership list to followers (see publishDataPlanes).
func (cp *ControlPlane) refreshDataPlaneGauge() {
	healthy, _ := cp.dataPlaneCounts()
	cp.metrics.Gauge("dataplane_count").Set(int64(healthy))
	cp.publishDataPlanes()
}
