package autoscaler

import (
	"testing"
	"testing/quick"
	"time"

	"dirigent/internal/core"
)

func cfg() core.ScalingConfig {
	c := core.DefaultScalingConfig()
	c.StableWindow = 60 * time.Second
	c.PanicWindow = 6 * time.Second
	c.ScaleToZeroGrace = 30 * time.Second
	return c
}

var t0 = time.Unix(10_000, 0)

func TestDesiredZeroWhenNeverInvoked(t *testing.T) {
	a := New(cfg())
	if got := a.Desired(t0, 0); got != 0 {
		t.Errorf("Desired with no activity = %d, want 0", got)
	}
}

func TestDesiredTracksConcurrency(t *testing.T) {
	a := New(cfg())
	// Steady 5 in-flight with target concurrency 1 → 5 sandboxes.
	for i := 0; i < 30; i++ {
		a.Record(t0.Add(time.Duration(i)*time.Second), 5)
	}
	now := t0.Add(30 * time.Second)
	if got := a.Desired(now, 5); got != 5 {
		t.Errorf("Desired = %d, want 5", got)
	}
}

func TestTargetConcurrencyDivides(t *testing.T) {
	c := cfg()
	c.TargetConcurrency = 10
	a := New(c)
	for i := 0; i < 30; i++ {
		a.Record(t0.Add(time.Duration(i)*time.Second), 25)
	}
	if got := a.Desired(t0.Add(30*time.Second), 3); got != 3 {
		t.Errorf("Desired = %d, want ceil(25/10)=3", got)
	}
}

func TestPanicModeOnBurst(t *testing.T) {
	a := New(cfg())
	// Quiet history, then a sudden burst of 40 in-flight.
	for i := 0; i < 54; i++ {
		a.Record(t0.Add(time.Duration(i)*time.Second), 0)
	}
	burstAt := t0.Add(55 * time.Second)
	a.Record(burstAt, 40)
	a.Record(burstAt.Add(time.Second), 40)
	now := burstAt.Add(2 * time.Second)
	got := a.Desired(now, 1)
	if !a.InPanic() {
		t.Errorf("burst did not trigger panic mode")
	}
	// The panic-window average (burst samples diluted by the quiet
	// samples still inside the 6 s window) dominates the stable average.
	if got < 10 {
		t.Errorf("Desired during burst = %d, want >= 10", got)
	}
}

func TestPanicModeHoldsHighWaterMark(t *testing.T) {
	a := New(cfg())
	burstAt := t0
	a.Record(burstAt, 40)
	a.Record(burstAt.Add(time.Second), 40)
	high := a.Desired(burstAt.Add(time.Second), 1)
	// Burst subsides, but within the stable window panic mode must not
	// scale down.
	a.Record(burstAt.Add(2*time.Second), 2)
	later := a.Desired(burstAt.Add(3*time.Second), high)
	if later < high {
		t.Errorf("panic mode scaled down from %d to %d", high, later)
	}
}

func TestScaleToZeroAfterGrace(t *testing.T) {
	c := cfg()
	c.StableWindow = 10 * time.Second
	c.ScaleToZeroGrace = 5 * time.Second
	a := New(c)
	a.Record(t0, 1)
	// Just after activity: keep one sandbox.
	a.Record(t0.Add(time.Second), 0)
	if got := a.Desired(t0.Add(2*time.Second), 1); got != 1 {
		t.Errorf("Desired right after activity = %d, want 1", got)
	}
	// After the grace period with the window drained: zero.
	for i := 3; i < 20; i++ {
		a.Record(t0.Add(time.Duration(i)*time.Second), 0)
	}
	if got := a.Desired(t0.Add(20*time.Second), 1); got != 0 {
		t.Errorf("Desired after grace = %d, want 0", got)
	}
}

func TestMinMaxScaleClamp(t *testing.T) {
	c := cfg()
	c.MinScale = 2
	c.MaxScale = 4
	a := New(c)
	if got := a.Desired(t0, 0); got != 2 {
		t.Errorf("MinScale not enforced: %d", got)
	}
	for i := 0; i < 10; i++ {
		a.Record(t0.Add(time.Duration(i)*time.Second), 100)
	}
	if got := a.Desired(t0.Add(10*time.Second), 4); got != 4 {
		t.Errorf("MaxScale not enforced: %d", got)
	}
}

func TestMaxScaleUpRateLimitsGrowth(t *testing.T) {
	c := cfg()
	c.MaxScaleUpRate = 2 // at most double per decision
	a := New(c)
	for i := 0; i < 10; i++ {
		a.Record(t0.Add(time.Duration(i)*100*time.Millisecond), 64)
	}
	if got := a.Desired(t0.Add(time.Second), 4); got > 8 {
		t.Errorf("Desired = %d, exceeds 2x rate limit from current 4", got)
	}
}

// TestQuickDesiredBounds property-tests the autoscaler's output range:
// never negative, never above MaxScale, never below MinScale.
func TestQuickDesiredBounds(t *testing.T) {
	f := func(loads []uint16, current uint8, minScale, maxScale uint8) bool {
		c := cfg()
		c.MinScale = int(minScale % 16)
		c.MaxScale = c.MinScale + int(maxScale%16) + 1
		a := New(c)
		for i, l := range loads {
			a.Record(t0.Add(time.Duration(i)*time.Second), float64(l%2048))
		}
		got := a.Desired(t0.Add(time.Duration(len(loads))*time.Second), int(current))
		return got >= c.MinScale && got <= c.MaxScale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager()
	m.Add("f1", cfg())
	m.Add("f2", cfg())
	if len(m.Functions()) != 2 {
		t.Fatalf("Functions = %v", m.Functions())
	}
	m.Record(core.ScalingMetric{Function: "f1", InFlight: 3, QueueDepth: 2, At: t0})
	m.Record(core.ScalingMetric{Function: "ghost", InFlight: 9, At: t0}) // ignored
	decisions := m.Decide(t0.Add(time.Second), map[string]int{"f1": 0})
	if decisions["f1"] < 1 {
		t.Errorf("f1 desired = %d, want >= 1", decisions["f1"])
	}
	if decisions["f2"] != 0 {
		t.Errorf("f2 desired = %d, want 0", decisions["f2"])
	}
	m.Remove("f1")
	if m.Get("f1") != nil {
		t.Errorf("Get after Remove should be nil")
	}
	if m.Get("f2") == nil {
		t.Errorf("f2 disappeared")
	}
}

func TestWindowGC(t *testing.T) {
	c := cfg()
	c.StableWindow = 5 * time.Second
	a := New(c)
	for i := 0; i < 1000; i++ {
		a.Record(t0.Add(time.Duration(i)*time.Second), 1)
	}
	a.mu.Lock()
	n := len(a.samples)
	a.mu.Unlock()
	if n > 10 {
		t.Errorf("window kept %d samples; GC not working", n)
	}
}

func TestDefaultsApplied(t *testing.T) {
	a := New(core.ScalingConfig{})
	got := a.Config()
	if got.TargetConcurrency != 1 || got.StableWindow != 60*time.Second ||
		got.PanicThreshold != 2.0 || got.MaxScaleUpRate != 1000 {
		t.Errorf("defaults not applied: %+v", got)
	}
}

// TestPanicEntryExactThreshold pins the panic-entry comparison at the
// exact boundary: desiredPanic >= PanicThreshold × current enters panic;
// one below does not.
func TestPanicEntryExactThreshold(t *testing.T) {
	// PanicThreshold 2.0, current 2 → threshold is exactly 4.
	enter := New(cfg())
	enter.Record(t0, 4) // panic-window average exactly 4
	enter.Desired(t0, 2)
	if !enter.InPanic() {
		t.Errorf("desiredPanic == threshold must enter panic mode")
	}

	stay := New(cfg())
	stay.Record(t0, 3) // desiredPanic 3 < threshold 4
	stay.Desired(t0, 2)
	if stay.InPanic() {
		t.Errorf("desiredPanic below threshold must not enter panic mode")
	}
}

// TestPanicExitExactStableWindow pins panic exit at the exact window
// boundary: one nanosecond before a full quiet StableWindow the scaler
// still panics; at exactly the window it exits.
func TestPanicExitExactStableWindow(t *testing.T) {
	c := cfg() // StableWindow 60s
	a := New(c)
	a.Record(t0, 40)
	if a.Desired(t0, 1); !a.InPanic() {
		t.Fatalf("burst did not enter panic mode")
	}
	// No further bursts: the panic window drains, so panicSince stays t0.
	a.Desired(t0.Add(c.StableWindow-time.Nanosecond), 1)
	if !a.InPanic() {
		t.Errorf("exited panic %v early", time.Nanosecond)
	}
	a.Desired(t0.Add(c.StableWindow), 1)
	if a.InPanic() {
		t.Errorf("still in panic after a full quiet stable window")
	}
}

// TestWindowGCClockSkew injects backwards clock skew into the sample
// stream: out-of-order samples must neither break GC (stale samples
// stuck forever) nor corrupt the desired-scale computation.
func TestWindowGCClockSkew(t *testing.T) {
	c := cfg()
	c.StableWindow = 60 * time.Second
	a := New(c)
	a.Record(t0.Add(100*time.Second), 5)
	// Clock skews 50 s backwards; the sample lands out of order.
	a.Record(t0.Add(50*time.Second), 3)
	a.Record(t0.Add(55*time.Second), 3)
	// Desired stays sane (bounded, non-negative) on the skewed window.
	if got := a.Desired(t0.Add(100*time.Second), 1); got < 0 || got > 10 {
		t.Errorf("Desired on skewed window = %d", got)
	}
	// Time recovers and moves past the window: every skewed sample must
	// be collected even though the stream was not time-ordered.
	a.Record(t0.Add(170*time.Second), 1)
	a.mu.Lock()
	n := len(a.samples)
	a.mu.Unlock()
	if n != 1 {
		t.Errorf("GC kept %d samples after skewed stream aged out, want 1", n)
	}
}

// TestScaleToZeroGraceExactBoundary pins the grace comparison: one
// nanosecond inside the grace period holds the last sandbox; at exactly
// the grace period the function scales to zero.
func TestScaleToZeroGraceExactBoundary(t *testing.T) {
	c := cfg()
	c.StableWindow = 5 * time.Second
	c.ScaleToZeroGrace = 30 * time.Second
	a := New(c)
	a.Record(t0, 1) // lastPositive = t0
	// Drain the stable window with zeros so desiredStable is 0.
	for i := 1; i <= 29; i++ {
		a.Record(t0.Add(time.Duration(i)*time.Second), 0)
	}
	if got := a.Desired(t0.Add(c.ScaleToZeroGrace-time.Nanosecond), 1); got != 1 {
		t.Errorf("Desired inside grace = %d, want 1", got)
	}
	if got := a.Desired(t0.Add(c.ScaleToZeroGrace), 1); got != 0 {
		t.Errorf("Desired at exact grace boundary = %d, want 0", got)
	}
}
