// Package autoscaler implements per-function invocation-based autoscaling.
// Dirigent reuses Knative's default autoscaling policy for a fair
// comparison (paper §4): the desired sandbox count is proportional to the
// windowed average of in-flight requests, with a short "panic" window that
// reacts to bursts, a cap on the multiplicative scale-up rate, and
// scale-to-zero after a grace period.
package autoscaler

import (
	"math"
	"sync"
	"time"

	"dirigent/internal/core"
)

// sample is one concurrency observation.
type sample struct {
	at    time.Time
	value float64
}

// FunctionAutoscaler computes the desired sandbox count for one function
// from a stream of in-flight concurrency observations.
type FunctionAutoscaler struct {
	mu  sync.Mutex
	cfg core.ScalingConfig

	samples []sample // time-ordered window of observations

	panicMode    bool
	panicSince   time.Time
	maxPanicWant int

	lastPositive time.Time // last time concurrency was observed > 0
	everActive   bool
}

// New returns an autoscaler for one function.
func New(cfg core.ScalingConfig) *FunctionAutoscaler {
	if cfg.TargetConcurrency <= 0 {
		cfg.TargetConcurrency = 1
	}
	if cfg.StableWindow <= 0 {
		cfg.StableWindow = 60 * time.Second
	}
	if cfg.PanicWindow <= 0 {
		cfg.PanicWindow = cfg.StableWindow / 10
	}
	if cfg.PanicThreshold <= 0 {
		cfg.PanicThreshold = 2.0
	}
	if cfg.MaxScaleUpRate <= 1 {
		cfg.MaxScaleUpRate = 1000
	}
	return &FunctionAutoscaler{cfg: cfg}
}

// Config returns the function's scaling configuration.
func (a *FunctionAutoscaler) Config() core.ScalingConfig {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg
}

// Record adds one observation of total in-flight requests (executing plus
// queued) for the function.
func (a *FunctionAutoscaler) Record(at time.Time, inFlight float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.samples = append(a.samples, sample{at: at, value: inFlight})
	if inFlight > 0 {
		a.lastPositive = at
		a.everActive = true
	}
	a.gcLocked(at)
}

// gcLocked drops samples older than the stable window.
func (a *FunctionAutoscaler) gcLocked(now time.Time) {
	cutoff := now.Add(-a.cfg.StableWindow)
	i := 0
	for i < len(a.samples) && a.samples[i].at.Before(cutoff) {
		i++
	}
	if i > 0 {
		a.samples = append(a.samples[:0], a.samples[i:]...)
	}
}

// windowAverage computes the mean of samples within d before now.
func (a *FunctionAutoscaler) windowAverage(now time.Time, d time.Duration) float64 {
	cutoff := now.Add(-d)
	var sum float64
	var n int
	for i := len(a.samples) - 1; i >= 0; i-- {
		if a.samples[i].at.Before(cutoff) {
			break
		}
		sum += a.samples[i].value
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Desired returns the number of sandboxes the function should have,
// given the current ready count.
func (a *FunctionAutoscaler) Desired(now time.Time, current int) int {
	a.mu.Lock()
	defer a.mu.Unlock()

	stableAvg := a.windowAverage(now, a.cfg.StableWindow)
	panicAvg := a.windowAverage(now, a.cfg.PanicWindow)

	desiredStable := int(math.Ceil(stableAvg / a.cfg.TargetConcurrency))
	desiredPanic := int(math.Ceil(panicAvg / a.cfg.TargetConcurrency))

	// Panic-mode entry: the short window demands at least PanicThreshold×
	// the current capacity.
	threshold := a.cfg.PanicThreshold * math.Max(float64(current), 1)
	if float64(desiredPanic) >= threshold {
		if !a.panicMode {
			a.panicMode = true
			a.maxPanicWant = 0
		}
		a.panicSince = now
	} else if a.panicMode && now.Sub(a.panicSince) >= a.cfg.StableWindow {
		// Exit panic only after a full stable window without bursts.
		a.panicMode = false
		a.maxPanicWant = 0
	}

	desired := desiredStable
	if a.panicMode {
		// In panic mode, never scale down: hold the high-water mark.
		if desiredPanic > a.maxPanicWant {
			a.maxPanicWant = desiredPanic
		}
		if a.maxPanicWant > desired {
			desired = a.maxPanicWant
		}
	}

	// Rate-limit multiplicative scale-up.
	ceilUp := int(math.Ceil(math.Max(float64(current), 1) * a.cfg.MaxScaleUpRate))
	if desired > ceilUp {
		desired = ceilUp
	}

	// Scale to zero only after the grace period with no activity.
	if desired == 0 {
		if !a.everActive {
			// Never invoked: stay at zero (modulo MinScale below).
		} else if now.Sub(a.lastPositive) < a.cfg.ScaleToZeroGrace {
			desired = 1
		}
	}

	if desired < a.cfg.MinScale {
		desired = a.cfg.MinScale
	}
	if a.cfg.MaxScale > 0 && desired > a.cfg.MaxScale {
		desired = a.cfg.MaxScale
	}
	return desired
}

// InPanic reports whether the autoscaler is currently in panic mode.
func (a *FunctionAutoscaler) InPanic() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.panicMode
}

// Manager aggregates the autoscalers of all registered functions and is
// driven by the control plane's asynchronous autoscaling loop (paper §4).
type Manager struct {
	mu        sync.Mutex
	functions map[string]*FunctionAutoscaler
}

// NewManager returns an empty autoscaler manager.
func NewManager() *Manager {
	return &Manager{functions: make(map[string]*FunctionAutoscaler)}
}

// Add registers a function; replaces any existing autoscaler for the name.
func (m *Manager) Add(name string, cfg core.ScalingConfig) {
	m.mu.Lock()
	m.functions[name] = New(cfg)
	m.mu.Unlock()
}

// Remove deregisters a function.
func (m *Manager) Remove(name string) {
	m.mu.Lock()
	delete(m.functions, name)
	m.mu.Unlock()
}

// Get returns the autoscaler for name, or nil.
func (m *Manager) Get(name string) *FunctionAutoscaler {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.functions[name]
}

// Record feeds one scaling metric into the right autoscaler. Unknown
// functions are ignored (e.g. metrics racing a deregistration).
func (m *Manager) Record(metric core.ScalingMetric) {
	m.mu.Lock()
	a := m.functions[metric.Function]
	m.mu.Unlock()
	if a != nil {
		a.Record(metric.At, float64(metric.InFlight+metric.QueueDepth))
	}
}

// Decide returns the desired scale for every function, given current
// ready counts. currentScale may omit functions with zero sandboxes.
func (m *Manager) Decide(now time.Time, currentScale map[string]int) map[string]int {
	m.mu.Lock()
	names := make([]string, 0, len(m.functions))
	scalers := make([]*FunctionAutoscaler, 0, len(m.functions))
	for name, a := range m.functions {
		names = append(names, name)
		scalers = append(scalers, a)
	}
	m.mu.Unlock()
	out := make(map[string]int, len(names))
	for i, name := range names {
		out[name] = scalers[i].Desired(now, currentScale[name])
	}
	return out
}

// Functions returns the registered function names.
func (m *Manager) Functions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.functions))
	for name := range m.functions {
		out = append(out, name)
	}
	return out
}
