package e2e

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/fleet"
	"dirigent/internal/frontend"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// TestTCPMultiDataPlaneFailover drives the dynamic data plane tier over
// the real TCP stack: 4 data plane replicas register and heartbeat, the
// front end syncs its membership from the control plane, and killing the
// busiest replica mid-burst loses no accepted invocation — sync requests
// fail over to survivors, the control plane prunes the dead replica from
// its broadcast fan-out set within a health sweep, the front end's
// membership shrinks with it, and async tasks persisted on survivors
// drain to completion.
func TestTCPMultiDataPlaneFailover(t *testing.T) {
	const (
		replicas = 4
		workers  = 8
		numFns   = 8
		burst    = 200
	)
	tr := transport.NewTCP()
	t.Cleanup(func() { tr.Close() })

	probe, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	cpAddr := probe.Addr()
	probe.Close()

	cp := controlplane.New(controlplane.Config{
		Addr:              cpAddr,
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		DataPlaneTimeout:  time.Second,
		NoDownscaleWindow: time.Minute,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)

	dps := fleet.NewDataPlanes(fleet.DataPlanesConfig{
		Count:             replicas,
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		Loopback:          true,
		Persistent:        true, // accepted async tasks survive replica crashes
		HeartbeatInterval: 100 * time.Millisecond,
		MetricInterval:    15 * time.Millisecond,
		QueueTimeout:      30 * time.Second,
	})
	if err := dps.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dps.Stop)
	if got := cp.DataPlaneCount(); got != replicas {
		t.Fatalf("DataPlaneCount after replica registration = %d, want %d", got, replicas)
	}

	fl := fleet.New(fleet.Config{
		Size:              workers,
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		Loopback:          true,
		HeartbeatInterval: 250 * time.Millisecond,
		Handler: func(p []byte) ([]byte, error) {
			return append([]byte("multidp:"), p...), nil
		},
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Stop)

	// Front end with dynamic membership: no static replica list at all.
	lb := frontend.New(frontend.Config{
		Transport:          tr,
		ControlPlanes:      []string{cpAddr},
		MembershipInterval: 100 * time.Millisecond,
		FailureCooldown:    300 * time.Millisecond,
	})
	if err := lb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lb.Stop)
	if got := len(lb.Replicas()); got != replicas {
		t.Fatalf("front-end membership = %d replicas after first sync, want %d", got, replicas)
	}

	// Several pre-scaled functions, so homes spread across the replica
	// set and the burst mostly rides warm paths.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	fnName := func(i int) string { return fmt.Sprintf("mdp-%d", i%numFns) }
	for i := 0; i < numFns; i++ {
		fn := core.Function{Name: fnName(i), Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
		fn.Scaling.MinScale = 1
		fn.Scaling.StableWindow = time.Minute
		if _, err := tr.Call(ctx, cpAddr, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			t.Fatalf("register %s: %v", fnName(i), err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < numFns; i++ {
		for {
			if ready, _ := cp.FunctionScale(fnName(i)); ready >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("scale-up of %s stuck", fnName(i))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	invoke := func(i int) error {
		resp, err := lb.Invoke(ctx, &proto.InvokeRequest{
			Function: fnName(i), Payload: []byte(fmt.Sprintf("b-%d", i)),
		})
		if err != nil {
			return fmt.Errorf("invoke b-%d: %w", i, err)
		}
		if want := fmt.Sprintf("multidp:b-%d", i); string(resp.Body) != want {
			return fmt.Errorf("invoke b-%d: body %q, want %q", i, resp.Body, want)
		}
		return nil
	}

	// Warm-up pass, which also reveals which replica homes the most
	// traffic — that one is the kill victim, so the mid-burst crash
	// provably lands on live requests.
	for i := 0; i < numFns; i++ {
		if err := invoke(i); err != nil {
			t.Fatal(err)
		}
	}
	victim, busiest := -1, int64(-1)
	for i, dp := range dps.DPs() {
		if n := dp.Metrics().Counter("invocations").Value(); n > busiest {
			victim, busiest = i, n
		}
	}
	if busiest < 1 {
		t.Fatalf("warm-up traffic reached no replica")
	}

	// Sync burst with the victim killed in the middle: every invocation
	// the front end accepted must complete via failover.
	var wg sync.WaitGroup
	errCh := make(chan error, burst)
	launched := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == burst/2 {
				close(launched)
			}
			if err := invoke(i); err != nil {
				errCh <- err
			}
		}(i)
	}
	<-launched
	dps.StopOne(victim) // kill the busiest replica mid-burst
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The control plane prunes the dead replica from the fan-out set
	// within one health sweep past the DP timeout...
	deadline = time.Now().Add(30 * time.Second)
	for cp.DataPlaneCount() != replicas-1 {
		if time.Now().After(deadline) {
			t.Fatalf("DataPlaneCount = %d, want %d after replica kill", cp.DataPlaneCount(), replicas-1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := cp.Metrics().Counter("dataplane_failures_detected").Value(); n < 1 {
		t.Errorf("dataplane_failures_detected = %d, want >= 1", n)
	}
	// ...and the front end's membership follows.
	deadline = time.Now().Add(10 * time.Second)
	for len(lb.Replicas()) != replicas-1 {
		if time.Now().After(deadline) {
			t.Fatalf("front-end membership = %v, want %d replicas", lb.Replicas(), replicas-1)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Async tier: tasks accepted after the kill land on survivors,
	// persist, and drain to completion.
	const asyncN = 24
	for i := 0; i < asyncN; i++ {
		resp, err := lb.Invoke(ctx, &proto.InvokeRequest{
			Function: fnName(i), Async: true, Payload: []byte(fmt.Sprintf("a-%d", i)),
		})
		if err != nil {
			t.Fatalf("async accept a-%d: %v", i, err)
		}
		if string(resp.Body) != "accepted" {
			t.Fatalf("async accept a-%d: body %q", i, resp.Body)
		}
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		var completed int64
		pending := 0
		for i, dp := range dps.DPs() {
			if i == victim {
				continue // the victim is down; its metrics are frozen
			}
			completed += dp.Metrics().Counter("async_completed").Value()
			pending += dp.PendingAsync()
		}
		if completed >= asyncN && pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async tasks not drained on survivors: completed=%d pending=%d", completed, pending)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The failover telemetry must have observed the kill.
	if n := lb.Metrics().Counter("dataplane_failovers").Value(); n < 1 {
		t.Errorf("dataplane_failovers = %d, want >= 1", n)
	}
}
