package e2e

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/fleet"
	"dirigent/internal/frontend"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// TestTCPEmulatedFleet drives the control plane's striped worker
// registry at fleet scale over the real TCP stack: a 256-worker
// emulated fleet registers in one storm, serves a cold-start burst
// through the data plane, survives a 25% correlated worker failure
// (endpoints drained, capacity re-created on survivors, invocations
// still completing), and leaves the fleet telemetry — fleet_size,
// health_sweep_ms, reg_lock_* — populated.
func TestTCPEmulatedFleet(t *testing.T) {
	const (
		fleetSize = 256
		burst     = 256
	)
	tr := transport.NewTCP()
	t.Cleanup(func() { tr.Close() })

	probeAddr := func() string {
		probe, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		addr := probe.Addr()
		probe.Close()
		return addr
	}

	cpAddr := probeAddr()
	cp := controlplane.New(controlplane.Config{
		Addr:              cpAddr,
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		NoDownscaleWindow: time.Minute, // the burst must not scale down mid-test
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)

	dpAddr := probeAddr()
	dp := dataplane.New(dataplane.Config{
		ID:             1,
		Addr:           dpAddr,
		Transport:      tr,
		ControlPlanes:  []string{cpAddr},
		MetricInterval: 15 * time.Millisecond,
		QueueTimeout:   20 * time.Second,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dp.Stop)

	fl := fleet.New(fleet.Config{
		Size:              fleetSize,
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		Loopback:          true, // real TCP listeners, ports bound at start
		HeartbeatInterval: 250 * time.Millisecond,
		Handler: func(p []byte) ([]byte, error) {
			return append([]byte("fleet:"), p...), nil
		},
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Stop)
	if got := cp.WorkerCount(); got != fleetSize {
		t.Fatalf("WorkerCount after registration storm = %d, want %d", got, fleetSize)
	}

	lb := frontend.New(frontend.Config{Transport: tr, DataPlanes: []string{dpAddr}})

	// Cold-start burst: 0 → 256 replicas across the fleet.
	fn := core.Function{Name: "fleetburst", Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = burst
	fn.Scaling.StableWindow = time.Minute
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, cpAddr, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatalf("register: %v", err)
	}
	waitScale := func(what string, min int) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			ready, _ := cp.FunctionScale("fleetburst")
			if ready >= min {
				return
			}
			if time.Now().After(deadline) {
				ready, creating := cp.FunctionScale("fleetburst")
				t.Fatalf("%s stuck: ready=%d creating=%d, want >= %d", what, ready, creating, min)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitScale("burst", burst)
	if got := fl.SandboxCount(); got < burst {
		t.Errorf("fleet hosts %d sandboxes, want >= %d", got, burst)
	}

	invokeAll := func(tag string, n int) {
		t.Helper()
		var wg sync.WaitGroup
		errCh := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := lb.Invoke(ctx, &proto.InvokeRequest{
					Function: "fleetburst", Payload: []byte(fmt.Sprintf("%s-%d", tag, i)),
				})
				if err != nil {
					errCh <- fmt.Errorf("invoke %s-%d: %w", tag, i, err)
					return
				}
				if want := fmt.Sprintf("fleet:%s-%d", tag, i); string(resp.Body) != want {
					errCh <- fmt.Errorf("invoke %s-%d: body %q, want %q", tag, i, resp.Body, want)
				}
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Error(err)
		}
	}
	invokeAll("pre", 64)

	// Correlated failure: a quarter of the fleet crashes at once.
	preFailReady, _ := cp.FunctionScale("fleetburst")
	stopped := fl.StopFraction(0.25)
	survivors := fleetSize - len(stopped)

	// Detection: the health monitor fails exactly the victims.
	deadline := time.Now().Add(60 * time.Second)
	for cp.WorkerCount() != survivors {
		if time.Now().After(deadline) {
			t.Fatalf("WorkerCount = %d, want %d after correlated failure", cp.WorkerCount(), survivors)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Drain: the victims' endpoints leave the function's ready set, then
	// the autoscaler re-creates capacity on survivors back to the burst
	// target (the autoscale loop runs every 25 ms here).
	waitScale("post-failure recovery", burst)
	postFailReady, _ := cp.FunctionScale("fleetburst")
	if postFailReady < burst {
		t.Errorf("ready = %d after recovery, want >= %d (pre-failure %d)", postFailReady, burst, preFailReady)
	}
	deadline = time.Now().Add(60 * time.Second)
	for fl.SandboxCount() < burst {
		if time.Now().After(deadline) {
			t.Fatalf("surviving fleet hosts %d sandboxes, want >= %d", fl.SandboxCount(), burst)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Invocations complete against the recovered endpoint set.
	invokeAll("post", 64)

	// Fleet telemetry: the registry and health monitor must have
	// observed the whole story.
	m := cp.Metrics()
	if got := m.Gauge("fleet_size").Value(); got != fleetSize {
		t.Errorf("fleet_size = %d, want %d", got, fleetSize)
	}
	if n := m.Histogram("health_sweep_ms").Count(); n == 0 {
		t.Errorf("health_sweep_ms never observed — health monitor idle")
	}
	if n := m.Counter("worker_failures_detected").Value(); n != int64(len(stopped)) {
		t.Errorf("worker_failures_detected = %d, want %d", n, len(stopped))
	}
}
