// Control-plane leader failover over real TCP: a 3-replica CP tier runs
// the replicated Raft log while a burst of registrations is in flight,
// the leader is killed mid-burst, and every write the tier acknowledged
// must survive on the new leader — the acceptance bar for the HA tier
// (paper §5.4: CP failover loses no accepted work). The killed replica
// is then revived with an empty store and must catch up from the
// leader's log alone.
package e2e

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

func TestTCPCPLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP failover test skipped in -short mode")
	}
	tr := transport.NewTCP()
	t.Cleanup(func() { tr.Close() })

	const replicas = 3
	addrs := make([]string, replicas)
	for i := range addrs {
		probe, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = probe.Addr()
		probe.Close()
	}

	stores := make([]*store.Store, replicas)
	cps := make([]*controlplane.ControlPlane, replicas)
	newCP := func(i int, rejoin bool) *controlplane.ControlPlane {
		return controlplane.New(controlplane.Config{
			Addr:              addrs[i],
			Peers:             addrs,
			Transport:         tr,
			LocalStore:        stores[i],
			FollowerReads:     true,
			ReadLease:         200 * time.Millisecond,
			RaftHeartbeat:     20 * time.Millisecond,
			RaftElectionMin:   60 * time.Millisecond,
			RaftElectionMax:   120 * time.Millisecond,
			RaftRejoin:        rejoin,
			AutoscaleInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  2 * time.Second,
		})
	}
	for i := range cps {
		stores[i] = store.NewMemory()
		cps[i] = newCP(i, false)
		if err := cps[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, cp := range cps {
			cp.Stop()
		}
	})

	leaderIndex := func() int {
		for i, cp := range cps {
			if cp != nil && cp.IsLeader() {
				return i
			}
		}
		return -1
	}
	awaitLeader := func(timeout time.Duration) int {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if i := leaderIndex(); i >= 0 {
				return i
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("no CP leader elected within %v", timeout)
		return -1
	}
	awaitLeader(10 * time.Second)

	client := cpclient.New(tr, addrs)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Burst: 4 writers register functions through the leader; every name
	// whose registration was acknowledged is recorded as accepted.
	const writers, perWriter = 4, 20
	var (
		mu       sync.Mutex
		accepted []string
		done     atomic.Int64
		killOnce sync.Once
		killed   = -1
	)
	killReady := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				fn := core.Function{
					Name:    fmt.Sprintf("tcpha-w%d-%d", w, j),
					Image:   "registry.local/tcpha",
					Port:    8080,
					Scaling: core.DefaultScalingConfig(),
				}
				if _, err := client.CallWithRetry(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
					t.Errorf("writer %d: register %s: %v", w, fn.Name, err)
					continue
				}
				mu.Lock()
				accepted = append(accepted, fn.Name)
				mu.Unlock()
				if done.Add(1) == writers*perWriter/2 {
					killOnce.Do(func() { close(killReady) })
				}
			}
		}(w)
	}
	// Kill the leader halfway through the burst; the writers ride through
	// the election via CallWithRetry.
	select {
	case <-killReady:
	case <-ctx.Done():
		t.Fatal("burst stalled before reaching the kill point")
	}
	if killed = leaderIndex(); killed < 0 {
		killed = awaitLeader(5 * time.Second)
	}
	cps[killed].Stop()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every acknowledged registration must be visible through the tier:
	// committed at quorum, so the new leader recovered it from its own
	// applied log.
	raw, err := client.CallWithRetry(ctx, proto.MethodListFunctions, nil)
	if err != nil {
		t.Fatalf("list after failover: %v", err)
	}
	list, err := proto.UnmarshalFunctionList(raw)
	if err != nil {
		t.Fatalf("decode list: %v", err)
	}
	have := make(map[string]bool, len(list.Functions))
	for _, fn := range list.Functions {
		have[fn.Name] = true
	}
	mu.Lock()
	names := append([]string(nil), accepted...)
	mu.Unlock()
	lost := 0
	for _, name := range names {
		if !have[name] {
			lost++
			t.Errorf("accepted registration %q lost across CP failover", name)
		}
	}
	if lost == 0 && len(names) != writers*perWriter {
		t.Errorf("only %d/%d registrations acknowledged", len(names), writers*perWriter)
	}

	// Revive the killed replica with an empty store: it rejoins the group
	// (withholding votes until caught up) and converges on the tier state
	// purely from the leader's log backtracking.
	stores[killed] = store.NewMemory()
	cps[killed] = newCP(killed, true)
	if err := cps[killed].Start(); err != nil {
		t.Fatalf("revive CP %d: %v", killed, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if len(stores[killed].HGetAll("functions")) >= len(names) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(stores[killed].HGetAll("functions")); got < len(names) {
		t.Errorf("revived replica caught up %d/%d functions", got, len(names))
	}
}
