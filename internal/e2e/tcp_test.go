// Package e2e runs the full Dirigent stack — control plane replicas, data
// planes, and workers as separate listeners — over the real TCP transport,
// exercising the same deployment shape as the cmd/ binaries.
package e2e

import (
	"context"
	"sync"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/frontend"
	"dirigent/internal/proto"
	"dirigent/internal/sandbox"
	"dirigent/internal/store"
	"dirigent/internal/transport"
	"dirigent/internal/worker"
)

type tcpStack struct {
	tr      *transport.TCP
	cp      *controlplane.ControlPlane
	dp      *dataplane.DataPlane
	w       *worker.Worker
	lb      *frontend.LB
	cpAddr  string
	images  *worker.ImageRegistry
	cleanup []func()
}

func startTCPStack(t *testing.T) *tcpStack {
	t.Helper()
	tr := transport.NewTCP()
	s := &tcpStack{tr: tr}
	s.cleanup = append(s.cleanup, func() { tr.Close() })

	// Control plane on an ephemeral port: listen manually first to learn
	// the address, since components need it for registration.
	probe, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	s.cpAddr = probe.Addr()
	probe.Close()

	cp := controlplane.New(controlplane.Config{
		Addr:              s.cpAddr,
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	s.cp = cp
	s.cleanup = append(s.cleanup, cp.Stop)

	// Data plane, also on a probed ephemeral port.
	probe, err = tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	dpAddr := probe.Addr()
	probe.Close()
	dp := dataplane.New(dataplane.Config{
		ID:             1,
		Addr:           dpAddr,
		Transport:      tr,
		ControlPlanes:  []string{s.cpAddr},
		MetricInterval: 15 * time.Millisecond,
		QueueTimeout:   10 * time.Second,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	s.dp = dp
	s.cleanup = append(s.cleanup, dp.Stop)

	// Worker.
	probe, err = tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	wAddr := probe.Addr()
	probe.Close()
	_, portStr, _ := splitHostPort(wAddr)
	s.images = worker.NewImageRegistry()
	w := worker.New(worker.Config{
		Node: core.WorkerNode{
			ID: 1, Name: "w1", IP: "127.0.0.1", Port: portStr,
			CPUMilli: 10000, MemoryMB: 65536,
		},
		Addr:              wAddr,
		Runtime:           sandbox.NewContainerd(sandbox.Config{LatencyScale: 0, NodeIP: [4]byte{127, 0, 0, 1}, Seed: 1}),
		Transport:         tr,
		ControlPlanes:     []string{s.cpAddr},
		HeartbeatInterval: 100 * time.Millisecond,
		Images:            s.images,
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	s.w = w
	s.cleanup = append(s.cleanup, w.Stop)

	s.lb = frontend.New(frontend.Config{
		Transport:  tr,
		DataPlanes: []string{dpAddr},
	})

	t.Cleanup(func() {
		for i := len(s.cleanup) - 1; i >= 0; i-- {
			s.cleanup[i]()
		}
	})
	return s
}

func splitHostPort(addr string) (string, uint16, bool) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			var port uint16
			for _, c := range addr[i+1:] {
				port = port*10 + uint16(c-'0')
			}
			return addr[:i], port, true
		}
	}
	return addr, 0, false
}

func TestTCPEndToEndInvoke(t *testing.T) {
	s := startTCPStack(t)
	s.images.Register("img", func(p []byte) ([]byte, error) {
		return append([]byte("tcp:"), p...), nil
	})
	fn := core.Function{Name: "f", Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.StableWindow = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.tr.Call(ctx, s.cpAddr, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatalf("register: %v", err)
	}
	resp, err := s.lb.Invoke(ctx, &proto.InvokeRequest{Function: "f", Payload: []byte("hello")})
	if err != nil {
		t.Fatalf("cold invoke: %v", err)
	}
	if !resp.ColdStart || string(resp.Body) != "tcp:hello" {
		t.Errorf("resp = %+v", resp)
	}
	resp, err = s.lb.Invoke(ctx, &proto.InvokeRequest{Function: "f", Payload: []byte("again")})
	if err != nil {
		t.Fatalf("warm invoke: %v", err)
	}
	if resp.ColdStart {
		t.Errorf("second invocation should be warm")
	}
}

func TestTCPConcurrentInvocations(t *testing.T) {
	s := startTCPStack(t)
	fn := core.Function{Name: "f", Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.StableWindow = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := s.tr.Call(ctx, s.cpAddr, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatalf("register: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.lb.Invoke(ctx, &proto.InvokeRequest{Function: "f"}); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestTCPClusterStatus(t *testing.T) {
	s := startTCPStack(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Wait for the worker's registration to land.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.cp.WorkerCount() == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	out, err := s.tr.Call(ctx, s.cpAddr, proto.MethodClusterStatus, nil)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if len(out) == 0 {
		t.Errorf("empty status")
	}
}
