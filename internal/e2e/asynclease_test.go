package e2e

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/fleet"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// execCounter tallies executions per payload across the worker fleet, so
// a test can tell "executed at least once" (required) from "re-executed
// after its settle" (forbidden).
type execCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newExecCounter() *execCounter { return &execCounter{counts: make(map[string]int)} }

func (e *execCounter) handler(delay time.Duration) func([]byte) ([]byte, error) {
	return func(p []byte) ([]byte, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		e.mu.Lock()
		e.counts[string(p)]++
		e.mu.Unlock()
		return p, nil
	}
}

func (e *execCounter) snapshot() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := make(map[string]int, len(e.counts))
	for k, v := range e.counts {
		snap[k] = v
	}
	return snap
}

// TestTCPAsyncLeaseFailover is the acceptance scenario for lease
// failover, over the real TCP stack: a durable data plane replica is
// killed mid-async-burst; the control plane's health sweep leases its
// shard hashes to the survivors, which drain every acknowledged task to
// completion — zero stranded records, no restart required. Reviving the
// victim then recalls the lease at a higher epoch and re-executes
// nothing that already settled.
func TestTCPAsyncLeaseFailover(t *testing.T) {
	const (
		replicas = 3
		workers  = 6
		numFns   = 4
		asyncN   = 60
	)
	tr := transport.NewTCP()
	t.Cleanup(func() { tr.Close() })

	probe, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	cpAddr := probe.Addr()
	probe.Close()

	cp := controlplane.New(controlplane.Config{
		Addr:              cpAddr,
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		DataPlaneTimeout:  time.Second,
		NoDownscaleWindow: time.Minute,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)

	// One store shared by every replica: the layout lease failover needs.
	shared := store.NewMemory()
	dps := fleet.NewDataPlanes(fleet.DataPlanesConfig{
		Count:             replicas,
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		Loopback:          true,
		SharedStore:       shared,
		HeartbeatInterval: 100 * time.Millisecond,
		MetricInterval:    15 * time.Millisecond,
		QueueTimeout:      30 * time.Second,
	})
	if err := dps.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dps.Stop)

	execs := newExecCounter()
	fl := fleet.New(fleet.Config{
		Size:              workers,
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		Loopback:          true,
		HeartbeatInterval: 250 * time.Millisecond,
		// Slow enough that the victim is killed with acknowledged tasks
		// still unsettled — the set the lease exists to save.
		Handler: execs.handler(100 * time.Millisecond),
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	fnName := func(i int) string { return fmt.Sprintf("lease-%d", i%numFns) }
	for i := 0; i < numFns; i++ {
		fn := core.Function{Name: fnName(i), Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
		fn.Scaling.MinScale = 1
		fn.Scaling.StableWindow = time.Minute
		if _, err := tr.Call(ctx, cpAddr, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			t.Fatalf("register %s: %v", fnName(i), err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < numFns; i++ {
		for {
			if ready, _ := cp.FunctionScale(fnName(i)); ready >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("scale-up of %s stuck", fnName(i))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Spread the burst across the replicas directly (round-robin, the
	// front-end tier has its own e2e coverage) so every replica owns
	// acknowledged records when the victim dies.
	addrs := dps.Addrs()
	for i := 0; i < asyncN; i++ {
		req := proto.InvokeRequest{Function: fnName(i), Async: true, Payload: []byte(fmt.Sprintf("t-%d", i))}
		raw, err := tr.Call(ctx, addrs[i%replicas], proto.MethodInvoke, req.Marshal())
		if err != nil {
			t.Fatalf("async accept t-%d: %v", i, err)
		}
		resp, err := proto.UnmarshalInvokeResponse(raw)
		if err != nil || string(resp.Body) != "accepted" {
			t.Fatalf("async accept t-%d: body %q err %v", i, resp.Body, err)
		}
	}

	// Kill the replica holding the most acknowledged tasks, with the
	// burst still draining.
	victim, most := -1, int64(-1)
	for i, dp := range dps.DPs() {
		if n := dp.Metrics().Counter("async_accepted").Value(); n > most {
			victim, most = i, n
		}
	}
	victimID := core.DataPlaneID(1 + victim)
	dps.StopOne(victim)

	// The health sweep prunes the victim and leases its shard hashes to
	// the survivors.
	deadline = time.Now().Add(30 * time.Second)
	for cp.AsyncLeaseCount() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no lease issued for the dead replica (pruned=%d)", replicas-cp.DataPlaneCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := cp.Metrics().Counter("async_leases_issued").Value(); n < 1 {
		t.Fatalf("async_leases_issued = %d, want >= 1", n)
	}

	// Zero acknowledged tasks stranded: the shared backlog drains to
	// nothing with the victim still dead, and every accepted payload
	// executed at least once.
	deadline = time.Now().Add(60 * time.Second)
	for dataplane.AsyncBacklog(shared) != 0 {
		if time.Now().After(deadline) {
			drained := int64(0)
			for i, dp := range dps.DPs() {
				if i != victim {
					drained += dp.Metrics().Counter("async_lease_drained").Value()
				}
			}
			t.Fatalf("acknowledged tasks stranded: backlog=%d lease_drained=%d",
				dataplane.AsyncBacklog(shared), drained)
		}
		time.Sleep(10 * time.Millisecond)
	}
	counts := execs.snapshot()
	for i := 0; i < asyncN; i++ {
		if counts[fmt.Sprintf("t-%d", i)] == 0 {
			t.Errorf("acknowledged task t-%d never executed", i)
		}
	}
	// The lease epoch fenced the victim's records while draining them.
	fence := shared.HGetU64("async-lease-fence", fmt.Sprintf("%d", victimID))
	if fence < 1 {
		t.Fatalf("victim fence = %d, want >= 1 after lease", fence)
	}

	// Revival: the victim re-registers, the control plane recalls the
	// lease at a strictly higher epoch, and nothing that settled under
	// the lease runs again.
	settled := execs.snapshot()
	if err := dps.Restart(victim); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for cp.AsyncLeaseCount() != 0 || cp.DataPlaneCount() != replicas {
		if time.Now().After(deadline) {
			t.Fatalf("lease not recalled on revival: leases=%d dps=%d",
				cp.AsyncLeaseCount(), cp.DataPlaneCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := cp.Metrics().Counter("async_leases_recalled").Value(); n < 1 {
		t.Fatalf("async_leases_recalled = %d, want >= 1", n)
	}
	// The revival epoch out-fences the lease.
	deadline = time.Now().Add(10 * time.Second)
	for shared.HGetU64("async-lease-fence", fmt.Sprintf("%d", victimID)) <= fence {
		if time.Now().After(deadline) {
			t.Fatalf("victim fence stuck at %d after revival", fence)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Settle-state is authoritative: revival recovery found nothing, so
	// no payload's execution count moves.
	time.Sleep(300 * time.Millisecond)
	if n := dps.DPs()[victim].Metrics().Counter("async_recovered").Value(); n != 0 {
		t.Fatalf("revived replica re-recovered %d settled tasks", n)
	}
	for k, v := range execs.snapshot() {
		if v != settled[k] {
			t.Fatalf("task %s re-executed after settle: %d -> %d runs", k, settled[k], v)
		}
	}
}

// TestAsyncLeaseLesseeFailover kills the dead owner's lessee mid-drain:
// the sweep must re-mint the lease at a higher epoch for the remaining
// survivor, which re-drains everything the dead lessee had queued but
// not settled. No acknowledged task is stranded across the double
// failure.
func TestAsyncLeaseLesseeFailover(t *testing.T) {
	const asyncN = 48
	tr := transport.NewInProc()

	cp := controlplane.New(controlplane.Config{
		Addr:              "cp",
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		DataPlaneTimeout:  300 * time.Millisecond,
		NoDownscaleWindow: time.Minute,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)

	shared := store.NewMemory()
	dps := fleet.NewDataPlanes(fleet.DataPlanesConfig{
		Count:             3,
		Transport:         tr,
		ControlPlanes:     []string{"cp"},
		SharedStore:       shared,
		HeartbeatInterval: 50 * time.Millisecond,
		MetricInterval:    15 * time.Millisecond,
		QueueTimeout:      30 * time.Second,
	})
	if err := dps.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dps.Stop)

	execs := newExecCounter()
	fl := fleet.New(fleet.Config{
		Size:              4,
		Transport:         tr,
		ControlPlanes:     []string{"cp"},
		HeartbeatInterval: 250 * time.Millisecond,
		Handler:           execs.handler(15 * time.Millisecond), // slow: the lessee dies mid-drain
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fn := core.Function{Name: "relay", Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = 1
	fn.Scaling.StableWindow = time.Minute
	if _, err := tr.Call(ctx, "cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ready, _ := cp.FunctionScale("relay"); ready >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scale-up stuck")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every record lands on replica 0 — the owner whose death starts the
	// lease, and whose backlog outlives two replicas.
	for i := 0; i < asyncN; i++ {
		req := proto.InvokeRequest{Function: "relay", Async: true, Payload: []byte(fmt.Sprintf("r-%d", i))}
		if _, err := tr.Call(ctx, dps.Addrs()[0], proto.MethodInvoke, req.Marshal()); err != nil {
			t.Fatalf("accept r-%d: %v", i, err)
		}
	}
	dps.StopOne(0)

	// The function's records all live in one shard hash, so one survivor
	// ends up draining them. Wait until a lessee has demonstrably queued
	// leased work, then kill that one mid-drain.
	lessee := -1
	deadline = time.Now().Add(30 * time.Second)
	for lessee < 0 {
		for i := 1; i < 3; i++ {
			if dps.DPs()[i].Metrics().Counter("async_lease_drained").Value() >= 1 {
				lessee = i
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no survivor drained leased work (leases=%d)", cp.AsyncLeaseCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	issued := cp.Metrics().Counter("async_leases_issued").Value()
	dps.StopOne(lessee)

	// The sweep re-mints the lease for the last survivor...
	deadline = time.Now().Add(30 * time.Second)
	for cp.Metrics().Counter("async_leases_issued").Value() <= issued {
		if time.Now().After(deadline) {
			t.Fatalf("lease not re-minted after lessee death (issued=%d)", issued)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...and the owner's backlog still drains to zero.
	deadline = time.Now().Add(60 * time.Second)
	for dataplane.AsyncBacklog(shared) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tasks stranded after lessee death: backlog=%d", dataplane.AsyncBacklog(shared))
		}
		time.Sleep(10 * time.Millisecond)
	}
	counts := execs.snapshot()
	for i := 0; i < asyncN; i++ {
		if counts[fmt.Sprintf("r-%d", i)] == 0 {
			t.Errorf("acknowledged task r-%d never executed", i)
		}
	}
}
