package e2e

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/frontend"
	"dirigent/internal/proto"
	"dirigent/internal/sandbox"
	"dirigent/internal/store"
	"dirigent/internal/transport"
	"dirigent/internal/worker"
)

// burstStack is a full Dirigent deployment over real TCP with several
// workers, sized for burst cold-start testing: control plane, one data
// plane, W prewarmed workers, and the front-end LB.
type burstStack struct {
	tr      *transport.TCP
	cp      *controlplane.ControlPlane
	dp      *dataplane.DataPlane
	workers []*worker.Worker
	lb      *frontend.LB
	cpAddr  string
	images  *worker.ImageRegistry
}

func startBurstStack(t *testing.T, numWorkers, prewarm int) *burstStack {
	t.Helper()
	tr := transport.NewTCP()
	t.Cleanup(func() { tr.Close() })
	s := &burstStack{tr: tr}

	probeAddr := func() string {
		probe, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		addr := probe.Addr()
		probe.Close()
		return addr
	}

	s.cpAddr = probeAddr()
	cp := controlplane.New(controlplane.Config{
		Addr:              s.cpAddr,
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  3 * time.Second,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	s.cp = cp
	t.Cleanup(cp.Stop)

	dpAddr := probeAddr()
	dp := dataplane.New(dataplane.Config{
		ID:             1,
		Addr:           dpAddr,
		Transport:      tr,
		ControlPlanes:  []string{s.cpAddr},
		MetricInterval: 15 * time.Millisecond,
		QueueTimeout:   20 * time.Second,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	s.dp = dp
	t.Cleanup(dp.Stop)

	s.images = worker.NewImageRegistry()
	for i := 0; i < numWorkers; i++ {
		wAddr := probeAddr()
		_, port, _ := splitHostPort(wAddr)
		w := worker.New(worker.Config{
			Node: core.WorkerNode{
				ID: core.NodeID(i + 1), Name: fmt.Sprintf("bw%d", i+1),
				IP: "127.0.0.1", Port: port,
				CPUMilli: 1 << 20, MemoryMB: 1 << 20,
			},
			Addr: wAddr,
			Runtime: sandbox.NewContainerd(sandbox.Config{
				LatencyScale: 0, NodeIP: [4]byte{127, 0, 0, 1}, Seed: int64(i + 1),
			}),
			Transport:         tr,
			ControlPlanes:     []string{s.cpAddr},
			HeartbeatInterval: 50 * time.Millisecond,
			Images:            s.images,
			Prewarm:           prewarm,
		})
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		s.workers = append(s.workers, w)
		t.Cleanup(w.Stop)
	}

	s.lb = frontend.New(frontend.Config{Transport: tr, DataPlanes: []string{dpAddr}})
	return s
}

// TestTCPBurstColdStart drives a 0→64 replica burst across 4 prewarmed
// workers over the real TCP stack: every replica must come up, every
// invocation must complete, and the batching + pre-warm telemetry must
// show the pipelined path actually ran (batched creates, coalesced
// endpoint fan-out, pre-warm claims).
func TestTCPBurstColdStart(t *testing.T) {
	const (
		numWorkers = 4
		burst      = 64
		prewarm    = 4
	)
	s := startBurstStack(t, numWorkers, prewarm)
	s.images.Register("img", func(p []byte) ([]byte, error) {
		return append([]byte("burst:"), p...), nil
	})

	fn := core.Function{Name: "burst", Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = burst
	fn.Scaling.StableWindow = 10 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := s.tr.Call(ctx, s.cpAddr, proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatalf("register: %v", err)
	}

	// 0 → 64 replicas.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ready, _ := s.cp.FunctionScale("burst")
		if ready >= burst {
			break
		}
		if time.Now().After(deadline) {
			creating := 0
			ready, creating = s.cp.FunctionScale("burst")
			t.Fatalf("burst stuck: ready=%d creating=%d", ready, creating)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Every replica landed on a worker and every invocation completes.
	total := 0
	for _, w := range s.workers {
		total += w.SandboxCount()
	}
	if total < burst {
		t.Errorf("workers host %d sandboxes, want >= %d", total, burst)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.lb.Invoke(ctx, &proto.InvokeRequest{
				Function: "burst", Payload: []byte(fmt.Sprintf("p%d", i)),
			})
			if err != nil {
				errCh <- fmt.Errorf("invoke %d: %w", i, err)
				return
			}
			if string(resp.Body) != fmt.Sprintf("burst:p%d", i) {
				errCh <- fmt.Errorf("invoke %d: body %q", i, resp.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Batching telemetry: the sweep must have packed multiple creations
	// into per-worker RPCs and coalesced the endpoint fan-out.
	cpm := s.cp.Metrics()
	if n := cpm.Histogram("create_batch_size").Count(); n == 0 {
		t.Errorf("create_batch_size histogram empty — batched path never ran")
	}
	if max := cpm.Histogram("create_batch_size").Max(); max < 2 {
		t.Errorf("create_batch_size max = %.0f, want >= 2 (burst should batch)", max)
	}
	if n := cpm.Histogram("endpoint_fanout_batch_size").Count(); n == 0 {
		t.Errorf("endpoint_fanout_batch_size histogram empty — coalesced fan-out never ran")
	}
	if n := cpm.Histogram("cold_start_sched_ms").Count(); n < burst {
		t.Errorf("cold_start_sched_ms observed %d samples, want >= %d", n, burst)
	}

	// Pre-warm telemetry: with 4×4 pooled sandboxes, a 64-burst must
	// claim some of them.
	var hits, readyBatches int64
	for _, w := range s.workers {
		hits += w.Metrics().Counter("prewarm_hits").Value()
		readyBatches += int64(w.Metrics().Histogram("ready_batch_size").Count())
	}
	if hits == 0 {
		t.Errorf("prewarm_hits = 0 across all workers, want > 0")
	}
	if readyBatches == 0 {
		t.Errorf("ready_batch_size never observed — readiness reporting broken")
	}
}
