package raft

import (
	"testing"

	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// These tests drive the Raft RPC handlers directly (no running election
// loop) to verify the protocol rules in isolation.

func freshNode(id string) *Node {
	return NewNode(Config{
		ID:        id,
		Peers:     []string{id, "peer1", "peer2"},
		Transport: transport.NewInProc(),
	})
}

func requestVote(t *testing.T, n *Node, term uint64, candidate string) *proto.VoteResponse {
	t.Helper()
	req := proto.VoteRequest{Term: term, Candidate: candidate}
	respB, err, handled := n.HandleRPC(proto.MethodRequestVote, req.Marshal())
	if !handled || err != nil {
		t.Fatalf("HandleRPC: handled=%v err=%v", handled, err)
	}
	resp, err := proto.UnmarshalVoteResponse(respB)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestGrantsVoteOnce(t *testing.T) {
	n := freshNode("n0")
	if resp := requestVote(t, n, 1, "peer1"); !resp.Granted {
		t.Fatalf("first vote not granted")
	}
	// Same term, different candidate: rejected.
	if resp := requestVote(t, n, 1, "peer2"); resp.Granted {
		t.Errorf("voted twice in the same term")
	}
	// Same term, same candidate: idempotent re-grant.
	if resp := requestVote(t, n, 1, "peer1"); !resp.Granted {
		t.Errorf("re-vote for the same candidate rejected")
	}
}

func TestRejectsStaleTermVote(t *testing.T) {
	n := freshNode("n0")
	requestVote(t, n, 5, "peer1")
	resp := requestVote(t, n, 3, "peer2")
	if resp.Granted {
		t.Errorf("granted a vote for a stale term")
	}
	if resp.Term != 5 {
		t.Errorf("response term = %d, want 5", resp.Term)
	}
}

func TestHigherTermResetsVote(t *testing.T) {
	n := freshNode("n0")
	requestVote(t, n, 1, "peer1")
	if resp := requestVote(t, n, 2, "peer2"); !resp.Granted {
		t.Errorf("vote not reset on higher term")
	}
	if n.Term() != 2 {
		t.Errorf("term = %d, want 2", n.Term())
	}
}

func TestLeaderPingAdoptsLeader(t *testing.T) {
	n := freshNode("n0")
	ping := proto.LeaderPing{Term: 4, Leader: "peer1"}
	_, err, handled := n.HandleRPC(proto.MethodLeaderPing, ping.Marshal())
	if !handled || err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	if n.Leader() != "peer1" || n.Term() != 4 || n.State() != Follower {
		t.Errorf("state after ping: leader=%q term=%d state=%v", n.Leader(), n.Term(), n.State())
	}
	// Stale ping from an old term is ignored.
	old := proto.LeaderPing{Term: 2, Leader: "peer2"}
	n.HandleRPC(proto.MethodLeaderPing, old.Marshal())
	if n.Leader() != "peer1" {
		t.Errorf("stale ping overwrote the leader")
	}
}

func TestNonRaftMethodNotHandled(t *testing.T) {
	n := freshNode("n0")
	if _, _, handled := n.HandleRPC("cp.RegisterFunction", nil); handled {
		t.Errorf("non-raft method claimed as handled")
	}
}

func TestMalformedPayloadsError(t *testing.T) {
	n := freshNode("n0")
	if _, err, handled := n.HandleRPC(proto.MethodRequestVote, []byte{0x01}); !handled || err == nil {
		t.Errorf("malformed vote request: handled=%v err=%v", handled, err)
	}
	if _, err, handled := n.HandleRPC(proto.MethodLeaderPing, []byte{0x01}); !handled || err == nil {
		t.Errorf("malformed ping: handled=%v err=%v", handled, err)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	tr := transport.NewInProc()
	n := NewNode(Config{ID: "solo", Peers: []string{"solo"}, Transport: tr})
	ln, err := tr.Listen("solo", func(method string, payload []byte) ([]byte, error) {
		resp, err, _ := n.HandleRPC(method, payload)
		return resp, err
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.Start()
	n.Start() // second start is a no-op
	n.Stop()
	n.Stop() // second stop is a no-op
}
