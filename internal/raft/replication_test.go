package raft

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// applyRecorder collects the batches a node's Apply callback delivers.
type applyRecorder struct {
	mu      sync.Mutex
	batches [][][]byte
}

func (r *applyRecorder) apply(batch [][]byte) {
	cp := make([][]byte, len(batch))
	for i, b := range batch {
		cp[i] = append([]byte(nil), b...)
	}
	r.mu.Lock()
	r.batches = append(r.batches, cp)
	r.mu.Unlock()
}

// flat returns the applied entries in order, skipping the empty
// leadership no-ops.
func (r *applyRecorder) flat() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, batch := range r.batches {
		for _, b := range batch {
			if len(b) > 0 {
				out = append(out, string(b))
			}
		}
	}
	return out
}

// replCluster is a live raft group whose nodes apply to recorders and
// whose members can be crashed and revived (fresh node, empty log — the
// control plane restart semantics).
type replCluster struct {
	t     *testing.T
	tr    *transport.InProc
	peers []string

	mu        sync.Mutex // guards the slot slices against crash/revive races
	nodes     []*Node
	recorders []*applyRecorder
	listeners []transport.Listener
}

// snapshot returns the current live nodes (nil slots skipped).
func (rc *replCluster) snapshot() []*Node {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var out []*Node
	for _, n := range rc.nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// crash stops slot i and unplugs its endpoint.
func (rc *replCluster) crash(i int) {
	rc.mu.Lock()
	n, ln := rc.nodes[i], rc.listeners[i]
	rc.nodes[i] = nil
	rc.mu.Unlock()
	n.Stop()
	ln.Close()
}

func newReplCluster(t *testing.T, n int) *replCluster {
	t.Helper()
	rc := &replCluster{t: t, tr: transport.NewInProc()}
	for i := 0; i < n; i++ {
		rc.peers = append(rc.peers, fmt.Sprintf("repl-%d", i))
	}
	rc.nodes = make([]*Node, n)
	rc.recorders = make([]*applyRecorder, n)
	rc.listeners = make([]transport.Listener, n)
	for i := 0; i < n; i++ {
		rc.startNode(i, false)
	}
	t.Cleanup(func() {
		rc.mu.Lock()
		nodes := append([]*Node(nil), rc.nodes...)
		lns := append([]transport.Listener(nil), rc.listeners...)
		rc.mu.Unlock()
		for i := range nodes {
			if nodes[i] != nil {
				nodes[i].Stop()
			}
			lns[i].Close()
		}
	})
	return rc
}

// startNode (re)creates slot i with a fresh node and recorder and plugs
// it into the transport. rejoin is false at cluster boot and true when
// reviving a crashed node: a revived node lost its vote state with its
// log, so it must withhold votes until caught up (see Config.Rejoin).
func (rc *replCluster) startNode(i int, rejoin bool) {
	rc.t.Helper()
	rec := &applyRecorder{}
	node := NewNode(Config{
		ID:        rc.peers[i],
		Peers:     rc.peers,
		Transport: rc.tr,
		Apply:     rec.apply,
		Rejoin:    rejoin,
	})
	ln, err := rc.tr.Listen(rc.peers[i], func(method string, payload []byte) ([]byte, error) {
		resp, err, handled := node.HandleRPC(method, payload)
		if !handled {
			return nil, fmt.Errorf("unhandled method %q", method)
		}
		return resp, err
	})
	if err != nil {
		rc.t.Fatalf("listen %s: %v", rc.peers[i], err)
	}
	rc.mu.Lock()
	rc.nodes[i] = node
	rc.recorders[i] = rec
	rc.listeners[i] = ln
	rc.mu.Unlock()
	node.Start()
}

func (rc *replCluster) leader(timeout time.Duration) *Node {
	rc.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range rc.snapshot() {
			if n.IsLeader() {
				return n
			}
		}
		time.Sleep(time.Millisecond)
	}
	rc.t.Fatalf("no leader within %v", timeout)
	return nil
}

// propose retries data against whichever node currently leads until it
// commits or the deadline passes.
func (rc *replCluster) propose(data string, timeout time.Duration) {
	rc.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range rc.snapshot() {
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			err := n.Propose(ctx, []byte(data))
			cancel()
			if err == nil {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	rc.t.Fatalf("propose %q never committed within %v", data, timeout)
}

// awaitApplied waits until node i has applied want entries (no-ops
// excluded).
func (rc *replCluster) awaitApplied(i int, want []string, timeout time.Duration) {
	rc.t.Helper()
	rc.mu.Lock()
	rec := rc.recorders[i]
	rc.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		got := rec.flat()
		if len(got) >= len(want) {
			for j, w := range want {
				if got[j] != w {
					rc.t.Fatalf("node %d applied[%d] = %q, want %q (full: %v)", i, j, got[j], w, got)
				}
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	rc.t.Fatalf("node %d applied %v within %v, want %v", i, rec.flat(), timeout, want)
}

// TestQuorumCommitReplicatesToAll proposes through the leader and checks
// every replica applies the same entries in the same order.
func TestQuorumCommitReplicatesToAll(t *testing.T) {
	rc := newReplCluster(t, 3)
	rc.leader(5 * time.Second)
	want := []string{"a", "b", "c", "d", "e"}
	for _, d := range want {
		rc.propose(d, 5*time.Second)
	}
	for i := range rc.nodes {
		rc.awaitApplied(i, want, 5*time.Second)
	}
}

// TestProposeOnFollowerRejected verifies the redirect contract: only the
// leader accepts proposals.
func TestProposeOnFollowerRejected(t *testing.T) {
	rc := newReplCluster(t, 3)
	lead := rc.leader(5 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for _, n := range rc.nodes {
		if n == lead {
			continue
		}
		if err := n.Propose(ctx, []byte("x")); err != ErrNotLeader {
			t.Fatalf("follower Propose error = %v, want ErrNotLeader", err)
		}
	}
}

// TestFollowerCatchUpAfterCrash replays the control plane restart
// semantics: a follower crashes, the survivors commit entries at quorum,
// and the revived replica (fresh node, empty log) catches up from the
// leader's backtracking replicator — full log re-ship from index 1.
func TestFollowerCatchUpAfterCrash(t *testing.T) {
	rc := newReplCluster(t, 3)
	lead := rc.leader(5 * time.Second)

	victim := -1
	for i, n := range rc.nodes {
		if n != lead {
			victim = i
			break
		}
	}
	rc.crash(victim)

	want := []string{"w1", "w2", "w3", "w4"}
	for _, d := range want {
		rc.propose(d, 5*time.Second) // quorum = the two survivors
	}

	rc.startNode(victim, true) // fresh node, empty log
	rc.awaitApplied(victim, want, 5*time.Second)
}

// TestLeaderCrashRecoversFromAppliedLog kills the leader mid-stream; the
// new leader must already hold every committed entry (election
// restriction) and keep accepting writes, and the revived old leader
// catches up behind it.
func TestLeaderCrashRecoversFromAppliedLog(t *testing.T) {
	rc := newReplCluster(t, 3)
	lead := rc.leader(5 * time.Second)
	pre := []string{"p1", "p2", "p3"}
	for _, d := range pre {
		rc.propose(d, 5*time.Second)
	}

	killed := -1
	for i, n := range rc.nodes {
		if n == lead {
			killed = i
			break
		}
	}
	rc.crash(killed)

	post := []string{"p4", "p5"}
	for _, d := range post {
		rc.propose(d, 10*time.Second)
	}

	rc.startNode(killed, true)
	want := append(append([]string{}, pre...), post...)
	for i := range rc.nodes {
		rc.awaitApplied(i, want, 5*time.Second)
	}
}

// virtualFollower builds an unstarted-election follower: a started node
// on a virtual clock that is never advanced, so it times out never and
// processes exactly the RPCs the test feeds it.
func virtualFollower(t *testing.T) (*Node, *applyRecorder, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(time.Unix(0, 0))
	rec := &applyRecorder{}
	n := NewNode(Config{
		ID:        "vf",
		Peers:     []string{"vf", "vl"},
		Transport: transport.NewInProc(),
		Apply:     rec.apply,
		Clock:     vc,
	})
	n.Start()
	t.Cleanup(n.Stop)
	return n, rec, vc
}

func sendAppend(t *testing.T, n *Node, req *proto.AppendEntriesRequest) *proto.AppendEntriesResponse {
	t.Helper()
	respB, err, handled := n.HandleRPC(proto.MethodAppendEntries, req.Marshal())
	if !handled || err != nil {
		t.Fatalf("AppendEntries: handled=%v err=%v", handled, err)
	}
	resp, err := proto.UnmarshalAppendEntriesResponse(respB)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp
}

func entries(term uint64, data ...string) []proto.LogEntry {
	out := make([]proto.LogEntry, len(data))
	for i, d := range data {
		out[i] = proto.LogEntry{Term: term, Data: []byte(d)}
	}
	return out
}

// TestTermChangeTruncation drives the log-matching protocol directly: a
// new leader's conflicting suffix replaces uncommitted entries, but a
// batch that would truncate below the follower's commit index is refused.
func TestTermChangeTruncation(t *testing.T) {
	n, rec, _ := virtualFollower(t)

	// Leader L1 (term 1) ships [a b c].
	resp := sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 1, Leader: "vl", Entries: entries(1, "a", "b", "c"),
	})
	if !resp.Success || resp.MatchIndex != 3 {
		t.Fatalf("initial append: %+v", resp)
	}

	// L2 (term 2) took over after index 1 and ships a conflicting suffix:
	// [b' c'] anchored at prev=1. The follower truncates 2..3 and accepts.
	resp = sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 2, Leader: "vl", PrevIndex: 1, PrevTerm: 1, Entries: entries(2, "b2", "c2"),
	})
	if !resp.Success || resp.MatchIndex != 3 {
		t.Fatalf("conflicting append: %+v", resp)
	}

	// Commit everything and check the applied sequence reflects the
	// truncation, not the stale suffix.
	sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 2, Leader: "vl", PrevIndex: 3, PrevTerm: 2, CommitIndex: 3,
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		got := rec.flat()
		if len(got) == 3 {
			if got[0] != "a" || got[1] != "b2" || got[2] != "c2" {
				t.Fatalf("applied %v, want [a b2 c2]", got)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := rec.flat(); len(got) != 3 {
		t.Fatalf("applied %v, want 3 entries", got)
	}

	// A stale leader trying to rewrite committed entries must be refused:
	// the response reports the commit index as the safe re-anchor.
	resp = sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 3, Leader: "vl", PrevIndex: 1, PrevTerm: 99, Entries: entries(3, "x"),
	})
	if resp.Success {
		t.Fatalf("append truncating below commit succeeded: %+v", resp)
	}
	if _, commit, _ := n.Indexes(); resp.MatchIndex > commit {
		t.Fatalf("reject hint %d above commit %d", resp.MatchIndex, commit)
	}
}

// TestLogMatchingRejectAndBacktrack checks the gap case: a batch anchored
// past the follower's log is refused with the follower's log length as
// the backtracking hint.
func TestLogMatchingRejectAndBacktrack(t *testing.T) {
	n, _, _ := virtualFollower(t)
	sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 1, Leader: "vl", Entries: entries(1, "a"),
	})
	resp := sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 1, Leader: "vl", PrevIndex: 5, PrevTerm: 1, Entries: entries(1, "f"),
	})
	if resp.Success {
		t.Fatalf("append with log gap succeeded")
	}
	if resp.MatchIndex != 1 {
		t.Fatalf("backtrack hint = %d, want 1 (follower log length)", resp.MatchIndex)
	}
}

// TestBatchedApplyOrdering commits a burst in one advance and checks the
// apply callback sees every entry in log order, batched rather than one
// call per entry.
func TestBatchedApplyOrdering(t *testing.T) {
	n, rec, _ := virtualFollower(t)
	var data []string
	for i := 1; i <= 32; i++ {
		data = append(data, fmt.Sprintf("e%02d", i))
	}
	sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 1, Leader: "vl", Entries: entries(1, data...),
	})
	// One commit-index jump covers the whole burst.
	sendAppend(t, n, &proto.AppendEntriesRequest{
		Term: 1, Leader: "vl", PrevIndex: 32, PrevTerm: 1, CommitIndex: 32,
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(rec.flat()) == len(data) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got := rec.flat()
	if len(got) != len(data) {
		t.Fatalf("applied %d entries, want %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("applied[%d] = %q, want %q", i, got[i], data[i])
		}
	}
	rec.mu.Lock()
	batches := len(rec.batches)
	rec.mu.Unlock()
	if batches >= len(data) {
		t.Fatalf("%d apply calls for %d entries — apply is not batching", batches, len(data))
	}
}

// TestReadLeaseExpiry pins the follower-read gate: reads are allowed
// while the leader lease is fresh and refused after it lapses on the
// virtual clock.
func TestReadLeaseExpiry(t *testing.T) {
	n, _, vc := virtualFollower(t)
	sendAppend(t, n, &proto.AppendEntriesRequest{Term: 1, Leader: "vl"})
	if !n.ReadAllowed() {
		t.Fatalf("fresh follower should allow reads")
	}
	vc.Advance(time.Second) // far past the default lease
	if n.ReadAllowed() {
		t.Fatalf("stale follower should refuse reads")
	}
}

// TestStressWritesRacingElections hammers the group with concurrent
// proposals while the leader is repeatedly crashed and revived — run
// under -race in CI. Every acknowledged proposal must survive on the
// final leader in a single consistent order.
func TestStressWritesRacingElections(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	rc := newReplCluster(t, 3)
	rc.leader(5 * time.Second)

	var (
		ackMu sync.Mutex
		acked []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				data := fmt.Sprintf("w%d-%d", w, i)
				committed := false
				for !committed {
					select {
					case <-stop:
						return
					default:
					}
					for _, n := range rc.snapshot() {
						ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
						err := n.Propose(ctx, []byte(data))
						cancel()
						if err == nil {
							committed = true
							break
						}
					}
				}
				ackMu.Lock()
				acked = append(acked, data)
				ackMu.Unlock()
			}
		}(w)
	}

	// Crash/revive the leader a few times while the writers race.
	for round := 0; round < 3; round++ {
		time.Sleep(50 * time.Millisecond)
		lead := rc.leader(5 * time.Second)
		rc.mu.Lock()
		li := -1
		for i, n := range rc.nodes {
			if n == lead {
				li = i
			}
		}
		rc.mu.Unlock()
		if li < 0 {
			continue // leadership moved between lookup and crash
		}
		rc.crash(li)
		time.Sleep(30 * time.Millisecond)
		rc.startNode(li, true)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Settle: a final barrier proposal guarantees every acked write is
	// committed and applied on the current leader.
	rc.propose("sentinel", 10*time.Second)
	lead := rc.leader(5 * time.Second)
	rc.mu.Lock()
	var rec *applyRecorder
	for i, n := range rc.nodes {
		if n == lead {
			rec = rc.recorders[i]
		}
	}
	rc.mu.Unlock()
	if rec == nil {
		t.Fatalf("final leader not found in cluster slots")
	}
	deadline := time.Now().Add(10 * time.Second)
	var got []string
	for time.Now().Before(deadline) {
		got = rec.flat()
		if len(got) > 0 && got[len(got)-1] == "sentinel" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	have := make(map[string]int, len(got))
	for _, d := range got {
		have[d]++
	}
	ackMu.Lock()
	defer ackMu.Unlock()
	for _, d := range acked {
		if have[d] == 0 {
			t.Errorf("acked proposal %q missing from final leader's applied log", d)
		}
	}
}
