package raft

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/transport"
)

type testCluster struct {
	tr        *transport.InProc
	nodes     []*Node
	listeners []transport.Listener
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tr := transport.NewInProc()
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("raft-%d", i)
	}
	tc := &testCluster{tr: tr}
	for i := 0; i < n; i++ {
		node := NewNode(Config{
			ID:        peers[i],
			Peers:     peers,
			Transport: tr,
		})
		ln, err := tr.Listen(peers[i], func(method string, payload []byte) ([]byte, error) {
			resp, err, handled := node.HandleRPC(method, payload)
			if !handled {
				return nil, fmt.Errorf("unhandled method %q", method)
			}
			return resp, err
		})
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		tc.nodes = append(tc.nodes, node)
		tc.listeners = append(tc.listeners, ln)
	}
	for _, node := range tc.nodes {
		node.Start()
	}
	t.Cleanup(tc.stopAll)
	return tc
}

func (tc *testCluster) stopAll() {
	for i, node := range tc.nodes {
		node.Stop()
		tc.listeners[i].Close()
	}
}

func (tc *testCluster) leaders() []*Node {
	var out []*Node
	for _, n := range tc.nodes {
		if n.IsLeader() {
			out = append(out, n)
		}
	}
	return out
}

func (tc *testCluster) awaitLeader(t *testing.T, timeout time.Duration) *Node {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ls := tc.leaders(); len(ls) == 1 {
			return ls[0]
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no unique leader within %v (have %d)", timeout, len(tc.leaders()))
	return nil
}

func TestSingleLeaderElected(t *testing.T) {
	tc := newTestCluster(t, 3)
	leader := tc.awaitLeader(t, 5*time.Second)
	if leader.Term() == 0 {
		t.Errorf("leader term should be > 0")
	}
	// Leadership should be stable: wait and confirm the same leader.
	time.Sleep(100 * time.Millisecond)
	if ls := tc.leaders(); len(ls) != 1 || ls[0] != leader {
		t.Errorf("leadership not stable")
	}
}

func TestFollowersLearnLeader(t *testing.T) {
	tc := newTestCluster(t, 3)
	leader := tc.awaitLeader(t, 5*time.Second)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range tc.nodes {
			if n.Leader() != leader.cfg.ID {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("followers did not learn the leader's identity")
}

func TestFailoverElectsNewLeader(t *testing.T) {
	tc := newTestCluster(t, 3)
	old := tc.awaitLeader(t, 5*time.Second)
	// Crash the leader: stop its loop and unplug its endpoint.
	for i, n := range tc.nodes {
		if n == old {
			n.Stop()
			tc.listeners[i].Close()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range tc.nodes {
			if n != old && n.IsLeader() {
				if n.Term() <= old.Term() {
					t.Errorf("new leader term %d not greater than old %d", n.Term(), old.Term())
				}
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no new leader after failover")
}

func TestNoQuorumNoLeader(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.awaitLeader(t, 5*time.Second)
	// Kill two of three nodes: the survivor must not become leader.
	killed := 0
	var survivor *Node
	for i, n := range tc.nodes {
		if killed < 2 {
			n.Stop()
			tc.listeners[i].Close()
			killed++
		} else {
			survivor = n
		}
	}
	// Allow several election timeouts to elapse.
	time.Sleep(200 * time.Millisecond)
	if survivor.IsLeader() {
		t.Errorf("node without quorum became leader")
	}
}

// TestElectionSafetyUnderChurn property-checks the core Raft invariant: at
// most one leader per term, sampled repeatedly while elections churn.
func TestElectionSafetyUnderChurn(t *testing.T) {
	tc := newTestCluster(t, 5)
	type obs struct {
		term uint64
		id   string
	}
	leadersByTerm := make(map[uint64]map[string]bool)
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, n := range tc.nodes {
				if n.IsLeader() {
					mu.Lock()
					term := n.Term()
					if leadersByTerm[term] == nil {
						leadersByTerm[term] = make(map[string]bool)
					}
					leadersByTerm[term][n.cfg.ID] = true
					mu.Unlock()
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for term, ids := range leadersByTerm {
		if len(ids) > 1 {
			t.Errorf("term %d had %d leaders: %v", term, len(ids), ids)
		}
	}
	if len(leadersByTerm) == 0 {
		t.Errorf("never observed a leader")
	}
}

func TestLeaderChangeNotifications(t *testing.T) {
	tr := transport.NewInProc()
	peers := []string{"n0", "n1", "n2"}
	var mu sync.Mutex
	gained := make(map[string]int)
	var nodes []*Node
	var listeners []transport.Listener
	for _, id := range peers {
		id := id
		node := NewNode(Config{
			ID:        id,
			Peers:     peers,
			Transport: tr,
			OnLeaderChange: func(isLeader bool, _ uint64) {
				if isLeader {
					mu.Lock()
					gained[id]++
					mu.Unlock()
				}
			},
		})
		ln, err := tr.Listen(id, func(method string, payload []byte) ([]byte, error) {
			resp, err, _ := node.HandleRPC(method, payload)
			return resp, err
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		listeners = append(listeners, ln)
		node.Start()
	}
	defer func() {
		for i, n := range nodes {
			n.Stop()
			listeners[i].Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		total := 0
		for _, c := range gained {
			total += c
		}
		mu.Unlock()
		if total >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no leadership-gained notification delivered")
}

func TestStateString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Errorf("state strings wrong")
	}
	if State(42).String() != "unknown" {
		t.Errorf("unknown state string wrong")
	}
}
