// Package raft implements Raft leader election (Ongaro & Ousterhout,
// USENIX ATC'14) for Dirigent's control-plane high availability (paper §4:
// "Dirigent uses RAFT for control plane leader election"). Dirigent does
// not replicate a command log through Raft — cluster state flows through
// the replicated store instead — so this package implements the election
// subset: terms, randomized election timeouts, RequestVote, leader
// heartbeats, and step-down on observing a higher term.
package raft

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// State is a node's current role.
type State int

// Raft roles.
const (
	Follower State = iota
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "unknown"
	}
}

// Config parameterizes a Node.
type Config struct {
	// ID is this node's address; it must appear in Peers.
	ID string
	// Peers lists all replica addresses, including this node.
	Peers []string
	// Transport carries the vote and heartbeat RPCs.
	Transport transport.Transport
	// HeartbeatInterval is how often the leader pings followers.
	// The paper reports ~10 ms to detect a leader failure, elect a new
	// leader, and resynchronize (§5.4); the defaults are sized to match.
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// OnLeaderChange, if non-nil, is invoked (on a dedicated goroutine)
	// whenever this node gains or loses leadership.
	OnLeaderChange func(isLeader bool, term uint64)
	// Rand provides the election-timeout jitter; nil selects a default
	// source seeded from the node ID for reproducibility.
	Rand *rand.Rand
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = 2 * time.Millisecond
	}
	if out.ElectionTimeoutMin == 0 {
		out.ElectionTimeoutMin = 8 * time.Millisecond
	}
	if out.ElectionTimeoutMax == 0 {
		out.ElectionTimeoutMax = 16 * time.Millisecond
	}
	if out.Rand == nil {
		var seed int64 = 1
		for _, b := range []byte(out.ID) {
			seed = seed*131 + int64(b)
		}
		out.Rand = rand.New(rand.NewSource(seed))
	}
	return out
}

// Node is one Raft participant.
type Node struct {
	cfg Config

	mu          sync.Mutex
	state       State
	term        uint64
	votedFor    string
	leader      string
	lastContact time.Time

	stopCh  chan struct{}
	doneCh  chan struct{}
	notify  chan leadership
	started bool
}

type leadership struct {
	isLeader bool
	term     uint64
}

// NewNode creates a Node; call Start to begin participating.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg:    cfg.withDefaults(),
		state:  Follower,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		notify: make(chan leadership, 16),
	}
}

// HandleRPC serves the Raft-owned methods; the control plane multiplexes
// it into its main RPC handler. It returns false if the method is not a
// Raft method.
func (n *Node) HandleRPC(method string, payload []byte) ([]byte, error, bool) {
	switch method {
	case proto.MethodRequestVote:
		req, err := proto.UnmarshalVoteRequest(payload)
		if err != nil {
			return nil, err, true
		}
		resp := n.onRequestVote(req)
		return resp.Marshal(), nil, true
	case proto.MethodLeaderPing:
		req, err := proto.UnmarshalLeaderPing(payload)
		if err != nil {
			return nil, err, true
		}
		n.onLeaderPing(req)
		return nil, nil, true
	default:
		return nil, nil, false
	}
}

// Start launches the election loop.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.lastContact = time.Now()
	n.mu.Unlock()
	go n.notifyLoop()
	go n.run()
}

// Stop terminates the node. It does not notify peers; failure detection is
// timeout-based, as when a process crashes.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	n.mu.Unlock()
	close(n.stopCh)
	<-n.doneCh
	close(n.notify)
}

// IsLeader reports whether this node currently believes it is the leader.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state == Leader
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Leader returns the address of the last known leader ("" if unknown).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// State returns the node's current role.
func (n *Node) State() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

func (n *Node) notifyLoop() {
	for l := range n.notify {
		if n.cfg.OnLeaderChange != nil {
			n.cfg.OnLeaderChange(l.isLeader, l.term)
		}
	}
}

func (n *Node) electionTimeout() time.Duration {
	min, max := n.cfg.ElectionTimeoutMin, n.cfg.ElectionTimeoutMax
	if max <= min {
		return min
	}
	return min + time.Duration(n.cfg.Rand.Int63n(int64(max-min)))
}

func (n *Node) run() {
	defer close(n.doneCh)
	timeout := n.electionTimeout()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			n.stepDownLocked()
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		state := n.state
		sinceContact := time.Since(n.lastContact)
		n.mu.Unlock()
		switch state {
		case Leader:
			n.broadcastHeartbeat()
		case Follower, Candidate:
			if sinceContact >= timeout {
				n.runElection()
				timeout = n.electionTimeout()
			}
		}
	}
}

func (n *Node) stepDownLocked() {
	n.mu.Lock()
	wasLeader := n.state == Leader
	term := n.term
	n.state = Follower
	n.mu.Unlock()
	if wasLeader {
		n.sendNotify(false, term)
	}
}

func (n *Node) sendNotify(isLeader bool, term uint64) {
	select {
	case n.notify <- leadership{isLeader: isLeader, term: term}:
	default:
		// A slow observer must not block elections; drop stale events.
	}
}

func (n *Node) runElection() {
	n.mu.Lock()
	n.state = Candidate
	n.term++
	term := n.term
	n.votedFor = n.cfg.ID
	n.lastContact = time.Now()
	n.mu.Unlock()

	req := proto.VoteRequest{Term: term, Candidate: n.cfg.ID}
	payload := req.Marshal()
	votes := 1 // self-vote
	var votesMu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range n.cfg.Peers {
		if peer == n.cfg.ID {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeoutMax)
			defer cancel()
			respB, err := n.cfg.Transport.Call(ctx, peer, proto.MethodRequestVote, payload)
			if err != nil {
				return
			}
			resp, err := proto.UnmarshalVoteResponse(respB)
			if err != nil {
				return
			}
			if resp.Term > term {
				n.observeTerm(resp.Term)
				return
			}
			if resp.Granted {
				votesMu.Lock()
				votes++
				votesMu.Unlock()
			}
		}(peer)
	}
	wg.Wait()

	n.mu.Lock()
	if n.state != Candidate || n.term != term {
		n.mu.Unlock()
		return
	}
	if votes*2 > len(n.cfg.Peers) {
		n.state = Leader
		n.leader = n.cfg.ID
		n.mu.Unlock()
		n.sendNotify(true, term)
		n.broadcastHeartbeat()
		return
	}
	n.mu.Unlock()
}

func (n *Node) observeTerm(term uint64) {
	n.mu.Lock()
	if term <= n.term {
		n.mu.Unlock()
		return
	}
	wasLeader := n.state == Leader
	oldTerm := n.term
	n.term = term
	n.state = Follower
	n.votedFor = ""
	n.mu.Unlock()
	if wasLeader {
		n.sendNotify(false, oldTerm)
	}
}

func (n *Node) broadcastHeartbeat() {
	n.mu.Lock()
	if n.state != Leader {
		n.mu.Unlock()
		return
	}
	term := n.term
	n.mu.Unlock()
	ping := proto.LeaderPing{Term: term, Leader: n.cfg.ID}
	payload := ping.Marshal()
	for _, peer := range n.cfg.Peers {
		if peer == n.cfg.ID {
			continue
		}
		go func(peer string) {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HeartbeatInterval*4)
			defer cancel()
			// Best effort: unreachable followers are retried next tick.
			_, _ = n.cfg.Transport.Call(ctx, peer, proto.MethodLeaderPing, payload)
		}(peer)
	}
}

func (n *Node) onRequestVote(req *proto.VoteRequest) proto.VoteResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Term < n.term {
		return proto.VoteResponse{Term: n.term, Granted: false}
	}
	if req.Term > n.term {
		if n.state == Leader {
			defer n.sendNotify(false, n.term)
		}
		n.term = req.Term
		n.state = Follower
		n.votedFor = ""
	}
	if n.votedFor == "" || n.votedFor == req.Candidate {
		n.votedFor = req.Candidate
		n.lastContact = time.Now()
		return proto.VoteResponse{Term: n.term, Granted: true}
	}
	return proto.VoteResponse{Term: n.term, Granted: false}
}

func (n *Node) onLeaderPing(ping *proto.LeaderPing) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ping.Term < n.term {
		return
	}
	if ping.Term > n.term || n.state != Follower {
		if n.state == Leader && ping.Leader != n.cfg.ID {
			defer n.sendNotify(false, n.term)
		}
		n.term = ping.Term
		n.state = Follower
		n.votedFor = ""
	}
	n.leader = ping.Leader
	n.lastContact = time.Now()
}
