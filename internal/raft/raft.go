// Package raft implements Raft (Ongaro & Ousterhout, USENIX ATC'14) for
// Dirigent's control-plane high availability (paper §4: "Dirigent uses
// RAFT for control plane leader election"). Beyond leader election (terms,
// randomized election timeouts, RequestVote, step-down on observing a
// higher term), the package replicates a command log: opaque entries —
// Dirigent ships marshaled store ops — flow from the leader to followers
// in pipelined, group-committed AppendEntries batches. The replication
// mirrors wal.FsyncGroup's leader-elected-flusher pattern on the wire:
// every proposal accepted while a replication RPC is in flight rides the
// next batch, so N concurrent control-plane writes cost one quorum round
// trip amortized across the batch, not one per write. The commit index
// advances on quorum acknowledgment and committed entries are handed to
// the Apply callback in order, in batches.
package raft

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// ErrNotLeader is returned by Propose on a non-leader replica, or when
// leadership was lost before the proposal committed. Callers redirect to
// the current leader (see Node.Leader) and retry.
var ErrNotLeader = errors.New("raft: not leader")

// ErrStopped is returned by Propose when the node shut down mid-wait.
var ErrStopped = errors.New("raft: node stopped")

// State is a node's current role.
type State int

// Raft roles.
const (
	Follower State = iota
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "unknown"
	}
}

// Config parameterizes a Node.
type Config struct {
	// ID is this node's address; it must appear in Peers.
	ID string
	// Peers lists all replica addresses, including this node.
	Peers []string
	// Transport carries the vote, heartbeat, and replication RPCs.
	Transport transport.Transport
	// HeartbeatInterval is how often the leader contacts idle followers
	// (an empty AppendEntries doubles as the heartbeat).
	// The paper reports ~10 ms to detect a leader failure, elect a new
	// leader, and resynchronize (§5.4); the defaults are sized to match.
	HeartbeatInterval time.Duration
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// OnLeaderChange, if non-nil, is invoked (on a dedicated goroutine)
	// whenever this node gains or loses leadership.
	OnLeaderChange func(isLeader bool, term uint64)
	// Apply, if non-nil, receives committed log entries in log order.
	// Entries are delivered in batches (all entries committed since the
	// last delivery), once each, on a single goroutine. Zero-length
	// entries are internal barriers and are delivered too; appliers
	// should skip them.
	Apply func(batch [][]byte)
	// ReadLease bounds follower-read staleness: a follower vouches for
	// its applied state only while it heard from the leader within the
	// lease. 0 selects ElectionTimeoutMin — a follower inside that window
	// cannot have slept through a completed leader change.
	ReadLease time.Duration
	// MaxAppendBatch caps entries per AppendEntries RPC (catch-up after a
	// partition ships in chunks). 0 selects the default (1024).
	MaxAppendBatch int
	// Rejoin marks a node that restarts into an established group after
	// losing its state (log, term, vote — nothing is persisted). Such a
	// node withholds votes until its log has caught up to a leader's
	// commit index: having forgotten who it voted for and which entries
	// it acknowledged, granting a vote early could elect a candidate
	// that misses committed entries (the quorum-intersection argument
	// normally rests on durable vote state). Leave false on first boot —
	// a fresh cluster where every node withheld votes would never elect
	// anyone.
	Rejoin bool
	// Rand provides the election-timeout jitter; nil selects a default
	// source seeded from the node ID for reproducibility.
	Rand *rand.Rand
	// Clock abstracts time for the election and heartbeat loops; nil
	// selects the wall clock. Tests drive a clock.Virtual.
	Clock clock.Clock
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = 2 * time.Millisecond
	}
	if out.ElectionTimeoutMin == 0 {
		out.ElectionTimeoutMin = 8 * time.Millisecond
	}
	if out.ElectionTimeoutMax == 0 {
		out.ElectionTimeoutMax = 16 * time.Millisecond
	}
	if out.ReadLease == 0 {
		out.ReadLease = out.ElectionTimeoutMin
	}
	if out.MaxAppendBatch <= 0 {
		out.MaxAppendBatch = 1024
	}
	if out.Rand == nil {
		var seed int64 = 1
		for _, b := range []byte(out.ID) {
			seed = seed*131 + int64(b)
		}
		out.Rand = rand.New(rand.NewSource(seed))
	}
	if out.Clock == nil {
		out.Clock = clock.NewReal()
	}
	return out
}

// Node is one Raft participant.
type Node struct {
	cfg Config
	clk clock.Clock

	mu          sync.Mutex
	state       State
	term        uint64
	votedFor    string
	leader      string
	lastContact time.Time
	// voteHeld suppresses vote grants (and campaigns) on a rejoining
	// node until it has caught up to a leader's commit index; see
	// Config.Rejoin.
	voteHeld bool

	// Replicated log. log[i] holds the entry at Raft index i+1; the log
	// is kept whole (no snapshotting), so a revived replica catches up
	// from index 1.
	log         []proto.LogEntry
	commitIndex uint64
	lastApplied uint64

	// Leader-only replication bookkeeping.
	next  map[string]uint64
	match map[string]uint64
	// replStop is closed on step-down so this term's replicators exit;
	// nil while not leader.
	replStop chan struct{}
	// replNotify signals each peer's replicator that new entries await
	// (capacity 1 — a pending signal covers any number of proposals).
	replNotify map[string]chan struct{}

	// appliedCh is closed and remade whenever Propose waiters should
	// recheck (apply progress, term change, leadership loss).
	appliedCh chan struct{}

	// applyNotify wakes the apply loop when commitIndex advances.
	applyNotify chan struct{}

	// Replication batch telemetry: non-empty AppendEntries rounds sent
	// and entries they carried; entries/rounds is the mean wire batch —
	// the on-the-wire analogue of wal group-commit stats.
	statRounds  atomic.Uint64
	statEntries atomic.Uint64

	stopCh  chan struct{}
	wg      sync.WaitGroup
	notify  chan leadership
	started bool
}

type leadership struct {
	isLeader bool
	term     uint64
}

// NewNode creates a Node; call Start to begin participating.
func NewNode(cfg Config) *Node {
	c := cfg.withDefaults()
	return &Node{
		cfg:         c,
		clk:         c.Clock,
		state:       Follower,
		voteHeld:    c.Rejoin,
		appliedCh:   make(chan struct{}),
		applyNotify: make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
		notify:      make(chan leadership, 16),
	}
}

// HandleRPC serves the Raft-owned methods; the control plane multiplexes
// it into its main RPC handler. It returns false if the method is not a
// Raft method.
func (n *Node) HandleRPC(method string, payload []byte) ([]byte, error, bool) {
	switch method {
	case proto.MethodRequestVote:
		req, err := proto.UnmarshalVoteRequest(payload)
		if err != nil {
			return nil, err, true
		}
		resp := n.onRequestVote(req)
		return resp.Marshal(), nil, true
	case proto.MethodLeaderPing:
		req, err := proto.UnmarshalLeaderPing(payload)
		if err != nil {
			return nil, err, true
		}
		n.onLeaderPing(req)
		return nil, nil, true
	case proto.MethodAppendEntries:
		req, err := proto.UnmarshalAppendEntriesRequest(payload)
		if err != nil {
			return nil, err, true
		}
		resp := n.onAppendEntries(req)
		return resp.Marshal(), nil, true
	default:
		return nil, nil, false
	}
}

// Start launches the election and apply loops.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.lastContact = n.clk.Now()
	n.mu.Unlock()
	n.wg.Add(3)
	go n.notifyLoop()
	go n.applyLoop()
	go n.run()
}

// Stop terminates the node. It does not notify peers; failure detection is
// timeout-based, as when a process crashes.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	wasLeader := n.state == Leader
	term := n.term
	n.state = Follower
	n.stopReplicatorsLocked()
	n.wakeWaitersLocked()
	n.mu.Unlock()
	close(n.stopCh)
	n.wg.Wait()
	if wasLeader && n.cfg.OnLeaderChange != nil {
		// Deliver the loss synchronously: the notify loop is gone and the
		// embedding control plane is mid-shutdown.
		n.cfg.OnLeaderChange(false, term)
	}
}

// IsLeader reports whether this node currently believes it is the leader.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state == Leader
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Leader returns the address of the last known leader ("" if unknown).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// State returns the node's current role.
func (n *Node) State() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// ReadAllowed reports whether this replica may serve a bounded-staleness
// read from its applied state: leaders always may; a follower only while
// its leader lease is fresh (it heard an AppendEntries within ReadLease,
// so no leader change can have completed behind its back).
func (n *Node) ReadAllowed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == Leader {
		return true
	}
	return n.leader != "" && n.clk.Since(n.lastContact) <= n.cfg.ReadLease
}

// Indexes reports the node's log positions (last log index, commit index,
// last applied), for tests and telemetry.
func (n *Node) Indexes() (lastLog, commit, applied uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return uint64(len(n.log)), n.commitIndex, n.lastApplied
}

// ReplStats reports the number of non-empty AppendEntries rounds this
// leader has sent and the entries they carried; entries/rounds is the mean
// replication batch size (>1 means concurrent proposals shared rounds).
func (n *Node) ReplStats() (rounds, entries uint64) {
	return n.statRounds.Load(), n.statEntries.Load()
}

// Propose appends data to the replicated log and blocks until the entry is
// committed (replicated to a quorum) and applied locally, so a successful
// return guarantees both durability across a minority of failures and
// read-your-write visibility in the local applied state. Concurrent
// proposals coalesce into shared AppendEntries batches. Returns
// ErrNotLeader if this node is not (or stops being) the leader before the
// entry commits.
func (n *Node) Propose(ctx context.Context, data []byte) error {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return ErrStopped
	}
	if n.state != Leader {
		n.mu.Unlock()
		return ErrNotLeader
	}
	term := n.term
	n.log = append(n.log, proto.LogEntry{Term: term, Data: data})
	idx := uint64(len(n.log))
	if len(n.cfg.Peers) <= 1 {
		n.advanceCommitLocked(idx)
	}
	n.signalReplicatorsLocked()
	n.mu.Unlock()

	for {
		n.mu.Lock()
		if n.lastApplied >= idx {
			// Applied — but only our entry if no truncation replaced it
			// (impossible while we stayed leader, cheap to verify).
			ok := uint64(len(n.log)) >= idx && n.log[idx-1].Term == term
			n.mu.Unlock()
			if !ok {
				return ErrNotLeader
			}
			return nil
		}
		if n.state != Leader || n.term != term {
			n.mu.Unlock()
			return ErrNotLeader
		}
		ch := n.appliedCh
		n.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-n.stopCh:
			return ErrStopped
		}
	}
}

// Barrier proposes an empty entry and waits for it to commit and apply:
// afterwards the local applied state reflects every write any previous
// leader acknowledged. A freshly elected leader runs this before reading
// its own store during recovery.
func (n *Node) Barrier(ctx context.Context) error {
	return n.Propose(ctx, nil)
}

func (n *Node) notifyLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case l := <-n.notify:
			if n.cfg.OnLeaderChange != nil {
				n.cfg.OnLeaderChange(l.isLeader, l.term)
			}
		}
	}
}

func (n *Node) sendNotify(isLeader bool, term uint64) {
	select {
	case n.notify <- leadership{isLeader: isLeader, term: term}:
	default:
		// A slow observer must not block elections; drop stale events.
	}
}

// wakeWaitersLocked re-arms appliedCh so every Propose waiter rechecks its
// condition. Called under mu on apply progress and on any term or
// leadership change.
func (n *Node) wakeWaitersLocked() {
	close(n.appliedCh)
	n.appliedCh = make(chan struct{})
}

func (n *Node) signalApplyLocked() {
	select {
	case n.applyNotify <- struct{}{}:
	default:
	}
}

// advanceCommitLocked raises commitIndex to idx (which must already be
// quorum-replicated and term-checked by the caller) and wakes the applier.
func (n *Node) advanceCommitLocked(idx uint64) {
	if idx > n.commitIndex {
		n.commitIndex = idx
		n.signalApplyLocked()
	}
}

// applyLoop delivers committed entries to cfg.Apply in order, in batches:
// one delivery covers everything committed since the previous one, so a
// follower absorbing a large catch-up applies it in few calls.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.applyNotify:
		}
		for {
			n.mu.Lock()
			if n.lastApplied >= n.commitIndex {
				n.mu.Unlock()
				break
			}
			from := n.lastApplied
			batch := make([][]byte, 0, n.commitIndex-from)
			for i := from; i < n.commitIndex; i++ {
				batch = append(batch, n.log[i].Data)
			}
			n.mu.Unlock()
			// Committed entries are never truncated, so applying outside
			// the lock is safe and keeps replication flowing during slow
			// applies.
			if n.cfg.Apply != nil {
				n.cfg.Apply(batch)
			}
			n.mu.Lock()
			n.lastApplied = from + uint64(len(batch))
			n.wakeWaitersLocked()
			n.mu.Unlock()
		}
	}
}

// electionTimeout draws a randomized timeout from the configured range,
// widened 2x per consecutive failed election (capped at 16x). The backoff
// is the split-vote breaker on starved schedulers: when CPU contention
// delays both candidates' loops by more than the whole base range, the
// configured jitter no longer separates them and they campaign in
// lockstep, splitting the vote term after term. Growing the random range
// until it dwarfs the scheduling quantum restores the asymmetry Raft's
// randomized timeouts rely on.
func (n *Node) electionTimeout(failures int) time.Duration {
	min, max := n.cfg.ElectionTimeoutMin, n.cfg.ElectionTimeoutMax
	if failures > 4 {
		failures = 4
	}
	scale := time.Duration(1) << failures
	if max <= min {
		return min * scale
	}
	return min + time.Duration(n.cfg.Rand.Int63n(int64((max-min)*scale)))
}

func (n *Node) run() {
	defer n.wg.Done()
	failures := 0
	timeout := n.electionTimeout(failures)
	tick := n.cfg.HeartbeatInterval / 2
	if tick <= 0 {
		tick = n.cfg.HeartbeatInterval
	}
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.clk.After(tick):
		}
		n.mu.Lock()
		state := n.state
		sinceContact := n.clk.Since(n.lastContact)
		n.mu.Unlock()
		// Leaders heartbeat through their replicators; followers and
		// candidates watch for election timeout.
		switch {
		case state == Leader:
			failures = 0
		case sinceContact >= timeout:
			if n.runElection() {
				failures = 0
			} else {
				failures++
			}
			timeout = n.electionTimeout(failures)
		case sinceContact < n.cfg.ElectionTimeoutMin:
			// Fresh leader contact: the cluster is healthy, so the next
			// election (whenever it comes) starts from the base range.
			failures = 0
		}
	}
}

// runElection campaigns for leadership, reporting whether it won.
func (n *Node) runElection() bool {
	n.mu.Lock()
	// A rejoining node campaigns only after catching up: its empty log
	// cannot win, and the term inflation would depose a healthy leader.
	if n.voteHeld {
		n.lastContact = n.clk.Now()
		n.mu.Unlock()
		return true // not a split vote; no backoff
	}
	n.state = Candidate
	n.term++
	term := n.term
	n.votedFor = n.cfg.ID
	n.lastContact = n.clk.Now()
	lastIdx := uint64(len(n.log))
	var lastTerm uint64
	if lastIdx > 0 {
		lastTerm = n.log[lastIdx-1].Term
	}
	n.mu.Unlock()

	req := proto.VoteRequest{
		Term: term, Candidate: n.cfg.ID,
		LastLogIndex: lastIdx, LastLogTerm: lastTerm,
	}
	payload := req.Marshal()
	votes := 1 // self-vote
	var votesMu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range n.cfg.Peers {
		if peer == n.cfg.ID {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeoutMax)
			defer cancel()
			respB, err := n.cfg.Transport.Call(ctx, peer, proto.MethodRequestVote, payload)
			if err != nil {
				return
			}
			resp, err := proto.UnmarshalVoteResponse(respB)
			if err != nil {
				return
			}
			if resp.Term > term {
				n.observeTerm(resp.Term)
				return
			}
			if resp.Granted {
				votesMu.Lock()
				votes++
				votesMu.Unlock()
			}
		}(peer)
	}
	wg.Wait()

	n.mu.Lock()
	if n.state != Candidate || n.term != term {
		n.mu.Unlock()
		return false
	}
	if votes*2 > len(n.cfg.Peers) {
		n.becomeLeaderLocked(term)
		n.mu.Unlock()
		n.sendNotify(true, term)
		return true
	}
	n.mu.Unlock()
	return false
}

// becomeLeaderLocked transitions to Leader: it initializes replication
// bookkeeping, appends a no-op entry (committing it commits every
// uncommitted entry from earlier terms — Raft only counts quorums for
// current-term entries), and launches one replicator per peer. The
// replicators' initial pass doubles as the victory heartbeat.
func (n *Node) becomeLeaderLocked(term uint64) {
	n.state = Leader
	n.leader = n.cfg.ID
	n.next = make(map[string]uint64, len(n.cfg.Peers))
	n.match = make(map[string]uint64, len(n.cfg.Peers))
	n.log = append(n.log, proto.LogEntry{Term: term})
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			n.next[p] = uint64(len(n.log))
		}
	}
	if len(n.cfg.Peers) <= 1 {
		n.advanceCommitLocked(uint64(len(n.log)))
	}
	n.replStop = make(chan struct{})
	n.replNotify = make(map[string]chan struct{}, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		ch := make(chan struct{}, 1)
		ch <- struct{}{} // replicate (at least a heartbeat) immediately
		n.replNotify[p] = ch
		n.wg.Add(1)
		go n.replicate(p, ch, n.replStop)
	}
}

// stopReplicatorsLocked retires the current term's replicators (no-op if
// not leading).
func (n *Node) stopReplicatorsLocked() {
	if n.replStop != nil {
		close(n.replStop)
		n.replStop = nil
		n.replNotify = nil
	}
}

func (n *Node) signalReplicatorsLocked() {
	for _, ch := range n.replNotify {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// replicate is one peer's replication loop while this node leads: it ships
// AppendEntries whenever proposals arrive (the group-committed fast path)
// and at every heartbeat interval otherwise (the liveness path), staying
// in a tight loop while the peer is behind so catch-up is pipelined.
func (n *Node) replicate(peer string, notify chan struct{}, stop chan struct{}) {
	defer n.wg.Done()
	for {
		select {
		case <-stop:
			return
		case <-n.stopCh:
			return
		case <-notify:
		case <-n.clk.After(n.cfg.HeartbeatInterval):
		}
		for n.appendOnce(peer) {
			select {
			case <-stop:
				return
			case <-n.stopCh:
				return
			default:
			}
		}
	}
}

// appendOnce sends one AppendEntries to peer, reporting whether the
// replicator should immediately send another (the peer is still behind, or
// the anchor moved after a rejection). Transport errors return false; the
// next heartbeat retries.
func (n *Node) appendOnce(peer string) bool {
	n.mu.Lock()
	if n.state != Leader {
		n.mu.Unlock()
		return false
	}
	term := n.term
	next := n.next[peer]
	if next == 0 {
		next = 1
	}
	prevIdx := next - 1
	var prevTerm uint64
	if prevIdx > 0 {
		prevTerm = n.log[prevIdx-1].Term
	}
	end := uint64(len(n.log))
	if cap := next - 1 + uint64(n.cfg.MaxAppendBatch); end > cap {
		end = cap
	}
	entries := make([]proto.LogEntry, end-(next-1))
	copy(entries, n.log[next-1:end])
	req := proto.AppendEntriesRequest{
		Term: term, Leader: n.cfg.ID,
		PrevIndex: prevIdx, PrevTerm: prevTerm,
		CommitIndex: n.commitIndex,
		Entries:     entries,
	}
	n.mu.Unlock()

	timeout := 4 * n.cfg.HeartbeatInterval
	if floor := 250 * time.Millisecond; timeout < floor {
		timeout = floor
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	respB, err := n.cfg.Transport.Call(ctx, peer, proto.MethodAppendEntries, req.Marshal())
	cancel()
	if err != nil {
		return false
	}
	resp, err := proto.UnmarshalAppendEntriesResponse(respB)
	if err != nil {
		return false
	}
	if resp.Term > term {
		n.observeTerm(resp.Term)
		return false
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state != Leader || n.term != term {
		return false
	}
	if resp.Success {
		m := prevIdx + uint64(len(entries))
		if m > n.match[peer] {
			n.match[peer] = m
		}
		if m+1 > n.next[peer] {
			n.next[peer] = m + 1
		}
		if len(entries) > 0 {
			n.statRounds.Add(1)
			n.statEntries.Add(uint64(len(entries)))
		}
		n.maybeCommitLocked()
		return uint64(len(n.log)) >= n.next[peer]
	}
	// Rejected: re-anchor at the follower's hint (its log length), never
	// forward of the current probe.
	reanchor := resp.MatchIndex + 1
	if reanchor > prevIdx {
		reanchor = prevIdx
	}
	if reanchor < 1 {
		reanchor = 1
	}
	n.next[peer] = reanchor
	return true
}

// maybeCommitLocked advances commitIndex to the highest index replicated
// on a quorum, counting only current-term entries (Raft's commit rule).
func (n *Node) maybeCommitLocked() {
	quorum := len(n.cfg.Peers)/2 + 1
	matches := make([]uint64, 0, len(n.cfg.Peers))
	matches = append(matches, uint64(len(n.log))) // self
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			matches = append(matches, n.match[p])
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[quorum-1]
	if candidate > n.commitIndex && candidate > 0 && n.log[candidate-1].Term == n.term {
		n.advanceCommitLocked(candidate)
		// Piggyback the new commit index on the next round promptly.
		n.signalReplicatorsLocked()
	}
}

func (n *Node) observeTerm(term uint64) {
	n.mu.Lock()
	if term <= n.term {
		n.mu.Unlock()
		return
	}
	wasLeader := n.state == Leader
	oldTerm := n.term
	n.term = term
	n.state = Follower
	n.votedFor = ""
	n.stopReplicatorsLocked()
	n.wakeWaitersLocked()
	n.mu.Unlock()
	if wasLeader {
		n.sendNotify(false, oldTerm)
	}
}

func (n *Node) onRequestVote(req *proto.VoteRequest) proto.VoteResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Term < n.term {
		return proto.VoteResponse{Term: n.term, Granted: false}
	}
	if req.Term > n.term {
		if n.state == Leader {
			defer n.sendNotify(false, n.term)
		}
		n.term = req.Term
		n.state = Follower
		n.votedFor = ""
		n.stopReplicatorsLocked()
		n.wakeWaitersLocked()
	}
	// A rejoining node has forgotten its log and its vote; until it
	// catches up to a leader's commit index it must not help elect
	// anyone (its empty log would approve any candidate, including one
	// missing committed entries).
	if n.voteHeld {
		return proto.VoteResponse{Term: n.term, Granted: false}
	}
	// Election restriction: refuse candidates whose log is behind ours —
	// a leader must already hold every committed entry.
	lastIdx := uint64(len(n.log))
	var lastTerm uint64
	if lastIdx > 0 {
		lastTerm = n.log[lastIdx-1].Term
	}
	upToDate := req.LastLogTerm > lastTerm ||
		(req.LastLogTerm == lastTerm && req.LastLogIndex >= lastIdx)
	if !upToDate {
		return proto.VoteResponse{Term: n.term, Granted: false}
	}
	if n.votedFor == "" || n.votedFor == req.Candidate {
		n.votedFor = req.Candidate
		n.lastContact = n.clk.Now()
		return proto.VoteResponse{Term: n.term, Granted: true}
	}
	return proto.VoteResponse{Term: n.term, Granted: false}
}

// onLeaderPing retains the legacy election-only heartbeat for mixed-mode
// callers; AppendEntries subsumes it for log-replicating clusters.
func (n *Node) onLeaderPing(ping *proto.LeaderPing) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ping.Term < n.term {
		return
	}
	if ping.Term > n.term || n.state != Follower {
		if n.state == Leader && ping.Leader != n.cfg.ID {
			defer n.sendNotify(false, n.term)
			n.stopReplicatorsLocked()
			n.wakeWaitersLocked()
		}
		n.term = ping.Term
		n.state = Follower
		n.votedFor = ""
	}
	n.leader = ping.Leader
	n.lastContact = n.clk.Now()
}

func (n *Node) onAppendEntries(req *proto.AppendEntriesRequest) proto.AppendEntriesResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Term < n.term {
		return proto.AppendEntriesResponse{Term: n.term, Success: false, MatchIndex: uint64(len(n.log))}
	}
	if req.Term > n.term || n.state != Follower {
		if n.state == Leader && req.Leader != n.cfg.ID {
			defer n.sendNotify(false, n.term)
		}
		n.stopReplicatorsLocked()
		n.wakeWaitersLocked()
		if req.Term > n.term {
			n.votedFor = ""
		}
		n.term = req.Term
		n.state = Follower
	}
	n.leader = req.Leader
	n.lastContact = n.clk.Now()

	// Log-matching check: the batch anchors at PrevIndex/PrevTerm.
	if req.PrevIndex > uint64(len(n.log)) ||
		(req.PrevIndex > 0 && n.log[req.PrevIndex-1].Term != req.PrevTerm) {
		hint := uint64(len(n.log))
		if req.PrevIndex > 0 && req.PrevIndex-1 < hint {
			hint = req.PrevIndex - 1
		}
		return proto.AppendEntriesResponse{Term: n.term, Success: false, MatchIndex: hint}
	}
	// Append, truncating any conflicting suffix from a deposed leader.
	idx := req.PrevIndex
	for i := range req.Entries {
		idx++
		if idx <= uint64(len(n.log)) {
			if n.log[idx-1].Term == req.Entries[i].Term {
				continue // already have it (retransmission)
			}
			if idx <= n.commitIndex {
				// A conflict below the commit index is impossible in a
				// correct cluster; refuse rather than corrupt.
				return proto.AppendEntriesResponse{Term: n.term, Success: false, MatchIndex: n.commitIndex}
			}
			n.log = n.log[:idx-1]
		}
		n.log = append(n.log, req.Entries[i])
	}
	matched := req.PrevIndex + uint64(len(req.Entries))
	if c := req.CommitIndex; c > n.commitIndex {
		if c > matched {
			c = matched
		}
		n.advanceCommitLocked(c)
	}
	// A rejoining node regains its vote once its log covers everything
	// the leader reports committed — from here on it behaves like any
	// follower that was merely slow.
	if n.voteHeld && matched >= req.CommitIndex {
		n.voteHeld = false
	}
	return proto.AppendEntriesResponse{Term: n.term, Success: true, MatchIndex: matched}
}
