package fleet

import (
	"fmt"
	"sync"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// Config parameterizes an emulated fleet.
type Config struct {
	// Size is the number of emulated workers (default 16).
	Size int
	// Transport carries RPCs for every worker.
	Transport transport.Transport
	// ControlPlanes are the CP replica addresses.
	ControlPlanes []string
	// Relays, when non-empty, puts the whole fleet in relay mode: worker
	// i's preference order is the relay list rotated by i, so workers
	// spread across relays (~Size/len(Relays) each) while every worker
	// still holds the full list for failover. Empty keeps the seed's
	// direct WN → CP liveness protocol.
	Relays []string
	// Loopback makes every worker listen on 127.0.0.1:0 (real TCP,
	// ports resolved at bind time). When false, workers use synthetic
	// in-process addresses in the 10.77.0.0/16 range.
	Loopback bool
	// Clock abstracts time for heartbeat pacing and ready delays.
	Clock clock.Clock
	// HeartbeatInterval is each worker's liveness period; very large
	// values park the loops so harnesses drive heartbeats explicitly.
	HeartbeatInterval time.Duration
	// ReadyDelay simulates per-sandbox creation latency.
	ReadyDelay time.Duration
	// BaseID is the first worker's node ID (default 1); IDs are
	// assigned sequentially from it.
	BaseID int
	// CPUMilli / MemoryMB are each worker's advertised capacity
	// (defaults sized so a 1k fleet absorbs any test burst).
	CPUMilli int
	MemoryMB int
	// Handler serves proxied invocations on every worker; nil echoes.
	Handler func(payload []byte) ([]byte, error)
	// HandlerFn serves proxied invocations with the function name
	// available; takes precedence over Handler (see WorkerConfig).
	HandlerFn func(function string, payload []byte) ([]byte, error)
	// Metrics is the registry shared by all workers; nil creates one.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 16
	}
	if c.BaseID <= 0 {
		c.BaseID = 1
	}
	if c.CPUMilli == 0 {
		c.CPUMilli = 1 << 20
	}
	if c.MemoryMB == 0 {
		c.MemoryMB = 1 << 20
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	return c
}

// Fleet is a set of emulated workers managed as one unit.
type Fleet struct {
	cfg     Config
	workers []*Worker
}

// New builds the fleet's workers without starting them.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg}
	for i := 0; i < cfg.Size; i++ {
		id := cfg.BaseID + i
		node := core.WorkerNode{
			ID:       core.NodeID(id),
			Name:     fmt.Sprintf("emu-w%d", id),
			CPUMilli: cfg.CPUMilli,
			MemoryMB: cfg.MemoryMB,
		}
		addr := "127.0.0.1:0"
		if !cfg.Loopback {
			// Synthetic /16: NodeID is 16 bits, so high/low byte
			// addressing stays collision-free up to a 65k fleet.
			node.IP = fmt.Sprintf("10.77.%d.%d", id/256, id%256)
			node.Port = 9000
			addr = fmt.Sprintf("%s:%d", node.IP, node.Port)
		}
		var relays []string
		if n := len(cfg.Relays); n > 0 {
			relays = make([]string, 0, n)
			for j := 0; j < n; j++ {
				relays = append(relays, cfg.Relays[(i+j)%n])
			}
		}
		f.workers = append(f.workers, NewWorker(WorkerConfig{
			Node:              node,
			Addr:              addr,
			Transport:         cfg.Transport,
			ControlPlanes:     cfg.ControlPlanes,
			Relays:            relays,
			Clock:             cfg.Clock,
			HeartbeatInterval: cfg.HeartbeatInterval,
			ReadyDelay:        cfg.ReadyDelay,
			Handler:           cfg.Handler,
			HandlerFn:         cfg.HandlerFn,
			Metrics:           cfg.Metrics,
		}))
	}
	return f
}

// Start launches every worker concurrently — a registration storm: all
// Size workers race their RegisterWorker RPCs against the control
// plane's registry at once. It returns the first start error, if any.
func (f *Fleet) Start() error {
	errs := make([]error, len(f.workers))
	var wg sync.WaitGroup
	for i, w := range f.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Start()
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Workers returns the fleet's workers in node-ID order.
func (f *Fleet) Workers() []*Worker { return f.workers }

// Size returns the number of workers in the fleet.
func (f *Fleet) Size() int { return len(f.workers) }

// SandboxCount sums emulated sandboxes across the fleet.
func (f *Fleet) SandboxCount() int {
	n := 0
	for _, w := range f.workers {
		n += w.SandboxCount()
	}
	return n
}

// Metrics returns the registry shared by all the fleet's workers.
func (f *Fleet) Metrics() *telemetry.Registry { return f.cfg.Metrics }

// StopFraction crashes the first ⌈frac·Size⌉ workers simultaneously — a
// correlated failure (rack or AZ loss). It returns the stopped workers;
// the control plane must detect them by heartbeat timeout and drain
// their endpoints.
func (f *Fleet) StopFraction(frac float64) []*Worker {
	n := int(float64(len(f.workers))*frac + 0.999999)
	if n > len(f.workers) {
		n = len(f.workers)
	}
	victims := f.workers[:n]
	var wg sync.WaitGroup
	for _, w := range victims {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			w.Stop()
		}(w)
	}
	wg.Wait()
	return victims
}

// Restart revives previously crashed workers as fresh incarnations on
// the same node identity and address — a rack coming back after a power
// loss. Each revival re-registers with the control plane, whose registry
// replaces the dead entry in place; sandboxes the old incarnation held
// are gone, so the next autoscale sweep re-places them. The restarted
// workers take the victims' slots in Workers().
func (f *Fleet) Restart(victims []*Worker) error {
	var firstErr error
	for _, v := range victims {
		nw := NewWorker(v.cfg)
		if err := nw.Start(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for i, w := range f.workers {
			if w == v {
				f.workers[i] = nw
				break
			}
		}
	}
	return firstErr
}

// Stop crashes every worker.
func (f *Fleet) Stop() {
	f.StopFraction(1)
}
