// Package fleet provides lightweight emulated worker nodes for
// fleet-scale control plane experiments (paper §5.2.3 runs the control
// plane against 5000 worker nodes). An emulated worker speaks the real
// worker protocol over the real transport — it registers, heartbeats,
// accepts create/kill (batch) instructions, reports sandbox readiness
// through the same coalescing shapes as the real daemon, and serves
// proxied invocations — but never spawns a sandbox runtime: "creating" a
// sandbox is a map insert plus an optional simulated delay. A thousand
// of them fit in one test process, which is what lets registration
// storms, heartbeat floods, autoscale sweeps and correlated failures be
// driven against the control plane's worker registry at fleet scale.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/relay"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// WorkerConfig parameterizes one emulated worker.
type WorkerConfig struct {
	// Node identifies the worker. When Addr ends in ":0" (a real TCP
	// listener picking its port), Node.Port is overwritten with the
	// port actually bound, so the control plane's computed worker
	// address matches the listener.
	Node core.WorkerNode
	// Addr is the transport address to listen on.
	Addr string
	// Transport carries RPCs.
	Transport transport.Transport
	// ControlPlanes are the CP replica addresses.
	ControlPlanes []string
	// Relays, when non-empty, switches the worker's liveness traffic
	// (register, heartbeat) to relay mode: RPCs go to the first relay
	// that accepts them, in preference order, falling back to the direct
	// control plane path when every relay refuses. Empty keeps the
	// seed's direct WN → CP protocol exactly.
	Relays []string
	// Clock abstracts time; nil selects the wall clock.
	Clock clock.Clock
	// HeartbeatInterval is the WN → CP liveness period (default 100 ms).
	// Set it very large to park the loop and drive SendHeartbeat
	// explicitly (the benchmarks do).
	HeartbeatInterval time.Duration
	// ReadyDelay simulates sandbox creation latency: readiness is
	// reported this long after the create instruction (0 = immediately).
	ReadyDelay time.Duration
	// Handler serves proxied invocations; nil echoes the payload.
	Handler func(payload []byte) ([]byte, error)
	// HandlerFn, when set, serves proxied invocations with the invoked
	// function's name available — scenario drivers use it to emulate
	// per-function behavior (exec-time sleeps, version tagging) on one
	// shared fleet. Takes precedence over Handler.
	HandlerFn func(function string, payload []byte) ([]byte, error)
	// Metrics receives emulated-worker telemetry; the Fleet shares one
	// registry across all its workers. Nil creates a private registry.
	Metrics *telemetry.Registry
}

// Worker is one running emulated worker node.
type Worker struct {
	cfg      WorkerConfig
	clk      clock.Clock
	cp       *cpclient.Client
	live     *relay.Client // non-nil in relay mode; carries register + heartbeat
	listener transport.Listener
	metrics  *telemetry.Registry

	mu        sync.Mutex
	sandboxes map[core.SandboxID]core.Function
	creating  int
	stopped   bool

	// Emulated image cache: every image a create instruction ever named,
	// hashed and reported in heartbeats exactly like the real worker's
	// cache digest, so cache-aware placement and relay-path digest
	// aggregation can be driven at fleet scale. The sorted digest is
	// memoized and rebuilt only when an image is first seen.
	images      map[string]struct{}
	digest      []uint64
	digestStale bool

	// Last per-image prewarm target push from the control plane
	// (generation-tagged, see proto.PrewarmTargets); recorded rather than
	// acted on — emulated workers hold no pools.
	prewarmGen     uint64
	prewarmTargets []proto.PrewarmTarget

	// Readiness coalescing, mirroring the real worker: batch-delivered
	// creations queue events and a single flusher drains whatever
	// accumulated while its previous RPC was in flight.
	readyEvMu    sync.Mutex
	readyEvs     []proto.SandboxEvent
	readyFlusher bool

	stopCh chan struct{}
	wg     sync.WaitGroup

	mCreates    *telemetry.Counter
	mHeartbeats *telemetry.Counter
	mReadyBatch *telemetry.Histogram
}

// NewWorker builds an emulated worker; call Start to register and serve.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	if cfg.Handler == nil {
		cfg.Handler = func(p []byte) ([]byte, error) { return p, nil }
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	w := &Worker{
		cfg:       cfg,
		clk:       cfg.Clock,
		cp:        cpclient.New(cfg.Transport, cfg.ControlPlanes),
		metrics:   cfg.Metrics,
		sandboxes: make(map[core.SandboxID]core.Function),
		images:    make(map[string]struct{}),
		stopCh:    make(chan struct{}),
	}
	if len(cfg.Relays) > 0 {
		w.live = relay.NewClient(cfg.Transport, cfg.Relays, cfg.ControlPlanes)
		w.live.Fallbacks = cfg.Metrics.Counter("relay_fallbacks")
	}
	w.mCreates = w.metrics.Counter("emu_creates")
	w.mHeartbeats = w.metrics.Counter("emu_heartbeats")
	w.mReadyBatch = w.metrics.CountHistogram("emu_ready_batch_size")
	return w
}

// Start listens, registers the worker with the control plane, and begins
// heartbeating.
func (w *Worker) Start() error {
	ln, err := w.cfg.Transport.Listen(w.cfg.Addr, w.handleRPC)
	if err != nil {
		return fmt.Errorf("fleet worker %s: %w", w.cfg.Node.Name, err)
	}
	w.listener = ln
	// A ":0" listen address means the transport picked the port: adopt
	// it so the CP-side worker address (IP:Port) routes back here.
	if host, port, ok := splitHostPort(ln.Addr()); ok && w.cfg.Node.Port == 0 {
		w.cfg.Addr = ln.Addr()
		w.cfg.Node.IP = host
		w.cfg.Node.Port = port
	}
	if err := w.Register(); err != nil {
		ln.Close()
		return err
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	return nil
}

// Register (re-)announces the worker to the control plane. Exported so
// tests can re-register a previously failed worker ID. Direct mode rides
// out CP leader elections with the client's capped-backoff retry; relay
// mode inherits the relay's own retry on its CP leg.
func (w *Worker) Register() error {
	req := proto.RegisterWorkerRequest{Worker: w.cfg.Node}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var err error
	if w.live != nil {
		_, err = w.live.Call(ctx, proto.MethodRegisterWorker, req.Marshal())
	} else {
		_, err = w.cp.CallWithRetry(ctx, proto.MethodRegisterWorker, req.Marshal())
	}
	if err != nil {
		return fmt.Errorf("fleet worker %s: register: %w", w.cfg.Node.Name, err)
	}
	return nil
}

// liveCall routes the liveness protocol (register, heartbeat): through the
// relay tier in relay mode, directly to the control plane otherwise. Every
// other RPC the worker makes stays on the direct path — relays carry only
// the per-worker traffic that dominates at fleet scale.
func (w *Worker) liveCall(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if w.live != nil {
		return w.live.Call(ctx, method, payload)
	}
	return w.cp.Call(ctx, method, payload)
}

// Stop simulates a worker crash: heartbeats stop and RPCs stop being
// served, with no deregistration — the control plane must detect the
// failure by heartbeat timeout, exactly like a real dead node.
func (w *Worker) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stopCh)
	if w.listener != nil {
		w.listener.Close()
	}
	w.wg.Wait()
}

// Node returns the worker's identity (with the resolved port).
func (w *Worker) Node() core.WorkerNode { return w.cfg.Node }

// Addr returns the worker's RPC address.
func (w *Worker) Addr() string { return w.cfg.Addr }

// SandboxCount returns the number of emulated sandboxes currently held.
func (w *Worker) SandboxCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sandboxes)
}

// SendHeartbeat sends one WN → CP heartbeat with the current emulated
// utilization. The heartbeat loop calls it on its period; benchmarks
// park the loop and call it directly to drive heartbeat storms.
func (w *Worker) SendHeartbeat() {
	hb := proto.WorkerHeartbeat{Node: w.cfg.Node.ID, Util: w.utilization()}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _ = w.liveCall(ctx, proto.MethodWorkerHeartbeat, hb.Marshal())
	w.mHeartbeats.Inc()
}

func (w *Worker) utilization() core.NodeUtilization {
	w.mu.Lock()
	defer w.mu.Unlock()
	var cpu, mem int
	for _, fn := range w.sandboxes {
		cpu += fn.Scaling.CPUMilli
		mem += fn.Scaling.MemoryMB
	}
	return core.NodeUtilization{
		Node:          w.cfg.Node.ID,
		CPUMilliUsed:  cpu,
		MemoryMBUsed:  mem,
		SandboxCount:  len(w.sandboxes),
		CreationQueue: w.creating,
		CacheDigest:   w.digestLocked(),
	}
}

// digestLocked returns the sorted image-cache digest, rebuilding it only
// when a new image appeared since the last call. Callers must hold w.mu;
// the returned slice is shared and treated as read-only.
func (w *Worker) digestLocked() []uint64 {
	if w.digestStale {
		w.digest = w.digest[:0]
		for img := range w.images {
			w.digest = append(w.digest, core.HashImage(img))
		}
		sort.Slice(w.digest, func(i, j int) bool { return w.digest[i] < w.digest[j] })
		w.digestStale = false
	}
	return w.digest
}

// PrewarmTargets returns the last generation-tagged per-image prewarm
// target set the control plane pushed, for fleet-scale push tests.
func (w *Worker) PrewarmTargets() (uint64, []proto.PrewarmTarget) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.prewarmGen, append([]proto.PrewarmTarget(nil), w.prewarmTargets...)
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stopCh:
			return
		case <-w.clk.After(w.cfg.HeartbeatInterval):
			w.SendHeartbeat()
		}
	}
}

// handleRPC serves CP → WN and DP → WN calls with the real method set.
func (w *Worker) handleRPC(method string, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodCreateSandbox:
		req, err := proto.UnmarshalCreateSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		return nil, w.createSandbox(req, false)
	case proto.MethodCreateSandboxBatch:
		batch, err := proto.UnmarshalCreateSandboxBatch(payload)
		if err != nil {
			return nil, err
		}
		for i := range batch.Creates {
			if err := w.createSandbox(&batch.Creates[i], true); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case proto.MethodKillSandbox:
		var id uint64
		for i := 0; i < 8 && i < len(payload); i++ {
			id |= uint64(payload[i]) << (8 * i)
		}
		w.mu.Lock()
		delete(w.sandboxes, core.SandboxID(id))
		w.mu.Unlock()
		w.dropQueuedReady(core.SandboxID(id))
		return nil, nil
	case proto.MethodKillSandboxBatch:
		batch, err := proto.UnmarshalKillSandboxBatch(payload)
		if err != nil {
			return nil, err
		}
		w.mu.Lock()
		for _, id := range batch.IDs {
			delete(w.sandboxes, id)
		}
		w.mu.Unlock()
		for _, id := range batch.IDs {
			w.dropQueuedReady(id)
		}
		return nil, nil
	case proto.MethodListSandboxes:
		return w.listSandboxes().Marshal(), nil
	case proto.MethodPrewarmTargets:
		pt, err := proto.UnmarshalPrewarmTargets(payload)
		if err != nil {
			return nil, err
		}
		w.mu.Lock()
		if pt.Gen > w.prewarmGen {
			w.prewarmGen = pt.Gen
			w.prewarmTargets = pt.Targets
		}
		w.mu.Unlock()
		return nil, nil
	case proto.MethodInvokeSandbox:
		req, err := proto.UnmarshalInvokeSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		w.mu.Lock()
		_, ok := w.sandboxes[req.SandboxID]
		w.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("fleet worker %s: invoke: no such sandbox %d", w.cfg.Node.Name, req.SandboxID)
		}
		if w.cfg.HandlerFn != nil {
			return w.cfg.HandlerFn(req.Function, req.Payload)
		}
		return w.cfg.Handler(req.Payload)
	default:
		return nil, fmt.Errorf("fleet worker: unknown method %q", method)
	}
}

// createSandbox emulates a creation: the instruction is acked, and after
// ReadyDelay the sandbox appears and readiness is reported — through the
// coalescing flusher for batch-delivered instructions, or a synchronous
// singleton RPC for seed-style per-sandbox ones, mirroring the real
// worker so the CreateBatch=1 ablation keeps its seed shape end to end.
func (w *Worker) createSandbox(req *proto.CreateSandboxRequest, batched bool) error {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return fmt.Errorf("fleet worker %s: stopped", w.cfg.Node.Name)
	}
	w.creating++
	if img := req.Function.Image; img != "" {
		if _, ok := w.images[img]; !ok {
			w.images[img] = struct{}{}
			w.digestStale = true
		}
	}
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		if w.cfg.ReadyDelay > 0 {
			select {
			case <-w.stopCh:
				return
			case <-w.clk.After(w.cfg.ReadyDelay):
			}
		}
		w.mu.Lock()
		w.creating--
		if w.stopped {
			w.mu.Unlock()
			return
		}
		w.sandboxes[req.SandboxID] = req.Function
		w.mu.Unlock()
		w.mCreates.Inc()
		ev := proto.SandboxEvent{
			SandboxID: req.SandboxID,
			Function:  req.Function.Name,
			Node:      w.cfg.Node.ID,
			Addr:      w.cfg.Addr,
		}
		if batched {
			w.queueReady(ev)
			return
		}
		w.mReadyBatch.ObserveMs(1)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = w.cp.Call(ctx, proto.MethodSandboxReady, ev.Marshal())
	}()
	return nil
}

// queueReady enqueues one readiness event and ensures a flusher drains
// the queue, one SandboxReadyBatch RPC per in-flight window.
func (w *Worker) queueReady(ev proto.SandboxEvent) {
	w.readyEvMu.Lock()
	w.readyEvs = append(w.readyEvs, ev)
	if w.readyFlusher {
		w.readyEvMu.Unlock()
		return
	}
	w.readyFlusher = true
	w.readyEvMu.Unlock()
	w.wg.Add(1)
	go w.flushReadyLoop()
}

func (w *Worker) flushReadyLoop() {
	defer w.wg.Done()
	for {
		w.readyEvMu.Lock()
		evs := w.readyEvs
		w.readyEvs = nil
		if len(evs) == 0 {
			w.readyFlusher = false
			w.readyEvMu.Unlock()
			return
		}
		w.readyEvMu.Unlock()
		w.mReadyBatch.ObserveMs(float64(len(evs)))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if len(evs) == 1 {
			_, _ = w.cp.Call(ctx, proto.MethodSandboxReady, evs[0].Marshal())
		} else {
			batch := proto.SandboxEventBatch{Events: evs}
			_, _ = w.cp.Call(ctx, proto.MethodSandboxReadyBatch, batch.Marshal())
		}
		cancel()
	}
}

// dropQueuedReady discards queued-but-unsent readiness events for a
// killed sandbox so a stale report can't resurrect it (same hazard the
// real worker guards against).
func (w *Worker) dropQueuedReady(id core.SandboxID) {
	w.readyEvMu.Lock()
	kept := w.readyEvs[:0]
	for _, ev := range w.readyEvs {
		if ev.SandboxID != id {
			kept = append(kept, ev)
		}
	}
	w.readyEvs = kept
	w.readyEvMu.Unlock()
}

func (w *Worker) listSandboxes() *proto.SandboxList {
	w.mu.Lock()
	defer w.mu.Unlock()
	list := &proto.SandboxList{}
	for id, fn := range w.sandboxes {
		list.Sandboxes = append(list.Sandboxes, proto.SandboxInfo{
			ID:       id,
			Function: fn.Name,
			Node:     w.cfg.Node.ID,
			Addr:     w.cfg.Addr,
			State:    core.SandboxReady,
		})
	}
	return list
}

func splitHostPort(addr string) (string, uint16, bool) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			var port uint16
			for _, c := range addr[i+1:] {
				if c < '0' || c > '9' {
					return addr, 0, false
				}
				port = port*10 + uint16(c-'0')
			}
			return addr[:i], port, true
		}
	}
	return addr, 0, false
}
