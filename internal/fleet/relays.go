package fleet

import (
	"fmt"
	"sync"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/relay"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// The worker fleet's sibling for the relay tier: a set of real
// relay.Relay instances managed as one unit, so fleet-scale experiments
// can stand up N relays between the emulated workers and the control
// plane, kill one mid-period, and observe workers fail over while the
// control plane treats the silent relay as a correlated mass-timeout
// candidate. Like the data plane set (and unlike the emulated workers)
// these are the real component — the harness scales the tier, it does
// not fake it.

// RelaysConfig parameterizes a managed relay tier.
type RelaysConfig struct {
	// Count is the number of relays (default 4).
	Count int
	// Transport carries worker-side and CP-side RPCs for every relay.
	Transport transport.Transport
	// ControlPlanes are the CP replica addresses.
	ControlPlanes []string
	// Loopback makes every relay listen on 127.0.0.1:0 (real TCP, ports
	// resolved at bind time). When false, relays use synthetic
	// in-process addresses in the 10.99.0.0/16 range.
	Loopback bool
	// BaseID is the first relay's ID (default 1).
	BaseID int
	// Clock abstracts time for flush pacing and miss detection.
	Clock clock.Clock
	// FlushInterval / Chunk / MissTimeout tune each relay; zero selects
	// relay defaults. Harnesses park the flush loops with a very large
	// FlushInterval and drive FlushAll explicitly.
	FlushInterval time.Duration
	Chunk         int
	MissTimeout   time.Duration
	// Metrics is shared by all relays (flush latency, batch sizes and
	// error counts aggregate across the tier); nil creates one.
	Metrics *telemetry.Registry
}

func (c RelaysConfig) withDefaults() RelaysConfig {
	if c.Count <= 0 {
		c.Count = 4
	}
	if c.BaseID <= 0 {
		c.BaseID = 1
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	return c
}

// Relays is a managed relay tier.
type Relays struct {
	cfg    RelaysConfig
	relays []*relay.Relay
}

// NewRelays builds the tier's relays without starting them.
func NewRelays(cfg RelaysConfig) *Relays {
	cfg = cfg.withDefaults()
	r := &Relays{cfg: cfg}
	for i := 0; i < cfg.Count; i++ {
		id := cfg.BaseID + i
		addr := "127.0.0.1:0"
		if !cfg.Loopback {
			addr = fmt.Sprintf("10.99.%d.%d:7100", id/256, id%256)
		}
		r.relays = append(r.relays, relay.New(relay.Config{
			Addr:          addr,
			Transport:     cfg.Transport,
			ControlPlanes: cfg.ControlPlanes,
			Clock:         cfg.Clock,
			FlushInterval: cfg.FlushInterval,
			Chunk:         cfg.Chunk,
			MissTimeout:   cfg.MissTimeout,
			Metrics:       cfg.Metrics,
		}))
	}
	return r
}

// Start launches every relay concurrently. It returns the first error.
func (r *Relays) Start() error {
	errs := make([]error, len(r.relays))
	var wg sync.WaitGroup
	for i, rl := range r.relays {
		wg.Add(1)
		go func(i int, rl *relay.Relay) {
			defer wg.Done()
			errs[i] = rl.Start()
		}(i, rl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Relays returns the tier's relays in ID order.
func (r *Relays) All() []*relay.Relay { return r.relays }

// Addrs returns every relay's RPC address. With Loopback, addresses are
// only valid after Start (ports bind at listen time).
func (r *Relays) Addrs() []string {
	addrs := make([]string, len(r.relays))
	for i, rl := range r.relays {
		addrs[i] = rl.Addr()
	}
	return addrs
}

// FlushAll drives one explicit flush on every relay — harnesses that
// park the flush loops call this once per emulated heartbeat period.
func (r *Relays) FlushAll() {
	for _, rl := range r.relays {
		rl.Flush()
	}
}

// Metrics returns the registry shared by the tier's relays.
func (r *Relays) Metrics() *telemetry.Registry { return r.cfg.Metrics }

// StopOne crashes relay i: no final flush, worker RPCs refused — its
// workers must fail over and the control plane must notice the silence.
func (r *Relays) StopOne(i int) {
	r.relays[i].Stop()
}

// Stop crashes every relay.
func (r *Relays) Stop() {
	var wg sync.WaitGroup
	for _, rl := range r.relays {
		wg.Add(1)
		go func(rl *relay.Relay) {
			defer wg.Done()
			rl.Stop()
		}(rl)
	}
	wg.Wait()
}
