package fleet_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/fleet"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// TestConcurrentFleetRegistryStress hammers the striped worker registry
// at fleet scale under -race: a 1000-worker emulated fleet registers in
// one storm, then heartbeat floods, worker failure/re-registration
// churn, autoscale sweeps (placing across the whole fleet), health
// sweeps, function re-registration and registry reads all race each
// other. It locks in that registrations, heartbeats and sweeps rely
// only on per-shard and per-worker locks for exclusion — the PR-1
// stress-test pattern, now over the worker registry.
func TestConcurrentFleetRegistryStress(t *testing.T) {
	const (
		fleetSize    = 1000
		numFunctions = 16
		iters        = 100
	)

	tr := transport.NewInProc()
	db := store.NewMemory()
	cp := controlplane.New(controlplane.Config{
		Addr:      "stress-cp",
		Transport: tr,
		DB:        db,
		// Loops parked: sweeps are driven explicitly below, and the huge
		// timeout keeps explicit health sweeps from failing parked
		// workers — failures are injected via deregistration instead.
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	fl := fleet.New(fleet.Config{
		Size:              fleetSize,
		Transport:         tr,
		ControlPlanes:     []string{"stress-cp"},
		HeartbeatInterval: time.Hour, // driven explicitly
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	workers := fl.Workers()
	if got := cp.WorkerCount(); got != fleetSize {
		t.Fatalf("WorkerCount after storm = %d, want %d", got, fleetSize)
	}

	call := func(method string, payload []byte) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Errors are expected under churn; the test asserts on final
		// state and on the race detector, not per-call success.
		_, _ = tr.Call(ctx, "stress-cp", method, payload)
	}

	fnName := func(i int) string { return fmt.Sprintf("fleet-stress-fn-%d", i) }
	spec := func(name string, minScale int) core.Function {
		fn := core.Function{Name: name, Image: "img", Port: 80, Scaling: core.DefaultScalingConfig()}
		fn.Scaling.MinScale = minScale
		fn.Scaling.StableWindow = time.Hour
		return fn
	}
	for i := 0; i < numFunctions; i++ {
		fn := spec(fnName(i), 1+i%4)
		call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	}

	var wg sync.WaitGroup
	run := func(fn func(g int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 0; g < iters; g++ {
				fn(g)
			}
		}()
	}

	// Heartbeat floods: 4 goroutines cycling disjoint fleet slices.
	for g := 0; g < 4; g++ {
		g := g
		run(func(i int) {
			workers[(g*iters*7+i*13)%fleetSize].SendHeartbeat()
		})
	}
	// Worker failure/re-registration churn: deregister (fails the worker
	// and drains its sandboxes, re-entering Reconcile) then register the
	// same node ID back — over a rotating window of the fleet.
	run(func(i int) {
		w := workers[(i*31)%fleetSize]
		req := proto.RegisterWorkerRequest{Worker: w.Node()}
		if i%2 == 0 {
			call(proto.MethodDeregisterWorker, req.Marshal())
		} else {
			call(proto.MethodRegisterWorker, req.Marshal())
		}
	})
	// Autoscale sweeps placing across the whole fleet.
	run(func(int) { cp.Reconcile() })
	// Health sweeps racing everything above.
	run(func(int) { cp.HealthSweep() })
	// Function re-registration and removal.
	run(func(i int) {
		fn := spec(fnName(i%numFunctions), 1)
		if i%3 == 2 {
			call(proto.MethodDeregisterFunction, core.MarshalFunction(&fn))
		} else {
			call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
		}
	})
	// Registry reads.
	run(func(i int) {
		cp.WorkerCount()
		cp.FunctionScale(fnName(i % numFunctions))
		if i%16 == 0 {
			call(proto.MethodClusterStatus, nil)
		}
	})

	wg.Wait()

	// Re-register everything churned away; the cluster must be coherent
	// and schedulable again.
	for _, w := range workers {
		req := proto.RegisterWorkerRequest{Worker: w.Node()}
		call(proto.MethodRegisterWorker, req.Marshal())
	}
	for i := 0; i < numFunctions; i++ {
		fn := spec(fnName(i), 1)
		call(proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	}
	cp.Reconcile()
	if got := cp.WorkerCount(); got != fleetSize {
		t.Errorf("WorkerCount = %d, want %d", got, fleetSize)
	}
	if got := cp.Metrics().Gauge("fleet_size").Value(); got != fleetSize {
		t.Errorf("fleet_size gauge = %d, want %d (churn double-counted?)", got, fleetSize)
	}
	for i := 0; i < numFunctions; i++ {
		if _, ok := db.HGet("functions", fnName(i)); !ok {
			t.Errorf("function %s lost from persistent store", fnName(i))
		}
	}
}
