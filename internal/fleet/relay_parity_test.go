package fleet_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/fleet"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// recordingTransport counts every Call by (addr, method) so tests can
// assert what each tier saw on the wire, not just end states.
type recordingTransport struct {
	transport.Transport
	mu    sync.Mutex
	calls map[string]map[string]int
}

func newRecordingTransport(inner transport.Transport) *recordingTransport {
	return &recordingTransport{Transport: inner, calls: make(map[string]map[string]int)}
}

func (r *recordingTransport) Call(ctx context.Context, addr, method string, payload []byte) ([]byte, error) {
	r.mu.Lock()
	m := r.calls[addr]
	if m == nil {
		m = make(map[string]int)
		r.calls[addr] = m
	}
	m[method]++
	r.mu.Unlock()
	return r.Transport.Call(ctx, addr, method, payload)
}

func (r *recordingTransport) count(addr, method string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls[addr][method]
}

// TestRelayAblationSeedParity pins the -relay off ablation: with no
// relays configured, the control plane sees exactly the seed's wire
// protocol — one singleton RegisterWorker per worker, one singleton
// WorkerHeartbeat per beat, and no batch methods at all. This is the
// contract that makes relay-vs-direct benchmark comparisons honest.
func TestRelayAblationSeedParity(t *testing.T) {
	const size = 24
	tr := newRecordingTransport(transport.NewInProc())
	cp := controlplane.New(controlplane.Config{
		Addr:              "parity-cp",
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour, // liveness driven explicitly
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	fl := fleet.New(fleet.Config{
		Size:              size,
		Transport:         tr,
		ControlPlanes:     []string{"parity-cp"},
		HeartbeatInterval: time.Hour, // beats driven explicitly
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()

	for round := 0; round < 2; round++ {
		for _, w := range fl.Workers() {
			w.SendHeartbeat()
		}
	}

	if got := tr.count("parity-cp", proto.MethodRegisterWorker); got != size {
		t.Errorf("CP saw %d singleton RegisterWorker RPCs, want %d (seed shape)", got, size)
	}
	if got := tr.count("parity-cp", proto.MethodWorkerHeartbeat); got != 2*size {
		t.Errorf("CP saw %d singleton WorkerHeartbeat RPCs, want %d (seed shape)", got, 2*size)
	}
	if got := tr.count("parity-cp", proto.MethodWorkerHeartbeatBatch); got != 0 {
		t.Errorf("relay-off run shipped %d WorkerHeartbeatBatch RPCs, want 0", got)
	}
	if got := tr.count("parity-cp", proto.MethodRegisterWorkerBatch); got != 0 {
		t.Errorf("relay-off run shipped %d RegisterWorkerBatch RPCs, want 0", got)
	}
	if got := cp.WorkerCount(); got != size {
		t.Fatalf("WorkerCount = %d, want %d", got, size)
	}
}

// TestRelayModeBatchesLiveness is the other arm of the ablation: with a
// relay tier in place the control plane stops seeing singleton worker
// heartbeats entirely — liveness arrives as aggregated batches — while
// every worker still ends up registered and healthy.
func TestRelayModeBatchesLiveness(t *testing.T) {
	const size = 48
	tr := newRecordingTransport(transport.NewInProc())
	cp := controlplane.New(controlplane.Config{
		Addr:              "parity-cp",
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	relays := fleet.NewRelays(fleet.RelaysConfig{
		Count:         3,
		Transport:     tr,
		ControlPlanes: []string{"parity-cp"},
		FlushInterval: time.Hour, // flushes driven explicitly
	})
	if err := relays.Start(); err != nil {
		t.Fatal(err)
	}
	defer relays.Stop()

	fl := fleet.New(fleet.Config{
		Size:              size,
		Transport:         tr,
		ControlPlanes:     []string{"parity-cp"},
		Relays:            relays.Addrs(),
		HeartbeatInterval: time.Hour,
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	if got := cp.WorkerCount(); got != size {
		t.Fatalf("WorkerCount after relayed registration storm = %d, want %d", got, size)
	}

	for round := 0; round < 2; round++ {
		for _, w := range fl.Workers() {
			w.SendHeartbeat()
		}
		relays.FlushAll()
	}

	if got := tr.count("parity-cp", proto.MethodWorkerHeartbeat); got != 0 {
		t.Errorf("CP saw %d singleton WorkerHeartbeat RPCs in relay mode, want 0", got)
	}
	if got := tr.count("parity-cp", proto.MethodWorkerHeartbeatBatch); got < 3 {
		t.Errorf("CP saw %d WorkerHeartbeatBatch RPCs, want >= 3 (one per relay per round)", got)
	}
	// The relay tier absorbed every singleton beat the workers sent.
	absorbed := 0
	for _, addr := range relays.Addrs() {
		absorbed += tr.count(addr, proto.MethodWorkerHeartbeat)
	}
	if absorbed != 2*size {
		t.Errorf("relays absorbed %d singleton heartbeats, want %d", absorbed, 2*size)
	}
}
