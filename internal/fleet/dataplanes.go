package fleet

import (
	"fmt"
	"sync"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/store"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// The worker fleet's sibling for the data plane tier: a set of real
// dataplane.DataPlane replicas managed as one unit, so multi-replica
// experiments (front-end failover, fan-out pruning, async-queue
// sharding) can stand up N replicas, kill a fraction mid-burst, and
// observe the control plane and front end converge. Unlike the emulated
// workers these are the real component — the point of the harness is the
// replicas' own behavior, not their scale.

// DataPlanesConfig parameterizes a managed data plane replica set.
type DataPlanesConfig struct {
	// Count is the number of replicas (default 3).
	Count int
	// Transport carries RPCs for every replica.
	Transport transport.Transport
	// ControlPlanes are the CP replica addresses.
	ControlPlanes []string
	// Loopback makes every replica listen on 127.0.0.1:0 (real TCP,
	// ports resolved at bind time). When false, replicas use synthetic
	// in-process addresses in the 10.88.0.0/16 range.
	Loopback bool
	// BaseID is the first replica's ID (default 1).
	BaseID int
	// AsyncShards stripes each replica's async queue (0 default, 1 seed).
	AsyncShards int
	// Persistent gives each replica its own in-memory async store, so
	// accepted async invocations survive a Stop/restart of the replica
	// and killing a replica exercises the durable-queue path.
	Persistent bool
	// SharedStore makes every replica persist async records into the
	// same store (the shared-database layout lease failover needs:
	// records are owner-prefixed, so survivors can drain a dead
	// replica's records in place). Overrides Persistent.
	SharedStore *store.Store
	// AsyncFnQuota caps per-function occupancy of each replica's async
	// queue shards (0 = seed admission, no quota).
	AsyncFnQuota int
	// Clock abstracts time.
	Clock clock.Clock
	// MetricInterval / HeartbeatInterval / QueueTimeout tune each
	// replica; zero selects dataplane defaults.
	MetricInterval    time.Duration
	HeartbeatInterval time.Duration
	QueueTimeout      time.Duration
	// Metrics, when set, is shared by every replica so a harness can read
	// tier-wide counters (async accepted/completed, cold-start queueing)
	// from one registry. Nil gives each replica a private registry.
	Metrics *telemetry.Registry
}

func (c DataPlanesConfig) withDefaults() DataPlanesConfig {
	if c.Count <= 0 {
		c.Count = 3
	}
	if c.BaseID <= 0 {
		c.BaseID = 1
	}
	return c
}

// DataPlanes is a managed set of data plane replicas.
type DataPlanes struct {
	cfg    DataPlanesConfig
	dpCfgs []dataplane.Config
	dps    []*dataplane.DataPlane
	stores []*store.Store
}

// NewDataPlanes builds the replicas without starting them.
func NewDataPlanes(cfg DataPlanesConfig) *DataPlanes {
	cfg = cfg.withDefaults()
	d := &DataPlanes{cfg: cfg}
	for i := 0; i < cfg.Count; i++ {
		id := cfg.BaseID + i
		addr := "127.0.0.1:0"
		if !cfg.Loopback {
			addr = fmt.Sprintf("10.88.%d.%d:8000", id/256, id%256)
		}
		db := cfg.SharedStore
		if db == nil && cfg.Persistent {
			db = store.NewMemory()
		}
		d.stores = append(d.stores, db)
		dpCfg := dataplane.Config{
			ID:                core.DataPlaneID(id),
			Addr:              addr,
			Transport:         cfg.Transport,
			ControlPlanes:     cfg.ControlPlanes,
			Clock:             cfg.Clock,
			MetricInterval:    cfg.MetricInterval,
			HeartbeatInterval: cfg.HeartbeatInterval,
			QueueTimeout:      cfg.QueueTimeout,
			AsyncStore:        db,
			AsyncShards:       cfg.AsyncShards,
			AsyncFnQuota:      cfg.AsyncFnQuota,
			Metrics:           cfg.Metrics,
		}
		d.dpCfgs = append(d.dpCfgs, dpCfg)
		d.dps = append(d.dps, dataplane.New(dpCfg))
	}
	return d
}

// Start launches every replica concurrently (registration storm against
// the control plane's DP registry). It returns the first start error.
func (d *DataPlanes) Start() error {
	errs := make([]error, len(d.dps))
	var wg sync.WaitGroup
	for i, dp := range d.dps {
		wg.Add(1)
		go func(i int, dp *dataplane.DataPlane) {
			defer wg.Done()
			errs[i] = dp.Start()
		}(i, dp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DPs returns the replicas in ID order.
func (d *DataPlanes) DPs() []*dataplane.DataPlane { return d.dps }

// Addrs returns every replica's RPC address. With Loopback, addresses
// are only valid after Start (ports bind at listen time) — which is why
// dataplane.Addr would return ":0" before; dataplane keeps its
// configured address, so loopback sets should pass Addrs to consumers
// only post-Start.
func (d *DataPlanes) Addrs() []string {
	addrs := make([]string, len(d.dps))
	for i, dp := range d.dps {
		addrs[i] = dp.Addr()
	}
	return addrs
}

// Store returns replica i's async store (nil without Persistent).
func (d *DataPlanes) Store(i int) *store.Store { return d.stores[i] }

// StopFraction crashes the first ⌈frac·Count⌉ replicas simultaneously —
// a correlated data plane failure. In-flight requests inside the victims
// fail over at the front end; the control plane prunes the victims from
// its fan-out set by heartbeat timeout; persisted async tasks on the
// victims are leased to the surviving replicas once the prune lands
// (with SharedStore and leasing enabled — with per-replica stores they
// wait for a Restart, the seed behavior). Returns the stopped replicas'
// indices.
func (d *DataPlanes) StopFraction(frac float64) []int {
	n := int(float64(len(d.dps))*frac + 0.999999)
	if n > len(d.dps) {
		n = len(d.dps)
	}
	var wg sync.WaitGroup
	victims := make([]int, 0, n)
	for i := 0; i < n; i++ {
		victims = append(victims, i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.dps[i].Stop()
		}(i)
	}
	wg.Wait()
	return victims
}

// StopOne crashes replica i — e.g. the replica a harness observed
// serving a function's home, so a kill provably lands on live traffic.
func (d *DataPlanes) StopOne(i int) {
	d.dps[i].Stop()
}

// Restart brings replica i back as a fresh incarnation on the same ID
// and store — the paper's §3.4.2 restart path. With a shared store the
// revival also recalls any lease the CP issued on the replica's records
// while it was down. Returns the restart error.
func (d *DataPlanes) Restart(i int) error {
	dp := dataplane.New(d.dpCfgs[i])
	if err := dp.Start(); err != nil {
		return err
	}
	d.dps[i] = dp
	return nil
}

// Stop crashes every replica.
func (d *DataPlanes) Stop() {
	d.StopFraction(1)
}
