package fleet_test

import (
	"context"
	"testing"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/fleet"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

func fnSpec(name string, minScale int) core.Function {
	fn := core.Function{Name: name, Image: "img", Port: 80, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = minScale
	fn.Scaling.StableWindow = 10 * time.Second
	return fn
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetServesScaleUpAndSurvivesFailure covers the emulated worker's
// whole protocol surface against a real control plane: registration
// storm, batched creates → coalesced readiness, proxied invocations,
// scale-down kills, and crash detection by heartbeat timeout.
func TestFleetServesScaleUpAndSurvivesFailure(t *testing.T) {
	const size = 32
	tr := transport.NewInProc()
	cp := controlplane.New(controlplane.Config{
		Addr:              "fleet-cp",
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: time.Hour, // sweeps driven explicitly
		HeartbeatTimeout:  300 * time.Millisecond,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()

	fl := fleet.New(fleet.Config{
		Size:              size,
		Transport:         tr,
		ControlPlanes:     []string{"fleet-cp"},
		HeartbeatInterval: 50 * time.Millisecond,
		Handler: func(p []byte) ([]byte, error) {
			return append([]byte("emu:"), p...), nil
		},
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	if got := cp.WorkerCount(); got != size {
		t.Fatalf("WorkerCount after registration storm = %d, want %d", got, size)
	}
	if got := cp.Metrics().Gauge("fleet_size").Value(); got != size {
		t.Fatalf("fleet_size gauge = %d, want %d", got, size)
	}

	// Burst: one sandbox per worker on average, batched creates.
	const burst = 64
	fn := fnSpec("fleet-fn", burst)
	ctx := context.Background()
	if _, err := tr.Call(ctx, "fleet-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	cp.Reconcile()
	waitFor(t, 10*time.Second, "burst ready", func() bool {
		ready, _ := cp.FunctionScale("fleet-fn")
		return ready >= burst
	})
	if got := fl.SandboxCount(); got < burst {
		t.Errorf("fleet holds %d sandboxes, want >= %d", got, burst)
	}

	// Proxied invocation into an emulated sandbox.
	var sb proto.SandboxInfo
	for _, w := range fl.Workers() {
		if w.SandboxCount() > 0 {
			list, err := tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
			if err != nil {
				t.Fatal(err)
			}
			l, err := proto.UnmarshalSandboxList(list)
			if err != nil {
				t.Fatal(err)
			}
			sb = l.Sandboxes[0]
			break
		}
	}
	req := proto.InvokeSandboxRequest{SandboxID: sb.ID, Function: sb.Function, Payload: []byte("ping")}
	resp, err := tr.Call(ctx, sb.Addr, proto.MethodInvokeSandbox, req.Marshal())
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if string(resp) != "emu:ping" {
		t.Errorf("invoke body = %q, want %q", resp, "emu:ping")
	}

	// Scale down: deregistering kills every sandbox on the fleet.
	if _, err := tr.Call(ctx, "fleet-cp", proto.MethodDeregisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "sandboxes drained", func() bool {
		return fl.SandboxCount() == 0
	})

	// Correlated failure: 25% of the fleet crashes; heartbeat-timeout
	// sweeps must fail exactly those workers.
	stopped := fl.StopFraction(0.25)
	waitFor(t, 10*time.Second, "failed workers detected", func() bool {
		return cp.WorkerCount() == size-len(stopped)
	})
	if n := cp.Metrics().Histogram("health_sweep_ms").Count(); n == 0 {
		t.Errorf("health_sweep_ms never observed — health monitor idle")
	}
}

// TestFleetSeedShapeSingletonCreates pins that an emulated worker mirrors
// the RPC shape it receives: a seed-style CreateSandbox (CreateBatch=1
// ablation) is answered with a singleton SandboxReady report.
func TestFleetSeedShapeSingletonCreates(t *testing.T) {
	tr := transport.NewInProc()
	cp := controlplane.New(controlplane.Config{
		Addr:              "fleet-seed-cp",
		Transport:         tr,
		DB:                store.NewMemory(),
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
		CreateBatch:       1,
	})
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	defer cp.Stop()
	fl := fleet.New(fleet.Config{
		Size:              2,
		Transport:         tr,
		ControlPlanes:     []string{"fleet-seed-cp"},
		HeartbeatInterval: time.Hour,
	})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()

	fn := fnSpec("seed-fn", 4)
	ctx := context.Background()
	if _, err := tr.Call(ctx, "fleet-seed-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		t.Fatal(err)
	}
	cp.Reconcile()
	waitFor(t, 5*time.Second, "seed-shape burst ready", func() bool {
		ready, _ := cp.FunctionScale("seed-fn")
		return ready >= 4
	})
	if max := fl.Metrics().Histogram("emu_ready_batch_size").Max(); max > 1 {
		t.Errorf("emu_ready_batch_size max = %.0f under CreateBatch=1, want 1", max)
	}
}
