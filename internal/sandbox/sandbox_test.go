package sandbox

import (
	"context"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
)

func fastConfig() Config {
	return Config{
		LatencyScale: 0, // no sleeps in unit tests
		NodeIP:       [4]byte{10, 0, 0, 1},
		Seed:         1,
	}
}

func spec(id core.SandboxID, image string) Spec {
	return Spec{
		ID: id,
		Function: core.Function{
			Name:    "fn",
			Image:   image,
			Port:    8080,
			Scaling: core.DefaultScalingConfig(),
		},
	}
}

func TestContainerdCreateKillList(t *testing.T) {
	rt := NewContainerd(fastConfig())
	inst, err := rt.Create(context.Background(), spec(1, "img"))
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID != 1 || inst.Function != "fn" || inst.Addr == "" {
		t.Errorf("instance = %+v", inst)
	}
	if got := rt.List(); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("List = %v", got)
	}
	if rt.Count() != 1 {
		t.Errorf("Count = %d", rt.Count())
	}
	if err := rt.Kill(1); err != nil {
		t.Fatal(err)
	}
	if rt.Count() != 0 {
		t.Errorf("Count after kill = %d", rt.Count())
	}
	if err := rt.Kill(1); err == nil {
		t.Errorf("double kill should error")
	}
}

func TestContainerdUniqueAddrs(t *testing.T) {
	rt := NewContainerd(fastConfig())
	seen := make(map[string]bool)
	for i := 1; i <= 50; i++ {
		inst, err := rt.Create(context.Background(), spec(core.SandboxID(i), "img"))
		if err != nil {
			t.Fatal(err)
		}
		if seen[inst.Addr] {
			t.Fatalf("duplicate sandbox address %s", inst.Addr)
		}
		seen[inst.Addr] = true
	}
}

func TestFirecrackerSnapshotFlow(t *testing.T) {
	rt := NewFirecracker(FirecrackerConfig{Config: fastConfig(), Snapshots: true})
	// First create boots the VM and snapshots; second restores.
	if _, err := rt.Create(context.Background(), spec(1, "img")); err != nil {
		t.Fatal(err)
	}
	if !rt.cfg.Images.HasKind("img", ArtifactSnapshot) {
		t.Errorf("snapshot not cached after first boot")
	}
	inst, err := rt.Create(context.Background(), spec(2, "img"))
	if err != nil {
		t.Fatal(err)
	}
	if inst.BootDelay < 0 {
		t.Errorf("negative boot delay")
	}
	if rt.Name() != "firecracker" {
		t.Errorf("Name = %q", rt.Name())
	}
}

func TestRuntimeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt := NewContainerd(fastConfig())
	if _, err := rt.Create(ctx, spec(1, "img")); err == nil {
		t.Errorf("create with cancelled context should fail")
	}
	fc := NewFirecracker(FirecrackerConfig{Config: fastConfig(), Snapshots: true})
	if _, err := fc.Create(ctx, spec(2, "img")); err == nil {
		t.Errorf("create with cancelled context should fail")
	}
}

func TestConcurrentCreates(t *testing.T) {
	rt := NewContainerd(fastConfig())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rt.Create(context.Background(), spec(core.SandboxID(i), "img")); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if rt.Count() != 64 {
		t.Errorf("Count = %d, want 64", rt.Count())
	}
}

func TestNetworkPoolFastAndSlowPath(t *testing.T) {
	p := NewNetworkPool(nil, 0, 2)
	ctx := context.Background()
	a, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Pool drained: third acquire takes the slow path.
	c, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow, _ := p.Stats()
	if fast != 2 || slow != 1 {
		t.Errorf("fast=%d slow=%d, want 2/1", fast, slow)
	}
	// Releases recycle up to the target size.
	p.Release(a)
	p.Release(b)
	p.Release(c) // beyond target: destroyed
	_, _, pooled := p.Stats()
	if pooled != 2 {
		t.Errorf("pooled = %d, want 2 (target)", pooled)
	}
	p.Release(nil) // must not panic
}

func TestNetworkPoolCancelledContext(t *testing.T) {
	p := NewNetworkPool(nil, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Acquire(ctx); err == nil {
		t.Errorf("acquire with cancelled context should fail")
	}
}

func TestImageCache(t *testing.T) {
	c := NewImageCache()
	if c.Has("img") {
		t.Errorf("empty cache should miss")
	}
	c.Put("img", ArtifactImage)
	if !c.Has("img") {
		t.Errorf("cache should hit after Put")
	}
	if c.HasKind("img", ArtifactSnapshot) {
		t.Errorf("snapshot should miss when only image cached")
	}
	c.Prefetch("a", "b")
	if !c.HasKind("a", ArtifactSnapshot) || !c.HasKind("b", ArtifactImage) {
		t.Errorf("prefetch incomplete")
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if c.String() == "" {
		t.Errorf("String should describe the cache")
	}
}

func TestImageCacheAvoidsSecondPull(t *testing.T) {
	rt := NewContainerd(fastConfig())
	if _, err := rt.Create(context.Background(), spec(1, "cached-img")); err != nil {
		t.Fatal(err)
	}
	if !rt.cfg.Images.Has("cached-img") {
		t.Errorf("image not cached after first create")
	}
}

func TestLatencyModelScales(t *testing.T) {
	// With scale 1 the median should be in the right ballpark; with
	// scale 0 there is no simulated delay at all.
	m := newLatencyModel(1, 1.0, 100*time.Millisecond, 0.25)
	var sum time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		sum += m.sample()
	}
	avg := sum / n
	if avg < 50*time.Millisecond || avg > 250*time.Millisecond {
		t.Errorf("avg sample %v implausible for median 100ms", avg)
	}
	z := newLatencyModel(1, 0, 100*time.Millisecond, 0.25)
	if z.sample() != 0 {
		t.Errorf("scale 0 should produce zero latency")
	}
}

func TestKernelSectionSerializesCreates(t *testing.T) {
	// With a real latency scale, the kernel section bounds per-node
	// creation throughput; validate the mutual exclusion exists by
	// timing two concurrent creations with a visible lock hold.
	cfg := fastConfig()
	cfg.LatencyScale = 1.0
	rt := NewContainerd(cfg)
	rt.lockHold = 30 * time.Millisecond
	rt.createLat = newLatencyModel(1, 0, 0, 0) // isolate the lock section
	rt.pullLat = newLatencyModel(2, 0, 0, 0)
	rt.bootLat = newLatencyModel(3, 0, 0, 0)
	rt.cfg.Network = NewNetworkPool(nil, 0, 8)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rt.Create(context.Background(), spec(core.SandboxID(i), "img")); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("3 creations finished in %v; kernel lock not serializing (want >= 90ms)", elapsed)
	}
}
