package sandbox

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
)

// NetConfig is one recyclable network configuration: a pre-created virtual
// interface plus pre-configured iptables rules that can be attached to a
// new sandbox without touching the kernel's slow paths (paper §4: "each
// worker node maintains a pool of pre-created recyclable network
// configurations along with pre-configured iptables rules").
type NetConfig struct {
	// Index identifies the veth/TAP pair.
	Index int
	// IPSuffix is the last octet range assigned to this config.
	IPSuffix int
}

// NetworkPool manages pre-created network configurations. Acquire returns
// a pooled config almost instantly; when the pool is drained, a slow-path
// creation pays the full kernel cost. A background refiller keeps the pool
// topped up, as the real Dirigent worker does.
type NetworkPool struct {
	clk   clock.Clock
	scale float64

	mu      sync.Mutex
	free    []*NetConfig
	created int
	target  int

	// SlowPathLatency is the cost of creating a config on demand.
	SlowPathLatency time.Duration
	// FastPathLatency is the cost of attaching a pooled config.
	FastPathLatency time.Duration

	slowPathCount int
	fastPathCount int
}

// NewNetworkPool returns a pool pre-filled with size configurations.
func NewNetworkPool(clk clock.Clock, latencyScale float64, size int) *NetworkPool {
	if clk == nil {
		clk = clock.NewReal()
	}
	p := &NetworkPool{
		clk:             clk,
		scale:           latencyScale,
		target:          size,
		SlowPathLatency: 50 * time.Millisecond,
		FastPathLatency: 300 * time.Microsecond,
	}
	for i := 0; i < size; i++ {
		p.free = append(p.free, &NetConfig{Index: i, IPSuffix: i % 250})
		p.created++
	}
	return p
}

// Acquire returns a network configuration, preferring the pool.
func (p *NetworkPool) Acquire(ctx context.Context) (*NetConfig, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		cfg := p.free[n-1]
		p.free = p.free[:n-1]
		p.fastPathCount++
		p.mu.Unlock()
		p.clk.Sleep(scaled(p.FastPathLatency, p.scale))
		return cfg, nil
	}
	p.created++
	idx := p.created
	p.slowPathCount++
	p.mu.Unlock()
	// Slow path: create interface + iptables rules on demand.
	p.clk.Sleep(scaled(p.SlowPathLatency, p.scale))
	return &NetConfig{Index: idx, IPSuffix: idx % 250}, nil
}

// Release recycles a configuration into the pool (up to the target size;
// surplus configs are destroyed).
func (p *NetworkPool) Release(cfg *NetConfig) {
	if cfg == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.target {
		p.free = append(p.free, cfg)
	}
	p.mu.Unlock()
}

// Stats reports pool effectiveness for tests and ablation benches.
func (p *NetworkPool) Stats() (fastPath, slowPath, pooled int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fastPathCount, p.slowPathCount, len(p.free)
}

// ArtifactKind distinguishes cached container images from microVM
// snapshots.
type ArtifactKind uint8

// Cached artifact kinds.
const (
	// ArtifactImage is a container image.
	ArtifactImage ArtifactKind = iota
	// ArtifactSnapshot is a Firecracker microVM snapshot.
	ArtifactSnapshot
)

// ImageCache is the worker-local cache of container images and microVM
// snapshots (paper §4: "Each worker node maintains a local container image
// and snapshot cache to reduce image pulling"). The evaluation prefetches
// images on every node (§5.1); Prefetch reproduces that.
type ImageCache struct {
	mu          sync.Mutex
	kinds       map[string]map[ArtifactKind]bool
	hits        int
	miss        int
	digest      []uint64
	digestStale bool
}

// NewImageCache returns an empty cache.
func NewImageCache() *ImageCache {
	return &ImageCache{kinds: make(map[string]map[ArtifactKind]bool)}
}

// Has reports whether any artifact for image is cached.
func (c *ImageCache) Has(image string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.kinds[image]) > 0 {
		c.hits++
		return true
	}
	c.miss++
	return false
}

// HasKind reports whether a specific artifact kind for image is cached.
func (c *ImageCache) HasKind(image string, kind ArtifactKind) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.kinds[image][kind] {
		c.hits++
		return true
	}
	c.miss++
	return false
}

// Put records an artifact as cached.
func (c *ImageCache) Put(image string, kind ArtifactKind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.kinds[image]
	if !ok {
		m = make(map[ArtifactKind]bool)
		c.kinds[image] = m
		c.digestStale = true
	}
	m[kind] = true
}

// Prefetch caches both the image and snapshot for each given image,
// matching the paper's experimental methodology.
func (c *ImageCache) Prefetch(images ...string) {
	for _, img := range images {
		c.Put(img, ArtifactImage)
		c.Put(img, ArtifactSnapshot)
	}
}

// Digest returns the sorted core.HashImage values of all cached images,
// the form node heartbeats carry to the placer for cache-locality-aware
// scoring. The slice is rebuilt only when the cache contents changed
// since the last call (heartbeats are far more frequent than pulls) and
// is shared between callers: treat it as read-only.
func (c *ImageCache) Digest() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.digestStale {
		return c.digest
	}
	d := make([]uint64, 0, len(c.kinds))
	for img, kinds := range c.kinds {
		if len(kinds) > 0 {
			d = append(d, core.HashImage(img))
		}
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	c.digest = d
	c.digestStale = false
	return d
}

// Stats reports hit/miss counts.
func (c *ImageCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

// String implements fmt.Stringer for debugging.
func (c *ImageCache) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("imagecache{entries=%d hits=%d misses=%d}", len(c.kinds), c.hits, c.miss)
}
