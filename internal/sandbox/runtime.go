// Package sandbox provides the worker-node sandbox runtimes. Dirigent
// integrates runtimes through a three-call interface (paper §4: "Integrating
// additional sandbox runtimes only involves extending a three-call
// interface"): Create, Kill, and List.
//
// The physical runtimes the paper uses — containerd containers and
// Firecracker microVMs restored from snapshots — are not available in this
// environment, so this package implements simulated runtimes with
// calibrated latency and contention models:
//
//   - containerd: container create + network attach, serialized through a
//     per-node kernel lock that caps node creation throughput (the paper
//     identifies kernel lock contention on network interface creation and
//     iptables updates as the bottleneck that saturates Dirigent-containerd
//     at ~1750 cold starts/s across 93 nodes, ~19/s/node).
//   - firecracker: microVM snapshot restore with ~40 ms p50 (the figure the
//     paper itself uses for its worker-emulation scalability study, §5.2.3)
//     and a much lighter kernel section.
//
// Both runtimes draw from a pre-created recyclable network-configuration
// pool with pre-configured iptables rules (paper §4) and consult local
// image / snapshot caches.
package sandbox

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
)

// Spec describes the sandbox to create.
type Spec struct {
	ID       core.SandboxID
	Function core.Function
}

// Instance is a created sandbox.
type Instance struct {
	ID        core.SandboxID
	Function  string
	Image     string
	Addr      string
	NetCfg    *NetConfig
	CreatedAt time.Time
	// BootDelay is how long after creation the sandbox needs before it
	// passes a health probe (e.g. user server startup).
	BootDelay time.Duration
}

// Runtime is Dirigent's three-call sandbox runtime interface.
type Runtime interface {
	// Create spins up a sandbox and returns it once the sandbox process
	// exists (health probing is the worker daemon's job).
	Create(ctx context.Context, spec Spec) (*Instance, error)
	// Kill tears down the sandbox: filesystem, network interfaces, and
	// cgroup structures (paper §4, "Sandbox teardown").
	Kill(id core.SandboxID) error
	// List returns all live sandboxes, used to rebuild control-plane
	// state after a failover (paper §3.4.1).
	List() []*Instance
	// Name identifies the runtime ("containerd", "firecracker").
	Name() string
}

// ImagePreparer is an optional runtime capability used by the worker's
// per-image pre-warm pool: specialize a generic pre-warmed sandbox for a
// concrete image, paying the pull/snapshot cost only on a node-local
// cache miss. Runtimes that do not implement it simply hand over the
// generic sandbox (the seed's behavior).
type ImagePreparer interface {
	// PrepareImage ensures image is usable on this node, blocking for the
	// pull/boot cost if it is not cached yet.
	PrepareImage(image string)
}

// Config carries the shared knobs of the simulated runtimes.
type Config struct {
	// Clock is used for all sleeps; tests substitute a virtual clock.
	Clock clock.Clock
	// LatencyScale multiplies every simulated latency. 1.0 reproduces
	// calibrated real-world latencies; tests use small values or 0.
	LatencyScale float64
	// NodeIP is the worker's IP used to mint sandbox addresses.
	NodeIP [4]byte
	// Network is the shared per-node network configuration pool; nil
	// creates a default pool.
	Network *NetworkPool
	// Images is the node-local image/snapshot cache; nil creates an
	// empty cache (first creation of each image pays the pull).
	Images *ImageCache
	// Seed seeds the latency distributions for reproducibility.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.LatencyScale < 0 {
		c.LatencyScale = 0
	}
	if c.Network == nil {
		c.Network = NewNetworkPool(c.Clock, c.LatencyScale, 64)
	}
	if c.Images == nil {
		c.Images = NewImageCache()
	}
	return c
}

// latencyModel draws creation latencies from a lognormal distribution
// around a median with the given sigma, scaled by LatencyScale.
type latencyModel struct {
	mu     sync.Mutex
	rng    *rand.Rand
	scale  float64
	median time.Duration
	sigma  float64
}

func newLatencyModel(seed int64, scale float64, median time.Duration, sigma float64) *latencyModel {
	return &latencyModel{
		rng:    rand.New(rand.NewSource(seed)),
		scale:  scale,
		median: median,
		sigma:  sigma,
	}
}

// sample draws one latency.
func (m *latencyModel) sample() time.Duration {
	m.mu.Lock()
	z := m.rng.NormFloat64()
	m.mu.Unlock()
	d := float64(m.median) * math.Exp(m.sigma*z) * m.scale
	return time.Duration(d)
}

// scaled scales a fixed duration by the configured latency scale.
func scaled(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) * scale)
}

// base holds the state shared by the simulated runtimes.
type base struct {
	cfg      Config
	name     string
	kernelMu sync.Mutex // models the node-wide kernel lock section
	lockHold time.Duration

	mu        sync.Mutex
	instances map[core.SandboxID]*Instance
	nextPort  uint16
	killed    map[core.SandboxID]bool
}

func newBase(cfg Config, name string, lockHold time.Duration) *base {
	return &base{
		cfg:       cfg,
		name:      name,
		lockHold:  lockHold,
		instances: make(map[core.SandboxID]*Instance),
		killed:    make(map[core.SandboxID]bool),
		nextPort:  30000,
	}
}

// Name implements Runtime.
func (b *base) Name() string { return b.name }

// List implements Runtime.
func (b *base) List() []*Instance {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Instance, 0, len(b.instances))
	for _, inst := range b.instances {
		out = append(out, inst)
	}
	return out
}

// Kill implements Runtime.
func (b *base) Kill(id core.SandboxID) error {
	b.mu.Lock()
	inst, ok := b.instances[id]
	if ok {
		delete(b.instances, id)
		b.killed[id] = true
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%s: kill: unknown sandbox %d", b.name, id)
	}
	// Teardown dismantles filesystem, network interfaces, and cgroups;
	// the network config is recycled into the pool (paper §4).
	b.cfg.Clock.Sleep(scaled(8*time.Millisecond, b.cfg.LatencyScale))
	if inst.NetCfg != nil {
		b.cfg.Network.Release(inst.NetCfg)
	}
	return nil
}

// Count returns the number of live sandboxes.
func (b *base) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.instances)
}

func (b *base) allocPort() uint16 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextPort++
	if b.nextPort == 0 { // wrapped; stay in the ephemeral range
		b.nextPort = 30001
	}
	return b.nextPort
}

// kernelSection serializes the part of sandbox creation that contends on
// kernel locks (network interface setup, iptables updates). Holding a
// node-wide mutex for lockHold models the serialization that caps per-node
// creation throughput.
func (b *base) kernelSection() {
	hold := scaled(b.lockHold, b.cfg.LatencyScale)
	b.kernelMu.Lock()
	if hold > 0 {
		b.cfg.Clock.Sleep(hold)
	}
	b.kernelMu.Unlock()
}

func (b *base) register(inst *Instance) {
	b.mu.Lock()
	b.instances[inst.ID] = inst
	b.mu.Unlock()
}

func (b *base) addr(port uint16) string {
	ip := b.cfg.NodeIP
	return fmt.Sprintf("%d.%d.%d.%d:%d", ip[0], ip[1], ip[2], ip[3], port)
}

// Containerd is the simulated containerd runtime. Creation pulls the image
// on a cache miss, creates the container, and attaches networking through
// the kernel section. Calibrated latencies: ~120 ms container create
// (median), ~500 ms image pull on miss, 45 ms kernel-lock hold.
type Containerd struct {
	*base
	createLat *latencyModel
	pullLat   *latencyModel
	bootLat   *latencyModel
}

// NewContainerd returns a simulated containerd runtime.
func NewContainerd(cfg Config) *Containerd {
	cfg = cfg.withDefaults()
	return &Containerd{
		base:      newBase(cfg, "containerd", 45*time.Millisecond),
		createLat: newLatencyModel(cfg.Seed+1, cfg.LatencyScale, 120*time.Millisecond, 0.25),
		pullLat:   newLatencyModel(cfg.Seed+2, cfg.LatencyScale, 1500*time.Millisecond, 0.30),
		bootLat:   newLatencyModel(cfg.Seed+3, cfg.LatencyScale, 60*time.Millisecond, 0.30),
	}
}

// Create implements Runtime.
func (c *Containerd) Create(ctx context.Context, spec Spec) (*Instance, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !c.cfg.Images.Has(spec.Function.Image) {
		c.cfg.Clock.Sleep(c.pullLat.sample())
		c.cfg.Images.Put(spec.Function.Image, ArtifactImage)
	}
	c.cfg.Clock.Sleep(c.createLat.sample())
	netCfg, err := c.cfg.Network.Acquire(ctx)
	if err != nil {
		return nil, fmt.Errorf("containerd: create sandbox %d: %w", spec.ID, err)
	}
	c.kernelSection()
	inst := &Instance{
		ID:        spec.ID,
		Function:  spec.Function.Name,
		Image:     spec.Function.Image,
		Addr:      c.addr(c.allocPort()),
		NetCfg:    netCfg,
		CreatedAt: c.cfg.Clock.Now(),
		BootDelay: c.bootLat.sample(),
	}
	c.register(inst)
	return inst, nil
}

// PrepareImage implements ImagePreparer: pull the image on a cache miss.
// Claiming a generic pre-warmed container for a function whose image is
// not on the node costs the pull; image-matched pool entries (and nodes
// chosen by cache-aware placement) skip it.
func (c *Containerd) PrepareImage(image string) {
	if !c.cfg.Images.Has(image) {
		c.cfg.Clock.Sleep(c.pullLat.sample())
		c.cfg.Images.Put(image, ArtifactImage)
	}
}

// Firecracker is the simulated Firecracker microVM runtime. With snapshots
// enabled, creation restores a pre-booted microVM image (~40 ms p50); the
// kernel section is short because TAP devices and iptables rules come from
// the pre-created pool. Without snapshots, a full microVM boot is modeled.
type Firecracker struct {
	*base
	snapshots  bool
	restoreLat *latencyModel
	bootVMLat  *latencyModel
	readyLat   *latencyModel
}

// FirecrackerConfig extends Config with the snapshot toggle.
type FirecrackerConfig struct {
	Config
	// Snapshots enables microVM snapshot restore (the configuration that
	// reaches 2500 cold starts/s in the paper).
	Snapshots bool
}

// NewFirecracker returns a simulated Firecracker runtime.
func NewFirecracker(cfg FirecrackerConfig) *Firecracker {
	c := cfg.Config.withDefaults()
	return &Firecracker{
		base:       newBase(c, "firecracker", 4*time.Millisecond),
		snapshots:  cfg.Snapshots,
		restoreLat: newLatencyModel(c.Seed+11, c.LatencyScale, 40*time.Millisecond, 0.20),
		bootVMLat:  newLatencyModel(c.Seed+12, c.LatencyScale, 700*time.Millisecond, 0.25),
		readyLat:   newLatencyModel(c.Seed+13, c.LatencyScale, 10*time.Millisecond, 0.30),
	}
}

// PrepareImage implements ImagePreparer: with snapshots enabled, a cache
// miss boots the VM image and captures a snapshot; a hit loads the cached
// snapshot state into the generic microVM at restore cost.
func (f *Firecracker) PrepareImage(image string) {
	if !f.snapshots {
		return
	}
	if !f.cfg.Images.HasKind(image, ArtifactSnapshot) {
		f.cfg.Clock.Sleep(f.bootVMLat.sample())
		f.cfg.Images.Put(image, ArtifactSnapshot)
	} else {
		f.cfg.Clock.Sleep(f.restoreLat.sample())
	}
}

// Create implements Runtime.
func (f *Firecracker) Create(ctx context.Context, spec Spec) (*Instance, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f.snapshots {
		if !f.cfg.Images.HasKind(spec.Function.Image, ArtifactSnapshot) {
			// First creation boots the VM and captures a snapshot.
			f.cfg.Clock.Sleep(f.bootVMLat.sample())
			f.cfg.Images.Put(spec.Function.Image, ArtifactSnapshot)
		} else {
			f.cfg.Clock.Sleep(f.restoreLat.sample())
		}
	} else {
		f.cfg.Clock.Sleep(f.bootVMLat.sample())
	}
	netCfg, err := f.cfg.Network.Acquire(ctx)
	if err != nil {
		return nil, fmt.Errorf("firecracker: create sandbox %d: %w", spec.ID, err)
	}
	f.kernelSection()
	boot := f.readyLat.sample()
	if !f.snapshots {
		boot += f.readyLat.sample() // guest user-space startup
	}
	inst := &Instance{
		ID:        spec.ID,
		Function:  spec.Function.Name,
		Image:     spec.Function.Image,
		Addr:      f.addr(f.allocPort()),
		NetCfg:    netCfg,
		CreatedAt: f.cfg.Clock.Now(),
		BootDelay: boot,
	}
	f.register(inst)
	return inst, nil
}
