package placement

import (
	"testing"
	"testing/quick"

	"dirigent/internal/core"
)

func nodes(utils ...[2]int) []NodeStatus {
	out := make([]NodeStatus, len(utils))
	for i, u := range utils {
		out[i] = NodeStatus{
			Node: core.WorkerNode{
				ID:       core.NodeID(i + 1),
				Name:     "w",
				CPUMilli: 10000,
				MemoryMB: 65536,
			},
			Util: core.NodeUtilization{
				Node:         core.NodeID(i + 1),
				CPUMilliUsed: u[0],
				MemoryMBUsed: u[1],
			},
		}
	}
	return out
}

var req = Requirements{CPUMilli: 100, MemoryMB: 128}

func TestKubeDefaultPrefersLeastUtilized(t *testing.T) {
	p := NewKubeDefault(1)
	cands := nodes([2]int{9000, 60000}, [2]int{100, 1000}, [2]int{5000, 30000})
	id, err := p.Place(cands, req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("placed on node %d, want 2 (least utilized)", id)
	}
}

func TestKubeDefaultBalancesCPUAndMemory(t *testing.T) {
	p := NewKubeDefault(1)
	// Node 1: CPU hot, memory cold (imbalanced). Node 2: both moderate
	// with the same total allocation — balanced should win.
	cands := nodes([2]int{8000, 0}, [2]int{4000, 26214})
	id, err := p.Place(cands, req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("placed on node %d, want 2 (balanced)", id)
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	policies := []Policy{NewKubeDefault(1), NewRandom(1), NewRoundRobin(), NewHermod()}
	full := nodes([2]int{10000, 65536}, [2]int{9950, 65536})
	for _, p := range policies {
		if _, err := p.Place(full, req); err == nil {
			t.Errorf("%s placed on a full cluster", p.Name())
		}
	}
	empty := []NodeStatus{}
	for _, p := range policies {
		if _, err := p.Place(empty, req); err == nil {
			t.Errorf("%s placed with no nodes", p.Name())
		}
	}
}

func TestPlacementPartialCapacity(t *testing.T) {
	policies := []Policy{NewKubeDefault(1), NewRandom(1), NewRoundRobin(), NewHermod()}
	// Only node 3 has room.
	cands := nodes([2]int{10000, 65536}, [2]int{10000, 65536}, [2]int{0, 0})
	for _, p := range policies {
		id, err := p.Place(cands, req)
		if err != nil {
			t.Errorf("%s: %v", p.Name(), err)
			continue
		}
		if id != 3 {
			t.Errorf("%s placed on %d, want 3", p.Name(), id)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	cands := nodes([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	seen := make(map[core.NodeID]int)
	for i := 0; i < 9; i++ {
		id, err := p.Place(cands, req)
		if err != nil {
			t.Fatal(err)
		}
		seen[id]++
	}
	for id, n := range seen {
		if n != 3 {
			t.Errorf("node %d placed %d times, want 3", id, n)
		}
	}
}

func TestRandomSpreads(t *testing.T) {
	p := NewRandom(7)
	cands := nodes([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	seen := make(map[core.NodeID]int)
	for i := 0; i < 400; i++ {
		id, err := p.Place(cands, req)
		if err != nil {
			t.Fatal(err)
		}
		seen[id]++
	}
	if len(seen) != 4 {
		t.Errorf("random placement used %d of 4 nodes", len(seen))
	}
	for id, n := range seen {
		if n < 50 {
			t.Errorf("node %d only placed %d/400; too skewed", id, n)
		}
	}
}

func TestHermodPrefersModeratelyLoaded(t *testing.T) {
	p := NewHermod()
	// Empty node (0%), moderate node (50%), nearly saturated (95%).
	cands := nodes([2]int{0, 0}, [2]int{5000, 32768}, [2]int{9500, 62000})
	id, err := p.Place(cands, req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("hermod placed on %d, want 2 (moderate load)", id)
	}
}

// TestQuickPlacementAlwaysFeasible property-tests that every policy only
// ever returns nodes that actually fit the request.
func TestQuickPlacementAlwaysFeasible(t *testing.T) {
	policies := []Policy{NewKubeDefault(3), NewRandom(3), NewRoundRobin(), NewHermod()}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		cands := make([]NodeStatus, 0, len(raw))
		for i, r := range raw {
			cands = append(cands, NodeStatus{
				Node: core.WorkerNode{ID: core.NodeID(i + 1), CPUMilli: 10000, MemoryMB: 65536},
				Util: core.NodeUtilization{
					CPUMilliUsed: int(r) % 11000,
					MemoryMBUsed: (int(r) * 7) % 70000,
				},
			})
		}
		byID := make(map[core.NodeID]NodeStatus)
		anyFits := false
		for _, c := range cands {
			byID[c.Node.ID] = c
			if fits(&c, req) {
				anyFits = true
			}
		}
		for _, p := range policies {
			id, err := p.Place(cands, req)
			if err != nil {
				if anyFits {
					return false // refused although a node fits
				}
				continue
			}
			c := byID[id]
			if !fits(&c, req) {
				return false // placed on an overfull node
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{NewKubeDefault(1), "kube-default"},
		{NewRandom(1), "random"},
		{NewRoundRobin(), "round-robin"},
		{NewHermod(), "hermod"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}
