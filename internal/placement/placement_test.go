package placement

import (
	"sync"
	"testing"
	"testing/quick"

	"dirigent/internal/core"
)

func nodes(utils ...[2]int) []NodeStatus {
	out := make([]NodeStatus, len(utils))
	for i, u := range utils {
		out[i] = NodeStatus{
			Node: core.WorkerNode{
				ID:       core.NodeID(i + 1),
				Name:     "w",
				CPUMilli: 10000,
				MemoryMB: 65536,
			},
			Util: core.NodeUtilization{
				Node:         core.NodeID(i + 1),
				CPUMilliUsed: u[0],
				MemoryMBUsed: u[1],
			},
		}
	}
	return out
}

var req = Requirements{CPUMilli: 100, MemoryMB: 128}

func TestKubeDefaultPrefersLeastUtilized(t *testing.T) {
	p := NewKubeDefault(1)
	cands := nodes([2]int{9000, 60000}, [2]int{100, 1000}, [2]int{5000, 30000})
	id, err := p.Place(cands, req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("placed on node %d, want 2 (least utilized)", id)
	}
}

func TestKubeDefaultBalancesCPUAndMemory(t *testing.T) {
	p := NewKubeDefault(1)
	// Node 1: CPU hot, memory cold (imbalanced). Node 2: both moderate
	// with the same total allocation — balanced should win.
	cands := nodes([2]int{8000, 0}, [2]int{4000, 26214})
	id, err := p.Place(cands, req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("placed on node %d, want 2 (balanced)", id)
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	policies := []Policy{NewKubeDefault(1), NewRandom(1), NewRoundRobin(), NewHermod()}
	full := nodes([2]int{10000, 65536}, [2]int{9950, 65536})
	for _, p := range policies {
		if _, err := p.Place(full, req); err == nil {
			t.Errorf("%s placed on a full cluster", p.Name())
		}
	}
	empty := []NodeStatus{}
	for _, p := range policies {
		if _, err := p.Place(empty, req); err == nil {
			t.Errorf("%s placed with no nodes", p.Name())
		}
	}
}

func TestPlacementPartialCapacity(t *testing.T) {
	policies := []Policy{NewKubeDefault(1), NewRandom(1), NewRoundRobin(), NewHermod()}
	// Only node 3 has room.
	cands := nodes([2]int{10000, 65536}, [2]int{10000, 65536}, [2]int{0, 0})
	for _, p := range policies {
		id, err := p.Place(cands, req)
		if err != nil {
			t.Errorf("%s: %v", p.Name(), err)
			continue
		}
		if id != 3 {
			t.Errorf("%s placed on %d, want 3", p.Name(), id)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	cands := nodes([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	seen := make(map[core.NodeID]int)
	for i := 0; i < 9; i++ {
		id, err := p.Place(cands, req)
		if err != nil {
			t.Fatal(err)
		}
		seen[id]++
	}
	for id, n := range seen {
		if n != 3 {
			t.Errorf("node %d placed %d times, want 3", id, n)
		}
	}
}

func TestRandomSpreads(t *testing.T) {
	p := NewRandom(7)
	cands := nodes([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	seen := make(map[core.NodeID]int)
	for i := 0; i < 400; i++ {
		id, err := p.Place(cands, req)
		if err != nil {
			t.Fatal(err)
		}
		seen[id]++
	}
	if len(seen) != 4 {
		t.Errorf("random placement used %d of 4 nodes", len(seen))
	}
	for id, n := range seen {
		if n < 50 {
			t.Errorf("node %d only placed %d/400; too skewed", id, n)
		}
	}
}

func TestHermodPrefersModeratelyLoaded(t *testing.T) {
	p := NewHermod()
	// Empty node (0%), moderate node (50%), nearly saturated (95%).
	cands := nodes([2]int{0, 0}, [2]int{5000, 32768}, [2]int{9500, 62000})
	id, err := p.Place(cands, req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("hermod placed on %d, want 2 (moderate load)", id)
	}
}

// TestQuickPlacementAlwaysFeasible property-tests that every policy only
// ever returns nodes that actually fit the request.
func TestQuickPlacementAlwaysFeasible(t *testing.T) {
	policies := []Policy{NewKubeDefault(3), NewRandom(3), NewRoundRobin(), NewHermod()}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		cands := make([]NodeStatus, 0, len(raw))
		for i, r := range raw {
			cands = append(cands, NodeStatus{
				Node: core.WorkerNode{ID: core.NodeID(i + 1), CPUMilli: 10000, MemoryMB: 65536},
				Util: core.NodeUtilization{
					CPUMilliUsed: int(r) % 11000,
					MemoryMBUsed: (int(r) * 7) % 70000,
				},
			})
		}
		byID := make(map[core.NodeID]NodeStatus)
		anyFits := false
		for _, c := range cands {
			byID[c.Node.ID] = c
			if fits(&c, req) {
				anyFits = true
			}
		}
		for _, p := range policies {
			id, err := p.Place(cands, req)
			if err != nil {
				if anyFits {
					return false // refused although a node fits
				}
				continue
			}
			c := byID[id]
			if !fits(&c, req) {
				return false // placed on an overfull node
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{NewKubeDefault(1), "kube-default"},
		{NewCacheAware(1), "cache-aware"},
		{NewRandom(1), "random"},
		{NewRoundRobin(), "round-robin"},
		{NewHermod(), "hermod"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

// CacheAware sends a cold start to the feasible node holding the image,
// even when the kube score prefers an emptier node.
func TestCacheAwarePrefersImageHolder(t *testing.T) {
	p := NewCacheAware(1)
	img := core.HashImage("registry.local/fn-a")
	cands := nodes([2]int{100, 1000}, [2]int{6000, 40000})
	// The busier node holds the image.
	cands[1].Util.CacheDigest = []uint64{1, img, ^uint64(0)}
	id, err := p.Place(cands, Requirements{CPUMilli: 100, MemoryMB: 128, ImageHash: img})
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("placed on node %d, want 2 (image holder)", id)
	}
}

// Among several holders, the kube score still arbitrates.
func TestCacheAwareScoresAmongHolders(t *testing.T) {
	p := NewCacheAware(1)
	img := core.HashImage("registry.local/fn-a")
	cands := nodes([2]int{9000, 60000}, [2]int{100, 1000})
	cands[0].Util.CacheDigest = []uint64{img}
	cands[1].Util.CacheDigest = []uint64{img}
	id, err := p.Place(cands, Requirements{CPUMilli: 100, MemoryMB: 128, ImageHash: img})
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("placed on node %d, want 2 (least utilized holder)", id)
	}
}

// A full image holder is never chosen over a feasible non-holder: cache
// affinity does not override capacity.
func TestCacheAwareRespectsCapacity(t *testing.T) {
	p := NewCacheAware(1)
	img := core.HashImage("registry.local/fn-a")
	cands := nodes([2]int{10000, 65536}, [2]int{3000, 20000})
	cands[0].Util.CacheDigest = []uint64{img}
	id, err := p.Place(cands, Requirements{CPUMilli: 100, MemoryMB: 128, ImageHash: img})
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("placed on node %d, want 2 (only feasible)", id)
	}
}

// Seed-parity ablation: with no digests reported — or no image hash in
// the request — CacheAware degrades to exactly the KubeDefault choice on
// every input, so switching the Placer knob back is a pure no-op.
func TestCacheAwareBlindMatchesKubeDefault(t *testing.T) {
	blind := NewCacheAware(7)
	kube := NewKubeDefault(7)
	inputs := [][]NodeStatus{
		nodes([2]int{9000, 60000}, [2]int{100, 1000}, [2]int{5000, 30000}),
		nodes([2]int{8000, 0}, [2]int{4000, 26214}),
		nodes([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}),
	}
	for gi, cands := range inputs {
		for trial := 0; trial < 32; trial++ {
			// No digests anywhere: identical scoring and an identically
			// seeded tie-break stream must agree call for call.
			a, errA := blind.Place(cands, Requirements{CPUMilli: 100, MemoryMB: 128, ImageHash: 9999})
			b, errB := kube.Place(cands, Requirements{CPUMilli: 100, MemoryMB: 128, ImageHash: 9999})
			if errA != nil || errB != nil {
				t.Fatalf("group %d: %v %v", gi, errA, errB)
			}
			if a != b {
				t.Fatalf("group %d trial %d: cache-aware(blind) chose %d, kube-default chose %d", gi, trial, a, b)
			}
		}
	}
}

// The tie-break satellite: Place allocates nothing and takes no locks on
// the hot path.
func TestPlaceAllocationFree(t *testing.T) {
	cands := nodes([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	img := core.HashImage("registry.local/fn-a")
	cands[2].Util.CacheDigest = []uint64{img}
	reqs := Requirements{CPUMilli: 100, MemoryMB: 128, ImageHash: img}
	for _, tc := range []struct {
		name string
		p    Policy
	}{
		{"kube-default", NewKubeDefault(1)},
		{"cache-aware", NewCacheAware(1)},
		{"random", NewRandom(1)},
	} {
		if avg := testing.AllocsPerRun(100, func() {
			if _, err := tc.p.Place(cands, reqs); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: Place allocates %.1f per call, want 0", tc.name, avg)
		}
	}
}

// Concurrent placements through one policy instance stay correct (the
// old mutex-guarded rng serialized here; run with -race).
func TestConcurrentPlacements(t *testing.T) {
	cands := nodes([2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0})
	for _, p := range []Policy{NewKubeDefault(1), NewCacheAware(1), NewRandom(1), NewRoundRobin()} {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					id, err := p.Place(cands, req)
					if err != nil || id < 1 || id > 4 {
						t.Errorf("%s: id=%d err=%v", p.Name(), id, err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
