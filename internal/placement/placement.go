// Package placement implements the control plane's sandbox placement
// policies. Dirigent's default mirrors the K8s/Knative scheduler: it
// "favors nodes with the least utilized resources while aiming to balance
// resource utilization across CPU and memory" (paper §4). Alternative
// policies (random, round-robin, a Hermod-style hybrid, and a
// cache-locality-aware variant that consults the image digests workers
// report in heartbeats) plug in through the same interface, as the paper
// describes for Hermod and CH-RLU.
package placement

import (
	"errors"
	"math"
	"sort"
	"sync/atomic"

	"dirigent/internal/core"
)

// NodeStatus combines a worker's identity/capacity with its last reported
// utilization, as tracked by the control plane's health monitor.
type NodeStatus struct {
	Node core.WorkerNode
	Util core.NodeUtilization
}

// Requirements are the per-sandbox resource requests.
type Requirements struct {
	CPUMilli int
	MemoryMB int
	// ImageHash is core.HashImage of the sandbox's image, letting
	// cache-aware policies match it against node cache digests. 0 means
	// the image is unknown; every policy then behaves locality-blind.
	ImageHash uint64
}

// ErrNoCapacity reports that no node can fit the sandbox.
var ErrNoCapacity = errors.New("placement: no node with sufficient capacity")

// Policy selects the worker node for a new sandbox.
type Policy interface {
	// Place returns the chosen node ID. Implementations must not retain
	// the candidates slice.
	Place(candidates []NodeStatus, req Requirements) (core.NodeID, error)
	// Name identifies the policy.
	Name() string
}

// fits reports whether the node has room for the request.
func fits(n *NodeStatus, req Requirements) bool {
	return n.Util.CPUMilliUsed+req.CPUMilli <= n.Node.CPUMilli &&
		n.Util.MemoryMBUsed+req.MemoryMB <= n.Node.MemoryMB
}

// hasImage reports whether the request's image is in the node's reported
// cache digest (sorted ascending, see core.NodeUtilization).
func hasImage(n *NodeStatus, req Requirements) bool {
	if req.ImageHash == 0 || len(n.Util.CacheDigest) == 0 {
		return false
	}
	d := n.Util.CacheDigest
	i := sort.Search(len(d), func(i int) bool { return d[i] >= req.ImageHash })
	return i < len(d) && d[i] == req.ImageHash
}

// tieBreaker is a lock-free, allocation-free source of tie-break
// randomness: an atomic counter stepped by the splitmix64 golden-gamma
// and mixed with the request's image hash, so concurrent placements never
// serialize on a mutex-guarded rng (the same idiom the data plane load
// balancer uses for replica tie-breaks) and ties for different images
// decorrelate.
type tieBreaker struct {
	state atomic.Uint64
}

func (t *tieBreaker) seed(seed int64) { t.state.Store(uint64(seed)) }

// stream derives one draw stream for a placement call; the caller chains
// core.Splitmix64 per draw.
func (t *tieBreaker) stream(key uint64) uint64 {
	return core.Splitmix64(t.state.Add(0x9e3779b97f4a7c15) ^ key)
}

// kubeScore is the K8s default scheduler priority: the average of
// "LeastAllocated" (prefer low post-placement utilization) and
// "BalancedAllocation" (prefer similar CPU and memory fractions).
func kubeScore(c *NodeStatus, req Requirements) float64 {
	cpuFrac := float64(c.Util.CPUMilliUsed+req.CPUMilli) / float64(max(c.Node.CPUMilli, 1))
	memFrac := float64(c.Util.MemoryMBUsed+req.MemoryMB) / float64(max(c.Node.MemoryMB, 1))
	leastAllocated := 1 - (cpuFrac+memFrac)/2
	balanced := 1 - math.Abs(cpuFrac-memFrac)
	return (leastAllocated + balanced) / 2
}

// KubeDefault scores feasible nodes with the average of the K8s
// "LeastAllocated" and "BalancedAllocation" priorities and picks the best.
type KubeDefault struct {
	tb tieBreaker
}

// NewKubeDefault returns the default policy with deterministic tie-breaks.
func NewKubeDefault(seed int64) *KubeDefault {
	p := &KubeDefault{}
	p.tb.seed(seed)
	return p
}

// Name implements Policy.
func (p *KubeDefault) Name() string { return "kube-default" }

// Place implements Policy.
func (p *KubeDefault) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	best, err := placeScored(&p.tb, candidates, req, kubeScore)
	if err != nil {
		return 0, err
	}
	return candidates[best].Node.ID, nil
}

// placeScored picks the best-scoring feasible candidate,
// reservoir-sampling among exact ties with a key-seeded splitmix64 stream
// — no locks, no allocations.
func placeScored(tb *tieBreaker, candidates []NodeStatus, req Requirements, score func(*NodeStatus, Requirements) float64) (int, error) {
	best := -1
	bestScore := math.Inf(-1)
	ties := uint64(0)
	r := tb.stream(req.ImageHash)
	for i := range candidates {
		c := &candidates[i]
		if !fits(c, req) {
			continue
		}
		s := score(c, req)
		switch {
		case s > bestScore:
			bestScore = s
			best = i
			ties = 1
		case s == bestScore:
			// Reservoir-sample among exact ties for fairness.
			ties++
			r = core.Splitmix64(r)
			if r%ties == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return 0, ErrNoCapacity
	}
	return best, nil
}

// CacheAware scores like KubeDefault but lifts nodes whose reported cache
// digest already holds the sandbox's image above every non-holder
// (kube scores lie in [0,1], so a +1 cache bonus strictly dominates):
// cold starts land where the pull is already paid, and fall back to the
// plain kube-default choice when no feasible node has the image or the
// request carries no image hash. The control plane's Placer knob ablates
// back to the locality-blind default.
type CacheAware struct {
	tb tieBreaker
}

// NewCacheAware returns the cache-locality-aware policy.
func NewCacheAware(seed int64) *CacheAware {
	p := &CacheAware{}
	p.tb.seed(seed)
	return p
}

// Name implements Policy.
func (p *CacheAware) Name() string { return "cache-aware" }

// Place implements Policy.
func (p *CacheAware) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	best, err := placeScored(&p.tb, candidates, req, func(c *NodeStatus, req Requirements) float64 {
		s := kubeScore(c, req)
		if hasImage(c, req) {
			s += 1
		}
		return s
	})
	if err != nil {
		return 0, err
	}
	return candidates[best].Node.ID, nil
}

// Random places on a uniformly random feasible node.
type Random struct {
	tb tieBreaker
}

// NewRandom returns a random placement policy.
func NewRandom(seed int64) *Random {
	p := &Random{}
	p.tb.seed(seed)
	return p
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Place implements Policy.
func (p *Random) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	chosen := -1
	feasible := uint64(0)
	r := p.tb.stream(req.ImageHash)
	for i := range candidates {
		if !fits(&candidates[i], req) {
			continue
		}
		feasible++
		r = core.Splitmix64(r)
		if r%feasible == 0 {
			chosen = i
		}
	}
	if chosen < 0 {
		return 0, ErrNoCapacity
	}
	return candidates[chosen].Node.ID, nil
}

// RoundRobin cycles through feasible nodes.
type RoundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns a round-robin placement policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Place implements Policy.
func (p *RoundRobin) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	if len(candidates) == 0 {
		return 0, ErrNoCapacity
	}
	start := int(p.next.Add(1)-1) % len(candidates)
	for i := 0; i < len(candidates); i++ {
		idx := (start + i) % len(candidates)
		if fits(&candidates[idx], req) {
			p.next.Store(uint64(idx + 1))
			return candidates[idx].Node.ID, nil
		}
	}
	return 0, ErrNoCapacity
}

// Hermod implements a Hermod-style hybrid policy (Kaffes et al., SoCC'22):
// prefer packing onto moderately loaded nodes ("least-loaded among warm")
// to balance cold-start avoidance against interference, falling back to the
// globally least-loaded node. The paper lists Hermod as a supported but
// unused policy (§4); it is exercised by the ablation benches.
type Hermod struct{}

// NewHermod returns the Hermod-style policy.
func NewHermod() *Hermod { return &Hermod{} }

// Name implements Policy.
func (p *Hermod) Name() string { return "hermod" }

// Place implements Policy.
func (p *Hermod) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	best := -1
	bestKey := math.Inf(1)
	for i := range candidates {
		c := &candidates[i]
		if !fits(c, req) {
			continue
		}
		cpuFrac := float64(c.Util.CPUMilliUsed) / float64(max(c.Node.CPUMilli, 1))
		// Hermod's hybrid: pack onto busy-but-not-saturated nodes. Key
		// is distance from a 50% utilization sweet spot; saturated nodes
		// (>90%) are deprioritized strongly.
		key := math.Abs(cpuFrac - 0.5)
		if cpuFrac > 0.9 {
			key += 1
		}
		if key < bestKey {
			bestKey = key
			best = i
		}
	}
	if best < 0 {
		return 0, ErrNoCapacity
	}
	return candidates[best].Node.ID, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
