// Package placement implements the control plane's sandbox placement
// policies. Dirigent's default mirrors the K8s/Knative scheduler: it
// "favors nodes with the least utilized resources while aiming to balance
// resource utilization across CPU and memory" (paper §4). Alternative
// policies (random, round-robin, and a Hermod-style hybrid) plug in through
// the same interface, as the paper describes for Hermod and CH-RLU.
package placement

import (
	"errors"
	"math"
	"math/rand"
	"sync"

	"dirigent/internal/core"
)

// NodeStatus combines a worker's identity/capacity with its last reported
// utilization, as tracked by the control plane's health monitor.
type NodeStatus struct {
	Node core.WorkerNode
	Util core.NodeUtilization
}

// Requirements are the per-sandbox resource requests.
type Requirements struct {
	CPUMilli int
	MemoryMB int
}

// ErrNoCapacity reports that no node can fit the sandbox.
var ErrNoCapacity = errors.New("placement: no node with sufficient capacity")

// Policy selects the worker node for a new sandbox.
type Policy interface {
	// Place returns the chosen node ID. Implementations must not retain
	// the candidates slice.
	Place(candidates []NodeStatus, req Requirements) (core.NodeID, error)
	// Name identifies the policy.
	Name() string
}

// fits reports whether the node has room for the request.
func fits(n *NodeStatus, req Requirements) bool {
	return n.Util.CPUMilliUsed+req.CPUMilli <= n.Node.CPUMilli &&
		n.Util.MemoryMBUsed+req.MemoryMB <= n.Node.MemoryMB
}

// KubeDefault scores feasible nodes with the average of the K8s
// "LeastAllocated" and "BalancedAllocation" priorities and picks the best.
type KubeDefault struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewKubeDefault returns the default policy with deterministic tie-breaks.
func NewKubeDefault(seed int64) *KubeDefault {
	return &KubeDefault{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *KubeDefault) Name() string { return "kube-default" }

// Place implements Policy.
func (p *KubeDefault) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	best := -1
	bestScore := math.Inf(-1)
	ties := 0
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range candidates {
		c := &candidates[i]
		if !fits(c, req) {
			continue
		}
		cpuFrac := float64(c.Util.CPUMilliUsed+req.CPUMilli) / float64(max(c.Node.CPUMilli, 1))
		memFrac := float64(c.Util.MemoryMBUsed+req.MemoryMB) / float64(max(c.Node.MemoryMB, 1))
		// LeastAllocated: prefer low post-placement utilization.
		leastAllocated := 1 - (cpuFrac+memFrac)/2
		// BalancedAllocation: prefer similar CPU and memory fractions.
		balanced := 1 - math.Abs(cpuFrac-memFrac)
		score := (leastAllocated + balanced) / 2
		switch {
		case score > bestScore:
			bestScore = score
			best = i
			ties = 1
		case score == bestScore:
			// Reservoir-sample among exact ties for fairness.
			ties++
			if p.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return 0, ErrNoCapacity
	}
	return candidates[best].Node.ID, nil
}

// Random places on a uniformly random feasible node.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a random placement policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Place implements Policy.
func (p *Random) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	chosen := -1
	feasible := 0
	for i := range candidates {
		if !fits(&candidates[i], req) {
			continue
		}
		feasible++
		if p.rng.Intn(feasible) == 0 {
			chosen = i
		}
	}
	if chosen < 0 {
		return 0, ErrNoCapacity
	}
	return candidates[chosen].Node.ID, nil
}

// RoundRobin cycles through feasible nodes.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// NewRoundRobin returns a round-robin placement policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Place implements Policy.
func (p *RoundRobin) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	if len(candidates) == 0 {
		return 0, ErrNoCapacity
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(candidates); i++ {
		idx := (p.next + i) % len(candidates)
		if fits(&candidates[idx], req) {
			p.next = idx + 1
			return candidates[idx].Node.ID, nil
		}
	}
	return 0, ErrNoCapacity
}

// Hermod implements a Hermod-style hybrid policy (Kaffes et al., SoCC'22):
// prefer packing onto moderately loaded nodes ("least-loaded among warm")
// to balance cold-start avoidance against interference, falling back to the
// globally least-loaded node. The paper lists Hermod as a supported but
// unused policy (§4); it is exercised by the ablation benches.
type Hermod struct{}

// NewHermod returns the Hermod-style policy.
func NewHermod() *Hermod { return &Hermod{} }

// Name implements Policy.
func (p *Hermod) Name() string { return "hermod" }

// Place implements Policy.
func (p *Hermod) Place(candidates []NodeStatus, req Requirements) (core.NodeID, error) {
	best := -1
	bestKey := math.Inf(1)
	for i := range candidates {
		c := &candidates[i]
		if !fits(c, req) {
			continue
		}
		cpuFrac := float64(c.Util.CPUMilliUsed) / float64(max(c.Node.CPUMilli, 1))
		// Hermod's hybrid: pack onto busy-but-not-saturated nodes. Key
		// is distance from a 50% utilization sweet spot; saturated nodes
		// (>90%) are deprioritized strongly.
		key := math.Abs(cpuFrac - 0.5)
		if cpuFrac > 0.9 {
			key += 1
		}
		if key < bestKey {
			bestKey = key
			best = i
		}
	}
	if best < 0 {
		return 0, ErrNoCapacity
	}
	return candidates[best].Node.ID, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
