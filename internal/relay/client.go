package relay

import (
	"context"
	"sync"

	"dirigent/internal/cpclient"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// Client is the worker-side liveness client for relay mode: it sends the
// per-worker protocol (register, heartbeat) to the worker's relays in
// preference order and falls back to calling the control plane directly
// when every relay refuses or is unreachable — so a dead relay tier
// degrades to the seed's direct path instead of timing the fleet out.
//
// cpclient.Client cannot serve this role on its own: it only fails over
// on unreachable/not-leader errors, but a live relay that has lost its
// control plane rejects calls with an application error, and the worker
// must treat that exactly like a dead relay.
type Client struct {
	tr     transport.Transport
	relays []string
	direct *cpclient.Client

	mu        sync.Mutex
	preferred int // index of the relay that last accepted a call

	// Fallbacks, if set, counts calls that fell through every relay to
	// the direct control plane path.
	Fallbacks *telemetry.Counter
}

// NewClient returns a relay-mode client. relays are tried in order
// starting from the last one that accepted a call; controlPlanes is the
// direct-mode fallback.
func NewClient(tr transport.Transport, relays, controlPlanes []string) *Client {
	return &Client{
		tr:     tr,
		relays: append([]string(nil), relays...),
		direct: cpclient.New(tr, controlPlanes),
	}
}

// Call sends one RPC through the first relay that accepts it, falling
// back to the direct control plane path when none does. Any relay error
// — unreachable or application-level — moves on to the next relay.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	start := c.preferred
	c.mu.Unlock()
	for i := 0; i < len(c.relays); i++ {
		idx := (start + i) % len(c.relays)
		resp, err := c.tr.Call(ctx, c.relays[idx], method, payload)
		if err == nil {
			c.mu.Lock()
			c.preferred = idx
			c.mu.Unlock()
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	if c.Fallbacks != nil {
		c.Fallbacks.Inc()
	}
	return c.direct.Call(ctx, method, payload)
}
