package relay

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// fakeCP records the worker-liveness RPCs a relay ships, per method.
type fakeCP struct {
	// regDelay stalls registration RPCs so group-commit windows form:
	// callers that arrive while an RPC is in flight must share the next.
	regDelay time.Duration

	mu      sync.Mutex
	batches []*proto.WorkerHeartbeatBatch
	regs    []core.WorkerNode // singletons and batch members, in order
	methods map[string]int
}

func newFakeCP() *fakeCP { return &fakeCP{methods: make(map[string]int)} }

func (f *fakeCP) handle(method string, payload []byte) ([]byte, error) {
	if f.regDelay > 0 &&
		(method == proto.MethodRegisterWorker || method == proto.MethodRegisterWorkerBatch) {
		time.Sleep(f.regDelay)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.methods[method]++
	switch method {
	case proto.MethodWorkerHeartbeatBatch:
		b, err := proto.UnmarshalWorkerHeartbeatBatch(payload)
		if err != nil {
			return nil, err
		}
		f.batches = append(f.batches, b)
	case proto.MethodRegisterWorker:
		r, err := proto.UnmarshalRegisterWorkerRequest(payload)
		if err != nil {
			return nil, err
		}
		f.regs = append(f.regs, r.Worker)
	case proto.MethodRegisterWorkerBatch:
		b, err := proto.UnmarshalRegisterWorkerBatch(payload)
		if err != nil {
			return nil, err
		}
		f.regs = append(f.regs, b.Workers...)
	}
	return nil, nil
}

func (f *fakeCP) count(method string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.methods[method]
}

func (f *fakeCP) lastBatch() *proto.WorkerHeartbeatBatch {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.batches) == 0 {
		return nil
	}
	return f.batches[len(f.batches)-1]
}

func (f *fakeCP) regCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.regs)
}

// parked returns a relay with its flush loop parked (huge interval) so
// tests drive Flush explicitly, plus the fake CP behind it.
func parked(t *testing.T, clk clock.Clock) (*Relay, *fakeCP, *transport.InProc) {
	t.Helper()
	tr := transport.NewInProc()
	cp := newFakeCP()
	if _, err := tr.Listen("cp", cp.handle); err != nil {
		t.Fatal(err)
	}
	r := New(Config{
		Addr:          "relay-1",
		Transport:     tr,
		ControlPlanes: []string{"cp"},
		Clock:         clk,
		FlushInterval: time.Hour,
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r, cp, tr
}

func beat(t *testing.T, tr *transport.InProc, relayAddr string, node core.NodeID) error {
	t.Helper()
	hb := proto.WorkerHeartbeat{Node: node, Util: core.NodeUtilization{Node: node, SandboxCount: int(node)}}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := tr.Call(ctx, relayAddr, proto.MethodWorkerHeartbeat, hb.Marshal())
	return err
}

func TestRelayCoalescesHeartbeats(t *testing.T) {
	r, cp, tr := parked(t, nil)
	for id := core.NodeID(1); id <= 3; id++ {
		if err := beat(t, tr, r.Addr(), id); err != nil {
			t.Fatal(err)
		}
	}
	r.Flush()
	if got := cp.count(proto.MethodWorkerHeartbeatBatch); got != 1 {
		t.Fatalf("flush shipped %d batch RPCs, want 1", got)
	}
	if b := cp.lastBatch(); len(b.Beats) != 3 || b.Relay != r.Addr() {
		t.Fatalf("batch: relay=%q beats=%d", b.Relay, len(b.Beats))
	}
	// Nothing dirty: the next flush ships nothing.
	r.Flush()
	if got := cp.count(proto.MethodWorkerHeartbeatBatch); got != 1 {
		t.Fatalf("idle flush shipped a batch (total %d)", got)
	}
	// One worker re-reports: only its sample ships.
	if err := beat(t, tr, r.Addr(), 2); err != nil {
		t.Fatal(err)
	}
	r.Flush()
	if b := cp.lastBatch(); len(b.Beats) != 1 || b.Beats[0].Node != 2 {
		t.Fatalf("incremental batch: %+v", b.Beats)
	}
	if got := cp.count(proto.MethodWorkerHeartbeat); got != 0 {
		t.Fatalf("relay forwarded %d singleton heartbeats", got)
	}
}

func TestRelayChunksLargeFlush(t *testing.T) {
	tr := transport.NewInProc()
	cp := newFakeCP()
	if _, err := tr.Listen("cp", cp.handle); err != nil {
		t.Fatal(err)
	}
	r := New(Config{
		Addr: "relay-1", Transport: tr, ControlPlanes: []string{"cp"},
		FlushInterval: time.Hour, Chunk: 4,
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	for id := core.NodeID(1); id <= 10; id++ {
		if err := beat(t, tr, r.Addr(), id); err != nil {
			t.Fatal(err)
		}
	}
	r.Flush()
	if got := cp.count(proto.MethodWorkerHeartbeatBatch); got != 3 {
		t.Fatalf("10 samples at chunk 4 shipped %d RPCs, want 3", got)
	}
	total := 0
	cp.mu.Lock()
	for _, b := range cp.batches {
		total += len(b.Beats)
	}
	cp.mu.Unlock()
	if total != 10 {
		t.Fatalf("chunks carried %d samples, want 10", total)
	}
}

func TestRelayRegistrationGroupCommit(t *testing.T) {
	r, cp, tr := parked(t, nil)
	cp.regDelay = 5 * time.Millisecond
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{
				ID: core.NodeID(i + 1), Name: fmt.Sprintf("w%d", i+1), IP: "10.0.0.1", Port: 9000,
			}}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, errs[i] = tr.Call(ctx, r.Addr(), proto.MethodRegisterWorker, req.Marshal())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("registration %d: %v", i, err)
		}
	}
	if got := cp.regCount(); got != n {
		t.Fatalf("CP saw %d registrations, want %d", got, n)
	}
	rpcs := cp.count(proto.MethodRegisterWorker) + cp.count(proto.MethodRegisterWorkerBatch)
	if rpcs >= n {
		t.Fatalf("storm used %d CP RPCs for %d registrations — no group commit", rpcs, n)
	}
}

func TestRelaySingletonRegistrationKeepsSeedShape(t *testing.T) {
	r, cp, tr := parked(t, nil)
	req := proto.RegisterWorkerRequest{Worker: core.WorkerNode{ID: 1, Name: "w1", IP: "10.0.0.1", Port: 9000}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tr.Call(ctx, r.Addr(), proto.MethodRegisterWorker, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got := cp.count(proto.MethodRegisterWorker); got != 1 {
		t.Fatalf("lone registration forwarded as %d singleton RPCs, want 1", got)
	}
	if got := cp.count(proto.MethodRegisterWorkerBatch); got != 0 {
		t.Fatalf("lone registration shipped %d batch RPCs, want 0", got)
	}
}

func TestRelayMissDetection(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_000_000, 0))
	tr := transport.NewInProc()
	cp := newFakeCP()
	if _, err := tr.Listen("cp", cp.handle); err != nil {
		t.Fatal(err)
	}
	r := New(Config{
		Addr: "relay-1", Transport: tr, ControlPlanes: []string{"cp"},
		Clock: clk, FlushInterval: time.Hour,
		MissTimeout: 300 * time.Millisecond, MissGrace: time.Second,
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := beat(t, tr, r.Addr(), 7); err != nil {
		t.Fatal(err)
	}
	r.Flush() // ships the sample
	clk.Advance(400 * time.Millisecond)
	r.Flush()
	b := cp.lastBatch()
	if len(b.Missing) != 1 || b.Missing[0] != 7 || len(b.Beats) != 0 {
		t.Fatalf("miss flush: beats=%v missing=%v", b.Beats, b.Missing)
	}
	// Past the grace window the relay forgets the worker entirely: the
	// prune is silent, so no further batches (or Missing reports) ship.
	clk.Advance(time.Second)
	before := cp.count(proto.MethodWorkerHeartbeatBatch)
	r.Flush()
	r.Flush()
	if got := cp.count(proto.MethodWorkerHeartbeatBatch); got != before {
		t.Fatalf("post-grace flushes shipped %d extra batches, want 0", got-before)
	}
}

func TestRelayRejectsHeartbeatsWhenCPUnreachable(t *testing.T) {
	tr := transport.NewInProc()
	cp := newFakeCP()
	cpLn, err := tr.Listen("cp", cp.handle)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{
		Addr: "relay-1", Transport: tr, ControlPlanes: []string{"cp"},
		FlushInterval: time.Hour,
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// Fail fast over the dead CP instead of cycling the retry window.
	r.cp.RetryWindow = 10 * time.Millisecond
	r.cp.RetryDelay = time.Millisecond

	if err := beat(t, tr, r.Addr(), 1); err != nil {
		t.Fatal(err)
	}
	r.Flush()

	// CP goes away: the next flush fails and the relay starts refusing,
	// so workers fail over instead of heartbeating into a black hole.
	cpLn.Close()
	if err := beat(t, tr, r.Addr(), 1); err != nil {
		t.Fatal(err) // absorbed: cpOK stays true until a flush fails
	}
	r.Flush()
	if err := beat(t, tr, r.Addr(), 1); err == nil {
		t.Fatal("relay accepted a heartbeat with the control plane unreachable")
	}

	// CP comes back: the probe flush rejoins and heartbeats flow again.
	if _, err := tr.Listen("cp", cp.handle); err != nil {
		t.Fatal(err)
	}
	r.Flush()
	if err := beat(t, tr, r.Addr(), 1); err != nil {
		t.Fatalf("relay still refusing after CP returned: %v", err)
	}
}

func TestClientFailsOverAcrossRelaysAndDirect(t *testing.T) {
	tr := transport.NewInProc()
	cp := newFakeCP()
	if _, err := tr.Listen("cp", cp.handle); err != nil {
		t.Fatal(err)
	}
	var r2Calls int
	var mu sync.Mutex
	if _, err := tr.Listen("r2", func(method string, payload []byte) ([]byte, error) {
		mu.Lock()
		r2Calls++
		mu.Unlock()
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	// r1 is never listening: unreachable.
	c := NewClient(tr, []string{"r1", "r2"}, []string{"cp"})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	hb := proto.WorkerHeartbeat{Node: 1}
	if _, err := c.Call(ctx, proto.MethodWorkerHeartbeat, hb.Marshal()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if r2Calls != 1 {
		t.Fatalf("r2 served %d calls, want 1", r2Calls)
	}
	mu.Unlock()
	// Preference sticks: the next call goes straight to r2.
	if _, err := c.Call(ctx, proto.MethodWorkerHeartbeat, hb.Marshal()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if r2Calls != 2 {
		t.Fatalf("r2 served %d calls, want 2", r2Calls)
	}
	mu.Unlock()

	// Both relays dead: the call falls back to the direct CP path.
	c2 := NewClient(tr, []string{"r1-down", "r2-down"}, []string{"cp"})
	if _, err := c2.Call(ctx, proto.MethodWorkerHeartbeat, hb.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got := cp.count(proto.MethodWorkerHeartbeat); got != 1 {
		t.Fatalf("direct CP fallback served %d heartbeats, want 1", got)
	}
}
