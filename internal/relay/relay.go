// Package relay implements the hierarchical liveness tier between worker
// nodes and the control plane. At the paper's fleet scale (§5.2.3 runs
// the control plane against 5000 worker nodes) per-worker liveness RPCs
// are the next bottleneck after registry striping: 5000 workers at 10 Hz
// is 50k control-plane calls per second before any scheduling work. A
// relay absorbs the per-worker traffic below the brain — workers keep
// speaking the unmodified per-worker protocol (MethodWorkerHeartbeat,
// MethodRegisterWorker), just addressed at the relay — and the relay
// ships the control plane one aggregated RPC per flush period:
//
//	WN ──hb──▶ relay ──WorkerHeartbeatBatch (hundreds of samples)──▶ CP
//	WN ──reg─▶ relay ──RegisterWorkerBatch  (group commit)────────▶ CP
//
// The relay holds no authoritative state: liveness is judged by the
// control plane from each batch's CP-side arrival time, and a relay
// crash loses nothing — its workers fail over to another relay (or to
// direct mode) and the control plane treats the silent relay as a
// correlated mass-timeout candidate, re-verifying members individually.
package relay

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// Config parameterizes one relay.
type Config struct {
	// Addr is the relay's RPC address; it doubles as the relay's identity
	// in the batches it ships (resolved after Listen for ":0" binds).
	Addr string
	// Transport carries worker-side and CP-side RPCs.
	Transport transport.Transport
	// ControlPlanes are the CP replica addresses.
	ControlPlanes []string
	// Clock abstracts time; nil selects the wall clock.
	Clock clock.Clock
	// FlushInterval is the batching period (default 100 ms — one CP RPC
	// per relay per worker-heartbeat interval). Very large values park
	// the loop so tests and benchmarks drive Flush explicitly.
	FlushInterval time.Duration
	// Chunk caps how many samples or registrations one CP RPC carries
	// (default 1024), mirroring the control plane's -create-batch
	// chunking so no flush builds an unbounded message.
	Chunk int
	// MissTimeout is how long a once-seen worker can stay silent before
	// the relay reports it Missing to the control plane (default
	// 3 × FlushInterval). The report is a hint: the CP verifies against
	// its own stamps before failing anyone.
	MissTimeout time.Duration
	// MissGrace is how long a silent worker keeps being reported before
	// the relay forgets it entirely (default 10 × MissTimeout) — enough
	// sweeps for the CP to act, without tracking departed workers forever.
	MissGrace time.Duration
	// Metrics receives relay telemetry; nil creates a private registry.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.Chunk <= 0 {
		c.Chunk = 1024
	}
	if c.MissTimeout == 0 {
		c.MissTimeout = 3 * c.FlushInterval
	}
	if c.MissGrace == 0 {
		c.MissGrace = 10 * c.MissTimeout
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	return c
}

// sample is one worker's relay-side tracking entry: its latest heartbeat
// (dirty until shipped) and when the relay last heard from it.
type sample struct {
	beat     proto.WorkerHeartbeat
	dirty    bool
	lastSeen time.Time
}

// Relay is one running relay.
type Relay struct {
	cfg      Config
	clk      clock.Clock
	cp       *cpclient.Client
	listener transport.Listener
	metrics  *telemetry.Registry

	// cpOK tracks whether the last CP flush succeeded. While false the
	// relay refuses worker heartbeats, so workers fail over to their
	// secondary relay or to direct mode instead of reporting into a
	// black hole.
	cpOK atomic.Bool

	mu   sync.Mutex
	seen map[core.NodeID]*sample

	// Registration group commit: announcements that arrive while the
	// previous RegisterWorkerBatch RPC is in flight share the next one.
	regMu      sync.Mutex
	regPending *regGeneration
	regFlusher bool

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	mFlushMs    *telemetry.Histogram
	mBatchSize  *telemetry.Histogram
	mSamples    *telemetry.Counter
	mFlushErrs  *telemetry.Counter
	mRegBatched *telemetry.Counter
}

// regGeneration is one group-commit window of worker registrations. Every
// caller in the generation blocks on done and shares err — a worker's
// register call is acked only after the control plane acked the batch
// that carried it.
type regGeneration struct {
	workers []core.WorkerNode
	done    chan struct{}
	err     error
}

// New builds a relay; call Start to serve.
func New(cfg Config) *Relay {
	cfg = cfg.withDefaults()
	r := &Relay{
		cfg:     cfg,
		clk:     cfg.Clock,
		cp:      cpclient.New(cfg.Transport, cfg.ControlPlanes),
		metrics: cfg.Metrics,
		seen:    make(map[core.NodeID]*sample),
		stopCh:  make(chan struct{}),
	}
	r.cpOK.Store(true)
	r.mFlushMs = r.metrics.Histogram("relay_flush_ms")
	r.mBatchSize = r.metrics.CountHistogram("relay_batch_size")
	r.mSamples = r.metrics.Counter("relay_samples_absorbed")
	r.mFlushErrs = r.metrics.Counter("relay_flush_errors")
	r.mRegBatched = r.metrics.Counter("relay_regs_batched")
	return r
}

// Start listens for worker RPCs and begins the flush loop.
func (r *Relay) Start() error {
	ln, err := r.cfg.Transport.Listen(r.cfg.Addr, r.handleRPC)
	if err != nil {
		return fmt.Errorf("relay %s: %w", r.cfg.Addr, err)
	}
	r.listener = ln
	r.cfg.Addr = ln.Addr() // adopt the resolved address as identity
	r.wg.Add(1)
	go r.flushLoop()
	return nil
}

// Stop simulates a relay crash: worker RPCs stop being served and no
// final flush is sent — the control plane must notice the silence, and
// workers must fail over, exactly as with a real dead relay.
func (r *Relay) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	if r.listener != nil {
		r.listener.Close()
	}
	r.wg.Wait()
}

// Addr returns the relay's RPC address (resolved after Start).
func (r *Relay) Addr() string { return r.cfg.Addr }

// Metrics exposes the relay's metrics registry.
func (r *Relay) Metrics() *telemetry.Registry { return r.metrics }

// handleRPC serves the worker-facing side: the unmodified per-worker
// protocol, absorbed instead of forwarded.
func (r *Relay) handleRPC(method string, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodWorkerHeartbeat:
		if !r.cpOK.Load() {
			// Don't absorb beats we can't deliver: an error here makes
			// the worker's relay client fail over immediately instead of
			// heartbeating into a partitioned relay until the CP times
			// the whole membership out.
			return nil, fmt.Errorf("relay %s: control plane unreachable", r.cfg.Addr)
		}
		hb, err := proto.UnmarshalWorkerHeartbeat(payload)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		s := r.seen[hb.Node]
		if s == nil {
			s = &sample{}
			r.seen[hb.Node] = s
		}
		s.beat = *hb
		s.dirty = true
		s.lastSeen = r.clk.Now()
		r.mu.Unlock()
		r.mSamples.Inc()
		return nil, nil
	case proto.MethodRegisterWorker:
		req, err := proto.UnmarshalRegisterWorkerRequest(payload)
		if err != nil {
			return nil, err
		}
		return nil, r.register(req.Worker)
	default:
		return nil, fmt.Errorf("relay %s: unknown method %q", r.cfg.Addr, method)
	}
}

// register joins the current group-commit generation and waits for its
// batch to be acked by the control plane.
func (r *Relay) register(w core.WorkerNode) error {
	r.regMu.Lock()
	if r.regPending == nil {
		r.regPending = &regGeneration{done: make(chan struct{})}
	}
	gen := r.regPending
	gen.workers = append(gen.workers, w)
	if !r.regFlusher {
		r.regFlusher = true
		r.wg.Add(1)
		go r.regFlushLoop()
	}
	r.regMu.Unlock()
	select {
	case <-gen.done:
		return gen.err
	case <-r.stopCh:
		return fmt.Errorf("relay %s: stopped", r.cfg.Addr)
	}
}

// regFlushLoop drains registration generations: whatever accumulated
// while the previous RegisterWorkerBatch RPC was in flight ships as the
// next one (the same coalescing shape as the worker's readiness flusher
// and the WAL's group commit).
func (r *Relay) regFlushLoop() {
	defer r.wg.Done()
	for {
		r.regMu.Lock()
		gen := r.regPending
		r.regPending = nil
		if gen == nil {
			r.regFlusher = false
			r.regMu.Unlock()
			return
		}
		r.regMu.Unlock()
		gen.err = r.sendRegistrations(gen.workers)
		close(gen.done)
	}
}

// sendRegistrations ships one generation, chunked at Chunk. A lone
// registration keeps the seed's singleton RPC shape, mirroring how the
// control plane's kill path sends isolated teardowns.
func (r *Relay) sendRegistrations(workers []core.WorkerNode) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Registrations must land: ride out CP leader elections with the
	// client's capped-backoff retry instead of failing the whole
	// generation back to every waiting worker.
	if len(workers) == 1 {
		req := proto.RegisterWorkerRequest{Worker: workers[0]}
		_, err := r.cp.CallWithRetry(ctx, proto.MethodRegisterWorker, req.Marshal())
		return err
	}
	r.mRegBatched.Add(int64(len(workers)))
	for len(workers) > 0 {
		chunk := workers
		if len(chunk) > r.cfg.Chunk {
			chunk = chunk[:r.cfg.Chunk]
		}
		workers = workers[len(chunk):]
		batch := proto.RegisterWorkerBatch{Relay: r.cfg.Addr, Workers: chunk}
		if _, err := r.cp.CallWithRetry(ctx, proto.MethodRegisterWorkerBatch, batch.Marshal()); err != nil {
			return err
		}
	}
	return nil
}

func (r *Relay) flushLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		case <-r.clk.After(r.cfg.FlushInterval):
			r.Flush()
		}
	}
}

// Flush ships one aggregated heartbeat batch: every sample absorbed
// since the previous flush, plus the Missing list (once-seen workers
// silent past MissTimeout). Exported so tests and benchmarks drive the
// batching deterministically; the flush loop calls it on its period.
func (r *Relay) Flush() {
	start := r.clk.Now()
	r.mu.Lock()
	var beats []proto.WorkerHeartbeat
	var missing []core.NodeID
	for id, s := range r.seen {
		switch {
		case s.dirty:
			beats = append(beats, s.beat)
			s.dirty = false
		case start.Sub(s.lastSeen) > r.cfg.MissGrace:
			delete(r.seen, id)
		case start.Sub(s.lastSeen) > r.cfg.MissTimeout:
			missing = append(missing, id)
		}
	}
	r.mu.Unlock()
	if len(beats) == 0 && len(missing) == 0 && r.cpOK.Load() {
		return
	}
	// While cpOK is false the relay is rejecting worker heartbeats, so no
	// new samples can trigger a flush; the empty batch below doubles as
	// the reachability probe that lets the relay rejoin once the control
	// plane answers again.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for first := true; first || len(beats) > 0; first = false {
		chunk := beats
		if len(chunk) > r.cfg.Chunk {
			chunk = chunk[:r.cfg.Chunk]
		}
		beats = beats[len(chunk):]
		batch := proto.WorkerHeartbeatBatch{Relay: r.cfg.Addr, Beats: chunk}
		if first {
			batch.Missing = missing // ship the hints once, in the first chunk
		}
		r.mBatchSize.ObserveMs(float64(len(chunk)))
		if _, err := r.cp.Call(ctx, proto.MethodWorkerHeartbeatBatch, batch.Marshal()); err != nil {
			r.cpOK.Store(false)
			r.mFlushErrs.Inc()
			return
		}
	}
	r.cpOK.Store(true)
	r.mFlushMs.Observe(r.clk.Since(start))
}
