package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Control plane failover: per-invocation slowdown over time (paper Fig. 11)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "faults",
		Title: "Data plane and worker failure recovery (paper §5.4)",
		Run:   runFaults,
	})
}

func liveOptions() cluster.Options {
	return cluster.Options{
		ControlPlanes:     3,
		DataPlanes:        3,
		Workers:           6,
		Runtime:           "containerd",
		LatencyScale:      0.02, // compress sandbox latencies 50x
		AutoscaleInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
		MetricInterval:    10 * time.Millisecond,
		NoDownscaleWindow: 2 * time.Second,
		QueueTimeout:      20 * time.Second,
	}
}

func liveFunction(name string) core.Function {
	fn := core.Function{
		Name:    name,
		Image:   "registry.local/" + name,
		Port:    8080,
		Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.StableWindow = 5 * time.Second
	fn.Scaling.PanicWindow = 500 * time.Millisecond
	fn.Scaling.ScaleToZeroGrace = 2 * time.Second
	return fn
}

// measureDirigentRegistration times function registration on the live
// in-process cluster (used by the "registration" experiment).
func measureDirigentRegistration(n int) (first time.Duration, meanMs float64, total time.Duration, err error) {
	c, err := cluster.New(liveOptions())
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Shutdown()
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := c.RegisterFunction(liveFunction(fmt.Sprintf("reg-%d", i))); err != nil {
			return 0, 0, 0, err
		}
		if i == 0 {
			first = time.Since(t0)
		}
	}
	total = time.Since(start)
	meanMs = float64(total.Milliseconds()) / float64(n)
	return first, meanMs, total, nil
}

// runFig11 drives a steady invocation load against the live cluster,
// kills the control plane leader mid-run, and reports mean per-invocation
// slowdown per 250 ms bucket around the failure. Dirigent's expected
// behavior (paper §5.4): a brief spike for cold invocations buffered
// during failover, stabilizing within a couple of seconds because leader
// election + state reload take ~10 ms and sandbox state merges from
// workers.
func runFig11(w io.Writer, scale float64) error {
	c, err := cluster.New(liveOptions())
	if err != nil {
		return err
	}
	defer c.Shutdown()

	const fns = 6
	exec := 40 * time.Millisecond
	for i := 0; i < fns; i++ {
		fn := liveFunction(fmt.Sprintf("ft-%d", i))
		if err := c.RegisterFunction(fn); err != nil {
			return err
		}
		c.RegisterWorkload(fn.Image, 1.0)
	}

	runFor := time.Duration(float64(12*time.Second) * scale)
	if runFor < 4*time.Second {
		runFor = 4 * time.Second
	}
	failAt := runFor / 3

	type obs struct {
		at       time.Duration
		slowdown float64
	}
	var mu sync.Mutex
	var observations []obs
	var wg sync.WaitGroup
	start := time.Now()
	rng := rand.New(rand.NewSource(7))

	stop := make(chan struct{})
	for i := 0; i < fns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Duration(20+rng.Intn(30)) * time.Millisecond):
				}
				arrival := time.Since(start)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_, err := c.Invoke(ctx, fmt.Sprintf("ft-%d", i), cluster.ExecPayload(exec))
				cancel()
				if err != nil {
					continue
				}
				e2e := time.Since(start) - arrival
				mu.Lock()
				observations = append(observations, obs{at: arrival, slowdown: float64(e2e) / float64(exec)})
				mu.Unlock()
			}
		}(i)
	}

	time.Sleep(failAt)
	killStart := time.Now()
	c.KillCPLeader()
	// Measure leader re-election latency.
	var electionTime time.Duration
	for {
		if c.Leader() != nil {
			electionTime = time.Since(killStart)
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	time.Sleep(runFor - failAt)
	close(stop)
	wg.Wait()

	// Bucket slowdowns per 250 ms.
	buckets := make(map[int][]float64)
	mu.Lock()
	for _, o := range observations {
		buckets[int(o.at/(250*time.Millisecond))] = append(buckets[int(o.at/(250*time.Millisecond))], o.slowdown)
	}
	mu.Unlock()

	t := newTable("time_s", "mean_slowdown", "max_slowdown", "n")
	maxBucket := int(runFor / (250 * time.Millisecond))
	for b := 0; b <= maxBucket; b++ {
		vals := buckets[b]
		if len(vals) == 0 {
			continue
		}
		st := telemetry.ComputeStats(vals)
		t.addRow(fmt.Sprintf("%.2f", float64(b)*0.25), st.Avg, st.Max, st.N)
	}
	t.write(w)
	fmt.Fprintf(w, "# Leader killed at t=%.2fs; new leader elected in %v.\n", failAt.Seconds(), electionTime.Round(time.Millisecond))
	fmt.Fprintln(w, "# Expected shape: slowdown spikes briefly at the failure point and re-stabilizes")
	fmt.Fprintln(w, "# within ~1-2s; warm invocations are unaffected throughout.")
	return nil
}

// runFaults reproduces the §5.4 data plane and worker failure experiments
// on the live cluster, reporting recovery times and slowdown impact.
func runFaults(w io.Writer, scale float64) error {
	_ = scale

	// --- Data plane failure ---
	c, err := cluster.New(liveOptions())
	if err != nil {
		return err
	}
	fn := liveFunction("dp-victim")
	if err := c.RegisterFunction(fn); err != nil {
		c.Shutdown()
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if _, err := c.Invoke(ctx, "dp-victim", nil); err != nil {
		cancel()
		c.Shutdown()
		return err
	}
	cancel()

	killStart := time.Now()
	c.KillDataPlane(0)
	// Recovery: restart the replica (systemd in the paper) and wait until
	// it serves again through re-registration and cache sync.
	if err := c.RestartDataPlane(0); err != nil {
		c.Shutdown()
		return err
	}
	var dpRecovery time.Duration
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := c.Transport.Call(ctx, c.DPs[0].Addr(), "dp.Invoke",
			invokePayload("dp-victim"))
		cancel()
		if err == nil {
			dpRecovery = time.Since(killStart)
			break
		}
		if time.Since(killStart) > 30*time.Second {
			c.Shutdown()
			return fmt.Errorf("data plane did not recover")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Shutdown()

	// --- Worker failure ---
	opts := liveOptions()
	opts.Workers = 6
	c2, err := cluster.New(opts)
	if err != nil {
		return err
	}
	defer c2.Shutdown()
	wfn := liveFunction("w-victim")
	wfn.Scaling.MinScale = 6
	if err := c2.RegisterFunction(wfn); err != nil {
		return err
	}
	c2.RegisterWorkload(wfn.Image, 1.0)
	if err := c2.AwaitScale("w-victim", 6, 20*time.Second); err != nil {
		return err
	}
	exec := 30 * time.Millisecond
	slowdowns := telemetry.NewHistogram()
	// Fail half the workers (the paper fails 47/93) and keep invoking.
	for i := 0; i < opts.Workers/2; i++ {
		c2.KillWorker(i)
	}
	wkill := time.Now()
	for time.Since(wkill) < 3*time.Second {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		t0 := time.Now()
		_, err := c2.Invoke(ctx, "w-victim", cluster.ExecPayload(exec))
		cancel()
		if err == nil {
			slowdowns.ObserveMs(float64(time.Since(t0)) / float64(exec))
		}
		time.Sleep(10 * time.Millisecond)
	}

	t := newTable("scenario", "metric", "value")
	t.addRow("data plane failure", "recovery_time", dpRecovery.Round(time.Millisecond).String())
	t.addRow("worker failure (half the fleet)", "peak_slowdown", slowdowns.Max())
	t.addRow("worker failure (half the fleet)", "p50_slowdown", slowdowns.Percentile(50))
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: data plane recovery within ~2s (vs 15s for Knative/Istio);")
	fmt.Fprintln(w, "# worker failures cause a modest slowdown spike (~2.7 peak in the paper, 10x below Knative)")
	fmt.Fprintln(w, "# because replacement sandboxes spin up on surviving nodes immediately.")
	return nil
}

func invokePayload(fn string) []byte {
	req := proto.InvokeRequest{Function: fn}
	return req.Marshal()
}
