package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/placement"
	"dirigent/internal/predictor"
	"dirigent/internal/telemetry"
	"dirigent/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "warmth",
		Title: "Predictive warmth ablation: per-image prewarm pools × cache-aware placement on the Azure-like trace",
		Run:   runWarmth,
	})
}

// warmthTimeScale compresses trace time onto the wall clock: one trace
// minute replays in one wall second, so timer periods, autoscaler windows,
// and the predictor's demand windows all shrink by the same factor and the
// trace's temporal structure (synchronized timer bursts, idle gaps long
// enough to scale to zero) survives the compression.
const warmthTimeScale = 1.0 / 30.0

type warmthRow struct {
	Mode        string  `json:"mode"`      // "static" | "predictive"
	Placement   string  `json:"placement"` // "kube-default" | "cache-aware"
	Invocations int     `json:"invocations"`
	ColdStarts  int     `json:"cold_starts"`
	ColdP50Ms   float64 `json:"cold_start_p50_ms"`
	ColdP99Ms   float64 `json:"cold_start_p99_ms"`
	// PrewarmHitRate is the fraction of cold starts served by a pool
	// entry already warmed for the function's own image (zero by
	// construction in static mode, whose pool holds only the generic
	// base image); BaseHitRate is the fraction served by a base-image
	// entry, which still pays the image pull at claim time.
	PrewarmHitRate float64 `json:"prewarm_hit_rate"`
	BaseHitRate    float64 `json:"base_hit_rate"`
	ImagePulls     int64   `json:"image_pulls"`
}

// runWarmth replays the compressed Azure-like trace against the live
// in-process cluster under the four ablation arms {static, predictive} ×
// {kube-default, cache-aware} and reports cold-start latency, prewarm hit
// rates, and image-pull counts. The rows are also committed to
// BENCH_warmth.json.
func runWarmth(w io.Writer, scale float64) error {
	tr := trace.NewAzureLike(trace.Config{
		Functions: scaleInt(96, scale, 12),
		Duration:  maxDuration(time.Duration(float64(12*time.Minute)*scale), 4*time.Minute),
		Seed:      7,
	})
	warmup := warmupFor(tr)
	fmt.Fprintf(w, "trace: %d functions, %d invocations over %v (replayed in %v wall)\n",
		len(tr.Functions), len(tr.Invocations), tr.Duration,
		time.Duration(float64(tr.Duration)*warmthTimeScale).Round(time.Second))

	arms := []struct {
		mode, placement        string
		predictive, cacheAware bool
	}{
		{"static", "kube-default", false, false},
		{"static", "cache-aware", false, true},
		{"predictive", "kube-default", true, false},
		{"predictive", "cache-aware", true, true},
	}
	rows := make([]warmthRow, 0, len(arms))
	for _, arm := range arms {
		row, err := runWarmthArm(tr, warmup, arm.predictive, arm.cacheAware)
		if err != nil {
			return fmt.Errorf("arm %s/%s: %w", arm.mode, arm.placement, err)
		}
		row.Mode, row.Placement = arm.mode, arm.placement
		rows = append(rows, row)
		fmt.Fprintf(w, "%-11s %-13s inv=%-5d cold=%-4d p50=%6.2fms p99=%7.2fms hit=%5.1f%% base=%5.1f%% pulls=%d\n",
			row.Mode, row.Placement, row.Invocations, row.ColdStarts,
			row.ColdP50Ms, row.ColdP99Ms, 100*row.PrewarmHitRate, 100*row.BaseHitRate, row.ImagePulls)
	}

	fmt.Fprintln(w, "# Expected shape: predictive+cache-aware strictly beats static+kube-default on")
	fmt.Fprintln(w, "# cold-start p99 AND prewarm hit rate: per-image pools pay the image pull at")
	fmt.Fprintln(w, "# fill time (off the critical path) where static base-image claims pay it at")
	fmt.Fprintln(w, "# claim time, and cache-aware placement steers repeats onto nodes whose digest")
	fmt.Fprintln(w, "# already advertises the image, so far fewer cold starts pull at all.")

	if scale < 1 {
		// Sub-scale runs (CI smoke) exercise the harness without
		// overwriting the committed paper-scale artifact.
		return nil
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_warmth.json", append(data, '\n'), 0o644)
}

func warmthFunction(spec *trace.FunctionSpec) core.Function {
	fn := core.Function{
		Name:    spec.Name,
		Image:   "registry.local/" + spec.Name,
		Port:    8080,
		Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	// Autoscaler windows compressed like the trace, so functions scale to
	// zero between timer firings just as they would over real minutes.
	fn.Scaling.StableWindow = 300 * time.Millisecond
	fn.Scaling.PanicWindow = 100 * time.Millisecond
	fn.Scaling.ScaleToZeroGrace = 100 * time.Millisecond
	return fn
}

func runWarmthArm(tr *trace.Trace, warmup time.Duration, predictive, cacheAware bool) (warmthRow, error) {
	var placer placement.Policy // nil selects the CP's kube-default
	if cacheAware {
		placer = placement.NewCacheAware(1)
	}
	c, err := cluster.New(cluster.Options{
		ControlPlanes:     1,
		DataPlanes:        2,
		Workers:           12,
		Runtime:           "containerd",
		LatencyScale:      0.05,
		AutoscaleInterval: 10 * time.Millisecond,
		MetricInterval:    5 * time.Millisecond,
		// The CP suppresses downscale for NoDownscaleWindow after taking
		// leadership (failover hygiene); the compressed replay needs
		// scale-to-zero from the first second, so effectively disable it.
		NoDownscaleWindow: time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
		QueueTimeout:      10 * time.Second,
		Prewarm:           12,
		PredictivePrewarm: predictive,
		Predictor: predictor.Config{
			// One trace minute = one demand window, compressed.
			Window: time.Duration(float64(time.Minute) * warmthTimeScale),
			Lead:   time.Duration(float64(30*time.Second) * warmthTimeScale),
		},
		Placer: placer,
		Seed:   42,
	})
	if err != nil {
		return warmthRow{}, err
	}
	defer c.Shutdown()

	for _, spec := range tr.Functions {
		fn := warmthFunction(spec)
		if err := c.RegisterFunction(fn); err != nil {
			return warmthRow{}, err
		}
		c.RegisterWorkload(fn.Image, 0)
	}

	type sample struct {
		at      time.Duration // trace time
		cold    bool
		schedMs float64
		failed  bool
	}
	samples := make([]sample, len(tr.Invocations))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 512)
	var baseHits, baseImageHits, baseAllHits, baseMisses, basePulls int64
	snapped := false
	snapshot := func() (imageHits, baseOnly, allHits, misses, pulls int64) {
		imageHits = c.Metrics.Counter("prewarm_image_hits").Value()
		baseOnly = c.Metrics.Counter("prewarm_base_hits").Value()
		allHits = c.Metrics.Counter("prewarm_hits").Value()
		misses = c.Metrics.Counter("prewarm_misses").Value()
		for _, cache := range c.Caches {
			_, m := cache.Stats()
			pulls += int64(m)
		}
		return
	}

	start := time.Now()
	for i, inv := range tr.Invocations {
		if !snapped && inv.At >= warmup {
			// Counter baselines at the warmup cutoff: everything before
			// (cache population, the predictor's learning phase) is
			// methodology, not measurement.
			baseImageHits, baseHits, baseAllHits, baseMisses, basePulls = snapshot()
			snapped = true
		}
		at := time.Duration(float64(inv.At) * warmthTimeScale)
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, name string, traceAt time.Duration) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			resp, err := c.Invoke(ctx, name, nil)
			if err != nil {
				samples[i] = sample{at: traceAt, failed: true}
				return
			}
			samples[i] = sample{
				at:      traceAt,
				cold:    resp.ColdStart,
				schedMs: float64(resp.SchedulingLatencyUs) / 1000,
			}
		}(i, inv.Function.Name, inv.At)
	}
	wg.Wait()
	imageHits, baseOnly, allHits, misses, pulls := snapshot()
	if os.Getenv("WARMTH_DEBUG") != "" {
		for _, name := range []string{"cold_starts", "warm_starts", "sandboxes_created", "sandboxes_killed",
			"prewarm_filled", "prewarm_hits", "prewarm_image_hits", "prewarm_base_hits", "prewarm_misses",
			"prewarm_evictions", "prewarm_pushes", "prewarm_push_errors", "prewarm_create_errors"} {
			fmt.Fprintf(os.Stderr, "DEBUG %s=%d\n", name, c.Metrics.Counter(name).Value())
		}
		if cp := c.Leader(); cp != nil {
			gen, set := cp.PrewarmTargetSnapshot()
			fmt.Fprintf(os.Stderr, "DEBUG prewarm gen=%d set=%v\n", gen, set)
		}
	}

	hist := telemetry.NewHistogram()
	row := warmthRow{}
	for _, s := range samples {
		if s.at < warmup || s.failed {
			continue
		}
		row.Invocations++
		if s.cold {
			row.ColdStarts++
			hist.ObserveMs(s.schedMs)
		}
	}
	row.ColdP50Ms = hist.Percentile(50)
	row.ColdP99Ms = hist.Percentile(99)
	// Denominator: every cold create that consulted the pool (a hit of
	// either flavor or a miss), counted over the measurement window.
	if claims := (allHits - baseAllHits) + (misses - baseMisses); claims > 0 {
		row.PrewarmHitRate = float64(imageHits-baseImageHits) / float64(claims)
		row.BaseHitRate = float64(baseOnly-baseHits) / float64(claims)
	}
	row.ImagePulls = pulls - basePulls
	return row, nil
}
