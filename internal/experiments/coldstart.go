package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/proto"
	"dirigent/internal/sandbox"
	"dirigent/internal/store"
	"dirigent/internal/transport"
	"dirigent/internal/worker"
)

func init() {
	register(Experiment{
		ID:    "coldstart",
		Title: "Cold-start pipeline sweep: batched creates + coalesced fan-out + pre-warm pool vs the seed per-sandbox path",
		Run:   runColdStart,
	})
}

// ColdStartConfig parameterizes one burst scale-up measurement on a live
// in-process cluster: Burst cold starts land in a single autoscale sweep
// across Workers nodes.
type ColdStartConfig struct {
	// Workers is the number of worker nodes (default 4).
	Workers int
	// Burst is how many sandboxes one sweep must bring up (default 64).
	Burst int
	// CreateBatch is the control plane's per-worker batch cap; 1 selects
	// the seed ablation (per-sandbox create RPCs, per-function endpoint
	// broadcasts), 0 the batched default.
	CreateBatch int
	// Prewarm is the per-worker pre-warm pool size (0 = disabled).
	Prewarm int
	// LatencyScale scales the simulated containerd latencies, like
	// sandbox.Config: 0 makes runtime work instantaneous (useful in
	// tests); the bench and the coldstart experiment pass 0.02,
	// compressing sandbox creation ~50x like the live experiments.
	LatencyScale float64
	// Seed seeds the runtime latency models.
	Seed int64
}

func (c ColdStartConfig) withDefaults() ColdStartConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Burst <= 0 {
		c.Burst = 64
	}
	if c.LatencyScale < 0 {
		c.LatencyScale = 0
	}
	return c
}

// ColdStartHarness is a live in-process cluster (control plane, one data
// plane, N workers over the in-proc transport) for burst cold-start
// measurements. The autoscale loop is parked; RunBurst drives sweeps
// explicitly so time-to-all-ready excludes ticker phase noise.
type ColdStartHarness struct {
	cfg     ColdStartConfig
	tr      *transport.InProc
	cp      *controlplane.ControlPlane
	dp      *dataplane.DataPlane
	workers []*worker.Worker
	db      *store.Store
	seq     int
}

// NewColdStartHarness builds and starts the cluster.
func NewColdStartHarness(cfg ColdStartConfig) (*ColdStartHarness, error) {
	cfg = cfg.withDefaults()
	h := &ColdStartHarness{cfg: cfg, tr: transport.NewInProc(), db: store.NewMemory()}
	h.cp = controlplane.New(controlplane.Config{
		Addr:      "coldstart-cp",
		Transport: h.tr,
		DB:        h.db,
		// Sweeps are driven explicitly via RunBurst.
		AutoscaleInterval: time.Hour,
		HeartbeatTimeout:  time.Hour,
		CreateBatch:       cfg.CreateBatch,
	})
	if err := h.cp.Start(); err != nil {
		return nil, err
	}
	h.dp = dataplane.New(dataplane.Config{
		ID:             1,
		Addr:           "coldstart-dp:8000",
		Transport:      h.tr,
		ControlPlanes:  []string{"coldstart-cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   30 * time.Second,
	})
	if err := h.dp.Start(); err != nil {
		h.Close()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		addr := fmt.Sprintf("10.9.0.%d:9000", i+1)
		w := worker.New(worker.Config{
			Node: core.WorkerNode{
				ID: core.NodeID(i + 1), Name: fmt.Sprintf("cs-w%d", i+1),
				IP: fmt.Sprintf("10.9.0.%d", i+1), Port: 9000,
				CPUMilli: 1 << 20, MemoryMB: 1 << 20,
			},
			Addr: addr,
			Runtime: sandbox.NewContainerd(sandbox.Config{
				LatencyScale: cfg.LatencyScale,
				NodeIP:       [4]byte{10, 9, 0, byte(i + 1)},
				Seed:         cfg.Seed + int64(i),
			}),
			Transport:         h.tr,
			ControlPlanes:     []string{"coldstart-cp"},
			HeartbeatInterval: 20 * time.Millisecond,
			Prewarm:           cfg.Prewarm,
		})
		if err := w.Start(); err != nil {
			h.Close()
			return nil, err
		}
		h.workers = append(h.workers, w)
	}
	if err := h.AwaitPrewarm(30 * time.Second); err != nil {
		h.Close()
		return nil, err
	}
	if err := h.warmImageCaches(); err != nil {
		h.Close()
		return nil, err
	}
	// Separate warm-up from measurement: the warm-up sweep's samples
	// would otherwise skew the reported batch sizes and scheduling
	// latencies at low iteration counts.
	m := h.cp.Metrics()
	for _, name := range []string{"cold_start_sched_ms", "create_batch_size", "endpoint_fanout_batch_size", "sandbox_ready_ms"} {
		m.Histogram(name).Reset()
	}
	return h, nil
}

// warmImageCaches runs one throwaway burst sized to put the benchmark
// image on every node, so measured bursts compare scheduling pipelines
// rather than first-pull luck.
func (h *ColdStartHarness) warmImageCaches() error {
	// A runtime spec no node matches bypasses the pre-warm pool, forcing
	// real creations that pull the image onto every node.
	fn := core.Function{
		Name: "cache-warm", Image: "img", Port: 8080, Runtime: "warmup-bypass-prewarm",
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.MinScale = h.cfg.Workers * 2
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := h.tr.Call(ctx, "coldstart-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		return err
	}
	h.cp.Reconcile()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ready, _ := h.cp.FunctionScale("cache-warm"); ready >= fn.Scaling.MinScale {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coldstart: image cache warm-up stuck")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := h.tr.Call(ctx, "coldstart-cp", proto.MethodDeregisterFunction, core.MarshalFunction(&fn)); err != nil {
		return err
	}
	for {
		total := 0
		for _, w := range h.workers {
			total += w.SandboxCount()
		}
		if total == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coldstart: warm-up sandboxes never drained")
		}
		time.Sleep(time.Millisecond)
	}
	return h.AwaitPrewarm(30 * time.Second)
}

// AwaitPrewarm blocks until every worker's pre-warm pool is full (no-op
// when pre-warming is disabled).
func (h *ColdStartHarness) AwaitPrewarm(timeout time.Duration) error {
	if h.cfg.Prewarm == 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		full := true
		for _, w := range h.workers {
			if w.Metrics().Gauge("prewarm_pool_size").Value() < int64(h.cfg.Prewarm) {
				full = false
				break
			}
		}
		if full {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coldstart: prewarm pools never filled")
		}
		time.Sleep(time.Millisecond)
	}
}

// RunBurst registers a fresh function pinned to Burst replicas, drives
// one autoscale sweep, and returns the time until every replica is
// ready. The function is torn down afterwards so bursts can repeat.
func (h *ColdStartHarness) RunBurst() (time.Duration, error) {
	h.seq++
	name := fmt.Sprintf("burst-%d", h.seq)
	fn := core.Function{
		Name: name, Image: "img", Port: 8080, Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.MinScale = h.cfg.Burst
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := h.tr.Call(ctx, "coldstart-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		return 0, err
	}

	start := time.Now()
	h.cp.Reconcile()
	deadline := start.Add(60 * time.Second)
	for {
		if ready, _ := h.cp.FunctionScale(name); ready >= h.cfg.Burst {
			break
		}
		if time.Now().After(deadline) {
			ready, creating := h.cp.FunctionScale(name)
			return 0, fmt.Errorf("coldstart: burst %s stuck at ready=%d creating=%d", name, ready, creating)
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)

	// Tear the burst down and wait for the workers to drain and the
	// pre-warm pools to refill, so back-to-back bursts are comparable.
	if _, err := h.tr.Call(ctx, "coldstart-cp", proto.MethodDeregisterFunction, core.MarshalFunction(&fn)); err != nil {
		return 0, err
	}
	drainDeadline := time.Now().Add(60 * time.Second)
	for {
		total := 0
		for _, w := range h.workers {
			total += w.SandboxCount()
		}
		if total == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			return 0, fmt.Errorf("coldstart: %d sandboxes never drained", total)
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.AwaitPrewarm(30 * time.Second); err != nil {
		return 0, err
	}
	return elapsed, nil
}

// PrewarmHits sums prewarm_hits across workers.
func (h *ColdStartHarness) PrewarmHits() int64 {
	var n int64
	for _, w := range h.workers {
		n += w.Metrics().Counter("prewarm_hits").Value()
	}
	return n
}

// CP exposes the control plane (telemetry assertions in benchmarks).
func (h *ColdStartHarness) CP() *controlplane.ControlPlane { return h.cp }

// Close tears the cluster down.
func (h *ColdStartHarness) Close() {
	for _, w := range h.workers {
		w.Stop()
	}
	if h.dp != nil {
		h.dp.Stop()
	}
	if h.cp != nil {
		h.cp.Stop()
	}
	if h.db != nil {
		h.db.Close()
	}
}

// runColdStart sweeps burst sizes across the three cold-start pipeline
// configurations and reports time-to-all-ready plus the batching and
// pre-warm telemetry that explains it.
func runColdStart(w io.Writer, scale float64) error {
	bursts := []int{16, 64, 128}
	if scale < 1 {
		bursts = []int{scaleInt(16, scale, 4), scaleInt(64, scale, 8)}
	}
	configs := []struct {
		name        string
		createBatch int
		prewarm     func(burst, workers int) int
	}{
		{"seed (per-sandbox RPCs)", 1, func(int, int) int { return 0 }},
		{"batched", 0, func(int, int) int { return 0 }},
		// Pool slack over the even share covers placement skew.
		{"batched+prewarm", 0, func(burst, workers int) int { return (burst+workers-1)/workers + 2 }},
	}
	const workers = 4
	t := newTable("config", "burst", "time_to_ready_ms", "sched_p99_ms", "create_batch_p50", "fanout_p50", "prewarm_hits")
	for _, cfg := range configs {
		for _, burst := range bursts {
			h, err := NewColdStartHarness(ColdStartConfig{
				Workers:      workers,
				Burst:        burst,
				CreateBatch:  cfg.createBatch,
				Prewarm:      cfg.prewarm(burst, workers),
				LatencyScale: 0.02,
				Seed:         int64(burst),
			})
			if err != nil {
				return err
			}
			elapsed, err := h.RunBurst()
			if err != nil {
				h.Close()
				return err
			}
			m := h.cp.Metrics()
			t.addRow(
				cfg.name,
				burst,
				float64(elapsed)/float64(time.Millisecond),
				m.Histogram("cold_start_sched_ms").Percentile(99),
				m.Histogram("create_batch_size").Percentile(50),
				m.Histogram("endpoint_fanout_batch_size").Percentile(50),
				int(h.PrewarmHits()),
			)
			h.Close()
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: batched cuts per-sweep RPC overhead vs seed; batched+prewarm")
	fmt.Fprintln(w, "# skips runtime init entirely and wins time-to-all-ready by the largest margin.")
	fmt.Fprintln(w, "# create_batch_p50 is 1 in the seed ablation and ~burst/workers when batched.")
	return nil
}
