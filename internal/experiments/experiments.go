// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is addressable by the figure/table ID
// used in DESIGN.md's experiment index, runs the corresponding workload
// against the relevant system models (and the live in-process cluster for
// the fault-tolerance experiments), and prints the same rows/series the
// paper reports.
//
// A scale parameter in (0, 1] shrinks durations, function counts, and
// sweep densities so the same experiments can run as quick `go test`
// benchmarks; scale 1 reproduces the paper-sized runs.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the figure/table identifier ("fig7", "azure500", ...).
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run executes the experiment at the given scale, writing the
	// regenerated rows/series to w.
	Run func(w io.Writer, scale float64) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the experiment with the given ID at the given scale.
func Run(w io.Writer, id string, scale float64) error {
	e, ok := Get(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (use `list`)", id)
	}
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("experiments: scale %v out of (0, 1]", scale)
	}
	fmt.Fprintf(w, "=== %s: %s (scale %.2f) ===\n", e.ID, e.Title, scale)
	return e.Run(w, scale)
}

// table is a minimal aligned-column text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 10000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for i, h := range t.header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for i := range t.header {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	io.WriteString(w, b.String())
}

// scaleInt shrinks n by scale with a floor.
func scaleInt(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}
