package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
)

func init() {
	register(Experiment{
		ID:    "cpha",
		Title: "Highly-available control plane: Raft log replication cost, follower-read offload, and leader-kill failover (paper §5.4)",
		Run:   runCPHA,
	})
}

// cphaRow is one measured configuration of the CP tier sweep.
type cphaRow struct {
	Replicas      int     `json:"replicas"`
	FollowerReads bool    `json:"follower_reads"`
	LeaderKill    bool    `json:"leader_kill"`
	Writes        int     `json:"writes"`
	WriteP50Ms    float64 `json:"write_p50_ms"`
	WriteP99Ms    float64 `json:"write_p99_ms"`
	Reads         int     `json:"reads"`
	ReadP50Ms     float64 `json:"read_p50_ms"`
	ReadP99Ms     float64 `json:"read_p99_ms"`
	ReadErrors    int     `json:"read_errors"`
	// LeaderReadShare is the fraction of read RPCs the leader had to serve
	// itself — the offload headline (1.0 leader-only, →1/N with follower
	// reads across N replicas).
	ReadsLeader     int64   `json:"reads_leader_served"`
	ReadsFollower   int64   `json:"reads_follower_served"`
	LeaderReadShare float64 `json:"leader_read_share"`
	// FailoverMs is the time from the leader kill to the first write
	// accepted by the new leader (0 for no-kill rows).
	FailoverMs float64 `json:"failover_ms"`
	// Lost counts acknowledged registrations missing from the final
	// leader's function list — must be zero (quorum-committed writes
	// survive the kill).
	Lost int `json:"lost"`
	// Replication wire telemetry: AppendEntries rounds carrying entries,
	// entries shipped, and the mean wire batch (group commit on the wire).
	ReplRounds    uint64  `json:"repl_rounds"`
	ReplEntries   uint64  `json:"repl_entries"`
	ReplMeanBatch float64 `json:"repl_mean_batch"`
}

// runCPHA sweeps the CP tier through {1, 3} replicas × {leader-only,
// follower-reads} × {steady, leader kill mid-burst}, driving concurrent
// durable writes (function registrations through the replicated log) and
// read-only RPCs (ListFunctions through cpclient.CallRead) against a live
// cluster. Self-checking: every acknowledged write must survive — a
// leader kill mid-burst loses zero accepted registrations — and follower
// reads must measurably offload the leader.
func runCPHA(w io.Writer, scale float64) error {
	configs := []struct {
		replicas int
		fr       bool
		kill     bool
	}{
		{1, false, false},
		{3, false, false},
		{3, true, false},
		{3, false, true},
		{3, true, true},
	}
	var rows []cphaRow
	for _, c := range configs {
		row, err := cphaRun(c.replicas, c.fr, c.kill, scale)
		if err != nil {
			return fmt.Errorf("cpha replicas=%d fr=%v kill=%v: %w", c.replicas, c.fr, c.kill, err)
		}
		rows = append(rows, row)
	}

	t := newTable("replicas", "follower_reads", "leader_kill", "writes", "wr_p50_ms", "wr_p99_ms",
		"reads", "rd_p50_ms", "rd_p99_ms", "leader_share", "failover_ms", "lost", "mean_batch")
	for _, r := range rows {
		t.addRow(r.Replicas, fmt.Sprintf("%v", r.FollowerReads), fmt.Sprintf("%v", r.LeaderKill),
			r.Writes, r.WriteP50Ms, r.WriteP99Ms, r.Reads, r.ReadP50Ms, r.ReadP99Ms,
			fmt.Sprintf("%.2f", r.LeaderReadShare), r.FailoverMs, r.Lost, fmt.Sprintf("%.1f", r.ReplMeanBatch))
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: 3-replica writes pay one quorum round trip over the 1-replica")
	fmt.Fprintln(w, "# baseline, amortized by wire group commit (mean_batch > 1 under concurrency);")
	fmt.Fprintln(w, "# follower reads drop the leader's read share from 1.0 toward 1/3; a leader kill")
	fmt.Fprintln(w, "# mid-burst stalls writes for one election (failover_ms) and loses zero")
	fmt.Fprintln(w, "# acknowledged registrations (lost=0): the new leader serves from its applied log.")

	for _, r := range rows {
		if r.Lost > 0 {
			return fmt.Errorf("cpha: %d acknowledged writes lost (replicas=%d kill=%v)", r.Lost, r.Replicas, r.LeaderKill)
		}
		if r.FollowerReads && r.ReadsFollower == 0 {
			return fmt.Errorf("cpha: follower reads enabled but zero reads served by followers")
		}
		if !r.FollowerReads && r.ReadsFollower != 0 {
			return fmt.Errorf("cpha: follower reads disabled but %d reads served by followers", r.ReadsFollower)
		}
		if r.Replicas > 1 && r.ReplEntries == 0 {
			return fmt.Errorf("cpha: no entries replicated with %d replicas", r.Replicas)
		}
	}

	if scale < 1 {
		return nil
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if werr := os.WriteFile("BENCH_cpha.json", append(data, '\n'), 0o644); werr != nil {
		fmt.Fprintf(w, "# warning: BENCH_cpha.json not written: %v\n", werr)
	} else {
		fmt.Fprintln(w, "# wrote BENCH_cpha.json")
	}
	return nil
}

// cphaRun measures one CP tier configuration.
func cphaRun(replicas int, followerReads, kill bool, scale float64) (cphaRow, error) {
	row := cphaRow{Replicas: replicas, FollowerReads: followerReads, LeaderKill: kill}
	cl, err := cluster.New(cluster.Options{
		ControlPlanes:   replicas,
		DataPlanes:      2,
		Workers:         2,
		CPFollowerReads: followerReads,
	})
	if err != nil {
		return row, err
	}
	defer cl.Shutdown()

	addrs := make([]string, replicas)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("cp%d:7000", i)
	}
	client := cpclient.New(cl.Transport, addrs)
	// A follower refusal (lease expired mid-burst) shouldn't pin reads to
	// the leader for the default 1 s — that would drown the offload signal.
	client.ReadCooldown = 5 * time.Millisecond

	const writers = 4
	perWriter := scaleInt(60, scale, 12)
	readers := 4
	if replicas == 1 {
		readers = 2
	}

	var (
		mu         sync.Mutex
		accepted   []string
		writeLatMs []float64
		readLatMs  []float64
		readErrs   int
		done       atomic.Int64
	)
	total := writers * perWriter
	readStop := make(chan struct{})
	var wg, rg sync.WaitGroup

	// Readers hammer the read path for the whole write burst; with
	// follower reads on, cpclient round-robins them across non-leader
	// replicas.
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-readStop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				t0 := time.Now()
				_, err := client.CallRead(ctx, proto.MethodListFunctions, nil)
				cancel()
				mu.Lock()
				if err != nil {
					readErrs++
				} else {
					readLatMs = append(readLatMs, float64(time.Since(t0))/float64(time.Millisecond))
				}
				mu.Unlock()
			}
		}()
	}

	// Writers push durable registrations through the replicated log;
	// CallWithRetry rides out the election when the kill row decapitates
	// the tier mid-burst.
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				fn := core.Function{
					Name:    fmt.Sprintf("cpha-w%d-%d", wi, j),
					Image:   "registry.local/cpha",
					Port:    8080,
					Runtime: "containerd",
					Scaling: core.DefaultScalingConfig(),
				}
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				t0 := time.Now()
				_, err := client.CallWithRetry(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
				cancel()
				if err != nil {
					done.Add(1)
					continue
				}
				mu.Lock()
				accepted = append(accepted, fn.Name)
				writeLatMs = append(writeLatMs, float64(time.Since(t0))/float64(time.Millisecond))
				mu.Unlock()
				done.Add(1)
			}
		}(wi)
	}

	// The kill row decapitates the tier once half the writes are in.
	var failover time.Duration
	if kill {
		for done.Load() < int64(total/2) {
			time.Sleep(time.Millisecond)
		}
		cl.KillCPLeader()
		t0 := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		probe := core.Function{
			Name: "cpha-failover-probe", Image: "registry.local/cpha", Port: 8080,
			Runtime: "containerd", Scaling: core.DefaultScalingConfig(),
		}
		_, perr := client.CallWithRetry(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&probe))
		cancel()
		if perr != nil {
			return row, fmt.Errorf("no leader accepted writes after kill: %w", perr)
		}
		failover = time.Since(t0)
	}

	wg.Wait()
	close(readStop)
	rg.Wait()

	// Verify every acknowledged registration against the surviving
	// leader's function list — the zero-loss claim.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	respB, err := client.CallWithRetry(ctx, proto.MethodListFunctions, nil)
	cancel()
	if err != nil {
		return row, fmt.Errorf("final function list: %w", err)
	}
	list, err := proto.UnmarshalFunctionList(respB)
	if err != nil {
		return row, err
	}
	have := make(map[string]bool, len(list.Functions))
	for i := range list.Functions {
		have[list.Functions[i].Name] = true
	}
	for _, name := range accepted {
		if !have[name] {
			row.Lost++
		}
	}

	row.Writes = len(writeLatMs)
	row.WriteP50Ms = percentile(writeLatMs, 0.50)
	row.WriteP99Ms = percentile(writeLatMs, 0.99)
	row.Reads = len(readLatMs)
	row.ReadP50Ms = percentile(readLatMs, 0.50)
	row.ReadP99Ms = percentile(readLatMs, 0.99)
	row.ReadErrors = readErrs
	row.FailoverMs = float64(failover) / float64(time.Millisecond)
	// The read counters live in the shared cluster registry, so they
	// aggregate across replicas — exactly the tier-wide split we want.
	row.ReadsLeader = cl.Metrics.Counter("cp_read_leader_served").Value()
	row.ReadsFollower = cl.Metrics.Counter("cp_read_follower_served").Value()
	if tot := row.ReadsLeader + row.ReadsFollower; tot > 0 {
		row.LeaderReadShare = float64(row.ReadsLeader) / float64(tot)
	}
	// Each node's counters cover its own leadership stints; summing over
	// all replicas (the killed one included — its counters outlive Stop)
	// totals the wire rounds regardless of who leads at sample time.
	for _, cp := range cl.CPs {
		rounds, entries := cp.ReplStats()
		row.ReplRounds += rounds
		row.ReplEntries += entries
	}
	if row.ReplRounds > 0 {
		row.ReplMeanBatch = float64(row.ReplEntries) / float64(row.ReplRounds)
	}
	return row, nil
}

// percentile returns the p-quantile of the samples (0 for an empty set).
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
