package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/fleet"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

func init() {
	register(Experiment{
		ID:    "fleet",
		Title: "Worker-registry fleet sweep: striped registry vs single lock under 1k-worker registration storms, heartbeat floods, scale bursts and correlated failures (paper §5.2.3)",
		Run:   runFleet,
	})
}

// FleetConfig parameterizes one emulated-fleet measurement: Workers
// in-process worker emulations against one control plane, with the
// registry striped across WorkerShards locks (1 = the seed's single
// registry lock).
type FleetConfig struct {
	// Workers is the fleet size (default 256).
	Workers int
	// WorkerShards stripes the CP worker registry; 1 selects the seed
	// global-lock ablation, 0 the sharded default.
	WorkerShards int
	// HeartbeatInterval paces each worker's liveness loop (default
	// 100 ms; pass a very large value to park the loops and drive
	// HeartbeatRound explicitly, as the benchmarks do).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the CP's failure-detection threshold
	// (default 750 ms — comfortably above the heartbeat interval so
	// measurement phases never fail live workers spuriously).
	HeartbeatTimeout time.Duration
	// ReadyDelay simulates per-sandbox creation latency on the
	// emulated workers (default 0: readiness is immediate).
	ReadyDelay time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Workers <= 0 {
		c.Workers = 256
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 750 * time.Millisecond
	}
	return c
}

// FleetHarness is a live control plane plus an emulated worker fleet
// over the in-proc transport. The autoscale loop is parked (sweeps are
// driven explicitly); the health loop runs on its normal period so
// correlated failures are detected the way a deployment would.
type FleetHarness struct {
	cfg FleetConfig
	tr  *transport.InProc
	cp  *controlplane.ControlPlane
	fl  *fleet.Fleet
	db  *store.Store
	seq int
}

// NewFleetHarness builds the control plane and the (not yet started)
// fleet; call RegisterFleet to run the registration storm.
func NewFleetHarness(cfg FleetConfig) (*FleetHarness, error) {
	cfg = cfg.withDefaults()
	h := &FleetHarness{cfg: cfg, tr: transport.NewInProc(), db: store.NewMemory()}
	h.cp = controlplane.New(controlplane.Config{
		Addr:              "fleet-cp",
		Transport:         h.tr,
		DB:                h.db,
		WorkerShards:      cfg.WorkerShards,
		AutoscaleInterval: time.Hour, // sweeps driven explicitly
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
	})
	if err := h.cp.Start(); err != nil {
		return nil, err
	}
	h.fl = fleet.New(fleet.Config{
		Size:              cfg.Workers,
		Transport:         h.tr,
		ControlPlanes:     []string{"fleet-cp"},
		HeartbeatInterval: cfg.HeartbeatInterval,
		ReadyDelay:        cfg.ReadyDelay,
	})
	return h, nil
}

// RegisterFleet starts every worker concurrently (the registration
// storm) and returns how long until the whole fleet is registered.
func (h *FleetHarness) RegisterFleet() (time.Duration, error) {
	start := time.Now()
	if err := h.fl.Start(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if got := h.cp.WorkerCount(); got != h.cfg.Workers {
		return 0, fmt.Errorf("fleet: registered %d of %d workers", got, h.cfg.Workers)
	}
	return elapsed, nil
}

// HeartbeatRound drives one explicit heartbeat from every worker,
// spread across the given number of goroutines, and returns the wall
// time for the round. With G well above the core count the round
// approximates the arrival concurrency of a real fleet's heartbeats.
func (h *FleetHarness) HeartbeatRound(goroutines int) time.Duration {
	workers := h.fl.Workers()
	if goroutines <= 0 {
		goroutines = 16
	}
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(workers); i += goroutines {
				workers[i].SendHeartbeat()
			}
		}(g)
	}
	wg.Wait()
	return time.Since(start)
}

// RegisterScaledFunction registers a function pinned to minScale
// replicas and waits until they are all ready — and leaves it running,
// so subsequent sweeps, worker failures and drains operate on a loaded
// cluster (ScaleBurst, by contrast, tears its function down again).
func (h *FleetHarness) RegisterScaledFunction(name string, minScale int) error {
	fn := core.Function{Name: name, Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = minScale
	fn.Scaling.StableWindow = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := h.tr.Call(ctx, "fleet-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		return err
	}
	h.cp.Reconcile()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ready, _ := h.cp.FunctionScale(name); ready >= minScale {
			return nil
		}
		if time.Now().After(deadline) {
			ready, creating := h.cp.FunctionScale(name)
			return fmt.Errorf("fleet: %s stuck at ready=%d creating=%d, want %d", name, ready, creating, minScale)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// ScaleBurst registers a fresh function pinned to burst replicas,
// drives one autoscale sweep, waits until every replica is ready on the
// emulated fleet, then tears the function down again. It returns the
// time from sweep to all-ready.
func (h *FleetHarness) ScaleBurst(burst int) (time.Duration, error) {
	h.seq++
	name := fmt.Sprintf("fleet-burst-%d", h.seq)
	fn := core.Function{Name: name, Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = burst
	fn.Scaling.StableWindow = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := h.tr.Call(ctx, "fleet-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		return 0, err
	}
	start := time.Now()
	h.cp.Reconcile()
	deadline := start.Add(60 * time.Second)
	for {
		if ready, _ := h.cp.FunctionScale(name); ready >= burst {
			break
		}
		if time.Now().After(deadline) {
			ready, creating := h.cp.FunctionScale(name)
			return 0, fmt.Errorf("fleet: burst %s stuck at ready=%d creating=%d", name, ready, creating)
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	if _, err := h.tr.Call(ctx, "fleet-cp", proto.MethodDeregisterFunction, core.MarshalFunction(&fn)); err != nil {
		return 0, err
	}
	drainDeadline := time.Now().Add(60 * time.Second)
	for h.fl.SandboxCount() > 0 {
		if time.Now().After(drainDeadline) {
			return 0, fmt.Errorf("fleet: %d sandboxes never drained", h.fl.SandboxCount())
		}
		time.Sleep(time.Millisecond)
	}
	return elapsed, nil
}

// CorrelatedFailure crashes frac of the fleet at once and returns the
// time until the health monitor has failed every victim (heartbeat
// timeout + detection sweep + endpoint drain; the timeout is the floor).
func (h *FleetHarness) CorrelatedFailure(frac float64) (time.Duration, error) {
	start := time.Now()
	victims := h.fl.StopFraction(frac)
	want := h.cfg.Workers - len(victims)
	deadline := start.Add(h.cfg.HeartbeatTimeout + 60*time.Second)
	for h.cp.WorkerCount() > want {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("fleet: %d workers still healthy, want %d", h.cp.WorkerCount(), want)
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(start), nil
}

// CP exposes the control plane (telemetry assertions in benchmarks).
func (h *FleetHarness) CP() *controlplane.ControlPlane { return h.cp }

// Fleet exposes the emulated fleet.
func (h *FleetHarness) Fleet() *fleet.Fleet { return h.fl }

// Transport exposes the harness transport; the control plane listens on
// "fleet-cp".
func (h *FleetHarness) Transport() *transport.InProc { return h.tr }

// Close tears the cluster down.
func (h *FleetHarness) Close() {
	h.fl.Stop()
	h.cp.Stop()
	h.db.Close()
}

// runFleet sweeps fleet sizes across the striped registry and the
// single-lock ablation, reporting the four fleet phases plus the
// registry-contention and health-sweep telemetry that explains them.
func runFleet(w io.Writer, scale float64) error {
	sizes := []int{scaleInt(256, scale, 64), scaleInt(1024, scale, 128)}
	configs := []struct {
		name   string
		shards int
	}{
		{"sharded (32 stripes)", 0},
		{"global (-worker-shards 1)", 1},
	}
	t := newTable("config", "workers", "reg_storm_ms", "hb_round_ms", "burst_ms",
		"fail_detect_ms", "reg_contended", "health_sweep_p99_ms")
	for _, cfg := range configs {
		for _, size := range sizes {
			h, err := NewFleetHarness(FleetConfig{Workers: size, WorkerShards: cfg.shards})
			if err != nil {
				return err
			}
			regMs, err := h.RegisterFleet()
			if err != nil {
				h.Close()
				return err
			}
			// Steady state: a few explicit full-fleet heartbeat rounds on
			// top of the background loops.
			var hbTotal time.Duration
			const rounds = 5
			for i := 0; i < rounds; i++ {
				hbTotal += h.HeartbeatRound(32)
			}
			burstMs, err := h.ScaleBurst(size)
			if err != nil {
				h.Close()
				return err
			}
			failMs, err := h.CorrelatedFailure(0.25)
			if err != nil {
				h.Close()
				return err
			}
			m := h.CP().Metrics()
			t.addRow(
				cfg.name,
				size,
				float64(regMs)/float64(time.Millisecond),
				float64(hbTotal)/float64(rounds)/float64(time.Millisecond),
				float64(burstMs)/float64(time.Millisecond),
				float64(failMs)/float64(time.Millisecond),
				int(m.Counter("reg_lock_contended").Value()),
				m.Histogram("health_sweep_ms").Percentile(99),
			)
			h.Close()
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: the striped registry keeps reg_contended near zero while the")
	fmt.Fprintln(w, "# single-lock ablation serializes registration storms, heartbeat floods and")
	fmt.Fprintln(w, "# health sweeps on one RWMutex. fail_detect_ms is floored by the heartbeat")
	fmt.Fprintln(w, "# timeout (750 ms); the striping win is the sweep/drain cost on top of it.")
	return nil
}
