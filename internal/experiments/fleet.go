package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/fleet"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

func init() {
	register(Experiment{
		ID:    "fleet",
		Title: "Paper-scale fleet sweep: direct vs relayed liveness at 1k/2.5k/5k workers — registration storms, CP liveness RPC rates, health-sweep cost and correlated-failure detection (paper §5.2.3)",
		Run:   runFleet,
	})
}

// FleetConfig parameterizes one emulated-fleet measurement: Workers
// in-process worker emulations against one control plane, with the
// registry striped across WorkerShards locks (1 = the seed's single
// registry lock).
type FleetConfig struct {
	// Workers is the fleet size (default 256).
	Workers int
	// WorkerShards stripes the CP worker registry; 1 selects the seed
	// global-lock ablation, 0 the sharded default.
	WorkerShards int
	// HeartbeatInterval paces each worker's liveness loop (default
	// 100 ms; pass a very large value to park the loops and drive
	// HeartbeatRound explicitly, as the benchmarks do).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the CP's failure-detection threshold
	// (default 750 ms — comfortably above the heartbeat interval so
	// measurement phases never fail live workers spuriously).
	HeartbeatTimeout time.Duration
	// ReadyDelay simulates per-sandbox creation latency on the
	// emulated workers (default 0: readiness is immediate).
	ReadyDelay time.Duration
	// Relays, when > 0, stands up a relay tier of this many relays
	// between the emulated workers and the control plane: liveness
	// traffic arrives at the CP as aggregated batches. 0 keeps the
	// seed's direct per-worker protocol (the -relay off ablation).
	Relays int
	// RelayFlush is each relay's batching period (default 100 ms —
	// one CP RPC per relay per worker-heartbeat interval).
	RelayFlush time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Workers <= 0 {
		c.Workers = 256
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 750 * time.Millisecond
	}
	return c
}

// FleetHarness is a live control plane plus an emulated worker fleet
// over the in-proc transport. The autoscale loop is parked (sweeps are
// driven explicitly); the health loop runs on its normal period so
// correlated failures are detected the way a deployment would.
type FleetHarness struct {
	cfg    FleetConfig
	tr     *transport.InProc
	cp     *controlplane.ControlPlane
	fl     *fleet.Fleet
	relays *fleet.Relays // nil in direct mode
	db     *store.Store
	seq    int
}

// NewFleetHarness builds the control plane and the (not yet started)
// fleet; call RegisterFleet to run the registration storm.
func NewFleetHarness(cfg FleetConfig) (*FleetHarness, error) {
	cfg = cfg.withDefaults()
	h := &FleetHarness{cfg: cfg, tr: transport.NewInProc(), db: store.NewMemory()}
	h.cp = controlplane.New(controlplane.Config{
		Addr:              "fleet-cp",
		Transport:         h.tr,
		DB:                h.db,
		WorkerShards:      cfg.WorkerShards,
		AutoscaleInterval: time.Hour, // sweeps driven explicitly
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
	})
	if err := h.cp.Start(); err != nil {
		return nil, err
	}
	var relayAddrs []string
	if cfg.Relays > 0 {
		h.relays = fleet.NewRelays(fleet.RelaysConfig{
			Count:         cfg.Relays,
			Transport:     h.tr,
			ControlPlanes: []string{"fleet-cp"},
			FlushInterval: cfg.RelayFlush,
		})
		if err := h.relays.Start(); err != nil {
			h.cp.Stop()
			return nil, err
		}
		relayAddrs = h.relays.Addrs()
	}
	h.fl = fleet.New(fleet.Config{
		Size:              cfg.Workers,
		Transport:         h.tr,
		ControlPlanes:     []string{"fleet-cp"},
		Relays:            relayAddrs,
		HeartbeatInterval: cfg.HeartbeatInterval,
		ReadyDelay:        cfg.ReadyDelay,
	})
	return h, nil
}

// RegisterFleet starts every worker concurrently (the registration
// storm) and returns how long until the whole fleet is registered.
func (h *FleetHarness) RegisterFleet() (time.Duration, error) {
	start := time.Now()
	if err := h.fl.Start(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if got := h.cp.WorkerCount(); got != h.cfg.Workers {
		return 0, fmt.Errorf("fleet: registered %d of %d workers", got, h.cfg.Workers)
	}
	return elapsed, nil
}

// HeartbeatRound drives one explicit heartbeat from every worker,
// spread across the given number of goroutines, and returns the wall
// time for the round. With G well above the core count the round
// approximates the arrival concurrency of a real fleet's heartbeats.
func (h *FleetHarness) HeartbeatRound(goroutines int) time.Duration {
	workers := h.fl.Workers()
	if goroutines <= 0 {
		goroutines = 16
	}
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(workers); i += goroutines {
				workers[i].SendHeartbeat()
			}
		}(g)
	}
	wg.Wait()
	return time.Since(start)
}

// RegisterScaledFunction registers a function pinned to minScale
// replicas and waits until they are all ready — and leaves it running,
// so subsequent sweeps, worker failures and drains operate on a loaded
// cluster (ScaleBurst, by contrast, tears its function down again).
func (h *FleetHarness) RegisterScaledFunction(name string, minScale int) error {
	fn := core.Function{Name: name, Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = minScale
	fn.Scaling.StableWindow = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := h.tr.Call(ctx, "fleet-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		return err
	}
	h.cp.Reconcile()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ready, _ := h.cp.FunctionScale(name); ready >= minScale {
			return nil
		}
		if time.Now().After(deadline) {
			ready, creating := h.cp.FunctionScale(name)
			return fmt.Errorf("fleet: %s stuck at ready=%d creating=%d, want %d", name, ready, creating, minScale)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// ScaleBurst registers a fresh function pinned to burst replicas,
// drives one autoscale sweep, waits until every replica is ready on the
// emulated fleet, then tears the function down again. It returns the
// time from sweep to all-ready.
func (h *FleetHarness) ScaleBurst(burst int) (time.Duration, error) {
	h.seq++
	name := fmt.Sprintf("fleet-burst-%d", h.seq)
	fn := core.Function{Name: name, Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
	fn.Scaling.MinScale = burst
	fn.Scaling.StableWindow = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := h.tr.Call(ctx, "fleet-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
		return 0, err
	}
	start := time.Now()
	h.cp.Reconcile()
	deadline := start.Add(60 * time.Second)
	for {
		if ready, _ := h.cp.FunctionScale(name); ready >= burst {
			break
		}
		if time.Now().After(deadline) {
			ready, creating := h.cp.FunctionScale(name)
			return 0, fmt.Errorf("fleet: burst %s stuck at ready=%d creating=%d", name, ready, creating)
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	if _, err := h.tr.Call(ctx, "fleet-cp", proto.MethodDeregisterFunction, core.MarshalFunction(&fn)); err != nil {
		return 0, err
	}
	drainDeadline := time.Now().Add(60 * time.Second)
	for h.fl.SandboxCount() > 0 {
		if time.Now().After(drainDeadline) {
			return 0, fmt.Errorf("fleet: %d sandboxes never drained", h.fl.SandboxCount())
		}
		time.Sleep(time.Millisecond)
	}
	return elapsed, nil
}

// CorrelatedFailure crashes frac of the fleet at once and returns the
// time until the health monitor has failed every victim (heartbeat
// timeout + detection sweep + endpoint drain; the timeout is the floor).
func (h *FleetHarness) CorrelatedFailure(frac float64) (time.Duration, error) {
	start := time.Now()
	victims := h.fl.StopFraction(frac)
	want := h.cfg.Workers - len(victims)
	deadline := start.Add(h.cfg.HeartbeatTimeout + 60*time.Second)
	for h.cp.WorkerCount() > want {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("fleet: %d workers still healthy, want %d", h.cp.WorkerCount(), want)
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(start), nil
}

// CP exposes the control plane (telemetry assertions in benchmarks).
func (h *FleetHarness) CP() *controlplane.ControlPlane { return h.cp }

// Fleet exposes the emulated fleet.
func (h *FleetHarness) Fleet() *fleet.Fleet { return h.fl }

// Transport exposes the harness transport; the control plane listens on
// "fleet-cp".
func (h *FleetHarness) Transport() *transport.InProc { return h.tr }

// Relays exposes the relay tier (nil in direct mode).
func (h *FleetHarness) Relays() *fleet.Relays { return h.relays }

// FlushRelays drives one explicit flush on every relay; harnesses that
// park the relay flush loops call it once per emulated heartbeat period.
func (h *FleetHarness) FlushRelays() {
	if h.relays != nil {
		h.relays.FlushAll()
	}
}

// Close tears the cluster down.
func (h *FleetHarness) Close() {
	h.fl.Stop()
	if h.relays != nil {
		h.relays.Stop()
	}
	h.cp.Stop()
	h.db.Close()
}

// fleetBenchRow is one row of BENCH_fleet.json: the fleet sweep's
// machine-readable output, committed so CI can diff liveness-path
// regressions across revisions.
type fleetBenchRow struct {
	Mode              string  `json:"mode"`
	Workers           int     `json:"workers"`
	Relays            int     `json:"relays"`
	RegStormMs        float64 `json:"reg_storm_ms"`
	CPLivenessRPCsSec float64 `json:"cp_liveness_rpcs_per_s"`
	HBBatchP50        float64 `json:"heartbeat_batch_p50"`
	HealthSweepP50Ms  float64 `json:"health_sweep_p50_ms"`
	FailDetectMs      float64 `json:"fail_detect_ms"`
}

// runFleet sweeps the paper's fleet sizes (§5.2.3 runs the control plane
// against 5000 workers) across the liveness-path ablation: the seed's
// direct per-worker protocol vs a 16-relay tier batching heartbeats and
// registrations. For each arm it reports the registration storm, the
// steady-state CP liveness RPC rate and health-sweep cost (measured over
// a live window with every background loop running), and the
// correlated-failure detection time — the relay win is valid only if
// detection latency holds. Results are also written to BENCH_fleet.json.
func runFleet(w io.Writer, scale float64) error {
	sizes := []int{scaleInt(1000, scale, 96), scaleInt(2500, scale, 160), scaleInt(5000, scale, 256)}
	modes := []struct {
		name   string
		relays int
	}{
		{"direct (-relay off)", 0},
		{"relay (16 relays)", 16},
	}
	// Long enough for ~8 health sweeps (187.5 ms period) and hundreds of
	// relay flushes, so the p50s and the RPC rate are steady-state.
	const window = 1500 * time.Millisecond
	t := newTable("mode", "workers", "reg_storm_ms", "cp_rpcs_per_s", "hb_batch_p50",
		"health_sweep_p50_ms", "fail_detect_ms")
	var rows []fleetBenchRow
	for _, mode := range modes {
		for _, size := range sizes {
			h, err := NewFleetHarness(FleetConfig{Workers: size, Relays: mode.relays})
			if err != nil {
				return err
			}
			regMs, err := h.RegisterFleet()
			if err != nil {
				h.Close()
				return err
			}
			// Steady-state liveness window: worker heartbeat loops, relay
			// flush loops and the CP health loop all run on the wall
			// clock; the counters' delta is the CP's liveness RPC rate.
			m := h.CP().Metrics()
			m.Histogram("health_sweep_ms").Reset()
			base := m.Counter("worker_hb_rpcs").Value() + m.Counter("worker_hb_batch_rpcs").Value()
			time.Sleep(window)
			delta := m.Counter("worker_hb_rpcs").Value() + m.Counter("worker_hb_batch_rpcs").Value() - base
			rpcsPerSec := float64(delta) / window.Seconds()
			sweepP50 := m.Histogram("health_sweep_ms").Percentile(50)
			batchP50 := m.Histogram("heartbeat_batch_size").Percentile(50)
			failMs, err := h.CorrelatedFailure(0.25)
			if err != nil {
				h.Close()
				return err
			}
			t.addRow(
				mode.name,
				size,
				float64(regMs)/float64(time.Millisecond),
				rpcsPerSec,
				batchP50,
				sweepP50,
				float64(failMs)/float64(time.Millisecond),
			)
			rows = append(rows, fleetBenchRow{
				Mode:              map[bool]string{true: "relay", false: "direct"}[mode.relays > 0],
				Workers:           size,
				Relays:            mode.relays,
				RegStormMs:        float64(regMs) / float64(time.Millisecond),
				CPLivenessRPCsSec: rpcsPerSec,
				HBBatchP50:        batchP50,
				HealthSweepP50Ms:  sweepP50,
				FailDetectMs:      float64(failMs) / float64(time.Millisecond),
			})
			h.Close()
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: direct mode costs one CP RPC per worker per 100 ms")
	fmt.Fprintln(w, "# (5k workers = 50k RPCs/s) and full-registry health scans; the relay tier")
	fmt.Fprintln(w, "# collapses that to ~10 batch RPCs/s per relay while fast sweeps touch only")
	fmt.Fprintln(w, "# relays + suspects. fail_detect_ms is floored by the heartbeat timeout")
	fmt.Fprintln(w, "# (750 ms) in both modes — the relay win must not cost detection latency.")
	if data, err := json.MarshalIndent(rows, "", "  "); err == nil {
		if werr := os.WriteFile("BENCH_fleet.json", append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintf(w, "# warning: BENCH_fleet.json not written: %v\n", werr)
		} else {
			fmt.Fprintln(w, "# wrote BENCH_fleet.json")
		}
	}
	return nil
}
