package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every artifact from the paper's evaluation must be addressable.
	want := []string{
		"fig1", "fig2", "fig3", "fig5", "fig7", "fig8", "fig9", "fig10",
		"fig11", "scalability", "registration", "azure500", "azure4k", "faults",
		"e2e", "e2ecp", "cpha",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("All() returned %d experiments, want >= %d", len(All()), len(want))
	}
	// All() is sorted by ID.
	ids := All()
	for i := 1; i < len(ids); i++ {
		if ids[i].ID < ids[i-1].ID {
			t.Errorf("All() not sorted at %d", i)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run(io.Discard, "fig99", 0.5); err == nil {
		t.Errorf("unknown experiment should error")
	}
}

func TestInvalidScale(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		if err := Run(io.Discard, "fig1", s); err == nil {
			t.Errorf("scale %v should be rejected", s)
		}
	}
}

// TestSimulationExperimentsRunAtTinyScale executes every pure-simulation
// experiment end to end at a very small scale, checking they produce
// plausible table output. The live-cluster experiments (fig11, faults,
// registration) are covered separately because they take seconds each.
func TestSimulationExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps take a few seconds")
	}
	for _, id := range []string{"fig1", "fig2", "fig3", "fig5", "fig9", "fig10", "azure500", "azure4k"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, id, 0.05); err != nil {
				t.Fatalf("run: %v", err)
			}
			out := buf.String()
			if !strings.Contains(out, "===") {
				t.Errorf("missing header:\n%s", out)
			}
			if len(strings.Split(out, "\n")) < 5 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func TestTableFormatting(t *testing.T) {
	tab := newTable("col_a", "b")
	tab.addRow("x", 1.5)
	tab.addRow("longer-value", 12345.678)
	tab.addRow(42, "str")
	var buf bytes.Buffer
	tab.write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "col_a") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "12346") { // >=10000 renders with %.0f
		t.Errorf("float formatting wrong:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		1.234:    "1.23",
		99.99:    "99.99",
		150.26:   "150.3",
		12345.67: "12346",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestScaleInt(t *testing.T) {
	if got := scaleInt(1000, 0.25, 10); got != 250 {
		t.Errorf("scaleInt = %d", got)
	}
	if got := scaleInt(1000, 0.001, 10); got != 10 {
		t.Errorf("scaleInt floor = %d", got)
	}
}
