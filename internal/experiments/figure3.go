package experiments

import (
	"fmt"
	"io"
	"time"
)

func init() {
	register(Experiment{
		ID:    "fig3-live",
		Title: "Cold-start rate over time from live scheduling telemetry, batching on vs off (paper Fig. 3, live counterpart of the simulated fig3)",
		Run:   runFig3Live,
	})
}

// runFig3Live regenerates the paper's Figure 3 shape — sandbox-creation rate
// over time — from the live control plane's own telemetry instead of a
// model: back-to-back cold-start bursts run against the real cluster for
// a fixed window, and the sandbox_ready_ms histogram's count is sampled
// on a fixed tick to produce the creations-per-interval series. The
// cold_start_sched_ms and create/endpoint batch-size histograms
// accumulated by the same run are reported per configuration, so the
// rate series and the scheduling-latency telemetry that explains it come
// from one live execution, batching on (default) vs off (-create-batch 1).
func runFig3Live(w io.Writer, scale float64) error {
	window := time.Duration(float64(6*time.Second) * scale)
	if window < 1500*time.Millisecond {
		window = 1500 * time.Millisecond
	}
	const tick = 250 * time.Millisecond
	burst := scaleInt(64, scale, 16)

	type sample struct {
		at      time.Duration
		created int64
	}
	type result struct {
		name                string
		series              []sample
		schedP50, schedP99  float64
		batchP50, fanoutP50 float64
		bursts              int
	}
	var results []result

	for _, cfg := range []struct {
		name        string
		createBatch int
	}{
		{"batched", 0},
		{"seed (-create-batch 1)", 1},
	} {
		h, err := NewColdStartHarness(ColdStartConfig{
			Workers:      4,
			Burst:        burst,
			CreateBatch:  cfg.createBatch,
			LatencyScale: 0.02,
			Seed:         3,
		})
		if err != nil {
			return err
		}
		m := h.CP().Metrics()
		ready := m.Histogram("sandbox_ready_ms")

		res := result{name: cfg.name}
		done := make(chan error, 1)
		stop := make(chan struct{})
		go func() {
			// Back-to-back bursts until the sampling window closes: the
			// sustained creation load whose rate the series shows.
			for {
				select {
				case <-stop:
					done <- nil
					return
				default:
				}
				if _, err := h.RunBurst(); err != nil {
					done <- err
					return
				}
				res.bursts++
			}
		}()

		start := time.Now()
		var prev int64
		for elapsed := time.Duration(0); elapsed < window; {
			time.Sleep(tick)
			elapsed = time.Since(start)
			cur := int64(ready.Count())
			res.series = append(res.series, sample{at: elapsed, created: cur - prev})
			prev = cur
		}
		close(stop)
		err = <-done
		if err == nil {
			res.schedP50 = m.Histogram("cold_start_sched_ms").Percentile(50)
			res.schedP99 = m.Histogram("cold_start_sched_ms").Percentile(99)
			res.batchP50 = m.Histogram("create_batch_size").Percentile(50)
			res.fanoutP50 = m.Histogram("endpoint_fanout_batch_size").Percentile(50)
		}
		h.Close()
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	t := newTable("config", "t_s", "creations_per_s")
	for _, res := range results {
		for _, s := range res.series {
			t.addRow(res.name, fmt.Sprintf("%.2f", s.at.Seconds()),
				float64(s.created)/tick.Seconds())
		}
	}
	t.write(w)
	s := newTable("config", "bursts", "sched_p50_ms", "sched_p99_ms", "create_batch_p50", "fanout_p50")
	for _, res := range results {
		s.addRow(res.name, res.bursts, res.schedP50, res.schedP99, res.batchP50, res.fanoutP50)
	}
	s.write(w)
	fmt.Fprintln(w, "# Expected shape: both series sustain a steady creation rate (wall-clock is")
	fmt.Fprintln(w, "# runtime-latency-bound, so the rates are comparable on few-core machines);")
	fmt.Fprintln(w, "# the batching win is the control path — create_batch_p50 ≈ burst/workers vs 1")
	fmt.Fprintln(w, "# and coalesced endpoint fan-out, i.e. O(workers) RPCs per sweep instead of")
	fmt.Fprintln(w, "# O(sandboxes), which is what lets creation rate scale with cluster size.")
	return nil
}
