package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/fleet"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

func init() {
	register(Experiment{
		ID:    "asynclease",
		Title: "Durable async queue failover sweep: replicas × kill fraction × revival timing, leased takeover vs seed wait-for-restart (paper §3.4.2)",
		Run:   runAsyncLease,
	})
}

// AsyncLeaseConfig parameterizes one lease-failover measurement: data
// plane replicas persisting async records into one shared store, a
// worker fleet with a fixed per-task service time, and a control plane
// that either leases a pruned replica's records to survivors or (the
// seed ablation) leaves them stranded until the replica restarts.
type AsyncLeaseConfig struct {
	// Replicas is the data plane replica count (default 3).
	Replicas int
	// Functions spreads the flood across this many functions (default 6).
	Functions int
	// HandlerDelay is the per-task service time (default 5ms) — long
	// enough that a kill lands on a non-empty backlog.
	HandlerDelay time.Duration
	// AsyncFnQuota caps per-function shard occupancy (0 = off).
	AsyncFnQuota int
	// LeaseDisabled reverts the control plane to the seed behavior:
	// a dead replica's records wait for its restart.
	LeaseDisabled bool
}

func (c AsyncLeaseConfig) withDefaults() AsyncLeaseConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Functions <= 0 {
		c.Functions = 6
	}
	if c.HandlerDelay <= 0 {
		c.HandlerDelay = 5 * time.Millisecond
	}
	return c
}

// AsyncLeaseHarness is the live cluster the asynclease experiment (and
// BenchmarkAblationAsyncLease) drives.
type AsyncLeaseHarness struct {
	cfg    AsyncLeaseConfig
	tr     *transport.InProc
	cp     *controlplane.ControlPlane
	dps    *fleet.DataPlanes
	fl     *fleet.Fleet
	shared *store.Store
	cpDB   *store.Store

	mu       sync.Mutex
	lastDone map[string]time.Time
	done     map[string]int
}

// NewAsyncLeaseHarness builds and starts the cluster with every replica
// persisting async records into one shared store.
func NewAsyncLeaseHarness(cfg AsyncLeaseConfig) (*AsyncLeaseHarness, error) {
	cfg = cfg.withDefaults()
	h := &AsyncLeaseHarness{
		cfg:      cfg,
		tr:       transport.NewInProc(),
		shared:   store.NewMemory(),
		cpDB:     store.NewMemory(),
		lastDone: make(map[string]time.Time),
		done:     make(map[string]int),
	}
	h.cp = controlplane.New(controlplane.Config{
		Addr:               "al-cp",
		Transport:          h.tr,
		DB:                 h.cpDB,
		AutoscaleInterval:  time.Hour, // scaling driven explicitly
		HeartbeatTimeout:   400 * time.Millisecond,
		DataPlaneTimeout:   400 * time.Millisecond,
		AsyncLeaseDisabled: cfg.LeaseDisabled,
	})
	if err := h.cp.Start(); err != nil {
		return nil, err
	}
	h.dps = fleet.NewDataPlanes(fleet.DataPlanesConfig{
		Count:             cfg.Replicas,
		Transport:         h.tr,
		ControlPlanes:     []string{"al-cp"},
		SharedStore:       h.shared,
		AsyncFnQuota:      cfg.AsyncFnQuota,
		HeartbeatInterval: 50 * time.Millisecond,
		MetricInterval:    time.Hour,
		QueueTimeout:      20 * time.Second,
	})
	if err := h.dps.Start(); err != nil {
		h.Close()
		return nil, err
	}
	h.fl = fleet.New(fleet.Config{
		Size:              8,
		Transport:         h.tr,
		ControlPlanes:     []string{"al-cp"},
		HeartbeatInterval: 100 * time.Millisecond,
		Handler: func(p []byte) ([]byte, error) {
			time.Sleep(cfg.HandlerDelay)
			h.mu.Lock()
			h.lastDone[string(p)] = time.Now()
			h.done[string(p)]++
			h.mu.Unlock()
			return p, nil
		},
	})
	if err := h.fl.Start(); err != nil {
		h.Close()
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < cfg.Functions; i++ {
		fn := core.Function{Name: h.fnName(i), Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
		fn.Scaling.MinScale = 1
		fn.Scaling.StableWindow = time.Hour
		if _, err := h.tr.Call(ctx, "al-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			h.Close()
			return nil, err
		}
	}
	h.cp.Reconcile()
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < cfg.Functions; i++ {
		for {
			if ready, _ := h.cp.FunctionScale(h.fnName(i)); ready >= 1 {
				break
			}
			if time.Now().After(deadline) {
				h.Close()
				return nil, fmt.Errorf("asynclease: %s never scaled", h.fnName(i))
			}
			time.Sleep(time.Millisecond)
		}
	}
	return h, nil
}

func (h *AsyncLeaseHarness) fnName(i int) string {
	return fmt.Sprintf("al-fn-%d", i%h.cfg.Functions)
}

// Flood accepts n async invocations spread round-robin across every
// replica, with half the traffic aimed at function 0 (the hot function —
// the skew the DRR dispatcher exists for) and the rest split across the
// others. Payloads carry the function name so the worker handler can
// attribute completions. Returns how many were acknowledged.
func (h *AsyncLeaseHarness) Flood(n int) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	addrs := h.dps.Addrs()
	accepted := 0
	for i := 0; i < n; i++ {
		fn := h.fnName(0)
		if i%2 == 1 && h.cfg.Functions > 1 {
			fn = h.fnName(1 + (i/2)%(h.cfg.Functions-1))
		}
		req := proto.InvokeRequest{Function: fn, Async: true, Payload: []byte(fn)}
		if _, err := h.tr.Call(ctx, addrs[i%len(addrs)], proto.MethodInvoke, req.Marshal()); err != nil {
			return accepted, fmt.Errorf("asynclease: accept %d: %w", i, err)
		}
		accepted++
	}
	return accepted, nil
}

// Backlog is the number of acknowledged-but-unsettled records in the
// shared store.
func (h *AsyncLeaseHarness) Backlog() int { return dataplane.AsyncBacklog(h.shared) }

// KillFraction crashes the first ⌈frac·Replicas⌉ replicas and returns
// their indices.
func (h *AsyncLeaseHarness) KillFraction(frac float64) []int {
	return h.dps.StopFraction(frac)
}

// RestartVictims revives the given replicas (same IDs, same shared
// store) — the seed's only path to a dead replica's records, and the
// lease recall trigger when leasing is on.
func (h *AsyncLeaseHarness) RestartVictims(victims []int) error {
	for _, i := range victims {
		if err := h.dps.Restart(i); err != nil {
			return err
		}
	}
	return nil
}

// AwaitDrain polls the shared backlog until it reaches zero or stops
// moving for a second, returning (time to empty, records left). A
// non-zero residue with leasing disabled and no revival is the seed's
// stranded set, not a failure.
func (h *AsyncLeaseHarness) AwaitDrain(timeout time.Duration) (time.Duration, int) {
	start := time.Now()
	last, lastChange := h.Backlog(), time.Now()
	for time.Since(start) < timeout {
		b := h.Backlog()
		if b == 0 {
			return time.Since(start), 0
		}
		if b != last {
			last, lastChange = b, time.Now()
		} else if time.Since(lastChange) > time.Second {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return time.Since(start), last
}

// FairnessRatio compares the hot function's drain completion time with
// the slowest co-resident function's, both measured from start. Under
// DRR the hot flood must not head-of-line block the others, so the ratio
// stays at or below ~1; a FIFO queue would push it well above.
func (h *AsyncLeaseHarness) FairnessRatio(start time.Time) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	hot := h.lastDone[h.fnName(0)]
	if hot.IsZero() {
		return 0
	}
	var coldMax time.Duration
	for i := 1; i < h.cfg.Functions; i++ {
		if t := h.lastDone[h.fnName(i)]; !t.IsZero() && t.Sub(start) > coldMax {
			coldMax = t.Sub(start)
		}
	}
	if coldMax <= 0 {
		return 0
	}
	return float64(coldMax) / float64(hot.Sub(start))
}

// CP exposes the control plane.
func (h *AsyncLeaseHarness) CP() *controlplane.ControlPlane { return h.cp }

// Close tears the cluster down.
func (h *AsyncLeaseHarness) Close() {
	if h.fl != nil {
		h.fl.Stop()
	}
	if h.dps != nil {
		h.dps.Stop()
	}
	if h.cp != nil {
		h.cp.Stop()
	}
	if h.cpDB != nil {
		h.cpDB.Close()
	}
	if h.shared != nil {
		h.shared.Close()
	}
}

type asyncLeaseBenchRow struct {
	Lease         bool    `json:"lease"`
	Replicas      int     `json:"replicas"`
	KillFrac      float64 `json:"kill_frac"`
	Revival       string  `json:"revival"`
	Accepted      int     `json:"accepted"`
	BacklogAtKill int     `json:"backlog_at_kill"`
	Stranded      int     `json:"stranded"`
	DrainMs       float64 `json:"drain_ms"`
	Fairness      float64 `json:"fairness_ratio"`
	LeasesIssued  int64   `json:"leases_issued"`
	LeasesRecall  int64   `json:"leases_recalled"`
}

// runAsyncLease sweeps replica counts × kill fractions × revival timing
// with leasing on and off, reporting the acknowledged backlog stranded
// by the kill, the time for the shared store to drain to zero, and the
// DRR fairness ratio. Rows land in BENCH_async.json.
func runAsyncLease(w io.Writer, scale float64) error {
	asyncN := scaleInt(240, scale, 36)
	type shape struct {
		replicas int
		killFrac float64
	}
	shapes := []shape{{2, 0.5}, {4, 0.25}, {4, 0.5}}
	t := newTable("mode", "replicas", "kill_frac", "revival", "accepted", "backlog_at_kill",
		"stranded", "drain_ms", "fairness")
	var rows []asyncLeaseBenchRow
	for _, lease := range []bool{true, false} {
		for _, s := range shapes {
			for _, revival := range []string{"none", "mid-drain"} {
				h, err := NewAsyncLeaseHarness(AsyncLeaseConfig{
					Replicas:      s.replicas,
					LeaseDisabled: !lease,
				})
				if err != nil {
					return err
				}
				floodStart := time.Now()
				accepted, err := h.Flood(asyncN)
				if err != nil {
					h.Close()
					return err
				}
				victims := h.KillFraction(s.killFrac)
				killAt := time.Now()
				backlogAtKill := h.Backlog()
				if revival == "mid-drain" {
					// Past the prune (DataPlaneTimeout) and, with leasing
					// on, past the first grants — the revival races the
					// survivors' drains.
					time.Sleep(600 * time.Millisecond)
					if err := h.RestartVictims(victims); err != nil {
						h.Close()
						return err
					}
				}
				_, stranded := h.AwaitDrain(30 * time.Second)
				drainMs := float64(time.Since(killAt)) / float64(time.Millisecond)
				fairness := h.FairnessRatio(floodStart)
				mode := map[bool]string{true: "lease", false: "seed (-async-lease=false)"}[lease]
				t.addRow(mode, s.replicas, fmt.Sprintf("%.2f", s.killFrac), revival,
					accepted, backlogAtKill, stranded, drainMs,
					fmt.Sprintf("%.2f", fairness))
				rows = append(rows, asyncLeaseBenchRow{
					Lease:         lease,
					Replicas:      s.replicas,
					KillFrac:      s.killFrac,
					Revival:       revival,
					Accepted:      accepted,
					BacklogAtKill: backlogAtKill,
					Stranded:      stranded,
					DrainMs:       drainMs,
					Fairness:      fairness,
					LeasesIssued:  h.CP().Metrics().Counter("async_leases_issued").Value(),
					LeasesRecall:  h.CP().Metrics().Counter("async_leases_recalled").Value(),
				})
				h.Close()
			}
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: with leasing, stranded is 0 in every row — survivors drain a")
	fmt.Fprintln(w, "# dead replica's acknowledged records without waiting for its restart. The seed")
	fmt.Fprintln(w, "# ablation strands backlog_at_kill's victim share until revival (stranded > 0")
	fmt.Fprintln(w, "# in 'none' rows). fairness stays ~<= 1: the hot function's flood never")
	fmt.Fprintln(w, "# head-of-line blocks co-resident functions under deficit round-robin.")
	if data, err := json.MarshalIndent(rows, "", "  "); err == nil {
		if werr := os.WriteFile("BENCH_async.json", append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintf(w, "# warning: BENCH_async.json not written: %v\n", werr)
		} else {
			fmt.Fprintln(w, "# wrote BENCH_async.json")
		}
	}
	return nil
}
