package experiments

import (
	"strings"
	"testing"
)

// TestE2EScenarioSmoke is the seconds-scale CI variant of the e2e
// macro-benchmark: the full live stack (CP + DP replicas + relay tier +
// emulated fleet), mixed sync/async/workflow traffic, the canary →
// promote rollout, and every scheduled fault (worker-rack kill/revive,
// DP replica kill/revive, relay kill) — runE2E itself fails on any lost
// sync invocation, stranded async record, failed async accept, failed
// workflow, or unversioned serve, so a nil error IS the assertion.
func TestE2EScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e macro-benchmark smoke skipped in -short mode")
	}
	var buf strings.Builder
	if err := runE2E(&buf, 0.12); err != nil {
		t.Fatalf("e2e smoke: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"rack-loss", "dp-loss", "relay-loss", "promoted", "lost_sync=0", "stranded=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("e2e smoke output missing %q:\n%s", want, out)
		}
	}
}

// TestE2ECPScenarioSmoke is the CI variant of the replicated-CP replay:
// a 3-replica CP tier with follower reads, the leader killed and revived
// mid-trace. runE2ECP fails on any lost/stranded work and requires at
// least two leadership recoveries, so a nil error IS the assertion.
func TestE2ECPScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e macro-benchmark smoke skipped in -short mode")
	}
	var buf strings.Builder
	if err := runE2ECP(&buf, 0.12); err != nil {
		t.Fatalf("e2ecp smoke: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"cp-loss", "cp-revived", "kill controlplane leader", "revive controlplane replica",
		"lost_sync=0", "stranded=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("e2ecp smoke output missing %q:\n%s", want, out)
		}
	}
}
