package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/dataplane"
	"dirigent/internal/fleet"
	"dirigent/internal/frontend"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

func init() {
	register(Experiment{
		ID:    "dataplane",
		Title: "Multi-data-plane sweep: replicas × async-queue shards × kill fraction — front-end failover, CP fan-out pruning, async drain (paper §3.4.2, §5.1)",
		Run:   runDataPlane,
	})
}

// MultiDPConfig parameterizes one multi-data-plane measurement: a live
// control plane, Replicas data plane replicas with AsyncShards-striped
// durable async queues, a small emulated worker fleet, and a front end
// whose membership syncs from the control plane.
type MultiDPConfig struct {
	// Replicas is the data plane replica count (default 3).
	Replicas int
	// AsyncShards stripes each replica's async queue (0 default 32,
	// 1 = seed single-queue ablation).
	AsyncShards int
	// Workers is the emulated worker fleet size (default 8).
	Workers int
	// Functions spreads traffic across this many rendezvous homes
	// (default 8).
	Functions int
}

func (c MultiDPConfig) withDefaults() MultiDPConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Functions <= 0 {
		c.Functions = 8
	}
	return c
}

// MultiDPHarness is the live multi-replica cluster the dataplane
// experiment (and BenchmarkAblationMultiDP) drives.
type MultiDPHarness struct {
	cfg MultiDPConfig
	tr  *transport.InProc
	cp  *controlplane.ControlPlane
	dps *fleet.DataPlanes
	fl  *fleet.Fleet
	lb  *frontend.LB
	db  *store.Store
}

// NewMultiDPHarness builds and starts the cluster: control plane,
// replicas, worker fleet, pre-scaled functions, and a membership-synced
// front end.
func NewMultiDPHarness(cfg MultiDPConfig) (*MultiDPHarness, error) {
	cfg = cfg.withDefaults()
	h := &MultiDPHarness{cfg: cfg, tr: transport.NewInProc(), db: store.NewMemory()}
	h.cp = controlplane.New(controlplane.Config{
		Addr:              "mdp-cp",
		Transport:         h.tr,
		DB:                h.db,
		AutoscaleInterval: time.Hour, // sweeps driven explicitly
		HeartbeatTimeout:  400 * time.Millisecond,
		DataPlaneTimeout:  400 * time.Millisecond,
	})
	if err := h.cp.Start(); err != nil {
		return nil, err
	}
	h.dps = fleet.NewDataPlanes(fleet.DataPlanesConfig{
		Count:             cfg.Replicas,
		Transport:         h.tr,
		ControlPlanes:     []string{"mdp-cp"},
		AsyncShards:       cfg.AsyncShards,
		Persistent:        true,
		HeartbeatInterval: 50 * time.Millisecond,
		MetricInterval:    time.Hour, // scaling driven by explicit sweeps
		QueueTimeout:      20 * time.Second,
	})
	if err := h.dps.Start(); err != nil {
		h.Close()
		return nil, err
	}
	h.fl = fleet.New(fleet.Config{
		Size:              cfg.Workers,
		Transport:         h.tr,
		ControlPlanes:     []string{"mdp-cp"},
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err := h.fl.Start(); err != nil {
		h.Close()
		return nil, err
	}
	h.lb = frontend.New(frontend.Config{
		Transport:          h.tr,
		ControlPlanes:      []string{"mdp-cp"},
		MembershipInterval: 50 * time.Millisecond,
		FailureCooldown:    100 * time.Millisecond,
	})
	if err := h.lb.Start(); err != nil {
		h.Close()
		return nil, err
	}
	// Pre-scale the functions so the measured phases ride warm paths.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < cfg.Functions; i++ {
		fn := core.Function{Name: h.fnName(i), Image: "img", Port: 8080, Scaling: core.DefaultScalingConfig()}
		fn.Scaling.MinScale = 1
		fn.Scaling.StableWindow = time.Hour
		if _, err := h.tr.Call(ctx, "mdp-cp", proto.MethodRegisterFunction, core.MarshalFunction(&fn)); err != nil {
			h.Close()
			return nil, err
		}
	}
	h.cp.Reconcile()
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < cfg.Functions; i++ {
		for {
			if ready, _ := h.cp.FunctionScale(h.fnName(i)); ready >= 1 {
				break
			}
			if time.Now().After(deadline) {
				h.Close()
				return nil, fmt.Errorf("multidp: %s never scaled", h.fnName(i))
			}
			time.Sleep(time.Millisecond)
		}
	}
	return h, nil
}

func (h *MultiDPHarness) fnName(i int) string {
	return fmt.Sprintf("mdp-fn-%d", i%h.cfg.Functions)
}

// SyncBurst drives n synchronous invocations through the front end, all
// concurrent, killing killFrac of the replica set once half have been
// launched. It returns completions, failures, and front-end failovers
// observed during the burst.
func (h *MultiDPHarness) SyncBurst(n int, killFrac float64) (ok, failed int, failovers int64, elapsed time.Duration) {
	failoverBase := h.lb.Metrics().Counter("dataplane_failovers").Value()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var okCount, failCount atomic.Int64
	launched := make(chan struct{})
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == n/2 {
				close(launched)
			}
			if _, err := h.lb.Invoke(ctx, &proto.InvokeRequest{Function: h.fnName(i)}); err != nil {
				failCount.Add(1)
				return
			}
			okCount.Add(1)
		}(i)
	}
	if killFrac > 0 {
		<-launched
		h.dps.StopFraction(killFrac)
	}
	wg.Wait()
	elapsed = time.Since(start)
	failovers = h.lb.Metrics().Counter("dataplane_failovers").Value() - failoverBase
	return int(okCount.Load()), int(failCount.Load()), failovers, elapsed
}

// AwaitPrune blocks until the control plane's live replica set matches
// want, returning how long detection took from now.
func (h *MultiDPHarness) AwaitPrune(want int, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	for h.cp.DataPlaneCount() != want {
		if time.Since(start) > timeout {
			return 0, fmt.Errorf("multidp: live replicas = %d, want %d", h.cp.DataPlaneCount(), want)
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(start), nil
}

// AsyncFlood submits n asynchronous invocations through the front end
// and waits until every accepted task completes and settles on the live
// replicas. It returns (accepted, drain time).
func (h *MultiDPHarness) AsyncFlood(n int) (int, time.Duration, error) {
	live := h.liveDPs()
	var base int64
	for _, dp := range live {
		base += dp.Metrics().Counter("async_completed").Value()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	accepted := 0
	for i := 0; i < n; i++ {
		if _, err := h.lb.Invoke(ctx, &proto.InvokeRequest{Function: h.fnName(i), Async: true}); err == nil {
			accepted++
		}
	}
	start := time.Now()
	for {
		var completed int64
		pending := 0
		for _, dp := range live {
			completed += dp.Metrics().Counter("async_completed").Value()
			pending += dp.PendingAsync()
		}
		if completed-base >= int64(accepted) && pending == 0 {
			return accepted, time.Since(start), nil
		}
		if time.Since(start) > 60*time.Second {
			return accepted, 0, fmt.Errorf("multidp: async flood stuck: completed=%d/%d pending=%d",
				completed-base, accepted, pending)
		}
		time.Sleep(time.Millisecond)
	}
}

// liveDPs returns the replicas still serving (Stop leaves dead ones in
// the slice; membership decides, so ask the front end's view).
func (h *MultiDPHarness) liveDPs() []*dataplane.DataPlane {
	liveAddrs := make(map[string]bool)
	for _, addr := range h.lb.Replicas() {
		liveAddrs[addr] = true
	}
	var out []*dataplane.DataPlane
	for _, dp := range h.dps.DPs() {
		if liveAddrs[dp.Addr()] {
			out = append(out, dp)
		}
	}
	return out
}

// CP exposes the control plane.
func (h *MultiDPHarness) CP() *controlplane.ControlPlane { return h.cp }

// LB exposes the front end.
func (h *MultiDPHarness) LB() *frontend.LB { return h.lb }

// DataPlanes exposes the replica set.
func (h *MultiDPHarness) DataPlanes() *fleet.DataPlanes { return h.dps }

// Close tears the cluster down.
func (h *MultiDPHarness) Close() {
	if h.lb != nil {
		h.lb.Stop()
	}
	if h.fl != nil {
		h.fl.Stop()
	}
	if h.dps != nil {
		h.dps.Stop()
	}
	if h.cp != nil {
		h.cp.Stop()
	}
	if h.db != nil {
		h.db.Close()
	}
}

// runDataPlane sweeps replica counts × async-shard configurations × kill
// fractions through a sync burst, fan-out prune detection, and an async
// drain, reporting the failover and pruning behavior of the dynamic DP
// tier.
func runDataPlane(w io.Writer, scale float64) error {
	burst := scaleInt(256, scale, 32)
	asyncN := scaleInt(128, scale, 16)
	type cfg struct {
		name   string
		shards int
	}
	configs := []cfg{
		{"sharded (32)", 0},
		{"seed (-async-shards 1)", 1},
	}
	t := newTable("config", "replicas", "kill_frac", "sync_ok", "sync_fail", "failovers",
		"sync_ms", "prune_ms", "async_n", "async_drain_ms")
	for _, c := range configs {
		for _, replicas := range []int{2, 4} {
			for _, killFrac := range []float64{0, 1 / float64(replicas)} {
				h, err := NewMultiDPHarness(MultiDPConfig{Replicas: replicas, AsyncShards: c.shards})
				if err != nil {
					return err
				}
				ok, failedN, failovers, syncMs := h.SyncBurst(burst, killFrac)
				pruneMs := time.Duration(0)
				if killFrac > 0 {
					killed := int(float64(replicas)*killFrac + 0.999999)
					pruneMs, err = h.AwaitPrune(replicas-killed, 30*time.Second)
					if err != nil {
						h.Close()
						return err
					}
				}
				accepted, drainMs, err := h.AsyncFlood(asyncN)
				if err != nil {
					h.Close()
					return err
				}
				t.addRow(
					c.name,
					replicas,
					fmt.Sprintf("%.2f", killFrac),
					ok,
					failedN,
					int(failovers),
					float64(syncMs)/float64(time.Millisecond),
					float64(pruneMs)/float64(time.Millisecond),
					accepted,
					float64(drainMs)/float64(time.Millisecond),
				)
				h.Close()
			}
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: sync_fail stays 0 at every kill fraction (accepted invocations")
	fmt.Fprintln(w, "# fail over to survivors); prune_ms ≈ DataPlaneTimeout + one sweep; the sharded")
	fmt.Fprintln(w, "# async queue drains the flood at least as fast as the seed single queue.")
	return nil
}
