package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/simulation"
	"dirigent/internal/telemetry"
	"dirigent/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Sandbox creation rate over the Azure trace on 1000 nodes (paper Fig. 3)",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Knative scheduling latency CDFs on the Azure-500 trace (paper Fig. 5)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Per-function slowdown CDFs on the Azure-500 trace (paper Fig. 9)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Scheduling latency CDFs on the Azure-500 trace (paper Fig. 10)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "azure500",
		Title: "Azure-500 end-to-end comparison: slowdown, scheduling, sandboxes, CPU (paper §5.3)",
		Run:   runAzure500,
	})
	register(Experiment{
		ID:    "azure4k",
		Title: "Azure-4000 larger trace: Dirigent vs AWS Lambda (paper §5.3)",
		Run:   runAzure4k,
	})
}

// azureTrace builds the synthetic Azure-like sample used across the §5.3
// experiments. Scale shrinks both the function count and the duration.
// Traces are memoized on their resolved generation parameters: a figure
// sweep replaying the same trace against several systems (and several
// figures sharing one config, see azure500Trace) materializes it once.
var azureTraces struct {
	sync.Mutex
	m map[trace.Config]*trace.Trace
}

func azureTrace(functions int, duration time.Duration, scale float64, seed int64) *trace.Trace {
	cfg := trace.Config{
		Functions: scaleInt(functions, scale, 20),
		Duration:  maxDuration(time.Duration(float64(duration)*scale), 3*time.Minute),
		Seed:      seed,
	}
	azureTraces.Lock()
	defer azureTraces.Unlock()
	if tr, ok := azureTraces.m[cfg]; ok {
		return tr
	}
	if azureTraces.m == nil {
		azureTraces.m = make(map[trace.Config]*trace.Trace)
	}
	tr := trace.NewAzureLike(cfg)
	azureTraces.m[cfg] = tr
	return tr
}

// azure500Trace is the one Azure-500 trace (500 functions, 30 minutes,
// seed 13) every §5.3 figure over that workload shares — fig5, fig9,
// fig10, and the azure500 summary replay identical event streams, so
// their numbers are directly comparable.
func azure500Trace(scale float64) *trace.Trace {
	return azureTrace(500, 30*time.Minute, scale, 13)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// warmupFor returns the warmup cutoff (paper: discard the first 10 of 30
// minutes).
func warmupFor(tr *trace.Trace) time.Duration { return tr.Duration / 3 }

// runFig3 reproduces Figure 3: per-second sandbox creation counts when the
// trace runs on a 1000-node cluster with Knative's default policies, plus
// the infinite-keep-alive variant discussed in §2.1.
func runFig3(w io.Writer, scale float64) error {
	tr := azureTrace(8000, 30*time.Minute, scale, 11)
	warmup := warmupFor(tr)

	run := func(infiniteKeepAlive bool) (telemetry.Stats, int) {
		eng := simulation.NewEngine()
		cfg := simulation.DirigentConfig{
			Workers: 1000,
			Runtime: "firecracker",
			Seed:    1,
		}
		if infiniteKeepAlive {
			sc := core.DefaultScalingConfig()
			sc.ScaleToZeroGrace = 365 * 24 * time.Hour
			sc.StableWindow = 60 * time.Second
			cfg.ScaleDefaults = &sc
		}
		m := simulation.NewDirigent(eng, cfg)
		simulation.ReplayTrace(eng, m, tr, warmup)
		_, stats := simulation.CreationRateStats(m.CreationTimes(), tr.Duration, warmup)
		return stats, m.SandboxCreations()
	}

	def, defTotal := run(false)
	inf, infTotal := run(true)

	t := newTable("policy", "avg_per_s", "p50_per_s", "p95_per_s", "p99_per_s", "max_per_s", "total")
	t.addRow("knative-default", def.Avg, def.P50, def.P95, def.P99, def.Max, defTotal)
	t.addRow("infinite-keep-alive", inf.Avg, inf.P50, inf.P95, inf.P99, inf.Max, infTotal)
	t.write(w)
	fmt.Fprintf(w, "# Trace: %d functions, %d invocations over %v.\n",
		len(tr.Functions), tr.TotalInvocations(), tr.Duration)
	fmt.Fprintln(w, "# Expected shape: sustained creations with p99 bursts far above the average")
	fmt.Fprintln(w, "# (timer-driven unison cold starts); infinite keep-alive still needs substantial")
	fmt.Fprintln(w, "# creation throughput for first-time invocations.")
	return nil
}

// runFig5 reproduces Figure 5: the CDFs of Knative per-invocation and
// per-function mean scheduling latency on the Azure-500 trace.
func runFig5(w io.Writer, scale float64) error {
	tr := azure500Trace(scale)
	warmup := warmupFor(tr)
	eng := simulation.NewEngine()
	m := simulation.NewKnative(eng, simulation.KnativeConfig{Seed: 1})
	col := simulation.ReplayTrace(eng, m, tr, warmup)

	perInv := col.Scheduling()
	perFn := col.PerFunctionScheduling()
	io.WriteString(w, telemetry.FormatCDFTable("knative per-invocation scheduling latency (ms)", perInv.CDF(15)))
	io.WriteString(w, telemetry.FormatCDFTable("knative per-function mean scheduling latency (ms)", perFn.CDF(15)))
	fmt.Fprintf(w, "# per-invocation: p50=%.2fms p99=%.2fms; per-function mean: p50=%.2fms p99=%.2fms\n",
		perInv.Percentile(50), perInv.Percentile(99), perFn.Percentile(50), perFn.Percentile(99))
	fmt.Fprintln(w, "# Expected shape: long tail — a sizable fraction of functions see multi-second")
	fmt.Fprintln(w, "# mean scheduling latency while the median invocation is fast.")
	return nil
}

type azureSystem struct {
	name string
	make func(eng *simulation.Engine) simulation.Model
}

func azureSystems() []azureSystem {
	return []azureSystem{
		{"knative", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}},
		{"aws-lambda", func(e *simulation.Engine) simulation.Model {
			return simulation.NewLambda(e, simulation.LambdaConfig{Seed: 1})
		}},
		{"dirigent-containerd", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "containerd", Seed: 1})
		}},
		{"dirigent-firecracker", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		}},
	}
}

// runFig9 reproduces Figure 9: per-function slowdown CDFs for the four
// systems on the Azure-500 trace.
func runFig9(w io.Writer, scale float64) error {
	tr := azure500Trace(scale)
	warmup := warmupFor(tr)
	t := newTable("system", "p50_slowdown", "p90", "p99", "max")
	for _, sys := range azureSystems() {
		eng := simulation.NewEngine()
		m := sys.make(eng)
		col := simulation.ReplayTrace(eng, m, tr, warmup)
		h := col.PerFunctionSlowdown()
		t.addRow(sys.name, h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max())
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: Dirigent median ≈1.4 < Lambda ≈1.9 < Knative ≈13; Dirigent's")
	fmt.Fprintln(w, "# p99 orders of magnitude below Knative's; Dirigent-firecracker slightly better")
	fmt.Fprintln(w, "# than containerd except at the extreme tail (snapshot restores from disk).")
	return nil
}

// runFig10 reproduces Figure 10: per-invocation and per-function average
// scheduling latency CDFs.
func runFig10(w io.Writer, scale float64) error {
	tr := azure500Trace(scale)
	warmup := warmupFor(tr)
	t := newTable("system", "perinv_p50_ms", "perinv_p99_ms", "perfn_p50_ms", "perfn_p99_ms")
	for _, sys := range azureSystems() {
		if sys.name == "dirigent-containerd" {
			continue // Figure 10 plots one Dirigent configuration
		}
		eng := simulation.NewEngine()
		m := sys.make(eng)
		col := simulation.ReplayTrace(eng, m, tr, warmup)
		perInv := col.Scheduling()
		perFn := col.PerFunctionScheduling()
		t.addRow(sys.name, perInv.Percentile(50), perInv.Percentile(99),
			perFn.Percentile(50), perFn.Percentile(99))
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: Dirigent's median per-invocation scheduling ≈1.7ms vs Knative ≈4.7ms,")
	fmt.Fprintln(w, "# and p99 ≈1.1s vs ≈60s (403x per-function at p99 in the paper); Lambda in between.")
	return nil
}

// runAzure500 reproduces the §5.3 summary table: slowdown percentiles,
// scheduling latency, sandbox counts, and control plane utilization.
func runAzure500(w io.Writer, scale float64) error {
	tr := azure500Trace(scale)
	warmup := warmupFor(tr)
	t := newTable("system", "sd_p50", "sd_p99", "sched_p50_ms", "sched_p99_ms", "sandboxes", "cp_util_%", "fail_%")
	for _, sys := range azureSystems() {
		eng := simulation.NewEngine()
		m := sys.make(eng)
		col := simulation.ReplayTrace(eng, m, tr, warmup)
		slow := col.PerFunctionSlowdown()
		sched := col.Scheduling()
		cpUtil := "-"
		switch mm := m.(type) {
		case *simulation.Dirigent:
			cpUtil = formatFloat(mm.ControlPlaneUtilization() * 100)
		case *simulation.Knative:
			cpUtil = formatFloat(mm.ControlPlaneUtilization() * 100)
		}
		t.addRow(sys.name, slow.Percentile(50), slow.Percentile(99),
			sched.Percentile(50), sched.Percentile(99),
			m.SandboxCreations(), cpUtil, col.FailureRate()*100)
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: Dirigent creates far fewer sandboxes than Knative for the same")
	fmt.Fprintln(w, "# trace and policies (713 vs 2930 in the paper) because fast creations drain the")
	fmt.Fprintln(w, "# queue before the autoscaler overreacts; Dirigent CP utilization ~3% vs >75%.")
	return nil
}

// runAzure4k reproduces the larger-trace experiment: 4000 functions,
// Dirigent vs AWS Lambda (Knative cannot run it, §5.3).
func runAzure4k(w io.Writer, scale float64) error {
	tr := azureTrace(4000, 30*time.Minute, scale, 14)
	warmup := warmupFor(tr)
	t := newTable("system", "invocations", "sd_p50", "sd_p99", "fail_%")
	for _, sys := range azureSystems() {
		if sys.name == "knative" || sys.name == "dirigent-containerd" {
			continue
		}
		eng := simulation.NewEngine()
		m := sys.make(eng)
		col := simulation.ReplayTrace(eng, m, tr, warmup)
		slow := col.Slowdowns()
		t.addRow(sys.name, len(col.Results), slow.Percentile(50), slow.Percentile(99), col.FailureRate()*100)
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: Dirigent sustains the 4000-function trace with modest slowdowns")
	fmt.Fprintln(w, "# (paper: p50 2.14, p99 15.4) while Lambda's tail explodes (p50 70, p99 11631)")
	fmt.Fprintln(w, "# under the trace's cold-start bursts.")
	return nil
}
