package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"dirigent/internal/scenario"
	"dirigent/internal/trace"
	"dirigent/internal/versioning"
)

func init() {
	register(Experiment{
		ID:    "e2e",
		Title: "End-to-end macro-benchmark: live Azure-trace replay with workflows, a versioned rollout, and injected worker/DP/relay failures (paper §5.3 + §5.4)",
		Run:   runE2E,
	})
	register(Experiment{
		ID:    "e2ecp",
		Title: "End-to-end macro-benchmark, replicated control plane: the same live replay with the CP leader killed and revived mid-trace (paper §5.4 CP failover)",
		Run:   runE2ECP,
	})
}

// e2eScenario builds the macro-benchmark scenario: the compressed
// Azure-like trace against the full live stack (CP + 3 DP replicas on a
// shared durable store + relay tier + emulated fleet), mixed sync/async/
// workflow traffic, and a fault schedule spread over the measurement
// window — canary split, worker-rack kill/revive, DP replica kill/
// revive, relay kill, and a full promote.
func e2eScenario(scale float64) scenario.Config {
	tr := trace.NewAzureLike(trace.Config{
		Functions: scaleInt(120, scale, 48),
		Duration:  maxDuration(time.Duration(float64(12*time.Minute)*scale), 4*time.Minute),
		Seed:      21,
	})
	warmup := warmupFor(tr)
	span := tr.Duration - warmup
	at := func(k int) time.Duration { return warmup + span*time.Duration(k)/8 }
	rollout := scenario.HottestFunction(tr)
	v2 := rollout + "@v2"
	return scenario.Config{
		Trace:           tr,
		Warmup:          warmup,
		RolloutFunction: rollout,
		DataPlanes:      3,
		Workers:         scaleInt(24, scale, 12),
		Relays:          2,
		AsyncEveryN:     7,
		WorkflowEveryN:  31,
		Schedule: []scenario.Event{
			{At: at(1), Phase: "canary", Rollout: []versioning.Version{
				{Function: rollout, Weight: 90},
				{Function: v2, Weight: 10},
			}},
			{At: at(2), Phase: "rack-loss", Kind: scenario.FaultWorkerRack, Action: "kill", Frac: 0.25},
			{At: at(3), Phase: "rack-revived", Kind: scenario.FaultWorkerRack, Action: "revive"},
			{At: at(4), Phase: "dp-loss", Kind: scenario.FaultDataPlane, Action: "kill", Index: 1},
			{At: at(5), Phase: "dp-revived", Kind: scenario.FaultDataPlane, Action: "revive", Index: 1},
			{At: at(6), Phase: "relay-loss", Kind: scenario.FaultRelay, Action: "kill", Index: 0},
			{At: at(7), Phase: "promoted", Promote: v2},
		},
	}
}

// e2ecpScenario is the 8-phase replicated-control-plane variant: a
// 3-replica CP tier with follower reads, the same trace and traffic mix,
// and a schedule that decapitates the CP tier mid-replay — the leader is
// killed in the cp-loss phase (a follower wins the election and recovers
// from its applied log) and the dead replica rejoins in cp-revived
// (catching up from the new leader's log).
func e2ecpScenario(scale float64) scenario.Config {
	cfg := e2eScenario(scale)
	cfg.ControlPlanes = 3
	cfg.CPFollowerReads = true
	warmup := cfg.Warmup
	span := cfg.Trace.Duration - warmup
	at := func(k int) time.Duration { return warmup + span*time.Duration(k)/8 }
	rollout := cfg.RolloutFunction
	v2 := rollout + "@v2"
	cfg.Schedule = []scenario.Event{
		{At: at(1), Phase: "canary", Rollout: []versioning.Version{
			{Function: rollout, Weight: 90},
			{Function: v2, Weight: 10},
		}},
		{At: at(2), Phase: "rack-loss", Kind: scenario.FaultWorkerRack, Action: "kill", Frac: 0.25},
		{At: at(3), Phase: "rack-revived", Kind: scenario.FaultWorkerRack, Action: "revive"},
		{At: at(4), Phase: "cp-loss", Kind: scenario.FaultControlPlane, Action: "kill"},
		{At: at(5), Phase: "cp-revived", Kind: scenario.FaultControlPlane, Action: "revive"},
		{At: at(6), Phase: "dp-loss", Kind: scenario.FaultDataPlane, Action: "kill", Index: 1},
		{At: at(7), Phase: "promoted", Promote: v2},
	}
	return cfg
}

// runE2E replays the scenario and writes the per-phase table. The run is
// self-checking: any lost sync invocation, stranded async record, failed
// async accept, failed workflow, or invocation served by neither rollout
// version fails the experiment — which is what the CI smoke variant
// (TestE2EScenarioSmoke) asserts at a seconds scale. At scale 1 the
// report is committed to BENCH_e2e.json.
func runE2E(w io.Writer, scale float64) error {
	return e2eRun(w, e2eScenario(scale), scale, "BENCH_e2e.json", 0)
}

// runE2ECP is the CP-failover variant: the same self-checks plus a
// recovery assertion — the tier must see at least two leadership
// recoveries (the initial election and the post-kill takeover).
func runE2ECP(w io.Writer, scale float64) error {
	return e2eRun(w, e2ecpScenario(scale), scale, "BENCH_e2e_cp.json", 2)
}

func e2eRun(w io.Writer, cfg scenario.Config, scale float64, benchFile string, wantCPRecoveries int64) error {
	fmt.Fprintf(w, "trace: %d functions, %d invocations over %v (replayed in ~%v wall); rollout target %s\n",
		len(cfg.Trace.Functions), len(cfg.Trace.Invocations), cfg.Trace.Duration,
		time.Duration(float64(cfg.Trace.Duration)/30).Round(time.Second), cfg.RolloutFunction)
	rep, err := scenario.Run(cfg)
	if err != nil {
		return err
	}

	t := newTable("phase", "from_min", "to_min", "inv", "rps", "cold_%", "p50_ms", "p99_ms",
		"async", "wf", "wf_ok", "v2")
	for _, p := range rep.Phases {
		t.addRow(p.Phase, fmt.Sprintf("%.1f", p.FromMin), fmt.Sprintf("%.1f", p.ToMin),
			p.Invocations, fmt.Sprintf("%.0f", p.RPS), fmt.Sprintf("%.1f", 100*p.ColdRate),
			p.P50Ms, p.P99Ms, p.Async, p.Workflows, p.WorkflowOK, p.VersionedV2)
	}
	t.write(w)
	for _, f := range rep.FaultsInjected {
		fmt.Fprintf(w, "# fault: %s\n", f)
	}
	fmt.Fprintf(w, "# lost_sync=%d async: accepted=%d accept_failed=%d stranded=%d drain=%.0fms\n",
		rep.LostSync, rep.AsyncAccepted, rep.AsyncAcceptFailed, rep.AsyncStranded, rep.AsyncDrainMs)
	fmt.Fprintf(w, "# workflows=%d ok=%d (%.1f%%) versions=%v unversioned=%d\n",
		rep.Workflows, rep.WorkflowOK, 100*rep.WorkflowSuccessRate, rep.VersionServed, rep.UnversionedServes)
	fmt.Fprintf(w, "# CP sweeps saw: worker_failures=%d dp_failures=%d dp_revivals=%d relay_failures=%d; lb_failovers=%d cp_recoveries=%d\n",
		rep.WorkerFailuresDetected, rep.DPFailuresDetected, rep.DPRevivals,
		rep.RelayFailuresDetected, rep.LBFailovers, rep.CPRecoveries)
	fmt.Fprintln(w, "# Expected shape: zero lost sync invocations and zero stranded async records")
	fmt.Fprintln(w, "# across every injected failure; cold rate spikes in rack-loss (re-placement)")
	fmt.Fprintln(w, "# and decays after revival; p99 absorbs the DP kill (front-end failover +")
	fmt.Fprintln(w, "# cold-start queueing) without failures; the canary serves both versions and")
	fmt.Fprintln(w, "# the promote phase serves only @v2.")

	if rep.LostSync > 0 {
		return fmt.Errorf("e2e: %d sync invocations lost", rep.LostSync)
	}
	if rep.AsyncAcceptFailed > 0 {
		return fmt.Errorf("e2e: %d async accepts failed", rep.AsyncAcceptFailed)
	}
	if rep.AsyncStranded > 0 {
		return fmt.Errorf("e2e: %d async records stranded", rep.AsyncStranded)
	}
	if rep.Workflows != rep.WorkflowOK {
		return fmt.Errorf("e2e: %d/%d workflows failed", rep.Workflows-rep.WorkflowOK, rep.Workflows)
	}
	if rep.UnversionedServes > 0 {
		return fmt.Errorf("e2e: %d invocations resolved to no registered version", rep.UnversionedServes)
	}
	if rep.CPRecoveries < wantCPRecoveries {
		return fmt.Errorf("e2e: %d control plane recoveries, want >= %d (kill should force a takeover)",
			rep.CPRecoveries, wantCPRecoveries)
	}

	if scale < 1 {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if werr := os.WriteFile(benchFile, append(data, '\n'), 0o644); werr != nil {
		fmt.Fprintf(w, "# warning: %s not written: %v\n", benchFile, werr)
	} else {
		fmt.Fprintf(w, "# wrote %s\n", benchFile)
	}
	return nil
}
