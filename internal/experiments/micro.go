package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dirigent/internal/simulation"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Knative cold-start latency breakdown vs concurrent creations (paper Fig. 1)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "AWS Lambda end-to-end latency CDFs vs cold-start burst size (paper Fig. 2)",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Cold start performance sweep: p50/p99 vs rate, all systems + ablations (paper Fig. 7)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Warm start performance sweep: p50/p99 vs rate (paper Fig. 8)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "scalability",
		Title: "Peak cold-start throughput vs cluster size (paper §5.2.3)",
		Run:   runScalability,
	})
	register(Experiment{
		ID:    "registration",
		Title: "Function registration latency, Dirigent vs Knative (paper §5.2.4)",
		Run:   runRegistration,
	})
}

// runFig1 reproduces Figure 1: median cold-start latency breakdown for
// bursts of concurrent sandbox creations in Knative.
func runFig1(w io.Writer, scale float64) error {
	bursts := []int{1, 25, 50, 100}
	t := newTable("burst", "median_total_ms", "control_plane_ms", "sandbox_creation_ms", "sandbox_init_ms", "other_ms")
	for _, burst := range bursts {
		b := scaleInt(burst, scale, 1)
		eng := simulation.NewEngine()
		model := simulation.NewKnative(eng, simulation.KnativeConfig{Seed: 1})
		col := simulation.RunColdBurst(eng, model, b)
		e2e := col.E2E()
		bds := model.Breakdowns()
		cp := medianOf(bds, func(x simulation.CreationBreakdown) time.Duration { return x.ControlPlane })
		create := medianOf(bds, func(x simulation.CreationBreakdown) time.Duration { return x.SandboxCreation })
		boot := medianOf(bds, func(x simulation.CreationBreakdown) time.Duration { return x.SandboxInit })
		other := medianOf(bds, func(x simulation.CreationBreakdown) time.Duration { return x.Other })
		t.addRow(b, e2e.Percentile(50), ms(cp), ms(create), ms(boot), ms(other))
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: control-plane component grows with burst size (≈2s at 100),")
	fmt.Fprintln(w, "# while sandbox creation (~400ms) and init (~500ms) stay flat.")
	return nil
}

func medianOf(bds []simulation.CreationBreakdown, f func(simulation.CreationBreakdown) time.Duration) time.Duration {
	if len(bds) == 0 {
		return 0
	}
	vals := make([]time.Duration, len(bds))
	for i, b := range bds {
		vals[i] = f(b)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runFig2 reproduces Figure 2: Lambda end-to-end latency distributions for
// increasing cold-start bursts.
func runFig2(w io.Writer, scale float64) error {
	bursts := []int{1, 25, 100, 400, 800, 1600}
	t := newTable("burst", "p10_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms")
	for _, burst := range bursts {
		b := scaleInt(burst, scale, 1)
		eng := simulation.NewEngine()
		model := simulation.NewLambda(eng, simulation.LambdaConfig{Seed: 2})
		col := simulation.RunColdBurst(eng, model, b)
		h := col.E2E()
		t.addRow(b, h.Percentile(10), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max())
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: the whole CDF shifts right and the tail fattens as the burst grows")
	fmt.Fprintln(w, "# (sub-second median at burst 1, multi-second tail at burst 1600).")
	return nil
}

type sweepSystem struct {
	name    string
	make    func(eng *simulation.Engine) simulation.Model
	maxRate float64 // skip rates far beyond saturation to bound runtime
}

func coldSweepSystems() []sweepSystem {
	return []sweepSystem{
		{"knative", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}, 16},
		{"knative-k3s", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Fused: true, Seed: 1})
		}, 16},
		{"openwhisk", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{OpenWhisk: true, Seed: 1})
		}, 16},
		{"dirigent-containerd", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "containerd", Seed: 1})
		}, 3000},
		{"dirigent-firecracker", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		}, 3000},
		{"dirigent-persist-all", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", PersistSandboxState: true, Seed: 1})
		}, 3000},
	}
}

// runFig7 reproduces Figure 7 (the cold-start rate sweep) together with
// the §5.2.1 ablations (persist-everything and K3s-fused Knative).
func runFig7(w io.Writer, scale float64) error {
	rates := []float64{1, 2, 5, 10, 100, 500, 1000, 1750, 2000, 2500, 3000}
	duration := time.Duration(float64(20*time.Second) * scale)
	if duration < 2*time.Second {
		duration = 2 * time.Second
	}
	t := newTable("system", "rate_per_s", "n", "p50_ms", "p99_ms")
	for _, sys := range coldSweepSystems() {
		for _, rate := range rates {
			if rate > sys.maxRate {
				continue
			}
			eng := simulation.NewEngine()
			m := sys.make(eng)
			col := simulation.RunColdRateSweep(eng, m, rate, duration)
			h := col.E2E()
			t.addRow(sys.name, rate, h.Count(), h.Percentile(50), h.Percentile(99))
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: Knative/OpenWhisk saturate near 2 cold starts/s;")
	fmt.Fprintln(w, "# K3s fusing helps only marginally; persist-all caps near 1000/s;")
	fmt.Fprintln(w, "# Dirigent-containerd saturates ~1750/s (worker kernel locks);")
	fmt.Fprintln(w, "# Dirigent-firecracker reaches ~2500/s (control plane bound).")
	return nil
}

// runFig8 reproduces Figure 8 (the warm-start rate sweep).
func runFig8(w io.Writer, scale float64) error {
	rates := []float64{10, 100, 500, 1000, 1200, 2000, 4000, 5000}
	duration := time.Duration(float64(10*time.Second) * scale)
	if duration < 2*time.Second {
		duration = 2 * time.Second
	}
	systems := []sweepSystem{
		{"dirigent", func(e *simulation.Engine) simulation.Model {
			return simulation.NewDirigent(e, simulation.DirigentConfig{Runtime: "firecracker", Seed: 1})
		}, 5000},
		{"knative", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{Seed: 1})
		}, 5000},
		{"openwhisk", func(e *simulation.Engine) simulation.Model {
			return simulation.NewKnative(e, simulation.KnativeConfig{OpenWhisk: true, Seed: 1})
		}, 5000},
	}
	t := newTable("system", "rate_per_s", "n", "p50_ms", "p99_ms")
	for _, sys := range systems {
		for _, rate := range rates {
			eng := simulation.NewEngine()
			m := sys.make(eng)
			col := simulation.RunWarmRateSweep(eng, m, rate, duration)
			h := col.E2E()
			t.addRow(sys.name, rate, h.Count(), h.Percentile(50), h.Percentile(99))
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: Dirigent ~1.4-2.5ms p50 sustained to ~4000/s;")
	fmt.Fprintln(w, "# Knative ~7ms p50 saturating ~1200/s; OpenWhisk higher latency, earlier saturation.")
	return nil
}

// runScalability reproduces §5.2.3: Dirigent's peak cold-start throughput
// as the worker count grows (with 40 ms emulated creations, as the paper
// does beyond its physical 93 nodes).
func runScalability(w io.Writer, scale float64) error {
	workerCounts := []int{93, 500, 1000, 2500, 5000}
	duration := time.Duration(float64(15*time.Second) * scale)
	if duration < 2*time.Second {
		duration = 2 * time.Second
	}
	t := newTable("workers", "offered_rate", "n", "p50_ms", "p99_ms", "saturated")
	for _, workers := range workerCounts {
		for _, rate := range []float64{2000, 2500} {
			eng := simulation.NewEngine()
			m := simulation.NewDirigent(eng, simulation.DirigentConfig{
				Workers: workers,
				Runtime: "firecracker",
				Seed:    1,
			})
			col := simulation.RunColdRateSweep(eng, m, rate, duration)
			h := col.E2E()
			saturated := "no"
			if h.Percentile(99) > 1000 {
				saturated = "yes"
			}
			t.addRow(workers, rate, h.Count(), h.Percentile(50), h.Percentile(99), saturated)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: throughput/latency flat up to 2500 workers; at 5000 workers")
	fmt.Fprintln(w, "# heartbeat-structure contention degrades peak throughput to ~2000/s.")
	return nil
}

// runRegistration reproduces §5.2.4: per-function registration latency and
// the time to register 1000 functions.
func runRegistration(w io.Writer, scale float64) error {
	n := scaleInt(1000, scale, 10)

	// Knative: modeled per-registration cost grows with cluster content.
	eng := simulation.NewEngine()
	kn := simulation.NewKnative(eng, simulation.KnativeConfig{Seed: 1})
	var knTotal time.Duration
	var knFirst, knLast time.Duration
	for i := 0; i < n; i++ {
		c := kn.RegistrationCost(i)
		if i == 0 {
			knFirst = c
		}
		knLast = c
		knTotal += c
	}

	// Dirigent: measured on the live in-process cluster — registration is
	// a single persisted write plus a metadata push to data planes.
	dirFirst, dirMean, dirTotal, err := measureDirigentRegistration(n)
	if err != nil {
		return err
	}

	t := newTable("system", "functions", "first_ms", "mean_ms", "last_ms", "total")
	t.addRow("knative", n, ms(knFirst), ms(knTotal/time.Duration(n)), ms(knLast), knTotal.Round(time.Second).String())
	t.addRow("dirigent", n, ms(dirFirst), dirMean, dirMean, dirTotal.Round(time.Millisecond).String())
	t.write(w)
	fmt.Fprintln(w, "# Expected shape: Knative ~770ms/function growing with cluster content (~18min for 1000);")
	fmt.Fprintln(w, "# Dirigent ~2ms/function (~1s for 1000): persist spec + push metadata, nothing else.")
	return nil
}
