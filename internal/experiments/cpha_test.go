package experiments

import (
	"strings"
	"testing"
)

// TestCPHASmoke runs the CP high-availability sweep at a small scale:
// all five configurations ({1,3} replicas × {leader-only, follower
// reads} × steady/leader-kill), each against a live cluster. runCPHA
// self-checks zero lost acknowledged writes, the follower-read split,
// and non-trivial replication batching, so a nil error IS the assertion.
func TestCPHASmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cpha sweep skipped in -short mode")
	}
	var buf strings.Builder
	if err := runCPHA(&buf, 0.2); err != nil {
		t.Fatalf("cpha smoke: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"leader_share", "failover_ms", "mean_batch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cpha output missing %q:\n%s", want, out)
		}
	}
}
