package codec

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.U8(0xAB)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(0x0123456789ABCDEF)
	e.I64(-42)
	e.F64(3.14159)
	e.Bool(true)
	e.Bool(false)
	e.String("hello, dirigent")
	e.RawBytes([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %x", got)
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
	if got := d.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Bool(); !got {
		t.Errorf("Bool(true) = false")
	}
	if got := d.Bool(); got {
		t.Errorf("Bool(false) = true")
	}
	if got := d.String(); got != "hello, dirigent" {
		t.Errorf("String = %q", got)
	}
	if got := d.RawBytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("RawBytes = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecoderShortBufferIsSticky(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	_ = d.U32() // needs 4 bytes, only 1 available
	if d.Err() == nil {
		t.Fatalf("expected short-buffer error")
	}
	// Every subsequent read must return zero values without panicking.
	if d.U8() != 0 || d.U64() != 0 || d.String() != "" || d.Bool() {
		t.Errorf("post-error reads should return zero values")
	}
}

func TestDecoderEmptyBuffer(t *testing.T) {
	d := NewDecoder(nil)
	if d.String() != "" {
		t.Errorf("empty decode should return empty string")
	}
	if d.Err() == nil {
		t.Errorf("expected error on empty buffer")
	}
}

// TestQuickStringRoundTrip property-tests that arbitrary strings survive
// encode/decode (up to the uint16 length prefix limit).
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 1<<16-1 {
			s = s[:1<<16-1]
		}
		e := NewEncoder(len(s) + 2)
		e.String(s)
		d := NewDecoder(e.Bytes())
		return d.String() == s && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickScalarRoundTrip property-tests scalar fields.
func TestQuickScalarRoundTrip(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, e int64, g float64, h bool) bool {
		if math.IsNaN(g) {
			return true // NaN != NaN by definition; bits still round-trip
		}
		enc := NewEncoder(64)
		enc.U8(a)
		enc.U16(b)
		enc.U32(c)
		enc.U64(d)
		enc.I64(e)
		enc.F64(g)
		enc.Bool(h)
		dec := NewDecoder(enc.Bytes())
		return dec.U8() == a && dec.U16() == b && dec.U32() == c &&
			dec.U64() == d && dec.I64() == e && dec.F64() == g &&
			dec.Bool() == h && dec.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBytesRoundTrip property-tests raw byte slices.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		e := NewEncoder(len(b) + 4)
		e.RawBytes(b)
		d := NewDecoder(e.Bytes())
		got := d.RawBytes()
		return bytes.Equal(got, b) && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBloatedEncodeReachesTarget(t *testing.T) {
	for _, target := range []int{1024, 17 * 1024, 64 * 1024} {
		out := BloatedEncode("Pod", "fn-0-deployment-abc123", []byte("state"), target)
		if len(out) < target {
			t.Errorf("BloatedEncode(%d) produced %d bytes", target, len(out))
		}
		s := string(out)
		for _, want := range []string{"apiVersion:", "annotations:", "labels:", "containers:", "status:"} {
			if !strings.Contains(s, want) {
				t.Errorf("bloated encoding missing %q section", want)
			}
		}
	}
}

func TestBloatedEncodeDeterministic(t *testing.T) {
	a := BloatedEncode("ReplicaSet", "x", []byte("p"), 4096)
	b := BloatedEncode("ReplicaSet", "x", []byte("p"), 4096)
	if !bytes.Equal(a, b) {
		t.Errorf("bloated encoding should be deterministic")
	}
}
