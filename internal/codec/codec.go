// Package codec implements the compact binary serialization Dirigent uses
// for cluster state (paper §3.2: "we adopt a minimalist metadata and
// storage schema and store state in a serialized binary format", with a
// sandbox record of 16 bytes), plus a deliberately bloated text encoder
// that models the ~17 KB deeply nested YAML objects K8s-based managers
// serialize on every state update (paper §2.2).
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Encoder appends fixed-width little-endian fields and length-prefixed
// strings to a byte buffer.
type Encoder struct{ buf []byte }

// NewEncoder returns an encoder with an optional pre-sized buffer.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends an unsigned 8-bit value.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends an unsigned 16-bit value.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends an unsigned 32-bit value.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends an unsigned 64-bit value.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a 64-bit float.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// String appends a uint16 length prefix followed by the raw bytes.
// Strings longer than 64 KiB are rejected at decode time, which is far
// beyond anything Dirigent's minimal schema produces.
func (e *Encoder) String(s string) {
	e.U16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// RawBytes appends a uint32 length prefix followed by the raw bytes.
func (e *Encoder) RawBytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads fields appended by Encoder. Errors are sticky: after the
// first failure every further read returns the zero value and Err reports
// the original error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("codec: short buffer: need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return false
	}
	return true
}

// U8 reads an unsigned 8-bit value.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 reads an unsigned 16-bit value.
func (d *Decoder) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// U32 reads an unsigned 32-bit value.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads an unsigned 64-bit value.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a 64-bit float.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// String reads a string written by Encoder.String.
func (d *Decoder) String() string {
	n := int(d.U16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// RawBytes reads a byte slice written by Encoder.RawBytes. The returned
// slice aliases the decoder's buffer.
func (d *Decoder) RawBytes() []byte {
	n := int(d.U32())
	if n < 0 || !d.need(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// BloatedEncode wraps payload into a deeply nested YAML-like document padded
// with long keys, annotations, labels, environment blocks, and state
// transition timestamps until it reaches at least targetBytes. This models
// the serialization work a K8s API server performs per object update
// (paper §2.2: key-value pairs averaging 17 kB, represented as deeply
// nested trees). The Knative baseline's cost model charges CPU time
// proportional to the size of this encoding.
func BloatedEncode(kind, name string, payload []byte, targetBytes int) []byte {
	var b strings.Builder
	b.Grow(targetBytes + 512)
	fmt.Fprintf(&b, "apiVersion: serving.internal/v1\nkind: %s\nmetadata:\n  name: %s\n", kind, name)
	b.WriteString("  annotations:\n")
	i := 0
	for b.Len() < targetBytes*6/10 {
		fmt.Fprintf(&b, "    orchestration.internal/controller-revision-annotation-%04d: \"reconciliation-state-marker-%04d\"\n", i, i)
		i++
	}
	b.WriteString("  labels:\n")
	for b.Len() < targetBytes*8/10 {
		fmt.Fprintf(&b, "    workload.internal/selector-label-key-with-long-prefix-%04d: value-%04d\n", i, i)
		i++
	}
	b.WriteString("spec:\n  template:\n    spec:\n      containers:\n      - env:\n")
	for b.Len() < targetBytes {
		fmt.Fprintf(&b, "        - name: INJECTED_RUNTIME_ENVIRONMENT_VARIABLE_%04d\n          value: \"%04d\"\n", i, i)
		i++
	}
	fmt.Fprintf(&b, "status:\n  observedGeneration: %d\n  payload: %q\n", i, payload)
	return []byte(b.String())
}
