package frontend

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
	"dirigent/internal/versioning"
)

// TestCooldownExpiryBoundary pins the cooldown semantics on the virtual
// clock: a replica marked down is skipped strictly before downTil and
// rejoins the healthy rotation at exactly downTil — the boundary instant
// is "expired", matching time.Before.
func TestCooldownExpiryBoundary(t *testing.T) {
	tr := transport.NewInProc()
	vclk := clock.NewVirtual(time.Unix(9000, 0))
	alive := newFakeDP(t, tr, "dp-alive")
	lb := New(Config{
		Transport:       tr,
		DataPlanes:      []string{"dp-alive", "dp-flaky"},
		FailureCooldown: 10 * time.Second,
		Clock:           vclk,
	})

	// Find a function homed on dp-flaky so its failure actually triggers
	// a failover from the home replica.
	var fn string
	for i := 0; ; i++ {
		fn = fmt.Sprintf("boundary-%d", i)
		if lb.candidates(fn)[0] == "dp-flaky" {
			break
		}
	}
	if _, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: fn}); err != nil {
		t.Fatalf("invoke with live fallback: %v", err)
	}
	alive.mu.Lock()
	served := alive.calls
	alive.mu.Unlock()
	if served != 1 {
		t.Fatalf("fallback replica served %d calls, want 1", served)
	}

	// Strictly inside the cooldown the home replica is a last resort.
	vclk.Advance(10*time.Second - time.Nanosecond)
	if cands := lb.candidates(fn); cands[0] != "dp-alive" || cands[1] != "dp-flaky" {
		t.Fatalf("inside cooldown: candidates = %v, want flaky last", cands)
	}
	// At exactly downTil the replica rejoins the healthy order (and,
	// being the rendezvous home, leads it again).
	vclk.Advance(time.Nanosecond)
	if cands := lb.candidates(fn); cands[0] != "dp-flaky" {
		t.Fatalf("at cooldown boundary: candidates = %v, want flaky first", cands)
	}
}

// TestAllReplicasCoolingLastResortOrder: with every replica in cooldown,
// invocations are not failed outright — the cooling replicas are tried
// as a last resort, in home (rendezvous) order.
func TestAllReplicasCoolingLastResortOrder(t *testing.T) {
	tr := transport.NewInProc()
	vclk := clock.NewVirtual(time.Unix(9000, 0))
	lb := New(Config{
		Transport:       tr,
		DataPlanes:      []string{"dp-a", "dp-b", "dp-c"},
		FailureCooldown: time.Minute,
		Clock:           vclk,
	})
	const fn = "all-cooling"
	home := lb.candidates(fn)
	for _, addr := range home {
		lb.markDown(addr)
	}
	cooling := lb.candidates(fn)
	if len(cooling) != 3 {
		t.Fatalf("cooling candidates = %v, want all 3", cooling)
	}
	for i := range home {
		if cooling[i] != home[i] {
			t.Fatalf("last-resort order %v != home order %v", cooling, home)
		}
	}
	// A replica that comes back while every peer is still cooling serves
	// the last-resort attempt.
	newFakeDP(t, tr, home[1])
	resp, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: fn})
	if err != nil {
		t.Fatalf("all-cooling invoke: %v", err)
	}
	if string(resp.Body) != home[1] {
		t.Fatalf("served by %q, want last-resort %q", resp.Body, home[1])
	}
}

// TestMembershipChangeMidFlight: an invocation that computed its
// candidate order before a membership change completes against the old
// order's survivors, while new invocations steer by the new set — no
// request is stranded by the transition.
func TestMembershipChangeMidFlight(t *testing.T) {
	tr := transport.NewInProc()
	release := make(chan struct{})
	started := make(chan struct{}, 16)

	// dp-slow blocks mid-request so the membership change lands while
	// the invocation is in flight.
	slowLn, err := tr.Listen("dp-slow", func(method string, payload []byte) ([]byte, error) {
		started <- struct{}{}
		<-release
		return (&proto.InvokeResponse{Body: []byte("dp-slow")}).Marshal(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer slowLn.Close()
	newFakeDP(t, tr, "dp-stay")

	lb := New(Config{Transport: tr, DataPlanes: []string{"dp-slow", "dp-stay"}})
	var fn string
	for i := 0; ; i++ {
		fn = fmt.Sprintf("midflight-%d", i)
		if lb.candidates(fn)[0] == "dp-slow" {
			break
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: fn})
		done <- err
	}()
	<-started
	// Membership drops dp-slow while the request is inside it.
	lb.SetDataPlanes([]string{"dp-stay"})
	if cands := lb.candidates(fn); len(cands) != 1 || cands[0] != "dp-stay" {
		t.Fatalf("new candidates = %v, want [dp-stay]", cands)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("mid-flight invocation failed after membership change: %v", err)
	}
}

// TestSetDataPlanesDropsStaleCooldown: cooldown state must leave the LB
// with the replica. Without the GC, an address removed while cooling and
// later re-added (replica restarted on the same host:port) would start
// blacklisted for the residual cooldown.
func TestSetDataPlanesDropsStaleCooldown(t *testing.T) {
	tr := transport.NewInProc()
	vclk := clock.NewVirtual(time.Unix(9000, 0))
	lb := New(Config{
		Transport:       tr,
		DataPlanes:      []string{"dp-a", "dp-b"},
		FailureCooldown: time.Hour,
		Clock:           vclk,
	})
	lb.markDown("dp-a")
	lb.SetDataPlanes([]string{"dp-b"})         // dp-a leaves
	lb.SetDataPlanes([]string{"dp-a", "dp-b"}) // dp-a returns, hour not elapsed

	var fn string
	for i := 0; ; i++ {
		fn = fmt.Sprintf("gc-%d", i)
		if lb.candidates(fn)[0] == "dp-a" {
			break
		}
	}
	// dp-a leads again: the stale cooldown entry is gone.
	lb.mu.Lock()
	_, stillDown := lb.downTil["dp-a"]
	lb.mu.Unlock()
	if stillDown {
		t.Fatalf("downTil entry for removed replica survived SetDataPlanes")
	}
}

// TestVersionRouterSteersPerResolvedVersion: the version router resolves
// before steering, so each version of a function gets its own rendezvous
// home — a canary split across versions also splits across the replicas
// that home them, and cooldown failover applies per resolved target.
func TestVersionRouterSteersPerResolvedVersion(t *testing.T) {
	tr := transport.NewInProc()
	dps := map[string]*fakeDP{
		"dp-0": newFakeDP(t, tr, "dp-0"),
		"dp-1": newFakeDP(t, tr, "dp-1"),
		"dp-2": newFakeDP(t, tr, "dp-2"),
	}
	router := versioning.NewRouter()
	if err := router.SetSplit("api",
		versioning.Version{Function: "api@v1", Weight: 1},
		versioning.Version{Function: "api@v2", Weight: 1},
	); err != nil {
		t.Fatal(err)
	}
	lb := New(Config{
		Transport:  tr,
		DataPlanes: []string{"dp-0", "dp-1", "dp-2"},
		Versions:   router,
	})
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if _, err := lb.Invoke(ctx, &proto.InvokeRequest{Function: "api"}); err != nil {
			t.Fatal(err)
		}
	}
	// Every replica saw only resolved version names, each sticky to its
	// own home.
	perVersion := map[string]map[string]bool{}
	total := 0
	for addr, dp := range dps {
		dp.mu.Lock()
		for _, seen := range dp.seen {
			if seen != "api@v1" && seen != "api@v2" {
				t.Fatalf("replica %s saw unresolved name %q", addr, seen)
			}
			if perVersion[seen] == nil {
				perVersion[seen] = map[string]bool{}
			}
			perVersion[seen][addr] = true
			total++
		}
		dp.mu.Unlock()
	}
	if total != 200 {
		t.Fatalf("replicas saw %d invocations, want 200", total)
	}
	for v, homes := range perVersion {
		if len(homes) != 1 {
			t.Errorf("version %s spread across %d replicas, want a single home", v, len(homes))
		}
	}
	if len(perVersion) != 2 {
		t.Errorf("versions served: %v, want both api@v1 and api@v2", perVersion)
	}
}

// TestRendezvousMinimalChurn: removing one replica must re-home only the
// functions whose home was the removed replica; every other function
// keeps its home (the property the modulo ring lacked, where one
// membership change re-homed nearly everything).
func TestRendezvousMinimalChurn(t *testing.T) {
	lb := New(Config{
		Transport:  transport.NewInProc(),
		DataPlanes: []string{"dp-0", "dp-1", "dp-2", "dp-3"},
	})
	const fns = 400
	before := make(map[string]string, fns)
	onRemoved := 0
	for i := 0; i < fns; i++ {
		fn := fmt.Sprintf("churn-%d", i)
		before[fn] = lb.candidates(fn)[0]
		if before[fn] == "dp-3" {
			onRemoved++
		}
	}
	if onRemoved == 0 || onRemoved == fns {
		t.Fatalf("degenerate home distribution: %d/%d on dp-3", onRemoved, fns)
	}
	lb.SetDataPlanes([]string{"dp-0", "dp-1", "dp-2"})
	for fn, home := range before {
		got := lb.candidates(fn)[0]
		if home == "dp-3" {
			if got == "dp-3" {
				t.Fatalf("function %s still homed on removed replica", fn)
			}
			continue
		}
		if got != home {
			t.Fatalf("function %s re-homed %s → %s although its home survived", fn, home, got)
		}
	}
	// Adding the replica back restores the original assignment exactly.
	lb.SetDataPlanes([]string{"dp-0", "dp-1", "dp-2", "dp-3"})
	for fn, home := range before {
		if got := lb.candidates(fn)[0]; got != home {
			t.Fatalf("function %s not restored to %s after re-add (got %s)", fn, home, got)
		}
	}
}

// TestMembershipSyncFromControlPlane: Start polls cp.ListDataPlanes on
// the injected clock and applies membership changes, including dropping
// cooldown state with removed replicas.
func TestMembershipSyncFromControlPlane(t *testing.T) {
	tr := transport.NewInProc()
	vclk := clock.NewVirtual(time.Unix(9000, 0))

	var mu sync.Mutex
	live := []core.DataPlane{{ID: 1, IP: "dp-a", Port: 8000}, {ID: 2, IP: "dp-b", Port: 8000}}
	ln, err := tr.Listen("cp0", func(method string, payload []byte) ([]byte, error) {
		if method != proto.MethodListDataPlanes {
			return nil, fmt.Errorf("unexpected method %s", method)
		}
		mu.Lock()
		defer mu.Unlock()
		list := proto.DataPlaneList{DataPlanes: append([]core.DataPlane(nil), live...)}
		return list.Marshal(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	lb := New(Config{
		Transport:          tr,
		ControlPlanes:      []string{"cp0"},
		MembershipInterval: time.Second,
		Clock:              vclk,
	})
	if err := lb.Start(); err != nil {
		t.Fatal(err)
	}
	defer lb.Stop()
	// The first sync is synchronous in Start.
	if got := lb.Replicas(); len(got) != 2 || got[0] != "dp-a:8000" || got[1] != "dp-b:8000" {
		t.Fatalf("initial membership = %v", got)
	}

	// Membership shrinks at the control plane; the next poll applies it.
	mu.Lock()
	live = live[:1]
	mu.Unlock()
	// Wait for the loop to arm its poll timer before advancing the clock.
	armDeadline := time.Now().Add(2 * time.Second)
	for vclk.PendingTimers() == 0 && time.Now().Before(armDeadline) {
		time.Sleep(time.Millisecond)
	}
	vclk.Advance(time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := lb.Replicas(); len(got) == 1 && got[0] == "dp-a:8000" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never shrank: %v", lb.Replicas())
		}
		time.Sleep(time.Millisecond)
	}
	if lb.metrics.Counter("membership_changes").Value() < 1 {
		t.Errorf("membership change not counted")
	}
}

// TestShuttingDownReplicaFailsOver: a replica answering "shutting down"
// is mid-crash; the front end must fail over instead of surfacing the
// error, so a data plane kill mid-burst loses no accepted invocation.
func TestShuttingDownReplicaFailsOver(t *testing.T) {
	tr := transport.NewInProc()
	ln, err := tr.Listen("dp-dying", func(string, []byte) ([]byte, error) {
		return nil, fmt.Errorf("data plane: shutting down")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	newFakeDP(t, tr, "dp-alive")
	lb := New(Config{Transport: tr, DataPlanes: []string{"dp-dying", "dp-alive"}})
	var fn string
	for i := 0; ; i++ {
		fn = fmt.Sprintf("dying-%d", i)
		if lb.candidates(fn)[0] == "dp-dying" {
			break
		}
	}
	resp, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: fn})
	if err != nil {
		t.Fatalf("invoke across dying replica: %v", err)
	}
	if string(resp.Body) != "dp-alive" {
		t.Fatalf("served by %q, want the survivor", resp.Body)
	}
	if lb.metrics.Counter("dataplane_failovers").Value() == 0 {
		t.Errorf("shutdown failover not counted")
	}
}
