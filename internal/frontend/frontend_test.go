package frontend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// fakeDP serves dp.Invoke and records which functions it saw.
type fakeDP struct {
	mu    sync.Mutex
	seen  []string
	fail  bool
	addr  string
	tr    *transport.InProc
	ln    transport.Listener
	calls int
}

func newFakeDP(t *testing.T, tr *transport.InProc, addr string) *fakeDP {
	t.Helper()
	dp := &fakeDP{addr: addr, tr: tr}
	ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
		if method != proto.MethodInvoke {
			return nil, fmt.Errorf("unexpected method %s", method)
		}
		req, err := proto.UnmarshalInvokeRequest(payload)
		if err != nil {
			return nil, err
		}
		dp.mu.Lock()
		dp.seen = append(dp.seen, req.Function)
		dp.calls++
		fail := dp.fail
		dp.mu.Unlock()
		if fail {
			return nil, errors.New("boom")
		}
		resp := proto.InvokeResponse{Body: []byte(dp.addr)}
		return resp.Marshal(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.ln = ln
	t.Cleanup(func() { ln.Close() })
	return dp
}

func TestSteersByFunctionHash(t *testing.T) {
	tr := transport.NewInProc()
	dps := []*fakeDP{
		newFakeDP(t, tr, "dp0"),
		newFakeDP(t, tr, "dp1"),
		newFakeDP(t, tr, "dp2"),
	}
	lb := New(Config{Transport: tr, DataPlanes: []string{"dp0", "dp1", "dp2"}})
	ctx := context.Background()
	// All invocations of the same function must land on the same replica.
	for i := 0; i < 10; i++ {
		if _, err := lb.Invoke(ctx, &proto.InvokeRequest{Function: "sticky"}); err != nil {
			t.Fatal(err)
		}
	}
	hit := 0
	for _, dp := range dps {
		dp.mu.Lock()
		if dp.calls > 0 {
			hit++
			if dp.calls != 10 {
				t.Errorf("replica %s got %d/10 calls", dp.addr, dp.calls)
			}
		}
		dp.mu.Unlock()
	}
	if hit != 1 {
		t.Errorf("function spread across %d replicas, want 1", hit)
	}
}

func TestDifferentFunctionsSpread(t *testing.T) {
	tr := transport.NewInProc()
	dps := []*fakeDP{
		newFakeDP(t, tr, "dp0"),
		newFakeDP(t, tr, "dp1"),
		newFakeDP(t, tr, "dp2"),
	}
	lb := New(Config{Transport: tr, DataPlanes: []string{"dp0", "dp1", "dp2"}})
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		fn := fmt.Sprintf("fn-%d", i)
		if _, err := lb.Invoke(ctx, &proto.InvokeRequest{Function: fn}); err != nil {
			t.Fatal(err)
		}
	}
	for _, dp := range dps {
		dp.mu.Lock()
		if dp.calls == 0 {
			t.Errorf("replica %s received no traffic across 60 functions", dp.addr)
		}
		dp.mu.Unlock()
	}
}

func TestFailsOverOnUnreachableReplica(t *testing.T) {
	tr := transport.NewInProc()
	newFakeDP(t, tr, "dp-alive")
	lb := New(Config{
		Transport:       tr,
		DataPlanes:      []string{"dp-dead", "dp-alive"},
		FailureCooldown: time.Minute,
	})
	ctx := context.Background()
	// Find a function that hashes to the dead replica first.
	for i := 0; i < 100; i++ {
		fn := fmt.Sprintf("probe-%d", i)
		resp, err := lb.Invoke(ctx, &proto.InvokeRequest{Function: fn})
		if err != nil {
			t.Fatalf("invoke %s: %v", fn, err)
		}
		if string(resp.Body) != "dp-alive" {
			t.Fatalf("response from unexpected replica %q", resp.Body)
		}
	}
	if lb.metrics.Counter("dataplane_failovers").Value() == 0 {
		t.Errorf("no failovers recorded although one replica is dead")
	}
}

func TestApplicationErrorsAreNotFailovers(t *testing.T) {
	tr := transport.NewInProc()
	dp := newFakeDP(t, tr, "dp0")
	dp.fail = true
	lb := New(Config{Transport: tr, DataPlanes: []string{"dp0"}})
	_, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: "f"})
	if err == nil {
		t.Fatalf("expected application error")
	}
	if errors.Is(err, ErrNoDataPlane) {
		t.Errorf("application error misreported as no-data-plane: %v", err)
	}
}

func TestNoDataPlanes(t *testing.T) {
	lb := New(Config{Transport: transport.NewInProc()})
	if _, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: "f"}); !errors.Is(err, ErrNoDataPlane) {
		t.Errorf("err = %v, want ErrNoDataPlane", err)
	}
}

func TestAllReplicasDown(t *testing.T) {
	tr := transport.NewInProc()
	lb := New(Config{Transport: tr, DataPlanes: []string{"d0", "d1"}})
	if _, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: "f"}); !errors.Is(err, ErrNoDataPlane) {
		t.Errorf("err = %v, want ErrNoDataPlane", err)
	}
}

func TestSetDataPlanes(t *testing.T) {
	tr := transport.NewInProc()
	newFakeDP(t, tr, "late")
	lb := New(Config{Transport: tr, DataPlanes: []string{"gone"}})
	lb.SetDataPlanes([]string{"late"})
	if _, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: "f"}); err != nil {
		t.Errorf("invoke after SetDataPlanes: %v", err)
	}
}

func TestCooldownExpires(t *testing.T) {
	tr := transport.NewInProc()
	lb := New(Config{
		Transport:       tr,
		DataPlanes:      []string{"flaky"},
		FailureCooldown: 10 * time.Millisecond,
	})
	// First call fails and puts the replica in cooldown.
	lb.Invoke(context.Background(), &proto.InvokeRequest{Function: "f"})
	// Replica comes back.
	newFakeDP(t, tr, "flaky")
	time.Sleep(20 * time.Millisecond)
	if _, err := lb.Invoke(context.Background(), &proto.InvokeRequest{Function: "f"}); err != nil {
		t.Errorf("invoke after cooldown: %v", err)
	}
}
