// Package frontend implements Dirigent's front-end load balancer (the
// HAProxy + keepalived tier in the paper's deployment, §5.1). It steers
// invocations to data plane replicas by a hash of the function ID, which
// "ensures all invocations of a particular function end up on the same
// data plane component and allows centralized tracking of the number of
// in-flight requests for each function" (paper §4). Failed data planes are
// taken out of rotation for a cooldown and traffic re-steers to the next
// replica on the ring.
package frontend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
	"dirigent/internal/versioning"
)

// Config parameterizes the front-end load balancer.
type Config struct {
	// Transport carries invocations to data planes.
	Transport transport.Transport
	// DataPlanes lists data plane replica addresses.
	DataPlanes []string
	// FailureCooldown is how long a data plane stays out of rotation
	// after a connection failure before being retried.
	FailureCooldown time.Duration
	// RequestTimeout bounds one invocation end to end.
	RequestTimeout time.Duration
	// Versions, when non-nil, resolves logical function names to
	// versioned targets before steering (canary / blue-green splits; see
	// internal/versioning and paper §4, Limitations).
	Versions *versioning.Router
	// Metrics receives front-end telemetry.
	Metrics *telemetry.Registry
}

// LB is the front-end load balancer.
type LB struct {
	cfg     Config
	metrics *telemetry.Registry

	mu       sync.Mutex
	replicas []string
	downTil  map[string]time.Time
	seq      atomic.Uint64
}

// ErrNoDataPlane reports that no data plane replica is available.
var ErrNoDataPlane = errors.New("frontend: no data plane available")

// New returns a front-end LB over the given data plane replicas.
func New(cfg Config) *LB {
	if cfg.FailureCooldown == 0 {
		cfg.FailureCooldown = 500 * time.Millisecond
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 90 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	return &LB{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		replicas: append([]string(nil), cfg.DataPlanes...),
		downTil:  make(map[string]time.Time),
	}
}

// SetDataPlanes replaces the replica set (e.g. after scaling data planes).
func (lb *LB) SetDataPlanes(addrs []string) {
	lb.mu.Lock()
	lb.replicas = append([]string(nil), addrs...)
	lb.mu.Unlock()
}

// candidates returns the replica order to try for a function: the hashed
// home replica first, then the rest of the ring, skipping replicas in
// failure cooldown (which are still returned last as a final resort).
func (lb *LB) candidates(function string) []string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	n := len(lb.replicas)
	if n == 0 {
		return nil
	}
	start := int(core.FunctionHash(function)) % n
	now := time.Now()
	var healthy, cooling []string
	for i := 0; i < n; i++ {
		addr := lb.replicas[(start+i)%n]
		if t, ok := lb.downTil[addr]; ok && now.Before(t) {
			cooling = append(cooling, addr)
			continue
		}
		healthy = append(healthy, addr)
	}
	return append(healthy, cooling...)
}

func (lb *LB) markDown(addr string) {
	lb.mu.Lock()
	lb.downTil[addr] = time.Now().Add(lb.cfg.FailureCooldown)
	lb.mu.Unlock()
	lb.metrics.Counter("dataplane_failovers").Inc()
}

// Invoke sends one invocation through the data plane tier and returns the
// decoded response. With a version router configured, the logical function
// name resolves to a versioned target first, so splits apply uniformly to
// every data plane.
func (lb *LB) Invoke(ctx context.Context, req *proto.InvokeRequest) (*proto.InvokeResponse, error) {
	if lb.cfg.Versions != nil {
		resolved := lb.cfg.Versions.Resolve(req.Function, lb.seq.Add(1))
		if resolved != req.Function {
			r := *req
			r.Function = resolved
			req = &r
		}
	}
	cands := lb.candidates(req.Function)
	if len(cands) == 0 {
		return nil, ErrNoDataPlane
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lb.cfg.RequestTimeout)
		defer cancel()
	}
	payload := req.Marshal()
	var lastErr error
	for _, addr := range cands {
		respB, err := lb.cfg.Transport.Call(ctx, addr, proto.MethodInvoke, payload)
		if err == nil {
			lb.metrics.Counter("invocations").Inc()
			return proto.UnmarshalInvokeResponse(respB)
		}
		lastErr = err
		if errors.Is(err, transport.ErrUnreachable) {
			// Connection-level failure: fail over to the next replica.
			lb.markDown(addr)
			continue
		}
		// Application-level error from the data plane: report it.
		lb.metrics.Counter("invocation_errors").Inc()
		return nil, err
	}
	lb.metrics.Counter("invocation_errors").Inc()
	return nil, fmt.Errorf("%w: %v", ErrNoDataPlane, lastErr)
}
