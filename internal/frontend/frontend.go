// Package frontend implements Dirigent's front-end load balancer (the
// HAProxy + keepalived tier in the paper's deployment, §5.1). It steers
// invocations to data plane replicas by a hash of the function ID, which
// "ensures all invocations of a particular function end up on the same
// data plane component and allows centralized tracking of the number of
// in-flight requests for each function" (paper §4). Failed data planes are
// taken out of rotation for a cooldown and traffic re-steers to the next
// replica on the ring.
//
// Replica membership is dynamic: with control plane addresses configured,
// Start runs a membership loop that polls the control plane's live data
// plane set (cp.ListDataPlanes, itself maintained by data plane
// heartbeats) and applies it through SetDataPlanes, so replicas joining,
// crashing, and reviving flow through to steering without restarting the
// front end. Homes are assigned by rendezvous (highest-random-weight)
// hashing, so a membership change re-steers only the functions homed on
// the replicas that actually changed — never the whole hash space.
package frontend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
	"dirigent/internal/versioning"
)

// Config parameterizes the front-end load balancer.
type Config struct {
	// Transport carries invocations to data planes.
	Transport transport.Transport
	// DataPlanes lists the initial data plane replica addresses. With
	// ControlPlanes configured this is only the seed membership; the
	// membership loop replaces it as soon as it syncs.
	DataPlanes []string
	// ControlPlanes lists control plane replica addresses. When
	// non-empty, Start runs a membership loop that keeps the replica set
	// in sync with the control plane's live data plane set.
	ControlPlanes []string
	// MembershipInterval is the membership loop's poll period
	// (default 500 ms).
	MembershipInterval time.Duration
	// FailureCooldown is how long a data plane stays out of rotation
	// after a connection failure before being retried.
	FailureCooldown time.Duration
	// RequestTimeout bounds one invocation end to end.
	RequestTimeout time.Duration
	// Clock abstracts time for cooldowns and the membership loop.
	Clock clock.Clock
	// Versions, when non-nil, resolves logical function names to
	// versioned targets before steering (canary / blue-green splits; see
	// internal/versioning and paper §4, Limitations).
	Versions *versioning.Router
	// Metrics receives front-end telemetry.
	Metrics *telemetry.Registry
}

// replica is one data plane in the rotation, with its address hash
// precomputed for rendezvous steering.
type replica struct {
	addr string
	hash uint64
}

// LB is the front-end load balancer.
type LB struct {
	cfg     Config
	clk     clock.Clock
	metrics *telemetry.Registry
	cp      *cpclient.Client // nil without ControlPlanes

	mu       sync.Mutex
	replicas []replica
	downTil  map[string]time.Time
	seq      atomic.Uint64

	stopCh  chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	stopped atomic.Bool
}

// ErrNoDataPlane reports that no data plane replica is available.
var ErrNoDataPlane = errors.New("frontend: no data plane available")

// New returns a front-end LB over the given data plane replicas.
func New(cfg Config) *LB {
	if cfg.FailureCooldown == 0 {
		cfg.FailureCooldown = 500 * time.Millisecond
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 90 * time.Second
	}
	if cfg.MembershipInterval == 0 {
		cfg.MembershipInterval = 500 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	lb := &LB{
		cfg:     cfg,
		clk:     cfg.Clock,
		metrics: cfg.Metrics,
		downTil: make(map[string]time.Time),
		stopCh:  make(chan struct{}),
	}
	lb.replicas = makeReplicas(cfg.DataPlanes)
	if len(cfg.ControlPlanes) > 0 {
		lb.cp = cpclient.New(cfg.Transport, cfg.ControlPlanes)
	}
	return lb
}

// Start launches the membership loop (a no-op without ControlPlanes —
// the replica set then stays whatever SetDataPlanes makes it). The first
// sync runs synchronously so a freshly started front end steers by live
// membership, not the static seed list, from its first invocation.
func (lb *LB) Start() error {
	if lb.cp == nil || !lb.started.CompareAndSwap(false, true) {
		return nil
	}
	lb.syncMembership()
	lb.wg.Add(1)
	go lb.membershipLoop()
	return nil
}

// Stop terminates the membership loop. Invocations keep working against
// the last synced replica set.
func (lb *LB) Stop() {
	if !lb.started.Load() || !lb.stopped.CompareAndSwap(false, true) {
		return
	}
	close(lb.stopCh)
	lb.wg.Wait()
}

func (lb *LB) membershipLoop() {
	defer lb.wg.Done()
	for {
		select {
		case <-lb.stopCh:
			return
		case <-lb.clk.After(lb.cfg.MembershipInterval):
			lb.syncMembership()
		}
	}
}

// syncMembership pulls the live data plane set from the control plane
// and applies it. Best effort: with no leader reachable the front end
// keeps steering over the last known set, which is exactly the
// availability-over-consistency behavior the paper's DP tier has during
// control plane failover (§3.4.2).
func (lb *LB) syncMembership() {
	ctx, cancel := context.WithTimeout(context.Background(), lb.cfg.MembershipInterval*4)
	defer cancel()
	// A membership poll is read-only, so any CP replica may answer it
	// from its applied state — with follower reads enabled the leader
	// never sees this traffic.
	respB, err := lb.cp.CallRead(ctx, proto.MethodListDataPlanes, nil)
	if err != nil {
		lb.metrics.Counter("membership_sync_errors").Inc()
		return
	}
	list, err := proto.UnmarshalDataPlaneList(respB)
	if err != nil {
		lb.metrics.Counter("membership_sync_errors").Inc()
		return
	}
	addrs := make([]string, 0, len(list.DataPlanes))
	for i := range list.DataPlanes {
		p := &list.DataPlanes[i]
		addrs = append(addrs, fmt.Sprintf("%s:%d", p.IP, p.Port))
	}
	// Never shrink a working set to nothing: a control plane that
	// transiently knows zero live replicas (fresh DB, sweep glitch, all
	// heartbeats missed at once) must not black the front end out while
	// the replicas themselves still serve. If they are truly gone, every
	// invoke fails over and the set heals on the next sync anyway.
	if len(addrs) == 0 && len(lb.Replicas()) > 0 {
		lb.metrics.Counter("membership_sync_empty").Inc()
		return
	}
	if lb.SetDataPlanes(addrs) {
		lb.metrics.Counter("membership_changes").Inc()
	}
	lb.metrics.Gauge("membership_size").Set(int64(len(addrs)))
}

// SetDataPlanes replaces the replica set (membership sync, or manual
// configuration without a control plane), reporting whether it changed.
// Cooldown state for replicas that left the set is dropped with them: a
// stale downTil entry would otherwise leak and instantly blacklist the
// address if a future replica reuses it.
func (lb *LB) SetDataPlanes(addrs []string) (changed bool) {
	next := makeReplicas(addrs)
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if len(next) != len(lb.replicas) {
		changed = true
	} else {
		for i := range next {
			if next[i].addr != lb.replicas[i].addr {
				changed = true
				break
			}
		}
	}
	if !changed {
		return false
	}
	lb.replicas = next
	keep := make(map[string]bool, len(next))
	for _, r := range next {
		keep[r.addr] = true
	}
	for addr := range lb.downTil {
		if !keep[addr] {
			delete(lb.downTil, addr)
		}
	}
	return true
}

// Metrics returns the front end's telemetry registry (failovers,
// membership syncs/changes, invocation counters).
func (lb *LB) Metrics() *telemetry.Registry { return lb.metrics }

// Replicas returns the current replica addresses (sorted), for tests and
// harnesses observing membership sync.
func (lb *LB) Replicas() []string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	out := make([]string, len(lb.replicas))
	for i, r := range lb.replicas {
		out[i] = r.addr
	}
	return out
}

// makeReplicas builds the sorted, hash-annotated replica list.
func makeReplicas(addrs []string) []replica {
	out := make([]replica, 0, len(addrs))
	for _, addr := range addrs {
		out = append(out, replica{addr: addr, hash: addrHash(addr)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// addrHash is FNV-1a folded through splitmix64, giving each replica an
// independent 64-bit identity for rendezvous weighting.
func addrHash(addr string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	return core.Splitmix64(h)
}

// rendezvousWeight scores one (function, replica) pair. The function's
// home is the replica with the highest weight; the rest of the candidate
// order follows decreasing weight. Unlike the modulo ring, removing a
// replica re-homes only the functions that ranked it first (1/n of the
// space on average), and adding one re-homes only the functions that now
// rank it first — minimal churn on membership change.
func rendezvousWeight(fnHash uint64, r replica) uint64 {
	return core.Splitmix64(fnHash ^ r.hash)
}

// candidates returns the replica order to try for a function: every
// replica by decreasing rendezvous weight (home first), with replicas in
// failure cooldown moved to the back as a final resort (in the same
// weight order). A replica whose cooldown has expired — the boundary
// instant included — rejoins the healthy order immediately.
//
// The mutex covers only the replica-slice load and the cooldown check:
// the slice and its elements are immutable once published (SetDataPlanes
// replaces the whole slice), so the per-invoke scoring and sort run
// outside the lock and invocations don't serialize on it.
func (lb *LB) candidates(function string) []string {
	lb.mu.Lock()
	reps := lb.replicas
	var cooling map[string]bool
	if len(lb.downTil) > 0 {
		now := lb.clk.Now()
		for addr, t := range lb.downTil {
			if now.Before(t) {
				if cooling == nil {
					cooling = make(map[string]bool, len(lb.downTil))
				}
				cooling[addr] = true
			}
		}
	}
	lb.mu.Unlock()
	n := len(reps)
	if n == 0 {
		return nil
	}
	fnHash := core.Splitmix64(uint64(core.FunctionHash(function)))
	type scored struct {
		addr   string
		weight uint64
	}
	order := make([]scored, n)
	for i, r := range reps {
		order[i] = scored{addr: r.addr, weight: rendezvousWeight(fnHash, r)}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].weight > order[j].weight })
	healthy := make([]string, 0, n)
	var cool []string
	for _, s := range order {
		if cooling[s.addr] {
			cool = append(cool, s.addr)
			continue
		}
		healthy = append(healthy, s.addr)
	}
	return append(healthy, cool...)
}

func (lb *LB) markDown(addr string) {
	lb.mu.Lock()
	lb.downTil[addr] = lb.clk.Now().Add(lb.cfg.FailureCooldown)
	lb.mu.Unlock()
	lb.metrics.Counter("dataplane_failovers").Inc()
}

// dpShuttingDownMsg is the exact error text the data plane uses for work
// rejected or failed because the replica is stopping (see
// dataplane.Stop and the invoke path's stopCh case). Matched verbatim so
// an application error that merely mentions shutting down cannot be
// mistaken for replica death.
const dpShuttingDownMsg = "data plane: shutting down"

// isFailoverErr reports whether an invocation failure means the replica
// itself is gone (fail over to the next candidate) rather than the
// application failing (report to the client). Beyond connection-level
// unreachability, a replica that answers "shutting down" is mid-crash:
// its queued work is being failed wholesale, and the request belongs on
// a survivor.
func isFailoverErr(err error) bool {
	if errors.Is(err, transport.ErrUnreachable) {
		return true
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		// Exact match: a nested application error that merely embeds the
		// text (a function whose own downstream call failed this way,
		// say) must not mark the healthy replica that relayed it down.
		return re.Msg == dpShuttingDownMsg
	}
	return false
}

// Invoke sends one invocation through the data plane tier and returns the
// decoded response. With a version router configured, the logical function
// name resolves to a versioned target first, so splits apply uniformly to
// every data plane.
func (lb *LB) Invoke(ctx context.Context, req *proto.InvokeRequest) (*proto.InvokeResponse, error) {
	if lb.cfg.Versions != nil {
		resolved := lb.cfg.Versions.Resolve(req.Function, lb.seq.Add(1))
		if resolved != req.Function {
			r := *req
			r.Function = resolved
			req = &r
		}
	}
	cands := lb.candidates(req.Function)
	if len(cands) == 0 {
		return nil, ErrNoDataPlane
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lb.cfg.RequestTimeout)
		defer cancel()
	}
	payload := req.Marshal()
	var lastErr error
	for _, addr := range cands {
		respB, err := lb.cfg.Transport.Call(ctx, addr, proto.MethodInvoke, payload)
		if err == nil {
			lb.metrics.Counter("invocations").Inc()
			return proto.UnmarshalInvokeResponse(respB)
		}
		lastErr = err
		if isFailoverErr(err) {
			// Replica-level failure: fail over to the next candidate.
			lb.markDown(addr)
			continue
		}
		// Application-level error from the data plane: report it.
		lb.metrics.Counter("invocation_errors").Inc()
		return nil, err
	}
	lb.metrics.Counter("invocation_errors").Inc()
	return nil, fmt.Errorf("%w: %v", ErrNoDataPlane, lastErr)
}
