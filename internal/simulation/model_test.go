package simulation

import (
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/trace"
)

func hello(name string) *trace.FunctionSpec {
	return &trace.FunctionSpec{
		Name:       name,
		ExecMedian: 10 * time.Millisecond,
		ExecSigma:  0.05,
		MemoryMB:   128,
	}
}

func TestDirigentColdThenWarm(t *testing.T) {
	eng := NewEngine()
	m := NewDirigent(eng, DirigentConfig{Runtime: "firecracker", Seed: 1})
	fn := hello("f")
	m.Register(fn)
	var results []Result
	m.Invoke(fn, 10*time.Millisecond, func(r Result) { results = append(results, r) })
	eng.Run(time.Minute)
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	if !results[0].ColdStart {
		t.Errorf("first invocation should be cold")
	}
	if results[0].Scheduling < 10*time.Millisecond {
		t.Errorf("cold scheduling %v implausibly low", results[0].Scheduling)
	}
	// Second invocation while the sandbox is warm.
	m.Invoke(fn, 10*time.Millisecond, func(r Result) { results = append(results, r) })
	eng.Run(eng.Now() + time.Minute)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[1].ColdStart {
		t.Errorf("second invocation should be warm")
	}
	if results[1].Scheduling > 20*time.Millisecond {
		t.Errorf("warm scheduling %v implausibly high", results[1].Scheduling)
	}
	if m.SandboxCreations() != 1 {
		t.Errorf("creations = %d, want 1", m.SandboxCreations())
	}
}

func TestDirigentFirecrackerFasterThanContainerd(t *testing.T) {
	run := func(rt string) float64 {
		eng := NewEngine()
		m := NewDirigent(eng, DirigentConfig{Runtime: rt, Seed: 1})
		col := RunColdRateSweep(eng, m, 20, 5*time.Second)
		return col.E2E().Percentile(50)
	}
	fc := run("firecracker")
	ct := run("containerd")
	if fc >= ct {
		t.Errorf("firecracker p50 %.1fms should beat containerd %.1fms", fc, ct)
	}
}

func TestDirigentSaturationOrdering(t *testing.T) {
	// Well below saturation the p99 stays low; far above it explodes.
	run := func(rate float64) float64 {
		eng := NewEngine()
		m := NewDirigent(eng, DirigentConfig{Runtime: "firecracker", Seed: 1})
		col := RunColdRateSweep(eng, m, rate, 4*time.Second)
		return col.E2E().Percentile(99)
	}
	low := run(500)
	high := run(4000)
	if low > 500 {
		t.Errorf("p99 at 500/s = %.1fms, want < 500ms", low)
	}
	if high < 5*low {
		t.Errorf("p99 at 4000/s = %.1fms did not blow up vs %.1fms", high, low)
	}
}

func TestDirigentPersistAblationHurts(t *testing.T) {
	run := func(persist bool) float64 {
		eng := NewEngine()
		m := NewDirigent(eng, DirigentConfig{Runtime: "firecracker", PersistSandboxState: persist, Seed: 1})
		col := RunColdRateSweep(eng, m, 1500, 4*time.Second)
		return col.E2E().Percentile(99)
	}
	base := run(false)
	persist := run(true)
	if persist < 2*base {
		t.Errorf("persist-all p99 %.1fms should be much worse than %.1fms at 1500/s", persist, base)
	}
}

func TestDirigentScaleDownAfterIdle(t *testing.T) {
	eng := NewEngine()
	sc := testScaleConfig()
	m := NewDirigent(eng, DirigentConfig{Runtime: "firecracker", Seed: 1, ScaleDefaults: &sc})
	fn := hello("f")
	m.Register(fn)
	m.Invoke(fn, 10*time.Millisecond, func(Result) {})
	eng.Run(10 * time.Minute)
	if m.Teardowns() == 0 {
		t.Errorf("idle sandbox never torn down")
	}
}

func TestKnativeSlowerThanDirigentCold(t *testing.T) {
	engK := NewEngine()
	kn := NewKnative(engK, KnativeConfig{Seed: 1})
	colK := RunColdBurst(engK, kn, 10)

	engD := NewEngine()
	dg := NewDirigent(engD, DirigentConfig{Runtime: "containerd", Seed: 1})
	colD := RunColdBurst(engD, dg, 10)

	if colK.E2E().Percentile(50) < 2*colD.E2E().Percentile(50) {
		t.Errorf("knative p50 %.1fms should be far above dirigent %.1fms",
			colK.E2E().Percentile(50), colD.E2E().Percentile(50))
	}
}

func TestKnativeBurstGrowsControlPlaneShare(t *testing.T) {
	run := func(burst int) time.Duration {
		eng := NewEngine()
		m := NewKnative(eng, KnativeConfig{Seed: 1})
		RunColdBurst(eng, m, burst)
		bds := m.Breakdowns()
		if len(bds) == 0 {
			t.Fatalf("no breakdowns recorded")
		}
		var sum time.Duration
		for _, b := range bds {
			sum += b.ControlPlane
		}
		return sum / time.Duration(len(bds))
	}
	small := run(1)
	large := run(100)
	if large < 10*small {
		t.Errorf("control-plane share at burst 100 (%v) should dwarf burst 1 (%v)", large, small)
	}
}

func TestKnativeK3sOnlyMarginallyBetter(t *testing.T) {
	run := func(fused bool) float64 {
		eng := NewEngine()
		m := NewKnative(eng, KnativeConfig{Fused: fused, Seed: 1})
		col := RunColdRateSweep(eng, m, 5, 5*time.Second)
		return col.E2E().Percentile(50)
	}
	base := run(false)
	fused := run(true)
	if fused >= base {
		t.Errorf("k3s-fused p50 %.1fms should be slightly better than %.1fms", fused, base)
	}
	if fused < base/2 {
		t.Errorf("k3s-fused p50 %.1fms improved too much vs %.1fms — the paper found fusing is NOT the fix", fused, base)
	}
}

func TestOpenWhiskWarmLatencyAboveKnative(t *testing.T) {
	run := func(ow bool) float64 {
		eng := NewEngine()
		m := NewKnative(eng, KnativeConfig{OpenWhisk: ow, Seed: 1})
		col := RunWarmRateSweep(eng, m, 100, 3*time.Second)
		return col.E2E().Percentile(50)
	}
	kn := run(false)
	ow := run(true)
	if ow <= kn {
		t.Errorf("openwhisk warm p50 %.2fms should exceed knative %.2fms (Kafka+CouchDB)", ow, kn)
	}
}

func TestKnativeRegistrationCostGrows(t *testing.T) {
	eng := NewEngine()
	m := NewKnative(eng, KnativeConfig{Seed: 1})
	if m.RegistrationCost(0) < 500*time.Millisecond {
		t.Errorf("empty-cluster registration should be ~770ms")
	}
	if m.RegistrationCost(999) <= m.RegistrationCost(0) {
		t.Errorf("registration cost should grow with cluster content")
	}
	var total time.Duration
	for i := 0; i < 1000; i++ {
		total += m.RegistrationCost(i)
	}
	if total < 10*time.Minute {
		t.Errorf("registering 1000 functions should take ~18 minutes, got %v", total)
	}
}

func TestLambdaColdLatencyGrowsWithConcurrency(t *testing.T) {
	run := func(burst int) float64 {
		eng := NewEngine()
		m := NewLambda(eng, LambdaConfig{Seed: 2})
		col := RunColdBurst(eng, m, burst)
		return col.E2E().Percentile(50)
	}
	small := run(1)
	large := run(1600)
	if large < 1.5*small {
		t.Errorf("lambda p50 at burst 1600 (%.1fms) should far exceed burst 1 (%.1fms)", large, small)
	}
}

func TestLambdaKeepAliveReapsIdle(t *testing.T) {
	eng := NewEngine()
	m := NewLambda(eng, LambdaConfig{Seed: 1, KeepAlive: time.Minute})
	fn := hello("f")
	m.Register(fn)
	var cold []bool
	m.Invoke(fn, time.Millisecond, func(r Result) { cold = append(cold, r.ColdStart) })
	eng.Run(time.Minute) // complete first invocation
	// Within keep-alive: warm.
	eng.At(eng.Now(), func() {
		m.Invoke(fn, time.Millisecond, func(r Result) { cold = append(cold, r.ColdStart) })
	})
	eng.Run(eng.Now() + 10*time.Second)
	// Far beyond keep-alive: cold again.
	eng.At(eng.Now()+5*time.Minute, func() {
		m.Invoke(fn, time.Millisecond, func(r Result) { cold = append(cold, r.ColdStart) })
	})
	eng.Run(eng.Now() + 10*time.Minute)
	want := []bool{true, false, true}
	if len(cold) != 3 {
		t.Fatalf("got %d results", len(cold))
	}
	for i := range want {
		if cold[i] != want[i] {
			t.Errorf("invocation %d cold=%v, want %v", i, cold[i], want[i])
		}
	}
}

func TestModelsHandleUnknownFunction(t *testing.T) {
	eng := NewEngine()
	models := []Model{
		NewDirigent(eng, DirigentConfig{Seed: 1}),
		NewKnative(eng, KnativeConfig{Seed: 1}),
		NewLambda(eng, LambdaConfig{Seed: 1}),
	}
	for _, m := range models {
		var failed bool
		m.Invoke(hello("never-registered"), time.Millisecond, func(r Result) { failed = r.Failed })
		if !failed {
			t.Errorf("%s accepted an unregistered function", m.Name())
		}
	}
}

func TestModelNames(t *testing.T) {
	eng := NewEngine()
	cases := map[string]Model{
		"dirigent-containerd":              NewDirigent(eng, DirigentConfig{Seed: 1}),
		"dirigent-firecracker":             NewDirigent(eng, DirigentConfig{Runtime: "firecracker", Seed: 1}),
		"dirigent-firecracker-persist-all": NewDirigent(eng, DirigentConfig{Runtime: "firecracker", PersistSandboxState: true, Seed: 1}),
		"knative":                          NewKnative(eng, KnativeConfig{Seed: 1}),
		"knative-k3s":                      NewKnative(eng, KnativeConfig{Fused: true, Seed: 1}),
		"openwhisk":                        NewKnative(eng, KnativeConfig{OpenWhisk: true, Seed: 1}),
		"aws-lambda":                       NewLambda(eng, LambdaConfig{Seed: 1}),
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Errorf("Name = %q, want %q", m.Name(), want)
		}
	}
}

func TestResultSlowdownFloor(t *testing.T) {
	r := Result{E2E: 10 * time.Millisecond, Exec: 0}
	if s := r.Slowdown(); s != 10 {
		t.Errorf("Slowdown with zero exec = %v, want 10 (1ms floor)", s)
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := &Collector{}
	c.Done(Result{Function: "a", E2E: 10 * time.Millisecond, Exec: 5 * time.Millisecond, Scheduling: 5 * time.Millisecond})
	c.Done(Result{Function: "a", E2E: 20 * time.Millisecond, Exec: 5 * time.Millisecond, Scheduling: 15 * time.Millisecond})
	c.Done(Result{Function: "b", Failed: true})
	if c.Completed() != 2 {
		t.Errorf("Completed = %d", c.Completed())
	}
	if fr := c.FailureRate(); fr < 0.3 || fr > 0.4 {
		t.Errorf("FailureRate = %v", fr)
	}
	if c.E2E().Count() != 2 || c.Scheduling().Count() != 2 {
		t.Errorf("histograms include failed results")
	}
	if c.PerFunctionSlowdown().Count() != 1 {
		t.Errorf("per-function slowdown should have 1 entry (only function a completed)")
	}
	if c.PerFunctionScheduling().Percentile(50) != 10 {
		t.Errorf("per-function mean scheduling = %v, want 10ms", c.PerFunctionScheduling().Percentile(50))
	}
}

func testScaleConfig() core.ScalingConfig {
	sc := core.DefaultScalingConfig()
	sc.StableWindow = 20 * time.Second
	sc.ScaleToZeroGrace = 10 * time.Second
	return sc
}
