package simulation

import (
	"testing"
	"time"

	"dirigent/internal/trace"
)

// runBurstModel drives a 256-invocation cold burst over 8 workers and
// returns (sandbox creations, p99 scheduling latency in ms).
func runBurstModel(seed int64, batching bool) (int, float64) {
	eng := NewEngine()
	m := NewDirigent(eng, DirigentConfig{
		Workers:        8,
		Runtime:        "containerd",
		Seed:           seed,
		CreateBatching: batching,
	})
	col := RunColdBurst(eng, m, 256)
	return m.SandboxCreations(), col.Scheduling().Percentile(99)
}

// TestDirigentSimulationDeterminism is the conformance check for the
// deterministic-simulation engine: two runs with the same seed must
// reproduce identical cold-start counts and identical p99 scheduling
// latency, bit for bit. This is what makes simulated ablations (batched
// vs per-sandbox) attributable to the config rather than to run noise —
// the dirigent model iterates functions in registration order instead of
// Go map order precisely so this holds.
func TestDirigentSimulationDeterminism(t *testing.T) {
	for _, batching := range []bool{false, true} {
		c1, p991 := runBurstModel(42, batching)
		c2, p992 := runBurstModel(42, batching)
		if c1 != c2 {
			t.Errorf("batching=%v: creations %d vs %d across same-seed runs", batching, c1, c2)
		}
		if p991 != p992 {
			t.Errorf("batching=%v: p99 scheduling %.6f vs %.6f ms across same-seed runs", batching, p991, p992)
		}
		if c1 == 0 || p991 == 0 {
			t.Errorf("batching=%v: degenerate run (creations=%d p99=%.3f)", batching, c1, p991)
		}
	}
}

// TestDirigentSimulationDeterminismUnderChurn repeats the check on a
// trace-driven workload (many functions, interleaved reconcile sweeps),
// the regime where map-iteration nondeterminism used to leak into the
// shared latency RNG.
func TestDirigentSimulationDeterminismUnderChurn(t *testing.T) {
	run := func() (int, float64) {
		eng := NewEngine()
		m := NewDirigent(eng, DirigentConfig{Workers: 8, Runtime: "containerd", Seed: 7})
		tr := trace.NewAzureLike(trace.Config{Functions: 40, Duration: 30 * time.Second, Seed: 7})
		col := ReplayTrace(eng, m, tr, 0)
		return m.SandboxCreations(), col.Scheduling().Percentile(99)
	}
	c1, p991 := run()
	c2, p992 := run()
	if c1 != c2 || p991 != p992 {
		t.Errorf("same-seed trace replay diverged: creations %d vs %d, p99 %.6f vs %.6f",
			c1, c2, p991, p992)
	}
}

// TestDirigentBatchingImprovesModeledP99 asserts the modeled ablation:
// the batched cold-start pipeline must strictly improve p99 scheduling
// latency over the per-sandbox baseline on the same seed (amortized
// per-creation control plane cost drains the burst queue faster), while
// creating exactly as many sandboxes.
func TestDirigentBatchingImprovesModeledP99(t *testing.T) {
	cBase, p99Base := runBurstModel(42, false)
	cBatch, p99Batch := runBurstModel(42, true)
	if cBase != cBatch {
		t.Errorf("batching changed creation count: %d vs %d", cBase, cBatch)
	}
	if p99Batch >= p99Base {
		t.Errorf("batched p99 = %.3f ms, want strictly below baseline %.3f ms", p99Batch, p99Base)
	}
}
