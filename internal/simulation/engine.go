// Package simulation provides a discrete-event simulator for FaaS cluster
// managers. The live in-process cluster (internal/cluster) executes real
// goroutines in real time and is ideal for integration and fault-tolerance
// testing, but the paper's trace experiments cover 30 simulated minutes on
// up to 5000 worker nodes — far beyond wall-clock testing. This package
// runs the same policy code (internal/autoscaler, internal/placement,
// internal/loadbalancer) on a virtual clock, with each cluster manager
// modeled as a composition of queueing stations whose service times are
// calibrated to the paper's measurements:
//
//   - Dirigent: a fast monolithic control plane (no persistence on the
//     cold-start path) in front of per-node sandbox runtimes limited by
//     kernel-lock contention (containerd) or snapshot-restore latency
//     (Firecracker).
//   - Knative/K8s: an API-server station performing per-update 17 KB
//     serialization and etcd persistence for a chain of controllers, plus
//     sequential sidecar creation and readiness probes on workers.
//   - OpenWhisk: the K8s substrate plus Kafka/CouchDB hops on the warm
//     path.
//   - AWS Lambda: an empirical end-to-end latency model fit to the paper's
//     Figure 2.
package simulation

import (
	"container/heap"
	"time"
)

// Engine is a single-threaded discrete-event scheduler. Time is a
// time.Duration offset from the simulation start. Engines are not safe for
// concurrent use; all model callbacks run on the caller's goroutine inside
// Run.
type Engine struct {
	now   time.Duration
	queue eventHeap
	seq   uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at == h[j].at {
		return h[i].seq < h[j].seq
	}
	return h[i].at < h[j].at
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn to run at the given absolute simulation time. Times in
// the past run at the current time (FIFO among same-time events).
func (e *Engine) At(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.now+d, fn)
}

// Run executes events in order until the queue empties or the next event
// lies beyond until. It returns the number of events executed.
func (e *Engine) Run(until time.Duration) int {
	n := 0
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// Station is a FIFO queueing resource with a fixed number of servers —
// the building block for modeling CPU-bound components (the K8s API
// server, Dirigent's control plane, a worker's kernel-lock section).
// Jobs are (serviceTime, completion-callback) pairs.
type Station struct {
	eng     *Engine
	servers int
	busy    int
	queue   []stationJob

	// Busy time accounting for utilization reporting.
	busySince time.Duration
	busyTotal time.Duration
	served    int
}

type stationJob struct {
	service time.Duration
	done    func()
}

// NewStation returns a station with the given server count (>=1).
func NewStation(eng *Engine, servers int) *Station {
	if servers < 1 {
		servers = 1
	}
	return &Station{eng: eng, servers: servers}
}

// Submit enqueues a job requiring service time svc; done (which may be
// nil) runs when the job completes.
func (s *Station) Submit(svc time.Duration, done func()) {
	s.queue = append(s.queue, stationJob{service: svc, done: done})
	s.dispatch()
}

func (s *Station) dispatch() {
	for s.busy < s.servers && len(s.queue) > 0 {
		job := s.queue[0]
		s.queue = s.queue[1:]
		if s.busy == 0 {
			s.busySince = s.eng.Now()
		}
		s.busy++
		s.eng.After(job.service, func() {
			s.busy--
			s.served++
			if s.busy == 0 {
				s.busyTotal += s.eng.Now() - s.busySince
			}
			if job.done != nil {
				job.done()
			}
			s.dispatch()
		})
	}
}

// QueueLen returns the number of waiting (unstarted) jobs.
func (s *Station) QueueLen() int { return len(s.queue) }

// Served returns the number of completed jobs.
func (s *Station) Served() int { return s.served }

// Utilization returns the fraction of simulated time the station has been
// busy (approximate for multi-server stations).
func (s *Station) Utilization() float64 {
	total := s.busyTotal
	if s.busy > 0 {
		total += s.eng.Now() - s.busySince
	}
	if s.eng.Now() == 0 {
		return 0
	}
	return float64(total) / float64(s.eng.Now())
}
