package simulation

import (
	"math"
	"sort"
	"time"

	"dirigent/internal/telemetry"
	"dirigent/internal/trace"
)

// Collector accumulates invocation results during a simulation run.
// Simulations are single-threaded, so no locking is needed.
type Collector struct {
	Results []Result
}

// Done records one result; pass it as the Invoke completion callback.
func (c *Collector) Done(r Result) { c.Results = append(c.Results, r) }

// Completed returns the number of completed (non-failed) invocations.
func (c *Collector) Completed() int {
	n := 0
	for _, r := range c.Results {
		if !r.Failed {
			n++
		}
	}
	return n
}

// FailureRate returns the fraction of failed invocations.
func (c *Collector) FailureRate() float64 {
	if len(c.Results) == 0 {
		return 0
	}
	return float64(len(c.Results)-c.Completed()) / float64(len(c.Results))
}

// E2E returns a histogram of end-to-end latencies in milliseconds.
func (c *Collector) E2E() *telemetry.Histogram {
	h := telemetry.NewHistogram()
	for _, r := range c.Results {
		if !r.Failed {
			h.Observe(r.E2E)
		}
	}
	return h
}

// Scheduling returns a histogram of per-invocation scheduling latencies.
func (c *Collector) Scheduling() *telemetry.Histogram {
	h := telemetry.NewHistogram()
	for _, r := range c.Results {
		if !r.Failed {
			h.Observe(r.Scheduling)
		}
	}
	return h
}

// Slowdowns returns a histogram of per-invocation slowdowns.
func (c *Collector) Slowdowns() *telemetry.Histogram {
	h := telemetry.NewHistogram()
	for _, r := range c.Results {
		if !r.Failed {
			h.ObserveMs(r.Slowdown())
		}
	}
	return h
}

// PerFunctionSlowdown returns one geometric-mean slowdown per function
// (the paper's Figure 9 metric: "we group by function and report the
// geometric mean slowdown per function").
func (c *Collector) PerFunctionSlowdown() *telemetry.Histogram {
	byFn := make(map[string][]float64)
	for _, r := range c.Results {
		if !r.Failed {
			byFn[r.Function] = append(byFn[r.Function], r.Slowdown())
		}
	}
	h := telemetry.NewHistogram()
	for _, slows := range byFn {
		var logSum float64
		for _, s := range slows {
			if s < 1e-9 {
				s = 1e-9
			}
			logSum += math.Log(s)
		}
		h.ObserveMs(math.Exp(logSum / float64(len(slows))))
	}
	return h
}

// PerFunctionScheduling returns one mean scheduling latency per function
// (Figure 10's right panel / Figure 5's per-function series).
func (c *Collector) PerFunctionScheduling() *telemetry.Histogram {
	byFn := make(map[string][]time.Duration)
	for _, r := range c.Results {
		if !r.Failed {
			byFn[r.Function] = append(byFn[r.Function], r.Scheduling)
		}
	}
	h := telemetry.NewHistogram()
	for _, ds := range byFn {
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		h.Observe(sum / time.Duration(len(ds)))
	}
	return h
}

// SlowdownTimeline buckets mean per-invocation slowdown by arrival second,
// used for the fault-tolerance timeline (Figure 11). Arrival time is
// reconstructed as completion minus E2E.
type timelinePoint struct {
	at       time.Duration
	slowdown float64
}

// helloFunction builds the microbenchmark function: a hello-world-style
// trivial function (the paper's cold/warm sweeps use hello-world with
// pre-cached images).
func helloFunction(name string) *trace.FunctionSpec {
	return &trace.FunctionSpec{
		Name:       name,
		Class:      trace.ClassPoisson,
		ExecMedian: 10 * time.Millisecond,
		ExecSigma:  0.05,
		MemoryMB:   128,
	}
}

// RunColdRateSweep drives cold starts at a steady rate (paper Figure 7):
// every invocation targets a fresh function, so every invocation requires
// a sandbox creation. Returns the collector after the run drains.
func RunColdRateSweep(eng *Engine, m Model, rate float64, duration time.Duration) *Collector {
	col := &Collector{}
	gap := time.Duration(float64(time.Second) / rate)
	n := int(float64(duration) / float64(gap))
	exec := 10 * time.Millisecond
	for i := 0; i < n; i++ {
		i := i
		at := time.Duration(i) * gap
		eng.At(at, func() {
			fn := helloFunction("cold-" + itoa(i))
			m.Register(fn)
			m.Invoke(fn, exec, col.Done)
		})
	}
	// Drain generously: saturated systems hold long queues.
	eng.Run(duration + 10*time.Minute)
	return col
}

// RunWarmRateSweep drives warm starts at a steady rate against a
// pre-warmed function pool (paper Figure 8): the control plane is off the
// critical path; only the data plane is stressed.
func RunWarmRateSweep(eng *Engine, m Model, rate float64, duration time.Duration) *Collector {
	type prewarmer interface {
		Prewarm(fn *trace.FunctionSpec, n int)
	}
	col := &Collector{}
	// Hello-world execution is near-instant; the measurement isolates the
	// data plane (front-end LB, proxy, throttler) as in the paper.
	exec := 500 * time.Microsecond
	// Enough warm sandboxes that the sweep never cold-starts: steady-state
	// concurrency ≈ rate × (exec + overhead), with ample headroom.
	sandboxes := int(rate*0.05) + 64
	fn := helloFunction("warm-fn")
	if pw, ok := m.(prewarmer); ok {
		pw.Prewarm(fn, sandboxes)
	} else {
		m.Register(fn)
	}
	gap := time.Duration(float64(time.Second) / rate)
	n := int(float64(duration) / float64(gap))
	for i := 0; i < n; i++ {
		at := time.Duration(i) * gap
		eng.At(at, func() {
			m.Invoke(fn, exec, col.Done)
		})
	}
	eng.Run(duration + 5*time.Minute)
	return col
}

// RunColdBurst issues n concurrent cold starts at t=0 (paper Figures 1
// and 2) and returns the collector.
func RunColdBurst(eng *Engine, m Model, n int) *Collector {
	col := &Collector{}
	exec := 10 * time.Millisecond
	for i := 0; i < n; i++ {
		fn := helloFunction("burst-" + itoa(i))
		m.Register(fn)
		eng.At(0, func() {
			m.Invoke(fn, exec, col.Done)
		})
	}
	eng.Run(30 * time.Minute)
	return col
}

// ReplayTrace replays a trace against the model (paper §5.3), registering
// all functions first, then running to completion plus a drain period.
// warmup discards results for invocations arriving before it.
func ReplayTrace(eng *Engine, m Model, tr *trace.Trace, warmup time.Duration) *Collector {
	col := &Collector{}
	for _, fn := range tr.Functions {
		m.Register(fn)
	}
	for _, inv := range tr.Invocations {
		inv := inv
		eng.At(inv.At, func() {
			arrivedAt := eng.Now()
			m.Invoke(inv.Function, inv.Exec, func(r Result) {
				if arrivedAt >= warmup {
					col.Done(r)
				}
			})
		})
	}
	eng.Run(tr.Duration + 10*time.Minute)
	return col
}

// CreationRateStats converts sandbox creation timestamps into per-second
// rates and summary statistics (paper Figure 3).
func CreationRateStats(times []time.Duration, duration time.Duration, discard time.Duration) (perSecond []float64, stats telemetry.Stats) {
	if duration <= 0 {
		return nil, telemetry.Stats{}
	}
	buckets := make([]float64, int(duration/time.Second)+1)
	for _, t := range times {
		if t < discard || t >= duration {
			continue
		}
		buckets[int(t/time.Second)]++
	}
	perSecond = buckets[int(discard/time.Second):]
	return perSecond, telemetry.ComputeStats(perSecond)
}

// SlowdownTimelineSeries aggregates per-invocation slowdowns into
// per-second means ordered by arrival time (Figure 11).
func SlowdownTimelineSeries(results []Result, e2eOffsetsEnd []time.Duration) []telemetry.TimePoint {
	if len(results) != len(e2eOffsetsEnd) {
		return nil
	}
	pts := make([]timelinePoint, 0, len(results))
	for i, r := range results {
		if r.Failed {
			continue
		}
		arrival := e2eOffsetsEnd[i] - r.E2E
		pts = append(pts, timelinePoint{at: arrival, slowdown: r.Slowdown()})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].at < pts[j].at })
	var out []telemetry.TimePoint
	var bucketSum float64
	var bucketN int
	bucket := time.Duration(-1)
	for _, p := range pts {
		b := p.at / time.Second
		if b != bucket && bucketN > 0 {
			out = append(out, telemetry.TimePoint{At: bucket * time.Second, Value: bucketSum / float64(bucketN)})
			bucketSum, bucketN = 0, 0
		}
		bucket = b
		bucketSum += p.slowdown
		bucketN++
	}
	if bucketN > 0 {
		out = append(out, telemetry.TimePoint{At: bucket * time.Second, Value: bucketSum / float64(bucketN)})
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
