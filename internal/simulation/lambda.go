package simulation

import (
	"math"
	"math/rand"
	"time"

	"dirigent/internal/trace"
)

// LambdaConfig parameterizes the AWS Lambda empirical model. The paper
// cannot inspect Lambda's cluster manager, so it characterizes it from the
// outside (Figure 2): end-to-end cold-start latency distributions widen as
// the number of concurrent cold starts grows, from a sub-second median at
// low concurrency to multi-second medians with 7+ second tails at 1600
// concurrent cold starts. This model reproduces those distributions:
//
//   - Lambda creates a sandbox per concurrent request on demand (no KPA
//     autoscaler, no request queue visible to the client);
//   - cold latency ~ lognormal with a median that grows with the number of
//     in-flight sandbox creations cluster-wide;
//   - warm latency ≈ 8 ms invocation overhead;
//   - idle sandboxes are kept alive ~10 minutes.
type LambdaConfig struct {
	Seed int64
	// KeepAlive is the idle sandbox lifetime (default 10 min).
	KeepAlive time.Duration
	// BaseColdMedian is the cold-start median at concurrency 1 (with
	// pre-cached images, following Brooker et al.; default 550 ms).
	BaseColdMedian time.Duration
	// Timeout marks invocations slower than this as failed (the paper's
	// larger-trace experiment sees 33% Lambda timeouts; default 15 min).
	Timeout time.Duration
}

type lambdaFunction struct {
	spec *trace.FunctionSpec
	idle []time.Duration // times at which sandboxes became idle
	busy int
}

// Lambda is the empirical AWS Lambda model.
type Lambda struct {
	eng *Engine
	cfg LambdaConfig
	rng *rand.Rand

	functions    map[string]*lambdaFunction
	coldInFlight int

	creations creationRecorder
}

// NewLambda builds the model on the given engine.
func NewLambda(eng *Engine, cfg LambdaConfig) *Lambda {
	if cfg.KeepAlive == 0 {
		cfg.KeepAlive = 10 * time.Minute
	}
	if cfg.BaseColdMedian == 0 {
		cfg.BaseColdMedian = 550 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 15 * time.Minute
	}
	return &Lambda{
		eng:       eng,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed + 97)),
		functions: make(map[string]*lambdaFunction),
	}
}

// Name implements Model.
func (l *Lambda) Name() string { return "aws-lambda" }

// Register implements Model.
func (l *Lambda) Register(fn *trace.FunctionSpec) {
	if _, ok := l.functions[fn.Name]; !ok {
		l.functions[fn.Name] = &lambdaFunction{spec: fn}
	}
}

// coldLatency draws the end-to-end sandbox provisioning latency given the
// current number of concurrent cold starts, following the Figure 2 CDFs:
// medians of roughly 0.55 s / 0.8 s / 1.1 s / 1.8 s / 2.4 s / 3.2 s at
// concurrency 1 / 25 / 100 / 400 / 800 / 1600, with fattening tails.
func (l *Lambda) coldLatency(concurrent int) time.Duration {
	c := float64(concurrent)
	if c < 1 {
		c = 1
	}
	growth := 1 + 0.62*math.Log10(c)*math.Log10(c)/1.6 + c/1500
	median := float64(l.cfg.BaseColdMedian) * growth
	sigma := 0.35 + 0.10*math.Log10(c)
	lat := time.Duration(median * math.Exp(sigma*l.rng.NormFloat64()))
	if lat > 30*time.Second {
		lat = 30 * time.Second
	}
	return lat
}

// Invoke implements Model.
func (l *Lambda) Invoke(fn *trace.FunctionSpec, exec time.Duration, done func(Result)) {
	f := l.functions[fn.Name]
	if f == nil {
		done(Result{Function: fn.Name, Failed: true})
		return
	}
	arrival := l.eng.Now()

	// Reap idle sandboxes past keep-alive.
	live := f.idle[:0]
	for _, idleSince := range f.idle {
		if arrival-idleSince < l.cfg.KeepAlive {
			live = append(live, idleSince)
		}
	}
	f.idle = live

	if len(f.idle) > 0 {
		f.idle = f.idle[:len(f.idle)-1]
		f.busy++
		overhead := time.Duration(float64(8*time.Millisecond) * math.Exp(0.3*l.rng.NormFloat64()))
		l.eng.After(overhead+exec, func() {
			l.finish(f, exec, arrival, false, done)
		})
		return
	}

	// Cold start: provision a sandbox; latency depends on cluster-wide
	// concurrent provisioning.
	l.coldInFlight++
	cold := l.coldLatency(l.coldInFlight)
	f.busy++
	l.eng.After(cold, func() {
		l.coldInFlight--
		l.creations.record(l.eng.Now())
		l.eng.After(exec, func() {
			l.finish(f, exec, arrival, true, done)
		})
	})
}

func (l *Lambda) finish(f *lambdaFunction, exec time.Duration, arrival time.Duration, cold bool, done func(Result)) {
	now := l.eng.Now()
	f.busy--
	f.idle = append(f.idle, now)
	sched := now - arrival - exec
	if sched < 0 {
		sched = 0
	}
	e2e := now - arrival
	done(Result{
		Function:   f.spec.Name,
		ColdStart:  cold,
		Scheduling: sched,
		Exec:       exec,
		E2E:        e2e,
		Failed:     e2e > l.cfg.Timeout,
	})
}

// SandboxCreations implements Model.
func (l *Lambda) SandboxCreations() int { return l.creations.count() }

// CreationTimes implements Model.
func (l *Lambda) CreationTimes() []time.Duration { return l.creations.snapshot() }
