package simulation

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.At(3*time.Second, func() { order = append(order, 3) })
	eng.At(1*time.Second, func() { order = append(order, 1) })
	eng.At(2*time.Second, func() { order = append(order, 2) })
	n := eng.Run(10 * time.Second)
	if n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if eng.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s (ran to horizon)", eng.Now())
	}
}

func TestEngineFIFOAmongSameTime(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(time.Second, func() { order = append(order, i) })
	}
	eng.Run(2 * time.Second)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineStopsAtHorizon(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.At(5*time.Second, func() { ran = true })
	eng.Run(2 * time.Second)
	if ran {
		t.Errorf("event beyond horizon ran")
	}
	if eng.Pending() != 1 {
		t.Errorf("Pending = %d", eng.Pending())
	}
	eng.Run(10 * time.Second)
	if !ran {
		t.Errorf("event did not run on second pass")
	}
}

func TestEngineAfterAndCascading(t *testing.T) {
	eng := NewEngine()
	var times []time.Duration
	var step func()
	step = func() {
		times = append(times, eng.Now())
		if len(times) < 5 {
			eng.After(time.Second, step)
		}
	}
	eng.After(time.Second, step)
	eng.Run(time.Hour)
	if len(times) != 5 {
		t.Fatalf("cascade ran %d times", len(times))
	}
	for i, at := range times {
		if at != time.Duration(i+1)*time.Second {
			t.Errorf("step %d at %v", i, at)
		}
	}
}

func TestEnginePastEventsRunNow(t *testing.T) {
	eng := NewEngine()
	eng.At(5*time.Second, func() {
		eng.At(time.Second, func() {}) // in the past: clamp to now
	})
	eng.Run(10 * time.Second)
	if eng.Pending() != 0 {
		t.Errorf("past-scheduled event never ran")
	}
}

// TestQuickEngineMonotonicTime property-tests that callbacks always
// observe non-decreasing time, whatever the scheduling order.
func TestQuickEngineMonotonicTime(t *testing.T) {
	f := func(offsets []uint16) bool {
		eng := NewEngine()
		last := time.Duration(-1)
		ok := true
		for _, off := range offsets {
			at := time.Duration(off) * time.Millisecond
			eng.At(at, func() {
				if eng.Now() < last {
					ok = false
				}
				last = eng.Now()
			})
		}
		eng.Run(time.Hour)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStationSingleServerSerializes(t *testing.T) {
	eng := NewEngine()
	s := NewStation(eng, 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		s.Submit(time.Second, func() { done = append(done, eng.Now()) })
	}
	eng.Run(time.Hour)
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("job %d done at %v, want %v", i, done[i], want[i])
		}
	}
	if s.Served() != 3 {
		t.Errorf("Served = %d", s.Served())
	}
}

func TestStationMultiServerParallelism(t *testing.T) {
	eng := NewEngine()
	s := NewStation(eng, 3)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		s.Submit(time.Second, func() { done = append(done, eng.Now()) })
	}
	eng.Run(time.Hour)
	for i, at := range done {
		if at != time.Second {
			t.Errorf("job %d done at %v, want 1s (parallel)", i, at)
		}
	}
}

func TestStationQueueLen(t *testing.T) {
	eng := NewEngine()
	s := NewStation(eng, 1)
	for i := 0; i < 5; i++ {
		s.Submit(time.Second, nil)
	}
	if s.QueueLen() != 4 {
		t.Errorf("QueueLen = %d, want 4 (one in service)", s.QueueLen())
	}
	eng.Run(time.Hour)
	if s.QueueLen() != 0 {
		t.Errorf("QueueLen after drain = %d", s.QueueLen())
	}
}

func TestStationUtilization(t *testing.T) {
	eng := NewEngine()
	s := NewStation(eng, 1)
	s.Submit(time.Second, nil)
	eng.Run(2 * time.Second)
	u := s.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("Utilization = %v, want ~0.5", u)
	}
}

func TestStationMinimumOneServer(t *testing.T) {
	eng := NewEngine()
	s := NewStation(eng, 0)
	ran := false
	s.Submit(time.Second, func() { ran = true })
	eng.Run(time.Hour)
	if !ran {
		t.Errorf("zero-server station never served")
	}
}
