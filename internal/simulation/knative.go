package simulation

import (
	"math/rand"
	"time"

	"dirigent/internal/autoscaler"
	"dirigent/internal/codec"
	"dirigent/internal/core"
	"dirigent/internal/trace"
)

// KnativeConfig parameterizes the Knative/K8s baseline model. The
// calibration reproduces the bottleneck structure the paper's root-cause
// analysis identifies (§2.2):
//
//   - every sandbox creation drives a chain of controller reconciliations
//     (Deployment → ReplicaSet → Pod → Endpoint → Route) through the API
//     server, each a read-modify-write of a ~17 KB object serialized and
//     persisted with strong consistency to etcd;
//   - the *critical-path* portion of that work (until the pod is bound and
//     the endpoint programmed) costs ~40 ms of API-server CPU per
//     creation, which matches Figure 1: a burst of 100 concurrent creations
//     queues ~2 s of control plane delay at the median;
//   - the *deferred* portion (watch fan-out, status updates, informer cache
//     resyncs, garbage collection) costs ~460 ms more per creation. At a
//     steady arrival rate this deferred work shares the same CPU, so
//     sustained cold-start throughput saturates near 1/(0.04+0.46) = 2/s,
//     matching Figure 7;
//   - on the worker, the user container and its queue-proxy sidecar are
//     created sequentially (~400 ms) and must pass readiness probes
//     (~500 ms) before traffic flows (§5.2.1);
//   - the warm path crosses the ingress gateway, activator, and per-pod
//     queue-proxy: ~7 ms at low load, saturating near 1200 requests/s
//     (§5.2.2).
type KnativeConfig struct {
	Workers int
	// Fused models K3s-style single-process K8s: controller RPCs become
	// function calls (shaving the per-hop cost) but serialization and
	// persistence remain — the paper found this only marginally helps
	// (§5.2.1, "Dirigent optimization breakdown").
	Fused bool
	// OpenWhisk switches the warm path to OpenWhisk's architecture, where
	// Kafka and CouchDB sit on every request's critical path (§5.2.2).
	OpenWhisk bool
	// AutoscaleInterval and MetricInterval mirror the Dirigent model.
	AutoscaleInterval time.Duration
	MetricInterval    time.Duration
	ScaleDefaults     *core.ScalingConfig
	Seed              int64
}

type knativeFunction struct {
	spec     *trace.FunctionSpec
	scaler   *autoscaler.FunctionAutoscaler
	idle     []*dirigentSandbox
	ready    int
	creating int
	inFlight int
	queue    []*dirigentPending
}

// Knative is the discrete-event model of the Knative/K8s (and OpenWhisk)
// baselines.
type Knative struct {
	eng  *Engine
	cfg  KnativeConfig
	rng  *rand.Rand
	base time.Time

	apiServer *Station // the shared API-server/etcd pipeline
	dataplane *Station // ingress + activator (+ Kafka/CouchDB for OW)
	nodes     []*dirigentNode
	functions map[string]*knativeFunction

	criticalCost time.Duration // API-server work before the pod is routable
	deferredCost time.Duration // watch fan-out & reconciliation afterwards
	sidecarLat   latencySampler
	readinessLat latencySampler
	warmBase     latencySampler
	dpService    time.Duration
	objectBytes  int

	creations creationRecorder
	teardowns int

	// breakdowns records per-creation latency components for Figure 1.
	breakdowns []CreationBreakdown
}

// CreationBreakdown decomposes one cold start's latency the way the
// paper's Figure 1 does.
type CreationBreakdown struct {
	// ControlPlane is queueing plus critical-path work in the API
	// server/controller pipeline.
	ControlPlane time.Duration
	// SandboxCreation is the user-container + sidecar creation time.
	SandboxCreation time.Duration
	// SandboxInit is the health/readiness probe time.
	SandboxInit time.Duration
	// Other is endpoint programming and miscellaneous latency.
	Other time.Duration
}

// Breakdowns returns the recorded per-creation latency decompositions.
func (k *Knative) Breakdowns() []CreationBreakdown {
	out := make([]CreationBreakdown, len(k.breakdowns))
	copy(out, k.breakdowns)
	return out
}

// NewKnative builds the baseline model on the given engine.
func NewKnative(eng *Engine, cfg KnativeConfig) *Knative {
	if cfg.Workers == 0 {
		cfg.Workers = 93
	}
	if cfg.AutoscaleInterval == 0 {
		cfg.AutoscaleInterval = 2 * time.Second
	}
	if cfg.MetricInterval == 0 {
		cfg.MetricInterval = time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	k := &Knative{
		eng:       eng,
		cfg:       cfg,
		rng:       rng,
		base:      time.Unix(0, 0),
		apiServer: NewStation(eng, 1),
		dataplane: NewStation(eng, 1),
		functions: make(map[string]*knativeFunction),
		// Sequential user-container + queue-proxy sidecar creation.
		sidecarLat: latencySampler{rng: rng, median: 400 * time.Millisecond, sigma: 0.20},
		// Readiness probes for both containers.
		readinessLat: latencySampler{rng: rng, median: 500 * time.Millisecond, sigma: 0.15},
		objectBytes:  17 * 1024,
	}
	k.criticalCost = 40 * time.Millisecond
	k.deferredCost = 460 * time.Millisecond
	if cfg.Fused {
		// Fusing removes inter-controller RPC overhead (~15% of the
		// critical path) but keeps serialization + persistence.
		k.criticalCost = 34 * time.Millisecond
		k.deferredCost = 420 * time.Millisecond
	}
	if cfg.OpenWhisk {
		// Kafka + CouchDB on the invocation path: higher base latency and
		// earlier saturation.
		k.warmBase = latencySampler{rng: rng, median: 18 * time.Millisecond, sigma: 0.30}
		k.dpService = 1250 * time.Microsecond // ~800 warm/s
		k.criticalCost = 50 * time.Millisecond
		k.deferredCost = 500 * time.Millisecond
	} else {
		// Ingress gateway + activator + queue-proxy.
		k.warmBase = latencySampler{rng: rng, median: 6500 * time.Microsecond, sigma: 0.25}
		k.dpService = 830 * time.Microsecond // ~1200 warm/s
	}
	for i := 0; i < cfg.Workers; i++ {
		k.nodes = append(k.nodes, &dirigentNode{kernel: NewStation(eng, 1)})
	}
	k.scheduleLoops()
	return k
}

func (k *Knative) scheduleLoops() {
	var metricTick func()
	metricTick = func() {
		now := k.base.Add(k.eng.Now())
		for _, fn := range k.functions {
			fn.scaler.Record(now, float64(fn.inFlight))
		}
		k.eng.After(k.cfg.MetricInterval, metricTick)
	}
	k.eng.After(k.cfg.MetricInterval, metricTick)

	var autoscaleTick func()
	autoscaleTick = func() {
		k.reconcile()
		k.eng.After(k.cfg.AutoscaleInterval, autoscaleTick)
	}
	k.eng.After(k.cfg.AutoscaleInterval, autoscaleTick)
}

// Name implements Model.
func (k *Knative) Name() string {
	switch {
	case k.cfg.OpenWhisk:
		return "openwhisk"
	case k.cfg.Fused:
		return "knative-k3s"
	default:
		return "knative"
	}
}

// Register implements Model.
func (k *Knative) Register(fn *trace.FunctionSpec) {
	if _, ok := k.functions[fn.Name]; ok {
		return
	}
	cfg := core.DefaultScalingConfig()
	if k.cfg.ScaleDefaults != nil {
		cfg = *k.cfg.ScaleDefaults
	}
	k.functions[fn.Name] = &knativeFunction{spec: fn, scaler: autoscaler.New(cfg)}
}

// RegistrationCost returns the simulated latency to register one function
// when the cluster already holds existing functions. Knative ascribes
// multiple objects per function (routes, revisions, services, ingress
// sync), and the cost grows with cluster content (§5.2.4: ~770 ms in an
// empty cluster, ~18 min for 1000 functions ⇒ superlinear growth).
func (k *Knative) RegistrationCost(existing int) time.Duration {
	base := 770 * time.Millisecond
	// Ingress/controller synchronization scans existing objects.
	growth := time.Duration(existing) * 1400 * time.Microsecond * time.Duration(1+existing/500)
	return base + growth
}

// Invoke implements Model.
func (k *Knative) Invoke(fn *trace.FunctionSpec, exec time.Duration, done func(Result)) {
	f := k.functions[fn.Name]
	if f == nil {
		done(Result{Function: fn.Name, Failed: true})
		return
	}
	arrival := k.eng.Now()
	f.inFlight++
	f.scaler.Record(k.base.Add(arrival), float64(f.inFlight))
	if len(f.idle) > 0 {
		sb := f.idle[len(f.idle)-1]
		f.idle = f.idle[:len(f.idle)-1]
		k.execute(f, sb, exec, arrival, false, done)
		return
	}
	f.queue = append(f.queue, &dirigentPending{arrival: arrival, exec: exec, done: done})
	// The activator pokes the autoscaler when requests buffer for a
	// function with no capacity (Knative's scale-from-zero path).
	k.reconcileFunction(f)
}

// Prewarm installs n ready sandboxes for fn without charging creation
// cost, used by warm-start benchmarks (§5.2.2). The function's MinScale is
// pinned to n so the autoscaler does not tear the pool down mid-benchmark.
func (k *Knative) Prewarm(fn *trace.FunctionSpec, n int) {
	k.Register(fn)
	f := k.functions[fn.Name]
	cfg := f.scaler.Config()
	cfg.MinScale = n
	f.scaler = autoscaler.New(cfg)
	for i := 0; i < n; i++ {
		node := k.pickNode()
		node.sandboxes++
		f.ready++
		f.idle = append(f.idle, &dirigentSandbox{node: node})
	}
}

func (k *Knative) execute(f *knativeFunction, sb *dirigentSandbox, exec time.Duration, arrival time.Duration, cold bool, done func(Result)) {
	overhead := k.warmBase.sample()
	k.dataplane.Submit(k.dpService, func() {
		k.eng.After(overhead+exec, func() {
			finish := k.eng.Now()
			f.inFlight--
			f.idle = append(f.idle, sb)
			k.pump(f)
			sched := finish - arrival - exec
			if sched < 0 {
				sched = 0
			}
			done(Result{
				Function:   f.spec.Name,
				ColdStart:  cold,
				Scheduling: sched,
				Exec:       exec,
				E2E:        finish - arrival,
			})
		})
	})
}

func (k *Knative) pump(f *knativeFunction) {
	for len(f.queue) > 0 && len(f.idle) > 0 {
		p := f.queue[0]
		f.queue = f.queue[1:]
		sb := f.idle[len(f.idle)-1]
		f.idle = f.idle[:len(f.idle)-1]
		k.execute(f, sb, p.exec, p.arrival, true, p.done)
	}
}

func (k *Knative) reconcile() {
	for _, f := range k.functions {
		k.reconcileFunction(f)
	}
}

func (k *Knative) reconcileFunction(f *knativeFunction) {
	now := k.base.Add(k.eng.Now())
	current := f.ready + f.creating
	desired := f.scaler.Desired(now, current)
	if desired > current {
		for i := 0; i < desired-current; i++ {
			k.createSandbox(f)
		}
	} else if desired < current {
		surplus := current - desired
		for surplus > 0 && len(f.idle) > 0 {
			sb := f.idle[len(f.idle)-1]
			f.idle = f.idle[:len(f.idle)-1]
			f.ready--
			sb.node.sandboxes--
			k.teardowns++
			// Teardown also drives reconciliation work through the
			// API server (deferred, off the latency path).
			k.apiServer.Submit(k.deferredCost/4, nil)
			surplus--
		}
	}
}

// createSandbox models the K8s object pipeline. The critical-path API
// server work must complete before the pod lands on a node; the deferred
// reconciliation work is enqueued afterwards and competes with future
// creations for the same CPU — the root cause of the 2 cold starts/s
// saturation (§2.2, §5.2.1).
func (k *Knative) createSandbox(f *knativeFunction) {
	f.creating++
	start := k.eng.Now()
	// Exercise the real serialization path the model charges time for:
	// build the bloated object once per creation. The cost itself is
	// folded into criticalCost.
	_ = codec.BloatedEncode("Pod", f.spec.Name, nil, k.objectBytes)
	k.apiServer.Submit(k.criticalCost, func() {
		cpDone := k.eng.Now()
		// Deferred watch/status work now contends with later creations.
		k.apiServer.Submit(k.deferredCost, nil)
		node := k.pickNode()
		node.pending++
		node.kernel.Submit(45*time.Millisecond, func() {
			// User container + sidecar created sequentially, then both
			// must pass readiness probes.
			create := k.sidecarLat.sample()
			initLat := k.readinessLat.sample()
			k.eng.After(create+initLat, func() {
				node.pending--
				node.sandboxes++
				k.creations.record(k.eng.Now())
				// Endpoint/Route reconciliation before traffic flows.
				k.eng.After(30*time.Millisecond, func() {
					k.breakdowns = append(k.breakdowns, CreationBreakdown{
						ControlPlane:    cpDone - start,
						SandboxCreation: create,
						SandboxInit:     initLat,
						Other:           k.eng.Now() - start - (cpDone - start) - create - initLat,
					})
					f.creating--
					f.ready++
					f.idle = append(f.idle, &dirigentSandbox{node: node})
					k.pump(f)
				})
			})
		})
	})
}

func (k *Knative) pickNode() *dirigentNode {
	best := k.nodes[0]
	bestLoad := best.sandboxes + best.pending
	if len(k.nodes) > 64 {
		for i := 0; i < 16; i++ {
			n := k.nodes[k.rng.Intn(len(k.nodes))]
			if load := n.sandboxes + n.pending; load < bestLoad {
				best, bestLoad = n, load
			}
		}
		return best
	}
	for _, n := range k.nodes[1:] {
		if load := n.sandboxes + n.pending; load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

// SandboxCreations implements Model.
func (k *Knative) SandboxCreations() int { return k.creations.count() }

// CreationTimes implements Model.
func (k *Knative) CreationTimes() []time.Duration { return k.creations.snapshot() }

// Teardowns returns the number of sandbox teardowns.
func (k *Knative) Teardowns() int { return k.teardowns }

// ControlPlaneUtilization reports the API-server busy fraction.
func (k *Knative) ControlPlaneUtilization() float64 { return k.apiServer.Utilization() }
