package simulation

import (
	"math/rand"
	"time"

	"dirigent/internal/autoscaler"
	"dirigent/internal/core"
	"dirigent/internal/trace"
)

// DirigentConfig parameterizes the Dirigent simulation model. The
// calibration targets the paper's measurements on 10-core CloudLab nodes:
//
//   - control plane service time ≈ 0.4 ms per sandbox creation (no
//     persistence on the critical path) ⇒ saturation ≈ 2500 creations/s
//     (§5.2.1);
//   - containerd worker: ~52 ms node-wide kernel-lock hold per creation
//     (network interfaces + iptables) ⇒ ~19 creations/s/node, ~1750/s on
//     93 nodes;
//   - firecracker snapshots: ~40 ms restore, ~4 ms lock hold;
//   - warm path through front-end LB + proxy + throttler ≈ 1.4 ms p50,
//     with a data plane capacity of ~4000 warm requests/s (port
//     exhaustion bound, §5.2.2).
type DirigentConfig struct {
	// Workers is the cluster size (paper: 93 usable workers).
	Workers int
	// Runtime selects "containerd" or "firecracker".
	Runtime string
	// PersistSandboxState enables the persist-everything ablation: a
	// strongly consistent DB write (fsync) on every sandbox state change,
	// which caps creation throughput near 1000/s (§5.2.1).
	PersistSandboxState bool
	// CreateBatching models the batched cold-start pipeline: per-worker
	// create batches, coalesced readiness reports and endpoint fan-out
	// amortize the per-creation RPC/broadcast overhead, reducing the
	// control plane's service time per creation (the live counterpart is
	// dirigent-cp's default; false is the seed per-sandbox baseline).
	CreateBatching bool
	// AutoscaleInterval is the autoscaling loop period (default 2 s).
	AutoscaleInterval time.Duration
	// MetricInterval is the concurrency sampling period (default 1 s).
	MetricInterval time.Duration
	// ScaleDefaults overrides the per-function scaling config; nil uses
	// Knative defaults with TargetConcurrency 1.
	ScaleDefaults *core.ScalingConfig
	// Seed drives all stochastic latency draws.
	Seed int64
	// DataPlanes is the number of data plane replicas (default 3),
	// bounding aggregate warm throughput.
	DataPlanes int
}

type dirigentNode struct {
	kernel    *Station // node-wide kernel lock section
	sandboxes int
	pending   int
}

type dirigentSandbox struct {
	node *dirigentNode
}

type dirigentFunction struct {
	spec     *trace.FunctionSpec
	scaler   *autoscaler.FunctionAutoscaler
	idle     []*dirigentSandbox
	ready    int // total ready sandboxes (idle + busy)
	creating int
	inFlight int // executing + queued
	queue    []*dirigentPending
}

type dirigentPending struct {
	arrival time.Duration
	exec    time.Duration
	done    func(Result)
}

// Dirigent is the discrete-event model of the Dirigent cluster manager.
type Dirigent struct {
	eng  *Engine
	cfg  DirigentConfig
	rng  *rand.Rand
	base time.Time

	cp        *Station // monolithic control plane
	db        *Station // persistence station (ablation only)
	dataplane *Station // aggregate data plane proxy capacity
	nodes     []*dirigentNode
	functions map[string]*dirigentFunction
	// order lists functions in registration order. Sweeps iterate it
	// instead of the map so same-seed runs draw latencies in the same
	// sequence — map iteration order would make runs non-reproducible.
	order []*dirigentFunction

	kernelHold  time.Duration
	createLat   latencySampler
	bootLat     latencySampler
	warmLat     latencySampler
	endpointLat time.Duration
	dbWriteLat  time.Duration

	creations creationRecorder
	teardowns int
}

// NewDirigent builds the model on the given engine.
func NewDirigent(eng *Engine, cfg DirigentConfig) *Dirigent {
	if cfg.Workers == 0 {
		cfg.Workers = 93
	}
	if cfg.Runtime == "" {
		cfg.Runtime = "containerd"
	}
	if cfg.AutoscaleInterval == 0 {
		cfg.AutoscaleInterval = 2 * time.Second
	}
	if cfg.MetricInterval == 0 {
		cfg.MetricInterval = time.Second
	}
	if cfg.DataPlanes == 0 {
		cfg.DataPlanes = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	d := &Dirigent{
		eng:       eng,
		cfg:       cfg,
		rng:       rng,
		base:      time.Unix(0, 0),
		cp:        NewStation(eng, 1),
		db:        NewStation(eng, 1),
		dataplane: NewStation(eng, cfg.DataPlanes),
		functions: make(map[string]*dirigentFunction),
		// Proxy + throttler + front-end LB: p50 ≈ 1.4 ms (§5.2.2).
		warmLat:     latencySampler{rng: rng, median: 1200 * time.Microsecond, sigma: 0.25},
		endpointLat: 500 * time.Microsecond,
		// fsync-per-query write (§5.1); 1 ms serialized ⇒ the ablation's
		// peak drops to ~1000 creations/s with p99 surging past ~500/s,
		// matching §5.2.1's "Dirigent optimization breakdown".
		dbWriteLat: time.Millisecond,
	}
	switch cfg.Runtime {
	case "firecracker":
		d.kernelHold = 4 * time.Millisecond
		d.createLat = latencySampler{rng: rng, median: 40 * time.Millisecond, sigma: 0.20}
		d.bootLat = latencySampler{rng: rng, median: 10 * time.Millisecond, sigma: 0.30}
	default: // containerd
		d.kernelHold = 52 * time.Millisecond
		d.createLat = latencySampler{rng: rng, median: 120 * time.Millisecond, sigma: 0.25}
		d.bootLat = latencySampler{rng: rng, median: 60 * time.Millisecond, sigma: 0.30}
	}
	for i := 0; i < cfg.Workers; i++ {
		d.nodes = append(d.nodes, &dirigentNode{kernel: NewStation(eng, 1)})
	}
	d.scheduleLoops()
	return d
}

func (d *Dirigent) scheduleLoops() {
	var metricTick func()
	metricTick = func() {
		now := d.base.Add(d.eng.Now())
		for _, fn := range d.order {
			fn.scaler.Record(now, float64(fn.inFlight))
		}
		d.eng.After(d.cfg.MetricInterval, metricTick)
	}
	d.eng.After(d.cfg.MetricInterval, metricTick)

	var autoscaleTick func()
	autoscaleTick = func() {
		d.reconcile()
		d.eng.After(d.cfg.AutoscaleInterval, autoscaleTick)
	}
	d.eng.After(d.cfg.AutoscaleInterval, autoscaleTick)
}

// Name implements Model.
func (d *Dirigent) Name() string {
	name := "dirigent-" + d.cfg.Runtime
	if d.cfg.PersistSandboxState {
		name += "-persist-all"
	}
	if d.cfg.CreateBatching {
		name += "-batched"
	}
	return name
}

// Register implements Model.
func (d *Dirigent) Register(fn *trace.FunctionSpec) {
	if _, ok := d.functions[fn.Name]; ok {
		return
	}
	cfg := core.DefaultScalingConfig()
	if d.cfg.ScaleDefaults != nil {
		cfg = *d.cfg.ScaleDefaults
	}
	f := &dirigentFunction{
		spec:   fn,
		scaler: autoscaler.New(cfg),
	}
	d.functions[fn.Name] = f
	d.order = append(d.order, f)
}

// Invoke implements Model. The request flows through the front-end LB and
// data plane proxy; with a free sandbox it executes immediately (warm),
// otherwise it queues in the data plane until the autoscaler provides
// capacity (cold).
func (d *Dirigent) Invoke(fn *trace.FunctionSpec, exec time.Duration, done func(Result)) {
	f := d.functions[fn.Name]
	if f == nil {
		done(Result{Function: fn.Name, Failed: true})
		return
	}
	arrival := d.eng.Now()
	f.inFlight++
	f.scaler.Record(d.base.Add(arrival), float64(f.inFlight))
	if len(f.idle) > 0 {
		sb := f.idle[len(f.idle)-1]
		f.idle = f.idle[:len(f.idle)-1]
		d.execute(f, sb, exec, arrival, false, done)
		return
	}
	f.queue = append(f.queue, &dirigentPending{arrival: arrival, exec: exec, done: done})
	// Queue formation pokes the autoscaler immediately (the data plane
	// pushes scaling metrics as queues form rather than waiting a full
	// autoscaling period) — this is what makes Dirigent "promptly scale
	// the number of ready pods to the desired state" (§5.3).
	d.reconcileFunction(f)
}

// Prewarm installs n ready sandboxes for fn without charging creation
// cost, used by warm-start benchmarks (§5.2.2). The function's MinScale is
// pinned to n so the autoscaler does not tear the pool down mid-benchmark.
func (d *Dirigent) Prewarm(fn *trace.FunctionSpec, n int) {
	d.Register(fn)
	f := d.functions[fn.Name]
	cfg := f.scaler.Config()
	cfg.MinScale = n
	f.scaler = autoscaler.New(cfg)
	for i := 0; i < n; i++ {
		node := d.pickNode()
		node.sandboxes++
		f.ready++
		f.idle = append(f.idle, &dirigentSandbox{node: node})
	}
}

// execute proxies a request through the data plane to a sandbox and runs
// it. The data plane station bounds aggregate warm throughput; its service
// time per request is small but nonzero (connection handling, throttle
// bookkeeping, NAT).
func (d *Dirigent) execute(f *dirigentFunction, sb *dirigentSandbox, exec time.Duration, arrival time.Duration, cold bool, done func(Result)) {
	proxy := d.warmLat.sample()
	// Data plane CPU cost per request ≈ 0.75 ms per replica; with 3
	// replicas the aggregate warm-start capacity is ~4000 requests/s,
	// the port-exhaustion bound the paper reports (§5.2.2).
	d.dataplane.Submit(750*time.Microsecond, func() {
		d.eng.After(proxy+exec, func() {
			finish := d.eng.Now()
			f.inFlight--
			f.idle = append(f.idle, sb)
			d.pump(f)
			sched := finish - arrival - exec
			if sched < 0 {
				sched = 0
			}
			done(Result{
				Function:   f.spec.Name,
				ColdStart:  cold,
				Scheduling: sched,
				Exec:       exec,
				E2E:        finish - arrival,
			})
		})
	})
}

// pump dispatches queued invocations onto idle sandboxes.
func (d *Dirigent) pump(f *dirigentFunction) {
	for len(f.queue) > 0 && len(f.idle) > 0 {
		p := f.queue[0]
		f.queue = f.queue[1:]
		sb := f.idle[len(f.idle)-1]
		f.idle = f.idle[:len(f.idle)-1]
		d.execute(f, sb, p.exec, p.arrival, true, p.done)
	}
}

// reconcile is the autoscaling pass: compare desired vs current scale and
// create/tear down sandboxes. Iteration follows registration order so
// that same-seed runs are bit-for-bit reproducible.
func (d *Dirigent) reconcile() {
	for _, f := range d.order {
		d.reconcileFunction(f)
	}
}

func (d *Dirigent) reconcileFunction(f *dirigentFunction) {
	now := d.base.Add(d.eng.Now())
	current := f.ready + f.creating
	desired := f.scaler.Desired(now, current)
	if desired > current {
		for i := 0; i < desired-current; i++ {
			d.createSandbox(f)
		}
	} else if desired < current {
		// Tear down idle sandboxes beyond the desired scale.
		surplus := current - desired
		for surplus > 0 && len(f.idle) > 0 {
			sb := f.idle[len(f.idle)-1]
			f.idle = f.idle[:len(f.idle)-1]
			f.ready--
			sb.node.sandboxes--
			d.teardowns++
			surplus--
		}
	}
}

// createSandbox runs the cold-start pipeline: control plane work
// (placement decision, in-memory state update, worker RPC), the optional
// ablation DB write, then the worker-side creation bounded by the
// node-wide kernel lock.
func (d *Dirigent) createSandbox(f *dirigentFunction) {
	f.creating++
	// Control plane: placement + state update + RPC marshaling. 0.4 ms of
	// CPU per creation ⇒ saturation at ~2500 creations/s.
	d.cp.Submit(d.cpServiceTime(), func() {
		next := func() {
			node := d.pickNode()
			node.pending++
			node.kernel.Submit(d.kernelHold, func() {
				create := d.createLat.sample() + d.bootLat.sample()
				d.eng.After(create, func() {
					node.pending--
					node.sandboxes++
					d.creations.record(d.eng.Now())
					// Worker notifies CP; CP broadcasts the endpoint to
					// data planes, which then drain their queues.
					d.eng.After(d.endpointLat, func() {
						f.creating--
						f.ready++
						f.idle = append(f.idle, &dirigentSandbox{node: node})
						d.pump(f)
					})
				})
			})
		}
		if d.cfg.PersistSandboxState {
			// Ablation: a serialized fsync write on the critical path.
			d.db.Submit(d.dbWriteLat, next)
		} else {
			next()
		}
	})
}

// cpServiceTime returns the control plane CPU cost per sandbox creation:
// ~0.4 ms (placement, in-memory state update, worker RPC) ⇒ ~2500
// creations/s. Beyond ~2500 workers, contention on the shared health-
// monitoring structures that process heartbeats inflates the cost, which
// is why the paper measures throughput degrading to ~2000/s at 5000
// workers (§5.2.3).
//
// With CreateBatching, the ~150 µs of per-creation RPC dispatch,
// readiness handling, and endpoint-broadcast marshaling amortizes across
// the batch, leaving placement and the in-memory state update as the
// per-creation cost.
func (d *Dirigent) cpServiceTime() time.Duration {
	svc := 400 * time.Microsecond
	if d.cfg.CreateBatching {
		svc = 250 * time.Microsecond
	}
	if extra := d.cfg.Workers - 2500; extra > 0 {
		svc += time.Duration(float64(svc) * float64(extra) / 10000)
	}
	return svc
}

// pickNode approximates the least-allocated placement policy: choose the
// node with the fewest sandboxes plus pending creations.
func (d *Dirigent) pickNode() *dirigentNode {
	best := d.nodes[0]
	bestLoad := best.sandboxes + best.pending
	// Sample a bounded number of candidates for large clusters (power of
	// k choices preserves the distribution at far lower cost).
	if len(d.nodes) > 64 {
		for i := 0; i < 16; i++ {
			n := d.nodes[d.rng.Intn(len(d.nodes))]
			if load := n.sandboxes + n.pending; load < bestLoad {
				best, bestLoad = n, load
			}
		}
		return best
	}
	for _, n := range d.nodes[1:] {
		if load := n.sandboxes + n.pending; load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

// SandboxCreations implements Model.
func (d *Dirigent) SandboxCreations() int { return d.creations.count() }

// CreationTimes implements Model.
func (d *Dirigent) CreationTimes() []time.Duration { return d.creations.snapshot() }

// Teardowns returns the number of sandbox teardowns.
func (d *Dirigent) Teardowns() int { return d.teardowns }

// ControlPlaneUtilization reports the CP station's busy fraction (the
// paper reports ~3% for Dirigent vs >75% for Knative on the Azure trace).
func (d *Dirigent) ControlPlaneUtilization() float64 { return d.cp.Utilization() }
