package simulation

import (
	"testing"
	"time"

	"dirigent/internal/trace"
)

func TestCreationRateStats(t *testing.T) {
	times := []time.Duration{
		500 * time.Millisecond,
		700 * time.Millisecond,
		1500 * time.Millisecond,
		2500 * time.Millisecond,
		2600 * time.Millisecond,
		2700 * time.Millisecond,
	}
	perSecond, stats := CreationRateStats(times, 4*time.Second, 0)
	if len(perSecond) != 5 {
		t.Fatalf("perSecond = %v", perSecond)
	}
	if perSecond[0] != 2 || perSecond[1] != 1 || perSecond[2] != 3 {
		t.Errorf("buckets = %v", perSecond)
	}
	if stats.Max != 3 {
		t.Errorf("max = %v", stats.Max)
	}
	// Discarding a warmup window drops early events.
	perSecond, _ = CreationRateStats(times, 4*time.Second, 2*time.Second)
	var total float64
	for _, v := range perSecond {
		total += v
	}
	if total != 3 {
		t.Errorf("post-warmup total = %v, want 3", total)
	}
	if got, _ := CreationRateStats(times, 0, 0); got != nil {
		t.Errorf("zero duration should return nil")
	}
}

func TestSlowdownTimelineSeries(t *testing.T) {
	results := []Result{
		{E2E: 100 * time.Millisecond, Exec: 50 * time.Millisecond}, // slowdown 2
		{E2E: 200 * time.Millisecond, Exec: 50 * time.Millisecond}, // slowdown 4
		{E2E: 50 * time.Millisecond, Exec: 50 * time.Millisecond},  // slowdown 1
		{Failed: true, E2E: time.Hour},                             // ignored
	}
	ends := []time.Duration{
		600 * time.Millisecond,  // arrival 500ms -> bucket 0
		700 * time.Millisecond,  // arrival 500ms -> bucket 0
		1550 * time.Millisecond, // arrival 1500ms -> bucket 1
		2 * time.Hour,
	}
	pts := SlowdownTimelineSeries(results, ends)
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Value != 3 { // mean of 2 and 4
		t.Errorf("bucket 0 mean = %v, want 3", pts[0].Value)
	}
	if pts[1].Value != 1 {
		t.Errorf("bucket 1 mean = %v, want 1", pts[1].Value)
	}
	if SlowdownTimelineSeries(results, ends[:2]) != nil {
		t.Errorf("mismatched lengths should return nil")
	}
}

func TestReplayTraceWarmupDiscards(t *testing.T) {
	tr := trace.NewAzureLike(trace.Config{Functions: 40, Duration: 4 * time.Minute, Seed: 5})
	eng := NewEngine()
	m := NewDirigent(eng, DirigentConfig{Runtime: "firecracker", Seed: 1})
	warmup := 2 * time.Minute
	col := ReplayTrace(eng, m, tr, warmup)
	afterWarmup := 0
	for _, inv := range tr.Invocations {
		if inv.At >= warmup {
			afterWarmup++
		}
	}
	if len(col.Results) != afterWarmup {
		t.Errorf("collected %d results, want %d (post-warmup only)", len(col.Results), afterWarmup)
	}
}

func TestRunColdBurstAllCold(t *testing.T) {
	eng := NewEngine()
	m := NewDirigent(eng, DirigentConfig{Runtime: "firecracker", Seed: 1})
	col := RunColdBurst(eng, m, 20)
	if len(col.Results) != 20 {
		t.Fatalf("results = %d", len(col.Results))
	}
	for i, r := range col.Results {
		if !r.ColdStart {
			t.Errorf("burst invocation %d was not a cold start", i)
		}
	}
	if m.SandboxCreations() < 20 {
		t.Errorf("creations = %d, want >= 20 (one per distinct function)", m.SandboxCreations())
	}
}

func TestRunWarmRateSweepNoColdStarts(t *testing.T) {
	eng := NewEngine()
	m := NewDirigent(eng, DirigentConfig{Runtime: "firecracker", Seed: 1})
	col := RunWarmRateSweep(eng, m, 200, 2*time.Second)
	for _, r := range col.Results {
		if r.ColdStart {
			t.Fatalf("warm sweep produced a cold start")
		}
	}
	if len(col.Results) == 0 {
		t.Fatalf("no results")
	}
}
