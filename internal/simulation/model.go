package simulation

import (
	"math"
	"math/rand"
	"time"

	"dirigent/internal/trace"
)

// Result is the outcome of one simulated invocation.
type Result struct {
	Function  string
	ColdStart bool
	// Scheduling is the cluster-manager contribution to latency: queueing,
	// placement, sandbox wait, and proxy overheads (everything except the
	// function's own execution time).
	Scheduling time.Duration
	// Exec is the function execution time.
	Exec time.Duration
	// E2E is Scheduling + Exec.
	E2E time.Duration
	// Failed marks invocations that timed out or were dropped.
	Failed bool
}

// Slowdown returns E2E divided by Exec (with a 1 ms floor on Exec so that
// near-zero execution times do not explode the ratio), the per-invocation
// metric behind the paper's Figure 9.
func (r Result) Slowdown() float64 {
	exec := r.Exec
	if exec < time.Millisecond {
		exec = time.Millisecond
	}
	return float64(r.E2E) / float64(exec)
}

// Model is a simulated FaaS cluster manager.
type Model interface {
	// Name identifies the model for experiment output.
	Name() string
	// Register announces a function before any invocation.
	Register(fn *trace.FunctionSpec)
	// Invoke submits one invocation; done is called (possibly much later
	// in simulation time) with the outcome.
	Invoke(fn *trace.FunctionSpec, exec time.Duration, done func(Result))
	// SandboxCreations returns the cumulative number of sandboxes created.
	SandboxCreations() int
	// CreationTimes returns the simulation times of all sandbox creations
	// (for the Figure 3 rate-over-time series).
	CreationTimes() []time.Duration
}

// latencySampler draws lognormal latencies on the simulation's RNG.
type latencySampler struct {
	rng    *rand.Rand
	median time.Duration
	sigma  float64
}

func (s latencySampler) sample() time.Duration {
	if s.median <= 0 {
		return 0
	}
	return time.Duration(float64(s.median) * math.Exp(s.sigma*s.rng.NormFloat64()))
}

// creationRecorder tracks sandbox creations for Figure 3 and the §5.3
// sandbox-count comparison.
type creationRecorder struct {
	times []time.Duration
}

func (c *creationRecorder) record(at time.Duration) { c.times = append(c.times, at) }
func (c *creationRecorder) count() int              { return len(c.times) }
func (c *creationRecorder) snapshot() []time.Duration {
	out := make([]time.Duration, len(c.times))
	copy(out, c.times)
	return out
}
