// Package cpclient is the client stub that worker nodes and data planes use
// to call the control plane. With a highly available control plane, only
// the Raft leader serves writes; followers reject them with a redirect
// hint naming the leader they follow. This client remembers the last known
// leader, honors redirect hints, and fails over to the other replicas
// transparently with capped exponential backoff, retrying briefly so that
// a leader election in progress (≈10 ms in Dirigent, paper §5.4) does not
// surface as an error. Read-only RPCs can instead use CallRead, which
// prefers follower replicas so the leader's RPC load stays writes-only.
package cpclient

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/transport"
)

// ErrNotLeaderText is the marker followers embed in rejections; the client
// uses it to distinguish "wrong replica" from application errors. A
// rejection may carry a redirect hint: "...; leader=<addr>".
const ErrNotLeaderText = "not the control plane leader"

// leaderHintMark introduces the redirect hint inside a NotLeader rejection.
const leaderHintMark = "leader="

// ErrNoLeader reports that no control plane replica accepted the call.
var ErrNoLeader = errors.New("cpclient: no control plane leader reachable")

// Client calls the current control-plane leader.
type Client struct {
	transport transport.Transport
	addrs     []string

	mu     sync.Mutex
	leader int // index into addrs of last known leader

	// readRR spreads CallRead across replicas round-robin.
	readRR atomic.Uint64
	// readLeaderOnlyUntil is a cooldown after a follower refused a read
	// (follower reads disabled or lease expired): until it passes,
	// CallRead goes straight to the leader instead of re-probing
	// followers on every poll. Stored as unix nanos.
	readLeaderOnlyUntil atomic.Int64

	// RetryWindow bounds how long Call keeps cycling replicas waiting for
	// a leader before giving up.
	RetryWindow time.Duration
	// RetryDelay is the initial pause between full cycles over the
	// replicas; it doubles each idle cycle up to RetryDelayMax.
	RetryDelay time.Duration
	// RetryDelayMax caps the exponential backoff between cycles.
	RetryDelayMax time.Duration
	// ReadCooldown is how long CallRead sticks to the leader after a
	// follower refuses a read.
	ReadCooldown time.Duration
}

// New returns a client over the given control plane replica addresses.
func New(t transport.Transport, addrs []string) *Client {
	return &Client{
		transport:     t,
		addrs:         append([]string(nil), addrs...),
		RetryWindow:   2 * time.Second,
		RetryDelay:    5 * time.Millisecond,
		RetryDelayMax: 100 * time.Millisecond,
		ReadCooldown:  time.Second,
	}
}

// Addrs returns the configured replica addresses.
func (c *Client) Addrs() []string {
	return append([]string(nil), c.addrs...)
}

// Call invokes method on the current leader, following redirect hints and
// failing over with capped exponential backoff within the retry window.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if len(c.addrs) == 0 {
		return nil, errors.New("cpclient: no control plane addresses configured")
	}
	deadline := time.Now().Add(c.RetryWindow)
	delay := c.RetryDelay
	var lastErr error
	for {
		c.mu.Lock()
		start := c.leader
		c.mu.Unlock()
		for i := 0; i < len(c.addrs); i++ {
			idx := (start + i) % len(c.addrs)
			resp, err := c.transport.Call(ctx, c.addrs[idx], method, payload)
			switch {
			case err == nil:
				c.mu.Lock()
				c.leader = idx
				c.mu.Unlock()
				return resp, nil
			case isNotLeader(err):
				lastErr = err
				// A follower knows its leader: jump straight there
				// instead of probing the remaining replicas in order.
				if hint := c.indexOf(leaderHint(err)); hint >= 0 && hint != idx {
					c.mu.Lock()
					c.leader = hint
					c.mu.Unlock()
					start = hint
					i = -1 // restart the cycle at the hinted leader
				}
				continue
			case errors.Is(err, transport.ErrUnreachable):
				lastErr = err
				continue // try the next replica
			default:
				return nil, err // application error from the leader
			}
		}
		if time.Now().After(deadline) {
			if lastErr != nil {
				return nil, errors.Join(ErrNoLeader, lastErr)
			}
			return nil, ErrNoLeader
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > c.RetryDelayMax && c.RetryDelayMax > 0 {
			delay = c.RetryDelayMax
		}
	}
}

// CallRead invokes a read-only method, preferring non-leader replicas so
// the leader's RPC load stays writes-only. Replicas are tried round-robin
// (leader last); a replica that refuses the read (follower reads disabled,
// or its leader lease expired) puts CallRead in a leader-only cooldown so
// steady-state polling doesn't pay a doomed follower probe per call. Falls
// back to Call — and its leader failover/retry loop — when no follower can
// serve.
func (c *Client) CallRead(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if len(c.addrs) <= 1 || time.Now().UnixNano() < c.readLeaderOnlyUntil.Load() {
		return c.Call(ctx, method, payload)
	}
	c.mu.Lock()
	leader := c.leader
	c.mu.Unlock()
	start := int(c.readRR.Add(1)) % len(c.addrs)
	var sawRefusal bool
	for i := 0; i < len(c.addrs); i++ {
		idx := (start + i) % len(c.addrs)
		if idx == leader {
			continue // followers first; Call covers the leader below
		}
		resp, err := c.transport.Call(ctx, c.addrs[idx], method, payload)
		switch {
		case err == nil:
			return resp, nil
		case isNotLeader(err):
			sawRefusal = true
			continue
		case errors.Is(err, transport.ErrUnreachable):
			continue
		default:
			return nil, err
		}
	}
	if sawRefusal && c.ReadCooldown > 0 {
		c.readLeaderOnlyUntil.Store(time.Now().Add(c.ReadCooldown).UnixNano())
	}
	return c.Call(ctx, method, payload)
}

// CallWithRetry invokes Call, retrying with capped exponential backoff
// while the control plane is unavailable (leader election in progress,
// replicas unreachable) until ctx expires. Use it for operations that must
// eventually land — registrations, deregistrations — where "no leader
// right now" is a transient condition, not a failure.
func (c *Client) CallWithRetry(ctx context.Context, method string, payload []byte) ([]byte, error) {
	delay := c.RetryDelay
	for {
		resp, err := c.Call(ctx, method, payload)
		if err == nil || !IsUnavailable(err) || ctx.Err() != nil {
			return resp, err
		}
		select {
		case <-ctx.Done():
			return nil, err
		case <-time.After(delay):
		}
		if delay *= 2; delay > c.RetryDelayMax && c.RetryDelayMax > 0 {
			delay = c.RetryDelayMax
		}
	}
}

// IsUnavailable reports whether err means the control plane could not be
// reached or had no settled leader — a transient condition callers should
// retry with backoff rather than treat as fatal.
func IsUnavailable(err error) bool {
	return err != nil &&
		(errors.Is(err, ErrNoLeader) || errors.Is(err, transport.ErrUnreachable) ||
			isNotLeader(err) || errors.Is(err, context.DeadlineExceeded))
}

func isNotLeader(err error) bool {
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, ErrNotLeaderText)
	}
	return false
}

// leaderHint extracts the redirect target from a NotLeader rejection
// ("" if the follower didn't know its leader).
func leaderHint(err error) string {
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		return ""
	}
	i := strings.LastIndex(re.Msg, leaderHintMark)
	if i < 0 {
		return ""
	}
	addr := re.Msg[i+len(leaderHintMark):]
	if j := strings.IndexAny(addr, " ;,"); j >= 0 {
		addr = addr[:j]
	}
	return addr
}

func (c *Client) indexOf(addr string) int {
	if addr == "" {
		return -1
	}
	for i, a := range c.addrs {
		if a == addr {
			return i
		}
	}
	return -1
}
