// Package cpclient is the client stub that worker nodes and data planes use
// to call the control plane. With a highly available control plane, only
// the Raft leader serves requests; followers reject them. This client
// remembers the last known leader and fails over to the other replicas
// transparently, retrying briefly so that a leader election in progress
// (≈10 ms in Dirigent, paper §5.4) does not surface as an error.
package cpclient

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"dirigent/internal/transport"
)

// ErrNotLeaderText is the marker followers embed in rejections; the client
// uses it to distinguish "wrong replica" from application errors.
const ErrNotLeaderText = "not the control plane leader"

// ErrNoLeader reports that no control plane replica accepted the call.
var ErrNoLeader = errors.New("cpclient: no control plane leader reachable")

// Client calls the current control-plane leader.
type Client struct {
	transport transport.Transport
	addrs     []string

	mu     sync.Mutex
	leader int // index into addrs of last known leader

	// RetryWindow bounds how long Call keeps cycling replicas waiting for
	// a leader before giving up.
	RetryWindow time.Duration
	// RetryDelay is the pause between full cycles over the replicas.
	RetryDelay time.Duration
}

// New returns a client over the given control plane replica addresses.
func New(t transport.Transport, addrs []string) *Client {
	return &Client{
		transport:   t,
		addrs:       append([]string(nil), addrs...),
		RetryWindow: 2 * time.Second,
		RetryDelay:  5 * time.Millisecond,
	}
}

// Addrs returns the configured replica addresses.
func (c *Client) Addrs() []string {
	return append([]string(nil), c.addrs...)
}

// Call invokes method on the current leader, failing over and retrying
// within the retry window.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if len(c.addrs) == 0 {
		return nil, errors.New("cpclient: no control plane addresses configured")
	}
	deadline := time.Now().Add(c.RetryWindow)
	var lastErr error
	for {
		c.mu.Lock()
		start := c.leader
		c.mu.Unlock()
		for i := 0; i < len(c.addrs); i++ {
			idx := (start + i) % len(c.addrs)
			resp, err := c.transport.Call(ctx, c.addrs[idx], method, payload)
			switch {
			case err == nil:
				c.mu.Lock()
				c.leader = idx
				c.mu.Unlock()
				return resp, nil
			case isNotLeader(err) || errors.Is(err, transport.ErrUnreachable):
				lastErr = err
				continue // try the next replica
			default:
				return nil, err // application error from the leader
			}
		}
		if time.Now().After(deadline) {
			if lastErr != nil {
				return nil, errors.Join(ErrNoLeader, lastErr)
			}
			return nil, ErrNoLeader
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.RetryDelay):
		}
	}
}

func isNotLeader(err error) bool {
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, ErrNotLeaderText)
	}
	return false
}
