package cpclient

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dirigent/internal/transport"
)

func leaderHandler(resp string) transport.HandlerFunc {
	return func(method string, payload []byte) ([]byte, error) {
		return []byte(resp), nil
	}
}

func followerHandler() transport.HandlerFunc {
	return func(method string, payload []byte) ([]byte, error) {
		return nil, errors.New(ErrNotLeaderText)
	}
}

func TestFindsLeaderAmongFollowers(t *testing.T) {
	tr := transport.NewInProc()
	for _, addr := range []string{"cp0", "cp1"} {
		ln, err := tr.Listen(addr, followerHandler())
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
	}
	ln, err := tr.Listen("cp2", leaderHandler("ok"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c := New(tr, []string{"cp0", "cp1", "cp2"})
	resp, err := c.Call(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(resp) != "ok" {
		t.Errorf("resp = %q", resp)
	}
	// The client must remember the leader: a second call goes straight
	// there (observable via the leader index).
	c.mu.Lock()
	leader := c.leader
	c.mu.Unlock()
	if leader != 2 {
		t.Errorf("cached leader index = %d, want 2", leader)
	}
}

func TestFailsOverWhenLeaderDies(t *testing.T) {
	tr := transport.NewInProc()
	ln0, err := tr.Listen("cp0", leaderHandler("first"))
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, []string{"cp0", "cp1"})
	if _, err := c.Call(context.Background(), "m", nil); err != nil {
		t.Fatal(err)
	}
	// Leader crashes; cp1 takes over.
	ln0.Close()
	ln1, err := tr.Listen("cp1", leaderHandler("second"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	resp, err := c.Call(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if string(resp) != "second" {
		t.Errorf("resp = %q", resp)
	}
}

func TestRetriesDuringElection(t *testing.T) {
	tr := transport.NewInProc()
	var elected atomic.Bool
	ln, err := tr.Listen("cp0", func(method string, payload []byte) ([]byte, error) {
		if !elected.Load() {
			return nil, errors.New(ErrNotLeaderText)
		}
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := New(tr, []string{"cp0"})
	c.RetryWindow = 2 * time.Second
	c.RetryDelay = time.Millisecond
	go func() {
		time.Sleep(30 * time.Millisecond)
		elected.Store(true)
	}()
	resp, err := c.Call(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("call during election: %v", err)
	}
	if string(resp) != "done" {
		t.Errorf("resp = %q", resp)
	}
}

func TestGivesUpAfterRetryWindow(t *testing.T) {
	tr := transport.NewInProc()
	c := New(tr, []string{"nowhere"})
	c.RetryWindow = 50 * time.Millisecond
	c.RetryDelay = 5 * time.Millisecond
	start := time.Now()
	_, err := c.Call(context.Background(), "m", nil)
	if !errors.Is(err, ErrNoLeader) {
		t.Errorf("err = %v, want ErrNoLeader", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("retry window not respected")
	}
}

func TestApplicationErrorsPassThrough(t *testing.T) {
	tr := transport.NewInProc()
	ln, err := tr.Listen("cp0", func(string, []byte) ([]byte, error) {
		return nil, errors.New("validation failed")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := New(tr, []string{"cp0"})
	_, err = c.Call(context.Background(), "m", nil)
	if err == nil || errors.Is(err, ErrNoLeader) {
		t.Errorf("application error should pass through, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	tr := transport.NewInProc()
	c := New(tr, []string{"nowhere"})
	c.RetryWindow = time.Hour
	c.RetryDelay = 10 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, "m", nil)
	if err == nil {
		t.Fatalf("expected error")
	}
}

func TestNoAddresses(t *testing.T) {
	c := New(transport.NewInProc(), nil)
	if _, err := c.Call(context.Background(), "m", nil); err == nil {
		t.Errorf("expected error with no addresses")
	}
	if len(c.Addrs()) != 0 {
		t.Errorf("Addrs should be empty")
	}
}
