package cpclient

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dirigent/internal/transport"
)

func leaderHandler(resp string) transport.HandlerFunc {
	return func(method string, payload []byte) ([]byte, error) {
		return []byte(resp), nil
	}
}

func followerHandler() transport.HandlerFunc {
	return func(method string, payload []byte) ([]byte, error) {
		return nil, errors.New(ErrNotLeaderText)
	}
}

func TestFindsLeaderAmongFollowers(t *testing.T) {
	tr := transport.NewInProc()
	for _, addr := range []string{"cp0", "cp1"} {
		ln, err := tr.Listen(addr, followerHandler())
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
	}
	ln, err := tr.Listen("cp2", leaderHandler("ok"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	c := New(tr, []string{"cp0", "cp1", "cp2"})
	resp, err := c.Call(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(resp) != "ok" {
		t.Errorf("resp = %q", resp)
	}
	// The client must remember the leader: a second call goes straight
	// there (observable via the leader index).
	c.mu.Lock()
	leader := c.leader
	c.mu.Unlock()
	if leader != 2 {
		t.Errorf("cached leader index = %d, want 2", leader)
	}
}

func TestFailsOverWhenLeaderDies(t *testing.T) {
	tr := transport.NewInProc()
	ln0, err := tr.Listen("cp0", leaderHandler("first"))
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, []string{"cp0", "cp1"})
	if _, err := c.Call(context.Background(), "m", nil); err != nil {
		t.Fatal(err)
	}
	// Leader crashes; cp1 takes over.
	ln0.Close()
	ln1, err := tr.Listen("cp1", leaderHandler("second"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	resp, err := c.Call(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if string(resp) != "second" {
		t.Errorf("resp = %q", resp)
	}
}

func TestRetriesDuringElection(t *testing.T) {
	tr := transport.NewInProc()
	var elected atomic.Bool
	ln, err := tr.Listen("cp0", func(method string, payload []byte) ([]byte, error) {
		if !elected.Load() {
			return nil, errors.New(ErrNotLeaderText)
		}
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := New(tr, []string{"cp0"})
	c.RetryWindow = 2 * time.Second
	c.RetryDelay = time.Millisecond
	go func() {
		time.Sleep(30 * time.Millisecond)
		elected.Store(true)
	}()
	resp, err := c.Call(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("call during election: %v", err)
	}
	if string(resp) != "done" {
		t.Errorf("resp = %q", resp)
	}
}

func TestGivesUpAfterRetryWindow(t *testing.T) {
	tr := transport.NewInProc()
	c := New(tr, []string{"nowhere"})
	c.RetryWindow = 50 * time.Millisecond
	c.RetryDelay = 5 * time.Millisecond
	start := time.Now()
	_, err := c.Call(context.Background(), "m", nil)
	if !errors.Is(err, ErrNoLeader) {
		t.Errorf("err = %v, want ErrNoLeader", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("retry window not respected")
	}
}

func TestApplicationErrorsPassThrough(t *testing.T) {
	tr := transport.NewInProc()
	ln, err := tr.Listen("cp0", func(string, []byte) ([]byte, error) {
		return nil, errors.New("validation failed")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := New(tr, []string{"cp0"})
	_, err = c.Call(context.Background(), "m", nil)
	if err == nil || errors.Is(err, ErrNoLeader) {
		t.Errorf("application error should pass through, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	tr := transport.NewInProc()
	c := New(tr, []string{"nowhere"})
	c.RetryWindow = time.Hour
	c.RetryDelay = 10 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, "m", nil)
	if err == nil {
		t.Fatalf("expected error")
	}
}

func TestRedirectHintSkipsProbing(t *testing.T) {
	tr := transport.NewInProc()
	// cp0 is a follower that names cp2 as its leader; cp1 counts calls and
	// must never be probed — the hint jumps the client straight to cp2.
	ln0, err := tr.Listen("cp0", func(string, []byte) ([]byte, error) {
		return nil, errors.New(ErrNotLeaderText + "; leader=cp2")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln0.Close()
	var cp1Calls atomic.Int64
	ln1, err := tr.Listen("cp1", func(string, []byte) ([]byte, error) {
		cp1Calls.Add(1)
		return nil, errors.New(ErrNotLeaderText)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	ln2, err := tr.Listen("cp2", leaderHandler("ok"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()

	c := New(tr, []string{"cp0", "cp1", "cp2"})
	resp, err := c.Call(context.Background(), "m", nil)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(resp) != "ok" {
		t.Errorf("resp = %q", resp)
	}
	if n := cp1Calls.Load(); n != 0 {
		t.Errorf("cp1 probed %d times despite redirect hint", n)
	}
	c.mu.Lock()
	leader := c.leader
	c.mu.Unlock()
	if leader != 2 {
		t.Errorf("cached leader index = %d, want 2", leader)
	}
}

func TestLeaderHintParsing(t *testing.T) {
	cases := []struct {
		msg, want string
	}{
		{ErrNotLeaderText + "; leader=cp1:7000", "cp1:7000"},
		{ErrNotLeaderText + "; leader=cp2:7000; retry", "cp2:7000"},
		{ErrNotLeaderText, ""},
		{ErrNotLeaderText + "; leader=", ""},
	}
	for _, tc := range cases {
		if got := leaderHint(&transport.RemoteError{Msg: tc.msg}); got != tc.want {
			t.Errorf("leaderHint(%q) = %q, want %q", tc.msg, got, tc.want)
		}
	}
	if got := leaderHint(errors.New("leader=cp0")); got != "" {
		t.Errorf("non-remote error should yield no hint, got %q", got)
	}
}

func TestCallReadPrefersFollowers(t *testing.T) {
	tr := transport.NewInProc()
	var leaderCalls, followerCalls atomic.Int64
	ln0, err := tr.Listen("cp0", func(string, []byte) ([]byte, error) {
		leaderCalls.Add(1)
		return []byte("from-leader"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln0.Close()
	for _, addr := range []string{"cp1", "cp2"} {
		ln, err := tr.Listen(addr, func(string, []byte) ([]byte, error) {
			followerCalls.Add(1)
			return []byte("from-follower"), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
	}

	c := New(tr, []string{"cp0", "cp1", "cp2"})
	// Establish cp0 as the cached leader.
	if _, err := c.Call(context.Background(), "w", nil); err != nil {
		t.Fatal(err)
	}
	leaderCalls.Store(0)
	for i := 0; i < 20; i++ {
		resp, err := c.CallRead(context.Background(), "r", nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(resp) != "from-follower" {
			t.Errorf("read %d served by leader", i)
		}
	}
	if n := leaderCalls.Load(); n != 0 {
		t.Errorf("leader served %d reads with healthy followers", n)
	}
	if n := followerCalls.Load(); n != 20 {
		t.Errorf("followers served %d reads, want 20", n)
	}
}

func TestCallReadCooldownAfterRefusal(t *testing.T) {
	tr := transport.NewInProc()
	ln0, err := tr.Listen("cp0", leaderHandler("from-leader"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln0.Close()
	var followerProbes atomic.Int64
	// Follower reads disabled: cp1 refuses every read.
	ln1, err := tr.Listen("cp1", func(string, []byte) ([]byte, error) {
		followerProbes.Add(1)
		return nil, errors.New(ErrNotLeaderText + "; leader=cp0")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()

	c := New(tr, []string{"cp0", "cp1"})
	c.ReadCooldown = time.Hour
	if _, err := c.Call(context.Background(), "w", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		resp, err := c.CallRead(context.Background(), "r", nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(resp) != "from-leader" {
			t.Errorf("read %d = %q, want leader fallback", i, resp)
		}
	}
	// The first read probes the follower, gets refused, and arms the
	// cooldown; the nine that follow must go straight to the leader.
	if n := followerProbes.Load(); n != 1 {
		t.Errorf("follower probed %d times, want 1 (cooldown)", n)
	}
}

func TestCallReadSingleReplicaUsesCall(t *testing.T) {
	tr := transport.NewInProc()
	ln, err := tr.Listen("cp0", leaderHandler("solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := New(tr, []string{"cp0"})
	resp, err := c.CallRead(context.Background(), "r", nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(resp) != "solo" {
		t.Errorf("resp = %q", resp)
	}
}

func TestCallWithRetryOutlastsOutage(t *testing.T) {
	tr := transport.NewInProc()
	c := New(tr, []string{"cp0"})
	c.RetryWindow = 10 * time.Millisecond
	c.RetryDelay = time.Millisecond
	c.RetryDelayMax = 5 * time.Millisecond

	// Nothing listens yet: plain Call exhausts its window and fails, but
	// CallWithRetry keeps cycling until the replica comes up.
	go func() {
		time.Sleep(60 * time.Millisecond)
		if _, err := tr.Listen("cp0", leaderHandler("back")); err != nil {
			panic(err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.CallWithRetry(ctx, "m", nil)
	if err != nil {
		t.Fatalf("retry call: %v", err)
	}
	if string(resp) != "back" {
		t.Errorf("resp = %q", resp)
	}
}

func TestCallWithRetryStopsOnApplicationError(t *testing.T) {
	tr := transport.NewInProc()
	var calls atomic.Int64
	ln, err := tr.Listen("cp0", func(string, []byte) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("validation failed")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c := New(tr, []string{"cp0"})
	if _, err := c.CallWithRetry(context.Background(), "m", nil); err == nil {
		t.Fatalf("expected application error")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("application error retried %d times, want 1", n)
	}
}

func TestIsUnavailable(t *testing.T) {
	unavailable := []error{
		ErrNoLeader,
		errors.Join(ErrNoLeader, errors.New("ctx")),
		transport.ErrUnreachable,
		&transport.RemoteError{Msg: ErrNotLeaderText + "; leader=cp1"},
		context.DeadlineExceeded,
	}
	for _, err := range unavailable {
		if !IsUnavailable(err) {
			t.Errorf("IsUnavailable(%v) = false, want true", err)
		}
	}
	fatal := []error{
		nil,
		errors.New("validation failed"),
		&transport.RemoteError{Msg: "unknown function"},
	}
	for _, err := range fatal {
		if IsUnavailable(err) {
			t.Errorf("IsUnavailable(%v) = true, want false", err)
		}
	}
}

func TestNoAddresses(t *testing.T) {
	c := New(transport.NewInProc(), nil)
	if _, err := c.Call(context.Background(), "m", nil); err == nil {
		t.Errorf("expected error with no addresses")
	}
	if len(c.Addrs()) != 0 {
		t.Errorf("Addrs should be empty")
	}
}
