package versioning

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestTransparentWithoutSplit(t *testing.T) {
	r := NewRouter()
	if got := r.Resolve("fn", 42); got != "fn" {
		t.Errorf("Resolve = %q, want passthrough", got)
	}
}

func TestSetSplitValidation(t *testing.T) {
	r := NewRouter()
	if err := r.SetSplit("f"); !errors.Is(err, ErrNoVersions) {
		t.Errorf("empty split: %v", err)
	}
	if err := r.SetSplit("f", Version{Function: "f@v1", Weight: 0}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("zero weight: %v", err)
	}
	if err := r.SetSplit("f", Version{Function: "f@v1", Weight: -3}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("negative weight: %v", err)
	}
	if err := r.SetSplit("f", Version{Function: "", Weight: 1}); err == nil {
		t.Errorf("empty version name accepted")
	}
	if err := r.SetSplit("f", Version{Function: "f@v1", Weight: 1}); err != nil {
		t.Errorf("valid split rejected: %v", err)
	}
}

func TestResolveFollowsWeights(t *testing.T) {
	r := NewRouter()
	if err := r.SetSplit("f",
		Version{Function: "f@v1", Weight: 90},
		Version{Function: "f@v2", Weight: 10},
	); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for key := uint64(0); key < n; key++ {
		counts[r.Resolve("f", key)]++
	}
	fracV2 := float64(counts["f@v2"]) / n
	if math.Abs(fracV2-0.10) > 0.02 {
		t.Errorf("v2 share = %.3f, want ~0.10", fracV2)
	}
	if counts["f@v1"]+counts["f@v2"] != n {
		t.Errorf("resolved outside the split: %v", counts)
	}
}

func TestResolveStickyPerKey(t *testing.T) {
	r := NewRouter()
	r.SetSplit("f",
		Version{Function: "f@v1", Weight: 1},
		Version{Function: "f@v2", Weight: 1},
	)
	for key := uint64(0); key < 100; key++ {
		first := r.Resolve("f", key)
		for i := 0; i < 5; i++ {
			if got := r.Resolve("f", key); got != first {
				t.Fatalf("key %d flapped between versions", key)
			}
		}
	}
}

func TestPromoteAndRollback(t *testing.T) {
	r := NewRouter()
	r.SetSplit("f",
		Version{Function: "f@v1", Weight: 9},
		Version{Function: "f@v2", Weight: 1},
	)
	if err := r.Promote("f", "f@v2"); err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 100; key++ {
		if got := r.Resolve("f", key); got != "f@v2" {
			t.Fatalf("after promote, key %d resolved to %q", key, got)
		}
	}
	// Rollback = promote the old version.
	if err := r.Promote("f", "f@v1"); err == nil {
		t.Fatalf("promoting a version no longer in the split should fail")
	}
	r.SetSplit("f", Version{Function: "f@v1", Weight: 1})
	if got := r.Resolve("f", 7); got != "f@v1" {
		t.Errorf("rollback failed: %q", got)
	}
}

func TestPromoteUnknownFunctionCreatesSplit(t *testing.T) {
	r := NewRouter()
	if err := r.Promote("fresh", "fresh@v1"); err != nil {
		t.Fatalf("promote on unconfigured function: %v", err)
	}
	if got := r.Resolve("fresh", 1); got != "fresh@v1" {
		t.Errorf("Resolve = %q", got)
	}
}

func TestRemoveRestoresPassthrough(t *testing.T) {
	r := NewRouter()
	r.SetSplit("f", Version{Function: "f@v1", Weight: 1})
	r.Remove("f")
	if got := r.Resolve("f", 3); got != "f" {
		t.Errorf("Resolve after Remove = %q", got)
	}
}

func TestSplitAccessor(t *testing.T) {
	r := NewRouter()
	if r.Split("f") != nil && len(r.Split("f")) != 0 {
		t.Errorf("Split of unknown function should be empty")
	}
	r.SetSplit("f", Version{Function: "f@v2", Weight: 2}, Version{Function: "f@v1", Weight: 1})
	s := r.Split("f")
	if len(s) != 2 || s[0].Function != "f@v1" {
		t.Errorf("Split = %+v (should be sorted)", s)
	}
}

// TestQuickResolveAlwaysInSplit property-tests that resolution never
// escapes the configured version set and is deterministic.
func TestQuickResolveAlwaysInSplit(t *testing.T) {
	f := func(weights []uint8, key uint64) bool {
		r := NewRouter()
		var versions []Version
		valid := make(map[string]bool)
		for i, w := range weights {
			if len(versions) == 8 {
				break
			}
			name := "f@v" + string(rune('a'+i))
			versions = append(versions, Version{Function: name, Weight: int(w%100) + 1})
			valid[name] = true
		}
		if len(versions) == 0 {
			return r.Resolve("f", key) == "f"
		}
		if err := r.SetSplit("f", versions...); err != nil {
			return false
		}
		got := r.Resolve("f", key)
		return valid[got] && r.Resolve("f", key) == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
