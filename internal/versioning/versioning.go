// Package versioning implements function versioning with partial traffic
// steering — the Knative feature the paper lists as Dirigent's main
// missing capability and sketches the implementation for (§4,
// Limitations: "extending Function and Sandbox abstractions with a version
// number and ... adding a versioning-aware load-balancing policy in the
// data plane").
//
// Each version of a function is registered as its own Function (e.g.
// "resize@v2"), giving it independent sandboxes, autoscaling, and
// endpoints. The Router maps a logical function name to one of its
// versions by consistent weighted hashing on the invocation key, so a
// given client key always lands on the same version while aggregate
// traffic follows the configured weights — canary releases, blue/green
// cutovers, and instant rollbacks are weight updates.
package versioning

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Version is one weighted target of a logical function.
type Version struct {
	// Function is the fully qualified registered function name.
	Function string
	// Weight is the relative share of traffic (> 0).
	Weight int
}

// Errors returned by the Router.
var (
	ErrNoVersions    = errors.New("versioning: no versions given")
	ErrBadWeight     = errors.New("versioning: weight must be positive")
	ErrUnknownTarget = errors.New("versioning: unknown version")
)

// Router resolves logical function names to versioned targets. It is safe
// for concurrent use and designed to sit in the front-end load balancer or
// data plane, before endpoint selection.
type Router struct {
	mu     sync.RWMutex
	splits map[string][]Version
}

// NewRouter returns an empty router; unknown functions resolve to
// themselves, so the router is transparent until splits are configured.
func NewRouter() *Router {
	return &Router{splits: make(map[string][]Version)}
}

// SetSplit configures the traffic split for a logical function, replacing
// any previous configuration.
func (r *Router) SetSplit(function string, versions ...Version) error {
	if len(versions) == 0 {
		return ErrNoVersions
	}
	total := 0
	for _, v := range versions {
		if v.Weight <= 0 {
			return fmt.Errorf("%w: %s=%d", ErrBadWeight, v.Function, v.Weight)
		}
		if v.Function == "" {
			return fmt.Errorf("versioning: empty version function name")
		}
		total += v.Weight
	}
	_ = total
	cp := append([]Version(nil), versions...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Function < cp[j].Function })
	r.mu.Lock()
	r.splits[function] = cp
	r.mu.Unlock()
	return nil
}

// Promote routes 100% of the function's traffic to the given version.
func (r *Router) Promote(function, version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	split, ok := r.splits[function]
	if ok {
		found := false
		for _, v := range split {
			if v.Function == version {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: %s has no version %s", ErrUnknownTarget, function, version)
		}
	}
	r.splits[function] = []Version{{Function: version, Weight: 1}}
	return nil
}

// Remove drops the split; the logical name resolves to itself again.
func (r *Router) Remove(function string) {
	r.mu.Lock()
	delete(r.splits, function)
	r.mu.Unlock()
}

// Split returns the configured versions for a function (nil if none).
func (r *Router) Split(function string) []Version {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Version(nil), r.splits[function]...)
}

// Resolve maps a logical function name and invocation key to the versioned
// function that should serve it. Resolution is deterministic per key —
// repeated invocations with the same key stick to the same version — and
// proportional to weights across keys.
func (r *Router) Resolve(function string, key uint64) string {
	r.mu.RLock()
	split := r.splits[function]
	r.mu.RUnlock()
	if len(split) == 0 {
		return function
	}
	total := 0
	for _, v := range split {
		total += v.Weight
	}
	h := fnv.New64a()
	h.Write([]byte(function))
	var kb [8]byte
	for i := 0; i < 8; i++ {
		kb[i] = byte(key >> (8 * i))
	}
	h.Write(kb[:])
	point := int(h.Sum64() % uint64(total))
	for _, v := range split {
		point -= v.Weight
		if point < 0 {
			return v.Function
		}
	}
	return split[len(split)-1].Function
}
