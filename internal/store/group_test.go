package store

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"dirigent/internal/wal"
)

// TestGroupCommitConcurrentMutationsDurable verifies the store's
// two-phase apply (buffer + in-memory under the lock, durability wait
// outside it): concurrent HSets under wal.FsyncGroup are all durable
// after Close and replay with the same values.
func TestGroupCommitConcurrentMutationsDurable(t *testing.T) {
	const (
		writers = 8
		perW    = 40
	)
	path := filepath.Join(t.TempDir(), "group.aof")
	s, err := Open(path, wal.FsyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				field := fmt.Sprintf("w%d-f%d", w, i)
				if err := s.HSet("sandboxes", field, []byte(field)); err != nil {
					t.Errorf("hset: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rounds, records := s.SyncStats()
	if records != writers*perW {
		t.Errorf("SyncStats records = %d, want %d", records, writers*perW)
	}
	t.Logf("store group commit: %d records in %d fsyncs", records, rounds)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, wal.FsyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.HLen("sandboxes"); got != writers*perW {
		t.Fatalf("reopened store has %d fields, want %d", got, writers*perW)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			field := fmt.Sprintf("w%d-f%d", w, i)
			v, ok := s2.HGet("sandboxes", field)
			if !ok || string(v) != field {
				t.Fatalf("field %s = %q after replay, want itself", field, v)
			}
		}
	}
}

// TestReplicatedGroupCommitConcurrent drives concurrent writes through a
// Replicated store whose primary group-commits, checking primary and
// follower converge and every write is on disk.
func TestReplicatedGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "primary.aof")
	primary, err := Open(path, wal.FsyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	follower := NewMemory()
	r := NewReplicated(primary, follower)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				field := fmt.Sprintf("w%d-f%d", w, i)
				if err := r.HSet("functions", field, []byte(field)); err != nil {
					t.Errorf("hset: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p, f := primary.HLen("functions"), follower.HLen("functions"); p != 200 || f != 200 {
		t.Fatalf("primary %d / follower %d fields, want 200/200", p, f)
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path, wal.FsyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.HLen("functions"); got != 200 {
		t.Fatalf("reopened primary has %d fields, want 200", got)
	}
}
