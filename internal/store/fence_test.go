package store

import (
	"errors"
	"path/filepath"
	"testing"

	"dirigent/internal/wal"
)

func TestHBumpU64Monotonic(t *testing.T) {
	s := NewMemory()
	if got := s.HGetU64("fence", "1"); got != 0 {
		t.Fatalf("absent fence = %d, want 0", got)
	}
	if err := s.HBumpU64("fence", "1", 5); err != nil {
		t.Fatal(err)
	}
	if got := s.HGetU64("fence", "1"); got != 5 {
		t.Fatalf("fence = %d, want 5", got)
	}
	// Lower and equal bumps are durable no-ops.
	if err := s.HBumpU64("fence", "1", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.HBumpU64("fence", "1", 5); err != nil {
		t.Fatal(err)
	}
	if got := s.HGetU64("fence", "1"); got != 5 {
		t.Fatalf("fence after stale bumps = %d, want 5", got)
	}
	if err := s.HBumpU64("fence", "1", 9); err != nil {
		t.Fatal(err)
	}
	if got := s.HGetU64("fence", "1"); got != 9 {
		t.Fatalf("fence = %d, want 9", got)
	}
}

func TestHDelFenced(t *testing.T) {
	s := NewMemory()
	s.HSet("queue", "1-7", []byte("task"))

	// No fence recorded: any epoch (including zero) may delete.
	if err := s.HDelFenced("queue", "1-7", "fence", "1", 0); err != nil {
		t.Fatalf("unfenced delete: %v", err)
	}
	if _, ok := s.HGet("queue", "1-7"); ok {
		t.Fatal("record survived unfenced delete")
	}

	s.HSet("queue", "1-8", []byte("task"))
	s.HBumpU64("fence", "1", 4)
	err := s.HDelFenced("queue", "1-8", "fence", "1", 3)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale delete err = %v, want ErrFenced", err)
	}
	if _, ok := s.HGet("queue", "1-8"); !ok {
		t.Fatal("record deleted despite fence")
	}
	// Epoch equal to the fence is the owner of the fence: allowed.
	if err := s.HDelFenced("queue", "1-8", "fence", "1", 4); err != nil {
		t.Fatalf("at-fence delete: %v", err)
	}
	if _, ok := s.HGet("queue", "1-8"); ok {
		t.Fatal("record survived at-fence delete")
	}
}

func TestFenceMalformedReadsAsZero(t *testing.T) {
	s := NewMemory()
	s.HSet("fence", "1", []byte("garbage"))
	s.HSet("queue", "1-1", []byte("task"))
	if got := s.HGetU64("fence", "1"); got != 0 {
		t.Fatalf("malformed fence = %d, want 0", got)
	}
	if err := s.HDelFenced("queue", "1-1", "fence", "1", 0); err != nil {
		t.Fatalf("delete under malformed fence: %v", err)
	}
	// A bump replaces the malformed value.
	if err := s.HBumpU64("fence", "1", 2); err != nil {
		t.Fatal(err)
	}
	if got := s.HGetU64("fence", "1"); got != 2 {
		t.Fatalf("fence after bump = %d, want 2", got)
	}
}

func TestFencedOpsSurviveReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fenced.aof")
	s, err := Open(path, wal.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	s.HSet("queue", "1-1", []byte("settled"))
	s.HSet("queue", "1-2", []byte("pending"))
	if err := s.HBumpU64("fence", "1", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.HBumpU64("fence", "1", 3); err != nil { // no-op, no WAL record
		t.Fatal(err)
	}
	if err := s.HDelFenced("queue", "1-1", "fence", "1", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, wal.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.HGetU64("fence", "1"); got != 7 {
		t.Fatalf("fence after replay = %d, want 7", got)
	}
	if _, ok := s2.HGet("queue", "1-1"); ok {
		t.Fatal("fenced-delete target resurrected by replay")
	}
	if _, ok := s2.HGet("queue", "1-2"); !ok {
		t.Fatal("pending record lost in replay")
	}
	// The replayed fence still fences.
	if err := s2.HDelFenced("queue", "1-2", "fence", "1", 6); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale delete after replay err = %v, want ErrFenced", err)
	}
}
