package store

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"dirigent/internal/wal"
)

func TestMemoryKV(t *testing.T) {
	s := NewMemory()
	if _, ok := s.Get("missing"); ok {
		t.Errorf("Get(missing) should report absence")
	}
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || string(v) != "v" {
		t.Errorf("Get(k) = %q, %v", v, ok)
	}
	if s.Keys() != 1 {
		t.Errorf("Keys = %d", s.Keys())
	}
	if err := s.Del("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Errorf("Get after Del should report absence")
	}
}

func TestMemoryHashes(t *testing.T) {
	s := NewMemory()
	if err := s.HSet("functions", "f1", []byte("spec1")); err != nil {
		t.Fatal(err)
	}
	if err := s.HSet("functions", "f2", []byte("spec2")); err != nil {
		t.Fatal(err)
	}
	if s.HLen("functions") != 2 {
		t.Errorf("HLen = %d", s.HLen("functions"))
	}
	v, ok := s.HGet("functions", "f1")
	if !ok || string(v) != "spec1" {
		t.Errorf("HGet = %q, %v", v, ok)
	}
	all := s.HGetAll("functions")
	if len(all) != 2 || string(all["f2"]) != "spec2" {
		t.Errorf("HGetAll = %v", all)
	}
	if err := s.HDel("functions", "f1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.HGet("functions", "f1"); ok {
		t.Errorf("HGet after HDel should report absence")
	}
	if err := s.HDel("functions", "f2"); err != nil {
		t.Fatal(err)
	}
	if s.HLen("functions") != 0 {
		t.Errorf("hash should be empty")
	}
	// Deleting from a nonexistent hash must be a no-op.
	if err := s.HDel("nope", "x"); err != nil {
		t.Errorf("HDel on missing hash: %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.aof")
	s, err := Open(path, wal.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("cluster", []byte("epoch-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.HSet("workers", "w1", []byte("addr1")); err != nil {
		t.Fatal(err)
	}
	if err := s.HSet("workers", "w2", []byte("addr2")); err != nil {
		t.Fatal(err)
	}
	if err := s.HDel("workers", "w2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, wal.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("cluster"); !ok || string(v) != "epoch-1" {
		t.Errorf("Get after reopen = %q, %v", v, ok)
	}
	if _, ok := s2.HGet("workers", "w2"); ok {
		t.Errorf("deleted field resurrected after reopen")
	}
	if v, ok := s2.HGet("workers", "w1"); !ok || string(v) != "addr1" {
		t.Errorf("HGet after reopen = %q, %v", v, ok)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.aof")
	s, err := Open(path, wal.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	// Many overwrites of the same key bloat the AOF.
	for i := 0; i < 500; i++ {
		if err := s.Set("hot", bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, wal.FsyncNever)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer s2.Close()
	v, ok := s2.Get("hot")
	if !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(499 % 256)}, 64)) {
		t.Errorf("compacted value lost")
	}
}

func TestOpMarshalRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpSet, Key: "k", Value: []byte("v")},
		{Kind: OpDel, Key: "k"},
		{Kind: OpHSet, Key: "h", Field: "f", Value: []byte("x")},
		{Kind: OpHDel, Key: "h", Field: "f"},
	}
	for _, op := range ops {
		got, err := UnmarshalOp(op.Marshal())
		if err != nil {
			t.Fatalf("unmarshal %v: %v", op.Kind, err)
		}
		if got.Kind != op.Kind || got.Key != op.Key || got.Field != op.Field || !bytes.Equal(got.Value, op.Value) {
			t.Errorf("round trip %+v -> %+v", op, got)
		}
	}
}

// TestQuickOpRoundTrip property-tests AOF op serialization.
func TestQuickOpRoundTrip(t *testing.T) {
	f := func(kind uint8, key, field string, value []byte) bool {
		if len(key) > 60000 || len(field) > 60000 {
			return true
		}
		op := Op{Kind: OpKind(kind % 4), Key: key, Field: field, Value: value}
		got, err := UnmarshalOp(op.Marshal())
		if err != nil {
			return false
		}
		return got.Kind == op.Kind && got.Key == op.Key && got.Field == op.Field && bytes.Equal(got.Value, op.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplicationMirrorsWrites(t *testing.T) {
	primary := NewMemory()
	f1 := NewMemory()
	f2 := NewMemory()
	r := NewReplicated(primary, f1, f2)
	if err := r.HSet("functions", "f", []byte("spec")); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i, s := range []*Store{primary, f1, f2} {
		if v, ok := s.HGet("functions", "f"); !ok || string(v) != "spec" {
			t.Errorf("replica %d missing hash write", i)
		}
		if v, ok := s.Get("k"); !ok || string(v) != "v" {
			t.Errorf("replica %d missing kv write", i)
		}
	}
	if err := r.HDel("functions", "f"); err != nil {
		t.Fatal(err)
	}
	if err := r.Del("k"); err != nil {
		t.Fatal(err)
	}
	for i, s := range []*Store{primary, f1, f2} {
		if _, ok := s.HGet("functions", "f"); ok {
			t.Errorf("replica %d kept deleted hash field", i)
		}
		if _, ok := s.Get("k"); ok {
			t.Errorf("replica %d kept deleted key", i)
		}
	}
}

func TestReplicatedSyncBootstrapsNewFollower(t *testing.T) {
	primary := NewMemory()
	r := NewReplicated(primary)
	for i := 0; i < 20; i++ {
		if err := r.HSet("h", string(rune('a'+i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	late := NewMemory()
	if err := r.Sync(late); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if late.HLen("h") != 20 {
		t.Errorf("late follower has %d fields, want 20", late.HLen("h"))
	}
	// New writes must now reach the late follower too.
	if err := r.HSet("h", "zz", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, ok := late.HGet("h", "zz"); !ok || string(v) != "new" {
		t.Errorf("late follower missed post-sync write")
	}
}

func TestReplicatedReads(t *testing.T) {
	primary := NewMemory()
	r := NewReplicated(primary)
	if err := r.Set("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get("x"); !ok || string(v) != "1" {
		t.Errorf("Replicated.Get = %q, %v", v, ok)
	}
	if err := r.HSet("h", "f", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if all := r.HGetAll("h"); len(all) != 1 || string(all["f"]) != "2" {
		t.Errorf("Replicated.HGetAll = %v", all)
	}
	if r.Primary() != primary {
		t.Errorf("Primary identity lost")
	}
}

func TestDumpOpsReconstructsState(t *testing.T) {
	s := NewMemory()
	s.Set("a", []byte("1"))
	s.HSet("h", "f1", []byte("2"))
	s.HSet("h", "f2", []byte("3"))
	clone := NewMemory()
	for _, op := range s.DumpOps() {
		if err := clone.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := clone.Get("a"); string(v) != "1" {
		t.Errorf("clone missing key")
	}
	if clone.HLen("h") != 2 {
		t.Errorf("clone missing hash fields")
	}
}
