// Package store implements the Redis-like persistent key-value store that
// Dirigent's control plane uses for the minimal cluster state it persists
// (paper §4: Redis in append-only mode with fsync at each query, one
// replica co-located with each control plane replica).
//
// The store supports plain keys and hashes (field → value maps, one per
// object collection: functions, worker nodes, data planes). Every mutation
// is appended to a write-ahead log before it is acknowledged, and can be
// synchronously replicated to follower stores for strong consistency.
package store

import (
	"errors"
	"fmt"
	"sync"

	"dirigent/internal/codec"
	"dirigent/internal/wal"
)

// OpKind enumerates the mutation types recorded in the AOF.
type OpKind uint8

// Mutation kinds.
const (
	OpSet OpKind = iota
	OpDel
	OpHSet
	OpHDel
)

// Op is a single mutation. For hash operations, Key is the hash name and
// Field the member key.
type Op struct {
	Kind  OpKind
	Key   string
	Field string
	Value []byte
}

// Marshal encodes the op for the AOF.
func (o *Op) Marshal() []byte {
	e := codec.NewEncoder(16 + len(o.Key) + len(o.Field) + len(o.Value))
	e.U8(uint8(o.Kind))
	e.String(o.Key)
	e.String(o.Field)
	e.RawBytes(o.Value)
	return e.Bytes()
}

// UnmarshalOp decodes an op written by Op.Marshal.
func UnmarshalOp(b []byte) (Op, error) {
	d := codec.NewDecoder(b)
	var o Op
	o.Kind = OpKind(d.U8())
	o.Key = d.String()
	o.Field = d.String()
	if v := d.RawBytes(); len(v) > 0 {
		o.Value = append([]byte(nil), v...)
	}
	if err := d.Err(); err != nil {
		return Op{}, fmt.Errorf("store: unmarshal op: %w", err)
	}
	return o, nil
}

// Store is an in-memory KV + hash store with optional AOF persistence.
// It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	kv     map[string][]byte
	hashes map[string]map[string][]byte
	log    *wal.Log // nil for a purely in-memory store
}

// NewMemory returns a volatile store with no persistence, used for tests
// and for replicas that receive state via replication streams.
func NewMemory() *Store {
	return &Store{
		kv:     make(map[string][]byte),
		hashes: make(map[string]map[string][]byte),
	}
}

// Open returns a store persisted at path, replaying any existing AOF.
func Open(path string, policy wal.FsyncPolicy) (*Store, error) {
	s := NewMemory()
	log, err := wal.Open(path, policy, func(rec []byte) error {
		op, err := UnmarshalOp(rec)
		if err != nil {
			return err
		}
		s.applyLocked(op)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.log = log
	return s, nil
}

// applyLocked mutates in-memory state. Callers must hold mu or guarantee
// exclusive access (as during replay inside Open).
func (s *Store) applyLocked(op Op) {
	switch op.Kind {
	case OpSet:
		s.kv[op.Key] = op.Value
	case OpDel:
		delete(s.kv, op.Key)
	case OpHSet:
		h, ok := s.hashes[op.Key]
		if !ok {
			h = make(map[string][]byte)
			s.hashes[op.Key] = h
		}
		h[op.Field] = op.Value
	case OpHDel:
		if h, ok := s.hashes[op.Key]; ok {
			delete(h, op.Field)
			if len(h) == 0 {
				delete(s.hashes, op.Key)
			}
		}
	}
}

// Apply executes the mutation, persisting it first when an AOF is
// attached. Under wal.FsyncGroup the record is buffered and the memory
// state mutated under the store lock (so log order always matches apply
// order) while the durability wait happens outside it — concurrent
// Applys ride the same fsync instead of queueing one fsync each behind
// the store lock. Other policies complete the whole append under the
// lock, exactly like the seed.
func (s *Store) Apply(op Op) error {
	seq, err := s.applyBuffered(op)
	if err != nil {
		return err
	}
	return s.waitDurable(seq)
}

// applyBuffered persists and mutates under the store lock, returning the
// WAL sequence to pass to waitDurable (0 when nothing remains to wait
// for). Under FsyncNever/FsyncAlways the full append — including the
// per-mutation fsync — completes here, preserving the seed's atomicity:
// an append error leaves the in-memory state untouched. Under
// wal.FsyncGroup only the buffered write happens under the lock and the
// caller waits for the covering group fsync outside it; a group-fsync
// failure then poisons the log, so the store fails stop (every later
// mutation errors) rather than silently diverging memory from disk.
func (s *Store) applyBuffered(op Op) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyBufferedLocked(op)
}

// applyBufferedLocked is applyBuffered for callers that already hold mu —
// the fenced conditional ops check state and append under one critical
// section so the check-then-act is atomic.
func (s *Store) applyBufferedLocked(op Op) (uint64, error) {
	var seq uint64
	if s.log != nil {
		var err error
		if s.log.Policy() == wal.FsyncGroup {
			seq, err = s.log.Write(op.Marshal())
		} else {
			err = s.log.Append(op.Marshal())
		}
		if err != nil {
			return 0, err
		}
	}
	s.applyLocked(op)
	return seq, nil
}

// ApplyBatch executes a sequence of mutations under one lock acquisition
// and (when an AOF is attached) one durability wait covering the whole
// batch — the apply-side analogue of group commit, used by a replication
// follower absorbing a committed AppendEntries batch.
func (s *Store) ApplyBatch(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	var last uint64
	s.mu.Lock()
	for _, op := range ops {
		seq, err := s.applyBufferedLocked(op)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		if seq > last {
			last = seq
		}
	}
	s.mu.Unlock()
	return s.waitDurable(last)
}

// waitDurable blocks until the record with the given sequence is as
// durable as the store's fsync policy demands.
func (s *Store) waitDurable(seq uint64) error {
	if seq == 0 || s.log == nil {
		return nil
	}
	return s.log.Sync(seq)
}

// SyncStats reports the backing log's fsync rounds and records covered
// (both zero for a volatile store); records/rounds is the mean
// group-commit batch size.
func (s *Store) SyncStats() (rounds, records uint64) {
	if s.log == nil {
		return 0, 0
	}
	return s.log.SyncStats()
}

// Set stores value under key.
func (s *Store) Set(key string, value []byte) error {
	return s.Apply(Op{Kind: OpSet, Key: key, Value: value})
}

// Del removes key.
func (s *Store) Del(key string) error {
	return s.Apply(Op{Kind: OpDel, Key: key})
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.kv[key]
	return v, ok
}

// HSet stores value under field within hash.
func (s *Store) HSet(hash, field string, value []byte) error {
	return s.Apply(Op{Kind: OpHSet, Key: hash, Field: field, Value: value})
}

// HDel removes field from hash.
func (s *Store) HDel(hash, field string) error {
	return s.Apply(Op{Kind: OpHDel, Key: hash, Field: field})
}

// HGet returns the value of field within hash.
func (s *Store) HGet(hash, field string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.hashes[hash]
	if !ok {
		return nil, false
	}
	v, ok := h[field]
	return v, ok
}

// HGetAll returns a copy of all field → value pairs of hash.
func (s *Store) HGetAll(hash string) map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.hashes[hash]
	out := make(map[string][]byte, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// HLen returns the number of fields in hash.
func (s *Store) HLen(hash string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.hashes[hash])
}

// Keys returns the number of plain keys (not hashes).
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.kv)
}

// DumpOps returns the mutation sequence that reconstructs the current
// state, used for compaction and for bootstrapping a new replica.
func (s *Store) DumpOps() []Op {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ops []Op
	for k, v := range s.kv {
		ops = append(ops, Op{Kind: OpSet, Key: k, Value: v})
	}
	for hash, fields := range s.hashes {
		for f, v := range fields {
			ops = append(ops, Op{Kind: OpHSet, Key: hash, Field: f, Value: v})
		}
	}
	return ops
}

// Compact rewrites the AOF to contain only the live state.
func (s *Store) Compact() error {
	if s.log == nil {
		return nil
	}
	ops := s.DumpOps()
	recs := make([][]byte, len(ops))
	for i := range ops {
		recs[i] = ops[i].Marshal()
	}
	return s.log.Rewrite(recs)
}

// Close closes the AOF, if any.
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// Replicated wraps a primary store and synchronously mirrors every mutation
// to follower stores, giving the strongly consistent replication the paper's
// deployment achieves with a Redis replica per control-plane node. A write
// is acknowledged only after the primary's AOF append and every follower's
// apply have succeeded.
type Replicated struct {
	mu        sync.Mutex
	primary   *Store
	followers []*Store
}

// NewReplicated returns a replicated store over primary and followers.
func NewReplicated(primary *Store, followers ...*Store) *Replicated {
	return &Replicated{primary: primary, followers: followers}
}

// Primary returns the primary store for reads.
func (r *Replicated) Primary() *Store { return r.primary }

// Apply persists the op on the primary and mirrors it to all followers.
// The replication mutex orders ops identically everywhere but is released
// before any group-commit durability wait (primary's and followers'), so
// concurrent Applys on every replica share group-committed fsyncs
// instead of serializing behind each other's.
func (r *Replicated) Apply(op Op) error {
	type wait struct {
		s   *Store
		seq uint64
	}
	var firstErr error
	r.mu.Lock()
	pseq, err := r.primary.applyBuffered(op)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	waits := make([]wait, 0, 1+len(r.followers))
	waits = append(waits, wait{r.primary, pseq})
	for _, f := range r.followers {
		seq, err := f.applyBuffered(op)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		waits = append(waits, wait{f, seq})
	}
	r.mu.Unlock()
	for _, w := range waits {
		if err := w.s.waitDurable(w.seq); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Set stores value under key on the primary and all followers.
func (r *Replicated) Set(key string, value []byte) error {
	return r.Apply(Op{Kind: OpSet, Key: key, Value: value})
}

// Del removes key everywhere.
func (r *Replicated) Del(key string) error {
	return r.Apply(Op{Kind: OpDel, Key: key})
}

// HSet stores value under hash/field everywhere.
func (r *Replicated) HSet(hash, field string, value []byte) error {
	return r.Apply(Op{Kind: OpHSet, Key: hash, Field: field, Value: value})
}

// HDel removes hash/field everywhere.
func (r *Replicated) HDel(hash, field string) error {
	return r.Apply(Op{Kind: OpHDel, Key: hash, Field: field})
}

// HGetAll reads hash from the primary.
func (r *Replicated) HGetAll(hash string) map[string][]byte {
	return r.primary.HGetAll(hash)
}

// Get reads key from the primary.
func (r *Replicated) Get(key string) ([]byte, bool) {
	return r.primary.Get(key)
}

// Sync brings a new follower up to date with the primary's current state
// and adds it to the replication set.
func (r *Replicated) Sync(follower *Store) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, op := range r.primary.DumpOps() {
		if err := follower.Apply(op); err != nil {
			return err
		}
	}
	r.followers = append(r.followers, follower)
	return nil
}

// ErrNotLeader is returned by store front-ends that refuse writes on
// non-leader replicas.
var ErrNotLeader = errors.New("store: not leader")
