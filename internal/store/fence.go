package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrFenced is returned by fenced conditional mutations when the caller's
// epoch is older than the fence recorded in the store: a newer incarnation
// (or lessee) of the same logical owner has claimed the records, and the
// caller must stop acting on them.
var ErrFenced = errors.New("store: fenced")

// U64Bytes encodes v little-endian, the wire form fence values (and other
// persisted counters) use in store fields.
func U64Bytes(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// U64FromBytes decodes a value written by U64Bytes, reporting false for
// absent or malformed input.
func U64FromBytes(b []byte) (uint64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}

// fenceLocked reads hash/field as a fence epoch. Missing or malformed
// fences read as zero: a record set nobody ever fenced is drainable by
// anyone who legitimately reaches it.
func (s *Store) fenceLocked(hash, field string) uint64 {
	h, ok := s.hashes[hash]
	if !ok {
		return 0
	}
	v, _ := U64FromBytes(h[field])
	return v
}

// HGetU64 returns the u64 stored at hash/field (0 when absent).
func (s *Store) HGetU64(hash, field string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fenceLocked(hash, field)
}

// HBumpU64 raises the u64 at hash/field to v if v is greater than the
// stored value, and is a durable no-op otherwise. Only plain OpHSet
// records reach the WAL, so replay reproduces the same monotonic state
// without a dedicated op kind.
func (s *Store) HBumpU64(hash, field string, v uint64) error {
	s.mu.Lock()
	if v <= s.fenceLocked(hash, field) {
		s.mu.Unlock()
		return nil
	}
	seq, err := s.applyBufferedLocked(Op{Kind: OpHSet, Key: hash, Field: field, Value: U64Bytes(v)})
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.waitDurable(seq)
}

// HDelFenced deletes hash/field only if epoch is at least the fence
// recorded at fenceHash/fenceField, returning ErrFenced otherwise. The
// check and the delete share one critical section, so a fence bump
// ordered before the delete in the store is always respected; like
// HBumpU64 it appends only a plain OpHDel, keeping WAL replay
// deterministic.
func (s *Store) HDelFenced(hash, field, fenceHash, fenceField string, epoch uint64) error {
	s.mu.Lock()
	if fence := s.fenceLocked(fenceHash, fenceField); epoch < fence {
		s.mu.Unlock()
		return fmt.Errorf("%w: epoch %d < fence %d", ErrFenced, epoch, fence)
	}
	seq, err := s.applyBufferedLocked(Op{Kind: OpHDel, Key: hash, Field: field})
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.waitDurable(seq)
}
