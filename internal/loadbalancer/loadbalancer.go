// Package loadbalancer implements the data plane's invocation load
// balancing. Dirigent's default forwards invocations to the least-loaded
// sandbox, following Knative (paper §4); round-robin, random, and a
// CH-RLU-style consistent-hashing policy (Fuerst & Sharma, HPDC'22) are
// provided behind the same interface.
package loadbalancer

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dirigent/internal/core"
)

// Endpoint is one candidate sandbox with its instantaneous load.
type Endpoint struct {
	SandboxID core.SandboxID
	Addr      string
	// InFlight is the number of requests currently executing on the
	// sandbox (tracked by the data plane's concurrency throttler).
	InFlight int
	// Capacity is the sandbox's concurrency limit (1 in the paper's
	// evaluation, matching commercial FaaS).
	Capacity int
}

// Policy picks a sandbox for an invocation. A nil return means every
// endpoint is saturated and the request must queue.
type Policy interface {
	// Pick selects from eps for the given function and invocation key.
	Pick(function string, key uint64, eps []Endpoint) *Endpoint
	// Name identifies the policy.
	Name() string
}

// SnapshotEndpoint is one candidate in an immutable, copy-on-write
// endpoint snapshot. The data plane rebuilds the snapshot only when the
// endpoint set changes; between rebuilds, instantaneous load is read
// through InFlight, the per-endpoint counter shared with the concurrency
// throttler, so no per-pick slice of load copies needs to be built.
type SnapshotEndpoint struct {
	SandboxID core.SandboxID
	Addr      string
	// InFlight points at the live in-flight counter for the sandbox.
	InFlight *atomic.Int64
	// Capacity is the sandbox's concurrency limit.
	Capacity int
}

// TryAcquire CAS-claims one concurrency slot, failing when the endpoint
// is saturated. This is the data plane's lock-free throttler.
func (e *SnapshotEndpoint) TryAcquire() bool {
	for {
		cur := e.InFlight.Load()
		if cur >= int64(e.Capacity) {
			return false
		}
		if e.InFlight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// SnapshotPolicy is the optional warm-start fast path: PickIndex returns
// the index into eps of the chosen endpoint, or -1 when every endpoint
// is saturated. Implementations must be safe for concurrent use, must
// not retain eps, and must not allocate or take policy-global locks —
// this runs on the data plane's invoke hot path for every warm start.
type SnapshotPolicy interface {
	Policy
	PickIndex(function string, key uint64, eps []SnapshotEndpoint) int
}

// splitmix64 is a stateless mixer used for allocation-free, lock-free
// pseudo-random decisions on the snapshot hot path, seeded from the
// invocation key (the seeded-rng state in Pick would be a cross-function
// serialization point). Shared with the front end's rendezvous weights.
func splitmix64(x uint64) uint64 { return core.Splitmix64(x) }

// LeastLoaded picks the endpoint with the fewest in-flight requests that
// still has a free slot, breaking ties pseudo-randomly.
type LeastLoaded struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewLeastLoaded returns the default least-loaded policy.
func NewLeastLoaded(seed int64) *LeastLoaded {
	return &LeastLoaded{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (p *LeastLoaded) Pick(_ string, _ uint64, eps []Endpoint) *Endpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	ties := 0
	for i := range eps {
		e := &eps[i]
		if e.InFlight >= e.Capacity {
			continue
		}
		switch {
		case best < 0 || e.InFlight < eps[best].InFlight:
			best = i
			ties = 1
		case e.InFlight == eps[best].InFlight:
			ties++
			if p.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return nil
	}
	return &eps[best]
}

// PickIndex implements SnapshotPolicy. Ties break pseudo-randomly from
// the invocation key instead of the shared rng, keeping the hot path
// free of the policy mutex.
func (p *LeastLoaded) PickIndex(_ string, key uint64, eps []SnapshotEndpoint) int {
	r := splitmix64(key)
	best := -1
	var bestLoad int64
	ties := 0
	for i := range eps {
		e := &eps[i]
		load := e.InFlight.Load()
		if load >= int64(e.Capacity) {
			continue
		}
		switch {
		case best < 0 || load < bestLoad:
			best = i
			bestLoad = load
			ties = 1
		case load == bestLoad:
			ties++
			r = splitmix64(r)
			if r%uint64(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// RoundRobin cycles through endpoints with free slots, per function.
type RoundRobin struct {
	mu   sync.Mutex
	next map[string]int
	// cursors carries the per-function position for the lock-free
	// snapshot fast path (Pick and PickIndex keep independent cursors).
	cursors sync.Map // string -> *atomic.Uint64
}

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{next: make(map[string]int)}
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(function string, _ uint64, eps []Endpoint) *Endpoint {
	if len(eps) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	start := p.next[function]
	for i := 0; i < len(eps); i++ {
		idx := (start + i) % len(eps)
		if eps[idx].InFlight < eps[idx].Capacity {
			p.next[function] = idx + 1
			return &eps[idx]
		}
	}
	return nil
}

// PickIndex implements SnapshotPolicy via a per-function atomic cursor.
func (p *RoundRobin) PickIndex(function string, _ uint64, eps []SnapshotEndpoint) int {
	if len(eps) == 0 {
		return -1
	}
	cv, ok := p.cursors.Load(function)
	if !ok {
		cv, _ = p.cursors.LoadOrStore(function, new(atomic.Uint64))
	}
	start := int(cv.(*atomic.Uint64).Add(1) % uint64(len(eps)))
	for i := 0; i < len(eps); i++ {
		idx := (start + i) % len(eps)
		e := &eps[idx]
		if e.InFlight.Load() < int64(e.Capacity) {
			return idx
		}
	}
	return -1
}

// Random picks a uniformly random endpoint with a free slot.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a random policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Pick implements Policy.
func (p *Random) Pick(_ string, _ uint64, eps []Endpoint) *Endpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	chosen := -1
	n := 0
	for i := range eps {
		if eps[i].InFlight >= eps[i].Capacity {
			continue
		}
		n++
		if p.rng.Intn(n) == 0 {
			chosen = i
		}
	}
	if chosen < 0 {
		return nil
	}
	return &eps[chosen]
}

// PickIndex implements SnapshotPolicy with key-seeded reservoir
// sampling, so the hot path never touches the shared rng.
func (p *Random) PickIndex(_ string, key uint64, eps []SnapshotEndpoint) int {
	r := splitmix64(key)
	chosen := -1
	n := 0
	for i := range eps {
		e := &eps[i]
		if e.InFlight.Load() >= int64(e.Capacity) {
			continue
		}
		n++
		r = splitmix64(r)
		if r%uint64(n) == 0 {
			chosen = i
		}
	}
	return chosen
}

// CHRLU is a CH-RLU-style policy: consistent hashing on the invocation key
// for locality, with bounded-load forwarding — if the hashed sandbox is
// overloaded, the request walks the ring to the next sandbox with spare
// capacity, spreading load while preserving locality for warm caches.
// CHRLU builds its hash ring per pick and therefore does not implement
// SnapshotPolicy; the data plane falls back to the allocating Pick path.
type CHRLU struct {
	// LoadBound is the multiple of average load beyond which the hashed
	// endpoint is skipped (classic bounded-load consistent hashing uses
	// ~1.25).
	LoadBound float64
}

// NewCHRLU returns a CH-RLU policy with the conventional 1.25 load bound.
func NewCHRLU() *CHRLU { return &CHRLU{LoadBound: 1.25} }

// Name implements Policy.
func (p *CHRLU) Name() string { return "ch-rlu" }

// Pick implements Policy.
func (p *CHRLU) Pick(function string, key uint64, eps []Endpoint) *Endpoint {
	if len(eps) == 0 {
		return nil
	}
	// Ring order: endpoints sorted by hash of their sandbox ID.
	type ringEntry struct {
		hash uint64
		idx  int
	}
	ring := make([]ringEntry, len(eps))
	var totalLoad int
	for i := range eps {
		ring[i] = ringEntry{hash: hash64(function, uint64(eps[i].SandboxID)), idx: i}
		totalLoad += eps[i].InFlight
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	avgLoad := float64(totalLoad) / float64(len(eps))
	bound := p.LoadBound * (avgLoad + 1)

	h := hash64(function, key)
	start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	// First pass: respect the load bound.
	for i := 0; i < len(ring); i++ {
		e := &eps[ring[(start+i)%len(ring)].idx]
		if e.InFlight < e.Capacity && float64(e.InFlight) < bound {
			return e
		}
	}
	// Second pass: any free slot.
	for i := 0; i < len(ring); i++ {
		e := &eps[ring[(start+i)%len(ring)].idx]
		if e.InFlight < e.Capacity {
			return e
		}
	}
	return nil
}

func hash64(function string, v uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(function))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}
