// Package loadbalancer implements the data plane's invocation load
// balancing. Dirigent's default forwards invocations to the least-loaded
// sandbox, following Knative (paper §4); round-robin, random, and a
// CH-RLU-style consistent-hashing policy (Fuerst & Sharma, HPDC'22) are
// provided behind the same interface.
package loadbalancer

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"dirigent/internal/core"
)

// Endpoint is one candidate sandbox with its instantaneous load.
type Endpoint struct {
	SandboxID core.SandboxID
	Addr      string
	// InFlight is the number of requests currently executing on the
	// sandbox (tracked by the data plane's concurrency throttler).
	InFlight int
	// Capacity is the sandbox's concurrency limit (1 in the paper's
	// evaluation, matching commercial FaaS).
	Capacity int
}

// Policy picks a sandbox for an invocation. A nil return means every
// endpoint is saturated and the request must queue.
type Policy interface {
	// Pick selects from eps for the given function and invocation key.
	Pick(function string, key uint64, eps []Endpoint) *Endpoint
	// Name identifies the policy.
	Name() string
}

// LeastLoaded picks the endpoint with the fewest in-flight requests that
// still has a free slot, breaking ties pseudo-randomly.
type LeastLoaded struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewLeastLoaded returns the default least-loaded policy.
func NewLeastLoaded(seed int64) *LeastLoaded {
	return &LeastLoaded{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (p *LeastLoaded) Pick(_ string, _ uint64, eps []Endpoint) *Endpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	ties := 0
	for i := range eps {
		e := &eps[i]
		if e.InFlight >= e.Capacity {
			continue
		}
		switch {
		case best < 0 || e.InFlight < eps[best].InFlight:
			best = i
			ties = 1
		case e.InFlight == eps[best].InFlight:
			ties++
			if p.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return nil
	}
	return &eps[best]
}

// RoundRobin cycles through endpoints with free slots, per function.
type RoundRobin struct {
	mu   sync.Mutex
	next map[string]int
}

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{next: make(map[string]int)}
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(function string, _ uint64, eps []Endpoint) *Endpoint {
	if len(eps) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	start := p.next[function]
	for i := 0; i < len(eps); i++ {
		idx := (start + i) % len(eps)
		if eps[idx].InFlight < eps[idx].Capacity {
			p.next[function] = idx + 1
			return &eps[idx]
		}
	}
	return nil
}

// Random picks a uniformly random endpoint with a free slot.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a random policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Pick implements Policy.
func (p *Random) Pick(_ string, _ uint64, eps []Endpoint) *Endpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	chosen := -1
	n := 0
	for i := range eps {
		if eps[i].InFlight >= eps[i].Capacity {
			continue
		}
		n++
		if p.rng.Intn(n) == 0 {
			chosen = i
		}
	}
	if chosen < 0 {
		return nil
	}
	return &eps[chosen]
}

// CHRLU is a CH-RLU-style policy: consistent hashing on the invocation key
// for locality, with bounded-load forwarding — if the hashed sandbox is
// overloaded, the request walks the ring to the next sandbox with spare
// capacity, spreading load while preserving locality for warm caches.
type CHRLU struct {
	// LoadBound is the multiple of average load beyond which the hashed
	// endpoint is skipped (classic bounded-load consistent hashing uses
	// ~1.25).
	LoadBound float64
}

// NewCHRLU returns a CH-RLU policy with the conventional 1.25 load bound.
func NewCHRLU() *CHRLU { return &CHRLU{LoadBound: 1.25} }

// Name implements Policy.
func (p *CHRLU) Name() string { return "ch-rlu" }

// Pick implements Policy.
func (p *CHRLU) Pick(function string, key uint64, eps []Endpoint) *Endpoint {
	if len(eps) == 0 {
		return nil
	}
	// Ring order: endpoints sorted by hash of their sandbox ID.
	type ringEntry struct {
		hash uint64
		idx  int
	}
	ring := make([]ringEntry, len(eps))
	var totalLoad int
	for i := range eps {
		ring[i] = ringEntry{hash: hash64(function, uint64(eps[i].SandboxID)), idx: i}
		totalLoad += eps[i].InFlight
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	avgLoad := float64(totalLoad) / float64(len(eps))
	bound := p.LoadBound * (avgLoad + 1)

	h := hash64(function, key)
	start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	// First pass: respect the load bound.
	for i := 0; i < len(ring); i++ {
		e := &eps[ring[(start+i)%len(ring)].idx]
		if e.InFlight < e.Capacity && float64(e.InFlight) < bound {
			return e
		}
	}
	// Second pass: any free slot.
	for i := 0; i < len(ring); i++ {
		e := &eps[ring[(start+i)%len(ring)].idx]
		if e.InFlight < e.Capacity {
			return e
		}
	}
	return nil
}

func hash64(function string, v uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(function))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}
