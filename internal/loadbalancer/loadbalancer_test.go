package loadbalancer

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"dirigent/internal/core"
)

func eps(loads ...int) []Endpoint {
	out := make([]Endpoint, len(loads))
	for i, l := range loads {
		out[i] = Endpoint{
			SandboxID: core.SandboxID(i + 1),
			Addr:      "addr",
			InFlight:  l,
			Capacity:  1,
		}
	}
	return out
}

func epsWithCapacity(capacity int, loads ...int) []Endpoint {
	out := eps(loads...)
	for i := range out {
		out[i].Capacity = capacity
	}
	return out
}

func TestLeastLoadedPicksIdle(t *testing.T) {
	p := NewLeastLoaded(1)
	got := p.Pick("f", 1, epsWithCapacity(4, 3, 0, 2))
	if got == nil || got.SandboxID != 2 {
		t.Errorf("picked %+v, want sandbox 2", got)
	}
}

func TestLeastLoadedReturnsNilWhenSaturated(t *testing.T) {
	p := NewLeastLoaded(1)
	if got := p.Pick("f", 1, eps(1, 1, 1)); got != nil {
		t.Errorf("picked %+v from saturated set, want nil (queue)", got)
	}
}

func TestLeastLoadedEmpty(t *testing.T) {
	p := NewLeastLoaded(1)
	if got := p.Pick("f", 1, nil); got != nil {
		t.Errorf("picked from empty set")
	}
}

func TestRoundRobinCyclesFreeSlots(t *testing.T) {
	p := NewRoundRobin()
	e := eps(0, 0, 0)
	seen := make(map[core.SandboxID]int)
	for i := 0; i < 9; i++ {
		got := p.Pick("f", uint64(i), e)
		if got == nil {
			t.Fatal("nil pick")
		}
		seen[got.SandboxID]++
	}
	for id, n := range seen {
		if n != 3 {
			t.Errorf("sandbox %d picked %d times, want 3", id, n)
		}
	}
}

func TestRoundRobinPerFunctionState(t *testing.T) {
	p := NewRoundRobin()
	e := eps(0, 0)
	a := p.Pick("f1", 0, e)
	b := p.Pick("f2", 0, e)
	if a == nil || b == nil {
		t.Fatal("nil pick")
	}
	if a.SandboxID != b.SandboxID {
		t.Errorf("independent functions should start at the same index")
	}
}

func TestRandomSkipsSaturated(t *testing.T) {
	p := NewRandom(3)
	e := eps(1, 0, 1)
	for i := 0; i < 50; i++ {
		got := p.Pick("f", uint64(i), e)
		if got == nil || got.SandboxID != 2 {
			t.Fatalf("picked %+v, want only free sandbox 2", got)
		}
	}
}

func TestCHRLUDeterministicForKey(t *testing.T) {
	p := NewCHRLU()
	e := epsWithCapacity(8, 0, 0, 0, 0)
	first := p.Pick("f", 42, e)
	for i := 0; i < 10; i++ {
		got := p.Pick("f", 42, e)
		if got.SandboxID != first.SandboxID {
			t.Fatalf("same key mapped to different sandboxes: %d vs %d", got.SandboxID, first.SandboxID)
		}
	}
}

func TestCHRLUForwardsWhenOverloaded(t *testing.T) {
	p := NewCHRLU()
	e := epsWithCapacity(8, 0, 0, 0, 0)
	home := p.Pick("f", 42, e)
	// Saturate the home endpoint far above the load bound; the same key
	// must forward to a different sandbox.
	for i := range e {
		if e[i].SandboxID == home.SandboxID {
			e[i].InFlight = 7
		}
	}
	got := p.Pick("f", 42, e)
	if got == nil {
		t.Fatal("nil pick")
	}
	if got.SandboxID == home.SandboxID {
		t.Errorf("CH-RLU did not forward away from the overloaded home node")
	}
}

func TestCHRLUFallsBackToAnyFreeSlot(t *testing.T) {
	p := NewCHRLU()
	// Everything above the bound but one endpoint still has capacity.
	e := epsWithCapacity(8, 7, 7, 7)
	e[1].InFlight = 8 // full
	got := p.Pick("f", 9, e)
	if got == nil {
		t.Fatalf("CH-RLU returned nil although free slots exist")
	}
	if got.InFlight >= got.Capacity {
		t.Errorf("picked a full endpoint")
	}
}

func TestCHRLUEmptyAndSaturated(t *testing.T) {
	p := NewCHRLU()
	if p.Pick("f", 1, nil) != nil {
		t.Errorf("empty set should return nil")
	}
	if p.Pick("f", 1, eps(1, 1)) != nil {
		t.Errorf("saturated set should return nil")
	}
}

// TestQuickPoliciesNeverPickFull property-tests the concurrency-throttling
// invariant: no policy ever returns an endpoint at capacity.
func TestQuickPoliciesNeverPickFull(t *testing.T) {
	policies := []Policy{NewLeastLoaded(5), NewRoundRobin(), NewRandom(5), NewCHRLU()}
	f := func(loads []uint8, key uint64) bool {
		if len(loads) == 0 {
			return true
		}
		e := make([]Endpoint, len(loads))
		anyFree := false
		for i, l := range loads {
			e[i] = Endpoint{
				SandboxID: core.SandboxID(i + 1),
				InFlight:  int(l % 3),
				Capacity:  2,
			}
			if e[i].InFlight < e[i].Capacity {
				anyFree = true
			}
		}
		for _, p := range policies {
			got := p.Pick("fn", key, e)
			if got == nil {
				if anyFree {
					return false // policy starved a free endpoint
				}
				continue
			}
			if got.InFlight >= got.Capacity {
				return false // throttling violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLeastLoadedTieBreakSpreads(t *testing.T) {
	p := NewLeastLoaded(11)
	e := epsWithCapacity(4, 0, 0, 0)
	seen := make(map[core.SandboxID]bool)
	for i := 0; i < 200; i++ {
		got := p.Pick("f", uint64(i), e)
		seen[got.SandboxID] = true
	}
	if len(seen) < 2 {
		t.Errorf("tie-break always picked the same endpoint")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{NewLeastLoaded(1), "least-loaded"},
		{NewRoundRobin(), "round-robin"},
		{NewRandom(1), "random"},
		{NewCHRLU(), "ch-rlu"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

// snapEps builds a snapshot with the given in-flight counts and a shared
// capacity, mirroring epsWithCapacity for the fast path.
func snapEps(capacity int, inflight ...int) []SnapshotEndpoint {
	eps := make([]SnapshotEndpoint, len(inflight))
	for i, n := range inflight {
		ctr := new(atomic.Int64)
		ctr.Store(int64(n))
		eps[i] = SnapshotEndpoint{
			SandboxID: core.SandboxID(i + 1),
			Addr:      "w:9000",
			InFlight:  ctr,
			Capacity:  capacity,
		}
	}
	return eps
}

func TestPickIndexMatchesPickSemantics(t *testing.T) {
	for _, p := range []SnapshotPolicy{
		NewLeastLoaded(1), NewRoundRobin(), NewRandom(1),
	} {
		t.Run(p.Name(), func(t *testing.T) {
			// Least-loaded free slot must win; saturated must be skipped.
			eps := snapEps(2, 2, 0, 2, 1)
			for key := uint64(0); key < 50; key++ {
				idx := p.PickIndex("f", key, eps)
				if idx < 0 {
					t.Fatalf("key %d: no pick despite free slots", key)
				}
				if eps[idx].InFlight.Load() >= int64(eps[idx].Capacity) {
					t.Fatalf("key %d: picked saturated endpoint %d", key, idx)
				}
			}
			// Fully saturated: -1.
			if idx := p.PickIndex("f", 1, snapEps(1, 1, 1, 1)); idx != -1 {
				t.Errorf("saturated PickIndex = %d, want -1", idx)
			}
			// Empty: -1.
			if idx := p.PickIndex("f", 1, nil); idx != -1 {
				t.Errorf("empty PickIndex = %d, want -1", idx)
			}
		})
	}
}

func TestPickIndexLeastLoadedPrefersIdle(t *testing.T) {
	p := NewLeastLoaded(1)
	eps := snapEps(4, 3, 0, 2, 3)
	for key := uint64(0); key < 20; key++ {
		if idx := p.PickIndex("f", key, eps); idx != 1 {
			t.Fatalf("key %d: PickIndex = %d, want 1 (idle)", key, idx)
		}
	}
}

func TestPickIndexTieBreakSpreads(t *testing.T) {
	p := NewLeastLoaded(11)
	eps := snapEps(4, 0, 0, 0)
	seen := make(map[int]bool)
	for key := uint64(0); key < 200; key++ {
		seen[p.PickIndex("f", key, eps)] = true
	}
	if len(seen) < 2 {
		t.Errorf("key-seeded tie-break always picked the same endpoint")
	}
}

func TestPickIndexRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	eps := snapEps(1, 0, 0, 0)
	seen := make(map[int]int)
	for key := uint64(0); key < 30; key++ {
		seen[p.PickIndex("f", key, eps)]++
	}
	for i := 0; i < 3; i++ {
		if seen[i] == 0 {
			t.Errorf("round-robin cursor never reached endpoint %d: %v", i, seen)
		}
	}
}

func TestTryAcquireThrottles(t *testing.T) {
	eps := snapEps(2, 0)
	e := &eps[0]
	if !e.TryAcquire() || !e.TryAcquire() {
		t.Fatal("acquire failed with free slots")
	}
	if e.TryAcquire() {
		t.Fatal("acquire succeeded beyond capacity")
	}
	e.InFlight.Add(-1)
	if !e.TryAcquire() {
		t.Fatal("acquire failed after release")
	}
}

// TestPickIndexAllocationFree pins the contract that matters to the data
// plane: the snapshot fast path performs zero allocations per pick.
func TestPickIndexAllocationFree(t *testing.T) {
	eps := snapEps(2, 1, 0, 1, 0, 1, 0, 1, 0)
	for _, p := range []SnapshotPolicy{
		NewLeastLoaded(1), NewRoundRobin(), NewRandom(1),
	} {
		t.Run(p.Name(), func(t *testing.T) {
			p.PickIndex("f", 1, eps) // warm per-function state (RR cursor)
			key := uint64(0)
			allocs := testing.AllocsPerRun(1000, func() {
				key++
				if p.PickIndex("f", key, eps) < 0 {
					t.Fatal("no pick")
				}
			})
			if allocs != 0 {
				t.Errorf("PickIndex allocates %.1f per op, want 0", allocs)
			}
		})
	}
}
