// Package telemetry provides the measurement primitives used throughout the
// repository: latency histograms with percentile queries, CDF extraction,
// counters, gauges, and time series. The experiment harness renders these
// into the rows and series reported in the paper's tables and figures.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram records duration samples and answers percentile queries.
// It keeps raw samples, which is appropriate for experiment-scale data
// (up to a few million points) and gives exact percentiles.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // milliseconds (or the configured unit)
	sorted  bool
	// unit suffixes rendered summary values; "ms" unless overridden via
	// NewCountHistogram (batch sizes and other unitless counts).
	unit string
}

// NewHistogram returns an empty histogram of millisecond samples.
func NewHistogram() *Histogram { return &Histogram{unit: "ms"} }

// NewCountHistogram returns an empty histogram of unitless samples
// (batch sizes, queue depths) whose summary renders without a unit.
func NewCountHistogram() *Histogram { return &Histogram{} }

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveMs(float64(d) / float64(time.Millisecond))
}

// ObserveMs records one sample expressed in milliseconds.
func (h *Histogram) ObserveMs(ms float64) {
	h.mu.Lock()
	h.samples = append(h.samples, ms)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) in milliseconds
// using nearest-rank interpolation. It returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(p)
}

func (h *Histogram) percentileLocked(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Mean returns the arithmetic mean of the samples in milliseconds.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += s
	}
	return sum / float64(len(h.samples))
}

// Max returns the largest sample in milliseconds.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Min returns the smallest sample in milliseconds.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// GeoMean returns the geometric mean of the samples. Samples that are zero
// or negative are clamped to a small positive epsilon so that a handful of
// zero-latency samples cannot collapse the whole statistic.
func (h *Histogram) GeoMean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	const eps = 1e-9
	var logSum float64
	for _, s := range h.samples {
		if s < eps {
			s = eps
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(h.samples)))
}

// Snapshot returns a copy of the raw samples in milliseconds, sorted
// ascending.
func (h *Histogram) Snapshot() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sortLocked()
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	Value    float64 // sample value (milliseconds for latency histograms)
	Fraction float64 // cumulative fraction in (0, 1]
}

// CDF returns an empirical CDF downsampled to at most points entries
// (plus the exact min and max).
func (h *Histogram) CDF(points int) []CDFPoint {
	s := h.Snapshot()
	if len(s) == 0 {
		return nil
	}
	if points < 2 {
		points = 2
	}
	out := make([]CDFPoint, 0, points)
	step := float64(len(s)-1) / float64(points-1)
	for i := 0; i < points; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		out = append(out, CDFPoint{Value: s[idx], Fraction: float64(idx+1) / float64(len(s))})
	}
	return out
}

// Summary renders a one-line summary with common percentiles.
func (h *Histogram) Summary() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return "n=0"
	}
	u := h.unit
	return fmt.Sprintf("n=%d p50=%.2f%s p95=%.2f%s p99=%.2f%s max=%.2f%s",
		n, h.percentileLocked(50), u, h.percentileLocked(95), u, h.percentileLocked(99), u, h.percentileLocked(100), u)
}

// Reset discards all recorded samples, e.g. to separate a harness's
// warm-up phase from its measurement phase.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

// Merge adds all samples from other into h.
func (h *Histogram) Merge(other *Histogram) {
	s := other.Snapshot()
	h.mu.Lock()
	h.samples = append(h.samples, s...)
	h.sorted = false
	h.mu.Unlock()
}

// FormatCDFTable renders a CDF as an aligned two-column text table,
// used by the experiment harness for figure series output.
func FormatCDFTable(name string, cdf []CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", name)
	fmt.Fprintf(&b, "%-14s %s\n", "value_ms", "cdf")
	for _, p := range cdf {
		fmt.Fprintf(&b, "%-14.3f %.4f\n", p.Value, p.Fraction)
	}
	return b.String()
}
