package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.ObserveMs(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if p := h.Percentile(50); math.Abs(p-50.5) > 1 {
		t.Errorf("p50 = %v", p)
	}
	if p := h.Percentile(99); math.Abs(p-99) > 1.5 {
		t.Errorf("p99 = %v", p)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.GeoMean() != 0 {
		t.Errorf("empty histogram should return zeros")
	}
	if h.CDF(10) != nil {
		t.Errorf("empty CDF should be nil")
	}
	if h.Summary() != "n=0" {
		t.Errorf("Summary = %q", h.Summary())
	}
}

func TestHistogramGeoMean(t *testing.T) {
	h := NewHistogram()
	h.ObserveMs(1)
	h.ObserveMs(100)
	if g := h.GeoMean(); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", g)
	}
	// Zero samples must not collapse the geometric mean to zero.
	h2 := NewHistogram()
	h2.ObserveMs(0)
	h2.ObserveMs(100)
	if g := h2.GeoMean(); g <= 0 {
		t.Errorf("GeoMean with zero sample = %v", g)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.Observe(1500 * time.Microsecond)
	if p := h.Percentile(50); math.Abs(p-1.5) > 1e-9 {
		t.Errorf("duration sample = %v ms", p)
	}
}

// TestQuickPercentileBounds property-tests that percentiles stay within
// the sample range and are monotonic in p.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(values []float64) bool {
		h := NewHistogram()
		var min, max float64
		n := 0
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.ObserveMs(v)
			if n == 0 || v < min {
				min = v
			}
			if n == 0 || v > max {
				max = v
			}
			n++
		}
		if n == 0 {
			return true
		}
		prev := math.Inf(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			val := h.Percentile(p)
			if val < min-1e-9 || val > max+1e-9 {
				return false
			}
			if val < prev-1e-9 {
				return false // non-monotonic
			}
			prev = val
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.ObserveMs(float64(i))
	}
	cdf := h.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("CDF has %d points", len(cdf))
	}
	if cdf[0].Value != 1 {
		t.Errorf("CDF starts at %v", cdf[0].Value)
	}
	if cdf[len(cdf)-1].Value != 1000 || cdf[len(cdf)-1].Fraction != 1 {
		t.Errorf("CDF ends at %+v", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Errorf("CDF not monotonic at %d", i)
		}
	}
	table := FormatCDFTable("test", cdf)
	if !strings.Contains(table, "# test") || !strings.Contains(table, "cdf") {
		t.Errorf("FormatCDFTable output malformed: %q", table[:40])
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	a.ObserveMs(1)
	b.ObserveMs(3)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 3 {
		t.Errorf("merge failed: count=%d max=%v", a.Count(), a.Max())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.ObserveMs(float64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Counter = %d", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Gauge = %d", g.Value())
	}
}

func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries()
	ts.Record(100*time.Millisecond, 1)
	ts.Record(900*time.Millisecond, 1)
	ts.Record(1100*time.Millisecond, 1)
	ts.Record(2500*time.Millisecond, 2)
	buckets := ts.BucketPerSecond()
	want := []float64{2, 1, 2}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v", buckets)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, buckets[i], want[i])
		}
	}
	if ts.Len() != 4 {
		t.Errorf("Len = %d", ts.Len())
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries()
	if ts.BucketPerSecond() != nil {
		t.Errorf("empty series should bucket to nil")
	}
}

func TestComputeStats(t *testing.T) {
	st := ComputeStats([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if st.N != 10 || st.Avg != 5.5 || st.Max != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.P50 < 5 || st.P50 > 6 {
		t.Errorf("p50 = %v", st.P50)
	}
	if ComputeStats(nil).N != 0 {
		t.Errorf("empty stats should be zero")
	}
	if s := st.String(); !strings.Contains(s, "n=10") {
		t.Errorf("String = %q", s)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	r.Gauge("b").Set(3)
	r.Histogram("c").ObserveMs(1)
	if r.Counter("a").Value() != 2 {
		t.Errorf("counter identity not preserved")
	}
	dump := r.Dump()
	for _, want := range []string{"a 2", "b 3", "c n=1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}
