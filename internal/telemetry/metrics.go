package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// TimeSeries records (time, value) points, e.g. sandbox creations per
// second over an experiment, or per-invocation slowdown around a failure.
type TimeSeries struct {
	mu     sync.Mutex
	points []TimePoint
}

// TimePoint is a single observation of a time series.
type TimePoint struct {
	At    time.Duration // offset from experiment start
	Value float64
}

// NewTimeSeries returns an empty time series.
func NewTimeSeries() *TimeSeries { return &TimeSeries{} }

// Record appends one point.
func (ts *TimeSeries) Record(at time.Duration, v float64) {
	ts.mu.Lock()
	ts.points = append(ts.points, TimePoint{At: at, Value: v})
	ts.mu.Unlock()
}

// Points returns a copy of all points sorted by time.
func (ts *TimeSeries) Points() []TimePoint {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TimePoint, len(ts.points))
	copy(out, ts.points)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded points.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.points)
}

// BucketPerSecond aggregates the series into per-second sums, returning one
// value per second from 0 to the last observation. Used to turn individual
// sandbox-creation events into a creations-per-second series (Figure 3).
func (ts *TimeSeries) BucketPerSecond() []float64 {
	pts := ts.Points()
	if len(pts) == 0 {
		return nil
	}
	last := pts[len(pts)-1].At
	buckets := make([]float64, int(last/time.Second)+1)
	for _, p := range pts {
		buckets[int(p.At/time.Second)] += p.Value
	}
	return buckets
}

// Stats summarizes a float slice with the percentile statistics the paper
// reports for Figure 3 (avg, p50, p95, p99).
type Stats struct {
	Avg, P50, P95, P99, Max float64
	N                       int
}

// ComputeStats computes summary statistics over values.
func ComputeStats(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	pct := func(p float64) float64 {
		idx := int(p / 100 * float64(len(s)-1))
		return s[idx]
	}
	return Stats{
		Avg: sum / float64(len(s)),
		P50: pct(50),
		P95: pct(95),
		P99: pct(99),
		Max: s[len(s)-1],
		N:   len(s),
	}
}

// String renders the stats in a compact single line.
func (st Stats) String() string {
	return fmt.Sprintf("n=%d avg=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
		st.N, st.Avg, st.P50, st.P95, st.P99, st.Max)
}

// Registry is a named collection of counters, gauges and histograms that a
// component exposes, mirroring Dirigent's per-component HTTP metrics
// endpoints (paper §4, "Operations and monitoring").
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// CountHistogram returns the histogram with the given name, creating it
// as a unitless count histogram (batch sizes, depths) on first use.
func (r *Registry) CountHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewCountHistogram()
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric as "name value" lines, sorted by name.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, "counter/"+n)
	}
	for n := range r.gauges {
		names = append(names, "gauge/"+n)
	}
	for n := range r.histograms {
		names = append(names, "histogram/"+n)
	}
	sort.Strings(names)
	var b []byte
	for _, n := range names {
		kind, name := n[:len(n)-len(n[indexByte(n, '/')+1:])-1], n[indexByte(n, '/')+1:]
		switch kind {
		case "counter":
			b = fmt.Appendf(b, "%s %d\n", name, r.counters[name].Value())
		case "gauge":
			b = fmt.Appendf(b, "%s %d\n", name, r.gauges[name].Value())
		case "histogram":
			b = fmt.Appendf(b, "%s %s\n", name, r.histograms[name].Summary())
		}
	}
	return string(b)
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}
