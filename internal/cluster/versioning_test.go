package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dirigent/internal/versioning"
)

// TestCanaryTrafficSplit exercises the versioning extension end to end on
// the live cluster: two versions of a function registered independently,
// a 50/50 canary split at the front end, then a promotion to v2.
func TestCanaryTrafficSplit(t *testing.T) {
	opts := testOptions()
	router := versioning.NewRouter()
	opts.Versions = router
	c := mustCluster(t, opts)

	for _, v := range []string{"v1", "v2"} {
		fn := testFunction("app@" + v)
		fn.Scaling.MinScale = 1
		if err := c.RegisterFunction(fn); err != nil {
			t.Fatalf("register %s: %v", v, err)
		}
		v := v
		c.Images.Register(fn.Image, func([]byte) ([]byte, error) {
			return []byte(v), nil
		})
	}
	if err := c.AwaitScale("app@v1", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitScale("app@v2", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := router.SetSplit("app",
		versioning.Version{Function: "app@v1", Weight: 1},
		versioning.Version{Function: "app@v2", Weight: 1},
	); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		resp, err := c.Invoke(ctx, "app", nil)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		counts[string(resp.Body)]++
	}
	if counts["v1"] == 0 || counts["v2"] == 0 {
		t.Fatalf("50/50 split served only one version: %v", counts)
	}

	// Promote v2: all traffic must now hit it.
	if err := router.Promote("app", "app@v2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		resp, err := c.Invoke(ctx, "app", nil)
		if err != nil {
			t.Fatalf("invoke after promote: %v", err)
		}
		if !bytes.Equal(resp.Body, []byte("v2")) {
			t.Fatalf("after promote got %q", resp.Body)
		}
	}
}
