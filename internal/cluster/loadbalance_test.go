package cluster

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestWarmLoadSpreadsAcrossSandboxes pins a function at several sandboxes
// and drives concurrent warm traffic; the least-loaded policy must use
// more than one sandbox (concurrency 1 per sandbox forces spreading).
func TestWarmLoadSpreadsAcrossSandboxes(t *testing.T) {
	opts := testOptions()
	opts.Workers = 3
	c := mustCluster(t, opts)
	fn := testFunction("spread")
	fn.Scaling.MinScale = 3
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	c.RegisterWorkload(fn.Image, 1.0)
	if err := c.AwaitScale("spread", 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := c.Invoke(ctx, "spread", ExecPayload(100*time.Millisecond)); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()

	// With 9 requests of 100 ms at concurrency 1 across 3 sandboxes, more
	// than one worker must have executed invocations.
	busyWorkers := 0
	total := int64(0)
	for _, w := range c.Workers {
		if n := w.SandboxCount(); n > 0 {
			busyWorkers++
		}
		total += int64(w.SandboxCount())
	}
	if total < 3 {
		t.Errorf("expected 3 sandboxes alive, found %d", total)
	}
	if busyWorkers < 2 {
		t.Errorf("sandboxes concentrated on %d worker(s); placement not spreading", busyWorkers)
	}
}

// TestEndpointVersioningUnderChurn registers and scales a function while
// killing sandboxes, checking the data plane cache converges to the
// control plane's view rather than being stuck on a stale broadcast.
func TestEndpointVersioningUnderChurn(t *testing.T) {
	c := mustCluster(t, testOptions())
	fn := testFunction("churny")
	fn.Scaling.MinScale = 2
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := c.AwaitScale("churny", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Crash sandboxes repeatedly; each crash and recreation broadcasts
	// endpoint updates that may race.
	for round := 0; round < 3; round++ {
		for _, w := range c.Workers {
			if ids := w.ReadySandboxIDs(); len(ids) > 0 {
				_ = w.CrashSandbox(ids[0])
				break
			}
		}
		if err := c.AwaitScale("churny", 2, 10*time.Second); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// After the churn settles, every data plane must eventually cache the
	// live endpoints (2 ready sandboxes) and serve invocations.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		good := 0
		for _, dp := range c.DPs {
			if dp.EndpointCount("churny") == 2 {
				good++
			}
		}
		if good == len(c.DPs) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		if _, err := c.Invoke(ctx, "churny", nil); err != nil {
			t.Fatalf("invoke after churn: %v", err)
		}
	}
}
