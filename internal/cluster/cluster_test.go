package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
)

func testOptions() Options {
	return Options{
		ControlPlanes:     3,
		DataPlanes:        2,
		Workers:           3,
		Runtime:           "containerd",
		LatencyScale:      0, // no simulated sandbox latency in unit tests
		AutoscaleInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		MetricInterval:    10 * time.Millisecond,
		NoDownscaleWindow: 100 * time.Millisecond,
		QueueTimeout:      5 * time.Second,
	}
}

func testFunction(name string) core.Function {
	fn := core.Function{
		Name:    name,
		Image:   "registry.local/" + name + ":latest",
		Port:    8080,
		Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.StableWindow = 2 * time.Second
	fn.Scaling.PanicWindow = 200 * time.Millisecond
	fn.Scaling.ScaleToZeroGrace = time.Second
	return fn
}

func mustCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New cluster: %v", err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestClusterColdAndWarmInvoke(t *testing.T) {
	c := mustCluster(t, testOptions())
	if err := c.RegisterFunction(testFunction("hello")); err != nil {
		t.Fatalf("register: %v", err)
	}
	payload := []byte("ping")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c.Invoke(ctx, "hello", payload)
	if err != nil {
		t.Fatalf("cold invoke: %v", err)
	}
	if !resp.ColdStart {
		t.Errorf("first invocation should be a cold start")
	}
	if !bytes.Equal(resp.Body, payload) {
		t.Errorf("body = %q, want %q", resp.Body, payload)
	}
	// Second invocation should hit the warm sandbox.
	resp2, err := c.Invoke(ctx, "hello", payload)
	if err != nil {
		t.Fatalf("warm invoke: %v", err)
	}
	if resp2.ColdStart {
		t.Errorf("second invocation should be warm")
	}
}

func TestClusterUnknownFunction(t *testing.T) {
	c := mustCluster(t, testOptions())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "nope", nil); err == nil {
		t.Fatalf("invoking an unregistered function should fail")
	}
}

func TestClusterConcurrentColdStarts(t *testing.T) {
	c := mustCluster(t, testOptions())
	const fns = 8
	for i := 0; i < fns; i++ {
		if err := c.RegisterFunction(testFunction(fmt.Sprintf("fn-%d", i))); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, fns*4)
	for i := 0; i < fns; i++ {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				defer cancel()
				if _, err := c.Invoke(ctx, fmt.Sprintf("fn-%d", i), []byte("x")); err != nil {
					errs <- err
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("invoke: %v", err)
	}
}

func TestClusterAutoscaleUpUnderLoad(t *testing.T) {
	c := mustCluster(t, testOptions())
	fn := testFunction("busy")
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	c.RegisterWorkload(fn.Image, 1.0)
	// 16 concurrent long-ish requests at concurrency limit 1 per sandbox
	// should push the autoscaler well past one sandbox.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			_, err := c.Invoke(ctx, "busy", ExecPayload(150*time.Millisecond))
			if err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	if cp := c.Leader(); cp != nil {
		ready, _ := cp.FunctionScale("busy")
		if ready < 2 {
			t.Errorf("expected scale-out beyond 1 sandbox, got %d", ready)
		}
	}
}

func TestClusterScaleToZero(t *testing.T) {
	opts := testOptions()
	c := mustCluster(t, opts)
	fn := testFunction("ephemeral")
	fn.Scaling.StableWindow = 300 * time.Millisecond
	fn.Scaling.PanicWindow = 50 * time.Millisecond
	fn.Scaling.ScaleToZeroGrace = 100 * time.Millisecond
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "ephemeral", nil); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cp := c.Leader()
		if cp == nil {
			t.Fatalf("no leader")
		}
		ready, creating := cp.FunctionScale("ephemeral")
		if ready == 0 && creating == 0 {
			return // scaled to zero
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("function did not scale to zero")
}

func TestClusterMinScaleKeepsWarm(t *testing.T) {
	c := mustCluster(t, testOptions())
	fn := testFunction("pinned")
	fn.Scaling.MinScale = 2
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := c.AwaitScale("pinned", 2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// An invocation now must be warm: sandboxes already exist.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Invoke(ctx, "pinned", nil)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if resp.ColdStart {
		t.Errorf("invocation with MinScale=2 warm pool should not be a cold start")
	}
}

func TestClusterAsyncInvoke(t *testing.T) {
	c := mustCluster(t, testOptions())
	fn := testFunction("asyncfn")
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.InvokeAsync(ctx, "asyncfn", []byte("later")); err != nil {
		t.Fatalf("async invoke: %v", err)
	}
	// The async loop should eventually execute it, creating a sandbox.
	if err := c.AwaitScale("asyncfn", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestClusterDeregisterFunction(t *testing.T) {
	c := mustCluster(t, testOptions())
	fn := testFunction("gone")
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "gone", nil); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if err := c.DeregisterFunction("gone"); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	// Give the broadcast a moment to land, then invoking must fail.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Invoke(ctx, "gone", nil); err == nil {
		t.Fatalf("invoking a deregistered function should fail")
	}
}

func TestClusterFirecrackerRuntime(t *testing.T) {
	opts := testOptions()
	opts.Runtime = "firecracker"
	c := mustCluster(t, opts)
	if err := c.RegisterFunction(testFunction("fc")); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "fc", []byte("vm")); err != nil {
		t.Fatalf("invoke: %v", err)
	}
}

func TestExecPayloadRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 1500 * time.Millisecond, time.Hour} {
		if got := DecodeExecPayload(ExecPayload(d)); got != d {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
	if DecodeExecPayload(nil) != 0 {
		t.Errorf("nil payload should decode to 0")
	}
}
