package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"dirigent/internal/versioning"
)

// TestRolloutFlipMidTraffic flips the version split while a concurrent
// invocation burst is in flight: traffic starts pinned to v1, a 50/50
// canary opens mid-burst, then v2 is promoted — all without pausing the
// senders. Every invocation must succeed and resolve to exactly one of
// the two registered versions (no failed routes, no unversioned serves),
// and once the promote lands traffic must serve only v2.
func TestRolloutFlipMidTraffic(t *testing.T) {
	opts := testOptions()
	router := versioning.NewRouter()
	opts.Versions = router
	c := mustCluster(t, opts)

	for _, v := range []string{"v1", "v2"} {
		fn := testFunction("roll@" + v)
		fn.Scaling.MinScale = 2
		fn.Scaling.StableWindow = time.Hour // no churn mid-burst
		if err := c.RegisterFunction(fn); err != nil {
			t.Fatalf("register %s: %v", v, err)
		}
		v := v
		c.Images.Register(fn.Image, func([]byte) ([]byte, error) {
			// Hold the request briefly so flips happen with calls in flight.
			time.Sleep(2 * time.Millisecond)
			return []byte(v), nil
		})
	}
	for _, v := range []string{"roll@v1", "roll@v2"} {
		if err := c.AwaitScale(v, 2, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.SetSplit("roll",
		versioning.Version{Function: "roll@v1", Weight: 1},
	); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const senders = 8
	const perSender = 40
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		counts = map[string]int{}
		errs   []error
	)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				resp, err := c.Invoke(ctx, "roll", nil)
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else {
					counts[string(resp.Body)]++
				}
				mu.Unlock()
			}
		}()
	}

	// Flip the split twice while the burst is running: open the canary,
	// then promote. The sleeps just place the flips somewhere inside the
	// burst window (~8*40*2ms of handler time across 8 senders).
	time.Sleep(30 * time.Millisecond)
	if err := router.SetSplit("roll",
		versioning.Version{Function: "roll@v1", Weight: 1},
		versioning.Version{Function: "roll@v2", Weight: 1},
	); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := router.Promote("roll", "roll@v2"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(errs) > 0 {
		t.Fatalf("%d/%d invocations failed during the rollout; first: %v",
			len(errs), senders*perSender, errs[0])
	}
	total := 0
	for body, n := range counts {
		if body != "v1" && body != "v2" {
			t.Fatalf("invocation resolved to unknown version %q (%d times)", body, n)
		}
		total += n
	}
	if total != senders*perSender {
		t.Fatalf("accounted for %d invocations, want %d", total, senders*perSender)
	}
	if counts["v2"] == 0 {
		t.Fatalf("rollout never served v2: %v", counts)
	}

	// After the promote has settled, traffic must serve only v2.
	for i := 0; i < 20; i++ {
		resp, err := c.Invoke(ctx, "roll", nil)
		if err != nil {
			t.Fatalf("invoke after promote: %v", err)
		}
		if got := string(resp.Body); got != "v2" {
			t.Fatalf("after promote got %q, want v2", got)
		}
	}
}
