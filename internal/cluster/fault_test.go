package cluster

import (
	"context"
	"testing"
	"time"
)

// TestControlPlaneFailover reproduces the paper's §5.4 control plane
// failure scenario: kill the CP leader; a standby replica must take over,
// reload persisted state, merge sandbox reports from workers, and resume
// serving new cold starts — all while warm invocations keep working.
func TestControlPlaneFailover(t *testing.T) {
	opts := testOptions()
	c := mustCluster(t, opts)
	fn := testFunction("survivor")
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "survivor", nil); err != nil {
		t.Fatalf("pre-failure invoke: %v", err)
	}

	killed := c.KillCPLeader()
	if killed < 0 {
		t.Fatalf("no leader to kill")
	}

	// A new leader must be elected quickly.
	deadline := time.Now().Add(5 * time.Second)
	var elected bool
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil && l != c.CPs[killed] {
			elected = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !elected {
		t.Fatalf("no new leader elected after killing the old one")
	}

	// Warm invocations must keep flowing (the surviving sandbox serves
	// them without control plane involvement).
	if _, err := c.Invoke(ctx, "survivor", nil); err != nil {
		t.Errorf("warm invoke during failover: %v", err)
	}

	// The new leader must merge the existing sandbox from worker reports.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil {
			if ready, _ := l.FunctionScale("survivor"); ready >= 1 {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if l := c.Leader(); l != nil {
		if ready, _ := l.FunctionScale("survivor"); ready < 1 {
			t.Errorf("new leader did not recover sandbox state from workers")
		}
	}

	// New functions must be schedulable after recovery (cold starts work).
	fn2 := testFunction("newcomer")
	if err := c.RegisterFunction(fn2); err != nil {
		t.Fatalf("register after failover: %v", err)
	}
	if _, err := c.Invoke(ctx, "newcomer", nil); err != nil {
		t.Errorf("cold invoke after failover: %v", err)
	}
}

// TestControlPlaneFailoverPreservesRegistrations checks that function
// registrations survive a leader change through the replicated store
// (persisted state in paper Table 3).
func TestControlPlaneFailoverPreservesRegistrations(t *testing.T) {
	c := mustCluster(t, testOptions())
	for _, name := range []string{"a", "b", "cfn"} {
		if err := c.RegisterFunction(testFunction(name)); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	c.KillCPLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, name := range []string{"a", "b", "cfn"} {
		if _, err := c.Invoke(ctx, name, nil); err != nil {
			t.Errorf("invoke %s after failover: %v", name, err)
		}
	}
}

// TestDataPlaneFailover reproduces §5.4's data plane failure: kill one DP
// replica; the front-end LB re-steers to survivors, and a restarted
// replica re-registers and repopulates its caches from the control plane.
func TestDataPlaneFailover(t *testing.T) {
	c := mustCluster(t, testOptions())
	fn := testFunction("dpfail")
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "dpfail", nil); err != nil {
		t.Fatalf("pre-failure invoke: %v", err)
	}

	c.KillDataPlane(0)
	// Invocations must still succeed via the surviving replica.
	if _, err := c.Invoke(ctx, "dpfail", nil); err != nil {
		t.Errorf("invoke after DP failure: %v", err)
	}

	// Restart the failed replica; it must re-register and serve again.
	if err := c.RestartDataPlane(0); err != nil {
		t.Fatalf("restart DP: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var served bool
	for time.Now().Before(deadline) {
		if c.DPs[0].EndpointCount("dpfail") > 0 || c.DPs[0].QueueDepth("dpfail") == 0 {
			// Cache repopulated (endpoint present) or at least functional.
			if _, err := c.Invoke(ctx, "dpfail", nil); err == nil {
				served = true
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !served {
		t.Errorf("restarted data plane did not resume serving")
	}
}

// TestWorkerFailure reproduces §5.4's worker daemon failure: kill a worker;
// the control plane must detect the missing heartbeats, drain its
// endpoints, and recreate capacity on surviving nodes so invocations keep
// succeeding.
func TestWorkerFailure(t *testing.T) {
	opts := testOptions()
	opts.Workers = 3
	c := mustCluster(t, opts)
	fn := testFunction("wfail")
	fn.Scaling.MinScale = 3
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := c.AwaitScale("wfail", 3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Find a worker hosting at least one sandbox and kill it.
	victim := -1
	for i, w := range c.Workers {
		if w.SandboxCount() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatalf("no worker hosts a sandbox")
	}
	c.KillWorker(victim)

	// The control plane must detect the failure and restore the scale on
	// the surviving workers.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil && l.WorkerCount() == len(c.Workers)-1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if l := c.Leader(); l == nil || l.WorkerCount() != len(c.Workers)-1 {
		t.Fatalf("worker failure not detected")
	}
	if err := c.AwaitScale("wfail", 3, 10*time.Second); err != nil {
		t.Errorf("scale not restored after worker failure: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "wfail", nil); err != nil {
		t.Errorf("invoke after worker failure: %v", err)
	}
}

// TestSandboxCrashRecovery checks the worker's sandbox crash notification
// path: the control plane removes the endpoint and the autoscaler
// recreates capacity.
func TestSandboxCrashRecovery(t *testing.T) {
	c := mustCluster(t, testOptions())
	fn := testFunction("crashy")
	fn.Scaling.MinScale = 1
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := c.AwaitScale("crashy", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	var crashed bool
	for _, w := range c.Workers {
		if ids := w.ReadySandboxIDs(); len(ids) > 0 {
			if err := w.CrashSandbox(ids[0]); err != nil {
				t.Fatalf("crash sandbox: %v", err)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatalf("no sandbox found to crash")
	}
	// MinScale=1 forces the autoscaler to recreate the sandbox.
	if err := c.AwaitScale("crashy", 1, 10*time.Second); err != nil {
		t.Errorf("sandbox not recreated after crash: %v", err)
	}
}

// TestMultiComponentFailure kills a CP leader, a data plane, and a worker
// at once; the cluster must remain operational (paper §3.4.1,
// "Multi-component fault tolerance").
func TestMultiComponentFailure(t *testing.T) {
	opts := testOptions()
	opts.Workers = 3
	c := mustCluster(t, opts)
	fn := testFunction("chaos")
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "chaos", nil); err != nil {
		t.Fatalf("pre-failure invoke: %v", err)
	}

	c.KillCPLeader()
	c.KillDataPlane(1)
	c.KillWorker(0)

	// After all recoveries, invocations must succeed again. The deadline
	// is generous because the full test suite runs packages in parallel
	// and this live cluster competes for CPU.
	deadline := time.Now().Add(60 * time.Second)
	var ok bool
	for time.Now().Before(deadline) {
		attemptCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := c.Invoke(attemptCtx, "chaos", nil)
		cancel()
		if err == nil {
			ok = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("cluster did not recover from multi-component failure")
	}
}

// TestCPReplicasOneSeedParity pins the -cp-replicas 1 regime to the seed
// behavior: a singleton control plane runs no Raft node at all — its
// store backs it directly, writes are visible synchronously (no
// replicated-log apply in between), it is leader from the first instant,
// and the replication telemetry stays zero.
func TestCPReplicasOneSeedParity(t *testing.T) {
	opts := testOptions()
	opts.ControlPlanes = 1
	opts.CPFollowerReads = true // must be a no-op with a single replica
	c := mustCluster(t, opts)

	cp := c.CPs[0]
	if !cp.IsLeader() {
		t.Fatalf("singleton CP must lead immediately, no election")
	}
	if addr := cp.RaftLeader(); addr != cp.Addr() {
		t.Errorf("RaftLeader() = %q, want own address %q", addr, cp.Addr())
	}

	if err := c.RegisterFunction(testFunction("solo")); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Seed parity: the write is durable in the backing store the moment
	// the registration RPC returns — there is no log-apply pipeline that
	// could defer it.
	if _, ok := c.CPStore(0).HGetAll("functions")["solo"]; !ok {
		t.Errorf("registration not synchronously visible in the store")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, "solo", []byte("x")); err != nil {
		t.Fatalf("invoke: %v", err)
	}

	if rounds, entries := cp.ReplStats(); rounds != 0 || entries != 0 {
		t.Errorf("singleton CP shipped replication traffic: rounds=%d entries=%d", rounds, entries)
	}
	if _, follower := cp.ReadCounts(); follower != 0 {
		t.Errorf("singleton CP served %d follower reads", follower)
	}
}
