// Package cluster assembles a complete in-process Dirigent cluster —
// replicated control plane, active-active data planes, worker nodes with
// simulated sandbox runtimes, a front-end load balancer, and a replicated
// persistent store — mirroring the paper's deployment (§5.1: 3 CP replicas,
// 3 DP replicas, HA front end, worker fleet). It exposes the end-user API
// (register + invoke, paper Table 2) and failure-injection hooks used by
// the fault-tolerance experiments (§5.4).
package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/dataplane"
	"dirigent/internal/frontend"
	"dirigent/internal/placement"
	"dirigent/internal/predictor"
	"dirigent/internal/proto"
	"dirigent/internal/sandbox"
	"dirigent/internal/store"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
	"dirigent/internal/versioning"
	"dirigent/internal/worker"
)

// Options configures a cluster.
type Options struct {
	// ControlPlanes is the number of CP replicas (paper default: 3).
	ControlPlanes int
	// DataPlanes is the number of DP replicas (paper default: 3).
	DataPlanes int
	// Workers is the number of worker nodes.
	Workers int
	// Runtime selects the sandbox runtime: "containerd" (default) or
	// "firecracker" (snapshot-enabled).
	Runtime string
	// LatencyScale multiplies all simulated sandbox latencies; tests use
	// small values to compress time. 0 disables simulated latency.
	LatencyScale float64
	// PersistSandboxState enables the persist-everything ablation.
	PersistSandboxState bool
	// StateShards stripes the control plane's function state map
	// (0 = default 32, 1 = the single-global-lock ablation).
	StateShards int
	// AutoscaleInterval, HeartbeatTimeout, MetricInterval, and
	// NoDownscaleWindow tune the control loops (zero selects defaults
	// suitable for tests: 50 ms autoscale, 500 ms heartbeat timeout,
	// 20 ms metrics, no downscale suppression).
	AutoscaleInterval time.Duration
	HeartbeatTimeout  time.Duration
	MetricInterval    time.Duration
	NoDownscaleWindow time.Duration
	// QueueTimeout bounds cold-start queueing in the data plane.
	QueueTimeout time.Duration
	// WorkerCPUMilli / WorkerMemMB set per-node capacity (paper nodes:
	// 10 cores, 64 GB).
	WorkerCPUMilli int
	WorkerMemMB    int
	// Placer overrides the placement policy.
	Placer placement.Policy
	// Prewarm is each worker's pre-warm pool budget (0 disables pools).
	Prewarm int
	// PredictivePrewarm turns on the control plane's demand predictor,
	// which partitions each worker's Prewarm budget across the hot images
	// it forecasts. Off, the whole budget warms the generic base image
	// (the seed's static pool).
	PredictivePrewarm bool
	// Predictor tunes the demand predictor (zero values select defaults).
	Predictor predictor.Config
	// Seed seeds all stochastic models.
	Seed int64
	// PrefetchImages pre-caches these images on every worker, matching
	// the paper's methodology (§5.1).
	PrefetchImages []string
	// Versions optionally installs a version router in the front-end LB
	// for canary/blue-green traffic splits (see internal/versioning).
	Versions *versioning.Router
	// AsyncPersist backs every data plane's async queue with one shared
	// in-memory store (the paper co-locates the durable queue with the
	// cluster store), so accepted async invocations survive DP crashes
	// and the control plane can lease a dead replica's records to the
	// surviving replicas. Off, async tasks live only in DP memory (the
	// seed default).
	AsyncPersist bool
	// AsyncFnQuota caps per-function occupancy of each DP's async queue
	// shards (0 = no quota, seed admission).
	AsyncFnQuota int
	// AsyncLeaseDisabled turns off lease failover of dead replicas'
	// async records (ablation: persisted tasks wait for a restart).
	AsyncLeaseDisabled bool
	// CPFollowerReads lets CP followers serve read-only RPCs
	// (ListDataPlanes, ListFunctions) from their applied store, so the
	// leader's RPC load drops to writes. Only meaningful with
	// ControlPlanes > 1.
	CPFollowerReads bool
}

func (o Options) withDefaults() Options {
	if o.ControlPlanes == 0 {
		o.ControlPlanes = 3
	}
	if o.DataPlanes == 0 {
		o.DataPlanes = 3
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Runtime == "" {
		o.Runtime = "containerd"
	}
	if o.AutoscaleInterval == 0 {
		o.AutoscaleInterval = 50 * time.Millisecond
	}
	if o.HeartbeatTimeout == 0 {
		o.HeartbeatTimeout = 500 * time.Millisecond
	}
	if o.MetricInterval == 0 {
		o.MetricInterval = 20 * time.Millisecond
	}
	if o.QueueTimeout == 0 {
		o.QueueTimeout = 30 * time.Second
	}
	if o.WorkerCPUMilli == 0 {
		o.WorkerCPUMilli = 10000 // 10 cores
	}
	if o.WorkerMemMB == 0 {
		o.WorkerMemMB = 64 * 1024
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Cluster is a running in-process Dirigent cluster.
type Cluster struct {
	opts      Options
	Transport *transport.InProc
	CPs       []*controlplane.ControlPlane
	DPs       []*dataplane.DataPlane
	Workers   []*worker.Worker
	LB        *frontend.LB
	Images    *worker.ImageRegistry
	Metrics   *telemetry.Registry
	// Caches holds each worker's image/snapshot cache (index-aligned with
	// Workers); experiments sum their miss counts to measure image pulls.
	Caches []*sandbox.ImageCache

	stores  []*store.Store
	asyncDB *store.Store
	cpAddrs []string
	client  *cpclient.Client
}

// AsyncStore returns the shared async queue store (nil without
// AsyncPersist).
func (c *Cluster) AsyncStore() *store.Store { return c.asyncDB }

// New builds and starts a cluster.
func New(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	tr := transport.NewInProc()
	images := worker.NewImageRegistry()
	metrics := telemetry.NewRegistry()

	c := &Cluster{
		opts:      opts,
		Transport: tr,
		Images:    images,
		Metrics:   metrics,
	}

	// Persistent store: one per CP node (the paper co-locates a Redis
	// replica with each CP replica). With multiple CPs, replication runs
	// through the Raft log — each replica applies committed batches to
	// its own store; with a single CP the store backs it directly, which
	// is seed-exact.
	for i := 0; i < opts.ControlPlanes; i++ {
		c.stores = append(c.stores, store.NewMemory())
		c.cpAddrs = append(c.cpAddrs, fmt.Sprintf("cp%d:7000", i))
	}
	for i := 0; i < opts.ControlPlanes; i++ {
		c.CPs = append(c.CPs, c.newControlPlane(i, false))
	}
	for _, cp := range c.CPs {
		if err := cp.Start(); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	if err := c.awaitLeader(5 * time.Second); err != nil {
		c.Shutdown()
		return nil, err
	}
	c.client = cpclient.New(tr, c.cpAddrs)

	// Data planes.
	if opts.AsyncPersist {
		c.asyncDB = store.NewMemory()
	}
	var dpAddrs []string
	for i := 0; i < opts.DataPlanes; i++ {
		dp := dataplane.New(dataplane.Config{
			ID:             core.DataPlaneID(i + 1),
			Addr:           fmt.Sprintf("dp%d:8000", i),
			Transport:      tr,
			ControlPlanes:  c.cpAddrs,
			MetricInterval: opts.MetricInterval,
			QueueTimeout:   opts.QueueTimeout,
			AsyncStore:     c.asyncDB,
			AsyncFnQuota:   opts.AsyncFnQuota,
			Metrics:        metrics,
		})
		if err := dp.Start(); err != nil {
			c.Shutdown()
			return nil, err
		}
		c.DPs = append(c.DPs, dp)
		dpAddrs = append(dpAddrs, dp.Addr())
	}

	// Workers.
	for i := 0; i < opts.Workers; i++ {
		w, err := c.newWorker(i)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}

	// The static list only seeds the front end; membership then syncs
	// from the control plane's live replica set, so killed and restarted
	// data planes flow through to steering mid-experiment.
	c.LB = frontend.New(frontend.Config{
		Transport:          tr,
		DataPlanes:         dpAddrs,
		ControlPlanes:      c.cpAddrs,
		MembershipInterval: opts.HeartbeatTimeout / 4,
		FailureCooldown:    200 * time.Millisecond,
		RequestTimeout:     opts.QueueTimeout * 2,
		Versions:           opts.Versions,
		Metrics:            metrics,
	})
	if err := c.LB.Start(); err != nil {
		c.Shutdown()
		return nil, err
	}
	return c, nil
}

// newControlPlane builds (without starting) CP replica i against the
// cluster's current store for that slot. Multi-CP clusters run the
// replicated-log regime; a singleton CP uses its store directly.
func (c *Cluster) newControlPlane(i int, rejoin bool) *controlplane.ControlPlane {
	opts := c.opts
	cfg := controlplane.Config{
		Addr:                c.cpAddrs[i],
		Peers:               c.cpAddrs,
		Transport:           c.Transport,
		AutoscaleInterval:   opts.AutoscaleInterval,
		HeartbeatTimeout:    opts.HeartbeatTimeout,
		NoDownscaleWindow:   opts.NoDownscaleWindow,
		PersistSandboxState: opts.PersistSandboxState,
		StateShards:         opts.StateShards,
		Placer:              opts.Placer,
		PredictivePrewarm:   opts.PredictivePrewarm,
		Predictor:           opts.Predictor,
		AsyncLeaseDisabled:  opts.AsyncLeaseDisabled,
		Metrics:             c.Metrics,
	}
	if len(c.cpAddrs) > 1 {
		cfg.LocalStore = c.stores[i]
		cfg.FollowerReads = opts.CPFollowerReads
		cfg.RaftRejoin = rejoin
		// The default read lease equals the election-timeout floor (8 ms
		// in-process), which scheduling jitter under load overruns
		// constantly — each overrun bounces the read to the leader. 50 ms
		// keeps staleness bounded well below the worker heartbeat windows
		// while letting followers actually absorb the read path.
		cfg.ReadLease = 50 * time.Millisecond
	} else {
		cfg.DB = c.stores[i]
	}
	return controlplane.New(cfg)
}

// RestartCP revives control plane replica i after a crash (systemd
// restart in the paper's deployment). The replica rejoins the Raft group
// with an empty log and store; the leader's replicator backtracks and
// re-ships the whole log, so the replica catches up to the applied state
// without any shared-store replay.
func (c *Cluster) RestartCP(i int) error {
	c.stores[i] = store.NewMemory()
	cp := c.newControlPlane(i, true)
	if err := cp.Start(); err != nil {
		return err
	}
	c.CPs[i] = cp
	return nil
}

// CPStore returns replica i's local store (tests inspect it to verify a
// revived follower caught up).
func (c *Cluster) CPStore(i int) *store.Store { return c.stores[i] }

func (c *Cluster) newWorker(i int) (*worker.Worker, error) {
	opts := c.opts
	nodeIP := [4]byte{10, 0, byte(i / 250), byte(i%250 + 1)}
	images := sandbox.NewImageCache()
	images.Prefetch(opts.PrefetchImages...)
	runtimeCfg := sandbox.Config{
		LatencyScale: opts.LatencyScale,
		NodeIP:       nodeIP,
		Images:       images,
		Seed:         opts.Seed + int64(i)*101,
	}
	var rt sandbox.Runtime
	switch opts.Runtime {
	case "firecracker":
		rt = sandbox.NewFirecracker(sandbox.FirecrackerConfig{Config: runtimeCfg, Snapshots: true})
	case "containerd":
		rt = sandbox.NewContainerd(runtimeCfg)
	default:
		return nil, fmt.Errorf("cluster: unknown runtime %q", opts.Runtime)
	}
	node := core.WorkerNode{
		ID:       core.NodeID(i + 1),
		Name:     fmt.Sprintf("worker-%d", i),
		IP:       fmt.Sprintf("10.0.%d.%d", i/250, i%250+1),
		Port:     9000,
		CPUMilli: opts.WorkerCPUMilli,
		MemoryMB: opts.WorkerMemMB,
	}
	w := worker.New(worker.Config{
		Node:              node,
		Addr:              fmt.Sprintf("%s:%d", node.IP, node.Port),
		Runtime:           rt,
		Transport:         c.Transport,
		ControlPlanes:     c.cpAddrs,
		HeartbeatInterval: opts.HeartbeatTimeout / 4,
		Images:            c.Images,
		Metrics:           c.Metrics,
		Prewarm:           opts.Prewarm,
		Cache:             images,
	})
	if err := w.Start(); err != nil {
		return nil, err
	}
	c.Caches = append(c.Caches, images)
	return w, nil
}

func (c *Cluster) awaitLeader(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Leader() != nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("cluster: no control plane leader elected within %v", timeout)
}

// Leader returns the current CP leader, or nil during an election.
func (c *Cluster) Leader() *controlplane.ControlPlane {
	for _, cp := range c.CPs {
		if cp.IsLeader() {
			return cp
		}
	}
	return nil
}

// RegisterFunction registers a function through the end-user API.
func (c *Cluster) RegisterFunction(fn core.Function) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.client.Call(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
	return err
}

// DeregisterFunction removes a function.
func (c *Cluster) DeregisterFunction(name string) error {
	fn := core.Function{Name: name, Image: "x", Port: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.client.Call(ctx, proto.MethodDeregisterFunction, core.MarshalFunction(&fn))
	return err
}

// Invoke synchronously invokes a function through the front-end LB.
func (c *Cluster) Invoke(ctx context.Context, function string, payload []byte) (*proto.InvokeResponse, error) {
	return c.LB.Invoke(ctx, &proto.InvokeRequest{Function: function, Payload: payload})
}

// InvokeAsync submits an asynchronous invocation (at-least-once).
func (c *Cluster) InvokeAsync(ctx context.Context, function string, payload []byte) error {
	_, err := c.LB.Invoke(ctx, &proto.InvokeRequest{Function: function, Payload: payload, Async: true})
	return err
}

// Reconcile forces one autoscaling pass on the leader, letting tests drive
// scaling deterministically.
func (c *Cluster) Reconcile() {
	if cp := c.Leader(); cp != nil {
		cp.Reconcile()
	}
}

// AwaitScale blocks until the function has at least n ready sandboxes.
func (c *Cluster) AwaitScale(function string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cp := c.Leader(); cp != nil {
			if ready, _ := cp.FunctionScale(function); ready >= n {
				return nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: function %q did not reach scale %d within %v", function, n, timeout)
}

// KillCPLeader crashes the current control plane leader and returns its
// index, or -1 if there was no leader.
func (c *Cluster) KillCPLeader() int {
	for i, cp := range c.CPs {
		if cp.IsLeader() {
			cp.Stop()
			return i
		}
	}
	return -1
}

// KillDataPlane crashes data plane i.
func (c *Cluster) KillDataPlane(i int) { c.DPs[i].Stop() }

// RestartDataPlane recovers data plane i as a fresh replica (systemd
// restart in the paper's deployment): it re-registers with the control
// plane, which repopulates its function and endpoint caches, recalls any
// lease issued on the replica's async records while it was down, and
// assigns the replica a fresh queue epoch that out-fences the lessees.
func (c *Cluster) RestartDataPlane(i int) error {
	old := c.DPs[i]
	dp := dataplane.New(dataplane.Config{
		ID:             old.ID(),
		Addr:           old.Addr(),
		Transport:      c.Transport,
		ControlPlanes:  c.cpAddrs,
		MetricInterval: c.opts.MetricInterval,
		QueueTimeout:   c.opts.QueueTimeout,
		AsyncStore:     c.asyncDB,
		AsyncFnQuota:   c.opts.AsyncFnQuota,
		Metrics:        c.Metrics,
	})
	if err := dp.Start(); err != nil {
		return err
	}
	c.DPs[i] = dp
	return nil
}

// KillWorker crashes worker daemon i; the control plane detects the
// failure via missing heartbeats.
func (c *Cluster) KillWorker(i int) { c.Workers[i].Stop() }

// Shutdown stops every component.
func (c *Cluster) Shutdown() {
	if c.LB != nil {
		c.LB.Stop()
	}
	for _, dp := range c.DPs {
		dp.Stop()
	}
	for _, w := range c.Workers {
		w.Stop()
	}
	for _, cp := range c.CPs {
		cp.Stop()
	}
}

// ExecPayload encodes a requested function execution duration into an
// invocation payload understood by the handler from RegisterWorkload.
func ExecPayload(d time.Duration) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(d))
	return b
}

// DecodeExecPayload decodes a payload written by ExecPayload.
func DecodeExecPayload(b []byte) time.Duration {
	if len(b) < 8 {
		return 0
	}
	return time.Duration(binary.LittleEndian.Uint64(b))
}

// RegisterWorkload installs a handler for image that busy-waits for the
// duration encoded in the invocation payload, scaled by execScale — the
// analogue of the paper's SQRTSD-loop workload functions (§5.3).
func (c *Cluster) RegisterWorkload(image string, execScale float64) {
	clk := clock.NewReal()
	c.Images.Register(image, func(payload []byte) ([]byte, error) {
		d := time.Duration(float64(DecodeExecPayload(payload)) * execScale)
		if d > 0 {
			clk.Sleep(d)
		}
		return payload, nil
	})
}
