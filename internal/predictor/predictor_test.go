package predictor

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func wantFor(targets []Target, image string) int {
	for _, t := range targets {
		if t.Image == image {
			return t.Want
		}
	}
	return 0
}

// Steady demand inside one window yields a target once the window closes,
// and the EWMA follows demand across subsequent windows.
func TestSteadyDemand(t *testing.T) {
	p := New(Config{Window: time.Minute, Alpha: 0.5})
	for i := 0; i < 4; i++ {
		p.Observe(t0.Add(time.Duration(i)*15*time.Second), "img/a", 1)
	}
	// Window still open: nothing seeded yet.
	if got := wantFor(p.Targets(t0.Add(59*time.Second)), "img/a"); got != 0 {
		t.Fatalf("want 0 before first window closes, got %d", got)
	}
	if got := wantFor(p.Targets(t0.Add(61*time.Second)), "img/a"); got != 4 {
		t.Fatalf("want 4 after first window closes, got %d", got)
	}
}

// Window rollover: an idle stretch decays the EWMA one factor per empty
// window — including windows skipped in a single jump — until the image
// drops out of the target set entirely.
func TestWindowRollover(t *testing.T) {
	p := New(Config{Window: time.Minute, Alpha: 0.5})
	p.Observe(t0, "img/a", 8)
	if got := wantFor(p.Targets(t0.Add(time.Minute+time.Second)), "img/a"); got != 8 {
		t.Fatalf("seeded EWMA: want 8, got %d", got)
	}
	// Two empty windows: 8 * 0.5^2 = 2.
	if got := wantFor(p.Targets(t0.Add(3*time.Minute+time.Second)), "img/a"); got != 2 {
		t.Fatalf("after 2 idle windows: want 2, got %d", got)
	}
	// Far jump: 8 * 0.5^9 < 0.25 drops below the emission floor.
	if got := wantFor(p.Targets(t0.Add(10*time.Minute+time.Second)), "img/a"); got != 0 {
		t.Fatalf("after long idle: want 0, got %d", got)
	}
}

// Mid-window observations accumulate into the window that was open when
// the idle stretch ended, not a stale one.
func TestRolloverReanchorsWindow(t *testing.T) {
	p := New(Config{Window: time.Minute, Alpha: 0.5})
	p.Observe(t0, "img/a", 2)
	// 2.5 windows later: the open window is [2m, 3m).
	p.Observe(t0.Add(150*time.Second), "img/a", 6)
	// At 3m+1s that window closes: EWMA = 0.5*6 + 0.5*(2*0.5) = 3.5 → 4.
	if got := wantFor(p.Targets(t0.Add(3*time.Minute+time.Second)), "img/a"); got != 4 {
		t.Fatalf("want 4, got %d", got)
	}
}

// Timer-period detection: after three unison bursts a minute apart, the
// target rises to the burst size *before* the fourth firing — inside the
// lead window — even though the EWMA alone would not sustain it, and is
// quiet before the lead window opens.
func TestTimerPeriodPredictsBeforeBurst(t *testing.T) {
	p := New(Config{Window: time.Minute, Alpha: 0.5, Lead: 10 * time.Second})
	period := 5 * time.Minute
	for i := 0; i < 3; i++ {
		at := t0.Add(time.Duration(i) * period)
		p.Observe(at, "img/timer", 6)
		p.Observe(at.Add(time.Second), "img/timer", 6)
	}
	// Last burst at t=10m; next predicted at t=15m. With a 5-minute
	// period the EWMA decays across the empty windows in between, so any
	// demand seen mid-gap is residual, not predictive.
	mid := t0.Add(13 * time.Minute)
	if got := wantFor(p.Targets(mid), "img/timer"); got >= 12 {
		t.Fatalf("mid-gap target %d should be below the burst size 12", got)
	}
	// Inside the lead window the full burst size is requested, ahead of
	// any observation from the burst itself.
	lead := t0.Add(15*time.Minute - 5*time.Second)
	if got := wantFor(p.Targets(lead), "img/timer"); got != 12 {
		t.Fatalf("lead-window target: want 12, got %d", got)
	}
}

// A missed firing (demand absorbed elsewhere) does not strand the
// prediction in the past: the next window is projected forward.
func TestPredictionProjectsPastMissedFirings(t *testing.T) {
	p := New(Config{Window: time.Minute, Alpha: 0.5, Lead: 10 * time.Second})
	period := 2 * time.Minute
	for i := 0; i < 3; i++ {
		p.Observe(t0.Add(time.Duration(i)*period), "img/timer", 4)
	}
	// Two periods with no observations; the firing at 8m should still be
	// anticipated at 8m-5s.
	at := t0.Add(8*time.Minute - 5*time.Second)
	if got := wantFor(p.Targets(at), "img/timer"); got != 4 {
		t.Fatalf("projected firing: want 4, got %d", got)
	}
}

// Irregular gaps never confirm a period, so no burst prediction fires.
func TestIrregularGapsDoNotPredict(t *testing.T) {
	p := New(Config{Window: time.Minute, Alpha: 0.5, Lead: 10 * time.Second})
	for _, at := range []time.Duration{0, 3 * time.Minute, 5 * time.Minute, 9 * time.Minute} {
		p.Observe(t0.Add(at), "img/rare", 5)
	}
	// Probe several future instants: the EWMA decays away and no period
	// should ever resurrect the target to the spike size.
	for _, at := range []time.Duration{12 * time.Minute, 13 * time.Minute, 14 * time.Minute} {
		if got := wantFor(p.Targets(t0.Add(at)), "img/rare"); got >= 5 {
			t.Fatalf("at %v: irregular image predicted burst target %d", at, got)
		}
	}
}

// Targets are emitted hottest-first and capped at MaxImages.
func TestTargetsOrderedAndCapped(t *testing.T) {
	p := New(Config{Window: time.Minute, Alpha: 0.5, MaxImages: 2})
	p.Observe(t0, "img/a", 2)
	p.Observe(t0, "img/b", 9)
	p.Observe(t0, "img/c", 5)
	got := p.Targets(t0.Add(time.Minute + time.Second))
	if len(got) != 2 || got[0].Image != "img/b" || got[1].Image != "img/c" {
		t.Fatalf("want [img/b img/c], got %v", got)
	}
}

func TestConcurrentObserveTargets(t *testing.T) {
	p := New(Config{Window: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Observe(t0.Add(time.Duration(i)*time.Second), "img/a", 1)
				if i%10 == 0 {
					p.Targets(t0.Add(time.Duration(i) * time.Second))
				}
			}
		}(g)
	}
	wg.Wait()
}
