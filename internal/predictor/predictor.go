// Package predictor estimates per-image sandbox demand from the same
// invocation history the autoscaler sees, so the control plane can turn
// the workers' static pre-warm pools into demand-driven ones (paper §2:
// the Azure trace's synchronized timer bursts and long tail of rare
// functions defeat static warm pools).
//
// Two signals are tracked per image:
//
//   - A per-window EWMA of cold-start demand (sandbox creations staged by
//     the reconciler). This captures steady and Poisson-like load.
//   - Timer-period detection: the trace's timer class fires in unison at
//     exact period boundaries (1/2/5/10/15 min), producing bursts with a
//     quiet gap between them. The predictor clusters observations into
//     "spikes", measures the gap between consecutive spike starts, and
//     once the gap repeats consistently it raises the image's target
//     shortly *before* the next predicted firing — warming the pool ahead
//     of the burst instead of reacting to it.
//
// All methods take the current time as a parameter; the predictor holds
// no clock and spawns no goroutines, so tests drive it with a virtual
// timeline.
package predictor

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Config tunes the demand estimator. The zero value selects defaults
// sized for the Azure-like trace's real-time periods; experiments that
// compress wall time scale Window and Lead by the same factor as the
// trace timestamps.
type Config struct {
	// Window is the demand accounting window (default 1 minute, matching
	// the trace generator's per-minute rates).
	Window time.Duration
	// Alpha is the EWMA weight of the newest closed window (default 0.5).
	Alpha float64
	// Lead is how far ahead of a predicted timer firing the target is
	// raised, covering sandbox boot time plus one push sweep (default 20s).
	Lead time.Duration
	// Tolerance is the relative jitter allowed between consecutive
	// spike gaps for them to count as the same period (default 0.25).
	Tolerance float64
	// MaxImages caps the emitted target set so a push RPC stays small
	// under a long-tailed trace (default 64; targets are emitted in
	// descending-want order, so the cap drops the coldest images first).
	MaxImages int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.Lead <= 0 {
		c.Lead = 20 * time.Second
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.25
	}
	if c.MaxImages <= 0 {
		c.MaxImages = 64
	}
	return c
}

// Target is one image's desired cluster-wide pre-warm pool size.
type Target struct {
	Image string
	Want  int
}

// Predictor aggregates per-image demand. Safe for concurrent use.
type Predictor struct {
	cfg Config

	mu     sync.Mutex
	images map[string]*imageStats
}

type imageStats struct {
	// Windowed EWMA of creations per window.
	winStart time.Time
	winCount float64
	ewma     float64
	seeded   bool

	// Spike clustering for timer-period detection.
	spikeStart time.Time // start of the current activity cluster
	spikeCount float64   // creations observed in the current cluster
	lastAt     time.Time // most recent observation
	inSpike    bool

	period     time.Duration // candidate gap between spike starts
	periodRuns int           // consecutive gaps agreeing with period
	spikeEwma  float64       // EWMA of per-spike creation counts
}

// New returns a Predictor with cfg's zero fields defaulted.
func New(cfg Config) *Predictor {
	return &Predictor{cfg: cfg.withDefaults(), images: make(map[string]*imageStats)}
}

// Observe records n sandbox creations for image at time now. The control
// plane calls this for every creation its reconciler stages, which keeps
// the signal live even when the pre-warm pool absorbs the actual cold
// start (the reconciler still places a replacement sandbox).
func (p *Predictor) Observe(now time.Time, image string, n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.images[image]
	if s == nil {
		s = &imageStats{winStart: now, spikeStart: now, inSpike: true}
		p.images[image] = s
	} else {
		p.rollWindows(s, now)
		// A quiet gap of half a window separates activity clusters; the
		// timer bursts of interest complete in far less.
		quiet := p.cfg.Window / 2
		if now.Sub(s.lastAt) > quiet {
			p.closeSpike(s, now)
		}
	}
	s.winCount += float64(n)
	s.spikeCount += float64(n)
	s.lastAt = now
}

// rollWindows closes any windows that have fully elapsed before now,
// folding their counts into the EWMA. Long idle gaps decay the EWMA by
// (1-alpha) per empty window without iterating them one by one.
func (p *Predictor) rollWindows(s *imageStats, now time.Time) {
	elapsed := now.Sub(s.winStart)
	if elapsed < p.cfg.Window {
		return
	}
	missed := int64(elapsed / p.cfg.Window)
	// Close the window that was accumulating.
	if s.seeded {
		s.ewma = p.cfg.Alpha*s.winCount + (1-p.cfg.Alpha)*s.ewma
	} else {
		s.ewma = s.winCount
		s.seeded = true
	}
	// Then decay across the fully-empty windows in between.
	if empty := missed - 1; empty > 0 {
		s.ewma *= math.Pow(1-p.cfg.Alpha, float64(empty))
	}
	s.winStart = s.winStart.Add(time.Duration(missed) * p.cfg.Window)
	s.winCount = 0
}

// closeSpike finalizes the current activity cluster: its size feeds the
// per-spike EWMA, and the gap since the previous spike start is matched
// against the candidate period.
func (p *Predictor) closeSpike(s *imageStats, now time.Time) {
	if s.inSpike && s.spikeCount > 0 {
		if s.spikeEwma == 0 {
			s.spikeEwma = s.spikeCount
		} else {
			s.spikeEwma = p.cfg.Alpha*s.spikeCount + (1-p.cfg.Alpha)*s.spikeEwma
		}
	}
	gap := now.Sub(s.spikeStart)
	if s.period > 0 && withinTolerance(gap, s.period, p.cfg.Tolerance) {
		s.periodRuns++
		// Smooth the period estimate toward the observed gap.
		s.period = (s.period + gap) / 2
	} else {
		s.period = gap
		s.periodRuns = 0
	}
	s.spikeStart = now
	s.spikeCount = 0
	s.inSpike = true
}

func withinTolerance(got, want time.Duration, tol float64) bool {
	diff := float64(got - want)
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol*float64(want)
}

// Targets returns the per-image desired cluster-wide pool sizes at time
// now, in descending-want order (ties broken by image name for
// determinism), capped at MaxImages. An image's base want is its demand
// EWMA rounded up; if a timer period has been confirmed (two consecutive
// agreeing gaps) and the next predicted firing is within Lead, the want
// is raised to the per-spike EWMA so the pool is warm before the burst.
func (p *Predictor) Targets(now time.Time) []Target {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Target, 0, len(p.images))
	for image, s := range p.images {
		p.rollWindows(s, now)
		want := 0
		if ewma := s.ewma; ewma >= 0.25 {
			want = int(math.Ceil(ewma))
		}
		if burst := p.predictedBurst(s, now); burst > want {
			want = burst
		}
		if want > 0 {
			out = append(out, Target{Image: image, Want: want})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Want != out[j].Want {
			return out[i].Want > out[j].Want
		}
		return out[i].Image < out[j].Image
	})
	if len(out) > p.cfg.MaxImages {
		out = out[:p.cfg.MaxImages]
	}
	return out
}

// predictedBurst returns the spike-sized want if now falls inside the
// prewarm window [next-Lead, next+slack] of the next predicted timer
// firing, else 0. Requires two consecutive agreeing gaps (three spikes)
// so a single gap does not pin pool capacity.
func (p *Predictor) predictedBurst(s *imageStats, now time.Time) int {
	if s.periodRuns < 1 || s.period <= 0 || s.spikeEwma <= 0 {
		return 0
	}
	slack := time.Duration(p.cfg.Tolerance * float64(s.period))
	// Project the most recent spike start forward to the first predicted
	// firing not already in the past (beyond slack), in case firings were
	// missed while demand was absorbed elsewhere.
	next := s.spikeStart.Add(s.period)
	for next.Add(slack).Before(now) {
		next = next.Add(s.period)
	}
	if !now.Before(next.Add(-p.cfg.Lead)) && !now.After(next.Add(slack)) {
		return int(math.Ceil(s.spikeEwma))
	}
	return 0
}
