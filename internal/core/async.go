package core

import "fmt"

// AsyncTaskKey mints the durable store key for an async task accepted by
// the given data plane replica: "<owner>-<seq>". The owner prefix lets
// replicas that share one durable store tell their records apart, and
// lets a lease target exactly one dead owner's records inside a hash.
func AsyncTaskKey(owner DataPlaneID, seq uint64) string {
	return fmt.Sprintf("%d-%d", owner, seq)
}

// AsyncTaskOwner parses the owning replica out of a key minted by
// AsyncTaskKey, reporting false for keys in any other shape.
func AsyncTaskOwner(key string) (DataPlaneID, bool) {
	dash := -1
	for i := 0; i < len(key); i++ {
		if key[i] == '-' {
			dash = i
		}
	}
	if dash <= 0 || dash == len(key)-1 {
		return 0, false
	}
	var id uint64
	for i := 0; i < dash; i++ {
		c := key[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + uint64(c-'0')
		if id > 1<<16-1 {
			return 0, false
		}
	}
	return DataPlaneID(id), true
}
