package core

import (
	"fmt"
	"time"

	"dirigent/internal/codec"
)

// SandboxRecordSize is the size of the compact binary sandbox record.
// The paper highlights that Dirigent stores sandbox state in 16 bytes,
// versus K8s Pod definitions of up to 17 KB (§3.2).
const SandboxRecordSize = 16

// MarshalSandboxRecord encodes the routing-relevant sandbox state into a
// fixed 16-byte record: id(6) | function hash(2) | node(2) | ip(4) | port(2).
// The function name itself travels separately in registration metadata;
// the hash is used only as a cheap consistency check.
func MarshalSandboxRecord(s *Sandbox) [SandboxRecordSize]byte {
	var out [SandboxRecordSize]byte
	id := uint64(s.ID)
	for i := 0; i < 6; i++ {
		out[i] = byte(id >> (8 * i))
	}
	h := FunctionHash(s.Function)
	out[6] = byte(h)
	out[7] = byte(h >> 8)
	out[8] = byte(s.Node)
	out[9] = byte(s.Node >> 8)
	copy(out[10:14], s.IP[:])
	out[14] = byte(s.Port)
	out[15] = byte(s.Port >> 8)
	return out
}

// UnmarshalSandboxRecord decodes a 16-byte record produced by
// MarshalSandboxRecord. The function name cannot be recovered from the
// record alone; callers resolve it via the function-hash field.
func UnmarshalSandboxRecord(rec [SandboxRecordSize]byte) (id SandboxID, fnHash uint16, node NodeID, ip [4]byte, port uint16) {
	var v uint64
	for i := 0; i < 6; i++ {
		v |= uint64(rec[i]) << (8 * i)
	}
	id = SandboxID(v)
	fnHash = uint16(rec[6]) | uint16(rec[7])<<8
	node = NodeID(uint16(rec[8]) | uint16(rec[9])<<8)
	copy(ip[:], rec[10:14])
	port = uint16(rec[14]) | uint16(rec[15])<<8
	return id, fnHash, node, ip, port
}

// FunctionHash returns a 16-bit FNV-1a hash of a function name, used in
// compact sandbox records and for front-end load balancer steering.
func FunctionHash(name string) uint16 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return uint16(h ^ (h >> 16))
}

// HashImage returns a 64-bit FNV-1a hash of a container image reference,
// used in node cache digests and placement requirements so the placer
// can test cache residency without shipping image name lists in every
// heartbeat. Never returns 0: placement treats a zero hash as "image
// unknown" (locality-blind).
func HashImage(image string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(image); i++ {
		h ^= uint64(image[i])
		h *= prime64
	}
	if h == 0 {
		return 1
	}
	return h
}

// Splitmix64 is the splitmix64 step function: a stateless 64-bit mixer
// for allocation-free, lock-free pseudo-random decisions. The data plane
// load balancers seed it from the invocation key for tie-breaks, the
// front end for rendezvous replica weighting.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MarshalFunction encodes a Function registration record (all persisted
// fields from paper Table 3).
func MarshalFunction(f *Function) []byte {
	e := codec.NewEncoder(64 + len(f.Name) + len(f.Image))
	e.String(f.Name)
	e.String(f.Image)
	e.U16(f.Port)
	e.String(f.Runtime)
	e.F64(f.Scaling.TargetConcurrency)
	e.I64(int64(f.Scaling.MinScale))
	e.I64(int64(f.Scaling.MaxScale))
	e.I64(int64(f.Scaling.StableWindow))
	e.I64(int64(f.Scaling.PanicWindow))
	e.F64(f.Scaling.PanicThreshold)
	e.I64(int64(f.Scaling.ScaleToZeroGrace))
	e.F64(f.Scaling.MaxScaleUpRate)
	e.I64(int64(f.Scaling.CPUMilli))
	e.I64(int64(f.Scaling.MemoryMB))
	return e.Bytes()
}

// UnmarshalFunction decodes a record produced by MarshalFunction.
func UnmarshalFunction(b []byte) (*Function, error) {
	d := codec.NewDecoder(b)
	f := &Function{}
	f.Name = d.String()
	f.Image = d.String()
	f.Port = d.U16()
	f.Runtime = d.String()
	f.Scaling.TargetConcurrency = d.F64()
	f.Scaling.MinScale = int(d.I64())
	f.Scaling.MaxScale = int(d.I64())
	f.Scaling.StableWindow = timeDuration(d.I64())
	f.Scaling.PanicWindow = timeDuration(d.I64())
	f.Scaling.PanicThreshold = d.F64()
	f.Scaling.ScaleToZeroGrace = timeDuration(d.I64())
	f.Scaling.MaxScaleUpRate = d.F64()
	f.Scaling.CPUMilli = int(d.I64())
	f.Scaling.MemoryMB = int(d.I64())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("unmarshal function: %w", err)
	}
	return f, nil
}

// MarshalWorkerNode encodes a WorkerNode record (persisted: name, IP, port).
func MarshalWorkerNode(w *WorkerNode) []byte {
	e := codec.NewEncoder(32 + len(w.Name) + len(w.IP))
	e.U16(uint16(w.ID))
	e.String(w.Name)
	e.String(w.IP)
	e.U16(w.Port)
	e.I64(int64(w.CPUMilli))
	e.I64(int64(w.MemoryMB))
	return e.Bytes()
}

// UnmarshalWorkerNode decodes a record produced by MarshalWorkerNode.
func UnmarshalWorkerNode(b []byte) (*WorkerNode, error) {
	d := codec.NewDecoder(b)
	w := &WorkerNode{}
	w.ID = NodeID(d.U16())
	w.Name = d.String()
	w.IP = d.String()
	w.Port = d.U16()
	w.CPUMilli = int(d.I64())
	w.MemoryMB = int(d.I64())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("unmarshal worker node: %w", err)
	}
	return w, nil
}

// MarshalDataPlane encodes a DataPlane record (persisted: IP, port).
func MarshalDataPlane(p *DataPlane) []byte {
	e := codec.NewEncoder(16 + len(p.IP))
	e.U16(uint16(p.ID))
	e.String(p.IP)
	e.U16(p.Port)
	return e.Bytes()
}

// UnmarshalDataPlane decodes a record produced by MarshalDataPlane.
func UnmarshalDataPlane(b []byte) (*DataPlane, error) {
	d := codec.NewDecoder(b)
	p := &DataPlane{}
	p.ID = DataPlaneID(d.U16())
	p.IP = d.String()
	p.Port = d.U16()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("unmarshal data plane: %w", err)
	}
	return p, nil
}

func timeDuration(v int64) time.Duration { return time.Duration(v) }
