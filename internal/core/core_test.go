package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSandboxRecordIs16Bytes(t *testing.T) {
	// The paper's headline state-size claim: 16 bytes per sandbox vs a
	// 17 KB K8s Pod object (§3.2).
	if SandboxRecordSize != 16 {
		t.Fatalf("SandboxRecordSize = %d, want 16", SandboxRecordSize)
	}
	sb := Sandbox{ID: 7, Function: "f", Node: 3, IP: [4]byte{10, 0, 0, 1}, Port: 30001}
	rec := MarshalSandboxRecord(&sb)
	if len(rec) != 16 {
		t.Fatalf("record length %d", len(rec))
	}
}

func TestSandboxRecordRoundTrip(t *testing.T) {
	f := func(id uint64, node uint16, ip [4]byte, port uint16) bool {
		id &= (1 << 48) - 1 // record stores 48-bit IDs
		sb := Sandbox{
			ID:       SandboxID(id),
			Function: "some-function",
			Node:     NodeID(node),
			IP:       ip,
			Port:     port,
		}
		rec := MarshalSandboxRecord(&sb)
		gotID, gotHash, gotNode, gotIP, gotPort := UnmarshalSandboxRecord(rec)
		return gotID == sb.ID && gotNode == sb.Node && gotIP == ip &&
			gotPort == port && gotHash == FunctionHash("some-function")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFunctionMarshalRoundTrip(t *testing.T) {
	fn := &Function{
		Name:    "resize-image",
		Image:   "registry.example.com/resize:v3",
		Port:    8080,
		Runtime: "firecracker",
		Scaling: ScalingConfig{
			TargetConcurrency: 1,
			MinScale:          0,
			MaxScale:          50,
			StableWindow:      60 * time.Second,
			PanicWindow:       6 * time.Second,
			PanicThreshold:    2,
			ScaleToZeroGrace:  30 * time.Second,
			MaxScaleUpRate:    1000,
			CPUMilli:          250,
			MemoryMB:          512,
		},
	}
	b := MarshalFunction(fn)
	got, err := UnmarshalFunction(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if *got != *fn {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, fn)
	}
}

func TestFunctionUnmarshalGarbage(t *testing.T) {
	if _, err := UnmarshalFunction([]byte{0xFF}); err == nil {
		t.Errorf("expected error for truncated function record")
	}
}

func TestWorkerNodeMarshalRoundTrip(t *testing.T) {
	w := &WorkerNode{ID: 12, Name: "worker-12", IP: "10.0.0.12", Port: 9000, CPUMilli: 10000, MemoryMB: 65536}
	got, err := UnmarshalWorkerNode(MarshalWorkerNode(w))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if *got != *w {
		t.Errorf("round trip mismatch: got %+v want %+v", got, w)
	}
}

func TestDataPlaneMarshalRoundTrip(t *testing.T) {
	p := &DataPlane{ID: 2, IP: "dp1", Port: 8000}
	got, err := UnmarshalDataPlane(MarshalDataPlane(p))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if *got != *p {
		t.Errorf("round trip mismatch: got %+v want %+v", got, p)
	}
}

func TestFunctionValidate(t *testing.T) {
	cases := []struct {
		name string
		fn   Function
		ok   bool
	}{
		{"valid", Function{Name: "f", Image: "img", Port: 80}, true},
		{"no name", Function{Image: "img", Port: 80}, false},
		{"no image", Function{Name: "f", Port: 80}, false},
		{"no port", Function{Name: "f", Image: "img"}, false},
	}
	for _, tc := range cases {
		err := tc.fn.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSandboxStateString(t *testing.T) {
	states := map[SandboxState]string{
		SandboxCreating: "creating",
		SandboxBooting:  "booting",
		SandboxReady:    "ready",
		SandboxDraining: "draining",
		SandboxDead:     "dead",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
	if got := SandboxState(99).String(); got != "state(99)" {
		t.Errorf("unknown state = %q", got)
	}
}

func TestSandboxAddr(t *testing.T) {
	sb := Sandbox{IP: [4]byte{192, 168, 1, 5}, Port: 30500}
	if got := sb.Addr(); got != "192.168.1.5:30500" {
		t.Errorf("Addr = %q", got)
	}
}

func TestFunctionHashDistribution(t *testing.T) {
	// The front-end LB steers by function hash; a pathological hash would
	// funnel everything to one data plane. Check rough balance over 3
	// buckets for realistic function names.
	buckets := make([]int, 3)
	const n = 3000
	for i := 0; i < n; i++ {
		name := "function-" + string(rune('a'+i%26)) + "-" + itoa(i)
		buckets[int(FunctionHash(name))%3]++
	}
	for i, c := range buckets {
		if c < n/3-n/6 || c > n/3+n/6 {
			t.Errorf("bucket %d has %d of %d hashes; distribution too skewed", i, c, n)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestDefaultScalingConfigMatchesKnative(t *testing.T) {
	cfg := DefaultScalingConfig()
	if cfg.TargetConcurrency != 1 {
		t.Errorf("TargetConcurrency = %v, want 1 (FaaS default)", cfg.TargetConcurrency)
	}
	if cfg.StableWindow != 60*time.Second {
		t.Errorf("StableWindow = %v, want 60s (Knative default)", cfg.StableWindow)
	}
	if cfg.PanicWindow != 6*time.Second {
		t.Errorf("PanicWindow = %v, want 6s (10%% of stable)", cfg.PanicWindow)
	}
	if cfg.PanicThreshold != 2.0 {
		t.Errorf("PanicThreshold = %v, want 2.0", cfg.PanicThreshold)
	}
}

func TestAsyncTaskKeyOwner(t *testing.T) {
	key := AsyncTaskKey(7, 123)
	if key != "7-123" {
		t.Fatalf("AsyncTaskKey = %q", key)
	}
	if owner, ok := AsyncTaskOwner(key); !ok || owner != 7 {
		t.Fatalf("AsyncTaskOwner(%q) = %d, %v", key, owner, ok)
	}
	// Large sequence numbers keep the last dash as the separator.
	if owner, ok := AsyncTaskOwner(AsyncTaskKey(65535, 1<<60)); !ok || owner != 65535 {
		t.Fatalf("max owner: %d, %v", owner, ok)
	}
	for _, bad := range []string{"", "7", "-1", "7-", "x-1", "7x-1", "99999-1", "18446744073709551615-1"} {
		if _, ok := AsyncTaskOwner(bad); ok {
			t.Errorf("AsyncTaskOwner(%q) accepted", bad)
		}
	}
	if err := quick.Check(func(owner uint16, seq uint64) bool {
		got, ok := AsyncTaskOwner(AsyncTaskKey(DataPlaneID(owner), seq))
		return ok && got == DataPlaneID(owner)
	}, nil); err != nil {
		t.Error(err)
	}
}
