// Package core defines Dirigent's four cluster-management abstractions —
// Function, Sandbox, DataPlane, and WorkerNode (paper §3.2, Table 3) —
// together with the scheduling configuration and metric types shared by the
// control plane, data plane, and worker daemon.
//
// Keeping the abstraction set this small is Dirigent's first design
// principle: in contrast to the hierarchical K8s objects (Deployment →
// ReplicaSet → Pod → Endpoint), a sandbox creation in Dirigent touches a
// single Sandbox object.
package core

import (
	"fmt"
	"time"
)

// SandboxID identifies a sandbox uniquely within a cluster epoch.
type SandboxID uint64

// NodeID identifies a worker node.
type NodeID uint16

// DataPlaneID identifies a data plane replica.
type DataPlaneID uint16

// SandboxState is the lifecycle state of a sandbox on a worker node.
type SandboxState uint8

// Sandbox lifecycle states.
const (
	// SandboxCreating means the worker daemon is creating the sandbox.
	SandboxCreating SandboxState = iota
	// SandboxBooting means the sandbox process exists but has not yet
	// passed a health probe.
	SandboxBooting
	// SandboxReady means the sandbox passed its health probe and can
	// receive traffic.
	SandboxReady
	// SandboxDraining means the sandbox is excluded from load balancing
	// and finishes in-flight requests before teardown.
	SandboxDraining
	// SandboxDead means the sandbox has been torn down or its worker
	// failed.
	SandboxDead
)

// String implements fmt.Stringer.
func (s SandboxState) String() string {
	switch s {
	case SandboxCreating:
		return "creating"
	case SandboxBooting:
		return "booting"
	case SandboxReady:
		return "ready"
	case SandboxDraining:
		return "draining"
	case SandboxDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ScalingConfig holds the per-function scheduling knobs tracked by the
// control plane (autoscaling parameters, resource quotas). Defaults follow
// Knative's KPA autoscaler, which Dirigent reuses for a fair comparison
// (paper §4, "Scheduling policies").
type ScalingConfig struct {
	// TargetConcurrency is the desired number of in-flight requests per
	// sandbox. FaaS platforms default to 1 (paper §2.1, Figure 3).
	TargetConcurrency float64
	// MinScale and MaxScale bound the number of sandboxes. MaxScale <= 0
	// means unbounded.
	MinScale, MaxScale int
	// StableWindow is the averaging window of the stable autoscaling mode.
	StableWindow time.Duration
	// PanicWindow is the short averaging window of the panic mode.
	PanicWindow time.Duration
	// PanicThreshold is the ratio of observed to desired concurrency above
	// which the autoscaler enters panic mode (Knative default 2.0).
	PanicThreshold float64
	// ScaleToZeroGrace is how long a function must be idle before its last
	// sandbox is removed.
	ScaleToZeroGrace time.Duration
	// MaxScaleUpRate caps the multiplicative growth of desired scale per
	// decision (Knative default 1000).
	MaxScaleUpRate float64
	// CPUMilli and MemoryMB are the per-sandbox resource requests used by
	// the placement policy.
	CPUMilli int
	MemoryMB int
}

// DefaultScalingConfig returns the Knative-default scaling configuration.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		TargetConcurrency: 1,
		MinScale:          0,
		MaxScale:          0,
		StableWindow:      60 * time.Second,
		PanicWindow:       6 * time.Second,
		PanicThreshold:    2.0,
		ScaleToZeroGrace:  30 * time.Second,
		MaxScaleUpRate:    1000,
		CPUMilli:          100,
		MemoryMB:          128,
	}
}

// Function is the registration record for a user function: the recipe from
// which the control plane creates sandboxes (paper Table 3). Name, image,
// port, and scheduling configuration are persisted; scheduling metrics are
// kept in memory only.
type Function struct {
	// Name is the unique user-visible function identifier.
	Name string
	// Image is the container image or snapshot URL.
	Image string
	// Port is the port the function's server listens on inside the sandbox.
	Port uint16
	// Runtime selects the sandbox runtime ("containerd", "firecracker").
	Runtime string
	// Scaling holds the autoscaling and placement knobs.
	Scaling ScalingConfig
}

// Validate reports whether the registration record is well formed.
func (f *Function) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("function: empty name")
	}
	if f.Image == "" {
		return fmt.Errorf("function %q: empty image", f.Name)
	}
	if f.Port == 0 {
		return fmt.Errorf("function %q: port must be nonzero", f.Name)
	}
	return nil
}

// Sandbox is the in-memory record of one sandbox on a worker node
// (paper Table 3: name, IP address, port, worker node ID). None of this
// state is persisted: after a control-plane failure it is reconstructed
// from worker-node reports.
type Sandbox struct {
	ID       SandboxID
	Function string
	Node     NodeID
	IP       [4]byte
	Port     uint16
	State    SandboxState
	// CreatedAt is when the control plane requested creation; used for
	// cold-start latency accounting.
	CreatedAt time.Time
	// ReadyAt is when the sandbox passed its health probe.
	ReadyAt time.Time
}

// Addr renders the sandbox's IP:port endpoint.
func (s *Sandbox) Addr() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", s.IP[0], s.IP[1], s.IP[2], s.IP[3], s.Port)
}

// Endpoint is the minimal routing record broadcast from the control plane
// to data planes when sandboxes come and go.
type Endpoint struct {
	SandboxID SandboxID
	Function  string
	Node      NodeID
	Addr      string
}

// WorkerNode describes a worker's identity, connectivity, and capacity
// (paper Table 3: name, IP, port — all persisted).
type WorkerNode struct {
	ID       NodeID
	Name     string
	IP       string
	Port     uint16
	CPUMilli int
	MemoryMB int
}

// DataPlane describes a data plane replica (paper Table 3: IP and port,
// persisted).
type DataPlane struct {
	ID   DataPlaneID
	IP   string
	Port uint16
}

// ScalingMetric is the per-function signal a data plane periodically sends
// to the control plane: the number of in-flight (executing + queued)
// requests observed for a function (paper Table 2, "Send scaling metric").
type ScalingMetric struct {
	Function string
	// InFlight is the instantaneous in-flight request count.
	InFlight int
	// QueueDepth is the number of requests waiting for a sandbox.
	QueueDepth int
	// At is the data plane's observation timestamp.
	At time.Time
}

// NodeUtilization is the resource usage a worker reports in heartbeats,
// consumed by the placement policy.
type NodeUtilization struct {
	Node          NodeID
	CPUMilliUsed  int
	MemoryMBUsed  int
	SandboxCount  int
	CreationQueue int
	// CacheDigest lists HashImage values for the images/snapshots in the
	// node's local cache, sorted ascending so placement can binary-search
	// it. It rides worker heartbeats (and relay heartbeat batches at 5k
	// scale) to feed cache-locality-aware placement. Treated as read-only
	// once published: heartbeat handlers copy the struct by value and
	// share the slice.
	CacheDigest []uint64
}
