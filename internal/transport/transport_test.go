package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// runTransportSuite exercises behaviours every Transport must provide.
func runTransportSuite(t *testing.T, tr Transport, mkAddr func(i int) string) {
	t.Helper()

	t.Run("echo", func(t *testing.T) {
		addr := mkAddr(1)
		ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
			return append([]byte(method+":"), payload...), nil
		})
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		resp, err := tr.Call(context.Background(), ln.Addr(), "m.Echo", []byte("hi"))
		if err != nil {
			t.Fatalf("call: %v", err)
		}
		if !bytes.Equal(resp, []byte("m.Echo:hi")) {
			t.Errorf("resp = %q", resp)
		}
	})

	t.Run("remote error", func(t *testing.T) {
		addr := mkAddr(2)
		ln, err := tr.Listen(addr, func(string, []byte) ([]byte, error) {
			return nil, errors.New("boom")
		})
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		_, err = tr.Call(context.Background(), ln.Addr(), "m", nil)
		if !errors.Is(err, ErrRemote) {
			t.Errorf("err = %v, want ErrRemote", err)
		}
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "boom" {
			t.Errorf("remote message = %v", err)
		}
	})

	t.Run("unreachable", func(t *testing.T) {
		_, err := tr.Call(context.Background(), mkAddr(3), "m", nil)
		if !errors.Is(err, ErrUnreachable) {
			t.Errorf("err = %v, want ErrUnreachable", err)
		}
	})

	t.Run("closed listener unreachable", func(t *testing.T) {
		addr := mkAddr(4)
		ln, err := tr.Listen(addr, func(string, []byte) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		real := ln.Addr()
		ln.Close()
		// Allow in-flight teardown.
		time.Sleep(10 * time.Millisecond)
		if _, err := tr.Call(context.Background(), real, "m", nil); !errors.Is(err, ErrUnreachable) {
			t.Errorf("call to closed listener: %v, want ErrUnreachable", err)
		}
	})

	t.Run("concurrent calls", func(t *testing.T) {
		addr := mkAddr(5)
		ln, err := tr.Listen(addr, func(_ string, payload []byte) ([]byte, error) {
			return payload, nil
		})
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				want := []byte(fmt.Sprintf("payload-%d", i))
				resp, err := tr.Call(context.Background(), ln.Addr(), "m", want)
				if err != nil {
					t.Errorf("call %d: %v", i, err)
					return
				}
				if !bytes.Equal(resp, want) {
					t.Errorf("call %d: response mismatch %q", i, resp)
				}
			}(i)
		}
		wg.Wait()
	})

	t.Run("large payload", func(t *testing.T) {
		addr := mkAddr(6)
		ln, err := tr.Listen(addr, func(_ string, payload []byte) ([]byte, error) {
			return payload, nil
		})
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		big := bytes.Repeat([]byte{0x5A}, 1<<20)
		resp, err := tr.Call(context.Background(), ln.Addr(), "m", big)
		if err != nil {
			t.Fatalf("call: %v", err)
		}
		if !bytes.Equal(resp, big) {
			t.Errorf("large payload corrupted (len %d)", len(resp))
		}
	})
}

func TestInProcTransport(t *testing.T) {
	tr := NewInProc()
	runTransportSuite(t, tr, func(i int) string { return fmt.Sprintf("svc-%d", i) })
}

func TestTCPTransport(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	runTransportSuite(t, tr, func(i int) string { return "127.0.0.1:0" })
}

func TestInProcDuplicateListen(t *testing.T) {
	tr := NewInProc()
	ln, err := tr.Listen("dup", func(string, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := tr.Listen("dup", func(string, []byte) ([]byte, error) { return nil, nil }); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate listen: %v, want ErrAddrInUse", err)
	}
}

func TestInProcReListenAfterClose(t *testing.T) {
	tr := NewInProc()
	ln, err := tr.Listen("svc", func(string, []byte) ([]byte, error) { return []byte("v1"), nil })
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	ln2, err := tr.Listen("svc", func(string, []byte) ([]byte, error) { return []byte("v2"), nil })
	if err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	defer ln2.Close()
	resp, err := tr.Call(context.Background(), "svc", "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "v2" {
		t.Errorf("resp = %q, want v2 (restarted component)", resp)
	}
}

func TestInProcNilHandler(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Listen("x", nil); err == nil {
		t.Errorf("nil handler should be rejected")
	}
}

func TestInProcContextCancellation(t *testing.T) {
	tr := NewInProc()
	tr.SetLatency(time.Second)
	ln, err := tr.Listen("slow", func(string, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = tr.Call(ctx, "slow", "m", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Errorf("cancellation took too long")
	}
}

func TestTCPServerCloseFailsPendingCalls(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	block := make(chan struct{})
	ln, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tr.Call(context.Background(), ln.Addr(), "m", nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(block)
	ln.Close()
	select {
	case err := <-done:
		if err != nil {
			// Either a response or a connection error is acceptable once
			// the handler unblocked; a hang is not.
			t.Logf("pending call finished with: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pending call hung after server close")
	}
}

func TestTCPReconnectAfterServerRestart(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	ln, err := tr.Listen("127.0.0.1:0", func(string, []byte) ([]byte, error) { return []byte("a"), nil })
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	if _, err := tr.Call(context.Background(), addr, "m", nil); err != nil {
		t.Fatalf("first call: %v", err)
	}
	ln.Close()
	// Calls now fail; the client must drop the dead connection.
	if _, err := tr.Call(context.Background(), addr, "m", nil); err == nil {
		t.Fatalf("call to closed server should fail")
	}
	ln2, err := tr.Listen(addr, func(string, []byte) ([]byte, error) { return []byte("b"), nil })
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer ln2.Close()
	resp, err := tr.Call(context.Background(), addr, "m", nil)
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if string(resp) != "b" {
		t.Errorf("resp = %q, want b", resp)
	}
}
