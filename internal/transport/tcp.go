package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is a Transport over real sockets using length-prefixed binary frames.
// Request frame:  id(8) | kind(1)=0 | methodLen(2) | method | payloadLen(4) | payload
// Response frame: id(8) | kind(1)=1 | status(1) | bodyLen(4) | body
// Clients keep one multiplexed connection per remote address.
type TCP struct {
	mu    sync.Mutex
	conns map[string]*tcpClientConn
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
}

// NewTCP returns a TCP transport with a 2-second dial timeout.
func NewTCP() *TCP {
	return &TCP{conns: make(map[string]*tcpClientConn), DialTimeout: 2 * time.Second}
}

const (
	frameKindRequest  = 0
	frameKindResponse = 1
	respStatusOK      = 0
	respStatusError   = 1
	maxFramePayload   = 64 << 20
)

// Listen implements Transport.
func (t *TCP) Listen(addr string, h HandlerFunc) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	srv := &tcpListener{ln: ln, handler: h, done: make(chan struct{})}
	go srv.acceptLoop()
	return srv, nil
}

type tcpListener struct {
	ln      net.Listener
	handler HandlerFunc
	done    chan struct{}
	wg      sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (s *tcpListener) Addr() string { return s.ln.Addr().String() }

func (s *tcpListener) Close() error {
	close(s.done)
	err := s.ln.Close()
	// Sever accepted connections so per-connection goroutines blocked in
	// reads unblock; otherwise Close would wait on them forever.
	s.connMu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

func (s *tcpListener) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *tcpListener) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

func (s *tcpListener) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

func (s *tcpListener) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	var wmu sync.Mutex
	w := bufio.NewWriterSize(conn, 1<<16)
	for {
		id, method, payload, err := readRequest(r)
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			body, herr := s.handler(method, payload)
			status := byte(respStatusOK)
			if herr != nil {
				status = respStatusError
				body = []byte(herr.Error())
			}
			wmu.Lock()
			defer wmu.Unlock()
			if err := writeResponse(w, id, status, body); err != nil {
				conn.Close()
			}
		}()
	}
}

func readRequest(r *bufio.Reader) (id uint64, method string, payload []byte, err error) {
	var header [11]byte
	if _, err = io.ReadFull(r, header[:]); err != nil {
		return 0, "", nil, err
	}
	id = binary.LittleEndian.Uint64(header[0:8])
	if header[8] != frameKindRequest {
		return 0, "", nil, errors.New("transport: unexpected frame kind")
	}
	mlen := int(binary.LittleEndian.Uint16(header[9:11]))
	mbuf := make([]byte, mlen)
	if _, err = io.ReadFull(r, mbuf); err != nil {
		return 0, "", nil, err
	}
	var plenBuf [4]byte
	if _, err = io.ReadFull(r, plenBuf[:]); err != nil {
		return 0, "", nil, err
	}
	plen := binary.LittleEndian.Uint32(plenBuf[:])
	if plen > maxFramePayload {
		return 0, "", nil, errors.New("transport: frame too large")
	}
	payload = make([]byte, plen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, "", nil, err
	}
	return id, string(mbuf), payload, nil
}

func writeResponse(w *bufio.Writer, id uint64, status byte, body []byte) error {
	var header [14]byte
	binary.LittleEndian.PutUint64(header[0:8], id)
	header[8] = frameKindResponse
	header[9] = status
	binary.LittleEndian.PutUint32(header[10:14], uint32(len(body)))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

type tcpClientConn struct {
	conn    net.Conn
	wmu     sync.Mutex
	w       *bufio.Writer
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan tcpResponse
	closed  bool
}

type tcpResponse struct {
	status byte
	body   []byte
	err    error
}

// Call implements Transport.
func (t *TCP) Call(ctx context.Context, addr, method string, payload []byte) ([]byte, error) {
	cc, err := t.getConn(addr)
	if err != nil {
		return nil, err
	}
	respCh, id, err := cc.send(method, payload)
	if err != nil {
		t.dropConn(addr, cc)
		if !errors.Is(err, ErrUnreachable) {
			// A write failure means the connection died under the
			// request — connection-level, so callers (front end, data
			// plane, cpclient) fail over instead of surfacing it.
			err = fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
		}
		return nil, err
	}
	select {
	case resp := <-respCh:
		if resp.err != nil {
			t.dropConn(addr, cc)
			return nil, resp.err
		}
		if resp.status == respStatusError {
			return nil, &RemoteError{Msg: string(resp.body)}
		}
		return resp.body, nil
	case <-ctx.Done():
		cc.abandon(id)
		return nil, ctx.Err()
	}
}

func (t *TCP) getConn(addr string) (*tcpClientConn, error) {
	t.mu.Lock()
	cc, ok := t.conns[addr]
	t.mu.Unlock()
	if ok {
		return cc, nil
	}
	conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	cc = &tcpClientConn{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 1<<16),
		pending: make(map[uint64]chan tcpResponse),
	}
	t.mu.Lock()
	if existing, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.conns[addr] = cc
	t.mu.Unlock()
	go cc.readLoop()
	return cc, nil
}

func (t *TCP) dropConn(addr string, cc *tcpClientConn) {
	t.mu.Lock()
	if cur, ok := t.conns[addr]; ok && cur == cc {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	cc.close(ErrUnreachable)
}

func (cc *tcpClientConn) send(method string, payload []byte) (chan tcpResponse, uint64, error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil, 0, ErrUnreachable
	}
	cc.nextID++
	id := cc.nextID
	ch := make(chan tcpResponse, 1)
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	var header [11]byte
	binary.LittleEndian.PutUint64(header[0:8], id)
	header[8] = frameKindRequest
	binary.LittleEndian.PutUint16(header[9:11], uint16(len(method)))
	if _, err := cc.w.Write(header[:]); err != nil {
		cc.abandon(id)
		return nil, 0, err
	}
	if _, err := cc.w.WriteString(method); err != nil {
		cc.abandon(id)
		return nil, 0, err
	}
	var plen [4]byte
	binary.LittleEndian.PutUint32(plen[:], uint32(len(payload)))
	if _, err := cc.w.Write(plen[:]); err != nil {
		cc.abandon(id)
		return nil, 0, err
	}
	if _, err := cc.w.Write(payload); err != nil {
		cc.abandon(id)
		return nil, 0, err
	}
	if err := cc.w.Flush(); err != nil {
		cc.abandon(id)
		return nil, 0, err
	}
	return ch, id, nil
}

func (cc *tcpClientConn) abandon(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

func (cc *tcpClientConn) readLoop() {
	r := bufio.NewReaderSize(cc.conn, 1<<16)
	for {
		var header [14]byte
		if _, err := io.ReadFull(r, header[:]); err != nil {
			cc.close(err)
			return
		}
		id := binary.LittleEndian.Uint64(header[0:8])
		if header[8] != frameKindResponse {
			cc.close(errors.New("transport: unexpected frame kind"))
			return
		}
		status := header[9]
		blen := binary.LittleEndian.Uint32(header[10:14])
		if blen > maxFramePayload {
			cc.close(errors.New("transport: frame too large"))
			return
		}
		body := make([]byte, blen)
		if _, err := io.ReadFull(r, body); err != nil {
			cc.close(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ok {
			ch <- tcpResponse{status: status, body: body}
		}
	}
}

func (cc *tcpClientConn) close(err error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return
	}
	cc.closed = true
	pending := cc.pending
	cc.pending = map[uint64]chan tcpResponse{}
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		ch <- tcpResponse{err: fmt.Errorf("transport: connection closed: %w", errOrUnreachable(err))}
	}
}

// errOrUnreachable classifies the reason a client connection died for
// the requests stranded on it. Whatever severed the connection (EOF,
// reset, a protocol violation), the effect for the in-flight request is
// the same — the remote is unreachable mid-call — so the error unwraps
// to ErrUnreachable and callers route around the dead peer.
func errOrUnreachable(err error) error {
	if err == nil || errors.Is(err, ErrUnreachable) {
		return ErrUnreachable
	}
	return fmt.Errorf("%w: %v", ErrUnreachable, err)
}

// Close tears down all client connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	conns := t.conns
	t.conns = map[string]*tcpClientConn{}
	t.mu.Unlock()
	for _, cc := range conns {
		cc.close(nil)
	}
	return nil
}
