// Package transport provides the RPC layer connecting Dirigent's
// components. The paper's implementation uses gRPC calls "invokable at any
// time, rather than through periodic heartbeats like in Mesos and YARN"
// (§4); this package supplies the same request/response semantics with two
// interchangeable implementations: an in-process transport used by the
// single-process cluster harness, tests, and benchmarks, and a TCP
// transport with length-prefixed binary frames used by the standalone
// component binaries under cmd/.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// HandlerFunc serves one RPC: it receives the method name and request
// payload and returns the response payload.
type HandlerFunc func(method string, payload []byte) ([]byte, error)

// Transport abstracts an RPC fabric addressed by opaque string addresses.
type Transport interface {
	// Listen registers a handler at addr. The returned Listener stops
	// serving when closed.
	Listen(addr string, h HandlerFunc) (Listener, error)
	// Call performs a unary RPC against addr.
	Call(ctx context.Context, addr, method string, payload []byte) ([]byte, error)
}

// Listener is a served address that can be shut down.
type Listener interface {
	// Addr returns the bound address (useful when listening on ":0").
	Addr() string
	// Close stops serving; in-flight handlers finish.
	Close() error
}

// Errors returned by transports.
var (
	// ErrUnreachable reports that nothing is listening at the address,
	// the in-process analogue of "connection refused".
	ErrUnreachable = errors.New("transport: address unreachable")
	// ErrAddrInUse reports a duplicate Listen on the same address.
	ErrAddrInUse = errors.New("transport: address already in use")
	// ErrRemote wraps an application error returned by the remote handler.
	ErrRemote = errors.New("transport: remote error")
)

// RemoteError reports a handler-side failure transported back to the
// caller. It unwraps to ErrRemote.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// Unwrap makes errors.Is(err, ErrRemote) true.
func (e *RemoteError) Unwrap() error { return ErrRemote }

// InProc is an in-process Transport. Calls execute the handler directly on
// the caller's goroutine, with an optional per-call latency to model a
// network. Closing an endpoint makes subsequent calls fail with
// ErrUnreachable, which the cluster harness uses for failure injection.
type InProc struct {
	mu        sync.RWMutex
	endpoints map[string]*inprocEndpoint
	// Latency, if nonzero, is added to every call to model network RTT.
	latency time.Duration
}

type inprocEndpoint struct {
	addr    string
	handler HandlerFunc
	owner   *InProc
	mu      sync.RWMutex
	closed  bool
}

// NewInProc returns an empty in-process transport fabric.
func NewInProc() *InProc {
	return &InProc{endpoints: make(map[string]*inprocEndpoint)}
}

// SetLatency sets a simulated per-call network latency.
func (t *InProc) SetLatency(d time.Duration) {
	t.mu.Lock()
	t.latency = d
	t.mu.Unlock()
}

// Listen implements Transport.
func (t *InProc) Listen(addr string, h HandlerFunc) (Listener, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	ep := &inprocEndpoint{addr: addr, handler: h, owner: t}
	t.endpoints[addr] = ep
	return ep, nil
}

// Call implements Transport.
func (t *InProc) Call(ctx context.Context, addr, method string, payload []byte) ([]byte, error) {
	t.mu.RLock()
	ep := t.endpoints[addr]
	latency := t.latency
	t.mu.RUnlock()
	if ep == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	ep.mu.RLock()
	closed := ep.closed
	h := ep.handler
	ep.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := h(method, payload)
	if err != nil {
		return nil, &RemoteError{Msg: err.Error()}
	}
	return resp, nil
}

// Addr implements Listener.
func (ep *inprocEndpoint) Addr() string { return ep.addr }

// Close implements Listener.
func (ep *inprocEndpoint) Close() error {
	ep.mu.Lock()
	ep.closed = true
	ep.mu.Unlock()
	ep.owner.mu.Lock()
	if cur, ok := ep.owner.endpoints[ep.addr]; ok && cur == ep {
		delete(ep.owner.endpoints, ep.addr)
	}
	ep.owner.mu.Unlock()
	return nil
}
